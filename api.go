// Package ramr is the public API of the RAMR library — a Go implementation
// of the resource-aware, decoupled MapReduce runtime of Iliakis, Xydis and
// Soudris ("Resource-Aware MapReduce Runtime for Multi/Many-core
// Architectures", DATE 2020) together with a faithful Phoenix++-style
// baseline for comparison.
//
// A job is described once as a Spec — splits, a Map function, an
// associative Combine, a Reduce and a container factory — and can then be
// executed by either engine:
//
//	spec := &ramr.Spec[string, string, int, int]{
//		Name:         "wordcount",
//		Splits:       chunks,
//		Map:          mapWords,
//		Combine:      func(a, b int) int { return a + b },
//		Reduce:       ramr.IdentityReduce[string, int](),
//		NewContainer: ramr.HashFactory[string, int](),
//	}
//	res, err := ramr.Run(spec, ramr.DefaultConfig())        // RAMR
//	base, err := ramr.RunPhoenix(spec, ramr.DefaultConfig()) // Phoenix++
//
// The RAMR engine decouples map and combine onto two thread pools that
// communicate through per-mapper lock-free SPSC queues, overlapping the
// compute-intensive map with the memory-intensive combine, and pins
// co-operating threads to adjacent logical CPUs (Linux; elsewhere pinning
// degrades to a no-op). Every knob from the paper — mapper/combiner ratio,
// queue capacity, consume batch size, emit batch size, task size, wait
// policy, pin policy — is a Config field, overridable through RAMR_*
// environment variables.
package ramr

import (
	"context"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/memo"
	"ramr/internal/mr"
	"ramr/internal/obs"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/trace"
	"ramr/internal/tuner"
)

// Spec describes a MapReduce job; see the mr package for field semantics.
type Spec[S any, K comparable, V, R any] = mr.Spec[S, K, V, R]

// Pair is one key-value element of a job's output.
type Pair[K comparable, R any] = mr.Pair[K, R]

// Result is a completed job's output and execution profile.
type Result[K comparable, R any] = mr.Result[K, R]

// Config carries the runtime tuning knobs.
type Config = mr.Config

// StreamSpec configures windowed streaming ingestion (Config.Stream):
// tumbling or sliding event-time windows over chunks appended to a
// resident pipeline, with watermark-triggered seals and a bounded
// pending-split admission window. Batch runs leave Config.Stream nil;
// see internal/stream for the resident pipeline itself.
type StreamSpec = mr.StreamSpec

// PhaseTimes is the per-phase wall-clock profile of a run.
type PhaseTimes = mr.PhaseTimes

// PinPolicy selects thread placement (PinRAMR, PinRoundRobin, PinNone).
type PinPolicy = mr.PinPolicy

// Pin policies, re-exported from the job model.
const (
	PinRAMR       = mr.PinRAMR
	PinRoundRobin = mr.PinRoundRobin
	PinNone       = mr.PinNone
)

// WaitPolicy selects the producer's full-queue behaviour.
type WaitPolicy = spsc.WaitPolicy

// Wait policies, re-exported from the queue package.
const (
	WaitSleep = spsc.WaitSleep
	WaitBusy  = spsc.WaitBusy
)

// Machine describes a processor topology for pinning decisions.
type Machine = topology.Machine

// Container is the intermediate key-value store interface.
type Container[K comparable, V any] = container.Container[K, V]

// DefaultConfig returns a runnable configuration for the current host.
func DefaultConfig() Config { return mr.DefaultConfig() }

// ConfigFromEnv returns DefaultConfig overridden by RAMR_* environment
// variables.
func ConfigFromEnv() (Config, error) { return mr.FromEnv() }

// Run executes the job with the RAMR engine (decoupled, overlapped
// map/combine with contention-aware pinning).
func Run[S any, K comparable, V, R any](spec *Spec[S, K, V, R], cfg Config) (*Result[K, R], error) {
	return core.Run(spec, cfg)
}

// RunPhoenix executes the job with the Phoenix++-style baseline engine
// (fused map+combine per worker).
func RunPhoenix[S any, K comparable, V, R any](spec *Spec[S, K, V, R], cfg Config) (*Result[K, R], error) {
	return phoenixRun(spec, cfg)
}

// IdentityReduce returns a pass-through Reduce for jobs whose combined
// value is the final value.
func IdentityReduce[K comparable, V any]() func(K, V) V {
	return mr.IdentityReduce[K, V]()
}

// HashFactory returns a container factory producing regular (dynamically
// growing) hash containers — the default Word Count container.
func HashFactory[K comparable, V any]() container.Factory[K, V] {
	return func() Container[K, V] { return container.NewHash[K, V]() }
}

// FixedArrayFactory returns a factory producing dense array containers for
// integer keys in [0, size) — the default container for apps whose key
// range is known a priori.
func FixedArrayFactory[V any](size int) container.Factory[int, V] {
	return func() Container[int, V] { return container.NewFixedArray[V](size) }
}

// FixedHashFactory returns a factory producing fixed-capacity
// open-addressing hash containers — the memory-intensive configuration of
// the paper's Figs. 8b/9b.
func FixedHashFactory[K comparable, V any](maxKeys int, hash func(K) uint64) container.Factory[K, V] {
	return func() Container[K, V] { return container.NewFixedHash[K, V](maxKeys, hash) }
}

// HashString is a ready-made FNV-1a string hasher for FixedHashFactory.
func HashString(s string) uint64 { return container.HashString(s) }

// HashInt is a ready-made int hasher for FixedHashFactory.
func HashInt(k int) uint64 { return container.HashInt(k) }

// HaswellServer returns the paper's dual-socket Haswell topology preset.
func HaswellServer() *Machine { return topology.HaswellServer() }

// XeonPhi returns the paper's Xeon Phi co-processor topology preset.
func XeonPhi() *Machine { return topology.XeonPhi() }

// DetectMachine returns the detected host topology (with a flat fallback).
func DetectMachine() *Machine { return topology.Detect() }

// TuneRatio estimates the mapper-to-combiner ratio for a job by measuring
// the throughput of its map and combine functions on an input sample, as
// §III-B of the paper prescribes. Feed the result into Config.Ratio.
func TuneRatio[S any, K comparable, V, R any](spec *Spec[S, K, V, R], cfg Config) (int, error) {
	return core.TuneRatio(spec, cfg)
}

// TraceCollector records per-worker execution timelines; assign one to
// Config.Trace, run a job, then export with WriteChromeTrace (view at
// chrome://tracing) or Summary.
type TraceCollector = trace.Collector

// NewTrace returns a collector ready to assign to Config.Trace.
func NewTrace() *TraceCollector { return trace.New() }

// JobTrace is a scheduled job's lifecycle trace: the scheduler-side
// spans (queue wait, grant allocation) and the run's worker lanes under
// one root span. Obtain it from JobHandle.Trace after the job finishes
// and render with WriteChromeTrace (view at ui.perfetto.dev).
type JobTrace = obs.Recorder

// Telemetry is the live observability layer: assign one to
// Config.Telemetry and the engines record per-worker counters and sample
// every SPSC ring's occupancy into a bounded time-series while the job
// runs. Export live via WritePrometheus/NewTelemetryServer, or read the
// structured report from Result.Telemetry after the run.
type Telemetry = telemetry.Telemetry

// TelemetryReport is the structured result of one instrumented run:
// counter totals, occupancy percentiles per queue, per-phase throughput
// and the sampled time-series. Dump with WriteJSON or Summary.
type TelemetryReport = telemetry.Report

// NewTelemetry returns a Telemetry with default sampling knobs, ready to
// assign to Config.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// TelemetryServer serves /metrics (Prometheus text format) and the
// net/http/pprof endpoints for a Telemetry.
type TelemetryServer = telemetry.Server

// NewTelemetryServer starts a TelemetryServer on addr (":0" picks a free
// port; read it back with Addr).
func NewTelemetryServer(t *Telemetry, addr string) (*TelemetryServer, error) {
	return telemetry.NewServer(t, addr)
}

// QueueStats aggregates the SPSC queue counters of one RAMR run; see
// Result.QueueStats and its String/FailedPushRate/ShortPollRate helpers.
type QueueStats = mr.QueueStats

// StealPolicy selects the map-phase task steering (StealChunked,
// StealOff); see Config.Steal.
type StealPolicy = mr.StealPolicy

// Steal policies, re-exported from the job model.
const (
	// StealChunked (the default) lets an idle mapper steal half the
	// remaining task batch from the nearest non-empty locality group.
	StealChunked = mr.StealChunked
	// StealOff restricts mappers to their own group's tasks — the static
	// steering baseline.
	StealOff = mr.StealOff
)

// StealStats aggregates the map phase's work-stealing counters by distance
// class; see Result.Steal and its StolenTasks/StealRate/Balanced helpers.
type StealStats = mr.StealStats

// TunerConfig enables the online adaptive tuner: assign one to
// Config.Tuner and the RAMR engine runs an elastic combiner pool whose
// size, consume batch and push backoff are steered each epoch by a
// deterministic seeded controller reading the telemetry stream. A nil
// Config.Tuner keeps the static engine behaviour bit-for-bit.
type TunerConfig = tuner.Config

// TunerReport is the tuner's decision log for one run (one Decision per
// epoch, with the telemetry signals that drove it); read it from
// Result.TunerReport after a tuned run.
type TunerReport = tuner.Report

// TunerProfile is an offline-tuned static configuration produced by the
// ramrtune command's coordinate-descent search; load one from disk with
// LoadTunerProfile and apply it with Config.ApplyProfile as a warm start.
type TunerProfile = tuner.Profile

// LoadTunerProfile reads and validates a JSON profile written by ramrtune.
func LoadTunerProfile(path string) (*TunerProfile, error) {
	return tuner.LoadProfile(path)
}

// IterInfo summarizes an Iterate loop (iterations, convergence, phases).
type IterInfo = mr.IterInfo

// Iterate drives an iterative MapReduce algorithm: run executes one
// iteration, done updates the algorithm's state from the result and
// reports convergence. See the kmeans example.
func Iterate[K comparable, R any](
	maxIter int,
	run func(iter int) (*Result[K, R], error),
	done func(iter int, res *Result[K, R]) bool,
) (*Result[K, R], IterInfo, error) {
	return mr.Iterate(maxIter, run, done)
}

// ResultCache is a byte-bounded LRU over finished run results keyed by
// content digest — the memoization layer behind the job service's
// 200-from-cache responses, reusable by embedders that front the
// library with their own admission path.
type ResultCache = memo.Cache

// ResultCacheStats is a point-in-time snapshot of a ResultCache's
// hit/miss/coalesce/eviction counters and byte accounting.
type ResultCacheStats = memo.Stats

// NewResultCache returns a cache bounded to maxBytes of accounted
// result payload (0 selects the 32 MiB default, negative disables
// caching — every Get misses and every Put is dropped).
func NewResultCache(maxBytes int64) *ResultCache { return memo.NewCache(maxBytes) }

// RunContext is Run with cancellation: once ctx is cancelled, mappers stop
// taking tasks after the current one, the pipeline drains cleanly, and the
// context's error is returned.
func RunContext[S any, K comparable, V, R any](ctx context.Context, spec *Spec[S, K, V, R], cfg Config) (*Result[K, R], error) {
	return core.RunContext(ctx, spec, cfg)
}

// RunPhoenixContext is RunPhoenix with cancellation.
func RunPhoenixContext[S any, K comparable, V, R any](ctx context.Context, spec *Spec[S, K, V, R], cfg Config) (*Result[K, R], error) {
	return phoenixRunContext(ctx, spec, cfg)
}
