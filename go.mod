module ramr

go 1.24
