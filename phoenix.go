package ramr

import (
	"context"

	"ramr/internal/mr"
	"ramr/internal/phoenix"
)

// phoenixRun is split into its own file so api.go reads as the API surface;
// it simply forwards to the baseline engine.
func phoenixRun[S any, K comparable, V, R any](spec *mr.Spec[S, K, V, R], cfg mr.Config) (*mr.Result[K, R], error) {
	return phoenix.Run(spec, cfg)
}

// phoenixRunContext forwards RunPhoenixContext to the baseline engine.
func phoenixRunContext[S any, K comparable, V, R any](ctx context.Context, spec *mr.Spec[S, K, V, R], cfg mr.Config) (*mr.Result[K, R], error) {
	return phoenix.RunContext(ctx, spec, cfg)
}
