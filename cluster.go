package ramr

import (
	"context"

	"ramr/internal/cluster"
	"ramr/internal/service"
)

// Cluster is the multi-node coordinator: it splits a job submission into
// data shards, places each shard on a ramrd worker ranked by a link-cost
// model (the cache-distance victim order lifted to the network), runs
// the shards over the workers' HTTP job API with retry, saturation-aware
// re-placement and failed-worker resharding, and merges the per-worker
// partial containers into one result whose output digest is
// byte-identical to a single-node run. See cmd/ramrc for the daemon
// form and DESIGN.md §15 for the protocol.
type Cluster = cluster.Coordinator

// ClusterConfig parameterizes a Cluster: the worker set with link
// costs, the shard count, and the retry/backoff/timeout knobs.
type ClusterConfig = cluster.Config

// ClusterWorker names one ramrd worker and its link cost; workers
// sharing a cost share a switch tier in placement.
type ClusterWorker = cluster.WorkerSpec

// ClusterResult is a merged cluster run: the combined output digest and
// key count, plus each shard's dispatch record (worker, attempts,
// memo-hit and reshard flags).
type ClusterResult = cluster.Result

// ClusterJobRequest is the job submission shape shared with the
// single-node service tier: the coordinator accepts the same document a
// ramrd worker does (minus "shard", which is coordinator-assigned).
type ClusterJobRequest = service.JobRequest

// NewCluster validates cfg and builds a Cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// RunCluster dispatches one job across the cluster and blocks until the
// merged result (or the first unrecoverable failure).
func RunCluster(ctx context.Context, c *Cluster, req *ClusterJobRequest) (*ClusterResult, error) {
	return c.Run(ctx, req, nil)
}
