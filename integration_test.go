package ramr_test

import (
	"math"
	"strings"
	"testing"

	"ramr"
	"ramr/internal/harness"
	"ramr/internal/workloads"
)

// TestNativeExperimentsQuick exercises the native harness experiments
// end-to-end (the full suite through both engines on this host).
func TestNativeExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("native suite run is slow; skipped with -short")
	}
	for _, id := range []string{"native8a", "native8b"} {
		exp, err := harness.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := exp.Run(harness.Options{Seed: 1, Quick: true, Runs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != 6 {
			t.Fatalf("%s: %d rows", id, len(rep.Rows))
		}
		for _, row := range rep.Rows {
			if row.Values[0] <= 0 {
				t.Fatalf("%s: %s has non-positive speedup", id, row.Label)
			}
		}
	}
}

// TestFullPipelineKnobMatrix runs one real app through the public API
// across the knob matrix, validating output stability.
func TestFullPipelineKnobMatrix(t *testing.T) {
	job, err := workloads.NewJobParams("HG", workloads.Params{Bytes: 60_000}, workloads.DefaultContainer("HG"), 3)
	if err != nil {
		t.Fatal(err)
	}
	var digest uint64
	for _, batch := range []int{1, 100, 5000} {
		for _, qcap := range []int{64, 5000} {
			cfg := ramr.DefaultConfig()
			cfg.Mappers = 2
			cfg.Combiners = 2
			cfg.BatchSize = batch
			cfg.QueueCapacity = qcap
			info, err := job.Run(workloads.EngineRAMR, cfg)
			if err != nil {
				t.Fatalf("batch=%d cap=%d: %v", batch, qcap, err)
			}
			if digest == 0 {
				digest = info.Digest
			} else if info.Digest != digest {
				t.Fatalf("batch=%d cap=%d changes the result", batch, qcap)
			}
		}
	}
}

// TestPublicAPIFloatJob runs a float-valued job (KMeans-style) through
// both public engines and compares approximately.
func TestPublicAPIFloatJob(t *testing.T) {
	splits := [][2]int{}
	const n = 4000
	for lo := 0; lo < n; lo += 250 {
		splits = append(splits, [2]int{lo, lo + 250})
	}
	spec := &ramr.Spec[[2]int, int, float64, float64]{
		Name:   "float-sum",
		Splits: splits,
		Map: func(r [2]int, emit func(int, float64)) {
			for i := r[0]; i < r[1]; i++ {
				emit(i%7, float64(i)*0.5)
			}
		},
		Combine:      func(a, b float64) float64 { return a + b },
		Reduce:       ramr.IdentityReduce[int, float64](),
		NewContainer: ramr.FixedArrayFactory[float64](7),
		Less:         func(a, b int) bool { return a < b },
	}
	cfg := ramr.DefaultConfig()
	cfg.Mappers = 2
	cfg.Combiners = 2
	ra, err := ramr.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := ramr.RunPhoenix(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.Pairs {
		a, b := ra.Pairs[i].Value, ph.Pairs[i].Value
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("key %d: %v vs %v", ra.Pairs[i].Key, a, b)
		}
	}
}

// TestConfigFromEnvIntegration drives the public env-var path.
func TestConfigFromEnvIntegration(t *testing.T) {
	t.Setenv("RAMR_MAPPERS", "2")
	t.Setenv("RAMR_RATIO", "2")
	t.Setenv("RAMR_BATCH_SIZE", "64")
	cfg, err := ramr.ConfigFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mappers != 2 || cfg.BatchSize != 64 {
		t.Fatalf("%+v", cfg)
	}
	spec := wcSpec(8)
	res, err := ramr.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no output")
	}
}

// TestTopologyPresetsPublic sanity-checks the re-exported presets.
func TestTopologyPresetsPublic(t *testing.T) {
	if ramr.HaswellServer().NumCPUs() != 56 {
		t.Fatal("Haswell preset")
	}
	if ramr.XeonPhi().NumCPUs() != 228 {
		t.Fatal("Phi preset")
	}
	m := ramr.DetectMachine()
	if m.NumCPUs() < 1 {
		t.Fatal("detect")
	}
	if !strings.Contains(m.String(), "logical CPUs") {
		t.Fatal("machine String")
	}
}
