package workloads

import (
	"math"
	"strings"
	"testing"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/phoenix"
	"ramr/internal/topology"
)

const seed = 99

func cfg() mr.Config {
	c := mr.DefaultConfig()
	c.Mappers = 3
	c.Combiners = 2
	c.QueueCapacity = 512
	c.BatchSize = 64
	c.Machine = topology.Flat(4)
	c.Pin = mr.PinNone
	return c
}

// smallParams are CI-sized generator parameters per app.
func smallParams(app string) Params {
	switch app {
	case "WC", "HG":
		return Params{Bytes: 200_000}
	case "LR":
		return Params{Points: 20_000}
	case "KM":
		return Params{Points: 2_000, Dims: 4, K: 8}
	case "PCA":
		return Params{N: 40}
	case "MM":
		return Params{RowsA: 24, Inner: 32, ColsB: 28}
	default:
		return Params{}
	}
}

// TestEnginesAgreeExact: for integer-valued apps, RAMR and Phoenix must
// produce identical digests under every container configuration.
func TestEnginesAgreeExact(t *testing.T) {
	for _, app := range []string{"WC", "HG", "LR", "PCA", "MM"} {
		for _, stress := range []bool{false, true} {
			kind := DefaultContainer(app)
			if stress {
				kind = StressContainer(app)
			}
			job, err := NewJobParams(app, smallParams(app), kind, seed)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := job.Run(EngineRAMR, cfg())
			if err != nil {
				t.Fatalf("%s/%v RAMR: %v", app, kind, err)
			}
			ph, err := job.Run(EnginePhoenix, cfg())
			if err != nil {
				t.Fatalf("%s/%v Phoenix: %v", app, kind, err)
			}
			if ra.Pairs != ph.Pairs || ra.Digest != ph.Digest {
				t.Fatalf("%s/%v: engines disagree: ramr (%d pairs, %x), phoenix (%d pairs, %x)",
					app, kind, ra.Pairs, ra.Digest, ph.Pairs, ph.Digest)
			}
			if ra.Digest == 0 {
				t.Fatalf("%s: integer app should produce a digest", app)
			}
		}
	}
}

func TestWordCountReference(t *testing.T) {
	splits := GenerateText(50_000, seed)
	// Serial reference.
	want := map[string]int{}
	words := 0
	for _, s := range splits {
		for _, w := range strings.Fields(s) {
			want[w]++
			words++
		}
	}
	spec := WordCountSpec(splits, container.KindHash)
	res, err := core.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("%d distinct words, want %d", len(res.Pairs), len(want))
	}
	total := 0
	for _, p := range res.Pairs {
		if want[p.Key] != p.Value {
			t.Fatalf("count(%q) = %d, want %d", p.Key, p.Value, want[p.Key])
		}
		total += p.Value
	}
	if total != words {
		t.Fatalf("total %d, want %d", total, words)
	}
}

func TestHistogramReference(t *testing.T) {
	splits := GeneratePixels(30_000, seed)
	want := make([]int, hgBuckets)
	pixels := 0
	for _, px := range splits {
		for i := 0; i+2 < len(px); i += 3 {
			want[int(px[i])]++
			want[256+int(px[i+1])]++
			want[512+int(px[i+2])]++
			pixels++
		}
	}
	spec := HistogramSpec(splits, container.KindFixedArray)
	res, err := phoenix.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if want[p.Key] != p.Value {
			t.Fatalf("bucket %d = %d, want %d", p.Key, p.Value, want[p.Key])
		}
	}
	// Channel sums must each equal the pixel count.
	sums := [3]int{}
	for _, p := range res.Pairs {
		sums[p.Key/256] += p.Value
	}
	for ch, s := range sums {
		if s != pixels {
			t.Fatalf("channel %d sum = %d, want %d", ch, s, pixels)
		}
	}
}

func TestLinRegReference(t *testing.T) {
	splits := GenerateLRPoints(10_000, seed)
	var sx, sy, sxx, syy, sxy int64
	n := 0
	for _, pts := range splits {
		for _, p := range pts {
			x, y := int64(p.X), int64(p.Y)
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			n++
		}
	}
	spec := LinRegSpec(splits, container.KindFixedArray)
	res, err := core.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int64{}
	for _, p := range res.Pairs {
		got[p.Key] = p.Value
	}
	for key, want := range map[int]int64{lrKeySX: sx, lrKeySY: sy, lrKeySXX: sxx, lrKeySYY: syy, lrKeySXY: sxy} {
		if got[key] != want {
			t.Fatalf("key %d = %d, want %d", key, got[key], want)
		}
	}
	// The generated data follows y ~ 0.7x + 30; the fit must recover it.
	slope, intercept := LRSolve(n, got)
	if math.Abs(slope-0.7) > 0.05 || math.Abs(intercept-30) > 6 {
		t.Fatalf("fit = %.3fx + %.1f, want ~0.7x + 30", slope, intercept)
	}
}

func TestKMeansReference(t *testing.T) {
	in := GenerateKMeans(1500, 4, 6, seed)
	spec := KMeansSpec(in, container.KindFixedArray)
	res, err := core.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference assignment.
	stride := in.Dims + 1
	want := make([]float64, in.K*stride)
	for p := 0; p < 1500; p++ {
		pt := in.Points[p*in.Dims : (p+1)*in.Dims]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < in.K; c++ {
			ct := in.Centroids[c*in.Dims : (c+1)*in.Dims]
			var d2 float64
			for d := 0; d < in.Dims; d++ {
				diff := pt[d] - ct[d]
				d2 += diff * diff
			}
			if d2 < bestD {
				best, bestD = c, d2
			}
		}
		for d := 0; d < in.Dims; d++ {
			want[best*stride+d] += pt[d]
		}
		want[best*stride+in.Dims]++
	}
	for _, p := range res.Pairs {
		if diff := math.Abs(p.Value - want[p.Key]); diff > 1e-6*(1+math.Abs(want[p.Key])) {
			t.Fatalf("key %d = %v, want %v", p.Key, p.Value, want[p.Key])
		}
	}
	// One step must move centroids toward the data (finite values).
	next := KMeansStep(in, res.Pairs)
	if len(next) != len(in.Centroids) {
		t.Fatal("KMeansStep size")
	}
	for _, v := range next {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite centroid")
		}
	}
}

// TestKMeansEnginesAgreeApprox: float accumulation differs in rounding
// only.
func TestKMeansEnginesAgreeApprox(t *testing.T) {
	in := GenerateKMeans(1200, 4, 5, seed)
	spec := KMeansSpec(in, container.KindFixedArray)
	ra, err := core.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	ph, err := phoenix.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Pairs) != len(ph.Pairs) {
		t.Fatalf("key sets differ: %d vs %d", len(ra.Pairs), len(ph.Pairs))
	}
	for i := range ra.Pairs {
		a, b := ra.Pairs[i], ph.Pairs[i]
		if a.Key != b.Key || math.Abs(a.Value-b.Value) > 1e-6*(1+math.Abs(b.Value)) {
			t.Fatalf("pair %d: ramr %+v vs phoenix %+v", i, a, b)
		}
	}
}

func TestMatMulReference(t *testing.T) {
	in := GenerateMM(12, 16, 14, seed)
	spec := MatMulSpec(in, container.KindFixedArray)
	res, err := core.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int64{}
	for _, p := range res.Pairs {
		got[p.Key] = p.Value
	}
	for i := 0; i < in.Rows; i++ {
		for j := 0; j < in.Cols; j++ {
			var want int64
			for k := 0; k < in.Inner; k++ {
				want += int64(in.A[i*in.Inner+k]) * int64(in.B[k*in.Cols+j])
			}
			if got[i*in.Cols+j] != want {
				t.Fatalf("C[%d,%d] = %d, want %d", i, j, got[i*in.Cols+j], want)
			}
		}
	}
}

func TestPCAReference(t *testing.T) {
	in := GeneratePCA(24, seed)
	spec := PCASpec(in, container.KindFixedArray)
	res, err := phoenix.Run(spec, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int64{}
	for _, p := range res.Pairs {
		got[p.Key] = p.Value
	}
	n := in.N
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var cov int64
			for k := 0; k < n; k++ {
				cov += (int64(in.Matrix[i*n+k]) - int64(in.Mean[i])) *
					(int64(in.Matrix[j*n+k]) - int64(in.Mean[j]))
			}
			cov /= int64(n - 1)
			if got[i*n+j] != cov {
				t.Fatalf("cov(%d,%d) = %d, want %d", i, j, got[i*n+j], cov)
			}
		}
	}
	// Diagonal entries are variances: non-negative.
	for i := 0; i < n; i++ {
		if got[i*n+i] < 0 {
			t.Fatalf("negative variance at row %d", i)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenerateText(10_000, 5)
	b := GenerateText(10_000, 5)
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatal("GenerateText not deterministic")
	}
	c := GenerateText(10_000, 6)
	if a[0] == c[0] {
		t.Fatal("seed has no effect")
	}
}

func TestTable1Coverage(t *testing.T) {
	for _, p := range []Platform{HWL, PHI} {
		for _, c := range SizeClasses() {
			ins := Inputs(p, c)
			if len(ins) != 6 {
				t.Fatalf("%v/%v: %d inputs", p, c, len(ins))
			}
			for _, in := range ins {
				if in.Paper == "" {
					t.Fatalf("%v/%v/%s: missing paper size", p, c, in.App)
				}
			}
		}
	}
	// Scaling must preserve Table I ratios: WC HWL Large/Small = 4x.
	small, _ := Input("WC", HWL, Small)
	large, _ := Input("WC", HWL, Large)
	if large.Params.Bytes != 4*small.Params.Bytes {
		t.Fatalf("WC HWL Large/Small = %d/%d, want 4x", large.Params.Bytes, small.Params.Bytes)
	}
	if _, err := Input("NOPE", HWL, Small); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestContainerSelections(t *testing.T) {
	if DefaultContainer("WC") != container.KindHash {
		t.Fatal("WC default should be hash")
	}
	if DefaultContainer("HG") != container.KindFixedArray {
		t.Fatal("HG default should be array")
	}
	if StressContainer("MM") != container.KindHash || StressContainer("PCA") != container.KindHash {
		t.Fatal("MM/PCA stress should be regular hash")
	}
	if StressContainer("LR") != container.KindFixedHash {
		t.Fatal("LR stress should be fixed-hash")
	}
}

func TestNewJobUnknownApp(t *testing.T) {
	if _, err := NewJob("XX", HWL, Small, container.KindHash, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := NewJobParams("XX", Params{}, container.KindHash, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestEngineString(t *testing.T) {
	if EngineRAMR.String() != "RAMR" || EnginePhoenix.String() != "Phoenix++" {
		t.Fatal("engine names")
	}
	if Engine(9).String() == "" {
		t.Fatal("unknown engine should render")
	}
}

func TestRunTypedUnknownEngine(t *testing.T) {
	job := HistogramJob(3000, container.KindFixedArray, seed)
	if _, err := job.Run(Engine(42), cfg()); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestNewJobParamsSM(t *testing.T) {
	job, err := NewJobParams("SM", Params{Bytes: 30_000}, DefaultContainer("WC"), seed)
	if err != nil {
		t.Fatal(err)
	}
	info, err := job.Run(EngineRAMR, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if info.Pairs == 0 || info.Pairs > len(SMPatterns) {
		t.Fatalf("SM matched %d patterns", info.Pairs)
	}
}
