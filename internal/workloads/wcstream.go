package workloads

import (
	"fmt"
	"strconv"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stream"
)

// NewWordCountStreamSession builds a resident streaming session over the
// Word Count algebra: the same Map/Combine/Reduce as WordCountSpec, but
// input arrives as text chunks over time. Each RawChunk carries its text
// in Lines, one line per split, so a producer streams real data in (the
// SYNTH session, by contrast, only asks for generated elements). A
// window's result is the word count over every line admitted to it.
func NewWordCountStreamSession(kind container.Kind, cfg mr.Config) (*stream.Session, error) {
	spec := WordCountSpec(nil, kind)
	pipe, err := stream.New(spec, cfg)
	if err != nil {
		return nil, err
	}
	return stream.Erase(pipe, stream.EraseOpts[string, string, int]{
		Decode: func(rc stream.RawChunk) ([]string, error) {
			if rc.Elements > 0 {
				return nil, fmt.Errorf("workloads: WC chunks carry lines, not elements (got elements=%d)", rc.Elements)
			}
			if len(rc.Lines) == 0 {
				return nil, nil
			}
			return rc.Lines, nil
		},
		Digest: func(pairs []mr.Pair[string, int]) string {
			var d uint64
			for _, pr := range pairs {
				d += wcPairDigest(pr.Key, pr.Value)
			}
			return fmt.Sprintf("%016x", d)
		},
		Format: func(pr mr.Pair[string, int]) (string, string) {
			return pr.Key, strconv.Itoa(pr.Value)
		},
	})
}
