package workloads

import (
	"strings"
	"testing"
)

func TestStringMatchReference(t *testing.T) {
	splits := GenerateSMText(60_000, seed)
	want := map[string]int{}
	for _, s := range splits {
		for _, w := range strings.Fields(s) {
			for _, p := range SMPatterns {
				if w == p {
					want[p]++
				}
			}
		}
	}
	job := StringMatchJob(60_000, seed)
	ra, err := job.Run(EngineRAMR, cfg())
	if err != nil {
		t.Fatal(err)
	}
	ph, err := job.Run(EnginePhoenix, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Digest != ph.Digest {
		t.Fatal("engines disagree on SM")
	}
	if ra.Pairs != len(want) {
		t.Fatalf("%d patterns matched, want %d", ra.Pairs, len(want))
	}
	if len(want) == 0 {
		t.Fatal("generator spliced no patterns")
	}
}

func TestStringMatchSpecCounts(t *testing.T) {
	spec := StringMatchSpec([]string{"key1 foo key2 key1", "bar key1"}, SMPatterns)
	counts := map[string]int{}
	for _, s := range spec.Splits {
		spec.Map(s, func(k string, v int) { counts[k] += v })
	}
	if counts["key1"] != 3 || counts["key2"] != 1 || counts["key3"] != 0 {
		t.Fatalf("%v", counts)
	}
}
