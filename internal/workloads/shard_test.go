package workloads

import (
	"strings"
	"testing"
)

func TestShardSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		sh ShardSpec
		ok bool
	}{
		{ShardSpec{Index: 0, Count: 1}, true},
		{ShardSpec{Index: 3, Count: 4}, true},
		{ShardSpec{Index: 4, Count: 4}, false},
		{ShardSpec{Index: -1, Count: 4}, false},
		{ShardSpec{Index: 0, Count: 0}, false},
	} {
		if err := tc.sh.Validate(); (err == nil) != tc.ok {
			t.Errorf("ShardSpec%+v.Validate() = %v, want ok=%v", tc.sh, err, tc.ok)
		}
	}
}

// TestShardSplitsPartition pins the sharding invariant every merged
// digest rests on: the shards partition the split list — every split
// lands in exactly one shard, in order.
func TestShardSplitsPartition(t *testing.T) {
	splits := make([]int, 17)
	for i := range splits {
		splits[i] = i
	}
	for _, count := range []int{1, 2, 3, 5, 17, 20} {
		seen := map[int]int{}
		for idx := 0; idx < count; idx++ {
			for _, s := range ShardSplits(splits, ShardSpec{Index: idx, Count: count}) {
				seen[s]++
			}
		}
		if len(seen) != len(splits) {
			t.Fatalf("count=%d: shards cover %d of %d splits", count, len(seen), len(splits))
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("count=%d: split %d appears in %d shards", count, s, n)
			}
		}
	}
}

// TestShardMergeMatchesSingleNode is the cluster tier's core contract at
// the workloads layer: running every shard separately, merging the
// partials and re-folding the digest reproduces the single-node RunInfo
// bit for bit — same pair count, same output digest — for every shard
// count, WC and HG alike.
func TestShardMergeMatchesSingleNode(t *testing.T) {
	for _, app := range []string{"WC", "HG"} {
		full, err := NewJobParams(app, smallParams(app), DefaultContainer(app), seed)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := full.Run(EngineRAMR, cfg())
		if err != nil {
			t.Fatal(err)
		}
		for _, count := range []int{1, 2, 3, 5} {
			parts := make([]*Partial, count)
			for i := 0; i < count; i++ {
				sj, err := NewShardJobParams(app, smallParams(app), DefaultContainer(app), seed,
					ShardSpec{Index: i, Count: count})
				if err != nil {
					t.Fatal(err)
				}
				si, err := sj.Run(EngineRAMR, cfg())
				if err != nil {
					t.Fatalf("%s shard %d/%d: %v", app, i, count, err)
				}
				if si.Partial == nil {
					t.Fatalf("%s shard %d/%d: no partial exported", app, i, count)
				}
				parts[i] = si.Partial
			}
			merged, err := MergePartials(parts)
			if err != nil {
				t.Fatal(err)
			}
			pairs, digest, err := merged.Summary()
			if err != nil {
				t.Fatal(err)
			}
			if pairs != fi.Pairs || digest != fi.Digest {
				t.Fatalf("%s sharded %d ways: merged (%d pairs, %016x), single-node (%d pairs, %016x)",
					app, count, pairs, digest, fi.Pairs, fi.Digest)
			}
		}
	}
}

func TestMergePartialsErrors(t *testing.T) {
	if _, err := MergePartials(nil); err == nil {
		t.Error("merging zero partials should fail")
	}
	if _, err := MergePartials([]*Partial{nil, nil}); err == nil {
		t.Error("merging only nil partials should fail")
	}
	_, err := MergePartials([]*Partial{
		{App: "WC", Str: map[string]int64{"a": 1}},
		{App: "HG", Int: map[int]uint64{1: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "WC") {
		t.Errorf("app mismatch should fail naming the apps, got %v", err)
	}
	if _, err := MergePartials([]*Partial{
		{App: "WC", Str: map[string]int64{"a": 1}, Int: map[int]uint64{1: 1}},
	}); err == nil {
		t.Error("a partial with both key spaces populated should fail")
	}
}

// TestMergePartialsKeySums pins the merge semantics on a hand-checkable
// case: key-wise sums, absent keys passing through.
func TestMergePartialsKeySums(t *testing.T) {
	merged, err := MergePartials([]*Partial{
		{App: "WC", Str: map[string]int64{"a": 2, "b": 1}},
		nil, // a skipped shard slot must not derail the fold
		{App: "WC", Str: map[string]int64{"a": 3, "c": 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a": 5, "b": 1, "c": 7}
	if len(merged.Str) != len(want) {
		t.Fatalf("merged %v, want %v", merged.Str, want)
	}
	for k, v := range want {
		if merged.Str[k] != v {
			t.Errorf("merged[%q] = %d, want %d", k, merged.Str[k], v)
		}
	}
}

func TestShardableApps(t *testing.T) {
	for _, app := range ShardableApps() {
		if !Shardable(app) {
			t.Errorf("ShardableApps lists %s but Shardable rejects it", app)
		}
	}
	for _, app := range []string{"KM", "LR", "MM", "PCA", "SM", "nope"} {
		if Shardable(app) {
			t.Errorf("%s must not be shardable (inexact or non-commutative merge)", app)
		}
	}
	if _, err := NewShardJobParams("KM", smallParams("KM"), DefaultContainer("KM"), seed,
		ShardSpec{Index: 0, Count: 2}); err == nil {
		t.Error("sharding KM should fail")
	}
}
