package workloads

import (
	"fmt"

	"ramr/internal/container"
)

// Platform selects the evaluation platform whose Table I column scales the
// inputs.
type Platform int

const (
	// HWL is the Haswell server column of Table I.
	HWL Platform = iota
	// PHI is the Xeon Phi column of Table I.
	PHI
)

// String names the platform as in Table I.
func (p Platform) String() string {
	if p == HWL {
		return "HWL"
	}
	return "PHI"
}

// SizeClass is the input flavor of Table I.
type SizeClass int

const (
	// Small is Table I's Small flavor.
	Small SizeClass = iota
	// Medium is Table I's Medium flavor.
	Medium
	// Large is Table I's Large flavor.
	Large
)

// String names the size class as in Table I.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	default:
		return "Large"
	}
}

// SizeClasses lists the three flavors in Table I order.
func SizeClasses() []SizeClass { return []SizeClass{Small, Medium, Large} }

// InputSpec carries both the paper's original input size (for the Table I
// report) and the scaled parameters this reproduction actually generates.
type InputSpec struct {
	App      string
	Platform Platform
	Class    SizeClass
	// Paper is the size as printed in Table I ("400MB", "2K x 2K", ...).
	Paper string
	// Params are the generator parameters actually used here.
	Params Params
}

// Params is the union of all generator parameters; each app reads the
// fields it needs.
type Params struct {
	Bytes  int // WC, HG: input volume in bytes
	Points int // LR, KM: number of input points
	Dims   int // KM: point dimensionality
	K      int // KM: number of clusters
	N      int // PCA: matrix dimension (N x N)
	RowsA  int // MM: A is RowsA x Inner
	Inner  int // MM: shared dimension
	ColsB  int // MM: B is Inner x ColsB
}

// scale reduces the paper's sizes to CI scale. The divisor keeps every
// Table I *ratio* intact: Large/Small stays 4x for WC on Haswell, etc.
const (
	wcScale  = 100 // bytes divisor: 400 MB -> 4 MB
	hgScale  = 100 // bytes divisor: 200 MB -> 2 MB
	lrScale  = 100 // points divisor: 400K pts -> 4K pts... see table
	mmScale  = 8   // per-dimension divisor: 2K -> 256
	pcaScale = 5   // per-dimension divisor: 500 -> 100
)

// Inputs returns the full Table I grid with scaled parameters.
func Inputs(p Platform, c SizeClass) []InputSpec {
	idx := int(c)
	pick := func(vals [3]string) string { return vals[idx] }
	pickI := func(vals [3]int) int { return vals[idx] }

	var specs []InputSpec
	switch p {
	case HWL:
		specs = []InputSpec{
			{App: "WC", Paper: pick([3]string{"400MB", "800MB", "1.6GB"}),
				Params: Params{Bytes: pickI([3]int{400 << 20, 800 << 20, 1600 << 20}) / wcScale}},
			{App: "KM", Paper: pick([3]string{"400K", "800K", "2M"}),
				Params: Params{Points: pickI([3]int{400_000, 800_000, 2_000_000}) / lrScale, Dims: 8, K: 100}},
			{App: "LR", Paper: pick([3]string{"400MB", "800MB", "1.6GB"}),
				Params: Params{Points: pickI([3]int{400 << 20, 800 << 20, 1600 << 20}) / (8 * wcScale)}},
			{App: "PCA", Paper: pick([3]string{"500", "800", "1000"}),
				Params: Params{N: pickI([3]int{500, 800, 1000}) / pcaScale}},
			{App: "MM", Paper: pick([3]string{"2Kx2K", "3Kx2K", "4Kx4K"}),
				Params: Params{RowsA: pickI([3]int{2048, 3072, 4096}) / mmScale,
					Inner: pickI([3]int{2048, 2048, 4096}) / mmScale,
					ColsB: pickI([3]int{2048, 2048, 4096}) / mmScale}},
			{App: "HG", Paper: pick([3]string{"200MB", "400MB", "1GB"}),
				Params: Params{Bytes: pickI([3]int{200 << 20, 400 << 20, 1000 << 20}) / hgScale}},
		}
	case PHI:
		specs = []InputSpec{
			{App: "WC", Paper: pick([3]string{"200MB", "400MB", "800MB"}),
				Params: Params{Bytes: pickI([3]int{200 << 20, 400 << 20, 800 << 20}) / wcScale}},
			{App: "KM", Paper: pick([3]string{"200K", "400K", "800K"}),
				Params: Params{Points: pickI([3]int{200_000, 400_000, 800_000}) / lrScale, Dims: 8, K: 100}},
			{App: "LR", Paper: pick([3]string{"200MB", "400MB", "800MB"}),
				Params: Params{Points: pickI([3]int{200 << 20, 400 << 20, 800 << 20}) / (8 * wcScale)}},
			{App: "PCA", Paper: pick([3]string{"300", "500", "800"}),
				Params: Params{N: pickI([3]int{300, 500, 800}) / pcaScale}},
			{App: "MM", Paper: pick([3]string{"2Kx2K", "3Kx2K", "4Kx4K"}),
				Params: Params{RowsA: pickI([3]int{2048, 3072, 4096}) / mmScale,
					Inner: pickI([3]int{2048, 2048, 4096}) / mmScale,
					ColsB: pickI([3]int{2048, 2048, 4096}) / mmScale}},
			{App: "HG", Paper: pick([3]string{"200MB", "400MB", "600MB"}),
				Params: Params{Bytes: pickI([3]int{200 << 20, 400 << 20, 600 << 20}) / hgScale}},
		}
	}
	for i := range specs {
		specs[i].Platform = p
		specs[i].Class = c
	}
	return specs
}

// Input returns the spec for one app on one platform/class.
func Input(app string, p Platform, c SizeClass) (InputSpec, error) {
	for _, s := range Inputs(p, c) {
		if s.App == app {
			return s, nil
		}
	}
	return InputSpec{}, fmt.Errorf("workloads: unknown app %q", app)
}

// DefaultContainer returns each app's default container kind (§IV-D: "the
// default container for all applications is a thread-local fixed array ...
// except WC that uses thread-local hash tables").
func DefaultContainer(app string) container.Kind {
	if app == "WC" {
		return container.KindHash
	}
	return container.KindFixedArray
}

// StressContainer returns the memory-intensive container configuration of
// Figs. 8b/9b: "fixed-size hash tables in HG, KM, LR and WC, and regular
// hash tables in MM and PCA".
func StressContainer(app string) container.Kind {
	switch app {
	case "MM", "PCA":
		return container.KindHash
	default:
		return container.KindFixedHash
	}
}

// NewJob instantiates the named app with Table I-scaled input.
func NewJob(app string, p Platform, c SizeClass, kind container.Kind, seed int64) (*Job, error) {
	in, err := Input(app, p, c)
	if err != nil {
		return nil, err
	}
	return NewJobParams(app, in.Params, kind, seed)
}

// NewJobParams instantiates the named app with explicit generator
// parameters.
func NewJobParams(app string, pr Params, kind container.Kind, seed int64) (*Job, error) {
	switch app {
	case "WC":
		return WordCountJob(pr.Bytes, kind, seed), nil
	case "HG":
		return HistogramJob(pr.Bytes, kind, seed), nil
	case "LR":
		return LinRegJob(pr.Points, kind, seed), nil
	case "KM":
		return KMeansJob(pr.Points, pr.Dims, pr.K, kind, seed), nil
	case "PCA":
		return PCAJob(pr.N, kind, seed), nil
	case "MM":
		return MatMulJob(pr.RowsA, pr.Inner, pr.ColsB, kind, seed), nil
	case "SM":
		// Suite extension (not part of the paper's figures); the
		// container choice is fixed.
		return StringMatchJob(pr.Bytes, seed), nil
	default:
		return nil, fmt.Errorf("workloads: unknown app %q", app)
	}
}
