package workloads

import (
	"context"
	"fmt"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stats"
)

// hgBuckets is the histogram key range: 256 intensity buckets for each of
// the three color channels, as in the Phoenix++ Histogram app.
const hgBuckets = 3 * 256

// hgSplitBytes is the pixel bytes per split, kept a multiple of 3 so a
// pixel never straddles splits.
const hgSplitBytes = 12 << 10

// GeneratePixels builds about n bytes of deterministic synthetic RGB pixel
// data, pre-partitioned into splits. Channel distributions are skewed
// differently (sky-ish blue bias) so the histogram is non-uniform like a
// real bitmap.
func GeneratePixels(n int, seed int64) [][]byte {
	rng := stats.Rng(seed, "histogram")
	var splits [][]byte
	remaining := n - n%3
	for remaining > 0 {
		sz := hgSplitBytes
		if sz > remaining {
			sz = remaining
		}
		b := make([]byte, sz)
		for i := 0; i+2 < len(b); i += 3 {
			b[i] = byte(rng.Intn(200))        // R: darker
			b[i+1] = byte(rng.Intn(256))      // G: uniform
			b[i+2] = byte(55 + rng.Intn(200)) // B: brighter
		}
		splits = append(splits, b)
		remaining -= sz
	}
	return splits
}

func hgContainer(kind container.Kind) container.Factory[int, int] {
	switch kind {
	case container.KindFixedHash:
		return func() container.Container[int, int] {
			return container.NewFixedHash[int, int](hgBuckets, container.HashInt)
		}
	case container.KindHash:
		return func() container.Container[int, int] { return container.NewHash[int, int]() }
	default:
		return func() container.Container[int, int] { return container.NewFixedArray[int](hgBuckets) }
	}
}

// HistogramSpec builds the HG job over the given pixel splits.
func HistogramSpec(splits [][]byte, kind container.Kind) *mr.Spec[[]byte, int, int, int] {
	return &mr.Spec[[]byte, int, int, int]{
		Name:   "HG",
		Splits: splits,
		Map: func(px []byte, emit func(int, int)) {
			for i := 0; i+2 < len(px); i += 3 {
				emit(int(px[i]), 1)
				emit(256+int(px[i+1]), 1)
				emit(512+int(px[i+2]), 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: hgContainer(kind),
		Less:         func(a, b int) bool { return a < b },
	}
}

// HistogramJob instantiates Histogram over ~nBytes of synthetic pixels.
// Histogram is the image-processing app and, with LR, one of the two
// "light" workloads (lowest instructions-per-byte): three emissions per
// pixel with almost no computation, which is why the paper finds it
// unsuited to RAMR with default containers (queue overhead dominates).
func HistogramJob(nBytes int, kind container.Kind, seed int64) *Job {
	splits := GeneratePixels(nBytes, seed)
	spec := HistogramSpec(splits, kind)
	j := &Job{
		App:       "HG",
		FullName:  "Histogram",
		Container: kind,
		InputDesc: fmt.Sprintf("%d pixel-bytes in %d splits", nBytes, len(splits)),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		return RunTypedContext(ctx, spec, eng, cfg, hgPairDigest)
	})
}

// hgPairDigest folds one HG output pair into the run's order-independent
// digest; shard merging re-applies it over the merged container.
func hgPairDigest(k, v int) uint64 {
	return mix(uint64(k)*0x9e3779b97f4a7c15 ^ uint64(v))
}
