package workloads

import (
	"context"
	"fmt"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stats"
)

// PCA computes the covariance matrix of an N x N integer matrix whose row
// means are pre-computed (the mean pass is O(N^2) against the covariance
// pass's O(N^3), so the covariance job dominates and is what we time, as
// in the Phoenix suite where the covariance phase dwarfs the mean phase).
//
// Keys are packed upper-triangle coordinates i*N+j (i <= j); each map task
// covers a block of row pairs and emits one full covariance entry per
// pair, so the map is long arithmetic over two rows (high IPB, sequential
// access — the paper's Fig. 10 shows PCA with high instruction intensity
// but few stalls, which is why RAMR neither helps nor hurts it much).

// PCAInput is a generated PCA problem instance.
type PCAInput struct {
	// Matrix is the N x N data, row-major.
	Matrix []int32
	// Mean[i] is the mean of row i (integer division, as in Phoenix).
	Mean []int32
	// N is the dimension.
	N int
	// Splits are [start, end) ranges over the flattened upper-triangle
	// pair index space.
	Splits [][2]int
	// PairIndex maps flattened index -> (i, j) with i <= j.
	PairIndex [][2]int32
}

// pcaSplitPairs is the number of row pairs per split.
const pcaSplitPairs = 64

// GeneratePCA builds a deterministic N x N matrix with correlated rows and
// pre-computes the row means.
func GeneratePCA(n int, seed int64) *PCAInput {
	rng := stats.Rng(seed, "pca")
	m := make([]int32, n*n)
	base := make([]int32, n)
	for j := range base {
		base[j] = int32(rng.Intn(100))
	}
	for i := 0; i < n; i++ {
		scale := int32(1 + i%3)
		for j := 0; j < n; j++ {
			m[i*n+j] = base[j]*scale + int32(rng.Intn(20))
		}
	}
	mean := make([]int32, n)
	for i := 0; i < n; i++ {
		var s int64
		for j := 0; j < n; j++ {
			s += int64(m[i*n+j])
		}
		mean[i] = int32(s / int64(n))
	}
	var pairs [][2]int32
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
	}
	var splits [][2]int
	for lo := 0; lo < len(pairs); lo += pcaSplitPairs {
		hi := lo + pcaSplitPairs
		if hi > len(pairs) {
			hi = len(pairs)
		}
		splits = append(splits, [2]int{lo, hi})
	}
	return &PCAInput{Matrix: m, Mean: mean, N: n, Splits: splits, PairIndex: pairs}
}

func pcaContainer(kind container.Kind, n int) container.Factory[int, int64] {
	switch kind {
	case container.KindHash:
		return func() container.Container[int, int64] { return container.NewHash[int, int64]() }
	case container.KindFixedHash:
		return func() container.Container[int, int64] {
			return container.NewFixedHash[int, int64](n*(n+1)/2+1, container.HashInt)
		}
	default:
		// The fixed array spans the full N x N key space even though
		// only the upper triangle is used — the same capacity
		// overshoot the paper describes for MM's default container.
		return func() container.Container[int, int64] { return container.NewFixedArray[int64](n * n) }
	}
}

// PCASpec builds the covariance job.
func PCASpec(in *PCAInput, kind container.Kind) *mr.Spec[[2]int, int, int64, int64] {
	n := in.N
	return &mr.Spec[[2]int, int, int64, int64]{
		Name:   "PCA",
		Splits: in.Splits,
		Map: func(rng [2]int, emit func(int, int64)) {
			for p := rng[0]; p < rng[1]; p++ {
				i, j := int(in.PairIndex[p][0]), int(in.PairIndex[p][1])
				ri := in.Matrix[i*n : (i+1)*n]
				rj := in.Matrix[j*n : (j+1)*n]
				mi, mj := int64(in.Mean[i]), int64(in.Mean[j])
				var cov int64
				for k := 0; k < n; k++ {
					cov += (int64(ri[k]) - mi) * (int64(rj[k]) - mj)
				}
				emit(i*n+j, cov/int64(n-1))
			}
		},
		Combine:      func(a, b int64) int64 { return a + b },
		Reduce:       mr.IdentityReduce[int, int64](),
		NewContainer: pcaContainer(kind, n),
		Less:         func(a, b int) bool { return a < b },
	}
}

// PCAJob instantiates PCA (covariance) over an N x N synthetic matrix.
func PCAJob(n int, kind container.Kind, seed int64) *Job {
	in := GeneratePCA(n, seed)
	spec := PCASpec(in, kind)
	j := &Job{
		App:       "PCA",
		FullName:  "Principal Component Analysis (covariance)",
		Container: kind,
		InputDesc: fmt.Sprintf("%dx%d matrix, %d row pairs", n, n, len(in.PairIndex)),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		return RunTypedContext(ctx, spec, eng, cfg, func(k int, v int64) uint64 {
			return mix(uint64(k)*0x9e3779b97f4a7c15 ^ uint64(v))
		})
	})
}
