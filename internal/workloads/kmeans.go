package workloads

import (
	"context"
	"fmt"
	"math"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stats"
)

// KMeans keys: cluster c contributes keys c*(Dims+1)+d for its coordinate
// sums (d < Dims) and c*(Dims+1)+Dims for its member count. Keeping the
// value a plain float64 keeps containers allocation-free on the hot path.

// KMInput is a generated KMeans problem instance.
type KMInput struct {
	// Points holds n*Dims coordinates, point-major.
	Points []float64
	// Centroids holds K*Dims coordinates, centroid-major.
	Centroids []float64
	// Dims is the point dimensionality, K the cluster count.
	Dims, K int
	// Splits are [start, end) point-index ranges.
	Splits [][2]int
}

// kmSplitPoints is the number of points per split.
const kmSplitPoints = 256

// GenerateKMeans builds n points in dims dimensions drawn from k Gaussian
// blobs, plus k initial centroids perturbed from the blob centers.
func GenerateKMeans(n, dims, k int, seed int64) *KMInput {
	rng := stats.Rng(seed, "kmeans")
	centers := make([]float64, k*dims)
	for i := range centers {
		centers[i] = rng.Float64() * 100
	}
	pts := make([]float64, n*dims)
	for p := 0; p < n; p++ {
		c := rng.Intn(k)
		for d := 0; d < dims; d++ {
			pts[p*dims+d] = centers[c*dims+d] + rng.NormFloat64()*3
		}
	}
	cent := make([]float64, k*dims)
	for i := range cent {
		cent[i] = centers[i] + rng.NormFloat64()
	}
	var splits [][2]int
	for lo := 0; lo < n; lo += kmSplitPoints {
		hi := lo + kmSplitPoints
		if hi > n {
			hi = n
		}
		splits = append(splits, [2]int{lo, hi})
	}
	return &KMInput{Points: pts, Centroids: cent, Dims: dims, K: k, Splits: splits}
}

func kmContainer(kind container.Kind, keys int) container.Factory[int, float64] {
	switch kind {
	case container.KindFixedHash:
		return func() container.Container[int, float64] {
			return container.NewFixedHash[int, float64](keys, container.HashInt)
		}
	case container.KindHash:
		return func() container.Container[int, float64] { return container.NewHash[int, float64]() }
	default:
		return func() container.Container[int, float64] { return container.NewFixedArray[float64](keys) }
	}
}

// KMeansSpec builds one assignment iteration of KMeans as a MapReduce job:
// map finds each point's nearest centroid (K*Dims distance arithmetic per
// point — the heaviest map in the suite) and emits the point's coordinate
// contributions to that cluster's accumulator keys.
func KMeansSpec(in *KMInput, kind container.Kind) *mr.Spec[[2]int, int, float64, float64] {
	dims, k := in.Dims, in.K
	stride := dims + 1
	return &mr.Spec[[2]int, int, float64, float64]{
		Name:   "KM",
		Splits: in.Splits,
		Map: func(rng [2]int, emit func(int, float64)) {
			for p := rng[0]; p < rng[1]; p++ {
				pt := in.Points[p*dims : (p+1)*dims]
				best, bestD := 0, math.Inf(1)
				for c := 0; c < k; c++ {
					ct := in.Centroids[c*dims : (c+1)*dims]
					var d2 float64
					for d := 0; d < dims; d++ {
						diff := pt[d] - ct[d]
						d2 += diff * diff
					}
					if d2 < bestD {
						best, bestD = c, d2
					}
				}
				base := best * stride
				for d := 0; d < dims; d++ {
					emit(base+d, pt[d])
				}
				emit(base+dims, 1)
			}
		},
		Combine:      func(a, b float64) float64 { return a + b },
		Reduce:       mr.IdentityReduce[int, float64](),
		NewContainer: kmContainer(kind, k*stride),
		Less:         func(a, b int) bool { return a < b },
	}
}

// KMeansStep extracts the updated centroids from one iteration's output.
// Empty clusters keep their previous centroid.
func KMeansStep(in *KMInput, pairs []mr.Pair[int, float64]) []float64 {
	stride := in.Dims + 1
	sums := make([]float64, in.K*stride)
	for _, p := range pairs {
		if p.Key >= 0 && p.Key < len(sums) {
			sums[p.Key] = p.Value
		}
	}
	next := append([]float64(nil), in.Centroids...)
	for c := 0; c < in.K; c++ {
		n := sums[c*stride+in.Dims]
		if n == 0 {
			continue
		}
		for d := 0; d < in.Dims; d++ {
			next[c*in.Dims+d] = sums[c*stride+d] / n
		}
	}
	return next
}

// KMeansJob instantiates one KMeans assignment iteration. KMeans is the
// paper's best RAMR case: a compute-intensive map (distance evaluation)
// feeding a memory-intensive combine (accumulator updates), i.e. exactly
// the complementary behaviour the decoupled pipeline exploits.
func KMeansJob(nPoints, dims, k int, kind container.Kind, seed int64) *Job {
	in := GenerateKMeans(nPoints, dims, k, seed)
	spec := KMeansSpec(in, kind)
	j := &Job{
		App:       "KM",
		FullName:  "KMeans",
		Container: kind,
		InputDesc: fmt.Sprintf("%d points, %d dims, %d clusters", nPoints, dims, k),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		// Float accumulation order differs between engines, so no
		// exact digest: tests compare outputs with a tolerance.
		return RunTypedContext(ctx, spec, eng, cfg, nil)
	})
}
