// Package workloads implements the six applications of the Phoenix++
// benchmark suite that the paper evaluates (§IV-A): Word Count (WC),
// Histogram (HG), Linear Regression (LR), KMeans (KM), PCA and Matrix
// Multiply (MM), each with a deterministic synthetic input generator and a
// type-erased Job adapter so the benchmark harness can run any app through
// either engine without knowing its type parameters.
//
// Input sizes follow Table I of the paper proportionally: the Small/
// Medium/Large grid per platform keeps the paper's ratios, with absolute
// sizes scaled down (documented in EXPERIMENTS.md) so the whole evaluation
// runs in CI time on a laptop-class host.
package workloads

import (
	"context"
	"fmt"
	"time"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/phoenix"
	"ramr/internal/telemetry"
	"ramr/internal/tuner"
)

// Engine selects which runtime executes a job.
type Engine int

const (
	// EngineRAMR is the decoupled, overlapped runtime (the paper's
	// contribution).
	EngineRAMR Engine = iota
	// EnginePhoenix is the fused Phoenix++-style baseline.
	EnginePhoenix
)

// String names the engine for reports.
func (e Engine) String() string {
	switch e {
	case EngineRAMR:
		return "RAMR"
	case EnginePhoenix:
		return "Phoenix++"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// RunInfo is the type-erased result of one job execution.
type RunInfo struct {
	// Wall is the end-to-end wall-clock duration of the invocation.
	Wall time.Duration
	// Phases is the engine's per-phase breakdown.
	Phases mr.PhaseTimes
	// Queue aggregates SPSC counters (RAMR engine only).
	Queue mr.QueueStats
	// Steal aggregates the map phase's work-stealing counters by
	// distance class (RAMR engine only).
	Steal mr.StealStats
	// Pairs is the number of distinct output keys.
	Pairs int
	// Digest is an order-independent hash of the output for
	// exact-arithmetic apps, or 0 when the app's values are floating
	// point (engines then agree only approximately, because combine
	// order differs).
	Digest uint64
	// Telemetry is the structured run report when the Config carried a
	// Telemetry; nil otherwise.
	Telemetry *telemetry.Report
	// Tuner is the online tuner's decision log when the Config carried a
	// tuner (RAMR engine only); nil otherwise. The job service retains
	// it per job.
	Tuner *tuner.Report
	// Partial is the exported partial result container of a shard job
	// (see shard.go): the full key→value map of this run, in a
	// JSON-serializable shape a cluster coordinator can merge with other
	// shards' partials. nil for unsharded runs.
	Partial *Partial
}

// Job is a ready-to-run application instance.
type Job struct {
	// App is the paper's short name: WC, HG, LR, KM, PCA, MM.
	App string
	// FullName is the spelled-out application name.
	FullName string
	// Container is the intermediate container configuration in use.
	Container container.Kind
	// InputDesc describes the generated input for reports.
	InputDesc string
	// Run executes the job on the selected engine.
	Run func(eng Engine, cfg mr.Config) (*RunInfo, error)
	// RunCtx is Run with cancellation: once ctx is cancelled the engine
	// stops taking tasks, drains and returns ctx's error. The job
	// service's DELETE path runs jobs through it. Constructors set both
	// fields via Bind.
	RunCtx func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error)
}

// Bind sets both run entry points from one context-aware closure and
// returns the job, so each constructor defines its execution exactly once.
func (j *Job) Bind(run func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error)) *Job {
	j.RunCtx = run
	j.Run = func(eng Engine, cfg mr.Config) (*RunInfo, error) {
		return run(context.Background(), eng, cfg)
	}
	return j
}

// RunTyped executes a typed spec on the chosen engine and erases the
// types. digest, when non-nil, folds each output pair into an
// order-independent checksum. Exported so sibling packages (synth) can
// adapt their own typed specs into Jobs.
func RunTyped[S any, K comparable, V, R any](spec *mr.Spec[S, K, V, R], eng Engine, cfg mr.Config, digest func(K, R) uint64) (*RunInfo, error) {
	return RunTypedContext(context.Background(), spec, eng, cfg, digest)
}

// RunTypedContext is RunTyped with cancellation, the entry point behind
// Job.RunCtx.
func RunTypedContext[S any, K comparable, V, R any](ctx context.Context, spec *mr.Spec[S, K, V, R], eng Engine, cfg mr.Config, digest func(K, R) uint64) (*RunInfo, error) {
	return RunTypedExport(ctx, spec, eng, cfg, digest, nil)
}

// RunTypedExport is RunTypedContext with an optional per-pair export
// callback, invoked once for every output pair after the run completes.
// Shard jobs use it to lift their typed output into the type-erased
// Partial that crosses the cluster wire (see shard.go); a nil export is
// the plain batch path.
func RunTypedExport[S any, K comparable, V, R any](ctx context.Context, spec *mr.Spec[S, K, V, R], eng Engine, cfg mr.Config, digest func(K, R) uint64, export func(K, R)) (*RunInfo, error) {
	start := time.Now()
	var (
		res *mr.Result[K, R]
		err error
	)
	switch eng {
	case EngineRAMR:
		res, err = core.RunContext(ctx, spec, cfg)
	case EnginePhoenix:
		res, err = phoenix.RunContext(ctx, spec, cfg)
	default:
		return nil, fmt.Errorf("workloads: unknown engine %v", eng)
	}
	if err != nil {
		return nil, err
	}
	info := &RunInfo{
		Wall:      time.Since(start),
		Phases:    res.Phases,
		Queue:     res.QueueStats,
		Steal:     res.Steal,
		Pairs:     len(res.Pairs),
		Telemetry: res.Telemetry,
		Tuner:     res.TunerReport,
	}
	if digest != nil {
		var d uint64
		for _, p := range res.Pairs {
			d += digest(p.Key, p.Value)
		}
		info.Digest = d
	}
	if export != nil {
		for _, p := range res.Pairs {
			export(p.Key, p.Value)
		}
	}
	return info, nil
}

// mix is the 64-bit finalizer used for digests.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AppNames lists the suite in the paper's presentation order.
func AppNames() []string { return []string{"HG", "KM", "LR", "MM", "PCA", "WC"} }
