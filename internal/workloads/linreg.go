package workloads

import (
	"context"
	"fmt"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stats"
)

// LR emits five integer accumulators per point, keyed 0..4, from which the
// least-squares line follows in closed form.
const (
	lrKeySX  = 0 // sum of x
	lrKeySY  = 1 // sum of y
	lrKeySXX = 2 // sum of x^2
	lrKeySYY = 3 // sum of y^2
	lrKeySXY = 4 // sum of x*y
	lrKeys   = 5
)

// LRPoint is one (x, y) sample; byte-sized coordinates as in the Phoenix
// suite, where the input file is a stream of coordinate bytes.
type LRPoint struct {
	X, Y uint8
}

// lrSplitPoints is the number of points per split.
const lrSplitPoints = 4096

// GenerateLRPoints builds n deterministic points around the line
// y = 0.7x + 30 with noise, pre-partitioned into splits.
func GenerateLRPoints(n int, seed int64) [][]LRPoint {
	rng := stats.Rng(seed, "linreg")
	var splits [][]LRPoint
	for n > 0 {
		sz := lrSplitPoints
		if sz > n {
			sz = n
		}
		pts := make([]LRPoint, sz)
		for i := range pts {
			x := rng.Intn(256)
			y := int(0.7*float64(x)) + 30 + rng.Intn(21) - 10
			if y < 0 {
				y = 0
			}
			if y > 255 {
				y = 255
			}
			pts[i] = LRPoint{X: uint8(x), Y: uint8(y)}
		}
		splits = append(splits, pts)
		n -= sz
	}
	return splits
}

func lrContainer(kind container.Kind) container.Factory[int, int64] {
	switch kind {
	case container.KindFixedHash:
		return func() container.Container[int, int64] {
			return container.NewFixedHash[int, int64](lrKeys, container.HashInt)
		}
	case container.KindHash:
		return func() container.Container[int, int64] { return container.NewHash[int, int64]() }
	default:
		return func() container.Container[int, int64] { return container.NewFixedArray[int64](lrKeys) }
	}
}

// LinRegSpec builds the LR job over the given point splits. Each point
// emits its five statistic contributions — the per-element emission rate
// is the highest in the suite relative to compute, making LR the paper's
// canonical "light" workload where the queue overhead dominates RAMR.
func LinRegSpec(splits [][]LRPoint, kind container.Kind) *mr.Spec[[]LRPoint, int, int64, int64] {
	return &mr.Spec[[]LRPoint, int, int64, int64]{
		Name:   "LR",
		Splits: splits,
		Map: func(pts []LRPoint, emit func(int, int64)) {
			for _, p := range pts {
				x, y := int64(p.X), int64(p.Y)
				emit(lrKeySX, x)
				emit(lrKeySY, y)
				emit(lrKeySXX, x*x)
				emit(lrKeySYY, y*y)
				emit(lrKeySXY, x*y)
			}
		},
		Combine:      func(a, b int64) int64 { return a + b },
		Reduce:       mr.IdentityReduce[int, int64](),
		NewContainer: lrContainer(kind),
		Less:         func(a, b int) bool { return a < b },
	}
}

// LRSolve turns the five aggregated sums into (slope, intercept).
func LRSolve(n int, sums map[int]int64) (slope, intercept float64) {
	fn := float64(n)
	sx, sy := float64(sums[lrKeySX]), float64(sums[lrKeySY])
	sxx, sxy := float64(sums[lrKeySXX]), float64(sums[lrKeySXY])
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (fn*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / fn
	return slope, intercept
}

// LinRegJob instantiates Linear Regression over n synthetic points.
func LinRegJob(nPoints int, kind container.Kind, seed int64) *Job {
	splits := GenerateLRPoints(nPoints, seed)
	spec := LinRegSpec(splits, kind)
	j := &Job{
		App:       "LR",
		FullName:  "Linear Regression",
		Container: kind,
		InputDesc: fmt.Sprintf("%d points in %d splits", nPoints, len(splits)),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		return RunTypedContext(ctx, spec, eng, cfg, func(k int, v int64) uint64 {
			return mix(uint64(k)*0x9e3779b97f4a7c15 ^ uint64(v))
		})
	})
}
