package workloads

import (
	"context"
	"fmt"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
)

// This file is the worker half of the cluster tier (internal/cluster):
// shard jobs and the Partial containers they export.
//
// A shard job is a normal Table I job restricted to the splits whose
// index is congruent to ShardSpec.Index modulo ShardSpec.Count — the
// union of all Count shards covers the generated input exactly once, so
// per-key sums merged across shards equal the single-node run's output
// bit for bit. Each shard run exports its full key→value container as a
// Partial (the in-node combining of Lee et al.: aggregates cross the
// network, raw emits never do); the coordinator merges Partials with
// MergePartials and re-derives the app's order-independent digest with
// Summary, which reuses the exact per-pair folds of the unsharded jobs.
//
// Only apps with exact (integer) arithmetic and an associative,
// commutative combine are shardable: WC, HG and SYNTH. Float apps (KM,
// PCA, LR's closed form) merge only approximately and are rejected.

// ShardSpec selects one shard of a sharded job: the splits whose index i
// satisfies i % Count == Index.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Validate checks the shard coordinates.
func (sh ShardSpec) Validate() error {
	if sh.Count < 1 {
		return fmt.Errorf("shard count must be >= 1, got %d", sh.Count)
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("shard index must be in [0, %d), got %d", sh.Count, sh.Index)
	}
	return nil
}

// String renders the shard as "index/count".
func (sh ShardSpec) String() string { return fmt.Sprintf("%d/%d", sh.Index, sh.Count) }

// Partial is the type-erased, JSON-serializable partial result of one
// shard run: the shard's full key→value container. Exactly one of
// Str/Int is populated, by key type. Values are the app's exact integer
// aggregates (uint64 addition is associative and commutative, and every
// shardable app's combine is plain addition — possibly wrapping, which
// merging reproduces).
type Partial struct {
	// App names the workload whose folds apply (WC, HG, SYNTH).
	App string `json:"app"`
	// Str holds string-keyed aggregates (WC).
	Str map[string]int64 `json:"str,omitempty"`
	// Int holds int-keyed aggregates (HG, SYNTH).
	Int map[int]uint64 `json:"int,omitempty"`
}

// Len is the number of distinct keys in the partial.
func (p *Partial) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Str) + len(p.Int)
}

// ShardableApps lists the apps that support shard jobs, sorted.
func ShardableApps() []string { return []string{"HG", "SYNTH", "WC"} }

// Shardable reports whether the named app supports shard jobs. SYNTH
// shard jobs are built by the synth package; the Table I apps here.
func Shardable(app string) bool {
	for _, a := range ShardableApps() {
		if a == app {
			return true
		}
	}
	return false
}

// ShardSplits returns the subset of splits belonging to sh: every
// Count-th split starting at Index. Exported so the synth package can
// apply the same partitioning to its generated ranges.
func ShardSplits[T any](splits []T, sh ShardSpec) []T {
	var out []T
	for i := sh.Index; i < len(splits); i += sh.Count {
		out = append(out, splits[i])
	}
	return out
}

// emptyShardInfo is the result of a shard with no splits (more shards
// than the input has splits): an instantly-complete empty run.
func emptyShardInfo(part *Partial) *RunInfo {
	return &RunInfo{Wall: time.Duration(0), Partial: part, Pairs: 0}
}

// NewShardJobParams instantiates shard sh of the named app with explicit
// generator parameters. The full input is generated (it is a
// deterministic function of the seed, so every worker derives the same
// split list) and the job runs over sh's subset, exporting its container
// as RunInfo.Partial. SYNTH shard jobs are built by synth.NewShardJob.
func NewShardJobParams(app string, pr Params, kind container.Kind, seed int64, sh ShardSpec) (*Job, error) {
	if err := sh.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: shard %s: %v", app, err)
	}
	switch app {
	case "WC":
		return wordCountShardJob(pr.Bytes, kind, seed, sh), nil
	case "HG":
		return histogramShardJob(pr.Bytes, kind, seed, sh), nil
	default:
		return nil, fmt.Errorf("workloads: app %q is not shardable (want one of %v; float-valued apps merge only approximately)",
			app, ShardableApps())
	}
}

// wordCountShardJob is WordCountJob restricted to one shard, exporting
// the shard's word→count container.
func wordCountShardJob(nBytes int, kind container.Kind, seed int64, sh ShardSpec) *Job {
	splits := ShardSplits(GenerateText(nBytes, seed), sh)
	spec := WordCountSpec(splits, kind)
	j := &Job{
		App:       "WC",
		FullName:  "Word Count (shard " + sh.String() + ")",
		Container: kind,
		InputDesc: fmt.Sprintf("shard %s: %d splits of ~%d bytes", sh, len(splits), nBytes),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		part := &Partial{App: "WC", Str: make(map[string]int64)}
		if len(splits) == 0 {
			return emptyShardInfo(part), nil
		}
		info, err := RunTypedExport(ctx, spec, eng, cfg, wcPairDigest, func(k string, v int) {
			part.Str[k] = int64(v)
		})
		if info != nil {
			info.Partial = part
		}
		return info, err
	})
}

// histogramShardJob is HistogramJob restricted to one shard, exporting
// the shard's bucket→count container.
func histogramShardJob(nBytes int, kind container.Kind, seed int64, sh ShardSpec) *Job {
	splits := ShardSplits(GeneratePixels(nBytes, seed), sh)
	spec := HistogramSpec(splits, kind)
	j := &Job{
		App:       "HG",
		FullName:  "Histogram (shard " + sh.String() + ")",
		Container: kind,
		InputDesc: fmt.Sprintf("shard %s: %d splits of ~%d bytes", sh, len(splits), nBytes),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		part := &Partial{App: "HG", Int: make(map[int]uint64)}
		if len(splits) == 0 {
			return emptyShardInfo(part), nil
		}
		info, err := RunTypedExport(ctx, spec, eng, cfg, hgPairDigest, func(k, v int) {
			part.Int[k] = uint64(v)
		})
		if info != nil {
			info.Partial = part
		}
		return info, err
	})
}

// synthPairDigest mirrors the SYNTH job's per-pair digest fold
// (synth.NewJob). Kept in sync by TestShardMergeMatchesSingleNode, which
// compares a sharded SYNTH run's merged digest against the unsharded
// job's.
func synthPairDigest(k int, v uint64) uint64 {
	return (uint64(k)*0x9e3779b97f4a7c15 ^ v) * 0xbf58476d1ce4e5b9
}

// MergePartials folds shard partials into one: per-key sums with the
// same (wrapping) integer addition the engines' Combine uses. All
// partials must belong to the same app; nil entries are skipped.
func MergePartials(parts []*Partial) (*Partial, error) {
	var out *Partial
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.Str != nil && p.Int != nil {
			return nil, fmt.Errorf("workloads: partial of app %q populates both key spaces", p.App)
		}
		if out == nil {
			out = &Partial{App: p.App}
			if p.Str != nil || p.Int == nil {
				out.Str = make(map[string]int64)
			}
			if p.Int != nil {
				out.Int = make(map[int]uint64)
			}
		}
		if p.App != out.App {
			return nil, fmt.Errorf("workloads: merging partials of different apps (%q vs %q)", p.App, out.App)
		}
		for k, v := range p.Str {
			if out.Str == nil {
				return nil, fmt.Errorf("workloads: partial of app %q mixes string and int keys", p.App)
			}
			out.Str[k] += v
		}
		for k, v := range p.Int {
			if out.Int == nil {
				return nil, fmt.Errorf("workloads: partial of app %q mixes string and int keys", p.App)
			}
			out.Int[k] += v
		}
	}
	if out == nil {
		return nil, fmt.Errorf("workloads: no partials to merge")
	}
	return out, nil
}

// Summary derives the merged result's figures: the number of distinct
// keys and the app's order-independent output digest — the identical
// fold the unsharded job applies pair by pair, so a fully merged Partial
// summarizes to the single-node run's exact digest.
func (p *Partial) Summary() (pairs int, digest uint64, err error) {
	if p == nil {
		return 0, 0, fmt.Errorf("workloads: nil partial")
	}
	switch p.App {
	case "WC":
		for k, v := range p.Str {
			digest += wcPairDigest(k, int(v))
		}
		return len(p.Str), digest, nil
	case "HG":
		for k, v := range p.Int {
			digest += hgPairDigest(k, int(v))
		}
		return len(p.Int), digest, nil
	case "SYNTH":
		for k, v := range p.Int {
			digest += synthPairDigest(k, v)
		}
		return len(p.Int), digest, nil
	default:
		return 0, 0, fmt.Errorf("workloads: app %q has no partial summary", p.App)
	}
}
