package workloads

import (
	"context"
	"fmt"
	"strings"

	"ramr/internal/container"
	"ramr/internal/mr"
)

// String Match (SM) is the seventh app of the original Phoenix suite. The
// DATE'20 paper evaluates six apps, so SM does not appear in any figure —
// it is included here as a suite extension (see DESIGN.md §5) and gives
// the test matrix a map-only workload: map scans the corpus for a fixed
// set of target words and emits one hit per occurrence; combine is plain
// counting and the output key range is tiny (one key per pattern).

// SMPatterns is the default target set, mirroring Phoenix's four keys.
var SMPatterns = []string{"key1", "key2", "key3", "key4"}

// GenerateSMText builds a corpus of about n bytes in which the patterns
// occur with known frequency (~1 in 32 words is a pattern occurrence).
func GenerateSMText(n int, seed int64) []string {
	base := GenerateText(n, seed)
	// Splice pattern occurrences in deterministically.
	out := make([]string, len(base))
	for i, s := range base {
		var b strings.Builder
		words := strings.Fields(s)
		for w, word := range words {
			if (i*7+w)%32 == 0 {
				b.WriteString(SMPatterns[(i+w)%len(SMPatterns)])
			} else {
				b.WriteString(word)
			}
			b.WriteByte(' ')
		}
		out[i] = b.String()
	}
	return out
}

// StringMatchSpec builds the SM job: count occurrences of each pattern.
func StringMatchSpec(splits []string, patterns []string) *mr.Spec[string, string, int, int] {
	set := make(map[string]bool, len(patterns))
	for _, p := range patterns {
		set[p] = true
	}
	return &mr.Spec[string, string, int, int]{
		Name:   "SM",
		Splits: splits,
		Map: func(s string, emit func(string, int)) {
			for _, w := range strings.Fields(s) {
				if set[w] {
					emit(w, 1)
				}
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[string, int](),
		NewContainer: func() container.Container[string, int] { return container.NewHash[string, int]() },
		Less:         func(a, b string) bool { return a < b },
	}
}

// StringMatchJob instantiates SM over ~nBytes of synthetic text.
func StringMatchJob(nBytes int, seed int64) *Job {
	splits := GenerateSMText(nBytes, seed)
	spec := StringMatchSpec(splits, SMPatterns)
	j := &Job{
		App:       "SM",
		FullName:  "String Match (suite extension)",
		Container: container.KindHash,
		InputDesc: fmt.Sprintf("%d bytes, %d patterns", nBytes, len(SMPatterns)),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		return RunTypedContext(ctx, spec, eng, cfg, func(k string, v int) uint64 {
			return mix(container.HashString(k) ^ mix(uint64(v)))
		})
	})
}
