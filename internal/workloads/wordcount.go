package workloads

import (
	"context"
	"fmt"
	"strings"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stats"
)

// wcVocab is the vocabulary size of the synthetic corpus. The word
// frequency follows a Zipf distribution, matching real text closely enough
// that the hash container sees the same skewed update pattern Word Count
// produces on natural language.
const wcVocab = 5000

// wcSplitBytes is the target bytes per split (word-boundary aligned).
const wcSplitBytes = 16 << 10

// GenerateText builds a deterministic synthetic corpus of about n bytes,
// pre-partitioned into word-aligned splits.
func GenerateText(n int, seed int64) []string {
	rng := stats.Rng(seed, "wordcount")
	vocab := make([]string, wcVocab)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range vocab {
		l := 3 + rng.Intn(10)
		b := make([]byte, l)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		vocab[i] = string(b)
	}
	zipf := stats.NewZipf(rng, 1.2, uint64(wcVocab))

	var splits []string
	var cur strings.Builder
	total := 0
	for total < n {
		w := vocab[zipf.Next()]
		cur.WriteString(w)
		cur.WriteByte(' ')
		total += len(w) + 1
		if cur.Len() >= wcSplitBytes {
			splits = append(splits, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		splits = append(splits, cur.String())
	}
	return splits
}

// wcContainer builds the container factory for the chosen configuration.
func wcContainer(kind container.Kind) container.Factory[string, int] {
	switch kind {
	case container.KindFixedHash:
		return func() container.Container[string, int] {
			return container.NewFixedHash[string, int](wcVocab*2, container.HashString)
		}
	default:
		return func() container.Container[string, int] { return container.NewHash[string, int]() }
	}
}

// WordCountSpec builds the WC job over the given splits.
func WordCountSpec(splits []string, kind container.Kind) *mr.Spec[string, string, int, int] {
	return &mr.Spec[string, string, int, int]{
		Name:   "WC",
		Splits: splits,
		Map: func(s string, emit func(string, int)) {
			start := -1
			for i := 0; i <= len(s); i++ {
				if i < len(s) && s[i] != ' ' {
					if start < 0 {
						start = i
					}
					continue
				}
				if start >= 0 {
					emit(s[start:i], 1)
					start = -1
				}
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[string, int](),
		NewContainer: wcContainer(kind),
		Less:         func(a, b string) bool { return a < b },
	}
}

// WordCountJob instantiates Word Count over ~nBytes of synthetic text.
// Word Count is the enterprise-domain app of the suite: per-word emission
// into a hash container, arbitrary key set.
func WordCountJob(nBytes int, kind container.Kind, seed int64) *Job {
	splits := GenerateText(nBytes, seed)
	spec := WordCountSpec(splits, kind)
	j := &Job{
		App:       "WC",
		FullName:  "Word Count",
		Container: kind,
		InputDesc: fmt.Sprintf("%d words-bytes in %d splits", nBytes, len(splits)),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		return RunTypedContext(ctx, spec, eng, cfg, wcPairDigest)
	})
}

// wcPairDigest folds one WC output pair into the run's order-independent
// digest. Shard merging (shard.go) re-applies the same fold over the
// merged container, so a sharded run's final digest is byte-identical to
// the single-node run's.
func wcPairDigest(k string, v int) uint64 {
	return mix(container.HashString(k) ^ mix(uint64(v)))
}
