package workloads

import (
	"context"
	"fmt"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stats"
)

// Matrix Multiply computes C = A x B with A (rows x inner) and B
// (inner x cols), "adapted to utilize the Map/Reduce semantics" as the
// paper footnotes: the inner dimension is blocked, each map task covers a
// (row-block, k-block) tile and emits *partial* dot products keyed by the
// output cell i*cols+j, and the combine function sums the partials. This
// blocking is what gives MM a genuinely heavy combine phase — each output
// cell is combined mmKBlocks times — making MM, with KM, the paper's
// strongest RAMR case.

// MMInput is a generated Matrix Multiply problem instance.
type MMInput struct {
	A, B []int32
	// Rows x Inner times Inner x Cols.
	Rows, Inner, Cols int
	// Splits are (rowLo, rowHi, kLo, kHi) tiles.
	Splits []MMTile
}

// MMTile is one map task: rows [RowLo, RowHi) against inner-dimension
// block [KLo, KHi).
type MMTile struct {
	RowLo, RowHi, KLo, KHi int
}

const (
	// mmRowBlock rows per tile.
	mmRowBlock = 16
	// mmKBlocks is how many blocks the inner dimension splits into —
	// i.e. how many partials are combined per output cell.
	mmKBlocks = 4
)

// GenerateMM builds deterministic random matrices and the tile list.
func GenerateMM(rows, inner, cols int, seed int64) *MMInput {
	rng := stats.Rng(seed, "matmul")
	a := make([]int32, rows*inner)
	for i := range a {
		a[i] = int32(rng.Intn(200) - 100)
	}
	b := make([]int32, inner*cols)
	for i := range b {
		b[i] = int32(rng.Intn(200) - 100)
	}
	kb := (inner + mmKBlocks - 1) / mmKBlocks
	var tiles []MMTile
	for rlo := 0; rlo < rows; rlo += mmRowBlock {
		rhi := rlo + mmRowBlock
		if rhi > rows {
			rhi = rows
		}
		for klo := 0; klo < inner; klo += kb {
			khi := klo + kb
			if khi > inner {
				khi = inner
			}
			tiles = append(tiles, MMTile{rlo, rhi, klo, khi})
		}
	}
	return &MMInput{A: a, B: b, Rows: rows, Inner: inner, Cols: cols, Splits: tiles}
}

func mmContainer(kind container.Kind, cells int) container.Factory[int, int64] {
	switch kind {
	case container.KindHash:
		return func() container.Container[int, int64] { return container.NewHashSized[int, int64](cells / 8) }
	case container.KindFixedHash:
		return func() container.Container[int, int64] {
			return container.NewFixedHash[int, int64](cells, container.HashInt)
		}
	default:
		// Every worker allocates the full output range even though each
		// mapper touches a limited row band — the capacity overshoot
		// the paper's §IV-E analyzes for MM's default container.
		return func() container.Container[int, int64] { return container.NewFixedArray[int64](cells) }
	}
}

// MatMulSpec builds the MM job.
func MatMulSpec(in *MMInput, kind container.Kind) *mr.Spec[MMTile, int, int64, int64] {
	cols, inner := in.Cols, in.Inner
	return &mr.Spec[MMTile, int, int64, int64]{
		Name:   "MM",
		Splits: in.Splits,
		Map: func(t MMTile, emit func(int, int64)) {
			for i := t.RowLo; i < t.RowHi; i++ {
				arow := in.A[i*inner : (i+1)*inner]
				for j := 0; j < cols; j++ {
					var s int64
					for k := t.KLo; k < t.KHi; k++ {
						s += int64(arow[k]) * int64(in.B[k*cols+j])
					}
					emit(i*cols+j, s)
				}
			}
		},
		Combine:      func(a, b int64) int64 { return a + b },
		Reduce:       mr.IdentityReduce[int, int64](),
		NewContainer: mmContainer(kind, in.Rows*in.Cols),
		Less:         func(a, b int) bool { return a < b },
	}
}

// MatMulJob instantiates Matrix Multiply for (rows x inner)(inner x cols).
func MatMulJob(rows, inner, cols int, kind container.Kind, seed int64) *Job {
	in := GenerateMM(rows, inner, cols, seed)
	spec := MatMulSpec(in, kind)
	j := &Job{
		App:       "MM",
		FullName:  "Matrix Multiply",
		Container: kind,
		InputDesc: fmt.Sprintf("(%dx%d)x(%dx%d), %d tiles", rows, inner, inner, cols, len(in.Splits)),
	}
	return j.Bind(func(ctx context.Context, eng Engine, cfg mr.Config) (*RunInfo, error) {
		return RunTypedContext(ctx, spec, eng, cfg, func(k int, v int64) uint64 {
			return mix(uint64(k)*0x9e3779b97f4a7c15 ^ uint64(v))
		})
	})
}
