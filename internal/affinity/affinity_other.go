//go:build !linux

package affinity

import "errors"

var errUnsupported = errors.New("affinity: thread pinning unsupported on this platform")

func supported() bool { return false }

func setAffinity(CPUSet) error { return errUnsupported }

func getAffinity() (CPUSet, error) { return CPUSet{}, errUnsupported }
