// Package affinity pins OS threads to logical CPUs. It is the thin system
// layer under RAMR's contention-aware pinning policy (§III-B of the paper):
// the policy decides *which* logical CPU a worker should occupy, this
// package makes it so with sched_setaffinity(2) on Linux and degrades to a
// documented no-op elsewhere.
//
// Workers that want a stable pin must call runtime.LockOSThread first so
// the goroutine-to-thread binding cannot change underneath the CPU mask;
// PinSelf does both.
package affinity

import (
	"fmt"
	"runtime"
)

// cpuSetWords is the size of the kernel cpu_set_t we pass: 16 words cover
// 1024 logical CPUs, far beyond both evaluation platforms.
const cpuSetWords = 16

// CPUSet is a bitmask of logical CPUs, bit i of word i/64 = cpu i.
type CPUSet [cpuSetWords]uint64

// NewCPUSet returns a set containing the given logical CPUs.
func NewCPUSet(cpus ...int) (CPUSet, error) {
	var s CPUSet
	for _, c := range cpus {
		if err := s.Add(c); err != nil {
			return CPUSet{}, err
		}
	}
	return s, nil
}

// Add inserts cpu into the set.
func (s *CPUSet) Add(cpu int) error {
	if cpu < 0 || cpu >= cpuSetWords*64 {
		return fmt.Errorf("affinity: cpu %d out of range [0,%d)", cpu, cpuSetWords*64)
	}
	s[cpu/64] |= 1 << (uint(cpu) % 64)
	return nil
}

// Contains reports whether cpu is in the set.
func (s *CPUSet) Contains(cpu int) bool {
	if cpu < 0 || cpu >= cpuSetWords*64 {
		return false
	}
	return s[cpu/64]&(1<<(uint(cpu)%64)) != 0
}

// Count returns the number of CPUs in the set.
func (s *CPUSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// CPUs returns the member CPUs in ascending order.
func (s *CPUSet) CPUs() []int {
	var out []int
	for i := 0; i < cpuSetWords*64; i++ {
		if s.Contains(i) {
			out = append(out, i)
		}
	}
	return out
}

// Empty reports whether the set has no members.
func (s *CPUSet) Empty() bool { return s.Count() == 0 }

// PinSelf locks the calling goroutine to its OS thread and restricts that
// thread to the given logical CPU. It returns an unpin function that
// restores the previous affinity mask and unlocks the thread; callers
// should defer it. On platforms without affinity support, or when the
// kernel rejects the mask (e.g. the CPU is offline or outside the cgroup
// cpuset), PinSelf still locks the thread and returns ok=false with a nil
// error — pinning is an optimization, not a correctness requirement.
func PinSelf(cpu int) (unpin func(), ok bool) {
	runtime.LockOSThread()
	prev, errGet := getAffinity()
	set, err := NewCPUSet(cpu)
	if err != nil {
		return runtime.UnlockOSThread, false
	}
	if err := setAffinity(set); err != nil {
		return runtime.UnlockOSThread, false
	}
	return func() {
		if errGet == nil {
			_ = setAffinity(prev)
		}
		runtime.UnlockOSThread()
	}, true
}

// Supported reports whether this platform can actually pin threads.
func Supported() bool { return supported() }
