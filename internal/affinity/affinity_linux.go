//go:build linux

package affinity

import (
	"syscall"
	"unsafe"
)

func supported() bool { return true }

// setAffinity applies mask to the calling thread (pid 0).
func setAffinity(mask CPUSet) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}

// getAffinity reads the calling thread's current mask.
func getAffinity() (CPUSet, error) {
	var mask CPUSet
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return CPUSet{}, errno
	}
	return mask, nil
}
