package affinity

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestCPUSetBasics(t *testing.T) {
	s, err := NewCPUSet(0, 3, 64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, cpu := range []int{0, 3, 64, 1000} {
		if !s.Contains(cpu) {
			t.Fatalf("set should contain %d", cpu)
		}
	}
	for _, cpu := range []int{1, 2, 63, 65, 999, 1001} {
		if s.Contains(cpu) {
			t.Fatalf("set should not contain %d", cpu)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	want := []int{0, 3, 64, 1000}
	got := s.CPUs()
	if len(got) != len(want) {
		t.Fatalf("CPUs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CPUs()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCPUSetBounds(t *testing.T) {
	if _, err := NewCPUSet(-1); err == nil {
		t.Fatal("negative cpu accepted")
	}
	if _, err := NewCPUSet(cpuSetWords * 64); err == nil {
		t.Fatal("out-of-range cpu accepted")
	}
	var s CPUSet
	if s.Contains(-1) || s.Contains(1<<20) {
		t.Fatal("Contains out of range should be false")
	}
	if !s.Empty() {
		t.Fatal("zero set should be empty")
	}
}

// TestQuickCPUSetAddContains: whatever is added is contained; count
// matches the distinct additions.
func TestQuickCPUSetAddContains(t *testing.T) {
	f := func(cpus []uint16) bool {
		var s CPUSet
		distinct := map[int]bool{}
		for _, c := range cpus {
			cpu := int(c) % (cpuSetWords * 64)
			if err := s.Add(cpu); err != nil {
				return false
			}
			distinct[cpu] = true
		}
		if s.Count() != len(distinct) {
			return false
		}
		for cpu := range distinct {
			if !s.Contains(cpu) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPinSelf(t *testing.T) {
	unpin, ok := PinSelf(0)
	defer unpin()
	if Supported() && runtime.GOOS == "linux" {
		if !ok {
			t.Skip("pinning rejected (restricted cpuset); skipping")
		}
		// Verify the mask really is cpu 0 only.
		mask, err := getAffinity()
		if err != nil {
			t.Fatal(err)
		}
		if !mask.Contains(0) || mask.Count() != 1 {
			t.Fatalf("affinity mask after PinSelf(0): %v", mask.CPUs())
		}
	} else if ok {
		t.Fatal("PinSelf reported success on unsupported platform")
	}
}

func TestPinSelfRestores(t *testing.T) {
	if !Supported() {
		t.Skip("no affinity support")
	}
	before, err := getAffinity()
	if err != nil {
		t.Fatal(err)
	}
	unpin, ok := PinSelf(0)
	if !ok {
		unpin()
		t.Skip("pinning rejected")
	}
	unpin()
	after, err := getAffinity()
	if err != nil {
		t.Fatal(err)
	}
	if before.Count() != after.Count() {
		t.Fatalf("affinity not restored: before %v, after %v", before.CPUs(), after.CPUs())
	}
}

func TestPinSelfBadCPU(t *testing.T) {
	// A cpu beyond the machine (but within mask range) must not succeed
	// in restricting to nothing; ok=false and the unpin must be safe.
	unpin, ok := PinSelf(cpuSetWords*64 - 1)
	unpin()
	if ok && runtime.NumCPU() < cpuSetWords*64-1 {
		t.Fatal("pinning to a nonexistent cpu reported success")
	}
}
