// Package sched multiplexes the host's logical-CPU budget across
// concurrent MapReduce jobs. Each admitted job receives a *grant* — a
// disjoint, locality-dense set of logical CPUs carved out of the shared
// budget — and runs with mr.Config.CPUGrant restricted to it, so RAMR's
// contention-aware pinning stays valid even with neighbours on the same
// machine. The scheduler is the multi-tenancy layer the DATE'20 paper
// leaves implicit: its single-job runtime assumes it owns the machine,
// which no shared deployment can honour.
//
// Admission is bounded (Submit fails fast with ErrSaturated when the
// queue is full — the job service maps that to HTTP 429), ordering is
// deficit-weighted fair-share across three priority classes, and freed
// CPUs are offered to the longest-waiting job first so large jobs cannot
// be starved by a stream of small ones. All policy decisions are
// deterministic for a fixed Config.Seed and submission order.
package sched

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ramr/internal/topology"
)

// Priority is a job's service class. Higher classes accumulate
// fair-share deficit faster (weights 1/2/4) and therefore dispatch more
// often under contention, but no class is ever starved: deficit-weighted
// round-robin guarantees every backlogged class a share proportional to
// its weight.
type Priority int

const (
	// PriorityLow is background work (weight 1).
	PriorityLow Priority = iota
	// PriorityNormal is the default class (weight 2).
	PriorityNormal
	// PriorityHigh is latency-sensitive work (weight 4).
	PriorityHigh
	numClasses = 3
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority converts a class name ("low", "normal", "high", or empty
// for the default) to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "low":
		return PriorityLow, nil
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, fmt.Errorf("sched: unknown priority %q", s)
	}
}

func (p Priority) weight() int {
	switch p {
	case PriorityHigh:
		return 4
	case PriorityNormal:
		return 2
	default:
		return 1
	}
}

// State is a job's lifecycle position.
type State int

const (
	// StateQueued means admitted but not yet granted CPUs.
	StateQueued State = iota
	// StateRunning means executing on its grant.
	StateRunning
	// StateDone means finished (successfully or with an error).
	StateDone
	// StateCanceled means removed from the queue before starting.
	StateCanceled
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors returned by Submit.
var (
	// ErrSaturated means the bounded admission queue is full. Callers
	// should back off and retry; the job service maps it to HTTP 429.
	ErrSaturated = errors.New("sched: admission queue full")
	// ErrDraining means the scheduler is shutting down and no longer
	// admits work.
	ErrDraining = errors.New("sched: scheduler draining")
)

// RunFunc executes a job on its CPU grant. The grant is disjoint from
// every other concurrently running job's grant; implementations pass it
// to mr.Config.ApplyGrant so pinning and the elastic combiner pool stay
// inside it. The context is cancelled by Job.Cancel and by Drain's
// deadline; implementations must return promptly once it fires.
type RunFunc func(ctx context.Context, grant []int) error

// JobSpec describes one job submission.
type JobSpec struct {
	// Name labels the job in events and status reports.
	Name string
	// Priority is the service class; zero value is PriorityLow, so
	// most callers set PriorityNormal explicitly (the service layer
	// defaults to it).
	Priority Priority
	// MinCPUs is the smallest acceptable grant; 0 means 1. A job never
	// starts with fewer CPUs.
	MinCPUs int
	// MaxCPUs caps the grant; 0 means the whole budget. The scheduler
	// grants min(MaxCPUs, free CPUs) at dispatch time, never below
	// MinCPUs.
	MaxCPUs int
	// Run executes the job. Required.
	Run RunFunc
	// Metrics, when non-nil, is invoked once after Run returns to
	// collect the job's final operation-level metrics (steal counts,
	// queue imbalance, ...). The map rides on the EventFinished observer
	// event and in JobStatus, so telemetry taps see per-job balance
	// figures without reaching into the workload layer. The callback
	// runs outside the scheduler lock; a panic inside it is swallowed.
	Metrics func() map[string]float64
}

// EventKind tags an Event.
type EventKind int

const (
	// EventQueued fires when a job is admitted to the queue.
	EventQueued EventKind = iota
	// EventStarted fires when a job is granted CPUs and dispatched.
	EventStarted
	// EventFinished fires when a running job returns.
	EventFinished
	// EventCanceled fires when a queued job is cancelled before start.
	EventCanceled
)

// String names the event kind for logs and event rings.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventFinished:
		return "finished"
	case EventCanceled:
		return "canceled"
	}
	return "unknown"
}

// Event is a scheduler state transition, delivered to Config.Observer
// while the scheduler lock is held — the observer sees a consistent
// snapshot, and InUse <= Budget is an invariant tests assert on every
// event. Observers must not call back into the scheduler.
type Event struct {
	Kind  EventKind
	JobID int
	Name  string
	// Grant is the job's CPU set (EventStarted/EventFinished); shared,
	// do not mutate.
	Grant []int
	// InUse is the total granted CPU count across running jobs after
	// this transition.
	InUse int
	// Queued is the admission-queue depth after this transition.
	Queued int
	// Metrics is the job's final metric map (EventFinished only, and
	// only when the JobSpec provided a Metrics callback); shared, do not
	// mutate.
	Metrics map[string]float64
}

// Config parameterizes a Scheduler.
type Config struct {
	// Machine is the topology grants are carved from; nil detects the
	// host.
	Machine *topology.Machine
	// Budget is the number of logical CPUs the scheduler may hand out
	// concurrently; 0 or out-of-range means all of Machine's CPUs. The
	// budget is taken from the front of Machine.CompactOrder() so it is
	// locality-dense even when partial.
	Budget int
	// MaxQueued bounds the admission queue (jobs admitted but not yet
	// running); Submit returns ErrSaturated beyond it. 0 means
	// DefaultMaxQueued.
	MaxQueued int
	// Seed drives the scheduler's tie-break RNG. Equal seeds and equal
	// submission sequences produce identical placement decisions.
	Seed int64
	// Observer, when non-nil, receives every scheduler transition under
	// the scheduler lock. Test hook and telemetry tap.
	Observer func(Event)
	// Logger, when non-nil, receives a structured line per scheduler
	// transition (queued/started/finished/canceled), each carrying a
	// job_id attribute for correlation with the service tier's logs.
	// Handlers are invoked under the scheduler lock and must not call
	// back into the scheduler.
	Logger *slog.Logger
}

// DefaultMaxQueued is the admission-queue bound when Config.MaxQueued
// is 0.
const DefaultMaxQueued = 16

// Job is a handle on one submitted job.
type Job struct {
	id   int
	name string
	prio Priority

	s         *Scheduler
	run       RunFunc
	metricsFn func() map[string]float64
	runCtx    context.Context
	cancel    context.CancelFunc
	done      chan struct{}

	minCPUs, maxCPUs int

	// seq is the global admission sequence number; the longest-waiting
	// job is the queued job with the smallest seq.
	seq int
	// skipped marks that a younger job started while this one did not
	// fit; it arms the dispatch reservation.
	skipped bool
	// waiters counts the parties observing this job's completion:
	// the submitter plus every coalesced duplicate submission attached
	// with AddWaiter (guarded by the owning scheduler's mu). DropWaiter
	// cancels the execution only when the last waiter detaches.
	waiters int

	// Guarded by the owning scheduler's mu.
	state    State
	grant    []int
	queuedAt time.Time
	started  time.Time
	finished time.Time
	allocDur time.Duration
	err      error
	metrics  map[string]float64
}

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	ID       int
	Name     string
	Priority Priority
	State    State
	// Grant is the job's CPU set (copy); empty until started.
	Grant    []int
	QueuedAt time.Time
	Started  time.Time
	Finished time.Time
	// AllocDur is the time allocateLocked spent carving the job's grant
	// from the free set (zero until started) — the "grant allocation"
	// cost the observability layer attributes separately from queue wait.
	AllocDur time.Duration
	// Err is the job's terminal error, nil while live or on success.
	Err error
	// Waiters is the job's current waiter count (the submitter plus
	// coalesced duplicate submissions; see Job.AddWaiter).
	Waiters int
	// Metrics is the job's final metric map (copy); nil until finished
	// or when the JobSpec had no Metrics callback.
	Metrics map[string]float64
}

// Stats summarizes scheduler occupancy.
type Stats struct {
	// Budget is the schedulable CPU count.
	Budget int
	// InUse is the number of CPUs currently granted.
	InUse int
	// Running and Queued are live job counts.
	Running int
	Queued  int
	// Accepted, Rejected, Finished, Canceled are lifetime counters.
	Accepted int
	Rejected int
	Finished int
	Canceled int
}

type classQueue struct {
	jobs    []*Job
	deficit int
}

// Scheduler owns a CPU budget and multiplexes it across jobs.
type Scheduler struct {
	machine   *topology.Machine
	budget    []int // schedulable CPU ids, compact order
	rank      map[int]int
	maxQueued int
	observer  func(Event)
	log       *slog.Logger

	mu       sync.Mutex
	rng      *rand.Rand
	free     map[int]bool
	classes  [numClasses]classQueue
	running  map[int]*Job
	draining bool
	seq      int
	nextID   int
	wg       sync.WaitGroup

	accepted, rejected, finished, canceled int
}

// New builds a Scheduler from cfg.
func New(cfg Config) (*Scheduler, error) {
	m := cfg.Machine
	if m == nil {
		m = topology.Detect()
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sched: invalid machine: %w", err)
	}
	order := m.CompactOrder()
	budget := cfg.Budget
	if budget <= 0 || budget > len(order) {
		budget = len(order)
	}
	maxQueued := cfg.MaxQueued
	if maxQueued <= 0 {
		maxQueued = DefaultMaxQueued
	}
	s := &Scheduler{
		machine:   m,
		budget:    append([]int(nil), order[:budget]...),
		rank:      make(map[int]int, budget),
		maxQueued: maxQueued,
		observer:  cfg.Observer,
		log:       cfg.Logger,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		free:      make(map[int]bool, budget),
		running:   make(map[int]*Job),
	}
	for i, id := range s.budget {
		s.rank[id] = i
		s.free[id] = true
	}
	return s, nil
}

// Machine returns the topology grants are carved from.
func (s *Scheduler) Machine() *topology.Machine { return s.machine }

// ReserveID mints a job id from the scheduler's sequence without
// admitting any work. Layers that coalesce duplicate submissions onto
// one running job use it to hand each attached waiter a distinct id
// from the same space as real jobs, so ids never collide.
func (s *Scheduler) ReserveID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// Budget returns the schedulable CPU count.
func (s *Scheduler) Budget() int { return len(s.budget) }

// Submit admits a job, or fails fast with ErrSaturated (queue full),
// ErrDraining (shutting down), or a validation error. Admitted jobs are
// dispatched as CPUs free up, in deficit-weighted fair-share order.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.Run == nil {
		return nil, errors.New("sched: JobSpec.Run is required")
	}
	if spec.Priority < PriorityLow || spec.Priority > PriorityHigh {
		return nil, fmt.Errorf("sched: invalid priority %d", int(spec.Priority))
	}
	minCPUs := spec.MinCPUs
	if minCPUs <= 0 {
		minCPUs = 1
	}
	if minCPUs > len(s.budget) {
		return nil, fmt.Errorf("sched: MinCPUs %d exceeds budget %d", minCPUs, len(s.budget))
	}
	maxCPUs := spec.MaxCPUs
	if maxCPUs <= 0 || maxCPUs > len(s.budget) {
		maxCPUs = len(s.budget)
	}
	if maxCPUs < minCPUs {
		return nil, fmt.Errorf("sched: MaxCPUs %d below MinCPUs %d", spec.MaxCPUs, minCPUs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel()
		return nil, ErrDraining
	}
	if s.queuedLocked() >= s.maxQueued {
		s.rejected++
		cancel()
		return nil, ErrSaturated
	}
	s.nextID++
	s.seq++
	j := &Job{
		id:       s.nextID,
		name:     spec.Name,
		prio:     spec.Priority,
		s:        s,
		cancel:   cancel,
		done:     make(chan struct{}),
		seq:      s.seq,
		state:    StateQueued,
		queuedAt: time.Now(),
		waiters:  1,
	}
	j.runCtx = ctx
	j.run = spec.Run
	j.metricsFn = spec.Metrics
	j.minCPUs = minCPUs
	j.maxCPUs = maxCPUs
	s.accepted++
	q := &s.classes[spec.Priority]
	q.jobs = append(q.jobs, j)
	s.emit(Event{Kind: EventQueued, JobID: j.id, Name: j.name, InUse: s.inUseLocked(), Queued: s.queuedLocked()})
	if s.log != nil {
		s.log.Debug("sched: job queued", "job_id", j.id, "name", j.name,
			"priority", j.prio.String(), "queued", s.queuedLocked())
	}
	s.dispatchLocked()
	return j, nil
}

// Stats returns current occupancy and lifetime counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Budget:   len(s.budget),
		InUse:    s.inUseLocked(),
		Running:  len(s.running),
		Queued:   s.queuedLocked(),
		Accepted: s.accepted,
		Rejected: s.rejected,
		Finished: s.finished,
		Canceled: s.canceled,
	}
}

// Drain stops admission, lets queued jobs dispatch and running jobs
// finish, and cancels every remaining job when ctx expires. It returns
// nil when all work completed, or ctx.Err() if stragglers had to be
// cancelled (their RunFuncs are still waited for, so no goroutine
// outlives Drain).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	live := s.liveLocked()
	s.mu.Unlock()

	var drainErr error
	for _, j := range live {
		select {
		case <-j.done:
		case <-ctx.Done():
			drainErr = ctx.Err()
		}
		if drainErr != nil {
			break
		}
	}
	if drainErr != nil {
		s.mu.Lock()
		for _, j := range s.liveLocked() {
			if j.state == StateQueued {
				s.removeQueuedLocked(j, context.Cause(ctx))
			} else {
				j.cancel()
			}
		}
		s.mu.Unlock()
	}
	s.wg.Wait()
	return drainErr
}

// --- internals ---

func (s *Scheduler) queuedLocked() int {
	n := 0
	for i := range s.classes {
		n += len(s.classes[i].jobs)
	}
	return n
}

func (s *Scheduler) inUseLocked() int {
	return len(s.budget) - len(s.free)
}

func (s *Scheduler) liveLocked() []*Job {
	var live []*Job
	for i := range s.classes {
		live = append(live, s.classes[i].jobs...)
	}
	for _, j := range s.running {
		live = append(live, j)
	}
	return live
}

func (s *Scheduler) emit(e Event) {
	if s.observer != nil {
		s.observer(e)
	}
}

// dispatchLocked starts as many queued jobs as the free CPUs allow.
// Deficit-weighted round-robin is the primary order, with one
// anti-starvation valve: once a job has been *passed over* — some
// younger job started while this one's MinCPUs exceeded the free CPUs —
// freed capacity is reserved for the longest-waiting such job until its
// minimum fits. Without the reservation a wide job can wait forever
// behind a stream of narrow ones that each fit the trickle of freed
// CPUs; with it the scheduler briefly stops being work-conserving, which
// is the price of a starvation-freedom guarantee.
func (s *Scheduler) dispatchLocked() {
	for {
		if oldest := s.longestWaitingLocked(); oldest != nil && oldest.skipped {
			if len(s.free) < oldest.minCPUs {
				return // accumulate freed CPUs for the starved job
			}
			s.startLocked(oldest)
			continue
		}
		j := s.pickDRRLocked()
		if j == nil {
			return
		}
		s.startLocked(j)
	}
}

// longestWaitingLocked returns the queued job with the smallest
// admission sequence number, or nil.
func (s *Scheduler) longestWaitingLocked() *Job {
	var oldest *Job
	for i := range s.classes {
		for _, j := range s.classes[i].jobs {
			if oldest == nil || j.seq < oldest.seq {
				oldest = j
			}
		}
	}
	return oldest
}

// pickDRRLocked selects the next job to start under deficit-weighted
// round-robin, or nil when nothing startable fits the free CPUs. Each
// backlogged class accrues deficit proportional to its weight; the class
// with the largest deficit whose head job fits is served and charged the
// granted CPU count. A class's deficit resets when its queue empties so
// idle classes cannot bank credit.
func (s *Scheduler) pickDRRLocked() *Job {
	if len(s.free) == 0 {
		return nil
	}
	fits := func(c *classQueue) *Job {
		if len(c.jobs) == 0 {
			return nil
		}
		if j := c.jobs[0]; len(s.free) >= j.minCPUs {
			return j
		}
		return nil
	}
	anyFit := false
	for i := range s.classes {
		if fits(&s.classes[i]) != nil {
			anyFit = true
			break
		}
	}
	if !anyFit {
		return nil
	}
	// Accrue deficit until some servable class goes positive. The loop
	// terminates because at least one servable class exists and every
	// backlogged class's deficit strictly increases per round.
	for {
		best := -1
		for i := numClasses - 1; i >= 0; i-- {
			c := &s.classes[i]
			if fits(c) == nil {
				continue
			}
			if c.deficit <= 0 {
				continue
			}
			if best < 0 || c.deficit > s.classes[best].deficit {
				best = i
			} else if c.deficit == s.classes[best].deficit && s.rng.Intn(2) == 0 {
				// Seeded tie-break keeps equal-deficit classes from
				// deterministically favouring one side.
				best = i
			}
		}
		if best >= 0 {
			return s.classes[best].jobs[0]
		}
		for i := range s.classes {
			c := &s.classes[i]
			if len(c.jobs) > 0 {
				c.deficit += Priority(i).weight()
			}
		}
	}
}

// startLocked carves a grant for j, removes it from its queue, and
// launches its RunFunc on a fresh goroutine.
func (s *Scheduler) startLocked(j *Job) {
	// Any older queued job that cannot fit the current free set is being
	// passed over by this dispatch; mark it so the anti-starvation
	// reservation in dispatchLocked kicks in on the next release.
	for i := range s.classes {
		for _, o := range s.classes[i].jobs {
			if o.seq < j.seq && o.minCPUs > len(s.free) {
				o.skipped = true
			}
		}
	}
	want := j.maxCPUs
	if free := len(s.free); want > free {
		want = free
	}
	allocStart := time.Now()
	grant := s.allocateLocked(want)
	j.allocDur = time.Since(allocStart)
	q := &s.classes[j.prio]
	for i, qj := range q.jobs {
		if qj == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			break
		}
	}
	q.deficit -= len(grant)
	if len(q.jobs) == 0 {
		q.deficit = 0
	}
	j.state = StateRunning
	j.grant = grant
	j.started = time.Now()
	s.running[j.id] = j
	s.emit(Event{Kind: EventStarted, JobID: j.id, Name: j.name, Grant: grant, InUse: s.inUseLocked(), Queued: s.queuedLocked()})
	if s.log != nil {
		s.log.Debug("sched: job started", "job_id", j.id, "name", j.name,
			"grant", len(grant), "queue_wait", j.started.Sub(j.queuedAt), "alloc", j.allocDur)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := runSafe(j.runCtx, grant, j.run)
		// Collect final metrics outside the scheduler lock — the
		// callback may be slow — but hand them to finish, which assigns
		// j.metrics under mu: Status() reads the field under the same
		// lock and may run concurrently with this goroutine.
		var m map[string]float64
		if j.metricsFn != nil {
			m = metricsSafe(j.metricsFn)
		}
		s.finish(j, err, m)
	}()
}

// metricsSafe invokes the metrics callback, swallowing a panic — a bad
// metrics tap must not turn a finished job into a failed one.
func metricsSafe(fn func() map[string]float64) (m map[string]float64) {
	defer func() { recover() }()
	return fn()
}

// runSafe invokes run, converting a panic into an error so one bad job
// cannot take down the scheduler.
func runSafe(ctx context.Context, grant []int, run RunFunc) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job panicked: %v", r)
		}
	}()
	return run(ctx, grant)
}

func (s *Scheduler) finish(j *Job, err error, metrics map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range j.grant {
		s.free[id] = true
	}
	delete(s.running, j.id)
	j.metrics = metrics
	j.state = StateDone
	j.finished = time.Now()
	if err == nil {
		err = j.runCtx.Err()
	}
	j.err = err
	s.finished++
	j.cancel()
	close(j.done)
	s.emit(Event{Kind: EventFinished, JobID: j.id, Name: j.name, Grant: j.grant, InUse: s.inUseLocked(), Queued: s.queuedLocked(), Metrics: j.metrics})
	if s.log != nil {
		s.log.Debug("sched: job finished", "job_id", j.id, "name", j.name,
			"wall", j.finished.Sub(j.started), "err", err)
	}
	s.dispatchLocked()
}

// removeQueuedLocked cancels a still-queued job.
func (s *Scheduler) removeQueuedLocked(j *Job, cause error) {
	q := &s.classes[j.prio]
	for i, qj := range q.jobs {
		if qj == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			break
		}
	}
	if len(q.jobs) == 0 {
		q.deficit = 0
	}
	j.state = StateCanceled
	j.finished = time.Now()
	if cause == nil {
		cause = context.Canceled
	}
	j.err = cause
	s.canceled++
	j.cancel()
	close(j.done)
	s.emit(Event{Kind: EventCanceled, JobID: j.id, Name: j.name, InUse: s.inUseLocked(), Queued: s.queuedLocked()})
	if s.log != nil {
		s.log.Debug("sched: job canceled", "job_id", j.id, "name", j.name, "cause", cause)
	}
}

// allocateLocked carves want CPUs from the free set, preferring to drain
// the locality group with the most free CPUs first (densest placement)
// and taking CPUs in compact order within each group, so a grant spans
// as few NUMA nodes as possible and RAMR's compact pinning inside the
// grant keeps mapper/combiner pairs cache-adjacent.
func (s *Scheduler) allocateLocked(want int) []int {
	byGroup := make(map[int][]int)
	var groupIDs []int
	for id := range s.free {
		g, ok := s.machine.GroupOf(id)
		if !ok {
			g = 0
		}
		if byGroup[g] == nil {
			groupIDs = append(groupIDs, g)
		}
		byGroup[g] = append(byGroup[g], id)
	}
	for _, ids := range byGroup {
		sort.Slice(ids, func(a, b int) bool { return s.rank[ids[a]] < s.rank[ids[b]] })
	}
	// Most-free group first; lowest group index on ties for determinism.
	sort.Slice(groupIDs, func(a, b int) bool {
		ga, gb := groupIDs[a], groupIDs[b]
		if len(byGroup[ga]) != len(byGroup[gb]) {
			return len(byGroup[ga]) > len(byGroup[gb])
		}
		return ga < gb
	})
	grant := make([]int, 0, want)
	for _, g := range groupIDs {
		for _, id := range byGroup[g] {
			if len(grant) == want {
				break
			}
			grant = append(grant, id)
			delete(s.free, id)
		}
		if len(grant) == want {
			break
		}
	}
	return grant
}

// --- Job methods ---

// ID returns the scheduler-assigned job id.
func (j *Job) ID() int { return j.id }

// Wait blocks until the job reaches a terminal state or ctx expires. It
// returns the job's terminal error (nil on success) or ctx.Err() when
// the wait — not the job — timed out.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.err
}

// Cancel stops the job: a queued job is removed without running, a
// running job's context fires and the engine drains. Safe to call in any
// state, any number of times. Cancel is unconditional — it does not
// consult the waiter count; coalescing layers that want last-waiter
// semantics use DropWaiter instead.
func (j *Job) Cancel() {
	s := j.s
	s.mu.Lock()
	if j.state == StateQueued {
		s.removeQueuedLocked(j, context.Canceled)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	j.cancel()
}

// AddWaiter attaches one more waiter to the job. Duplicate submissions
// coalesced onto a single execution each hold a waiter reference; all of
// them observe the job's completion (including error and cancellation)
// through Wait/Status, and the execution is cancelled only when the last
// reference detaches via DropWaiter. Attaching to an already-terminal
// job is allowed — the new waiter simply observes the settled outcome.
func (j *Job) AddWaiter() {
	j.s.mu.Lock()
	j.waiters++
	j.s.mu.Unlock()
}

// DropWaiter detaches one waiter and reports whether this detach
// cancelled the execution: dropping the last waiter from a live job
// cancels it exactly like Cancel (a queued job never starts, a running
// job's context fires), while earlier drops leave the job running for
// the remaining waiters. Dropping from a terminal job is a no-op.
func (j *Job) DropWaiter() bool {
	s := j.s
	s.mu.Lock()
	if j.waiters > 0 {
		j.waiters--
	}
	if j.waiters > 0 || j.state == StateDone || j.state == StateCanceled {
		s.mu.Unlock()
		return false
	}
	if j.state == StateQueued {
		s.removeQueuedLocked(j, context.Canceled)
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	j.cancel()
	return true
}

// Waiters returns the job's current waiter count.
func (j *Job) Waiters() int {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.waiters
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		Name:     j.name,
		Priority: j.prio,
		State:    j.state,
		Grant:    append([]int(nil), j.grant...),
		QueuedAt: j.queuedAt,
		Started:  j.started,
		Finished: j.finished,
		AllocDur: j.allocDur,
		Err:      j.err,
		Waiters:  j.waiters,
		Metrics:  copyMetrics(j.metrics),
	}
}

func copyMetrics(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
