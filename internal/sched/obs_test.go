package sched

import (
	"context"
	"log/slog"
	"sync"
	"testing"
	"time"
)

// TestAllocDurRecorded checks that a started job's status carries the
// grant-allocation timing the observability layer turns into a span.
func TestAllocDurRecorded(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	j, err := sc.Submit(JobSpec{Name: "alloc", Priority: PriorityNormal,
		Run: func(ctx context.Context, grant []int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.AllocDur < 0 {
		t.Fatalf("AllocDur = %v, want >= 0", st.AllocDur)
	}
	if st.Started.IsZero() || st.Started.Before(st.QueuedAt) {
		t.Fatalf("Started %v inconsistent with QueuedAt %v", st.Started, st.QueuedAt)
	}
}

// capturingHandler retains every slog record's message and attrs.
type capturingHandler struct {
	mu      sync.Mutex
	records []map[string]any
}

func (h *capturingHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *capturingHandler) Handle(_ context.Context, r slog.Record) error {
	m := map[string]any{"msg": r.Message}
	r.Attrs(func(a slog.Attr) bool {
		m[a.Key] = a.Value.Any()
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, m)
	h.mu.Unlock()
	return nil
}

func (h *capturingHandler) WithAttrs(attrs []slog.Attr) slog.Handler { return h }
func (h *capturingHandler) WithGroup(string) slog.Handler            { return h }

func (h *capturingHandler) find(msg string) map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.records {
		if r["msg"] == msg {
			return r
		}
	}
	return nil
}

// TestLoggerCorrelation checks every transition line carries job_id.
func TestLoggerCorrelation(t *testing.T) {
	h := &capturingHandler{}
	sc, err := New(Config{Machine: testMachine(), Logger: slog.New(h)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := sc.Submit(JobSpec{Name: "logged", Priority: PriorityHigh,
		Run: func(ctx context.Context, grant []int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"sched: job queued", "sched: job started", "sched: job finished"} {
		rec := h.find(msg)
		if rec == nil {
			t.Fatalf("no %q log line; got %+v", msg, h.records)
		}
		if got, ok := rec["job_id"].(int64); !ok || int(got) != j.ID() {
			t.Fatalf("%q line job_id = %v, want %d", msg, rec["job_id"], j.ID())
		}
	}
}
