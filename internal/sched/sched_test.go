package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ramr/internal/topology"
)

// testMachine is a small two-socket box: 2 sockets x 2 cores x 2 threads
// = 8 logical CPUs, so locality-dense allocation is observable.
func testMachine() *topology.Machine {
	return &topology.Machine{
		Name:           "sched-test",
		Sockets:        2,
		CoresPerSocket: 2,
		ThreadsPerCore: 2,
		Enum:           topology.EnumSMTLast,
		Caches: []topology.CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: topology.ScopePerCore, LatencyCycles: 4},
			{Level: 3, SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16, Scope: topology.ScopePerSocket, LatencyCycles: 40},
		},
		MemLatencyCycles:         200,
		CrossSocketPenaltyCycles: 60,
	}
}

// blockingJob returns a RunFunc that signals started, then blocks until
// release fires or the context is cancelled.
func blockingJob(started chan<- []int, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, grant []int) error {
		if started != nil {
			started <- append([]int(nil), grant...)
		}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func TestGrantsDisjointAndWithinBudget(t *testing.T) {
	var mu sync.Mutex
	maxInUse := 0
	sc, err := New(Config{
		Machine: testMachine(),
		Observer: func(e Event) {
			mu.Lock()
			if e.InUse > maxInUse {
				maxInUse = e.InUse
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Budget() != 8 {
		t.Fatalf("budget = %d, want 8", sc.Budget())
	}

	started := make(chan []int, 4)
	release := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := sc.Submit(JobSpec{
			Name:     fmt.Sprintf("j%d", i),
			Priority: PriorityNormal,
			MinCPUs:  2, MaxCPUs: 2,
			Run: blockingJob(started, release),
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	seen := map[int]int{}
	for i := 0; i < 4; i++ {
		grant := <-started
		if len(grant) != 2 {
			t.Fatalf("grant %v, want 2 CPUs", grant)
		}
		for _, c := range grant {
			if prev, dup := seen[c]; dup {
				t.Fatalf("CPU %d granted twice (jobs %d and %d)", c, prev, i)
			}
			seen[c] = i
		}
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, j := range jobs {
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
	}
	if maxInUse > sc.Budget() {
		t.Fatalf("observed InUse %d > budget %d", maxInUse, sc.Budget())
	}
}

func TestLocalityDenseGrant(t *testing.T) {
	m := testMachine()
	sc, err := New(Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan []int, 1)
	release := make(chan struct{})
	j, err := sc.Submit(JobSpec{MinCPUs: 4, MaxCPUs: 4, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	grant := <-started
	groups := map[int]bool{}
	for _, c := range grant {
		g, ok := m.GroupOf(c)
		if !ok {
			t.Fatalf("granted CPU %d not on machine", c)
		}
		groups[g] = true
	}
	// Half the machine fits in one NUMA node; a dense allocator must not
	// straddle both.
	if len(groups) != 1 {
		t.Fatalf("4-CPU grant %v spans %d locality groups, want 1", grant, len(groups))
	}
	close(release)
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionSaturation(t *testing.T) {
	sc, err := New(Config{Machine: testMachine(), MaxQueued: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan []int, 1)
	// Occupy the whole budget so everything after queues.
	run, err := sc.Submit(JobSpec{MinCPUs: 8, MaxCPUs: 8, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := sc.Submit(JobSpec{MinCPUs: 1, Run: blockingJob(nil, release)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	if _, err := sc.Submit(JobSpec{MinCPUs: 1, Run: blockingJob(nil, release)}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-limit submit: got %v, want ErrSaturated", err)
	}
	st := sc.Stats()
	if st.Queued != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Queued 2 Rejected 1", st)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, j := range append(queued, run) {
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Submit(JobSpec{}); err == nil {
		t.Fatal("nil Run accepted")
	}
	noop := func(ctx context.Context, grant []int) error { return nil }
	if _, err := sc.Submit(JobSpec{MinCPUs: 9, Run: noop}); err == nil {
		t.Fatal("MinCPUs > budget accepted")
	}
	if _, err := sc.Submit(JobSpec{MinCPUs: 4, MaxCPUs: 2, Run: noop}); err == nil {
		t.Fatal("MaxCPUs < MinCPUs accepted")
	}
	if _, err := sc.Submit(JobSpec{Priority: Priority(7), Run: noop}); err == nil {
		t.Fatal("invalid priority accepted")
	}
}

func TestFairShareFavorsHighPriority(t *testing.T) {
	sc, err := New(Config{Machine: testMachine(), MaxQueued: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the machine so subsequent submissions queue up.
	release := make(chan struct{})
	started := make(chan []int, 1)
	blocker, err := sc.Submit(JobSpec{MinCPUs: 8, MaxCPUs: 8, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	mk := func(name string, p Priority) *Job {
		j, err := sc.Submit(JobSpec{
			Name: name, Priority: p, MinCPUs: 8, MaxCPUs: 8,
			Run: func(ctx context.Context, grant []int) error {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	// Interleave 4 low and 4 high; each needs the whole machine so they
	// serialize and the dispatch order is the service order.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mk(fmt.Sprintf("low%d", i), PriorityLow))
		jobs = append(jobs, mk(fmt.Sprintf("high%d", i), PriorityHigh))
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// With weights 4 vs 1, the first dispatch after release must be a
	// high job, and highs must finish before the last low.
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 8 {
		t.Fatalf("ran %d jobs, want 8", len(order))
	}
	if order[0][:3] != "hig" {
		t.Fatalf("first dispatched job %q, want a high-priority one (order %v)", order[0], order)
	}
	lastHigh, lastLow := -1, -1
	for i, n := range order {
		if n[:3] == "hig" {
			lastHigh = i
		} else {
			lastLow = i
		}
	}
	if lastHigh > lastLow {
		t.Fatalf("a high job ran after every low job: %v", order)
	}
}

func TestDeterministicPlacement(t *testing.T) {
	runOnce := func() [][]int {
		sc, err := New(Config{Machine: testMachine(), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		// All three jobs hold their grants until released, so the three
		// placement decisions happen against the same free-set sequence
		// in every run.
		release := make(chan struct{})
		started := make(chan []int, 3)
		var jobs []*Job
		for i := 0; i < 3; i++ {
			j, err := sc.Submit(JobSpec{MinCPUs: 2, MaxCPUs: 2, Run: blockingJob(started, release)})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		out := make([][]int, len(jobs))
		for i, j := range jobs {
			if err := j.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			out[i] = j.Status().Grant
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("placement differs across identical runs: %v vs %v", a, b)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	started := make(chan []int, 1)
	running, err := sc.Submit(JobSpec{MinCPUs: 8, MaxCPUs: 8, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := sc.Submit(JobSpec{MinCPUs: 1, Run: blockingJob(nil, release)})
	if err != nil {
		t.Fatal(err)
	}

	queued.Cancel()
	if st := queued.Status(); st.State != StateCanceled {
		t.Fatalf("queued job state %v after cancel, want canceled", st.State)
	}
	if err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued job err = %v", err)
	}

	running.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := running.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled running job err = %v", err)
	}
	if st := sc.Stats(); st.InUse != 0 {
		t.Fatalf("CPUs leaked after cancel: %+v", st)
	}
}

func TestPanicIsolatedAndCPUsReclaimed(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	j, err := sc.Submit(JobSpec{Run: func(ctx context.Context, grant []int) error {
		panic("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = j.Wait(ctx)
	if err == nil || err.Error() != "sched: job panicked: boom" {
		t.Fatalf("err = %v, want panic error", err)
	}
	if st := sc.Stats(); st.InUse != 0 {
		t.Fatalf("CPUs leaked after panic: %+v", st)
	}
}

func TestFreedCPUsGoToLongestWaiting(t *testing.T) {
	sc, err := New(Config{Machine: testMachine(), MaxQueued: 8})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan []int, 1)
	blocker, err := sc.Submit(JobSpec{MinCPUs: 8, MaxCPUs: 8, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// A wide low-priority job queued first, then a stream of high
	// narrow ones: without the longest-waiting handoff the wide job
	// could starve behind the weight-4 class.
	wideRan := make(chan struct{})
	wide, err := sc.Submit(JobSpec{
		Name: "wide", Priority: PriorityLow, MinCPUs: 8, MaxCPUs: 8,
		Run: func(ctx context.Context, grant []int) error {
			close(wideRan)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var narrows []*Job
	for i := 0; i < 4; i++ {
		j, err := sc.Submit(JobSpec{
			Name: "narrow", Priority: PriorityHigh, MinCPUs: 1, MaxCPUs: 1,
			Run: func(ctx context.Context, grant []int) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		narrows = append(narrows, j)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	select {
	case <-wideRan:
	case <-ctx.Done():
		t.Fatal("wide job starved")
	}
	for _, j := range append(narrows, blocker, wide) {
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDrain(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan []int, 1)
	j, err := sc.Submit(JobSpec{MinCPUs: 8, MaxCPUs: 8, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := sc.Submit(JobSpec{MinCPUs: 1, Run: func(ctx context.Context, grant []int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The queued job must have run, not been dropped.
	if err := queued.Wait(ctx); err != nil {
		t.Fatalf("queued job lost in drain: %v", err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Submit(JobSpec{Run: func(ctx context.Context, grant []int) error { return nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan []int, 1)
	j, err := sc.Submit(JobSpec{MinCPUs: 8, MaxCPUs: 8, Run: blockingJob(started, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := sc.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want DeadlineExceeded", err)
	}
	// Drain waited for the straggler's goroutine, so the job is
	// terminal now.
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("straggler err = %v, want Canceled", err)
	}
}

// TestJobMetrics: a JobSpec.Metrics callback's map rides on the
// EventFinished observer event and in JobStatus; a panicking callback is
// swallowed without failing the job.
func TestJobMetrics(t *testing.T) {
	var mu sync.Mutex
	var finished map[string]float64
	sc, err := New(Config{
		Machine: testMachine(),
		Observer: func(e Event) {
			if e.Kind == EventFinished {
				mu.Lock()
				finished = e.Metrics
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := sc.Submit(JobSpec{
		Name:     "metered",
		Priority: PriorityNormal,
		Run:      func(ctx context.Context, grant []int) error { return nil },
		Metrics: func() map[string]float64 {
			return map[string]float64{"steal_remote_tasks": 7, "queue_imbalance_p90": 2.5}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := finished
	mu.Unlock()
	if got["steal_remote_tasks"] != 7 || got["queue_imbalance_p90"] != 2.5 {
		t.Fatalf("EventFinished metrics = %v", got)
	}
	st := j.Status()
	if st.Metrics["steal_remote_tasks"] != 7 {
		t.Fatalf("JobStatus metrics = %v", st.Metrics)
	}
	// The status copy must be detached from the job's map.
	st.Metrics["steal_remote_tasks"] = 0
	if j.Status().Metrics["steal_remote_tasks"] != 7 {
		t.Fatal("JobStatus shares the job's metric map")
	}

	jp, err := sc.Submit(JobSpec{
		Name: "panicky-metrics",
		Run:  func(ctx context.Context, grant []int) error { return nil },
		Metrics: func() map[string]float64 {
			panic("metrics tap broke")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jp.Wait(context.Background()); err != nil {
		t.Fatalf("panicking metrics callback failed the job: %v", err)
	}
	if st := jp.Status(); st.State != StateDone || st.Metrics != nil {
		t.Fatalf("panicky metrics job: %+v", st)
	}
}

// TestWaiterFanoutRunning: coalesced waiters on a running job detach one
// by one; the execution is cancelled only by the last detach.
func TestWaiterFanoutRunning(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan []int, 1)
	release := make(chan struct{})
	j, err := sc.Submit(JobSpec{Name: "leader", Priority: PriorityNormal, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.AddWaiter()
	j.AddWaiter()
	if got := j.Waiters(); got != 3 {
		t.Fatalf("waiters = %d, want 3", got)
	}
	if j.DropWaiter() {
		t.Fatal("first DropWaiter cancelled a job with two remaining waiters")
	}
	if st := j.Status(); st.State != StateRunning || st.Waiters != 2 {
		t.Fatalf("after one drop: state %v, waiters %d", st.State, st.Waiters)
	}
	if j.DropWaiter() {
		t.Fatal("second DropWaiter cancelled a job with one remaining waiter")
	}
	if !j.DropWaiter() {
		t.Fatal("last DropWaiter did not cancel the running job")
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader error = %v, want context.Canceled", err)
	}
	// Terminal drops are no-ops.
	if j.DropWaiter() {
		t.Fatal("DropWaiter on a terminal job reported a cancellation")
	}
}

// TestWaiterFanoutQueued: the last waiter detaching from a still-queued
// job removes it before it ever runs.
func TestWaiterFanoutQueued(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan []int, 1)
	release := make(chan struct{})
	blocker, err := sc.Submit(JobSpec{Name: "blocker", MinCPUs: 8, MaxCPUs: 8, Priority: PriorityNormal, Run: blockingJob(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ran := false
	q, err := sc.Submit(JobSpec{Name: "queued", MinCPUs: 8, Priority: PriorityNormal, Run: func(ctx context.Context, grant []int) error {
		ran = true
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.AddWaiter()
	if q.DropWaiter() {
		t.Fatal("non-final DropWaiter cancelled the queued job")
	}
	if !q.DropWaiter() {
		t.Fatal("final DropWaiter did not cancel the queued job")
	}
	if st := q.Status(); st.State != StateCanceled {
		t.Fatalf("queued job state after last drop = %v, want canceled", st.State)
	}
	if ran {
		t.Fatal("queued job ran despite all waiters detaching")
	}
	close(release)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("blocker: %v", err)
	}
}

// TestReserveID: reserved ids come from the same sequence as submitted
// jobs and never collide with them.
func TestReserveID(t *testing.T) {
	sc, err := New(Config{Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	j, err := sc.Submit(JobSpec{Name: "a", Priority: PriorityNormal, Run: func(ctx context.Context, grant []int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	r1 := sc.ReserveID()
	r2 := sc.ReserveID()
	if r1 <= j.ID() || r2 <= r1 {
		t.Fatalf("reserved ids %d, %d not strictly after job id %d", r1, r2, j.ID())
	}
	j2, err := sc.Submit(JobSpec{Name: "b", Priority: PriorityNormal, Run: func(ctx context.Context, grant []int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() <= r2 {
		t.Fatalf("job id %d collides with reserved id %d", j2.ID(), r2)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}
