package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Multi aggregates several live Telemetry instances — one per concurrent
// job — into a single Prometheus exposition, distinguishing them with
// caller-supplied labels. A Telemetry records exactly one run at a time,
// so a multi-job service gives every job its own instance and registers it
// here for the lifetime of the job; the shared /metrics endpoint then
// scrapes all live runs at once, each sample carrying its job's labels.
//
// Registration order is preserved in the exposition so scrapes are stable.
// All methods are safe for concurrent use.
type Multi struct {
	mu      sync.Mutex
	entries []multiEntry
	extra   func(io.Writer) error
}

type multiEntry struct {
	key    string
	labels string // rendered `k="v",...,` prefix
	t      *Telemetry
}

// NewMulti returns an empty aggregator.
func NewMulti() *Multi { return &Multi{} }

// Register adds t under key with the given extra labels (rendered in
// sorted key order). Label names must be valid Prometheus label names and
// must not collide with the exporter's own (engine, role, worker, queue);
// the caller guarantees both. Registering an existing key replaces it.
func (m *Multi) Register(key string, labels map[string]string, t *Telemetry) {
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	rendered := ""
	for _, k := range names {
		rendered += fmt.Sprintf("%s=%q,", k, labels[k])
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.entries {
		if m.entries[i].key == key {
			m.entries[i] = multiEntry{key: key, labels: rendered, t: t}
			return
		}
	}
	m.entries = append(m.entries, multiEntry{key: key, labels: rendered, t: t})
}

// Unregister removes the entry under key; unknown keys are a no-op.
func (m *Multi) Unregister(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.entries {
		if m.entries[i].key == key {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return
		}
	}
}

// SetExtra registers an auxiliary exposition writer appended after the
// per-run metric families — the job service uses it for service-level
// families (memo cache counters, registry retention gauges). The writer
// must emit complete, well-formed family blocks of its own; it runs on
// every scrape, even when no runs are registered, so service-level
// series survive job deletion. A nil fn clears it.
func (m *Multi) SetExtra(fn func(io.Writer) error) {
	m.mu.Lock()
	m.extra = fn
	m.mu.Unlock()
}

// Len returns the number of registered instances.
func (m *Multi) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// WritePrometheus emits one well-formed exposition covering every
// registered run: each metric family appears once, with one sample per
// worker/queue per run, labelled by the run's registration labels.
func (m *Multi) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	entries := append([]multiEntry(nil), m.entries...)
	extra := m.extra
	m.mu.Unlock()
	snaps := make([]promSnap, len(entries))
	for i, e := range entries {
		snaps[i] = e.t.snap(e.labels)
	}
	if err := writePromSnaps(w, snaps); err != nil {
		return err
	}
	// The extra writer runs outside m.mu so it may call back into the
	// aggregator (Len) without deadlocking.
	if extra != nil {
		return extra(w)
	}
	return nil
}

// Handler returns an http.Handler serving the aggregate exposition, for
// services that mount /metrics on their own mux.
func (m *Multi) Handler() http.Handler { return metricsHandler(m.WritePrometheus) }

// NewMultiServer starts a Server (metrics + pprof) for the aggregator on
// addr (":0" picks a free port — see Server.Addr).
func NewMultiServer(m *Multi, addr string) (*Server, error) {
	return newServer(m.WritePrometheus, addr)
}
