// Package telemetry is the live observability layer of the runtime: it
// turns the backpressure dynamics the paper reasons about — how full the
// SPSC rings run (§III-A's queue-capacity tuning), how busy each worker
// class stays (§III-B's mapper/combiner ratio) — into data any run can
// produce, while a job is still executing.
//
// Three pieces:
//
//   - Per-worker sharded counters. Each worker goroutine owns a Worker
//     record of atomic counters (pairs emitted/combined, tasks, batches,
//     failed pushes, sleep time) plus a state word. Workers only ever touch
//     their own record, so with telemetry enabled the hot path pays local,
//     uncontended atomic increments — amortized further by the engines,
//     which add per slab/batch/task rather than per pair. With
//     Config.Telemetry nil the engines skip registration entirely and pay
//     nothing.
//
//   - A background sampler. At a configurable interval it snapshots every
//     registered queue's depth (via the non-invasive Probe — spsc.Queue's
//     Len/Cap satisfy it) and every worker's state into a bounded
//     time-series, yielding queue-occupancy-over-time and worker
//     utilization curves per run. The series decimates itself when full
//     (drop every other sample, double the stride), so it always spans the
//     whole run in bounded memory.
//
//   - Exporters. Prometheus text-format exposition (WritePrometheus,
//     optionally served live together with net/http/pprof by Server), a
//     structured JSON run report (Report, attached to mr.Result and
//     dumpable from cmd/ramrbench via -metrics-out), and a human-readable
//     summary (Report.Summary).
//
// A Telemetry records one run at a time: BeginRun resets the registries
// and starts the sampler, EndRun stops it and builds the Report. Reusing
// one Telemetry across sequential runs is fine (the bench harness does);
// sharing one across concurrent runs is not.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the sampler knobs; see the corresponding Telemetry fields.
const (
	DefaultInterval   = 200 * time.Microsecond
	DefaultMaxSamples = 4096
)

// Probe exposes a queue's instantaneous depth and capacity. spsc.Queue
// satisfies it; Len is a point-in-time snapshot safe to call from any
// goroutine while the two queue sides run.
type Probe interface {
	Len() int
	Cap() int
}

// State is a worker's coarse activity phase, sampled for the utilization
// curves.
type State uint32

const (
	// StateIdle: registered but not currently executing user code (a
	// combiner between non-empty polling rounds, a worker before its
	// first task).
	StateIdle State = iota
	// StateWorking: executing map/combine user code.
	StateWorking
	// StateDraining: a combiner force-draining closed queues after the
	// map phase ended.
	StateDraining
	// StateDone: the worker has exited.
	StateDone
)

// String names the state for reports.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateWorking:
		return "working"
	case StateDraining:
		return "draining"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", uint32(s))
	}
}

// Worker is one worker goroutine's private counter shard. All methods are
// safe on a nil receiver (no-ops), so engine code can hold a nil *Worker
// when telemetry is disabled and call unconditionally off the innermost
// loops. Counters are atomics because the sampler and exporters read them
// concurrently; only the owning worker writes them, so the adds never
// contend.
type Worker struct {
	engine string
	role   string
	id     int

	state    atomic.Uint32
	emitted  atomic.Uint64
	combined atomic.Uint64
	tasks    atomic.Uint64
	batches  atomic.Uint64
	// pushes, failedPush and sleepMicros mirror the producer-owned spsc
	// counters (absolute values, stored not added) so they stay readable
	// while the consumer side is still running. pushes exists so the
	// online tuner can form a failed-push *rate* from live mirrors.
	pushes      atomic.Uint64
	failedPush  atomic.Uint64
	sleepMicros atomic.Uint64
	// Work-stealing counters, indexed by steal class (0 local take,
	// 1 socket steal, 2 remote steal — topology.StealClass values; the
	// int indexing keeps telemetry free of a topology dependency).
	stealBatches   [NumStealClasses]atomic.Uint64
	stealTasks     [NumStealClasses]atomic.Uint64
	remoteExecuted atomic.Uint64
}

// Steal class indices and labels, mirroring topology.StealClass.
const NumStealClasses = 3

// StealClassNames are the metric label values, indexed by class.
var StealClassNames = [NumStealClasses]string{"local", "socket", "remote"}

// SetState publishes the worker's activity phase for the sampler.
func (w *Worker) SetState(s State) {
	if w != nil {
		w.state.Store(uint32(s))
	}
}

// AddEmitted counts n intermediate pairs emitted by this worker's Map.
func (w *Worker) AddEmitted(n int) {
	if w != nil && n > 0 {
		w.emitted.Add(uint64(n))
	}
}

// AddCombined counts n intermediate pairs folded into this worker's
// container by Combine.
func (w *Worker) AddCombined(n int) {
	if w != nil && n > 0 {
		w.combined.Add(uint64(n))
	}
}

// AddTasks counts n completed map tasks.
func (w *Worker) AddTasks(n int) {
	if w != nil && n > 0 {
		w.tasks.Add(uint64(n))
	}
}

// AddSteal counts one take of n tasks in the given steal class (a
// topology.StealClass value); out-of-range classes are dropped.
func (w *Worker) AddSteal(class int, n int) {
	if w != nil && class >= 0 && class < NumStealClasses && n > 0 {
		w.stealBatches[class].Add(1)
		w.stealTasks[class].Add(uint64(n))
	}
}

// AddRemoteExecuted counts n completed map tasks that this worker stole
// from another locality group's deque.
func (w *Worker) AddRemoteExecuted(n int) {
	if w != nil && n > 0 {
		w.remoteExecuted.Add(uint64(n))
	}
}

// AddBatches counts n consumed queue segments (combiner side).
func (w *Worker) AddBatches(n int) {
	if w != nil && n > 0 {
		w.batches.Add(uint64(n))
	}
}

// StoreProducer mirrors the producer-owned queue counters (cumulative
// pushes, failed pushes and microseconds slept on a full ring). Call from
// the producer goroutine with spsc.Queue.ProducerStats values.
func (w *Worker) StoreProducer(pushes, failedPush, sleepMicros uint64) {
	if w != nil {
		w.pushes.Store(pushes)
		w.failedPush.Store(failedPush)
		w.sleepMicros.Store(sleepMicros)
	}
}

// QueueMirror holds one queue's consumer-side counter mirrors. The spsc
// consumer counters are owned by the consuming goroutine and unreadable
// from anywhere else while the run is live; the elastic combiner stores
// cumulative ConsumerStats values here once per polling round. Ownership
// handoffs between combiners are serialized by the pool lock, so the
// stores never race even as a queue changes consumers; readers (the
// tuner) see cumulative per-queue values that can be summed without
// double counting. All methods are nil-safe.
type QueueMirror struct {
	pops       atomic.Uint64
	emptyPolls atomic.Uint64
	shortPolls atomic.Uint64
	batchCalls atomic.Uint64
}

// StoreConsumer mirrors spsc.Queue.ConsumerStats values. Call from the
// queue's current consumer goroutine.
func (m *QueueMirror) StoreConsumer(pops, emptyPolls, shortPolls, batchCalls uint64) {
	if m != nil {
		m.pops.Store(pops)
		m.emptyPolls.Store(emptyPolls)
		m.shortPolls.Store(shortPolls)
		m.batchCalls.Store(batchCalls)
	}
}

// registeredQueue pairs a probe with its report label and consumer
// mirror.
type registeredQueue struct {
	name   string
	probe  Probe
	mirror *QueueMirror
}

// Telemetry collects one run's live metrics. The zero value is usable:
// unset knobs take the Default* values at BeginRun.
type Telemetry struct {
	// Interval is the sampling period; 0 selects DefaultInterval.
	Interval time.Duration
	// MaxSamples bounds the in-memory time-series; when the bound is
	// reached the series decimates (halves resolution) so it still spans
	// the whole run. 0 selects DefaultMaxSamples.
	MaxSamples int
	// Addr is the listen address a Server should use when one is started
	// for this Telemetry ("" means no server); see NewServer. The field
	// exists so the whole observability setup can travel inside
	// mr.Config.
	Addr string

	mu            sync.Mutex
	engine        string
	start         time.Time
	workers       []*Worker
	queues        []registeredQueue
	series        *series
	observer      func(Sample)
	stop          chan struct{}
	done          chan struct{}
	last          *Report
	lastImbalance float64
}

// New returns a Telemetry with default knobs, ready for mr.Config.
func New() *Telemetry { return &Telemetry{} }

// BeginRun clears any previous run's registrations and starts the
// background sampler. Engines call it once at run start when
// Config.Telemetry is non-nil.
func (t *Telemetry) BeginRun(engine string) {
	t.mu.Lock()
	t.stopLocked()
	t.engine = engine
	t.start = time.Now()
	t.workers = nil
	t.queues = nil
	t.observer = nil
	interval := t.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	max := t.MaxSamples
	if max <= 0 {
		max = DefaultMaxSamples
	}
	t.series = newSeries(max)
	t.lastImbalance = 0
	stop := make(chan struct{})
	done := make(chan struct{})
	t.stop, t.done = stop, done
	t.mu.Unlock()

	go t.sampleLoop(interval, stop, done)
}

// RegisterWorker adds a worker shard for the current run and returns it.
// Safe to call concurrently from worker goroutines.
func (t *Telemetry) RegisterWorker(role string, id int) *Worker {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := &Worker{engine: t.engine, role: role, id: id}
	t.workers = append(t.workers, w)
	return w
}

// RegisterQueue adds a queue depth probe for the current run and returns
// the queue's consumer mirror (callers that do not mirror may discard
// it).
func (t *Telemetry) RegisterQueue(name string, p Probe) *QueueMirror {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := &QueueMirror{}
	t.queues = append(t.queues, registeredQueue{name: name, probe: p, mirror: m})
	return m
}

// SetObserver registers fn to be called with every regular sampler tick's
// Sample, from the sampler goroutine, outside the telemetry lock. The
// online tuner driver uses it as its epoch clock. Pass nil to remove the
// observer; BeginRun also clears it.
func (t *Telemetry) SetObserver(fn func(Sample)) {
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// sampleLoop drives the sampler until stop closes.
func (t *Telemetry) sampleLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			t.sample(false)
		}
	}
}

// sample takes one snapshot of every queue depth and worker state. force
// bypasses the series' stride decimation (used for the final sample) and
// skips the observer, so observers see exactly the regular tick cadence.
func (t *Telemetry) sample(force bool) {
	t.mu.Lock()
	if t.series == nil {
		t.mu.Unlock()
		return
	}
	s := Sample{T: time.Since(t.start)}
	if len(t.queues) > 0 {
		s.Depths = make([]int, len(t.queues))
		sum, max := 0, 0
		for i, q := range t.queues {
			d := q.probe.Len()
			s.Depths[i] = d
			sum += d
			if d > max {
				max = d
			}
		}
		// Imbalance = max/mean; an all-empty tick is balanced (1.0), not
		// undefined, so epochs of pure idleness never read as skew.
		s.Imbalance = 1.0
		if sum > 0 {
			s.Imbalance = float64(max) * float64(len(t.queues)) / float64(sum)
		}
		t.lastImbalance = s.Imbalance
	}
	if len(t.workers) > 0 {
		s.States = make([]State, len(t.workers))
		for i, w := range t.workers {
			s.States[i] = State(w.state.Load())
		}
	}
	if force {
		t.series.force(s)
	} else {
		t.series.add(s)
	}
	fn := t.observer
	t.mu.Unlock()
	if fn != nil && !force {
		fn(s)
	}
}

// Counters is a point-in-time aggregate of the live counter mirrors: the
// producer side summed over worker shards, the consumer side summed over
// queue mirrors. Values are cumulative since BeginRun; the tuner forms
// per-epoch rates by differencing two snapshots.
type Counters struct {
	// Producer side (worker shards).
	Emitted    uint64
	Combined   uint64
	Pushes     uint64
	FailedPush uint64
	// Consumer side (queue mirrors).
	Pops       uint64
	EmptyPolls uint64
	ShortPolls uint64
	BatchCalls uint64
}

// CountersNow snapshots the aggregate counters for the current run. Safe
// to call concurrently with the run.
func (t *Telemetry) CountersNow() Counters {
	t.mu.Lock()
	workers := t.workers
	queues := t.queues
	t.mu.Unlock()
	var c Counters
	for _, w := range workers {
		c.Emitted += w.emitted.Load()
		c.Combined += w.combined.Load()
		c.Pushes += w.pushes.Load()
		c.FailedPush += w.failedPush.Load()
	}
	for _, q := range queues {
		c.Pops += q.mirror.pops.Load()
		c.EmptyPolls += q.mirror.emptyPolls.Load()
		c.ShortPolls += q.mirror.shortPolls.Load()
		c.BatchCalls += q.mirror.batchCalls.Load()
	}
	return c
}

// stopLocked halts the sampler; callers hold t.mu. The lock is released
// around the wait so an in-flight sample() can finish.
func (t *Telemetry) stopLocked() {
	if t.stop == nil {
		return
	}
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	close(stop)
	t.mu.Unlock()
	<-done
	t.mu.Lock()
}

// Stop halts the sampler without building a report. Idempotent; engines
// defer it so error paths never leak the sampler goroutine.
func (t *Telemetry) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopLocked()
}

// EndRun takes one final forced sample (so even sub-interval runs yield a
// non-empty series), stops the sampler and builds the run Report. phases
// carries per-phase wall-clock seconds keyed by phase name ("map-combine",
// ...); pass nil when unknown. The report is also retained for LastReport
// and the Prometheus exporter.
func (t *Telemetry) EndRun(phases map[string]float64) *Report {
	t.sample(true)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopLocked()
	rep := t.buildReportLocked(phases)
	t.last = rep
	return rep
}

// LastReport returns the most recent EndRun report, or nil.
func (t *Telemetry) LastReport() *Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}
