package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition strictly validates a Prometheus text-format (0.0.4)
// exposition, the way a picky scraper would:
//
//   - every non-comment line must parse as `name{labels} value`
//   - every sample must belong to a family declared by a preceding
//     `# TYPE` line (histogram samples may use the _bucket/_sum/_count
//     suffixes of a declared histogram family)
//   - a family's TYPE must be declared exactly once, before its samples
//   - no duplicate series (same name + label set)
//   - histogram children must be complete and consistent: buckets
//     cumulative and non-decreasing in `le` order, a `+Inf` bucket equal
//     to `_count`, and `_sum`/`_count` present
//
// It exists so tests and CI can fail on malformed or duplicated series
// the moment a new family is added, instead of when a real Prometheus
// first scrapes the service.
func CheckExposition(data []byte) error {
	types := map[string]string{}  // family -> type
	helped := map[string]bool{}   // family -> HELP seen
	sampled := map[string]bool{}  // family -> samples seen
	series := map[string]int{}    // name + sorted labels -> line no
	type histChild struct {
		buckets map[float64]float64 // le -> cumulative count
		sum     *float64
		count   *float64
	}
	hists := map[string]*histChild{} // family + labels-minus-le -> child

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			return fmt.Errorf("line %d: blank line inside exposition", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if fields[1] == "HELP" {
				if helped[name] {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helped[name] = true
				continue
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if sampled[name] {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			types[name] = typ
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family, suffix := name, ""
		if _, ok := types[name]; !ok {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, s)
				if base != name && types[base] == "histogram" {
					family, suffix = base, s
					break
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if typ == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: histogram %s sampled without _bucket/_sum/_count suffix", lineNo, name)
		}
		sampled[family] = true

		key := seriesKey(name, labels)
		if prev, dup := series[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, key, prev)
		}
		series[key] = lineNo

		if typ == "histogram" {
			var le float64
			rest := make([]label, 0, len(labels))
			haveLe := false
			for _, l := range labels {
				if l.name == "le" {
					haveLe = true
					le, err = parseFloat(l.value)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", lineNo, l.value, err)
					}
					continue
				}
				rest = append(rest, l)
			}
			ck := seriesKey(family, rest)
			child := hists[ck]
			if child == nil {
				child = &histChild{buckets: map[float64]float64{}}
				hists[ck] = child
			}
			switch suffix {
			case "_bucket":
				if !haveLe {
					return fmt.Errorf("line %d: %s_bucket without le label", lineNo, family)
				}
				child.buckets[le] = value
			case "_sum":
				child.sum = &value
			case "_count":
				child.count = &value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for key, child := range hists {
		if child.sum == nil || child.count == nil {
			return fmt.Errorf("histogram %s missing _sum or _count", key)
		}
		inf, ok := child.buckets[math.Inf(1)]
		if !ok {
			return fmt.Errorf("histogram %s missing +Inf bucket", key)
		}
		if inf != *child.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key, inf, *child.count)
		}
		les := make([]float64, 0, len(child.buckets))
		for le := range child.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := -math.MaxFloat64
		prevCum := -1.0
		for _, le := range les {
			if cum := child.buckets[le]; cum < prevCum {
				return fmt.Errorf("histogram %s: bucket le=%g count %g below le=%g count %g (not cumulative)",
					key, le, cum, prev, prevCum)
			} else {
				prev, prevCum = le, cum
			}
		}
	}
	return nil
}

type label struct{ name, value string }

// seriesKey renders a canonical series identity: labels sorted by name
// so reordered duplicates still collide.
func seriesKey(name string, labels []label) string {
	ls := append([]label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].name < ls[j].name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.name, l.value)
	}
	b.WriteByte('}')
	return b.String()
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (string, []label, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	var labels []label
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err := parseFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes `name="value",...}` and returns the labels plus
// the remainder of the line after the closing brace.
func parseLabels(s string) ([]label, string, error) {
	var labels []label
	seen := map[string]bool{}
	for {
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label")
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if seen[name] {
			return nil, "", fmt.Errorf("repeated label %q", name)
		}
		seen[name] = true
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("unquoted value for label %q", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Errorf("unterminated value for label %q", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, "", fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[0] {
				case '"', '\\':
					val.WriteByte(s[0])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[0], name)
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, label{name: name, value: val.String()})
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
