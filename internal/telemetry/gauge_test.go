package telemetry

import (
	"strings"
	"testing"
)

func TestGaugeVecSetDeleteWrite(t *testing.T) {
	g := NewGaugeVec("ramr_test_lag_seconds", "Test gauge.", []string{"job"})

	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty family emitted output: %q", sb.String())
	}

	g.Set(1.5, "7")
	g.Set(0.25, "9")
	g.Set(2.5, "7") // overwrite, not a new series
	sb.Reset()
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP ramr_test_lag_seconds Test gauge.",
		"# TYPE ramr_test_lag_seconds gauge",
		`ramr_test_lag_seconds{job="7"} 2.5`,
		`ramr_test_lag_seconds{job="9"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := len(g.Series()); got != 2 {
		t.Fatalf("series count = %d, want 2", got)
	}

	g.Delete("7")
	g.Delete("7") // idempotent
	sb.Reset()
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `job="7"`) {
		t.Fatalf("deleted series still exposed:\n%s", sb.String())
	}
	if got := len(g.Series()); got != 1 {
		t.Fatalf("series count after delete = %d, want 1", got)
	}

	// The exposition must satisfy the strict checker.
	if err := CheckExposition([]byte(sb.String())); err != nil {
		t.Fatalf("gauge exposition fails validation: %v", err)
	}
}
