package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestSampleImbalance: the sampler's per-tick imbalance is max/mean depth,
// 1.0 for uniform (and all-empty) depths.
func TestSampleImbalance(t *testing.T) {
	tel := &Telemetry{Interval: time.Hour} // only the forced EndRun sample
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: 30, cap: 100})
	tel.RegisterQueue("mapper-1", &fakeProbe{depth: 10, cap: 100})
	tel.RegisterQueue("mapper-2", &fakeProbe{depth: 20, cap: 100})
	rep := tel.EndRun(nil)
	// max 30, mean 20 -> 1.5.
	if got := rep.Imbalance.Max; got < 1.49 || got > 1.51 {
		t.Fatalf("imbalance = %v, want 1.5", got)
	}
	if len(rep.Series) == 0 || rep.Series[len(rep.Series)-1].Imbalance != rep.Imbalance.Max {
		t.Fatal("series points do not carry the imbalance")
	}

	tel2 := &Telemetry{Interval: time.Hour}
	tel2.BeginRun("ramr")
	tel2.RegisterQueue("mapper-0", &fakeProbe{depth: 0, cap: 100})
	tel2.RegisterQueue("mapper-1", &fakeProbe{depth: 0, cap: 100})
	rep2 := tel2.EndRun(nil)
	if rep2.Imbalance.Max != 1.0 {
		t.Fatalf("all-empty imbalance = %v, want the balanced 1.0", rep2.Imbalance.Max)
	}
}

// TestWorkerStealCounters: AddSteal buckets by class, AddRemoteExecuted
// accumulates, and the report totals fold all workers.
func TestWorkerStealCounters(t *testing.T) {
	tel := &Telemetry{Interval: time.Hour}
	tel.BeginRun("ramr")
	w0 := tel.RegisterWorker("mapper", 0)
	w1 := tel.RegisterWorker("mapper", 1)
	w0.AddSteal(0, 5) // local
	w0.AddSteal(2, 3) // remote
	w0.AddRemoteExecuted(3)
	w1.AddSteal(1, 2) // socket
	w1.AddRemoteExecuted(2)
	w1.AddSteal(99, 7) // out of range: dropped
	w1.AddSteal(1, 0)  // zero tasks: dropped
	rep := tel.EndRun(nil)
	tot := rep.Totals
	if tot.LocalTakes != 5 || tot.SocketSteals != 2 || tot.RemoteSteals != 3 || tot.RemoteExecuted != 5 {
		t.Fatalf("steal totals: %+v", tot)
	}
	if rep.Workers[0].RemoteSteals != 3 || rep.Workers[1].SocketSteals != 2 {
		t.Fatalf("per-worker steal fields: %+v", rep.Workers)
	}
}

// TestWorkerStealNilSafe: nil receivers no-op like every other Worker
// method.
func TestWorkerStealNilSafe(t *testing.T) {
	var w *Worker
	w.AddSteal(1, 3)
	w.AddRemoteExecuted(2)
}

// TestPrometheusStealFamilies: the exposition carries the per-class steal
// counters and the imbalance gauge.
func TestPrometheusStealFamilies(t *testing.T) {
	tel := &Telemetry{Interval: time.Hour}
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: 8, cap: 16})
	tel.RegisterQueue("mapper-1", &fakeProbe{depth: 0, cap: 16})
	w := tel.RegisterWorker("mapper", 0)
	w.AddSteal(2, 4)
	w.AddRemoteExecuted(4)
	tel.EndRun(nil)

	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ramr_worker_steal_tasks_total{engine="ramr",role="mapper",worker="0",class="remote"} 4`,
		`ramr_worker_steal_batches_total{engine="ramr",role="mapper",worker="0",class="remote"} 1`,
		`ramr_worker_steal_tasks_total{engine="ramr",role="mapper",worker="0",class="local"} 0`,
		`ramr_worker_remote_executed_total{engine="ramr",role="mapper",worker="0"} 4`,
		"# TYPE ramr_queue_imbalance gauge",
		"ramr_queue_imbalance 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
