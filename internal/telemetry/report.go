package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// QueueReport summarizes one queue's sampled occupancy.
type QueueReport struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	// Occupancy holds depth/capacity percentiles over the run's samples.
	Occupancy Percentiles `json:"occupancy"`
}

// WorkerReport is one worker's counter totals plus its sampled busy
// fraction (share of samples observed in StateWorking or StateDraining).
type WorkerReport struct {
	Engine      string `json:"engine"`
	Role        string `json:"role"`
	ID          int    `json:"id"`
	Emitted     uint64 `json:"pairs_emitted"`
	Combined    uint64 `json:"pairs_combined"`
	Tasks       uint64 `json:"tasks"`
	Batches     uint64 `json:"batches"`
	FailedPush  uint64 `json:"failed_pushes"`
	SleepMicros uint64 `json:"sleep_micros"`
	// Steal counters (mapper role only): takes from the worker's own
	// group, tasks stolen from cache-sharing and cross-interconnect
	// groups, and stolen tasks this worker completed.
	LocalTakes     uint64  `json:"steal_local_tasks,omitempty"`
	SocketSteals   uint64  `json:"steal_socket_tasks,omitempty"`
	RemoteSteals   uint64  `json:"steal_remote_tasks,omitempty"`
	RemoteExecuted uint64  `json:"remote_executed,omitempty"`
	Busy           float64 `json:"busy"`
}

// Totals sums the worker counters across the run.
type Totals struct {
	Emitted        uint64 `json:"pairs_emitted"`
	Combined       uint64 `json:"pairs_combined"`
	Tasks          uint64 `json:"tasks"`
	Batches        uint64 `json:"batches"`
	FailedPush     uint64 `json:"failed_pushes"`
	SleepMicros    uint64 `json:"sleep_micros"`
	LocalTakes     uint64 `json:"steal_local_tasks"`
	SocketSteals   uint64 `json:"steal_socket_tasks"`
	RemoteSteals   uint64 `json:"steal_remote_tasks"`
	RemoteExecuted uint64 `json:"remote_executed"`
}

// SamplePoint is one time-series entry in the JSON report. Depths index
// Report.Queues, States index Report.Workers.
type SamplePoint struct {
	TMicros   int64   `json:"t_us"`
	Depths    []int   `json:"depths,omitempty"`
	States    []uint8 `json:"states,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"`
}

// Report is the structured result of one instrumented run: counter totals,
// occupancy percentiles per queue, per-phase throughput, and the sampled
// time-series itself.
type Report struct {
	Engine         string         `json:"engine"`
	DurationMicros int64          `json:"duration_us"`
	IntervalMicros int64          `json:"sample_interval_us"`
	SampleCount    int            `json:"sample_count"`
	Queues         []QueueReport  `json:"queues"`
	Workers        []WorkerReport `json:"workers"`
	Totals         Totals         `json:"totals"`
	// Imbalance summarizes the per-tick queue occupancy-imbalance ratio
	// (max/mean depth) over the run; 1.0 means uniformly loaded queues.
	Imbalance    Percentiles        `json:"imbalance"`
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// Throughput is pairs per second per phase: "map" is emitted pairs
	// over the map-combine phase, "combine" is combined pairs over it.
	Throughput map[string]float64 `json:"throughput_pairs_per_sec,omitempty"`
	Series     []SamplePoint      `json:"series"`
}

// buildReportLocked assembles the report from the current run's state;
// t.mu is held and the sampler is stopped.
func (t *Telemetry) buildReportLocked(phases map[string]float64) *Report {
	rep := &Report{
		Engine:         t.engine,
		DurationMicros: time.Since(t.start).Microseconds(),
		PhaseSeconds:   phases,
	}
	interval := t.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	rep.IntervalMicros = interval.Microseconds()

	var samples []Sample
	if t.series != nil {
		samples = t.series.samples
		rep.IntervalMicros = interval.Microseconds() * int64(t.series.stride)
	}
	rep.SampleCount = len(samples)

	for qi, q := range t.queues {
		cap := q.probe.Cap()
		occ := make([]float64, 0, len(samples))
		for _, s := range samples {
			if qi < len(s.Depths) && cap > 0 {
				occ = append(occ, float64(s.Depths[qi])/float64(cap))
			}
		}
		rep.Queues = append(rep.Queues, QueueReport{
			Name:      q.name,
			Capacity:  cap,
			Occupancy: percentiles(occ),
		})
	}

	for wi, w := range t.workers {
		busySamples, total := 0, 0
		for _, s := range samples {
			if wi >= len(s.States) {
				continue
			}
			total++
			if st := s.States[wi]; st == StateWorking || st == StateDraining {
				busySamples++
			}
		}
		wr := WorkerReport{
			Engine:         w.engine,
			Role:           w.role,
			ID:             w.id,
			Emitted:        w.emitted.Load(),
			Combined:       w.combined.Load(),
			Tasks:          w.tasks.Load(),
			Batches:        w.batches.Load(),
			FailedPush:     w.failedPush.Load(),
			SleepMicros:    w.sleepMicros.Load(),
			LocalTakes:     w.stealTasks[0].Load(),
			SocketSteals:   w.stealTasks[1].Load(),
			RemoteSteals:   w.stealTasks[2].Load(),
			RemoteExecuted: w.remoteExecuted.Load(),
		}
		if total > 0 {
			wr.Busy = float64(busySamples) / float64(total)
		}
		rep.Workers = append(rep.Workers, wr)
		rep.Totals.Emitted += wr.Emitted
		rep.Totals.Combined += wr.Combined
		rep.Totals.Tasks += wr.Tasks
		rep.Totals.Batches += wr.Batches
		rep.Totals.FailedPush += wr.FailedPush
		rep.Totals.SleepMicros += wr.SleepMicros
		rep.Totals.LocalTakes += wr.LocalTakes
		rep.Totals.SocketSteals += wr.SocketSteals
		rep.Totals.RemoteSteals += wr.RemoteSteals
		rep.Totals.RemoteExecuted += wr.RemoteExecuted
	}

	imb := make([]float64, 0, len(samples))
	for _, s := range samples {
		if len(s.Depths) > 0 {
			imb = append(imb, s.Imbalance)
		}
	}
	rep.Imbalance = percentiles(imb)

	if mc := phases["map-combine"]; mc > 0 {
		rep.Throughput = map[string]float64{
			"map":     float64(rep.Totals.Emitted) / mc,
			"combine": float64(rep.Totals.Combined) / mc,
		}
	}

	for _, s := range samples {
		pt := SamplePoint{TMicros: s.T.Microseconds(), Depths: s.Depths, Imbalance: s.Imbalance}
		if len(s.States) > 0 {
			pt.States = make([]uint8, len(s.States))
			for i, st := range s.States {
				pt.States[i] = uint8(st)
			}
		}
		rep.Series = append(rep.Series, pt)
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the report as human-readable text: counter totals, one
// line per queue with occupancy percentiles, and per-role utilization.
func (r *Report) Summary(w io.Writer) error {
	_, err := fmt.Fprintf(w, "telemetry [%s]: %d samples over %v (every %v)\n",
		r.Engine, r.SampleCount,
		time.Duration(r.DurationMicros)*time.Microsecond,
		time.Duration(r.IntervalMicros)*time.Microsecond)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pairs: %d emitted, %d combined; %d tasks, %d batches, %d failed pushes, %dus slept\n",
		r.Totals.Emitted, r.Totals.Combined, r.Totals.Tasks, r.Totals.Batches,
		r.Totals.FailedPush, r.Totals.SleepMicros)
	if stolen := r.Totals.SocketSteals + r.Totals.RemoteSteals; stolen > 0 || r.Totals.LocalTakes > 0 {
		fmt.Fprintf(w, "steals: %d local tasks, %d socket, %d remote (%d executed remotely); imbalance p50 %.2f p90 %.2f max %.2f\n",
			r.Totals.LocalTakes, r.Totals.SocketSteals, r.Totals.RemoteSteals,
			r.Totals.RemoteExecuted, r.Imbalance.P50, r.Imbalance.P90, r.Imbalance.Max)
	}
	for _, name := range sortedKeys(r.Throughput) {
		fmt.Fprintf(w, "throughput %-8s %.3g pairs/s\n", name, r.Throughput[name])
	}
	for _, q := range r.Queues {
		fmt.Fprintf(w, "queue %-12s cap %5d  occupancy mean %5.1f%%  p50 %5.1f%%  p90 %5.1f%%  p99 %5.1f%%  max %5.1f%%\n",
			q.Name, q.Capacity, q.Occupancy.Mean*100, q.Occupancy.P50*100,
			q.Occupancy.P90*100, q.Occupancy.P99*100, q.Occupancy.Max*100)
	}
	type roleAgg struct {
		n    int
		busy float64
	}
	roles := map[string]*roleAgg{}
	for _, wr := range r.Workers {
		a := roles[wr.Role]
		if a == nil {
			a = &roleAgg{}
			roles[wr.Role] = a
		}
		a.n++
		a.busy += wr.Busy
	}
	for _, role := range sortedRoleKeys(roles) {
		a := roles[role]
		fmt.Fprintf(w, "workers %-10s x%-3d  mean busy %5.1f%%\n", role, a.n, a.busy/float64(a.n)*100)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedRoleKeys[T any](m map[string]*T) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
