package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// WritePrometheus emits the current counters and queue gauges in the
// Prometheus text exposition format (version 0.0.4). Safe to call while a
// run is in progress: worker counters are atomics and queue probes are
// point-in-time snapshots, so a live scrape sees a consistent-enough view
// without touching the hot path.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	t.mu.Lock()
	engine := t.engine
	workers := append([]*Worker(nil), t.workers...)
	queues := append([]registeredQueue(nil), t.queues...)
	var elapsed time.Duration
	if !t.start.IsZero() {
		elapsed = time.Since(t.start)
	}
	var sampleCount int
	if t.series != nil {
		sampleCount = len(t.series.samples)
	}
	t.mu.Unlock()

	counter := func(name, help string, value func(*Worker) uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, wk := range workers {
			fmt.Fprintf(bw, "%s{engine=%q,role=%q,worker=\"%d\"} %d\n",
				name, wk.engine, wk.role, wk.id, value(wk))
		}
	}
	counter("ramr_worker_pairs_emitted_total", "Intermediate pairs emitted by Map.",
		func(w *Worker) uint64 { return w.emitted.Load() })
	counter("ramr_worker_pairs_combined_total", "Intermediate pairs folded by Combine.",
		func(w *Worker) uint64 { return w.combined.Load() })
	counter("ramr_worker_tasks_total", "Completed map tasks.",
		func(w *Worker) uint64 { return w.tasks.Load() })
	counter("ramr_worker_batches_total", "Consumed queue segments.",
		func(w *Worker) uint64 { return w.batches.Load() })
	counter("ramr_worker_failed_pushes_total", "Push wait rounds that found the ring full.",
		func(w *Worker) uint64 { return w.failedPush.Load() })
	counter("ramr_worker_sleep_microseconds_total", "Microseconds slept on a full ring.",
		func(w *Worker) uint64 { return w.sleepMicros.Load() })

	fmt.Fprintf(bw, "# HELP ramr_worker_state Worker activity state (0=idle 1=working 2=draining 3=done).\n# TYPE ramr_worker_state gauge\n")
	for _, wk := range workers {
		fmt.Fprintf(bw, "ramr_worker_state{engine=%q,role=%q,worker=\"%d\"} %d\n",
			wk.engine, wk.role, wk.id, wk.state.Load())
	}

	fmt.Fprintf(bw, "# HELP ramr_queue_depth Buffered elements in the SPSC ring.\n# TYPE ramr_queue_depth gauge\n")
	for _, q := range queues {
		fmt.Fprintf(bw, "ramr_queue_depth{engine=%q,queue=%q} %d\n", engine, q.name, q.probe.Len())
	}
	fmt.Fprintf(bw, "# HELP ramr_queue_capacity SPSC ring capacity.\n# TYPE ramr_queue_capacity gauge\n")
	for _, q := range queues {
		fmt.Fprintf(bw, "ramr_queue_capacity{engine=%q,queue=%q} %d\n", engine, q.name, q.probe.Cap())
	}

	fmt.Fprintf(bw, "# HELP ramr_run_duration_seconds Elapsed time of the current run.\n# TYPE ramr_run_duration_seconds gauge\nramr_run_duration_seconds %g\n", elapsed.Seconds())
	fmt.Fprintf(bw, "# HELP ramr_samples_total Samples retained in the occupancy time-series.\n# TYPE ramr_samples_total gauge\nramr_samples_total %d\n", sampleCount)
	return bw.Flush()
}

// Server serves /metrics (Prometheus text format) plus the net/http/pprof
// endpoints under /debug/pprof/ on its own mux, so profiling a live run
// never requires the application to wire DefaultServeMux.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// NewServer starts an HTTP server for t on addr (e.g. "127.0.0.1:9090";
// ":0" picks a free port — see Addr). Close releases the listener.
func NewServer(t *Telemetry, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
