package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// promSnap is one Telemetry's point-in-time export state, captured under
// its lock so the emitter below can run lock-free. labels is an extra
// label prefix (`job="3",workload="WC",` — note the trailing comma) merged
// into every sample's label set, or "" for the historical single-run
// exposition.
type promSnap struct {
	labels    string
	engine    string
	workers   []*Worker
	queues    []registeredQueue
	elapsed   time.Duration
	samples   int
	imbalance float64
}

// snap captures the export state of the current run.
func (t *Telemetry) snap(labels string) promSnap {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := promSnap{
		labels:    labels,
		engine:    t.engine,
		workers:   append([]*Worker(nil), t.workers...),
		queues:    append([]registeredQueue(nil), t.queues...),
		imbalance: t.lastImbalance,
	}
	if !t.start.IsZero() {
		s.elapsed = time.Since(t.start)
	}
	if t.series != nil {
		s.samples = len(t.series.samples)
	}
	return s
}

// writePromSnaps emits the snapshots in the Prometheus text exposition
// format (version 0.0.4). Each metric family is written exactly once —
// HELP/TYPE header first, then every snapshot's samples — so aggregating
// several live runs still yields a single well-formed exposition.
func writePromSnaps(w io.Writer, snaps []promSnap) error {
	if len(snaps) == 0 {
		// No registered runs: an empty exposition, not a list of
		// sample-less family headers.
		return nil
	}
	bw := bufio.NewWriter(w)

	counter := func(name, help string, value func(*Worker) uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range snaps {
			for _, wk := range s.workers {
				fmt.Fprintf(bw, "%s{%sengine=%q,role=%q,worker=\"%d\"} %d\n",
					name, s.labels, wk.engine, wk.role, wk.id, value(wk))
			}
		}
	}
	counter("ramr_worker_pairs_emitted_total", "Intermediate pairs emitted by Map.",
		func(w *Worker) uint64 { return w.emitted.Load() })
	counter("ramr_worker_pairs_combined_total", "Intermediate pairs folded by Combine.",
		func(w *Worker) uint64 { return w.combined.Load() })
	counter("ramr_worker_tasks_total", "Completed map tasks.",
		func(w *Worker) uint64 { return w.tasks.Load() })
	counter("ramr_worker_batches_total", "Consumed queue segments.",
		func(w *Worker) uint64 { return w.batches.Load() })
	counter("ramr_worker_failed_pushes_total", "Push wait rounds that found the ring full.",
		func(w *Worker) uint64 { return w.failedPush.Load() })
	counter("ramr_worker_sleep_microseconds_total", "Microseconds slept on a full ring.",
		func(w *Worker) uint64 { return w.sleepMicros.Load() })
	counter("ramr_worker_remote_executed_total", "Stolen map tasks completed by this worker.",
		func(w *Worker) uint64 { return w.remoteExecuted.Load() })

	// Steal counters carry an extra class label (local/socket/remote), so
	// they get their own emitter instead of the fixed-label helper above.
	stealCounter := func(name, help string, value func(*Worker, int) uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range snaps {
			for _, wk := range s.workers {
				for cls, label := range StealClassNames {
					fmt.Fprintf(bw, "%s{%sengine=%q,role=%q,worker=\"%d\",class=%q} %d\n",
						name, s.labels, wk.engine, wk.role, wk.id, label, value(wk, cls))
				}
			}
		}
	}
	stealCounter("ramr_worker_steal_batches_total", "Task-deque takes by steal distance class.",
		func(w *Worker, c int) uint64 { return w.stealBatches[c].Load() })
	stealCounter("ramr_worker_steal_tasks_total", "Map tasks taken by steal distance class.",
		func(w *Worker, c int) uint64 { return w.stealTasks[c].Load() })

	fmt.Fprintf(bw, "# HELP ramr_worker_state Worker activity state (0=idle 1=working 2=draining 3=done).\n# TYPE ramr_worker_state gauge\n")
	for _, s := range snaps {
		for _, wk := range s.workers {
			fmt.Fprintf(bw, "ramr_worker_state{%sengine=%q,role=%q,worker=\"%d\"} %d\n",
				s.labels, wk.engine, wk.role, wk.id, wk.state.Load())
		}
	}

	fmt.Fprintf(bw, "# HELP ramr_queue_depth Buffered elements in the SPSC ring.\n# TYPE ramr_queue_depth gauge\n")
	for _, s := range snaps {
		for _, q := range s.queues {
			fmt.Fprintf(bw, "ramr_queue_depth{%sengine=%q,queue=%q} %d\n", s.labels, s.engine, q.name, q.probe.Len())
		}
	}
	fmt.Fprintf(bw, "# HELP ramr_queue_capacity SPSC ring capacity.\n# TYPE ramr_queue_capacity gauge\n")
	for _, s := range snaps {
		for _, q := range s.queues {
			fmt.Fprintf(bw, "ramr_queue_capacity{%sengine=%q,queue=%q} %d\n", s.labels, s.engine, q.name, q.probe.Cap())
		}
	}

	gauge := func(name, help string, value func(promSnap) string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, s := range snaps {
			if s.labels == "" {
				fmt.Fprintf(bw, "%s %s\n", name, value(s))
			} else {
				// Trim the label prefix's trailing comma when it is
				// the whole label set.
				fmt.Fprintf(bw, "%s{%s} %s\n", name, s.labels[:len(s.labels)-1], value(s))
			}
		}
	}
	gauge("ramr_run_duration_seconds", "Elapsed time of the current run.",
		func(s promSnap) string { return fmt.Sprintf("%g", s.elapsed.Seconds()) })
	gauge("ramr_samples_total", "Samples retained in the occupancy time-series.",
		func(s promSnap) string { return fmt.Sprintf("%d", s.samples) })
	gauge("ramr_queue_imbalance", "Latest sampled occupancy-imbalance ratio (max/mean queue depth).",
		func(s promSnap) string { return fmt.Sprintf("%g", s.imbalance) })
	return bw.Flush()
}

// WritePrometheus emits the current counters and queue gauges in the
// Prometheus text exposition format (version 0.0.4). Safe to call while a
// run is in progress: worker counters are atomics and queue probes are
// point-in-time snapshots, so a live scrape sees a consistent-enough view
// without touching the hot path.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	return writePromSnaps(w, []promSnap{t.snap("")})
}

// Server serves /metrics (Prometheus text format) plus the net/http/pprof
// endpoints under /debug/pprof/ on its own mux, so profiling a live run
// never requires the application to wire DefaultServeMux.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// NewServer starts an HTTP server for t on addr (e.g. "127.0.0.1:9090";
// ":0" picks a free port — see Addr). Close releases the listener.
func NewServer(t *Telemetry, addr string) (*Server, error) {
	return newServer(t.WritePrometheus, addr)
}

// newServer is the shared server constructor: write renders the /metrics
// body (a single Telemetry's exposition, or a Multi's aggregate).
func newServer(write func(io.Writer) error, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsHandler(write))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// metricsHandler adapts an exposition writer into an HTTP handler, shared
// between the standalone Server and embedding services (cmd/ramrd mounts
// it on its own mux).
func metricsHandler(write func(io.Writer) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = write(w)
	})
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
