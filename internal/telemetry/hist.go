package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// DefLatencyBuckets are the default histogram bounds for job-lifecycle
// latencies, spanning sub-millisecond admission work to minute-long jobs.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a Prometheus-style cumulative histogram. Unlike the
// worker counters, which sit on the engine hot path and are atomics,
// histograms record job-lifecycle observations — a handful per job — so
// a mutex is plenty and keeps bucket+sum+count updates consistent.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending, +Inf implicit
	buckets []uint64  // count per bound (non-cumulative; summed at export)
	sum     float64
	count   uint64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds; nil bounds use DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// write emits the series of one histogram with the given rendered label
// prefix (`k="v",` form, or "").
func (h *Histogram) write(bw *bufio.Writer, name, labels string) {
	h.mu.Lock()
	bounds := h.bounds
	buckets := append([]uint64(nil), h.buckets...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range bounds {
		cum += buckets[i]
		fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n",
			name, labels, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, count)
	if labels == "" {
		fmt.Fprintf(bw, "%s_sum %g\n%s_count %d\n", name, sum, name, count)
	} else {
		trimmed := labels[:len(labels)-1]
		fmt.Fprintf(bw, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, trimmed, sum, name, trimmed, count)
	}
}

// HistogramVec is a labelled family of Histograms, keyed by the values
// of a fixed label-name list (like workload/engine/priority). Children
// are created on first observation and live for the process lifetime —
// the service tier's label sets are bounded (registered workloads ×
// engines × priorities), so the family cannot grow without bound.
type HistogramVec struct {
	name   string
	help   string
	bounds []float64

	mu       sync.Mutex
	labels   []string
	children map[string]*Histogram // keyed by rendered label prefix
	order    []string              // insertion order for stable scrapes
}

// NewHistogramVec returns an empty family. labelNames must be valid
// Prometheus label names and must not include "le"; nil bounds use
// DefLatencyBuckets.
func NewHistogramVec(name, help string, labelNames []string, bounds []float64) *HistogramVec {
	for _, l := range labelNames {
		if l == "le" {
			panic("telemetry: histogram label name le is reserved")
		}
	}
	return &HistogramVec{
		name: name, help: help, bounds: bounds,
		labels:   append([]string(nil), labelNames...),
		children: map[string]*Histogram{},
	}
}

// Observe records v in the child identified by labelValues, which must
// match the family's label names in count and order.
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			v.name, len(v.labels), len(labelValues)))
	}
	key := ""
	for i, name := range v.labels {
		key += fmt.Sprintf("%s=%q,", name, labelValues[i])
	}
	v.mu.Lock()
	h, ok := v.children[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.children[key] = h
		v.order = append(v.order, key)
	}
	v.mu.Unlock()
	h.Observe(val)
}

// WritePrometheus emits the family as one HELP/TYPE block followed by
// every child's series in first-observation order. Families with no
// observations emit nothing, matching the aggregator's empty-exposition
// convention.
func (v *HistogramVec) WritePrometheus(w io.Writer) error {
	v.mu.Lock()
	order := append([]string(nil), v.order...)
	children := make([]*Histogram, len(order))
	for i, key := range order {
		children[i] = v.children[key]
	}
	v.mu.Unlock()
	if len(order) == 0 {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for i, key := range order {
		children[i].write(bw, v.name, key)
	}
	return bw.Flush()
}

// Series returns the rendered label prefixes of the live children,
// sorted — a test hook for asserting family cardinality.
func (v *HistogramVec) Series() []string {
	v.mu.Lock()
	out := append([]string(nil), v.order...)
	v.mu.Unlock()
	sort.Strings(out)
	return out
}
