package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// fakeProbe is a settable Probe for sampler tests.
type fakeProbe struct {
	depth int
	cap   int
}

func (p *fakeProbe) Len() int { return p.depth }
func (p *fakeProbe) Cap() int { return p.cap }

func TestSeriesDecimates(t *testing.T) {
	s := newSeries(8)
	for i := 0; i < 100; i++ {
		s.add(Sample{T: time.Duration(i) * time.Millisecond})
	}
	if len(s.samples) > 8 {
		t.Fatalf("series exceeded bound: %d samples", len(s.samples))
	}
	if s.stride < 8 {
		t.Fatalf("stride %d: expected decimation after 100 offers into 8 slots", s.stride)
	}
	// The retained samples must span the run, oldest first.
	if s.samples[0].T != 0 {
		t.Fatalf("first retained sample at %v, want the run's start", s.samples[0].T)
	}
	for i := 1; i < len(s.samples); i++ {
		if s.samples[i].T <= s.samples[i-1].T {
			t.Fatalf("samples out of order at %d: %v <= %v", i, s.samples[i].T, s.samples[i-1].T)
		}
	}
	if last := s.samples[len(s.samples)-1].T; last < 50*time.Millisecond {
		t.Fatalf("decimated series ends at %v: lost the tail of the run", last)
	}
}

func TestPercentiles(t *testing.T) {
	if p := percentiles(nil); p != (Percentiles{}) {
		t.Fatalf("empty percentiles = %+v", p)
	}
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = float64(i + 1) // 1..100
	}
	p := percentiles(vs)
	if p.Min != 1 || p.Max != 100 {
		t.Fatalf("min/max: %+v", p)
	}
	if p.P50 < 49 || p.P50 > 52 || p.P90 < 89 || p.P90 > 92 || p.P99 < 98 {
		t.Fatalf("percentiles off: %+v", p)
	}
	if p.Mean != 50.5 {
		t.Fatalf("mean %v, want 50.5", p.Mean)
	}
}

func TestEndRunBuildsReport(t *testing.T) {
	tel := &Telemetry{Interval: time.Millisecond, MaxSamples: 64}
	tel.BeginRun("ramr")
	q := &fakeProbe{depth: 250, cap: 1000}
	tel.RegisterQueue("mapper-0", q)
	w := tel.RegisterWorker("mapper", 0)
	w.SetState(StateWorking)
	w.AddEmitted(100)
	w.AddTasks(2)
	w.StoreProducer(100, 7, 13)
	cw := tel.RegisterWorker("combiner", 0)
	cw.AddCombined(100)
	cw.AddBatches(4)
	time.Sleep(5 * time.Millisecond)
	rep := tel.EndRun(map[string]float64{"map-combine": 0.5})

	if rep.Engine != "ramr" {
		t.Fatalf("engine %q", rep.Engine)
	}
	if rep.SampleCount == 0 || len(rep.Series) != rep.SampleCount {
		t.Fatalf("series: count=%d len=%d", rep.SampleCount, len(rep.Series))
	}
	if len(rep.Queues) != 1 || rep.Queues[0].Capacity != 1000 {
		t.Fatalf("queues: %+v", rep.Queues)
	}
	if occ := rep.Queues[0].Occupancy; occ.Max != 0.25 || occ.Min != 0.25 {
		t.Fatalf("constant-depth queue should sample 25%% occupancy, got %+v", occ)
	}
	if rep.Totals.Emitted != 100 || rep.Totals.Combined != 100 ||
		rep.Totals.Tasks != 2 || rep.Totals.Batches != 4 ||
		rep.Totals.FailedPush != 7 || rep.Totals.SleepMicros != 13 {
		t.Fatalf("totals: %+v", rep.Totals)
	}
	if rep.Throughput["map"] != 200 || rep.Throughput["combine"] != 200 {
		t.Fatalf("throughput: %+v", rep.Throughput)
	}
	// The mapper was StateWorking the whole run, the combiner idle.
	if rep.Workers[0].Busy != 1 {
		t.Fatalf("mapper busy = %v, want 1", rep.Workers[0].Busy)
	}
	if rep.Workers[1].Busy != 0 {
		t.Fatalf("combiner busy = %v, want 0", rep.Workers[1].Busy)
	}
	if tel.LastReport() != rep {
		t.Fatal("LastReport does not return the EndRun report")
	}
}

func TestEndRunForcesASampleOnShortRuns(t *testing.T) {
	// A run far shorter than the sampling interval must still produce a
	// non-empty series (EndRun takes one final forced sample).
	tel := &Telemetry{Interval: time.Hour}
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: 1, cap: 2})
	rep := tel.EndRun(nil)
	if rep.SampleCount == 0 {
		t.Fatal("short run produced an empty time-series")
	}
}

func TestSeriesForceBypassesStride(t *testing.T) {
	// Once decimation has raised the stride, a plain add drops most
	// offers; force must record regardless, so EndRun's final sample is
	// never lost.
	s := newSeries(8)
	for i := 0; i < 100; i++ {
		s.add(Sample{T: time.Duration(i) * time.Millisecond})
	}
	if s.stride < 2 {
		t.Fatalf("setup: stride %d, want decimation", s.stride)
	}
	final := Sample{T: time.Hour}
	s.add(final) // skipped==0 after the reset, so the stride drops this
	s.force(final)
	if got := s.samples[len(s.samples)-1].T; got != time.Hour {
		t.Fatalf("forced sample not recorded: last T = %v", got)
	}
}

func TestObserverSeesRegularTicks(t *testing.T) {
	tel := &Telemetry{Interval: time.Millisecond}
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: 3, cap: 8})
	ticks := make(chan Sample, 64)
	tel.SetObserver(func(s Sample) { ticks <- s })
	select {
	case s := <-ticks:
		if len(s.Depths) != 1 || s.Depths[0] != 3 {
			t.Fatalf("observer sample depths = %v, want [3]", s.Depths)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("observer never called")
	}
	tel.EndRun(nil)
	// A later BeginRun must not inherit the observer.
	tel.BeginRun("ramr")
	for len(ticks) > 0 {
		<-ticks
	}
	time.Sleep(5 * time.Millisecond)
	tel.Stop()
	if len(ticks) != 0 {
		t.Fatal("observer survived BeginRun")
	}
}

func TestCountersNowAggregates(t *testing.T) {
	tel := &Telemetry{Interval: time.Hour}
	tel.BeginRun("ramr")
	defer tel.Stop()
	w0 := tel.RegisterWorker("mapper", 0)
	w0.AddEmitted(10)
	w0.StoreProducer(10, 2, 5)
	w1 := tel.RegisterWorker("mapper", 1)
	w1.AddEmitted(4)
	w1.StoreProducer(4, 1, 0)
	cw := tel.RegisterWorker("combiner", 0)
	cw.AddCombined(14)
	m0 := tel.RegisterQueue("mapper-0", &fakeProbe{cap: 8})
	m0.StoreConsumer(10, 3, 2, 1)
	m1 := tel.RegisterQueue("mapper-1", &fakeProbe{cap: 8})
	m1.StoreConsumer(4, 1, 1, 1)

	got := tel.CountersNow()
	want := Counters{
		Emitted: 14, Combined: 14, Pushes: 14, FailedPush: 3,
		Pops: 14, EmptyPolls: 4, ShortPolls: 3, BatchCalls: 2,
	}
	if got != want {
		t.Fatalf("CountersNow = %+v, want %+v", got, want)
	}
}

func TestStopIdempotentAndReusable(t *testing.T) {
	tel := New()
	tel.Stop() // never started: no-op
	tel.BeginRun("ramr")
	tel.Stop()
	tel.Stop()
	tel.BeginRun("phoenix")
	rep := tel.EndRun(nil)
	if rep.Engine != "phoenix" {
		t.Fatalf("reuse: engine %q", rep.Engine)
	}
	tel.Stop()
}

func TestWorkerNilReceiverSafe(t *testing.T) {
	var w *Worker
	w.SetState(StateWorking)
	w.AddEmitted(1)
	w.AddCombined(1)
	w.AddTasks(1)
	w.AddBatches(1)
	w.StoreProducer(1, 2, 3)
	var m *QueueMirror
	m.StoreConsumer(1, 2, 3, 4)
}

func TestReportJSONAndSummary(t *testing.T) {
	tel := &Telemetry{Interval: time.Millisecond}
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: 5, cap: 8})
	w := tel.RegisterWorker("mapper", 0)
	w.AddEmitted(42)
	rep := tel.EndRun(map[string]float64{"map-combine": 1})

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"engine": "ramr"`, `"series"`, `"t_us"`, `"pairs_emitted": 42`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	if err := rep.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"telemetry [ramr]", "42 emitted", "queue mapper-0", "workers mapper"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

// promSampleLine matches one Prometheus text-format sample:
// metric_name{label="v",...} value
var promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? [-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$`)

// checkPromText validates Prometheus text exposition format line by line:
// every non-comment line must parse as a sample, every metric must be
// preceded by HELP and TYPE comments.
func checkPromText(t *testing.T, r io.Reader) (samples int) {
	t.Helper()
	sc := bufio.NewScanner(r)
	typed := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("malformed comment: %q", line)
			}
			if fields[1] == "TYPE" {
				if ty := fields[3]; ty != "counter" && ty != "gauge" {
					t.Fatalf("bad metric type in %q", line)
				}
				typed[fields[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment form: %q", line)
		}
		if !promSampleLine.MatchString(line) {
			t.Fatalf("invalid prometheus sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !typed[name] {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	tel := &Telemetry{Interval: time.Millisecond}
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: 3, cap: 8})
	w := tel.RegisterWorker("mapper", 0)
	w.AddEmitted(10)
	defer tel.Stop()

	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	n := checkPromText(t, bytes.NewReader(buf.Bytes()))
	if n == 0 {
		t.Fatal("no samples in prometheus output")
	}
	for _, want := range []string{
		`ramr_worker_pairs_emitted_total{engine="ramr",role="mapper",worker="0"} 10`,
		`ramr_queue_depth{engine="ramr",queue="mapper-0"} 3`,
		`ramr_queue_capacity{engine="ramr",queue="mapper-0"} 8`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	tel := &Telemetry{Interval: time.Millisecond}
	tel.BeginRun("ramr")
	tel.RegisterWorker("mapper", 0).AddEmitted(5)
	defer tel.Stop()

	srv, err := NewServer(tel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := get("/metrics")
	if n := checkPromText(t, strings.NewReader(metrics)); n == 0 {
		t.Fatal("/metrics served no samples")
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("pprof index not served")
	}
}
