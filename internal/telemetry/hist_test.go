package telemetry

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	h.write(bw, "t", "")
	bw.Flush()
	want := []string{
		`t_bucket{le="0.1"} 1`,
		`t_bucket{le="1"} 3`,
		`t_bucket{le="10"} 4`,
		`t_bucket{le="+Inf"} 5`,
		`t_sum 56.05`,
		`t_count 5`,
	}
	got := strings.TrimSpace(buf.String())
	if got != strings.Join(want, "\n") {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

func TestHistogramVecExposition(t *testing.T) {
	v := NewHistogramVec("ramr_test_seconds", "Test latency.", []string{"workload", "priority"}, []float64{1, 10})
	v.Observe(0.5, "WC", "high")
	v.Observe(20, "WC", "high")
	v.Observe(2, "HG", "low")
	var buf bytes.Buffer
	if err := v.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("vec exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE ramr_test_seconds histogram",
		`ramr_test_seconds_bucket{workload="WC",priority="high",le="1"} 1`,
		`ramr_test_seconds_bucket{workload="WC",priority="high",le="+Inf"} 2`,
		`ramr_test_seconds_count{workload="WC",priority="high"} 2`,
		`ramr_test_seconds_bucket{workload="HG",priority="low",le="10"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if got := len(v.Series()); got != 2 {
		t.Fatalf("series count = %d, want 2", got)
	}
}

func TestHistogramVecEmptyEmitsNothing(t *testing.T) {
	v := NewHistogramVec("ramr_empty_seconds", "x", []string{"a"}, nil)
	var buf bytes.Buffer
	if err := v.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty family emitted %q", buf.String())
	}
}

func TestHistogramVecLabelArity(t *testing.T) {
	v := NewHistogramVec("ramr_arity_seconds", "x", []string{"a", "b"}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.Observe(1, "only-one")
}

func TestHistogramConcurrent(t *testing.T) {
	v := NewHistogramVec("ramr_conc_seconds", "x", []string{"w"}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				v.Observe(float64(j)/100, "w0")
			}
		}(i)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := v.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("invalid after concurrent observes: %v", err)
	}
	if !strings.Contains(buf.String(), `ramr_conc_seconds_count{w="w0"} 4000`) {
		t.Fatalf("lost observations:\n%s", buf.String())
	}
}

func TestCheckExpositionCatchesDefects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"duplicate series",
			"# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate series"},
		{"reordered duplicate",
			"# TYPE a gauge\na{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n", "duplicate series"},
		{"missing type",
			"a 1\n", "no preceding # TYPE"},
		{"duplicate type",
			"# TYPE a gauge\n# TYPE a counter\n", "duplicate TYPE"},
		{"type after samples",
			"# TYPE a gauge\na 1\n# TYPE a gauge\n", "duplicate TYPE"},
		{"malformed value",
			"# TYPE a gauge\na one\n", "bad value"},
		{"unterminated labels",
			"# TYPE a gauge\na{x=\"1\" 1\n", "label"},
		{"histogram missing inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"histogram count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n", "!= count"},
		{"histogram not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 6\n", "not cumulative"},
		{"histogram bare sample",
			"# TYPE h histogram\nh 1\n", "without _bucket"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckExposition([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckExpositionAcceptsRealExposition(t *testing.T) {
	tm := New()
	tm.BeginRun("RAMR")
	tm.RegisterWorker("mapper", 0).AddEmitted(10)
	var buf bytes.Buffer
	if err := tm.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("engine exposition rejected: %v\n%s", err, buf.String())
	}
}
