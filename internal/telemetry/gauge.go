package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
)

// GaugeVec is a labelled family of float gauges, the settable twin of
// HistogramVec: children are created on first Set and — unlike
// histograms, whose lifecycle observations must survive their jobs —
// removed with Delete when the labelled object goes away, so per-job
// gauges (a streaming session's watermark lag, say) never accumulate
// dead series.
type GaugeVec struct {
	name string
	help string

	mu     sync.Mutex
	labels []string
	values map[string]float64 // keyed by rendered label prefix
	order  []string           // insertion order for stable scrapes
}

// NewGaugeVec returns an empty family. labelNames must be valid
// Prometheus label names.
func NewGaugeVec(name, help string, labelNames []string) *GaugeVec {
	return &GaugeVec{
		name: name, help: help,
		labels: append([]string(nil), labelNames...),
		values: map[string]float64{},
	}
}

func (v *GaugeVec) key(labelValues []string) string {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			v.name, len(v.labels), len(labelValues)))
	}
	key := ""
	for i, name := range v.labels {
		key += fmt.Sprintf("%s=%q,", name, labelValues[i])
	}
	return key
}

// Set stores the child's current value, creating it on first use.
func (v *GaugeVec) Set(val float64, labelValues ...string) {
	key := v.key(labelValues)
	v.mu.Lock()
	if _, ok := v.values[key]; !ok {
		v.order = append(v.order, key)
	}
	v.values[key] = val
	v.mu.Unlock()
}

// Delete removes the child, dropping its series from the exposition.
func (v *GaugeVec) Delete(labelValues ...string) {
	key := v.key(labelValues)
	v.mu.Lock()
	if _, ok := v.values[key]; ok {
		delete(v.values, key)
		for i, k := range v.order {
			if k == key {
				v.order = append(v.order[:i], v.order[i+1:]...)
				break
			}
		}
	}
	v.mu.Unlock()
}

// WritePrometheus emits the family as one HELP/TYPE block followed by
// every live child in first-set order. An empty family emits nothing,
// matching the aggregator's empty-exposition convention.
func (v *GaugeVec) WritePrometheus(w io.Writer) error {
	v.mu.Lock()
	order := append([]string(nil), v.order...)
	values := make([]float64, len(order))
	for i, key := range order {
		values[i] = v.values[key]
	}
	v.mu.Unlock()
	if len(order) == 0 {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", v.name, v.help, v.name)
	for i, key := range order {
		fmt.Fprintf(bw, "%s{%s} %g\n", v.name, key[:len(key)-1], values[i])
	}
	return bw.Flush()
}

// Series returns the rendered label prefixes of the live children,
// sorted — a test hook for asserting family cardinality.
func (v *GaugeVec) Series() []string {
	v.mu.Lock()
	out := append([]string(nil), v.order...)
	v.mu.Unlock()
	sort.Strings(out)
	return out
}
