package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strings"
	"testing"
	"time"
)

// newRun builds a live Telemetry with one worker and one queue probe.
func newRun(t *testing.T, workerEmitted int, depth int) *Telemetry {
	t.Helper()
	tel := &Telemetry{Interval: time.Millisecond}
	tel.BeginRun("ramr")
	tel.RegisterQueue("mapper-0", &fakeProbe{depth: depth, cap: 8})
	tel.RegisterWorker("mapper", 0).AddEmitted(workerEmitted)
	t.Cleanup(tel.Stop)
	return tel
}

func TestMultiAggregatesWithLabels(t *testing.T) {
	m := NewMulti()
	m.Register("1", map[string]string{"job": "1", "app": "WC"}, newRun(t, 10, 3))
	m.Register("2", map[string]string{"job": "2", "app": "KM"}, newRun(t, 20, 5))
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if n := checkPromText(t, bytes.NewReader(buf.Bytes())); n == 0 {
		t.Fatal("no samples in aggregate output")
	}
	// Per-job labels (sorted key order: app before job) prefix the
	// exporter's own labels.
	for _, want := range []string{
		`ramr_worker_pairs_emitted_total{app="WC",job="1",engine="ramr",role="mapper",worker="0"} 10`,
		`ramr_worker_pairs_emitted_total{app="KM",job="2",engine="ramr",role="mapper",worker="0"} 20`,
		`ramr_queue_depth{app="WC",job="1",engine="ramr",queue="mapper-0"} 3`,
		`ramr_queue_depth{app="KM",job="2",engine="ramr",queue="mapper-0"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("aggregate output missing %q:\n%s", want, text)
		}
	}
	// One exposition, not a concatenation: each family's TYPE header
	// appears exactly once even with two registered runs.
	for _, family := range []string{"ramr_worker_pairs_emitted_total", "ramr_queue_depth"} {
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Fatalf("family %s has %d TYPE headers, want 1:\n%s", family, n, text)
		}
	}
}

func TestMultiRegisterReplacesAndUnregisters(t *testing.T) {
	m := NewMulti()
	m.Register("1", map[string]string{"job": "1"}, newRun(t, 1, 1))
	m.Register("1", map[string]string{"job": "1b"}, newRun(t, 2, 1))
	if m.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", m.Len())
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `job="1"`) {
		t.Fatal("replaced registration still present")
	}
	m.Unregister("nope") // unknown key is a no-op
	m.Unregister("1")
	if m.Len() != 0 {
		t.Fatalf("Len after unregister = %d, want 0", m.Len())
	}
	buf.Reset()
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ramr_worker") {
		t.Fatal("empty aggregator still emits samples")
	}
}

// TestMultiEmptyLabels checks that a run registered with no extra labels
// renders exactly like the single-run exporter.
func TestMultiEmptyLabels(t *testing.T) {
	tel := newRun(t, 7, 2)
	m := NewMulti()
	m.Register("only", nil, tel)

	var single, multi bytes.Buffer
	if err := tel.WritePrometheus(&single); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&multi); err != nil {
		t.Fatal(err)
	}
	// ramr_run_duration_seconds is wall-clock-dependent, so two sequential
	// scrapes can never agree on its value; blank it before comparing.
	clock := regexp.MustCompile(`(?m)^ramr_run_duration_seconds .*$`)
	s := clock.ReplaceAllString(single.String(), "ramr_run_duration_seconds X")
	mu := clock.ReplaceAllString(multi.String(), "ramr_run_duration_seconds X")
	if s != mu {
		t.Fatalf("label-free Multi output differs from single-run output:\n--- single\n%s\n--- multi\n%s", s, mu)
	}
}

// TestMultiExtraWriter: the auxiliary exposition writer is appended after
// the per-run families and keeps emitting when no runs are registered —
// service-level series must survive job deletion.
func TestMultiExtraWriter(t *testing.T) {
	m := NewMulti()
	m.SetExtra(func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "# HELP ramr_test_extra x\n# TYPE ramr_test_extra gauge\nramr_test_extra %d\n", m.Len())
		return err
	})

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ramr_test_extra 0") {
		t.Fatalf("empty aggregator lost the extra families:\n%s", buf.String())
	}

	m.Register("1", map[string]string{"job": "1"}, newRun(t, 3, 1))
	buf.Reset()
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ramr_test_extra 1") {
		t.Fatalf("extra families missing with a registered run:\n%s", out)
	}
	if strings.Index(out, "ramr_worker_pairs_emitted_total") > strings.Index(out, "ramr_test_extra") {
		t.Fatal("extra families emitted before the per-run families")
	}

	m.SetExtra(nil)
	buf.Reset()
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ramr_test_extra") {
		t.Fatal("cleared extra writer still emits")
	}
}
