package telemetry_test

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/phoenix"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
)

// wcSpec is a small WordCount: each split is a line of words, Map emits
// (word, 1), Combine sums. emits is the exact number of pairs Map will
// emit over the whole input, for conservation checks.
func wcSpec(lines int) (spec *mr.Spec[string, string, int, int], emits uint64) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	splits := make([]string, lines)
	for i := range splits {
		var sb strings.Builder
		for w := 0; w < 20; w++ {
			sb.WriteString(words[(i+w)%len(words)])
			sb.WriteByte(' ')
		}
		splits[i] = sb.String()
		emits += 20
	}
	spec = &mr.Spec[string, string, int, int]{
		Name:   "wordcount",
		Splits: splits,
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[string, int](),
		NewContainer: func() container.Container[string, int] { return container.NewHash[string, int]() },
		Less:         func(a, b string) bool { return a < b },
	}
	return spec, emits
}

func testConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Mappers = 4
	cfg.Combiners = 2
	cfg.Machine = topology.Flat(4)
	cfg.Pin = mr.PinNone
	return cfg
}

// TestConservationRAMR runs WordCount on the decoupled engine and checks
// the full conservation chain: pairs counted at the emit closure == pairs
// pushed into the rings == pairs popped == pairs fed to Combine.
func TestConservationRAMR(t *testing.T) {
	spec, emits := wcSpec(400)
	cfg := testConfig()
	cfg.Telemetry = &telemetry.Telemetry{Interval: 100 * time.Microsecond}

	res, err := core.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Telemetry
	if rep == nil {
		t.Fatal("Result.Telemetry is nil with Config.Telemetry set")
	}
	qs := res.QueueStats
	if rep.Totals.Emitted != emits {
		t.Fatalf("telemetry emitted %d, want %d", rep.Totals.Emitted, emits)
	}
	if qs.Pushes != emits {
		t.Fatalf("queue pushes %d, want %d", qs.Pushes, emits)
	}
	if qs.Pops != qs.Pushes {
		t.Fatalf("pops %d != pushes %d", qs.Pops, qs.Pushes)
	}
	if rep.Totals.Combined != qs.Pops {
		t.Fatalf("telemetry combined %d, want pops %d", rep.Totals.Combined, qs.Pops)
	}
	if rep.Totals.Batches == 0 || rep.Totals.Batches != qs.BatchCalls {
		t.Fatalf("telemetry batches %d, queue batch calls %d", rep.Totals.Batches, qs.BatchCalls)
	}
	if rep.SampleCount == 0 || len(rep.Series) == 0 {
		t.Fatal("empty occupancy time-series")
	}
	if len(rep.Queues) != cfg.Mappers {
		t.Fatalf("%d queue reports, want %d", len(rep.Queues), cfg.Mappers)
	}
	// Mapper failed-push/sleep mirrors must agree with the queue totals.
	var fp, sl uint64
	for _, w := range rep.Workers {
		if w.Role == "mapper" {
			fp += w.FailedPush
			sl += w.SleepMicros
		}
	}
	if fp != qs.FailedPush || sl != qs.SleepMicros {
		t.Fatalf("producer mirror: fp %d/%d, sleep %d/%d", fp, qs.FailedPush, sl, qs.SleepMicros)
	}
}

// TestConservationPhoenix runs the same job on the fused engine, where
// every emitted pair is combined in place.
func TestConservationPhoenix(t *testing.T) {
	spec, emits := wcSpec(400)
	cfg := testConfig()
	cfg.Telemetry = &telemetry.Telemetry{Interval: 100 * time.Microsecond}

	res, err := phoenix.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Telemetry
	if rep == nil {
		t.Fatal("Result.Telemetry is nil with Config.Telemetry set")
	}
	if rep.Engine != "phoenix" {
		t.Fatalf("engine %q", rep.Engine)
	}
	if rep.Totals.Emitted != emits || rep.Totals.Combined != emits {
		t.Fatalf("fused engine: emitted %d combined %d, want both %d",
			rep.Totals.Emitted, rep.Totals.Combined, emits)
	}
	if rep.Totals.Tasks == 0 {
		t.Fatal("no tasks counted")
	}
}

// TestEnginesAgreeUnderTelemetry guards against instrumentation changing
// results: both engines must produce identical output with telemetry on.
func TestEnginesAgreeUnderTelemetry(t *testing.T) {
	spec, _ := wcSpec(200)
	cfg := testConfig()
	cfg.Telemetry = telemetry.New()
	a, err := core.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := phoenix.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("key counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

// TestSamplerRaceCap2 hammers a capacity-2 ring from both sides while the
// sampler probes its depth at the highest rate and scrapes run
// concurrently — the test exists to fail under -race if the probe ever
// touches non-atomic queue state.
func TestSamplerRaceCap2(t *testing.T) {
	// WaitBusy keeps the full-ring path timer-free: with capacity 2 the
	// producer hits a full ring on almost every push, and WaitSleep's
	// backoff would serialize the test on kernel timer granularity.
	q := spsc.MustNew[int](2, spsc.WaitBusy)
	tel := &telemetry.Telemetry{Interval: 20 * time.Microsecond, MaxSamples: 128}
	tel.BeginRun("race")
	tel.RegisterQueue("cap2", q)
	defer tel.Stop()

	const n = 20000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
		q.Close()
	}()
	go func() {
		defer wg.Done()
		for !q.Drained() {
			if _, ok := q.TryPop(); !ok {
				// On a single-CPU box a non-yielding spin holds the
				// processor for a whole preemption slice per empty poll.
				runtime.Gosched()
			}
		}
	}()
	// Concurrent scrapes exercise the exporter path against live pushes.
	for i := 0; i < 10; i++ {
		if err := tel.WritePrometheus(&bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	rep := tel.EndRun(nil)
	if rep.SampleCount == 0 {
		t.Fatal("sampler recorded nothing")
	}
	occ := rep.Queues[0].Occupancy
	if occ.Max < 0 || occ.Max > 1 {
		t.Fatalf("occupancy out of range: %+v", occ)
	}
}

// TestWorkerGoroutinesCarryPprofLabels captures a goroutine profile from
// inside a map task and asserts both worker classes are visible with
// their engine/role/worker labels — the property that makes CPU profiles
// segment mapper time from combiner time.
func TestWorkerGoroutinesCarryPprofLabels(t *testing.T) {
	var once sync.Once
	var profile bytes.Buffer
	spec, _ := wcSpec(400)
	inner := spec.Map
	spec.Map = func(line string, emit func(string, int)) {
		once.Do(func() {
			// Give combiners time to start, then snapshot all
			// goroutines with labels (debug=1 includes them).
			time.Sleep(2 * time.Millisecond)
			_ = pprof.Lookup("goroutine").WriteTo(&profile, 1)
		})
		inner(line, emit)
	}
	cfg := testConfig()
	if _, err := core.Run(spec, cfg); err != nil {
		t.Fatal(err)
	}
	out := profile.String()
	for _, want := range []string{`"engine":"ramr"`, `"role":"mapper"`, `"role":"combiner"`, `"worker":"0"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("goroutine profile missing label %s\n%s", want, out)
		}
	}

	// The fused engine labels its workers too.
	profile.Reset()
	once = sync.Once{}
	spec2, _ := wcSpec(400)
	inner2 := spec2.Map
	spec2.Map = func(line string, emit func(string, int)) {
		once.Do(func() { _ = pprof.Lookup("goroutine").WriteTo(&profile, 1) })
		inner2(line, emit)
	}
	if _, err := phoenix.Run(spec2, cfg); err != nil {
		t.Fatal(err)
	}
	if out := profile.String(); !strings.Contains(out, `"engine":"phoenix"`) {
		t.Fatalf("phoenix goroutine profile missing engine label\n%s", out)
	}
}

// TestTelemetryDisabledLeavesResultBare double-checks the nil path: no
// report, no sampler, no labels cost assertions — just absence.
func TestTelemetryDisabledLeavesResultBare(t *testing.T) {
	spec, _ := wcSpec(50)
	res, err := core.Run(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("Result.Telemetry set without Config.Telemetry")
	}
}

// TestPrometheusDuringLiveRun scrapes the exporter mid-run through the
// hooks' pre-reduce point, validating the text format while counters and
// probes are hot.
func TestPrometheusDuringLiveRun(t *testing.T) {
	spec, _ := wcSpec(200)
	cfg := testConfig()
	tel := &telemetry.Telemetry{Interval: 50 * time.Microsecond}
	cfg.Telemetry = tel
	var scraped bytes.Buffer
	cfg.Hooks = &mr.Hooks{PreReduce: func() {
		if err := tel.WritePrometheus(&scraped); err != nil {
			t.Errorf("live scrape: %v", err)
		}
	}}
	if _, err := core.Run(spec, cfg); err != nil {
		t.Fatal(err)
	}
	if scraped.Len() == 0 {
		t.Fatal("no live scrape happened")
	}
	if !strings.Contains(scraped.String(), "ramr_worker_pairs_emitted_total") {
		t.Fatalf("live scrape missing counters:\n%s", scraped.String())
	}
}
