package telemetry

import (
	"sort"
	"time"
)

// Sample is one sampler snapshot: queue depths and worker states at one
// offset from the run's start. Slice positions follow registration order
// (queue i of Report.Queues, worker i of Report.Workers).
type Sample struct {
	T      time.Duration
	Depths []int
	States []State
	// Imbalance is the occupancy-imbalance ratio across the registered
	// queues at this tick: max depth over mean depth, 1.0 when depths are
	// uniform (including the all-empty case) and up to len(Depths) when a
	// single queue holds everything. The tuner reads it as the
	// operation-level skew signal.
	Imbalance float64
}

// series is the bounded sample store. Instead of a ring that forgets the
// start of long runs, it decimates: when the buffer fills, every other
// sample is dropped and the recording stride doubles, so the retained
// samples always span the whole run at the finest resolution the bound
// allows.
type series struct {
	max     int
	stride  int // record every stride-th offered sample
	skipped int // offers since the last recorded sample
	samples []Sample
}

func newSeries(max int) *series {
	if max < 2 {
		max = 2
	}
	return &series{max: max, stride: 1, samples: make([]Sample, 0, max)}
}

// add offers one sample, recording it if the current stride selects it and
// compacting when the buffer is full.
func (s *series) add(v Sample) {
	s.skipped++
	if s.skipped < s.stride {
		return
	}
	s.skipped = 0
	s.record(v)
}

// force records v unconditionally, bypassing the stride. EndRun uses it
// for the final sample: with stride > 1 a plain add could silently drop
// it, and a sub-interval run (no ticks fired yet) would otherwise report
// an empty series.
func (s *series) force(v Sample) {
	s.skipped = 0
	s.record(v)
}

func (s *series) record(v Sample) {
	if len(s.samples) == s.max {
		keep := s.samples[:0]
		for i := 0; i < len(s.samples); i += 2 {
			keep = append(keep, s.samples[i])
		}
		s.samples = keep
		s.stride *= 2
	}
	s.samples = append(s.samples, v)
}

// Percentiles summarizes one queue's sampled occupancy as fractions of
// capacity in [0, 1].
type Percentiles struct {
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// percentiles computes the summary of vs (already scaled); empty input
// yields zeros.
func percentiles(vs []float64) Percentiles {
	if len(vs) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		Min:  sorted[0],
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}
