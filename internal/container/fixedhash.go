package container

import "fmt"

// Hasher maps a key to a 64-bit hash. FixedHash takes the hash function
// explicitly so any comparable key type works without reflection.
type Hasher[K comparable] func(K) uint64

// HashInt hashes an int with a 64-bit finalizer (splitmix64), giving good
// dispersion even for the small consecutive key ranges the benchmark apps
// emit.
func HashInt(k int) uint64 { return mix64(uint64(k)) }

// HashUint64 hashes a uint64 with the same finalizer.
func HashUint64(k uint64) uint64 { return mix64(k) }

// HashString hashes a string with FNV-1a.
func HashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FixedHash is an open-addressing (linear probing) hash container with a
// capacity fixed at construction, matching the "fixed-size hash table"
// configuration of Figs. 8b/9b. Relative to FixedArray it adds the hash
// calculation and a non-regular access pattern — the memory intensity the
// paper deliberately injects — while avoiding dynamic allocation on the
// hot path.
//
// The table refuses to exceed a 7/8 load factor: inserting more distinct
// keys than capacity allows panics, because the caller declared the bound.
// Use NewFixedHash with the expected distinct-key count; it sizes the
// backing arrays with headroom.
type FixedHash[K comparable, V any] struct {
	hash    Hasher[K]
	keys    []K
	vals    []V
	state   []uint8 // 0 empty, 1 occupied
	mask    uint64
	n       int
	maxKeys int
	// Probes counts total probe steps, a proxy for the extra memory
	// traffic this container generates; the perf model reads it.
	Probes uint64
}

// NewFixedHash returns a fixed-capacity table able to hold maxKeys
// distinct keys. The backing store is sized to the next power of two at
// least 8/7 of maxKeys so the load factor stays below 7/8.
func NewFixedHash[K comparable, V any](maxKeys int, hash Hasher[K]) *FixedHash[K, V] {
	if maxKeys <= 0 {
		panic("container: FixedHash maxKeys must be positive")
	}
	if hash == nil {
		panic("container: FixedHash requires a hash function")
	}
	want := maxKeys + maxKeys/7 + 1
	cap := uint64(8)
	for cap < uint64(want) {
		cap <<= 1
	}
	return &FixedHash[K, V]{
		hash:    hash,
		keys:    make([]K, cap),
		vals:    make([]V, cap),
		state:   make([]uint8, cap),
		mask:    cap - 1,
		maxKeys: maxKeys,
	}
}

// Update folds v into the slot for k, inserting if absent.
func (h *FixedHash[K, V]) Update(k K, v V, combine Combine[V]) {
	i := h.hash(k) & h.mask
	for {
		h.Probes++
		if h.state[i] == 0 {
			if h.n >= h.maxKeys {
				panic(fmt.Sprintf("container: FixedHash overflow: %d distinct keys exceed declared capacity %d", h.n+1, h.maxKeys))
			}
			h.keys[i] = k
			h.vals[i] = v
			h.state[i] = 1
			h.n++
			return
		}
		if h.keys[i] == k {
			h.vals[i] = combine(h.vals[i], v)
			return
		}
		i = (i + 1) & h.mask
	}
}

// UpdateBatch folds each pair of kvs into its slot. The probe loop is the
// same as Update's; batching amortizes the interface dispatch and keeps
// consecutive probes of one batch temporally adjacent in the table.
func (h *FixedHash[K, V]) UpdateBatch(kvs []KV[K, V], combine Combine[V]) {
	for _, p := range kvs {
		i := h.hash(p.K) & h.mask
		for {
			h.Probes++
			if h.state[i] == 0 {
				if h.n >= h.maxKeys {
					panic(fmt.Sprintf("container: FixedHash overflow: %d distinct keys exceed declared capacity %d", h.n+1, h.maxKeys))
				}
				h.keys[i] = p.K
				h.vals[i] = p.V
				h.state[i] = 1
				h.n++
				break
			}
			if h.keys[i] == p.K {
				h.vals[i] = combine(h.vals[i], p.V)
				break
			}
			i = (i + 1) & h.mask
		}
	}
}

// Get returns the accumulator for k.
func (h *FixedHash[K, V]) Get(k K) (V, bool) {
	var zero V
	i := h.hash(k) & h.mask
	for {
		if h.state[i] == 0 {
			return zero, false
		}
		if h.keys[i] == k {
			return h.vals[i], true
		}
		i = (i + 1) & h.mask
	}
}

// Len returns the number of distinct keys stored.
func (h *FixedHash[K, V]) Len() int { return h.n }

// Iterate visits pairs in table order.
func (h *FixedHash[K, V]) Iterate(f func(K, V) bool) {
	for i, s := range h.state {
		if s == 1 && !f(h.keys[i], h.vals[i]) {
			return
		}
	}
}

// Reset empties the table, retaining the backing arrays.
func (h *FixedHash[K, V]) Reset() {
	var zk K
	var zv V
	for i := range h.state {
		if h.state[i] == 1 {
			h.keys[i] = zk
			h.vals[i] = zv
			h.state[i] = 0
		}
	}
	h.n = 0
	h.Probes = 0
}

// Kind reports KindFixedHash.
func (h *FixedHash[K, V]) Kind() Kind { return KindFixedHash }

var _ Container[string, int] = (*FixedHash[string, int])(nil)
