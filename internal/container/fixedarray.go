package container

// FixedArray is a dense container for integer keys in a known range
// [0, n): the accumulator for key k lives at index k. This is the default
// Phoenix++ container for every app whose key space is known a priori —
// histogram buckets, regression coefficient ids, cluster ids, matrix cells.
//
// Access is a single indexed load/store with perfect spatial regularity,
// which is exactly why the paper uses it as the *low* memory-intensity
// configuration: no hashing, no allocation, no pointer chasing.
type FixedArray[V any] struct {
	vals    []V
	present []bool
	n       int
}

// NewFixedArray returns a container for keys in [0, size). It panics on a
// non-positive size, which is always a construction bug.
func NewFixedArray[V any](size int) *FixedArray[V] {
	if size <= 0 {
		panic("container: FixedArray size must be positive")
	}
	return &FixedArray[V]{
		vals:    make([]V, size),
		present: make([]bool, size),
	}
}

// Update folds v into the accumulator at k. Keys outside [0, size) panic:
// the key range was declared a priori, so an out-of-range key means the
// application's map function is broken and silently dropping it would
// corrupt results.
func (a *FixedArray[V]) Update(k int, v V, combine Combine[V]) {
	if a.present[k] {
		a.vals[k] = combine(a.vals[k], v)
		return
	}
	a.vals[k] = v
	a.present[k] = true
	a.n++
}

// UpdateBatch folds each pair of kvs into its accumulator. The loop runs
// over the dense backing arrays directly, so a batch of b pairs costs one
// interface dispatch plus b indexed accesses.
func (a *FixedArray[V]) UpdateBatch(kvs []KV[int, V], combine Combine[V]) {
	for _, p := range kvs {
		if a.present[p.K] {
			a.vals[p.K] = combine(a.vals[p.K], p.V)
			continue
		}
		a.vals[p.K] = p.V
		a.present[p.K] = true
		a.n++
	}
}

// Get returns the accumulator for k.
func (a *FixedArray[V]) Get(k int) (V, bool) {
	var zero V
	if k < 0 || k >= len(a.vals) || !a.present[k] {
		return zero, false
	}
	return a.vals[k], true
}

// Len returns the number of keys with accumulators.
func (a *FixedArray[V]) Len() int { return a.n }

// Cap returns the declared key-range size.
func (a *FixedArray[V]) Cap() int { return len(a.vals) }

// Iterate visits present keys in ascending order.
func (a *FixedArray[V]) Iterate(f func(int, V) bool) {
	for k, p := range a.present {
		if p && !f(k, a.vals[k]) {
			return
		}
	}
}

// Reset empties the container, retaining the backing arrays.
func (a *FixedArray[V]) Reset() {
	var zero V
	for i := range a.vals {
		a.vals[i] = zero
		a.present[i] = false
	}
	a.n = 0
}

// Kind reports KindFixedArray.
func (a *FixedArray[V]) Kind() Kind { return KindFixedArray }

var _ Container[int, int] = (*FixedArray[int])(nil)
