package container

// Hash is the regular dynamically-growing hash container (a Go map),
// corresponding to Phoenix++'s default Word Count container and to the
// "regular hash table" used for MM and PCA in the memory-intensive
// configuration. Growth reallocates and rehashes, adding the dynamic
// allocation cost the paper calls out.
type Hash[K comparable, V any] struct {
	m map[K]V
}

// NewHash returns an empty regular hash container with a small initial
// reservation.
func NewHash[K comparable, V any]() *Hash[K, V] {
	return &Hash[K, V]{m: make(map[K]V, 64)}
}

// NewHashSized returns an empty container pre-reserving room for n keys.
func NewHashSized[K comparable, V any](n int) *Hash[K, V] {
	if n < 0 {
		n = 0
	}
	return &Hash[K, V]{m: make(map[K]V, n)}
}

// Update folds v into the accumulator for k.
func (h *Hash[K, V]) Update(k K, v V, combine Combine[V]) {
	if acc, ok := h.m[k]; ok {
		h.m[k] = combine(acc, v)
		return
	}
	h.m[k] = v
}

// UpdateBatch folds each pair of kvs into its accumulator, touching the
// map directly so a batch costs one interface dispatch.
func (h *Hash[K, V]) UpdateBatch(kvs []KV[K, V], combine Combine[V]) {
	for _, p := range kvs {
		if acc, ok := h.m[p.K]; ok {
			h.m[p.K] = combine(acc, p.V)
			continue
		}
		h.m[p.K] = p.V
	}
}

// Get returns the accumulator for k.
func (h *Hash[K, V]) Get(k K) (V, bool) {
	v, ok := h.m[k]
	return v, ok
}

// Len returns the number of distinct keys stored.
func (h *Hash[K, V]) Len() int { return len(h.m) }

// Iterate visits pairs in Go map order (randomized).
func (h *Hash[K, V]) Iterate(f func(K, V) bool) {
	for k, v := range h.m {
		if !f(k, v) {
			return
		}
	}
}

// Reset empties the container. The map is cleared in place so the buckets
// stay allocated.
func (h *Hash[K, V]) Reset() { clear(h.m) }

// Kind reports KindHash.
func (h *Hash[K, V]) Kind() Kind { return KindHash }

var _ Container[string, int] = (*Hash[string, int])(nil)
