package container

import (
	"sort"
	"testing"
	"testing/quick"
)

var sum = func(a, b int) int { return a + b }

// eachKind builds one container of every implementation for int keys.
func eachKind(t *testing.T, keyRange int) map[Kind]Container[int, int] {
	t.Helper()
	return map[Kind]Container[int, int]{
		KindFixedArray: NewFixedArray[int](keyRange),
		KindFixedHash:  NewFixedHash[int, int](keyRange, HashInt),
		KindHash:       NewHash[int, int](),
	}
}

func TestUpdateGetAcrossKinds(t *testing.T) {
	for kind, c := range eachKind(t, 100) {
		if c.Kind() != kind {
			t.Fatalf("%v reports kind %v", kind, c.Kind())
		}
		if _, ok := c.Get(5); ok {
			t.Fatalf("%v: Get on empty container succeeded", kind)
		}
		c.Update(5, 3, sum)
		c.Update(5, 4, sum)
		c.Update(7, 1, sum)
		if v, ok := c.Get(5); !ok || v != 7 {
			t.Fatalf("%v: Get(5) = (%d,%v), want 7", kind, v, ok)
		}
		if c.Len() != 2 {
			t.Fatalf("%v: Len = %d, want 2", kind, c.Len())
		}
		c.Reset()
		if c.Len() != 0 {
			t.Fatalf("%v: Len after Reset = %d", kind, c.Len())
		}
		if _, ok := c.Get(5); ok {
			t.Fatalf("%v: Get after Reset succeeded", kind)
		}
		// Reusable after reset.
		c.Update(5, 9, sum)
		if v, _ := c.Get(5); v != 9 {
			t.Fatalf("%v: reuse after Reset broken", kind)
		}
	}
}

func TestIterateVisitsAll(t *testing.T) {
	for kind, c := range eachKind(t, 64) {
		want := map[int]int{}
		for k := 0; k < 64; k += 3 {
			c.Update(k, k*10, sum)
			want[k] = k * 10
		}
		got := map[int]int{}
		c.Iterate(func(k, v int) bool {
			got[k] = v
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%v: iterated %d keys, want %d", kind, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%v: key %d = %d, want %d", kind, k, got[k], v)
			}
		}
		// Early termination.
		n := 0
		c.Iterate(func(int, int) bool { n++; return n < 3 })
		if n != 3 {
			t.Fatalf("%v: early-stop iterate visited %d", kind, n)
		}
	}
}

// TestQuickAgainstMapModel drives random update sequences through every
// container and compares with a plain map.
func TestQuickAgainstMapModel(t *testing.T) {
	const keyRange = 50
	f := func(keys []uint8, vals []int8) bool {
		cs := map[Kind]Container[int, int]{
			KindFixedArray: NewFixedArray[int](keyRange),
			KindFixedHash:  NewFixedHash[int, int](keyRange, HashInt),
			KindHash:       NewHash[int, int](),
		}
		model := map[int]int{}
		for i, kb := range keys {
			if i >= len(vals) {
				break
			}
			k := int(kb) % keyRange
			v := int(vals[i])
			for _, c := range cs {
				c.Update(k, v, sum)
			}
			if old, ok := model[k]; ok {
				model[k] = old + v
			} else {
				model[k] = v
			}
		}
		for _, c := range cs {
			if c.Len() != len(model) {
				return false
			}
			for k, v := range model {
				got, ok := c.Get(k)
				if !ok || got != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEquivalence(t *testing.T) {
	for kind := range eachKind(t, 32) {
		mk := func() Container[int, int] { return eachKind(t, 32)[kind] }
		a, b := mk(), mk()
		for k := 0; k < 32; k++ {
			if k%2 == 0 {
				a.Update(k, k, sum)
			}
			if k%3 == 0 {
				b.Update(k, 100+k, sum)
			}
		}
		Merge(a, b, sum)
		for k := 0; k < 32; k++ {
			want, present := 0, false
			if k%2 == 0 {
				want, present = k, true
			}
			if k%3 == 0 {
				want, present = want+100+k, true
			}
			got, ok := a.Get(k)
			if ok != present || got != want {
				t.Fatalf("%v: merged key %d = (%d,%v), want (%d,%v)", kind, k, got, ok, want, present)
			}
		}
	}
}

func TestFixedArrayOrderAndBounds(t *testing.T) {
	a := NewFixedArray[int](10)
	a.Update(9, 1, sum)
	a.Update(0, 2, sum)
	a.Update(4, 3, sum)
	var keys []int
	a.Iterate(func(k, _ int) bool { keys = append(keys, k); return true })
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("FixedArray iteration not ascending: %v", keys)
	}
	if a.Cap() != 10 {
		t.Fatalf("Cap = %d", a.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range key should panic")
		}
	}()
	a.Update(10, 1, sum)
}

func TestFixedArraySizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFixedArray(0) should panic")
		}
	}()
	NewFixedArray[int](0)
}

func TestFixedHashOverflowPanics(t *testing.T) {
	h := NewFixedHash[int, int](4, HashInt)
	for k := 0; k < 4; k++ {
		h.Update(k, 1, sum)
	}
	// Updating existing keys is fine at capacity.
	h.Update(0, 5, sum)
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding declared capacity should panic")
		}
	}()
	h.Update(99, 1, sum)
}

func TestFixedHashStringKeys(t *testing.T) {
	h := NewFixedHash[string, int](100, HashString)
	words := []string{"map", "reduce", "combine", "map", "map"}
	for _, w := range words {
		h.Update(w, 1, sum)
	}
	if v, _ := h.Get("map"); v != 3 {
		t.Fatalf("map = %d, want 3", v)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.Probes == 0 {
		t.Fatal("probe counter did not advance")
	}
}

func TestFixedHashValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero-capacity": func() { NewFixedHash[int, int](0, HashInt) },
		"nil-hasher":    func() { NewFixedHash[int, int](4, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHashersDisperse(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[HashInt(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("HashInt collisions on 1000 consecutive ints: %d distinct", len(seen))
	}
	if HashString("abc") == HashString("abd") {
		t.Fatal("HashString collision on near strings")
	}
	if HashUint64(1) == HashUint64(2) {
		t.Fatal("HashUint64 collision")
	}
	// Low-bit dispersion matters because tables mask, not mod.
	low := map[uint64]int{}
	for i := 0; i < 4096; i++ {
		low[HashInt(i)&63]++
	}
	for b, n := range low {
		if n > 4096/64*3 {
			t.Fatalf("bucket %d badly overloaded: %d", b, n)
		}
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindFixedArray: "array",
		KindFixedHash:  "fixed-hash",
		KindHash:       "hash",
	} {
		if kind.String() != want {
			t.Fatalf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown Kind should render")
	}
}

func TestNewHashSized(t *testing.T) {
	h := NewHashSized[int, int](-1)
	h.Update(1, 1, sum)
	if v, _ := h.Get(1); v != 1 {
		t.Fatal("NewHashSized(-1) unusable")
	}
}

// TestUpdateBatchEquivalence pins the bulk-update contract: UpdateBatch
// must produce exactly the state of per-element Update calls in the same
// order, on every implementation.
func TestUpdateBatchEquivalence(t *testing.T) {
	kvs := make([]KV[int, int], 0, 300)
	for i := 0; i < 300; i++ {
		kvs = append(kvs, KV[int, int]{K: (i * 7) % 40, V: i})
	}
	batched := eachKind(t, 64)
	single := eachKind(t, 64)
	for kind := range batched {
		b, s := batched[kind], single[kind]
		b.UpdateBatch(nil, sum) // empty batch is a no-op
		b.UpdateBatch(kvs[:100], sum)
		b.UpdateBatch(kvs[100:], sum)
		for _, p := range kvs {
			s.Update(p.K, p.V, sum)
		}
		if b.Len() != s.Len() {
			t.Fatalf("%v: batched Len %d != single Len %d", kind, b.Len(), s.Len())
		}
		s.Iterate(func(k, v int) bool {
			if got, ok := b.Get(k); !ok || got != v {
				t.Fatalf("%v: key %d batched=(%d,%v) single=%d", kind, k, got, ok, v)
			}
			return true
		})
	}
}

// TestUpdateBatchNonCommutative checks that batched folding preserves
// element order within and across batches (combine need only be
// associative, not commutative).
func TestUpdateBatchNonCommutative(t *testing.T) {
	concat := func(a, b string) string { return a + b }
	for _, c := range []Container[int, string]{
		NewFixedArray[string](8),
		NewFixedHash[int, string](8, HashInt),
		NewHash[int, string](),
	} {
		c.UpdateBatch([]KV[int, string]{{K: 1, V: "a"}, {K: 1, V: "b"}}, concat)
		c.UpdateBatch([]KV[int, string]{{K: 1, V: "c"}}, concat)
		if v, _ := c.Get(1); v != "abc" {
			t.Fatalf("%v: got %q, want \"abc\"", c.Kind(), v)
		}
	}
}

func TestFixedHashUpdateBatchOverflowPanics(t *testing.T) {
	h := NewFixedHash[int, int](2, HashInt)
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateBatch over declared capacity should panic")
		}
	}()
	h.UpdateBatch([]KV[int, int]{{K: 1, V: 1}, {K: 2, V: 2}, {K: 3, V: 3}}, sum)
}
