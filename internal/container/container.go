// Package container provides the intermediate key-value containers that sit
// between the map and reduce phases, mirroring the container taxonomy of
// Phoenix++ that the paper evaluates (§IV-D):
//
//   - FixedArray — a dense array indexed directly by key, the default for
//     every benchmark app whose key range is known a priori (HG, LR, KM,
//     PCA, MM).
//   - FixedHash — an open-addressing hash table of fixed, pre-allocated
//     capacity; the "fixed-size hash container" used to stress the memory
//     subsystem in Figs. 8b/9b.
//   - Hash — a regular dynamically-growing hash table (Go map), the
//     default for Word Count and the "regular hash container" for MM/PCA
//     in the memory-intensive configuration.
//
// A container accumulates one value per key under a user combine function
// and is private to one worker (Phoenix++) or one combiner (RAMR); Merge
// folds per-worker containers together before the reduce phase.
package container

import "fmt"

// Kind enumerates the container implementations.
type Kind int

const (
	// KindFixedArray is the dense array container.
	KindFixedArray Kind = iota
	// KindFixedHash is the fixed-capacity open-addressing hash container.
	KindFixedHash
	// KindHash is the regular dynamically-sized hash container.
	KindHash
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case KindFixedArray:
		return "array"
	case KindFixedHash:
		return "fixed-hash"
	case KindHash:
		return "hash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Combine folds a newly emitted value into an accumulator. It must be
// associative; MapReduce gives no ordering guarantee across workers.
type Combine[V any] func(acc, v V) V

// KV is one intermediate key-value pair, the element of bulk container
// updates. It is also the element type the RAMR engine streams through its
// SPSC queues, so a consumed queue batch can be handed to UpdateBatch
// without per-element repacking.
type KV[K comparable, V any] struct {
	K K
	V V
}

// Container accumulates combined values by key. Implementations are not
// safe for concurrent use — the runtimes give each worker its own instance,
// exactly as the paper prescribes ("a separate container is allocated to
// each combiner").
type Container[K comparable, V any] interface {
	// Update folds v into the accumulator for k using combine.
	Update(k K, v V, combine Combine[V])
	// UpdateBatch folds every pair of kvs into the container, equivalent
	// to calling Update once per element in order. Implementations
	// specialize the loop so the combiner's hot path pays one interface
	// dispatch per batch instead of one per pair.
	UpdateBatch(kvs []KV[K, V], combine Combine[V])
	// Get returns the accumulator for k.
	Get(k K) (V, bool)
	// Len returns the number of distinct keys present.
	Len() int
	// Iterate visits every (key, accumulator) pair until f returns
	// false. Iteration order is implementation-defined.
	Iterate(f func(K, V) bool)
	// Reset empties the container, retaining its allocation.
	Reset()
	// Kind identifies the implementation.
	Kind() Kind
}

// mergeBatch is how many pairs Merge buffers between bulk updates of the
// destination; large enough to amortize the dispatch, small enough to stay
// cache-resident.
const mergeBatch = 256

// Merge folds every pair of src into dst using combine. It is the
// inter-container reduction used when per-worker results are gathered.
// Pairs are staged through a small buffer and applied with UpdateBatch so
// the destination side of the merge runs on the same bulk path as the
// combiners.
func Merge[K comparable, V any](dst, src Container[K, V], combine Combine[V]) {
	buf := make([]KV[K, V], 0, mergeBatch)
	src.Iterate(func(k K, v V) bool {
		buf = append(buf, KV[K, V]{k, v})
		if len(buf) == cap(buf) {
			dst.UpdateBatch(buf, combine)
			buf = buf[:0]
		}
		return true
	})
	dst.UpdateBatch(buf, combine)
}

// Factory builds fresh containers of one configured kind; the runtimes use
// it to allocate per-worker instances without knowing the concrete type.
type Factory[K comparable, V any] func() Container[K, V]
