package phoenix

import (
	"strings"
	"testing"
)

func TestMapPanicBecomesError(t *testing.T) {
	s := spec(100, 10, 5)
	s.Map = func(int, func(int, int)) { panic("map exploded") }
	_, err := Run(s, cfg())
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("map panic not reported: %v", err)
	}
}

func TestCombinePanicBecomesError(t *testing.T) {
	s := spec(100, 10, 5)
	n := 0
	s.Combine = func(a, b int) int {
		n++
		if n > 50 {
			panic("combine exploded")
		}
		return a + b
	}
	if _, err := Run(s, cfg()); err == nil {
		t.Fatal("combine panic not reported")
	}
}

func TestReducePanicBecomesError(t *testing.T) {
	s := spec(20, 10, 5)
	s.Reduce = func(k, v int) int { panic("reduce exploded") }
	_, err := Run(s, cfg())
	if err == nil || !strings.Contains(err.Error(), "reduce") {
		t.Fatalf("reduce panic not reported: %v", err)
	}
}
