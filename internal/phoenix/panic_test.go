package phoenix

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ramr/internal/faultinject"
	"ramr/internal/mr"
)

// assertNoLeaks asserts that no worker goroutine outlives the run.
func assertNoLeaks(t *testing.T) {
	t.Helper()
	if leaked := faultinject.AwaitNoWorkers(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("%d leaked worker goroutines:\n%s", len(leaked), leaked[0])
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	s := spec(100, 10, 5)
	s.Map = func(int, func(int, int)) { panic("map exploded") }
	_, err := Run(s, cfg())
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("map panic not reported: %v", err)
	}
	var pe *mr.PanicError
	if !errors.As(err, &pe) || pe.Engine != "phoenix" {
		t.Fatalf("err = %#v, want *mr.PanicError from phoenix", err)
	}
	assertNoLeaks(t)
}

func TestCombinePanicBecomesError(t *testing.T) {
	s := spec(100, 10, 5)
	var n atomic.Int64 // Combine runs concurrently on the fused workers
	s.Combine = func(a, b int) int {
		if n.Add(1) > 50 {
			panic("combine exploded")
		}
		return a + b
	}
	_, err := Run(s, cfg())
	if err == nil {
		t.Fatal("combine panic not reported")
	}
	var pe *mr.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %#v, want *mr.PanicError", err)
	}
	assertNoLeaks(t)
}

func TestReducePanicBecomesError(t *testing.T) {
	s := spec(20, 10, 5)
	s.Reduce = func(k, v int) int { panic("reduce exploded") }
	_, err := Run(s, cfg())
	if err == nil || !strings.Contains(err.Error(), "reduce") {
		t.Fatalf("reduce panic not reported: %v", err)
	}
	assertNoLeaks(t)
}

func TestRunContextCancellation(t *testing.T) {
	s := spec(400, 50, 7)
	slowMap := s.Map
	s.Map = func(sp int, emit func(int, int)) {
		time.Sleep(200 * time.Microsecond)
		slowMap(sp, emit)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := RunContext(ctx, s, cfg())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	assertNoLeaks(t)
}
