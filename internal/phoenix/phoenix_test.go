package phoenix

import (
	"testing"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/topology"
)

func spec(splits, emits, keys int) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "count",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < emits; e++ {
				emit((s*emits+e)%keys, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](keys) },
		Less:         func(a, b int) bool { return a < b },
	}
}

func cfg() mr.Config {
	c := mr.DefaultConfig()
	c.Mappers = 2
	c.Combiners = 2
	c.Machine = topology.Flat(4)
	c.Pin = mr.PinNone
	return c
}

func TestRunCorrectness(t *testing.T) {
	res, err := Run(spec(30, 20, 11), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 11 {
		t.Fatalf("%d keys, want 11", len(res.Pairs))
	}
	total := 0
	for i, p := range res.Pairs {
		if p.Key != i {
			t.Fatalf("not sorted: %v", res.Pairs)
		}
		total += p.Value
	}
	if total != 600 {
		t.Fatalf("total = %d", total)
	}
	// Fused engine never touches queues.
	if res.QueueStats.Pushes != 0 {
		t.Fatalf("phoenix reported queue stats: %+v", res.QueueStats)
	}
	if res.Phases.MapCombine <= 0 {
		t.Fatal("map-combine phase not timed")
	}
}

func TestRunValidation(t *testing.T) {
	bad := cfg()
	bad.TaskSize = 0
	if _, err := Run(spec(4, 4, 4), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	s := spec(4, 4, 4)
	s.Combine = nil
	if _, err := Run(s, cfg()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(spec(0, 5, 5), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatal("expected empty output")
	}
}

func TestReduceTransforms(t *testing.T) {
	s := spec(10, 10, 4)
	s.Reduce = func(k, v int) int { return v * 1000 }
	res, err := Run(s, cfg())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 100*1000 {
		t.Fatalf("total = %d", total)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(spec(20, 20, 9), cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec(20, 20, 9), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("output size varies")
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}
