// Package phoenix implements the baseline execution engine the paper
// compares against: a Go port of the Phoenix++ strategy for shared-memory
// MapReduce (Talbot, Yoo, Kozyrakis, MapReduce '11).
//
// In Phoenix++ the combine function is applied *after every map operation*
// into a thread-local container — map and combine are fused on the same
// worker thread and therefore serialized with each other. The subsequent
// reduce runs in parallel over the merged containers, and a final merge
// orders the output. This fusion is precisely the structural property RAMR
// (internal/core) relaxes, so keeping everything else — splits, tasks,
// containers, reduce, merge — byte-identical between the two engines makes
// the comparison isolate the runtime architecture, as in the paper.
package phoenix

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/telemetry"
	"ramr/internal/trace"
)

// Run executes the job with the Phoenix++ strategy: cfg.Mappers +
// cfg.NumCombiners() general-purpose workers (so total thread budget
// matches an equivalent RAMR run), each fusing map and combine into a
// private container, followed by parallel reduce and merge.
func Run[S any, K comparable, V, R any](spec *mr.Spec[S, K, V, R], cfg mr.Config) (*mr.Result[K, R], error) {
	return RunContext(context.Background(), spec, cfg)
}

// RunContext is Run with cancellation: workers stop taking tasks after
// their current one once ctx is cancelled, and the context's error is
// returned.
func RunContext[S any, K comparable, V, R any](ctx context.Context, spec *mr.Spec[S, K, V, R], cfg mr.Config) (*mr.Result[K, R], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stream != nil {
		return nil, fmt.Errorf("phoenix: Config.Stream is set; streaming runs go through internal/stream, not the batch engine")
	}
	// A context that is already dead must fail fast: no worker or sampler
	// is ever created for a run that cannot make progress.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := cfg.Mappers + cfg.NumCombiners()

	res := &mr.Result[K, R]{}

	// Telemetry is captured into a local once (like Hooks); Stop is
	// deferred so error returns never leak the sampler goroutine. The
	// fused engine has no queues to probe, but its counters and worker
	// utilization curves make the two engines directly comparable.
	tel := cfg.Telemetry
	if tel != nil {
		tel.BeginRun("phoenix")
		defer tel.Stop()
	}

	// --- Init: allocate per-worker containers. ---
	t0 := time.Now()
	containers := make([]container.Container[K, V], workers)
	for i := range containers {
		containers[i] = spec.NewContainer()
	}
	res.Phases.Init = time.Since(t0)

	// --- Partition: group splits into tasks. ---
	t0 = time.Now()
	tasks := mr.Tasks(len(spec.Splits), cfg.TaskSize)
	res.Phases.Partition = time.Since(t0)

	// --- Map-combine: fused, dynamic task dispatch. A user-code panic
	// becomes an error; the abort flag stops further dispatch. ---
	t0 = time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	var firstErr mr.FirstError
	var abort atomic.Bool
	// trip raises the abort flag; the OnAbort hook fires only for the
	// first worker to trip it.
	trip := func() {
		if abort.CompareAndSwap(false, true) {
			cfg.Hooks.FireOnAbort()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// pprof.Do labels the goroutine so CPU profiles segment the
		// fused workers from reduce/merge helpers and, side by side
		// with a RAMR profile, mapper vs combiner time.
		go func(w int, c container.Container[K, V]) {
			defer wg.Done()
			labels := pprof.Labels("engine", "phoenix", "role", "worker", "worker", strconv.Itoa(w))
			pprof.Do(ctx, labels, func(context.Context) {
				var tw *telemetry.Worker
				if tel != nil {
					tw = tel.RegisterWorker("worker", w)
				}
				defer tw.SetState(telemetry.StateDone)
				defer func() {
					if r := recover(); r != nil {
						firstErr.Set(&mr.PanicError{Engine: "phoenix", Worker: fmt.Sprintf("worker %d", w), Value: r})
						trip()
					}
				}()
				var shard *trace.Shard
				if cfg.Trace != nil {
					shard = cfg.Trace.Shard(fmt.Sprintf("worker-%d", w))
				}
				emit := func(k K, v V) { c.Update(k, v, spec.Combine) }
				// In the fused engine every emitted pair is combined in
				// place, so one local counter feeds both totals at task
				// boundaries.
				emitted := 0
				if tw != nil {
					inner := emit
					emit = func(k K, v V) {
						emitted++
						inner(k, v)
					}
				}
				var taskHook func(int)
				if hk := cfg.Hooks; hk != nil {
					taskHook = hk.MapTask
					if hk.MapEmit != nil {
						inner := emit
						emit = func(k K, v V) {
							hk.MapEmit(w)
							inner(k, v)
						}
					}
				}
				tw.SetState(telemetry.StateWorking)
				for !abort.Load() && ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					if taskHook != nil {
						taskHook(w)
					}
					var end func()
					if shard != nil {
						end = shard.Span("task", nil)
					}
					for s := tasks[i][0]; s < tasks[i][1]; s++ {
						spec.Map(spec.Splits[s], emit)
					}
					if end != nil {
						end()
					}
					if tw != nil {
						tw.AddTasks(1)
						tw.AddEmitted(emitted)
						tw.AddCombined(emitted)
						emitted = 0
					}
				}
			})
		}(w, containers[w])
	}
	wg.Wait()
	res.Phases.MapCombine = time.Since(t0)
	// The pre-reduce hook runs before the error checks so a cancellation
	// injected there is still honored by the ctx check below.
	cfg.Hooks.FirePreReduce()
	if err := firstErr.Get(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// --- Reduce: tree-merge containers, then parallel reduce. ---
	t0 = time.Now()
	merged, err := mr.MergeContainers(containers, spec.Combine)
	if err != nil {
		return nil, err
	}
	pairs, err := mr.ReduceAll(merged, spec.Reduce, workers)
	if err != nil {
		return nil, err
	}
	res.Phases.Reduce = time.Since(t0)

	// --- Merge: parallel sort over the worker pool. ---
	t0 = time.Now()
	mr.SortPairsParallel(pairs, spec.Less, workers)
	res.Phases.Merge = time.Since(t0)

	res.Pairs = pairs
	if tel != nil {
		res.Telemetry = tel.EndRun(res.Phases.SecondsByPhase())
	}
	return res, nil
}
