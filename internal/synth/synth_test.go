package synth

import (
	"testing"

	"ramr/internal/mr"
	"ramr/internal/topology"
	"ramr/internal/workloads"
)

func cfg(ratio int) mr.Config {
	c := mr.DefaultConfig()
	c.Mappers = 3
	c.Combiners = 0
	c.Ratio = ratio
	c.QueueCapacity = 256
	c.BatchSize = 32
	c.Machine = topology.Flat(4)
	c.Pin = mr.PinNone
	return c
}

func smallParams() Params {
	p := DefaultParams()
	p.Elements = 5_000
	p.Keys = 64
	p.MapKernel = Kernel{CPU, 5}
	p.CombineKernel = Kernel{Memory, 3}
	return p
}

// TestEnginesAgree: the synthetic job's uint64-sum algebra is exactly
// associative/commutative, so digests must match across engines, ratios
// and kernel mixes.
func TestEnginesAgree(t *testing.T) {
	for _, mix := range []struct{ m, c Kernel }{
		{Kernel{CPU, 5}, Kernel{Memory, 3}},
		{Kernel{Memory, 3}, Kernel{CPU, 5}},
		{Kernel{CPU, 1}, Kernel{CPU, 1}},
	} {
		p := smallParams()
		p.MapKernel, p.CombineKernel = mix.m, mix.c
		job := NewJob(p, 7)
		ra, err := job.Run(workloads.EngineRAMR, cfg(2))
		if err != nil {
			t.Fatal(err)
		}
		ph, err := job.Run(workloads.EnginePhoenix, cfg(1))
		if err != nil {
			t.Fatal(err)
		}
		if ra.Digest != ph.Digest || ra.Pairs != ph.Pairs {
			t.Fatalf("mix %+v: engines disagree (%x vs %x)", mix, ra.Digest, ph.Digest)
		}
		if ra.Pairs != p.Keys {
			t.Fatalf("pairs = %d, want %d", ra.Pairs, p.Keys)
		}
	}
}

func TestDeterministicAcrossRatios(t *testing.T) {
	p := smallParams()
	job := NewJob(p, 11)
	var digest uint64
	for _, ratio := range []int{1, 2, 3} {
		info, err := job.Run(workloads.EngineRAMR, cfg(ratio))
		if err != nil {
			t.Fatal(err)
		}
		if digest == 0 {
			digest = info.Digest
		} else if info.Digest != digest {
			t.Fatalf("ratio %d changes the result", ratio)
		}
	}
}

func TestSeedChangesResult(t *testing.T) {
	p := smallParams()
	a, err := NewJob(p, 1).Run(workloads.EngineRAMR, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJob(p, 2).Run(workloads.EngineRAMR, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatal("seed has no effect")
	}
}

func TestKernelRunConsumesIntensity(t *testing.T) {
	// Zero intensity must be safe and fast; higher intensity changes
	// the CPU kernel's output token.
	k0 := Kernel{CPU, 0}
	_ = k0.Run(1)
	// The CPU kernel's trig/exp map converges to a fixed point, so its
	// *output* may stabilize; assert only that it runs and that seeds
	// steer it before convergence.
	k1 := Kernel{CPU, 2}
	if k1.Run(5) == k1.Run(50) {
		t.Fatal("cpu kernel ignores seed")
	}
	m := Kernel{Memory, 4}
	if m.Run(3) == m.Run(4) {
		t.Fatal("memory kernel ignores seed")
	}
}

func TestParamsDefaultsClamped(t *testing.T) {
	p := smallParams()
	p.SplitElements = 0
	p.Keys = 0
	job := NewJob(p, 3)
	info, err := job.Run(workloads.EngineRAMR, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if info.Pairs != 1 {
		t.Fatalf("keys clamped to 1, got %d pairs", info.Pairs)
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "memory" {
		t.Fatal("kind names")
	}
}

// TestSkewedSplits: Zipf split sizes cover the input exactly, respect
// the 8x cap, and place the heavy splits at the front of the element
// range (the contiguous span seeded to locality group 0).
func TestSkewedSplits(t *testing.T) {
	p := smallParams()
	p.SplitElements = 64
	p.Skew = 1.3
	splits := skewedSplits(p, 9)
	covered := 0
	prevSize := 1 << 30
	maxSize := 0
	for i, s := range splits {
		if s[0] != covered || s[1] <= s[0] {
			t.Fatalf("split %d = %v does not continue coverage at %d", i, s, covered)
		}
		sz := s[1] - s[0]
		if sz > prevSize {
			t.Fatalf("split %d size %d exceeds predecessor %d: heavy splits not front-clustered", i, sz, prevSize)
		}
		if sz > 8*p.SplitElements {
			t.Fatalf("split %d size %d exceeds the 8x cap %d", i, sz, 8*p.SplitElements)
		}
		if sz > maxSize {
			maxSize = sz
		}
		prevSize = sz
		covered = s[1]
	}
	if covered != p.Elements {
		t.Fatalf("splits cover %d elements, want %d", covered, p.Elements)
	}
	if maxSize <= p.SplitElements {
		t.Fatalf("max split size %d shows no skew over the %d base", maxSize, p.SplitElements)
	}
}

// TestSkewedEnginesAgree: skew only reshapes splits and keys; the
// algebra stays exact, so both engines must still agree, and the key
// histogram must actually be skewed (hot key far above the mean).
func TestSkewedEnginesAgree(t *testing.T) {
	p := smallParams()
	p.Skew = 1.5
	// Wider than the element count would fill uniformly (e % keys covers
	// the whole range when Elements >= Keys); zipf draws leave tail keys
	// untouched, which the Pairs assertion below detects.
	p.Keys = 4096
	job := NewJob(p, 7)
	ra, err := job.Run(workloads.EngineRAMR, cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	ph, err := job.Run(workloads.EnginePhoenix, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Digest != ph.Digest || ra.Pairs != ph.Pairs {
		t.Fatalf("skewed engines disagree (%x/%d vs %x/%d)", ra.Digest, ra.Pairs, ph.Digest, ph.Pairs)
	}
	// Zipf keys concentrate on a prefix of the range, so the output key
	// count drops well below the full width the uniform input fills.
	if ra.Pairs >= p.Keys {
		t.Fatalf("skewed run filled all %d keys; zipf keying not applied", p.Keys)
	}

	uniform, err := NewJob(smallParams(), 7).Run(workloads.EngineRAMR, cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Digest == ra.Digest {
		t.Fatal("skew has no effect on the result")
	}
}

// TestShardMergeMatchesSingleNode pins the cluster contract for SYNTH,
// and — because the merge digest fold is re-stated in the workloads
// package (synthPairDigest) while the job digest fold lives here —
// cross-checks that the two stay in sync: shard partials merged and
// summarized must reproduce the single-node digest bit for bit.
func TestShardMergeMatchesSingleNode(t *testing.T) {
	p := smallParams()
	p.Skew = 1.2 // uneven splits exercise the shard partition too
	full, err := NewJob(p, int64(7)).Run(workloads.EngineRAMR, cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 4} {
		parts := make([]*workloads.Partial, count)
		for i := 0; i < count; i++ {
			sj, err := NewShardJob(p, int64(7), workloads.ShardSpec{Index: i, Count: count})
			if err != nil {
				t.Fatal(err)
			}
			si, err := sj.Run(workloads.EngineRAMR, cfg(2))
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, count, err)
			}
			if si.Partial == nil {
				t.Fatalf("shard %d/%d exported no partial", i, count)
			}
			parts[i] = si.Partial
		}
		merged, err := workloads.MergePartials(parts)
		if err != nil {
			t.Fatal(err)
		}
		pairs, digest, err := merged.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if pairs != full.Pairs || digest != full.Digest {
			t.Fatalf("sharded %d ways: merged (%d pairs, %016x), single-node (%d pairs, %016x)",
				count, pairs, digest, full.Pairs, full.Digest)
		}
	}
}

func TestShardJobValidates(t *testing.T) {
	if _, err := NewShardJob(smallParams(), 1, workloads.ShardSpec{Index: 5, Count: 2}); err == nil {
		t.Error("out-of-range shard should fail")
	}
}
