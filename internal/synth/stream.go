package synth

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/stream"
)

// NewStreamSession builds a resident streaming session over the
// synthetic kernels: the same Map/Combine/Reduce algebra as NewJob, but
// input elements arrive as chunks over time instead of as a fixed split
// list. A chunk's RawChunk.Elements asks for that many generated
// elements; element indices continue monotonically across chunks, so a
// stream of chunks totalling N elements emits exactly the pairs a batch
// run over N elements would (per-window digests differ from the batch
// digest only by the window partitioning).
//
// Skewed input (Params.Skew > 1) is rejected: the Zipf key table and
// the sorted heavy-head split layout are properties of a complete input
// known up front, which a stream by definition lacks.
func NewStreamSession(p Params, seed int64, cfg mr.Config) (*stream.Session, error) {
	if p.Skew > 1 {
		return nil, fmt.Errorf("synth: streaming SYNTH does not support skewed input (skew=%g): the Zipf tables need the whole input up front", p.Skew)
	}
	if p.SplitElements < 1 {
		p.SplitElements = 512
	}
	if p.Keys < 1 {
		p.Keys = 1
	}
	mk, ck := p.MapKernel, p.CombineKernel
	keys := p.Keys
	s64 := uint64(seed)
	spec := &mr.Spec[[2]int, int, uint64, uint64]{
		Name: "SYNTH",
		Map: func(rng [2]int, emit func(int, uint64)) {
			for e := rng[0]; e < rng[1]; e++ {
				tok := mk.Run(uint64(e) ^ s64)
				emit(e%keys, tok+1)
			}
		},
		Combine: func(a, b uint64) uint64 {
			_ = ck.Run(a ^ b)
			return a + b
		},
		Reduce:       mr.IdentityReduce[int, uint64](),
		NewContainer: func() container.Container[int, uint64] { return container.NewFixedArray[uint64](keys) },
		Less:         func(a, b int) bool { return a < b },
	}
	pipe, err := stream.New(spec, cfg)
	if err != nil {
		return nil, err
	}
	// next hands each chunk a fresh contiguous element range; atomic
	// because concurrent producers may append chunks in parallel.
	var next atomic.Int64
	splitSize := p.SplitElements
	return stream.Erase(pipe, stream.EraseOpts[[2]int, int, uint64]{
		Decode: func(rc stream.RawChunk) ([][2]int, error) {
			if len(rc.Lines) > 0 {
				return nil, fmt.Errorf("synth: SYNTH chunks carry elements, not lines")
			}
			if rc.Elements < 0 {
				return nil, fmt.Errorf("synth: chunk elements must be >= 0, got %d", rc.Elements)
			}
			if rc.Elements == 0 {
				return nil, nil
			}
			n := rc.Elements
			base := int(next.Add(int64(n))) - n
			var splits [][2]int
			for lo := base; lo < base+n; lo += splitSize {
				hi := lo + splitSize
				if hi > base+n {
					hi = base + n
				}
				splits = append(splits, [2]int{lo, hi})
			}
			return splits, nil
		},
		Digest: func(pairs []mr.Pair[int, uint64]) string {
			var d uint64
			for _, pr := range pairs {
				d += (uint64(pr.Key)*0x9e3779b97f4a7c15 ^ pr.Value) * 0xbf58476d1ce4e5b9
			}
			return fmt.Sprintf("%016x", d)
		},
		Format: func(pr mr.Pair[int, uint64]) (string, string) {
			return strconv.Itoa(pr.Key), strconv.FormatUint(pr.Value, 10)
		},
	})
}
