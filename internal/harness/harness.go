// Package harness regenerates every table and figure of the paper's
// evaluation (§IV). Each experiment is registered under the paper's own
// identifier (table1, fig1, fig4, fig5, fig6, fig7, fig8a, fig8b, fig9a,
// fig9b, fig10a, fig10b, plus fig3's pinning demo and native re-runs of
// the engine comparisons on the host) and renders the same rows/series the
// paper reports, as aligned text or CSV.
//
// Platform-dependent figures run on the modeled Haswell/Xeon Phi
// topologies through internal/simarch (deterministic); engine-comparison
// experiments also exist in "native" variants that execute the real Go
// runtimes on the current host.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ramr/internal/telemetry"
	"ramr/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives every input generator.
	Seed int64
	// Quick shrinks native inputs and repetition counts for CI.
	Quick bool
	// Runs is the repetition count for native timing experiments (the
	// paper averages 20 runs); 0 picks a default.
	Runs int
	// Trace, when non-nil, collects per-worker spans from every measured
	// native run into one timeline (ratio probes stay uninstrumented).
	Trace *trace.Collector
	// Telemetry, when non-nil, instruments every measured native run;
	// after the experiment, Telemetry.LastReport() describes the final
	// run performed.
	Telemetry *telemetry.Telemetry
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 42, Runs: 5} }

// Row is one labeled series of values in a report.
type Row struct {
	Label  string
	Values []float64
}

// Report is a rendered experiment result.
type Report struct {
	// ID is the experiment identifier (e.g. "fig8a").
	ID string
	// Title describes the experiment as the paper captions it.
	Title string
	// Columns labels the value columns.
	Columns []string
	// Rows holds the series.
	Rows []Row
	// Notes carries caveats and expected-shape commentary.
	Notes []string
}

// Render writes the report as aligned text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	labelW := 12
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for _, c := range r.Columns {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s", labelW+2, row.Label)
		for _, v := range row.Values {
			fmt.Fprintf(w, "%14s", formatValue(v))
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// RenderCSV writes the report as CSV with a header row.
func (r *Report) RenderCSV(w io.Writer) error {
	cols := append([]string{"label"}, r.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		fields := []string{row.Label}
		for _, v := range row.Values {
			fields = append(fields, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 0.01:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Experiment is one registered table/figure regenerator.
type Experiment struct {
	// ID is the lookup key ("fig5").
	ID string
	// Title is a one-line description.
	Title string
	// Native reports that the experiment times real engine runs on this
	// host (as opposed to going through the simarch model) and therefore
	// honors Options.Telemetry and Options.Trace.
	Native bool
	// Run executes the experiment.
	Run func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

// register adds an experiment, wrapping Run so every report carries the
// experiment's id and title even when the driver leaves them blank.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	inner := e.Run
	id, title := e.ID, e.Title
	e.Run = func(o Options) (*Report, error) {
		rep, err := inner(o)
		if err != nil {
			return nil, err
		}
		if rep.ID == "" {
			rep.ID = id
		}
		if rep.Title == "" {
			rep.Title = title
		}
		return rep, nil
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (use List)", id)
	}
	return e, nil
}

// List returns all experiments sorted by id.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
