package harness

import (
	"fmt"
	"runtime"
	"time"

	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/stats"
	"ramr/internal/synth"
	"ramr/internal/workloads"
)

func init() {
	register(Experiment{ID: "fig1", Title: "MapReduce phase run-time breakdown, Phoenix engine (Fig. 1)", Native: true, Run: runFig1})
	register(Experiment{ID: "fig4", Title: "Synthetic suite: combine intensity vs mapper/combiner ratio (Fig. 4)", Native: true, Run: runFig4})
	register(Experiment{ID: "native8a", Title: "Native host re-run of Fig. 8a (RAMR vs Phoenix++, default containers)", Native: true, Run: nativeSpeedups(false)})
	register(Experiment{ID: "native8b", Title: "Native host re-run of Fig. 8b (RAMR vs Phoenix++, memory-intensive containers)", Native: true, Run: nativeSpeedups(true)})
	register(Experiment{ID: "tasksize", Title: "Task-size sensitivity, native (§III tuning discussion)", Native: true, Run: runTaskSize})
}

// hostConfig returns a runnable configuration for the current host with
// the given mapper/combiner split of the total worker budget, attaching
// the Options' trace collector and telemetry so measured runs are
// observable. Ratio probes (bestHostRatio) use bareHostConfig instead to
// keep throwaway runs out of the instrumentation.
func (o Options) hostConfig(ratio int) mr.Config {
	cfg := bareHostConfig(ratio)
	cfg.Trace = o.Trace
	cfg.Telemetry = o.Telemetry
	return cfg
}

// bareHostConfig is hostConfig without instrumentation.
func bareHostConfig(ratio int) mr.Config {
	cfg := mr.DefaultConfig()
	total := runtime.GOMAXPROCS(0)
	if total < 2 {
		total = 2
	}
	c := total / (ratio + 1)
	if c < 1 {
		c = 1
	}
	m := total - c
	if m < 1 {
		m = 1
	}
	cfg.Mappers = m
	cfg.Combiners = c
	return cfg
}

// timeJob runs a job n times on an engine and returns the mean and stddev
// of the wall-clock seconds.
func timeJob(job *workloads.Job, eng workloads.Engine, cfg mr.Config, n int) (mean, sd float64, err error) {
	if n < 1 {
		n = 1
	}
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		info, rerr := job.Run(eng, cfg)
		if rerr != nil {
			return 0, 0, rerr
		}
		samples = append(samples, info.Wall.Seconds())
	}
	return stats.Mean(samples), stats.StdDev(samples), nil
}

// runFig1 measures the per-phase breakdown of the six apps on the Phoenix
// engine (the paper profiles the de-facto suite to show map-combine
// dominates at 82.4% on average).
func runFig1(o Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"init%", "partition%", "map-combine%", "reduce%", "merge%"},
		Notes:   []string{"paper: map-combine averages 82.4% of run time across the suite"},
	}
	class := workloads.Large
	if o.Quick {
		class = workloads.Small
	}
	cfg := o.hostConfig(1)
	var mcSum float64
	for _, app := range suite {
		job, err := workloads.NewJob(app, workloads.HWL, class, containerFor(app, false), o.Seed)
		if err != nil {
			return nil, err
		}
		info, err := job.Run(workloads.EnginePhoenix, cfg)
		if err != nil {
			return nil, err
		}
		i, p, mc, r, m := info.Phases.Fractions()
		mcSum += mc
		rep.Rows = append(rep.Rows, Row{Label: app, Values: []float64{i * 100, p * 100, mc * 100, r * 100, m * 100}})
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG map-combine", Values: []float64{0, 0, mcSum / float64(len(suite)) * 100, 0, 0}})
	return rep, nil
}

// fig4Intensities is the combine-intensity sweep (iterations per combine
// invocation; proportional to the paper's instructions-per-task x-axis).
var fig4Intensities = []int{2, 8, 24, 64, 160}

// runFig4 reruns the paper's synthetic use-case natively: fixed
// CPU-intensive map, memory-intensive combine of growing intensity, under
// mapper/combiner ratios 3, 2 and 1, with Phoenix++ included.
func runFig4(o Options) (*Report, error) {
	rep := &Report{
		Columns: []string{},
		Notes: []string{
			"expected shape (paper Fig. 4): light combine -> ratio 3 best;",
			"moderate -> ratio 2; heavy -> ratio 1 (equal mappers and combiners)",
			"values are run-time seconds (mean of runs)",
		},
	}
	for _, it := range fig4Intensities {
		rep.Columns = append(rep.Columns, fmt.Sprintf("c=%d", it))
	}
	params := synth.DefaultParams()
	runs := o.Runs
	if runs == 0 {
		runs = 3
	}
	if o.Quick {
		params.Elements /= 8
		runs = 1
	}
	type series struct {
		label string
		run   func(p synth.Params) (float64, error)
	}
	var all []series
	for _, ratio := range []int{3, 2, 1} {
		ratio := ratio
		all = append(all, series{
			label: fmt.Sprintf("RAMR ratio=%d", ratio),
			run: func(p synth.Params) (float64, error) {
				job := synth.NewJob(p, o.Seed)
				m, _, err := timeJob(job, workloads.EngineRAMR, o.hostConfig(ratio), runs)
				return m, err
			},
		})
	}
	all = append(all, series{
		label: "Phoenix++",
		run: func(p synth.Params) (float64, error) {
			job := synth.NewJob(p, o.Seed)
			m, _, err := timeJob(job, workloads.EnginePhoenix, o.hostConfig(1), runs)
			return m, err
		},
	})
	for _, s := range all {
		var vals []float64
		for _, it := range fig4Intensities {
			p := params
			p.CombineKernel = synth.Kernel{Kind: synth.Memory, Intensity: it}
			v, err := s.run(p)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		rep.Rows = append(rep.Rows, Row{Label: s.label, Values: vals})
	}
	return rep, nil
}

// nativeSpeedups re-runs the Fig. 8 comparison with the real engines on
// the current host across the three Table I flavors.
func nativeSpeedups(stress bool) func(Options) (*Report, error) {
	return func(o Options) (*Report, error) {
		rep := &Report{
			Columns: []string{"Small", "Medium", "Large"},
			Notes: []string{
				"speedup = Phoenix++ mean time / RAMR mean time on this host",
				fmt.Sprintf("host: %d logical CPUs (GOMAXPROCS)", runtime.GOMAXPROCS(0)),
				"absolute factors depend on the host; the paper's platform-dependent factors are reproduced by fig8*/fig9*",
			},
		}
		runs := o.Runs
		if runs == 0 {
			runs = 5
		}
		classes := workloads.SizeClasses()
		if o.Quick {
			classes = classes[:1]
			runs = 2
		}
		for _, app := range suite {
			var vals []float64
			for _, class := range classes {
				job, err := workloads.NewJob(app, workloads.HWL, class, containerFor(app, stress), o.Seed)
				if err != nil {
					return nil, err
				}
				// Ratio tuned per app on the host (the paper tunes the
				// mapper/combiner ratio per application), then measured.
				ra, _, err := timeJob(job, workloads.EngineRAMR, o.hostConfig(bestHostRatio(job)), runs)
				if err != nil {
					return nil, err
				}
				ph, _, err := timeJob(job, workloads.EnginePhoenix, o.hostConfig(1), runs)
				if err != nil {
					return nil, err
				}
				vals = append(vals, ph/ra)
			}
			for len(vals) < 3 {
				vals = append(vals, 0)
			}
			rep.Rows = append(rep.Rows, Row{Label: app, Values: vals})
		}
		return rep, nil
	}
}

// bestHostRatio probes a small ratio grid on the host and returns the
// fastest, re-measuring briefly.
func bestHostRatio(job *workloads.Job) int {
	best, bestR := 0.0, 1
	for _, ratio := range []int{1, 2, 4} {
		start := time.Now()
		if _, err := job.Run(workloads.EngineRAMR, bareHostConfig(ratio)); err != nil {
			continue
		}
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best, bestR = el, ratio
		}
	}
	return bestR
}

// QueueDefaults re-exports the tuned queue capacity for reports.
const QueueDefaults = spsc.DefaultCapacity

// runTaskSize sweeps the splits-per-task knob on the native engine — the
// §III trade-off: "large task sizes result in substandard load balancing,
// while small task sizes result in non-negligible library overhead".
func runTaskSize(o Options) (*Report, error) {
	rep := &Report{
		Columns: []string{},
		Notes: []string{
			"run-time seconds per task size; expect a shallow U: overhead on the far left,",
			"load imbalance on the far right (visible on multicore hosts)",
		},
	}
	sizes := []int{1, 2, 4, 16, 64, 256}
	for _, ts := range sizes {
		rep.Columns = append(rep.Columns, fmt.Sprintf("task=%d", ts))
	}
	runs := o.Runs
	if runs == 0 {
		runs = 3
	}
	apps := []string{"LR", "KM"}
	if o.Quick {
		apps = apps[:1]
		runs = 1
	}
	for _, app := range apps {
		job, err := workloads.NewJob(app, workloads.PHI, workloads.Small, containerFor(app, false), o.Seed)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, ts := range sizes {
			cfg := o.hostConfig(1)
			cfg.TaskSize = ts
			m, _, err := timeJob(job, workloads.EngineRAMR, cfg, runs)
			if err != nil {
				return nil, err
			}
			vals = append(vals, m)
		}
		rep.Rows = append(rep.Rows, Row{Label: app, Values: vals})
	}
	return rep, nil
}
