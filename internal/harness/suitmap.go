package harness

import (
	"fmt"
	"sort"

	"ramr/internal/mr"
	"ramr/internal/perfmodel"
	"ramr/internal/simarch"
)

func init() {
	register(Experiment{
		ID:    "suitmap",
		Title: "Suitability metrics vs measured speedup (§IV-E closing claim)",
		Run:   runSuitMap,
	})
}

// runSuitMap tests the paper's closing claim — "the suitability analysis
// provided above is in good agreement with the reported, experimental
// results" — quantitatively: for each app it derives a suitability score
// from the Fig. 10 metrics (workload intensity gated by stall frequency,
// exactly the §IV-E line of thought) and correlates the per-app ranking
// with the Fig. 8a speedup ranking on the Haswell model.
func runSuitMap(Options) (*Report, error) {
	m := hwl.machine()
	rep := &Report{
		Columns: []string{"IPB", "MSPI+RSPI", "suitability", "speedup"},
		Notes: []string{
			"suitability = log(IPB) * (MSPI + RSPI): intensity only pays off when stalls leave room (§IV-E)",
		},
	}
	var rows []suitRow
	for _, app := range suite {
		kind := containerFor(app, false)
		mt, err := perfmodel.Suitability(m, app, kind)
		if err != nil {
			return nil, err
		}
		w, err := simarch.WorkloadFor(m, app, kind)
		if err != nil {
			return nil, err
		}
		ra, _, err := bestRAMRSim(m, w, hwl.threads, mr.PinRAMR, hwl.batch)
		if err != nil {
			return nil, err
		}
		half := hwl.threads / 2
		ph, err := simarch.SimulatePhoenix(m, w, simarch.Config{Mappers: half, Combiners: hwl.threads - half})
		if err != nil {
			return nil, err
		}
		stalls := mt.MSPI + mt.RSPI
		suit := logIPB(mt.IPB) * stalls
		sp := ph.Cycles / ra.Cycles
		rows = append(rows, suitRow{app, suit, sp})
		rep.Rows = append(rep.Rows, Row{Label: app, Values: []float64{mt.IPB, stalls, suit, sp}})
	}
	rho := spearman(rows)
	rep.Notes = append(rep.Notes, fmt.Sprintf("Spearman rank correlation (suitability vs speedup): %.2f", rho))
	rep.Rows = append(rep.Rows, Row{Label: "rank-corr", Values: []float64{0, 0, 0, rho}})
	return rep, nil
}

func logIPB(x float64) float64 {
	// ln(1+x) keeps the intensity term positive and compresses MM's
	// order-of-magnitude IPB lead over the rest.
	v := 0.0
	for t := 1 + x; t > 1.0001; t = t / 2.718281828459045 {
		v++
	}
	return v
}

// suitRow pairs one app's suitability score with its measured speedup.
type suitRow struct {
	app         string
	suitability float64
	speedup     float64
}

// spearman computes the Spearman rank correlation between the suitability
// and speedup columns.
func spearman(rows []suitRow) float64 {
	n := len(rows)
	if n < 2 {
		return 0
	}
	rank := func(key func(i int) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(idx[a]) < key(idx[b]) })
		r := make([]float64, n)
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	ra := rank(func(i int) float64 { return rows[i].suitability })
	rb := rank(func(i int) float64 { return rows[i].speedup })
	var d2 float64
	for i := 0; i < n; i++ {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}
