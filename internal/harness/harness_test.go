package harness

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Seed: 42, Quick: true, Runs: 1}
}

// TestAllExperimentsRun executes every registered experiment in quick mode
// and renders both output formats.
func TestAllExperimentsRun(t *testing.T) {
	if len(List()) < 15 {
		t.Fatalf("only %d experiments registered", len(List()))
	}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "native8a" || e.ID == "native8b" {
				// These re-measure the whole suite natively; the root
				// integration test covers them once.
				t.Skip("covered by the integration test")
			}
			rep, err := e.Run(quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %q, want %q", rep.ID, e.ID)
			}
			if rep.Title == "" {
				t.Fatal("missing title")
			}
			var text strings.Builder
			if err := rep.Render(&text); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(text.String(), e.ID) {
				t.Fatal("rendered text lacks the experiment id")
			}
			var csv strings.Builder
			if err := rep.RenderCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) > 0 {
				lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
				if len(lines) != len(rep.Rows)+1 {
					t.Fatalf("CSV has %d lines for %d rows", len(lines), len(rep.Rows))
				}
				header := strings.Split(lines[0], ",")
				if len(header) != len(rep.Columns)+1 {
					t.Fatalf("CSV header %v vs columns %v", header, rep.Columns)
				}
			}
		})
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	e, err := ByID("fig5")
	if err != nil || e.ID != "fig5" {
		t.Fatalf("ByID(fig5) = %+v, %v", e, err)
	}
}

func TestListSorted(t *testing.T) {
	l := List()
	for i := 1; i < len(l); i++ {
		if l[i-1].ID >= l[i].ID {
			t.Fatalf("list not sorted at %d: %s >= %s", i, l[i-1].ID, l[i].ID)
		}
	}
}

// TestFig5ReportShape checks the figure's headline property end-to-end:
// every per-app speedup row is >= 1 for both baselines.
func TestFig5ReportShape(t *testing.T) {
	e, err := ByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for i, v := range row.Values {
			if v < 1 {
				t.Errorf("%s column %d: RAMR pinning slower than baseline (%.3f)", row.Label, i, v)
			}
		}
	}
}

// TestFig1ReportShape: the map-combine phase dominates the suite.
func TestFig1ReportShape(t *testing.T) {
	e, err := ByID("fig1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Label != "AVG map-combine" {
		t.Fatalf("missing average row, got %q", last.Label)
	}
	if avg := last.Values[2]; avg < 50 {
		t.Errorf("map-combine should dominate the run time, got %.1f%%", avg)
	}
}

func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		0:       "0",
		1234567: "1.23e+06",
		123:     "123",
		1.5:     "1.500",
	} {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Seed == 0 || o.Runs == 0 {
		t.Fatalf("%+v", o)
	}
}

// TestSuitMapCorrelation pins the paper's closing §IV-E claim: the
// suitability ranking predicts the speedup ranking (positive rank
// correlation).
func TestSuitMapCorrelation(t *testing.T) {
	e, err := ByID("suitmap")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Label != "rank-corr" {
		t.Fatalf("missing correlation row: %q", last.Label)
	}
	if rho := last.Values[3]; rho < 0.5 {
		t.Errorf("suitability should predict speedups, rank correlation %.2f", rho)
	}
}

func TestSpearman(t *testing.T) {
	perfect := []suitRow{{"a", 1, 10}, {"b", 2, 20}, {"c", 3, 30}}
	if rho := spearman(perfect); rho != 1 {
		t.Fatalf("perfect agreement should be 1, got %v", rho)
	}
	inverse := []suitRow{{"a", 1, 30}, {"b", 2, 20}, {"c", 3, 10}}
	if rho := spearman(inverse); rho != -1 {
		t.Fatalf("perfect disagreement should be -1, got %v", rho)
	}
	if spearman(nil) != 0 {
		t.Fatal("degenerate input should be 0")
	}
}
