package harness

import (
	"fmt"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/perfmodel"
	"ramr/internal/simarch"
	"ramr/internal/topology"
	"ramr/internal/workloads"
)

// suite is the app order used across all figures.
var suite = []string{"HG", "KM", "LR", "MM", "PCA", "WC"}

// platformDef couples a topology preset with its full thread count and the
// tuned default batch size (§IV-C: Haswell profits from ~1000-element
// batches, the Phi from smaller ones).
type platformDef struct {
	name    string
	machine func() *topology.Machine
	threads int
	batch   int
}

var (
	hwl = platformDef{"HWL", topology.HaswellServer, 56, 1000}
	phi = platformDef{"PHI", topology.XeonPhi, 228, 200}
)

// containerFor returns each app's container in the default or
// memory-stressed configuration (§IV-D).
func containerFor(app string, stress bool) container.Kind {
	if stress {
		return workloads.StressContainer(app)
	}
	return workloads.DefaultContainer(app)
}

// ratios is the mapper/combiner ratio search space for auto-tuning; the
// paper tunes the ratio per application ("driven by the throughput of the
// map and combine functions").
var ratios = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// bestRAMRSim simulates RAMR across the ratio space and returns the best
// estimate plus the winning ratio.
func bestRAMRSim(m *topology.Machine, w simarch.Workload, threads int, pin mr.PinPolicy, batch int) (simarch.Estimate, int, error) {
	var best simarch.Estimate
	bestR := 0
	for _, r := range ratios {
		c := threads / (r + 1)
		if c < 1 {
			c = 1
		}
		cfg := simarch.Config{Mappers: threads - c, Combiners: c, Pin: pin, BatchSize: batch, QueueCap: 5000}
		est, err := simarch.SimulateRAMR(m, w, cfg)
		if err != nil {
			return simarch.Estimate{}, 0, err
		}
		if bestR == 0 || est.Cycles < best.Cycles {
			best, bestR = est, r
		}
	}
	return best, bestR, nil
}

func init() {
	register(Experiment{ID: "table1", Title: "Input sizes used in the experimental evaluation (Table I)", Run: runTable1})
	register(Experiment{ID: "fig3", Title: "Communication-aware pinning policy remap (Fig. 3)", Run: runFig3})
	register(Experiment{ID: "fig5", Title: "Pinning policy speedup vs round-robin and OS scheduler, Haswell (Fig. 5)", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "Batched consume speedup over batch=1 (Fig. 6)", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Batch size sensitivity, normalized run time (Fig. 7)", Run: runFig7})
	register(Experiment{ID: "fig8a", Title: "RAMR vs Phoenix++ speedup, Haswell, default containers (Fig. 8a)", Run: simSpeedups(hwl, false)})
	register(Experiment{ID: "fig8b", Title: "RAMR vs Phoenix++ speedup, Haswell, memory-intensive containers (Fig. 8b)", Run: simSpeedups(hwl, true)})
	register(Experiment{ID: "fig9a", Title: "RAMR vs Phoenix++ speedup, Xeon Phi, default containers (Fig. 9a)", Run: simSpeedups(phi, false)})
	register(Experiment{ID: "fig9b", Title: "RAMR vs Phoenix++ speedup, Xeon Phi, memory-intensive containers (Fig. 9b)", Run: simSpeedups(phi, true)})
	register(Experiment{ID: "fig10a", Title: "Suitability metrics IPB/MSPI/RSPI, default containers (Fig. 10a)", Run: suitability(false)})
	register(Experiment{ID: "fig10b", Title: "Suitability metrics IPB/MSPI/RSPI, memory-intensive containers (Fig. 10b)", Run: suitability(true)})
}

// runTable1 prints the paper's input-size grid alongside the scaled
// parameters this reproduction generates.
func runTable1(Options) (*Report, error) {
	rep := &Report{
		ID:      "table1",
		Title:   "Input sizes (paper -> scaled reproduction parameters)",
		Columns: []string{},
		Notes: []string{
			"paper sizes kept proportionally: every Large/Small ratio within a row is preserved",
			"scaled values are the generator parameters used by the native experiments",
		},
	}
	for _, p := range []workloads.Platform{workloads.HWL, workloads.PHI} {
		for _, c := range workloads.SizeClasses() {
			for _, in := range workloads.Inputs(p, c) {
				label := fmt.Sprintf("%s/%s/%s", in.App, p, c)
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%-14s paper=%-8s scaled=%s", label, in.Paper, paramString(in.App, in.Params)))
			}
		}
	}
	return rep, nil
}

func paramString(app string, pr workloads.Params) string {
	switch app {
	case "WC", "HG":
		return fmt.Sprintf("%d bytes", pr.Bytes)
	case "LR":
		return fmt.Sprintf("%d points", pr.Points)
	case "KM":
		return fmt.Sprintf("%d points x %d dims, k=%d", pr.Points, pr.Dims, pr.K)
	case "PCA":
		return fmt.Sprintf("%dx%d matrix", pr.N, pr.N)
	case "MM":
		return fmt.Sprintf("(%dx%d)x(%dx%d)", pr.RowsA, pr.Inner, pr.Inner, pr.ColsB)
	default:
		return "?"
	}
}

// runFig3 prints the thridtocpu remap and resulting mapper/combiner pairs
// on the paper's example machine.
func runFig3(Options) (*Report, error) {
	m := topology.Fig3Example()
	rep := &Report{
		ID:    "fig3",
		Title: "thridtocpu remap on 2 nodes x 4 cores x 2-way SMT",
	}
	order := m.CompactOrder()
	rep.Notes = append(rep.Notes, fmt.Sprintf("compact order (thread t -> cpu): %v", order))
	plan := core.BuildPlan(m, 8, 8, mr.PinRAMR)
	rep.Notes = append(rep.Notes, "1:1 ratio plan (combiner j with mapper j on one physical core):")
	for j := 0; j < 8; j++ {
		d := m.Distance(plan.CombinerCPU[j], plan.MapperCPU[j])
		rep.Notes = append(rep.Notes, fmt.Sprintf("  pair %d: combiner cpu %d + mapper cpu %d (distance %d, shared L%d)",
			j, plan.CombinerCPU[j], plan.MapperCPU[j], d, m.SharedCacheLevel(plan.CombinerCPU[j], plan.MapperCPU[j])))
	}
	return rep, nil
}

// runFig5 compares the three pinning policies on the Haswell model with
// default containers, reporting execution-time speedup of the RAMR policy.
func runFig5(Options) (*Report, error) {
	m := hwl.machine()
	rep := &Report{
		ID:      "fig5",
		Title:   "RAMR pinning speedup on Haswell (higher is better)",
		Columns: []string{"vs round-robin", "vs os-default"},
		Notes: []string{
			"paper: RAMR policy averages 2.28x vs RR and 2.04x vs the Linux scheduler;",
			"light apps (HG, LR) are the most communication-sensitive",
			"Xeon Phi equivalent: ring-shared L2 makes every placement near-equidistant (1-3% in the paper)",
		},
	}
	half := hwl.threads / 2
	for _, app := range suite {
		w, err := simarch.WorkloadFor(m, app, containerFor(app, false))
		if err != nil {
			return nil, err
		}
		times := map[mr.PinPolicy]float64{}
		for _, pin := range []mr.PinPolicy{mr.PinRAMR, mr.PinRoundRobin, mr.PinNone} {
			est, err := simarch.SimulateRAMR(m, w, simarch.Config{
				Mappers: half, Combiners: half, Pin: pin, BatchSize: hwl.batch, QueueCap: 5000,
			})
			if err != nil {
				return nil, err
			}
			times[pin] = est.Cycles
		}
		rep.Rows = append(rep.Rows, Row{Label: app, Values: []float64{
			times[mr.PinRoundRobin] / times[mr.PinRAMR],
			times[mr.PinNone] / times[mr.PinRAMR],
		}})
	}
	return rep, nil
}

// runFig6 reports the batched-consume speedup (tuned batch vs batch=1) on
// both platform models.
func runFig6(Options) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Title:   "Batched consume speedup over single-element consume",
		Columns: []string{"HWL", "PHI"},
		Notes: []string{
			"paper: up to 3.1x on Haswell and 11.4x on Xeon Phi;",
			"the in-order Phi core cannot hide per-consume bookkeeping, so batching buys more there",
		},
	}
	for _, app := range suite {
		var vals []float64
		for _, p := range []platformDef{hwl, phi} {
			m := p.machine()
			w, err := simarch.WorkloadFor(m, app, containerFor(app, false))
			if err != nil {
				return nil, err
			}
			half := p.threads / 2
			base := simarch.Config{Mappers: half, Combiners: half, Pin: mr.PinRAMR, QueueCap: 5000}
			cfg1 := base
			cfg1.BatchSize = 1
			one, err := simarch.SimulateRAMR(m, w, cfg1)
			if err != nil {
				return nil, err
			}
			cfgB := base
			cfgB.BatchSize = p.batch
			tuned, err := simarch.SimulateRAMR(m, w, cfgB)
			if err != nil {
				return nil, err
			}
			vals = append(vals, one.Cycles/tuned.Cycles)
		}
		rep.Rows = append(rep.Rows, Row{Label: app, Values: vals})
	}
	return rep, nil
}

// fig7Batches is the sweep grid of Fig. 7.
var fig7Batches = []int{1, 5, 20, 100, 500, 1000, 2000, 5000}

// runFig7 sweeps the batch size per app per platform, normalizing each
// curve to its first point as the paper plots it.
func runFig7(Options) (*Report, error) {
	rep := &Report{
		ID:    "fig7",
		Title: "Batch-size sensitivity (run time normalized to batch=1)",
		Notes: []string{
			"paper: Haswell apps profit up to ~1000-element batches;",
			"Xeon Phi prefers smaller batches (20-500) due to its much smaller per-thread cache share",
		},
	}
	for _, b := range fig7Batches {
		rep.Columns = append(rep.Columns, fmt.Sprintf("b=%d", b))
	}
	for _, p := range []platformDef{hwl, phi} {
		m := p.machine()
		half := p.threads / 2
		for _, app := range suite {
			w, err := simarch.WorkloadFor(m, app, containerFor(app, false))
			if err != nil {
				return nil, err
			}
			var vals []float64
			var base float64
			for i, b := range fig7Batches {
				est, err := simarch.SimulateRAMR(m, w, simarch.Config{
					Mappers: half, Combiners: half, Pin: mr.PinRAMR, BatchSize: b, QueueCap: 5000,
				})
				if err != nil {
					return nil, err
				}
				if i == 0 {
					base = est.Cycles
				}
				vals = append(vals, est.Cycles/base)
			}
			rep.Rows = append(rep.Rows, Row{Label: p.name + "/" + app, Values: vals})
		}
	}
	return rep, nil
}

// simSpeedups builds the Fig. 8/9 experiment: RAMR vs Phoenix++ speedup
// per app for the three Table I input flavors on one platform model.
func simSpeedups(p platformDef, stress bool) func(Options) (*Report, error) {
	return func(Options) (*Report, error) {
		m := p.machine()
		rep := &Report{
			Columns: []string{"Small", "Medium", "Large", "best-ratio"},
			Notes: []string{
				"speedup = Phoenix++ time / RAMR time (per-app auto-tuned mapper/combiner ratio)",
			},
		}
		if stress {
			rep.Notes = append(rep.Notes,
				"memory-intensive containers: fixed-size hash for HG/KM/LR/WC, regular hash for MM/PCA")
		}
		// Input flavors scale the element volume; the per-element costs
		// are size-independent in the model.
		sizeScale := map[string]float64{"Small": 0.25, "Medium": 0.5, "Large": 1}
		for _, app := range suite {
			w, err := simarch.WorkloadFor(m, app, containerFor(app, stress))
			if err != nil {
				return nil, err
			}
			var vals []float64
			var lastRatio int
			for _, size := range []string{"Small", "Medium", "Large"} {
				ws := w
				ws.Elements = int(float64(w.Elements) * sizeScale[size])
				ra, r, err := bestRAMRSim(m, ws, p.threads, mr.PinRAMR, p.batch)
				if err != nil {
					return nil, err
				}
				lastRatio = r
				half := p.threads / 2
				ph, err := simarch.SimulatePhoenix(m, ws, simarch.Config{Mappers: half, Combiners: p.threads - half})
				if err != nil {
					return nil, err
				}
				vals = append(vals, ph.Cycles/ra.Cycles)
			}
			vals = append(vals, float64(lastRatio))
			rep.Rows = append(rep.Rows, Row{Label: app, Values: vals})
		}
		return rep, nil
	}
}

// suitability builds the Fig. 10 experiment: the three metrics per app.
func suitability(stress bool) func(Options) (*Report, error) {
	return func(Options) (*Report, error) {
		m := hwl.machine()
		rep := &Report{
			Columns: []string{"IPB", "MSPI", "RSPI"},
			Notes: []string{
				"metrics concern the map/combine phase only and are meaningful comparatively (paper §IV-E)",
			},
		}
		for _, app := range suite {
			kind := containerFor(app, stress)
			mt, err := perfmodel.Suitability(m, app, kind)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, Row{
				Label:  fmt.Sprintf("%s(%s)", app, kind),
				Values: []float64{mt.IPB, mt.MSPI, mt.RSPI},
			})
		}
		return rep, nil
	}
}
