package mr

import "fmt"

// IterInfo summarizes a completed Iterate loop.
type IterInfo struct {
	// Iterations is how many runs executed.
	Iterations int
	// Converged reports whether the loop stopped because done returned
	// true (as opposed to exhausting maxIter).
	Converged bool
	// Phases accumulates phase times across all iterations.
	Phases PhaseTimes
}

// Iterate drives an iterative MapReduce algorithm (KMeans, PageRank-style
// computations): it calls run for each iteration, hands the result to
// done — which updates the algorithm's state (e.g. centroids) and decides
// convergence — and stops after convergence or maxIter iterations. Phase
// times accumulate across iterations so the paper-style breakdown remains
// available for the whole computation.
func Iterate[K comparable, R any](
	maxIter int,
	run func(iter int) (*Result[K, R], error),
	done func(iter int, res *Result[K, R]) bool,
) (*Result[K, R], IterInfo, error) {
	if maxIter < 1 {
		return nil, IterInfo{}, fmt.Errorf("mr: Iterate needs maxIter >= 1, got %d", maxIter)
	}
	if run == nil || done == nil {
		return nil, IterInfo{}, fmt.Errorf("mr: Iterate needs run and done callbacks")
	}
	var info IterInfo
	var last *Result[K, R]
	for iter := 0; iter < maxIter; iter++ {
		res, err := run(iter)
		if err != nil {
			return nil, info, fmt.Errorf("mr: iteration %d: %w", iter, err)
		}
		info.Iterations++
		info.Phases.Init += res.Phases.Init
		info.Phases.Partition += res.Phases.Partition
		info.Phases.MapCombine += res.Phases.MapCombine
		info.Phases.Reduce += res.Phases.Reduce
		info.Phases.Merge += res.Phases.Merge
		last = res
		if done(iter, res) {
			info.Converged = true
			break
		}
	}
	return last, info, nil
}
