package mr

import (
	"sort"
	"sync"
)

// psortThreshold is the slice size below which the parallel sort falls
// back to the standard library: goroutine fan-out only pays for itself on
// large outputs (WC emits tens of thousands of distinct keys, MM millions
// of cells).
const psortThreshold = 4096

// SortPairsParallel orders pairs by key using a parallel merge sort over
// `workers` goroutines; the merge phase of both engines calls it so a
// large final output doesn't serialize on one core. Falls back to the
// sequential sort for small outputs or a single worker. A nil less is a
// no-op, matching SortPairs.
func SortPairsParallel[K comparable, R any](pairs []Pair[K, R], less func(a, b K) bool, workers int) {
	if less == nil {
		return
	}
	if workers < 2 || len(pairs) < psortThreshold {
		SortPairs(pairs, less)
		return
	}
	if workers > len(pairs)/psortThreshold+1 {
		workers = len(pairs)/psortThreshold + 1
	}

	// Sort `workers` contiguous runs concurrently...
	n := len(pairs)
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s []Pair[K, R]) {
			defer wg.Done()
			sort.Slice(s, func(i, j int) bool { return less(s[i].Key, s[j].Key) })
		}(pairs[lo:hi])
	}
	wg.Wait()

	// ...then merge runs pairwise in parallel rounds.
	runs := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		if bounds[w] < bounds[w+1] {
			runs = append(runs, [2]int{bounds[w], bounds[w+1]})
		}
	}
	buf := make([]Pair[K, R], n)
	src, dst := pairs, buf
	for len(runs) > 1 {
		next := make([][2]int, 0, (len(runs)+1)/2)
		var mwg sync.WaitGroup
		for i := 0; i+1 < len(runs); i += 2 {
			a, b := runs[i], runs[i+1]
			next = append(next, [2]int{a[0], b[1]})
			mwg.Add(1)
			go func(a, b [2]int) {
				defer mwg.Done()
				mergeRuns(dst[a[0]:b[1]], src[a[0]:a[1]], src[b[0]:b[1]], less)
			}(a, b)
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			next = append(next, last)
			mwg.Add(1)
			go func(r [2]int) {
				defer mwg.Done()
				copy(dst[r[0]:r[1]], src[r[0]:r[1]])
			}(last)
		}
		mwg.Wait()
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// mergeRuns merges two sorted runs into out (len(out) == len(a)+len(b)).
func mergeRuns[K comparable, R any](out, a, b []Pair[K, R], less func(x, y K) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j].Key, a[i].Key) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
