package mr

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ramr/internal/container"
	"ramr/internal/spsc"
)

func validSpec() *Spec[int, int, int, int] {
	return &Spec[int, int, int, int]{
		Name:         "t",
		Splits:       []int{1, 2, 3},
		Map:          func(s int, emit func(int, int)) { emit(s, 1) },
		Combine:      func(a, b int) int { return a + b },
		Reduce:       IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewHash[int, int]() },
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Spec[int, int, int, int]){
		"no-map":       func(s *Spec[int, int, int, int]) { s.Map = nil },
		"no-combine":   func(s *Spec[int, int, int, int]) { s.Combine = nil },
		"no-reduce":    func(s *Spec[int, int, int, int]) { s.Reduce = nil },
		"no-container": func(s *Spec[int, int, int, int]) { s.NewContainer = nil },
	} {
		s := validSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a broken spec", name)
		}
	}
}

func TestPhaseTimes(t *testing.T) {
	p := PhaseTimes{
		Init: 1 * time.Second, Partition: 1 * time.Second,
		MapCombine: 6 * time.Second, Reduce: 1 * time.Second, Merge: 1 * time.Second,
	}
	if p.Total() != 10*time.Second {
		t.Fatalf("Total = %v", p.Total())
	}
	_, _, mc, _, _ := p.Fractions()
	if mc != 0.6 {
		t.Fatalf("map-combine fraction = %v", mc)
	}
	var zero PhaseTimes
	i, pa, mc2, r, m := zero.Fractions()
	if i+pa+mc2+r+m != 0 {
		t.Fatal("zero total should yield zero fractions")
	}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Mappers: 0, Ratio: 1, TaskSize: 1, QueueCapacity: 1, BatchSize: 1},
		{Mappers: 1, Combiners: -1, Ratio: 1, TaskSize: 1, QueueCapacity: 1, BatchSize: 1},
		{Mappers: 1, Ratio: 0, TaskSize: 1, QueueCapacity: 1, BatchSize: 1},
		{Mappers: 1, Ratio: 1, TaskSize: 0, QueueCapacity: 1, BatchSize: 1},
		{Mappers: 1, Ratio: 1, TaskSize: 1, QueueCapacity: 0, BatchSize: 1},
		{Mappers: 1, Ratio: 1, TaskSize: 1, QueueCapacity: 1, BatchSize: 0},
		{Mappers: 1, Ratio: 1, TaskSize: 1, QueueCapacity: 1, BatchSize: 1, EmitBatch: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNumCombiners(t *testing.T) {
	for _, tc := range []struct {
		mappers, combiners, ratio, want int
	}{
		{8, 0, 1, 8},
		{8, 0, 2, 4},
		{8, 0, 3, 3}, // ceil(8/3)
		{8, 0, 100, 1},
		{8, 5, 9, 5},   // explicit wins
		{8, 100, 1, 8}, // clamped to mappers
		{3, 0, 0, 3},   // ratio below 1 behaves as 1
	} {
		c := Config{Mappers: tc.mappers, Combiners: tc.combiners, Ratio: tc.ratio}
		if got := c.NumCombiners(); got != tc.want {
			t.Fatalf("NumCombiners(m=%d c=%d r=%d) = %d, want %d",
				tc.mappers, tc.combiners, tc.ratio, got, tc.want)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvMappers, "7")
	t.Setenv(EnvRatio, "3")
	t.Setenv(EnvTaskSize, "9")
	t.Setenv(EnvQueueCap, "123")
	t.Setenv(EnvBatchSize, "55")
	t.Setenv(EnvEmitBatch, "17")
	t.Setenv(EnvPin, "rr")
	t.Setenv(EnvWait, "busy")
	c, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if c.Mappers != 7 || c.Ratio != 3 || c.TaskSize != 9 || c.QueueCapacity != 123 || c.BatchSize != 55 || c.EmitBatch != 17 {
		t.Fatalf("env not applied: %+v", c)
	}
	if c.Pin != PinRoundRobin || c.Wait != spsc.WaitBusy {
		t.Fatalf("pin/wait not applied: %+v", c)
	}
}

func TestFromEnvRejectsGarbage(t *testing.T) {
	for env, val := range map[string]string{
		EnvMappers:   "zero",
		EnvRatio:     "0",
		EnvBatchSize: "-3",
		EnvEmitBatch: "0",
		EnvPin:       "sideways",
		EnvWait:      "spin",
	} {
		t.Run(env, func(t *testing.T) {
			t.Setenv(env, val)
			if _, err := FromEnv(); err == nil {
				t.Fatalf("%s=%s accepted", env, val)
			}
		})
	}
}

func TestParsePinPolicy(t *testing.T) {
	for s, want := range map[string]PinPolicy{
		"ramr": PinRAMR, "rr": PinRoundRobin, "round-robin": PinRoundRobin,
		"none": PinNone, "os": PinNone, "os-default": PinNone,
	} {
		got, err := ParsePinPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePinPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePinPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if PinRAMR.String() != "ramr" || PinPolicy(9).String() == "" {
		t.Fatal("PinPolicy String broken")
	}
}

func TestTasks(t *testing.T) {
	tasks := Tasks(10, 3)
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(tasks) != len(want) {
		t.Fatalf("tasks = %v", tasks)
	}
	for i := range want {
		if tasks[i] != want[i] {
			t.Fatalf("tasks[%d] = %v, want %v", i, tasks[i], want[i])
		}
	}
	if len(Tasks(0, 3)) != 0 {
		t.Fatal("no splits should yield no tasks")
	}
	if len(Tasks(5, 0)) != 5 {
		t.Fatal("task size < 1 should clamp to 1")
	}
}

// TestQuickTasksCoverExactly: every split index appears in exactly one
// task, contiguously.
func TestQuickTasksCoverExactly(t *testing.T) {
	f := func(n, size uint8) bool {
		tasks := Tasks(int(n), int(size))
		next := 0
		for _, tk := range tasks {
			if tk[0] != next || tk[1] <= tk[0] {
				return false
			}
			next = tk[1]
		}
		return next == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeContainers(t *testing.T) {
	sum := func(a, b int) int { return a + b }
	var cs []container.Container[int, int]
	for w := 0; w < 5; w++ {
		c := container.NewHash[int, int]()
		for k := 0; k < 10; k++ {
			c.Update(k, w+1, sum)
		}
		cs = append(cs, c)
	}
	merged, err := MergeContainers(cs, sum)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if v, _ := merged.Get(k); v != 15 { // 1+2+3+4+5
			t.Fatalf("key %d = %d, want 15", k, v)
		}
	}
	if empty, err := MergeContainers[int, int](nil, sum); empty != nil || err != nil {
		t.Fatal("empty merge should be nil, nil")
	}
}

func TestReduceAllAndSort(t *testing.T) {
	c := container.NewHash[int, int]()
	sum := func(a, b int) int { return a + b }
	for k := 0; k < 100; k++ {
		c.Update(k, k, sum)
	}
	pairs, err := ReduceAll(c, func(k, v int) int { return v * 2 }, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("%d pairs", len(pairs))
	}
	SortPairs(pairs, func(a, b int) bool { return a < b })
	for i, p := range pairs {
		if p.Key != i || p.Value != i*2 {
			t.Fatalf("pair %d = %+v", i, p)
		}
	}
	// nil less leaves order unspecified but must not panic.
	SortPairs(pairs, nil)
	// empty container
	if out, err := ReduceAll(container.NewHash[int, int](), func(k, v int) int { return v }, 4); out != nil || err != nil {
		t.Fatal("empty reduce should be nil, nil")
	}
}

func TestFirstError(t *testing.T) {
	var f FirstError
	if f.Get() != nil {
		t.Fatal("fresh FirstError not nil")
	}
	f.Set(nil) // no-op
	f.Setf("boom %d", 1)
	f.Setf("boom %d", 2)
	if got := f.Get(); got == nil || got.Error() != "boom 1" {
		t.Fatalf("Get = %v, want the first error", got)
	}
}

func TestReduceAllPanicReported(t *testing.T) {
	c := container.NewHash[int, int]()
	sum := func(a, b int) int { return a + b }
	for k := 0; k < 50; k++ {
		c.Update(k, k, sum)
	}
	_, err := ReduceAll(c, func(k, v int) int {
		if k == 31 {
			panic("reduce exploded")
		}
		return v
	}, 4)
	if err == nil {
		t.Fatal("reduce panic not reported")
	}
}

func TestMergeContainersPanicReported(t *testing.T) {
	a := container.NewHash[int, int]()
	b := container.NewHash[int, int]()
	sum := func(x, y int) int { return x + y }
	a.Update(1, 1, sum)
	b.Update(1, 1, sum)
	_, err := MergeContainers([]container.Container[int, int]{a, b},
		func(x, y int) int { panic("combine exploded") })
	if err == nil {
		t.Fatal("combine panic not reported")
	}
}

func TestQueueStatsAdd(t *testing.T) {
	var agg QueueStats
	agg.Add(spsc.Stats{Pushes: 10, FailedPush: 1, SpinRounds: 2, Pops: 10,
		EmptyPolls: 3, ShortPolls: 4, BatchCalls: 5, SleepMicros: 6})
	agg.Add(spsc.Stats{Pushes: 5, FailedPush: 1, Pops: 5, BatchCalls: 1})
	want := QueueStats{Pushes: 15, FailedPush: 2, SpinRounds: 2, Pops: 15,
		EmptyPolls: 3, ShortPolls: 4, BatchCalls: 6, SleepMicros: 6}
	if agg != want {
		t.Fatalf("Add: got %+v, want %+v", agg, want)
	}
}

func TestQueueStatsRates(t *testing.T) {
	var zero QueueStats
	if zero.FailedPushRate() != 0 || zero.ShortPollRate() != 0 {
		t.Fatal("zero stats must yield zero rates, not NaN")
	}
	q := QueueStats{Pushes: 75, FailedPush: 25, BatchCalls: 50, EmptyPolls: 30, ShortPolls: 20}
	if got := q.FailedPushRate(); got != 0.25 {
		t.Fatalf("FailedPushRate = %v, want 0.25", got)
	}
	if got := q.ShortPollRate(); got != 0.2 {
		t.Fatalf("ShortPollRate = %v, want 0.2", got)
	}
}

func TestQueueStatsString(t *testing.T) {
	q := QueueStats{Pushes: 75, FailedPush: 25, SpinRounds: 7, Pops: 75,
		BatchCalls: 50, EmptyPolls: 30, ShortPolls: 20, SleepMicros: 99}
	s := q.String()
	for _, want := range []string{"75 pushed", "25.0% failed", "7 spin rounds",
		"75 popped", "50 batch calls", "30 empty polls", "20 short polls", "99us slept"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSecondsByPhase(t *testing.T) {
	p := PhaseTimes{Init: time.Second, MapCombine: 2 * time.Second}
	m := p.SecondsByPhase()
	if m["init"] != 1 || m["map-combine"] != 2 || m["reduce"] != 0 {
		t.Fatalf("SecondsByPhase = %v", m)
	}
	if len(m) != 5 {
		t.Fatalf("expected all five phases, got %v", m)
	}
}
