package mr

import (
	"fmt"

	"ramr/internal/topology"
)

// StealPolicy selects how idle mappers obtain work once their locality
// group's task deque drains (§III task steering, extended with OS4M-style
// operation-level balancing).
type StealPolicy int

const (
	// StealChunked is the default: mappers take chunked task batches from
	// their own group's deque and, when it drains, steal half the
	// remaining batch from the nearest non-empty group in the machine's
	// distance-ranked victim order.
	StealChunked StealPolicy = iota
	// StealOff restricts every mapper to its own group's deque — the
	// static steering baseline. Groups without mappers are seeded zero
	// tasks, so the policy always terminates.
	StealOff
)

// String names the policy as accepted by RAMR_STEAL.
func (p StealPolicy) String() string {
	switch p {
	case StealChunked:
		return "chunked"
	case StealOff:
		return "off"
	default:
		return fmt.Sprintf("StealPolicy(%d)", int(p))
	}
}

// ParseStealPolicy maps a string (as accepted in RAMR_STEAL) to a policy.
func ParseStealPolicy(s string) (StealPolicy, error) {
	switch s {
	case "chunked", "on":
		return StealChunked, nil
	case "off", "none":
		return StealOff, nil
	default:
		return 0, fmt.Errorf("mr: unknown steal policy %q (want chunked|off)", s)
	}
}

// StealStats aggregates the map phase's task-steering counters across all
// mappers of one RAMR run, bucketed by topology.StealClass. "Local" takes
// are ordinary dequeues from the mapper's own group; "socket" and "remote"
// count true steals, split by whether a shared cache level still spans
// thief and victim. Counted at take time; RemoteExecuted is counted at
// task completion, so for an uncancelled run
// RemoteExecuted == SocketTasks + RemoteTasks exactly (a stolen batch is
// executed privately by the thief and never re-enqueued).
type StealStats struct {
	LocalBatches   uint64 `json:"local_batches"`
	LocalTasks     uint64 `json:"local_tasks"`
	SocketBatches  uint64 `json:"socket_batches"`
	SocketTasks    uint64 `json:"socket_tasks"`
	RemoteBatches  uint64 `json:"remote_batches"`
	RemoteTasks    uint64 `json:"remote_tasks"`
	RemoteExecuted uint64 `json:"remote_executed"`
}

// AddClass folds one take of n tasks in the given class into the stats.
func (s *StealStats) AddClass(c topology.StealClass, tasks uint64) {
	switch c {
	case topology.StealLocal:
		s.LocalBatches++
		s.LocalTasks += tasks
	case topology.StealSocket:
		s.SocketBatches++
		s.SocketTasks += tasks
	case topology.StealRemote:
		s.RemoteBatches++
		s.RemoteTasks += tasks
	}
}

// Add folds another run's (or worker's) stats into the aggregate.
func (s *StealStats) Add(o StealStats) {
	s.LocalBatches += o.LocalBatches
	s.LocalTasks += o.LocalTasks
	s.SocketBatches += o.SocketBatches
	s.SocketTasks += o.SocketTasks
	s.RemoteBatches += o.RemoteBatches
	s.RemoteTasks += o.RemoteTasks
	s.RemoteExecuted += o.RemoteExecuted
}

// StolenTasks returns the tasks moved out of their seeded group.
func (s StealStats) StolenTasks() uint64 { return s.SocketTasks + s.RemoteTasks }

// StolenBatches returns the number of successful steal operations.
func (s StealStats) StolenBatches() uint64 { return s.SocketBatches + s.RemoteBatches }

// TotalTasks returns all tasks taken, local and stolen.
func (s StealStats) TotalTasks() uint64 { return s.LocalTasks + s.StolenTasks() }

// StealRate returns the fraction of tasks that were stolen; zero when no
// tasks were taken.
func (s StealStats) StealRate() float64 {
	t := s.TotalTasks()
	if t == 0 {
		return 0
	}
	return float64(s.StolenTasks()) / float64(t)
}

// Balanced reports the conservation invariant: every stolen task was
// executed by its thief. It holds for every run that completes without
// cancellation or abort.
func (s StealStats) Balanced() bool { return s.StolenTasks() == s.RemoteExecuted }

// String renders the counters on one line for reports.
func (s StealStats) String() string {
	return fmt.Sprintf("%d local tasks (%d batches), %d socket-stolen (%d), %d remote-stolen (%d), %d executed remotely (%.1f%% steal rate)",
		s.LocalTasks, s.LocalBatches, s.SocketTasks, s.SocketBatches,
		s.RemoteTasks, s.RemoteBatches, s.RemoteExecuted, s.StealRate()*100)
}
