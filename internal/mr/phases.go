package mr

import (
	"sort"
	"sync"

	"ramr/internal/container"
)

// MergeContainers folds all containers into cs[0] with a parallel
// binary-tree merge and returns cs[0]. The slice is clobbered. Both
// engines use it between the map-combine and reduce phases; the input and
// merging phases are identical across engines, exactly as the paper keeps
// them ("the input partitioning and merging phases remain the same as in
// typical MR libraries").
// A panicking user Combine is reported as an error rather than crashing
// the merging goroutines.
func MergeContainers[K comparable, V any](cs []container.Container[K, V], combine container.Combine[V]) (container.Container[K, V], error) {
	if len(cs) == 0 {
		return nil, nil
	}
	var firstErr FirstError
	for stride := 1; stride < len(cs); stride *= 2 {
		var wg sync.WaitGroup
		for i := 0; i+stride < len(cs); i += 2 * stride {
			wg.Add(1)
			go func(dst, src container.Container[K, V]) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						firstErr.Set(&PanicError{Engine: "mr", Worker: "combine (merge)", Value: r})
					}
				}()
				container.Merge(dst, src, combine)
			}(cs[i], cs[i+stride])
		}
		wg.Wait()
	}
	if err := firstErr.Get(); err != nil {
		return nil, err
	}
	return cs[0], nil
}

// ReduceAll applies reduce to every key of the merged container using the
// given number of workers and returns the unordered result pairs. The
// reduce function may be called concurrently; a panic inside it is
// returned as an error.
func ReduceAll[K comparable, V, R any](merged container.Container[K, V], reduce func(K, V) R, workers int) ([]Pair[K, R], error) {
	if merged == nil || merged.Len() == 0 {
		return nil, nil
	}
	in := make([]Pair[K, V], 0, merged.Len())
	merged.Iterate(func(k K, v V) bool {
		in = append(in, Pair[K, V]{k, v})
		return true
	})
	out := make([]Pair[K, R], len(in))
	if workers < 1 {
		workers = 1
	}
	if workers > len(in) {
		workers = len(in)
	}
	var wg sync.WaitGroup
	var firstErr FirstError
	chunk := (len(in) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(in) {
			hi = len(in)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					firstErr.Set(&PanicError{Engine: "mr", Worker: "reduce", Value: r})
				}
			}()
			for i := lo; i < hi; i++ {
				out[i] = Pair[K, R]{in[i].Key, reduce(in[i].Key, in[i].Value)}
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := firstErr.Get(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortPairs orders pairs by key with less when non-nil.
func SortPairs[K comparable, R any](pairs []Pair[K, R], less func(a, b K) bool) {
	if less == nil {
		return
	}
	sort.Slice(pairs, func(i, j int) bool { return less(pairs[i].Key, pairs[j].Key) })
}

// Tasks groups the splits of a job into tasks of taskSize consecutive
// splits, returning [start,end) index ranges into the splits slice.
func Tasks(nSplits, taskSize int) [][2]int {
	if taskSize < 1 {
		taskSize = 1
	}
	tasks := make([][2]int, 0, (nSplits+taskSize-1)/taskSize)
	for lo := 0; lo < nSplits; lo += taskSize {
		hi := lo + taskSize
		if hi > nSplits {
			hi = nSplits
		}
		tasks = append(tasks, [2]int{lo, hi})
	}
	return tasks
}
