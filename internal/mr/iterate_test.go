package mr

import (
	"errors"
	"testing"
	"time"
)

func fakeResult(ms int) *Result[int, int] {
	return &Result[int, int]{Phases: PhaseTimes{MapCombine: time.Duration(ms) * time.Millisecond}}
}

func TestIterateConverges(t *testing.T) {
	res, info, err := Iterate(10,
		func(iter int) (*Result[int, int], error) { return fakeResult(iter + 1), nil },
		func(iter int, _ *Result[int, int]) bool { return iter == 3 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged || info.Iterations != 4 {
		t.Fatalf("%+v", info)
	}
	if res.Phases.MapCombine != 4*time.Millisecond {
		t.Fatalf("last result wrong: %v", res.Phases.MapCombine)
	}
	if info.Phases.MapCombine != (1+2+3+4)*time.Millisecond {
		t.Fatalf("phases not accumulated: %v", info.Phases.MapCombine)
	}
}

func TestIterateExhaustsMaxIter(t *testing.T) {
	_, info, err := Iterate(3,
		func(int) (*Result[int, int], error) { return fakeResult(1), nil },
		func(int, *Result[int, int]) bool { return false },
	)
	if err != nil {
		t.Fatal(err)
	}
	if info.Converged || info.Iterations != 3 {
		t.Fatalf("%+v", info)
	}
}

func TestIteratePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, info, err := Iterate(5,
		func(iter int) (*Result[int, int], error) {
			if iter == 2 {
				return nil, boom
			}
			return fakeResult(1), nil
		},
		func(int, *Result[int, int]) bool { return false },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if info.Iterations != 2 {
		t.Fatalf("%+v", info)
	}
}

func TestIterateValidation(t *testing.T) {
	if _, _, err := Iterate[int, int](0, nil, nil); err == nil {
		t.Fatal("maxIter 0 accepted")
	}
	if _, _, err := Iterate[int, int](1, nil, nil); err == nil {
		t.Fatal("nil callbacks accepted")
	}
}
