package mr

import "fmt"

// DefaultMaxPending is the default bound on splits that have been
// appended to a streaming pipeline but not yet fully mapped. Beyond it
// Append rejects with a backpressure error instead of queueing unbounded
// input — the streaming twin of the SPSC ring's fixed capacity (§III-A).
const DefaultMaxPending = 1024

// StreamSpec configures windowed streaming execution: with
// Config.Stream set, a job is not a one-shot batch but a resident
// pipeline (internal/stream) whose mappers accept input chunks arriving
// over time and whose combiners accumulate into per-window containers.
//
// Time is logical: every appended chunk carries an event-time tick (or
// is auto-assigned the next tick), windows cover half-open tick ranges,
// and the watermark — the highest tick seen minus Lateness — decides
// when a window can no longer receive data and is sealed into an
// immutable snapshot result. Logical ticks keep sealing deterministic
// under test and independent of wall-clock scheduling jitter.
type StreamSpec struct {
	// Window is the window width in event-time ticks. Window n covers
	// ticks [n*Slide, n*Slide+Window). Must be >= 1.
	Window int64
	// Slide is the window stride in ticks: 0 (or Window) selects
	// tumbling windows; a smaller value selects sliding windows and
	// must divide Window evenly (the pipeline slices state into
	// Slide-sized panes shared by the overlapping windows).
	Slide int64
	// Lateness is how many ticks behind the maximum observed tick the
	// watermark trails. 0 seals a window as soon as a tick past its end
	// arrives; larger values admit out-of-order chunks that far back.
	// Chunks older than the watermark are rejected, never silently
	// dropped.
	Lateness int64
	// MaxPending bounds appended-but-unmapped splits; Append rejects
	// with a backpressure error beyond it. 0 selects DefaultMaxPending.
	// A single chunk carrying more than MaxPending splits can never be
	// admitted, so producers must keep chunks under the bound.
	MaxPending int
}

// Resolved returns the spec with defaults filled in: Slide 0 becomes
// Window (tumbling), MaxPending 0 becomes DefaultMaxPending.
func (s StreamSpec) Resolved() StreamSpec {
	if s.Slide == 0 {
		s.Slide = s.Window
	}
	if s.MaxPending == 0 {
		s.MaxPending = DefaultMaxPending
	}
	return s
}

// PanesPerWindow returns how many Slide-sized panes one window spans
// (1 for tumbling windows). Call on a Resolved spec.
func (s StreamSpec) PanesPerWindow() int64 {
	if s.Slide <= 0 {
		return 1
	}
	return s.Window / s.Slide
}

// Validate reports the first problem with the spec. A nil spec is valid
// (batch execution).
func (s *StreamSpec) Validate() error {
	if s == nil {
		return nil
	}
	r := s.Resolved()
	switch {
	case r.Window < 1:
		return fmt.Errorf("mr: stream Window must be >= 1 tick, got %d", r.Window)
	case r.Slide < 1 || r.Slide > r.Window:
		return fmt.Errorf("mr: stream Slide must be in [1, Window], got %d", r.Slide)
	case r.Window%r.Slide != 0:
		return fmt.Errorf("mr: stream Slide %d must divide Window %d evenly", r.Slide, r.Window)
	case r.Lateness < 0:
		return fmt.Errorf("mr: stream Lateness must be >= 0, got %d", r.Lateness)
	case r.MaxPending < 1:
		return fmt.Errorf("mr: stream MaxPending must be >= 1, got %d", r.MaxPending)
	}
	return nil
}
