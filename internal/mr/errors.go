package mr

import (
	"fmt"
	"sync"
)

// PanicError is the error a run returns when user code (Map, Combine,
// Reduce) — or an injected fault — panics inside a worker. Engines recover
// the panic, wrap it and report it through FirstError, so a doomed run
// surfaces an ordinary error instead of killing the process. Tests match
// it with errors.As rather than grepping the message.
type PanicError struct {
	// Engine names the reporting component ("ramr", "phoenix", "mr").
	Engine string
	// Worker identifies the panicking worker ("map worker 3", "reduce").
	Worker string
	// Value is the recovered panic value.
	Value any
}

// Error renders the conventional "<engine>: <worker> panicked: <value>"
// message the pre-typed error paths produced.
func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: %s panicked: %v", e.Engine, e.Worker, e.Value)
}

// FirstError records the first error reported by any concurrent worker;
// later reports are dropped. Both engines use it to surface user-code
// panics (in Map, Combine or Reduce) as ordinary errors instead of
// deadlocking the pipeline or killing the process.
type FirstError struct {
	mu  sync.Mutex
	err error
}

// Set records err if it is the first non-nil report.
func (f *FirstError) Set(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Setf formats and records an error.
func (f *FirstError) Setf(format string, args ...any) {
	f.Set(fmt.Errorf(format, args...))
}

// Get returns the recorded error, if any.
func (f *FirstError) Get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
