package mr

import (
	"fmt"
	"sync"
)

// FirstError records the first error reported by any concurrent worker;
// later reports are dropped. Both engines use it to surface user-code
// panics (in Map, Combine or Reduce) as ordinary errors instead of
// deadlocking the pipeline or killing the process.
type FirstError struct {
	mu  sync.Mutex
	err error
}

// Set records err if it is the first non-nil report.
func (f *FirstError) Set(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Setf formats and records an error.
func (f *FirstError) Setf(format string, args ...any) {
	f.Set(fmt.Errorf(format, args...))
}

// Get returns the recorded error, if any.
func (f *FirstError) Get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
