package mr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestSortPairsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 100, psortThreshold - 1, psortThreshold, 3*psortThreshold + 17, 50_000} {
		for _, workers := range []int{1, 2, 3, 8} {
			a := make([]Pair[int, int], n)
			for i := range a {
				a[i] = Pair[int, int]{Key: rng.Intn(n/2 + 1), Value: i}
			}
			b := append([]Pair[int, int](nil), a...)
			SortPairs(a, intLess)
			SortPairsParallel(b, intLess, workers)
			for i := range a {
				if a[i].Key != b[i].Key {
					t.Fatalf("n=%d w=%d: key order differs at %d: %d vs %d", n, workers, i, a[i].Key, b[i].Key)
				}
			}
			if !sort.SliceIsSorted(b, func(i, j int) bool { return b[i].Key < b[j].Key }) {
				t.Fatalf("n=%d w=%d: not sorted", n, workers)
			}
		}
	}
}

func TestSortPairsParallelNilLess(t *testing.T) {
	pairs := []Pair[int, int]{{3, 0}, {1, 0}}
	SortPairsParallel(pairs, nil, 4)
	if pairs[0].Key != 3 {
		t.Fatal("nil less should be a no-op")
	}
}

// TestQuickParallelSortIsPermutation: the parallel sort is a sorted
// permutation of its input for arbitrary key multisets.
func TestQuickParallelSortIsPermutation(t *testing.T) {
	f := func(keys []uint16, workers uint8) bool {
		pairs := make([]Pair[uint16, int], len(keys))
		countIn := map[uint16]int{}
		for i, k := range keys {
			pairs[i] = Pair[uint16, int]{Key: k}
			countIn[k]++
		}
		SortPairsParallel(pairs, func(a, b uint16) bool { return a < b }, int(workers%8)+1)
		countOut := map[uint16]int{}
		for i, p := range pairs {
			countOut[p.Key]++
			if i > 0 && pairs[i-1].Key > p.Key {
				return false
			}
		}
		if len(countIn) != len(countOut) {
			return false
		}
		for k, n := range countIn {
			if countOut[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRuns(t *testing.T) {
	a := []Pair[int, int]{{1, 0}, {3, 0}, {5, 0}}
	b := []Pair[int, int]{{2, 0}, {3, 1}, {9, 0}}
	out := make([]Pair[int, int], 6)
	mergeRuns(out, a, b, intLess)
	want := []int{1, 2, 3, 3, 5, 9}
	for i, p := range out {
		if p.Key != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, p.Key, want[i])
		}
	}
	// Stability across runs: equal keys keep a-before-b order.
	if out[2].Value != 0 || out[3].Value != 1 {
		t.Fatal("merge not stable for equal keys")
	}
}
