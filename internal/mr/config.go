package mr

import (
	"fmt"
	"os"
	"runtime"
	"strconv"

	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/trace"
	"ramr/internal/tuner"
)

// PinPolicy selects how worker threads are placed on logical CPUs,
// matching the three policies compared in §IV-B.
type PinPolicy int

const (
	// PinRAMR is the contention-aware policy: each combiner is pinned
	// adjacent to its assigned mappers (same physical core / closest
	// shared cache), using the topology's compact thread order.
	PinRAMR PinPolicy = iota
	// PinRoundRobin pins threads to cores round-robin across sockets
	// without considering their role — the paper's "RR" baseline.
	PinRoundRobin
	// PinNone leaves placement to the OS scheduler (thread migrations
	// allowed) — the paper's "Linux scheduler" baseline.
	PinNone
)

// String names the policy as in the paper's figures.
func (p PinPolicy) String() string {
	switch p {
	case PinRAMR:
		return "ramr"
	case PinRoundRobin:
		return "round-robin"
	case PinNone:
		return "os-default"
	default:
		return fmt.Sprintf("PinPolicy(%d)", int(p))
	}
}

// ParsePinPolicy maps a string (as accepted in RAMR_PIN) to a policy.
func ParsePinPolicy(s string) (PinPolicy, error) {
	switch s {
	case "ramr":
		return PinRAMR, nil
	case "rr", "round-robin":
		return PinRoundRobin, nil
	case "none", "os", "os-default":
		return PinNone, nil
	default:
		return 0, fmt.Errorf("mr: unknown pin policy %q (want ramr|rr|none)", s)
	}
}

// Config carries every tuning knob of the runtimes. The zero value is not
// runnable; start from DefaultConfig (or FromEnv) and override fields.
type Config struct {
	// Mappers is the number of map workers (also the reduce/merge
	// worker count, as both pools reuse the general-purpose pool).
	Mappers int
	// Combiners is the number of combine workers (RAMR only). When 0,
	// it is derived as Mappers/Ratio.
	Combiners int
	// Ratio is the mapper-to-combiner ratio used when Combiners is 0.
	// §III-B: "according to the ratio of mapper-to-combiner threads, a
	// set of mapper queues is assigned to each combiner".
	Ratio int
	// TaskSize is the number of input splits grouped into one map task.
	TaskSize int
	// QueueCapacity is the per-mapper SPSC ring capacity (§III-A tuned
	// value: 5000).
	QueueCapacity int
	// BatchSize is the combiner's batched-consume block size (§IV-C).
	BatchSize int
	// EmitBatch is the mapper-side emit slab size: a mapper buffers this
	// many emitted pairs locally and publishes them with one PushBatch,
	// so the queue's shared tail index is touched once per slab instead
	// of once per pair. 1 disables producer-side batching (each emit is
	// a single Push — the pre-batching behaviour, kept for ablation);
	// 0 selects DefaultEmitBatch. Like BatchSize, the engine clamps it
	// to the queue capacity.
	EmitBatch int
	// Wait selects the producer's full-queue policy.
	Wait spsc.WaitPolicy
	// Pin selects the thread placement policy.
	Pin PinPolicy
	// Steal selects the map-phase task steering policy (RAMR only). The
	// zero value StealChunked enables distance-ordered chunked work
	// stealing; StealOff is the static strictly-local baseline.
	Steal StealPolicy
	// Machine describes the topology used for pinning decisions. When
	// nil, the host is detected at run time.
	Machine *topology.Machine
	// CPUGrant, when non-empty, restricts the RAMR run to this set of
	// logical CPU ids instead of assuming it owns the whole machine: the
	// pinning plan is laid out over exactly these CPUs (in the machine's
	// compact order, so the contention-aware placement stays valid inside
	// the grant) and the elastic combiner pool treats the grant as a hard
	// ceiling on its worker count. The multi-job scheduler
	// (internal/sched) hands each admitted job a disjoint grant so
	// concurrent runs never contend for the same logical CPUs. Ids must
	// be unique, non-negative, and valid for the resolved Machine. Empty
	// means the historical single-job behaviour: the full machine. The
	// Phoenix++ baseline engine does not pin and ignores the field beyond
	// validation.
	CPUGrant []int
	// Trace, when non-nil, records per-worker execution timelines
	// (task spans for mappers and fused workers, batch spans for
	// combiners) for Chrome-trace export. Tracing costs one slice
	// append per span on the hot path.
	Trace *trace.Collector
	// Telemetry, when non-nil, enables the live observability layer:
	// per-worker counters, a background sampler recording every SPSC
	// ring's occupancy and each worker's state, and Prometheus/JSON
	// export. The engines register their queues and workers at run start
	// and attach the resulting report to Result.Telemetry. Like Hooks,
	// the field is nil-checked once per worker outside the hot loops;
	// with it nil the engines pay nothing, with it set the hot path pays
	// only local (per-worker, uncontended) atomic increments amortized
	// over slabs, batches and tasks.
	Telemetry *telemetry.Telemetry
	// Tuner, when non-nil, enables the adaptive runtime (RAMR engine
	// only): the combiner pool becomes elastic and a deterministic
	// feedback controller adjusts the pool size, the consume batch size
	// and the producer sleep backoff online from telemetry deltas, one
	// decision per epoch. The decision log is attached to
	// Result.TunerReport. nil keeps today's fully static behaviour; the
	// engine then pays only nil checks. When Telemetry is nil the engine
	// runs a private sampler for the controller's clock and signals
	// without attaching a report.
	Tuner *tuner.Config
	// Hooks is the test-only fault-injection surface (see Hooks). It
	// must be nil outside tests; engines never touch a nil Hooks on the
	// hot path.
	Hooks *Hooks
	// Stream, when non-nil, marks the configuration as a resident
	// streaming pipeline (internal/stream): input arrives as chunks
	// over time and results are emitted per sealed window instead of
	// once at the end. The one-shot batch engines reject a Config with
	// Stream set — nil keeps batch behaviour bit-for-bit.
	Stream *StreamSpec
}

// Default knob values; the paper's tuned settings where it states them.
const (
	DefaultRatio     = 1
	DefaultTaskSize  = 4
	DefaultBatchSize = 1000
	DefaultEmitBatch = 64
)

// DefaultConfig returns a runnable configuration for the current host:
// one mapper per physical core's worth of parallelism split between the
// two pools, paper-tuned queue capacity and batch size, RAMR pinning.
func DefaultConfig() Config {
	n := runtime.GOMAXPROCS(0)
	mappers := n / 2
	if mappers < 1 {
		mappers = 1
	}
	return Config{
		Mappers:       mappers,
		Ratio:         DefaultRatio,
		TaskSize:      DefaultTaskSize,
		QueueCapacity: spsc.DefaultCapacity,
		BatchSize:     DefaultBatchSize,
		EmitBatch:     DefaultEmitBatch,
		Wait:          spsc.WaitSleep,
		Pin:           PinRAMR,
	}
}

// Environment variable names; §III: "the task size can be finely tuned via
// a set of environmental variables" — we extend the same mechanism to
// every knob.
const (
	EnvMappers   = "RAMR_MAPPERS"
	EnvCombiners = "RAMR_COMBINERS"
	EnvRatio     = "RAMR_RATIO"
	EnvTaskSize  = "RAMR_TASK_SIZE"
	EnvQueueCap  = "RAMR_QUEUE_CAP"
	EnvBatchSize = "RAMR_BATCH_SIZE"
	EnvEmitBatch = "RAMR_EMIT_BATCH"
	EnvPin       = "RAMR_PIN"
	EnvWait      = "RAMR_WAIT"
	EnvSteal     = "RAMR_STEAL"
)

// FromEnv returns DefaultConfig overridden by any RAMR_* environment
// variables that are set. Malformed values are reported, not ignored.
func FromEnv() (Config, error) {
	c := DefaultConfig()
	for _, it := range []struct {
		env string
		dst *int
		min int
	}{
		{EnvMappers, &c.Mappers, 1},
		{EnvCombiners, &c.Combiners, 1},
		{EnvRatio, &c.Ratio, 1},
		{EnvTaskSize, &c.TaskSize, 1},
		{EnvQueueCap, &c.QueueCapacity, 1},
		{EnvBatchSize, &c.BatchSize, 1},
		{EnvEmitBatch, &c.EmitBatch, 1},
	} {
		s, ok := os.LookupEnv(it.env)
		if !ok {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < it.min {
			return Config{}, fmt.Errorf("mr: %s=%q: want integer >= %d", it.env, s, it.min)
		}
		*it.dst = v
	}
	if s, ok := os.LookupEnv(EnvPin); ok {
		p, err := ParsePinPolicy(s)
		if err != nil {
			return Config{}, err
		}
		c.Pin = p
	}
	if s, ok := os.LookupEnv(EnvSteal); ok {
		p, err := ParseStealPolicy(s)
		if err != nil {
			return Config{}, err
		}
		c.Steal = p
	}
	if s, ok := os.LookupEnv(EnvWait); ok {
		switch s {
		case "sleep":
			c.Wait = spsc.WaitSleep
		case "busy", "busy-wait":
			c.Wait = spsc.WaitBusy
		default:
			return Config{}, fmt.Errorf("mr: %s=%q: want sleep|busy", EnvWait, s)
		}
	}
	return c, nil
}

// NumCombiners resolves the effective combiner count: the explicit value
// when set, else ceil(Mappers/Ratio), never below 1 or above Mappers.
func (c Config) NumCombiners() int {
	if c.Combiners > 0 {
		if c.Combiners > c.Mappers {
			return c.Mappers
		}
		return c.Combiners
	}
	r := c.Ratio
	if r < 1 {
		r = 1
	}
	n := (c.Mappers + r - 1) / r
	if n < 1 {
		n = 1
	}
	return n
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Mappers < 1:
		return fmt.Errorf("mr: Mappers must be >= 1, got %d", c.Mappers)
	case c.Combiners < 0:
		return fmt.Errorf("mr: Combiners must be >= 0, got %d", c.Combiners)
	case c.Combiners == 0 && c.Ratio < 1:
		return fmt.Errorf("mr: Ratio must be >= 1 when Combiners is derived, got %d", c.Ratio)
	case c.TaskSize < 1:
		return fmt.Errorf("mr: TaskSize must be >= 1, got %d", c.TaskSize)
	case c.QueueCapacity < 1:
		return fmt.Errorf("mr: QueueCapacity must be >= 1, got %d", c.QueueCapacity)
	case c.BatchSize < 1:
		return fmt.Errorf("mr: BatchSize must be >= 1, got %d", c.BatchSize)
	case c.EmitBatch < 0:
		return fmt.Errorf("mr: EmitBatch must be >= 0 (0 selects the default), got %d", c.EmitBatch)
	case c.Steal != StealChunked && c.Steal != StealOff:
		return fmt.Errorf("mr: unknown Steal policy %d", int(c.Steal))
	}
	seen := make(map[int]bool, len(c.CPUGrant))
	for _, cpu := range c.CPUGrant {
		if cpu < 0 {
			return fmt.Errorf("mr: CPUGrant contains negative cpu id %d", cpu)
		}
		if seen[cpu] {
			return fmt.Errorf("mr: CPUGrant contains duplicate cpu id %d", cpu)
		}
		seen[cpu] = true
	}
	if err := c.Tuner.Validate(); err != nil {
		return err
	}
	if err := c.Stream.Validate(); err != nil {
		return err
	}
	return nil
}

// ApplyGrant configures the run for an externally granted CPU set: the
// grant becomes CPUGrant and the worker counts are resized so the whole
// pool fits on it — combiners get roughly 1/(Ratio+1) of the grant (the
// mapper-to-combiner ratio of §III-B applied to a partial machine), the
// mappers the rest. A one-CPU grant still runs the minimal 1+1 pipeline
// (one mapper, one combiner sharing the CPU). An empty grant is a no-op.
func (c *Config) ApplyGrant(cpus []int) {
	n := len(cpus)
	if n == 0 {
		return
	}
	c.CPUGrant = append([]int(nil), cpus...)
	r := c.Ratio
	if r < 1 {
		r = 1
	}
	combiners := n / (r + 1)
	if combiners < 1 {
		combiners = 1
	}
	mappers := n - combiners
	if mappers < 1 {
		mappers = 1
	}
	c.Mappers = mappers
	c.Combiners = combiners
}

// ApplyProfile overwrites the searchable knobs (ratio, queue capacity,
// batch size) with a saved offline-search profile, the warm start
// ramrtune emits. The explicit Combiners override is cleared so the
// profile's ratio takes effect. The rest of the Config is untouched.
func (c *Config) ApplyProfile(p *tuner.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.Ratio = p.Best.Ratio
	c.Combiners = 0
	c.QueueCapacity = p.Best.QueueCapacity
	c.BatchSize = p.Best.BatchSize
	return nil
}

// ResolveMachine returns the configured machine or detects the host.
func (c Config) ResolveMachine() *topology.Machine {
	if c.Machine != nil {
		return c.Machine
	}
	return topology.Detect()
}
