package mr

import "ramr/internal/spsc"

// Hooks is the test-only instrumentation surface both engines expose for
// internal/faultinject: fixed lifecycle points where the harness can
// panic, delay, or cancel to drive the slow paths (worker failure,
// mid-run cancellation, drain) deterministically.
//
// This is not a public extension API. Config.Hooks is nil in production
// and must stay nil: engines capture each callback once per worker before
// entering the hot loop, so an unset hook costs nothing per element, but
// a set hook runs inside the pipeline's innermost paths.
//
// A panic raised from a worker-scoped hook is recovered exactly like a
// user-code panic (it surfaces through FirstError as a PanicError), which
// is precisely what the fault-injection harness relies on.
type Hooks struct {
	// MapTask runs before a map worker executes each task.
	MapTask func(worker int)
	// MapEmit runs before each emitted pair is staged or pushed.
	MapEmit func(worker int)
	// CombineBatch runs before a combiner folds one consumed segment
	// into its container (RAMR engine only).
	CombineBatch func(worker int)
	// CombineDrain runs once per combiner when it first observes a
	// closed queue and enters the force-drain tail (RAMR engine only).
	CombineDrain func(worker int)
	// PreReduce runs on the coordinating goroutine after the
	// map-combine barrier, before the run's error checks — a
	// cancellation raised here is still honored.
	PreReduce func()
	// OnAbort runs once, when the first worker trips the abort flag.
	OnAbort func()
	// QueueObserver runs after the pipeline has shut down, once per
	// mapper queue, error or not (RAMR engine only). It is the
	// invariant checker's window into drain state and conservation
	// counters for runs that die mid-pipeline and return no Result.
	QueueObserver func(queue int, drained bool, stats spsc.Stats)
}

// FirePreReduce invokes the PreReduce hook, tolerating a nil receiver so
// engines can call it unconditionally off the hot path.
func (h *Hooks) FirePreReduce() {
	if h != nil && h.PreReduce != nil {
		h.PreReduce()
	}
}

// FireOnAbort invokes the OnAbort hook, tolerating a nil receiver.
func (h *Hooks) FireOnAbort() {
	if h != nil && h.OnAbort != nil {
		h.OnAbort()
	}
}
