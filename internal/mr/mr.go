// Package mr defines the MapReduce job model shared by the two execution
// engines in this repository: the Phoenix++-style baseline
// (internal/phoenix) and the decoupled RAMR runtime (internal/core).
//
// The workflow follows the shared-memory MapReduce lineage the paper builds
// on (Phoenix → Phoenix Rebirth → Phoenix++): the input is partitioned into
// splits, map tasks emit intermediate key-value pairs, a combine function
// folds pairs with equal keys into per-worker containers, a reduce function
// finalizes each key, and a merge produces the ordered output. The two
// engines differ only in *where* the combine runs — fused into the mapper
// (Phoenix++) or decoupled onto concurrent combiner threads fed by SPSC
// queues (RAMR).
package mr

import (
	"errors"
	"fmt"
	"time"

	"ramr/internal/container"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/tuner"
)

// Pair is one key-value element of a job's final output.
type Pair[K comparable, R any] struct {
	Key   K
	Value R
}

// Spec is a complete MapReduce job description.
//
// Type parameters: S is the split (task input) type, K/V the intermediate
// key and value types, R the final per-key result type.
type Spec[S any, K comparable, V, R any] struct {
	// Name labels the job in reports and profiles.
	Name string

	// Splits is the pre-partitioned input: one element per split, as
	// produced by the user's partitioning function. TaskSize splits are
	// grouped into one map task (§III: "the task size defines the
	// number of splits that correspond to a task").
	Splits []S

	// Map processes one split, emitting intermediate pairs.
	Map func(split S, emit func(K, V))

	// Combine folds two intermediate values for the same key. It must
	// be associative and is applied both inside containers and when
	// per-worker containers merge.
	Combine container.Combine[V]

	// Reduce finalizes one key's combined value. When nil, V must be
	// assignable to R via the identity (the engines require a non-nil
	// Reduce; use IdentityReduce for pass-through jobs).
	Reduce func(k K, acc V) R

	// NewContainer allocates one intermediate container. Each worker
	// (Phoenix) or combiner (RAMR) gets a private instance.
	NewContainer container.Factory[K, V]

	// Less orders the final output by key when non-nil; otherwise the
	// output order is unspecified.
	Less func(a, b K) bool
}

// Validate reports the first structural problem with the spec.
func (s *Spec[S, K, V, R]) Validate() error {
	switch {
	case s.Map == nil:
		return errors.New("mr: spec has no Map function")
	case s.Combine == nil:
		return errors.New("mr: spec has no Combine function")
	case s.Reduce == nil:
		return errors.New("mr: spec has no Reduce function")
	case s.NewContainer == nil:
		return errors.New("mr: spec has no container factory")
	}
	return nil
}

// IdentityReduce returns a Reduce that passes the combined value through.
func IdentityReduce[K comparable, V any]() func(K, V) V {
	return func(_ K, v V) V { return v }
}

// PhaseTimes records wall-clock duration per MapReduce phase, the
// measurement behind the paper's Fig. 1 run-time breakdown.
type PhaseTimes struct {
	Init       time.Duration
	Partition  time.Duration
	MapCombine time.Duration
	Reduce     time.Duration
	Merge      time.Duration
}

// Total returns the sum over all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Init + p.Partition + p.MapCombine + p.Reduce + p.Merge
}

// Fractions returns each phase as a fraction of the total (zeros when the
// total is zero).
func (p PhaseTimes) Fractions() (init, partition, mapCombine, reduce, merge float64) {
	t := p.Total().Seconds()
	if t == 0 {
		return
	}
	return p.Init.Seconds() / t, p.Partition.Seconds() / t,
		p.MapCombine.Seconds() / t, p.Reduce.Seconds() / t, p.Merge.Seconds() / t
}

// SecondsByPhase returns the profile as a name→seconds map, the shape the
// telemetry report carries.
func (p PhaseTimes) SecondsByPhase() map[string]float64 {
	return map[string]float64{
		"init":        p.Init.Seconds(),
		"partition":   p.Partition.Seconds(),
		"map-combine": p.MapCombine.Seconds(),
		"reduce":      p.Reduce.Seconds(),
		"merge":       p.Merge.Seconds(),
	}
}

// String renders the breakdown as percentages.
func (p PhaseTimes) String() string {
	i, pa, mc, r, m := p.Fractions()
	return fmt.Sprintf("init %.1f%% | partition %.1f%% | map-combine %.1f%% | reduce %.1f%% | merge %.1f%%",
		i*100, pa*100, mc*100, r*100, m*100)
}

// Result is a completed job's output plus its execution profile.
type Result[K comparable, R any] struct {
	// Pairs is the final output, ordered by Spec.Less when provided.
	Pairs []Pair[K, R]
	// Phases is the per-phase timing profile.
	Phases PhaseTimes
	// QueueStats aggregates SPSC queue counters (RAMR engine only).
	QueueStats QueueStats
	// Steal aggregates map-phase work-stealing counters by distance
	// class (RAMR engine only; zero when Config.Steal is StealOff and no
	// local takes happened, which never occurs in a completed run).
	Steal StealStats
	// Telemetry is the structured run report (occupancy time-series,
	// counter totals, throughput) when Config.Telemetry was set; nil
	// otherwise.
	Telemetry *telemetry.Report
	// TunerReport is the online tuner's per-epoch decision log when
	// Config.Tuner was set (RAMR engine only); nil otherwise.
	TunerReport *tuner.Report
}

// QueueStats aggregates the SPSC counters across all mapper queues of one
// RAMR run. See spsc.Stats for field semantics; in particular EmptyPolls
// counts polls of a truly empty ring while ShortPolls counts unforced
// polls that found fewer than a full batch buffered.
type QueueStats struct {
	Pushes      uint64
	FailedPush  uint64
	SpinRounds  uint64
	Pops        uint64
	EmptyPolls  uint64
	ShortPolls  uint64
	BatchCalls  uint64
	SleepMicros uint64
}

// Add folds one queue's counters into the aggregate.
func (q *QueueStats) Add(s spsc.Stats) {
	q.Pushes += s.Pushes
	q.FailedPush += s.FailedPush
	q.SpinRounds += s.SpinRounds
	q.Pops += s.Pops
	q.EmptyPolls += s.EmptyPolls
	q.ShortPolls += s.ShortPolls
	q.BatchCalls += s.BatchCalls
	q.SleepMicros += s.SleepMicros
}

// FailedPushRate returns the fraction of push attempts whose first trial
// found the ring full: FailedPush / (Pushes + FailedPush). It is the
// backpressure signal behind the paper's sleep-on-failed-push policy
// (§III-A); zero when no pushes happened.
func (q QueueStats) FailedPushRate() float64 {
	total := q.Pushes + q.FailedPush
	if total == 0 {
		return 0
	}
	return float64(q.FailedPush) / float64(total)
}

// ShortPollRate returns the fraction of consume polls that found fewer
// than a full batch buffered (unforced): ShortPolls over all polls
// (BatchCalls + EmptyPolls + ShortPolls). A high rate means combiners
// outpace mappers and the batch size may be too large; zero when no polls
// happened.
func (q QueueStats) ShortPollRate() float64 {
	total := q.BatchCalls + q.EmptyPolls + q.ShortPolls
	if total == 0 {
		return 0
	}
	return float64(q.ShortPolls) / float64(total)
}

// String renders all eight counters plus the derived rates on one line,
// the canonical formatting every report path shares.
func (q QueueStats) String() string {
	return fmt.Sprintf("%d pushed (%.1f%% failed), %d spin rounds, %d popped, %d batch calls, %d empty polls, %d short polls (%.1f%%), %dus slept",
		q.Pushes, q.FailedPushRate()*100, q.SpinRounds, q.Pops, q.BatchCalls,
		q.EmptyPolls, q.ShortPolls, q.ShortPollRate()*100, q.SleepMicros)
}
