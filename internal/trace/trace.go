// Package trace records per-worker execution timelines of a MapReduce run
// and exports them in the Chrome trace-event JSON format (load the file at
// chrome://tracing or https://ui.perfetto.dev). The visual it produces is
// exactly the paper's Fig. 2 made empirical: mapper lanes overlapping
// combiner lanes, the batch cadence on the combiner side, and the drain
// tail after the last map task.
//
// Workers write into private shards without synchronization; the collector
// only touches shard data after the run completes, so tracing adds one
// slice append per recorded span to the hot path.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one completed span on one worker's timeline.
type Event struct {
	// Name labels the span ("task", "batch", "map-combine", ...).
	Name string
	// Worker is the timeline the span belongs to ("mapper-3").
	Worker string
	// Start is the offset from the collector's epoch.
	Start time.Duration
	// Dur is the span length.
	Dur time.Duration
	// Args carries optional details (task index, batch size).
	Args map[string]any
}

// Collector gathers shards from the workers of one run.
type Collector struct {
	epoch time.Time

	mu     sync.Mutex
	shards []*Shard
}

// New returns a collector whose epoch is now.
func New() *Collector {
	return &Collector{epoch: time.Now()}
}

// Epoch returns the collector's time origin: every Event.Start is an
// offset from it. Exposed so a higher layer (internal/obs) can re-base
// the run's relative timeline onto an absolute axis when stitching the
// worker lanes under a job-lifecycle trace.
func (c *Collector) Epoch() time.Time {
	return c.epoch
}

// Shard opens a private event buffer for one worker. Safe to call from
// any goroutine; the returned shard must be used by one goroutine only.
func (c *Collector) Shard(worker string) *Shard {
	s := &Shard{c: c, worker: worker}
	c.mu.Lock()
	c.shards = append(c.shards, s)
	c.mu.Unlock()
	return s
}

// Events returns every recorded event sorted by start time, with ties
// broken by worker name so the ordering — and everything derived from it,
// like the Chrome trace export — is deterministic regardless of goroutine
// scheduling. The stable sort keeps a worker's own same-start events in
// recording order. Call only after all workers have finished.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, s := range c.shards {
		out = append(out, s.events...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// WriteChromeTrace emits the run as a Chrome trace-event JSON array.
// Workers become thread lanes of a single process; durations are complete
// ("X") events in microseconds.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	// Stable lane ids per worker.
	lane := map[string]int{}
	var order []string
	for _, e := range events {
		if _, ok := lane[e.Worker]; !ok {
			lane[e.Worker] = len(lane) + 1
			order = append(order, e.Worker)
		}
	}
	type chromeEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	out := make([]chromeEvent, 0, len(events)+len(order))
	for _, worker := range order {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane[worker],
			Args: map[string]any{"name": worker},
		})
	}
	for _, e := range events {
		out = append(out, chromeEvent{
			Name: e.Name, Ph: "X",
			Ts:  float64(e.Start.Microseconds()),
			Dur: float64(e.Dur.Microseconds()),
			PID: 1, TID: lane[e.Worker],
			Args: e.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders per-worker busy time as text, a quick utilization view
// without a trace viewer.
func (c *Collector) Summary(w io.Writer) error {
	busy := map[string]time.Duration{}
	count := map[string]int{}
	var total time.Duration
	for _, e := range c.Events() {
		busy[e.Worker] += e.Dur
		count[e.Worker]++
		if end := e.Start + e.Dur; end > total {
			total = end
		}
	}
	var workers []string
	for name := range busy {
		workers = append(workers, name)
	}
	sort.Strings(workers)
	for _, name := range workers {
		util := 0.0
		if total > 0 {
			util = busy[name].Seconds() / total.Seconds() * 100
		}
		if _, err := fmt.Fprintf(w, "%-16s %6d spans  busy %12v  (%5.1f%%)\n",
			name, count[name], busy[name], util); err != nil {
			return err
		}
	}
	return nil
}

// Shard is one worker's private event buffer.
type Shard struct {
	c      *Collector
	worker string
	events []Event
}

// Span starts a span and returns the function that ends it:
//
//	defer shard.Span("task", nil)()
func (s *Shard) Span(name string, args map[string]any) func() {
	start := time.Since(s.c.epoch)
	return func() {
		s.events = append(s.events, Event{
			Name: name, Worker: s.worker,
			Start: start, Dur: time.Since(s.c.epoch) - start,
			Args: args,
		})
	}
}

// Record appends an already-measured span.
func (s *Shard) Record(name string, start, dur time.Duration, args map[string]any) {
	s.events = append(s.events, Event{Name: name, Worker: s.worker, Start: start, Dur: dur, Args: args})
}
