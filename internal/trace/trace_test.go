package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSpanRecordsDuration(t *testing.T) {
	c := New()
	s := c.Shard("w0")
	end := s.Span("work", map[string]any{"n": 3})
	time.Sleep(2 * time.Millisecond)
	end()
	events := c.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	e := events[0]
	if e.Name != "work" || e.Worker != "w0" {
		t.Fatalf("%+v", e)
	}
	if e.Dur < time.Millisecond {
		t.Fatalf("duration %v too short", e.Dur)
	}
	if e.Args["n"] != 3 {
		t.Fatalf("args lost: %+v", e.Args)
	}
}

func TestEventsTieBreakByWorker(t *testing.T) {
	c := New()
	// Register shards in reverse worker order and record identical start
	// times: the tie-break must order by worker name, not registration
	// or scheduling order.
	b := c.Shard("worker-b")
	a := c.Shard("worker-a")
	b.Record("opB", 5*time.Millisecond, time.Millisecond, nil)
	a.Record("opA", 5*time.Millisecond, time.Millisecond, nil)
	a.Record("first", time.Millisecond, time.Millisecond, nil)
	events := c.Events()
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].Name != "first" || events[1].Name != "opA" || events[2].Name != "opB" {
		t.Fatalf("order: %+v", events)
	}
}

func TestEventsSortedAcrossShards(t *testing.T) {
	c := New()
	a := c.Shard("a")
	b := c.Shard("b")
	b.Record("late", 20*time.Millisecond, time.Millisecond, nil)
	a.Record("early", 5*time.Millisecond, time.Millisecond, nil)
	events := c.Events()
	if len(events) != 2 || events[0].Name != "early" || events[1].Name != "late" {
		t.Fatalf("%+v", events)
	}
}

func TestConcurrentShards(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.Shard("worker")
			for i := 0; i < 100; i++ {
				s.Span("op", nil)()
			}
		}(w)
	}
	wg.Wait()
	if got := len(c.Events()); got != 800 {
		t.Fatalf("%d events, want 800", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := New()
	s := c.Shard("mapper-0")
	s.Record("task", time.Millisecond, 2*time.Millisecond, map[string]any{"splits": 4})
	s2 := c.Shard("combiner-0")
	s2.Record("consume", 2*time.Millisecond, time.Millisecond, nil)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	// Two metadata events + two spans.
	if len(parsed) != 4 {
		t.Fatalf("%d chrome events", len(parsed))
	}
	var spans, meta int
	for _, e := range parsed {
		switch e["ph"] {
		case "X":
			spans++
		case "M":
			meta++
		}
	}
	if spans != 2 || meta != 2 {
		t.Fatalf("spans=%d meta=%d", spans, meta)
	}
}

func TestSummary(t *testing.T) {
	c := New()
	s := c.Shard("mapper-0")
	s.Record("task", 0, 10*time.Millisecond, nil)
	s.Record("task", 10*time.Millisecond, 10*time.Millisecond, nil)
	idle := c.Shard("combiner-0")
	idle.Record("consume", 0, 5*time.Millisecond, nil)
	var buf bytes.Buffer
	if err := c.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mapper-0") || !strings.Contains(out, "2 spans") {
		t.Fatalf("summary: %s", out)
	}
	// mapper-0 is busy the whole 20ms window, combiner-0 a quarter of it.
	if !strings.Contains(out, "(100.0%)") {
		t.Fatalf("mapper utilization missing: %s", out)
	}
	if !strings.Contains(out, "( 25.0%)") {
		t.Fatalf("combiner utilization missing: %s", out)
	}
}

// TestChromeTraceGolden pins the exact Chrome JSON the exporter produces
// for a fixed event set, so the export stays byte-for-byte reproducible
// (lane assignment, field order, tie-broken event order). Regenerate with
// -update when the format intentionally changes.
func TestChromeTraceGolden(t *testing.T) {
	c := New()
	m0 := c.Shard("mapper-0")
	c0 := c.Shard("combiner-0")
	// Same start on two workers exercises the worker tie-break; the
	// args map exercises deterministic key marshaling.
	c0.Record("consume", 2*time.Millisecond, time.Millisecond, nil)
	m0.Record("task", 2*time.Millisecond, 3*time.Millisecond, map[string]any{"splits": 4, "idx": 1})
	m0.Record("task", 7*time.Millisecond, time.Millisecond, nil)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}
