package stream

import (
	"sort"
	"sync"
	"time"

	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/tuner"
)

// streamTuner adapts the AIMD controller (internal/tuner) to a resident
// pipeline. Unlike the batch engine's elastic pool, a streaming session
// cannot hand SPSC rings between combiners mid-flight without an
// ownership protocol spanning windows, so the pool size is pinned
// (Min = Max = combiners) and the controller's surviving knobs are the
// consume batch size and the producer sleep backoff — the two that
// matter for a pipeline alternating between bursts and lulls. The
// controller keeps running across windows: its state is never reset at
// a seal, so tuning learned on window n carries into window n+1 (the
// ISSUE's "tuner keeps running across windows").
//
// Like core's driver it runs on the telemetry sampler goroutine via the
// observer hook; stop() fences it so the report can be read race-free.
type streamTuner struct {
	mu      sync.Mutex
	stopped bool

	ctrl  *tuner.Controller
	tel   *telemetry.Telemetry
	apply func(tuner.Decision)

	epochTicks int
	ticks      int
	occ        []float64 // sampled occupancies within the current epoch
	imb        []float64 // per-tick imbalance ratios within the current epoch
	caps       []float64 // per-queue capacity, indexed like Sample.Depths
	prev       telemetry.Counters
}

// streamTunerArgs carries what the driver needs, type-erased: the
// generic Pipeline hands over closures instead of its typed queues.
type streamTunerArgs struct {
	tcfg        tuner.Config
	combiners   int
	batch       int // starting consume batch, pre-clamped
	capQ        int // per-queue ring capacity
	caps        []float64
	tel         *telemetry.Telemetry
	storeBatch  func(int)
	setSleepCap func(time.Duration)
}

// streamTunerArgs bundles the pipeline's tuner inputs.
func (p *Pipeline[S, K, V, R]) streamTunerArgs() *streamTunerArgs {
	capQ := p.cfg.QueueCapacity
	caps := make([]float64, len(p.queues))
	for i, q := range p.queues {
		caps[i] = float64(q.Cap())
	}
	tcfg := *p.cfg.Tuner
	// Pin the pool: grow/shrink decisions clamp to no-ops.
	tcfg.MinCombiners = p.combiners
	tcfg.MaxCombiners = p.combiners
	if tcfg.MaxBatch <= 0 || tcfg.MaxBatch > capQ {
		tcfg.MaxBatch = capQ
	}
	if tcfg.MinBatch <= 0 {
		tcfg.MinBatch = tuner.DefaultMinBatch
	}
	if tcfg.MinBatch > tcfg.MaxBatch {
		tcfg.MinBatch = tcfg.MaxBatch
	}
	queues := p.queues
	return &streamTunerArgs{
		tcfg:      tcfg,
		combiners: p.combiners,
		batch:     int(p.batchA.Load()),
		capQ:      capQ,
		caps:      caps,
		tel:       p.tel,
		storeBatch: func(b int) {
			if b < 1 {
				b = 1
			}
			if b > capQ {
				b = capQ
			}
			p.batchA.Store(int64(b))
		},
		setSleepCap: func(d time.Duration) {
			for _, q := range queues {
				q.SetSleepCap(d)
			}
		},
	}
}

// startStreamTuner wires the driver into the telemetry sampler and
// returns it for the end-of-session report. The caller guarantees
// args.tel is non-nil (New allocates a private Telemetry when the
// config tunes without one).
func startStreamTuner(args *streamTunerArgs) *streamTuner {
	ctrl := tuner.NewController(args.tcfg, tuner.Settings{
		Combiners: args.combiners,
		Batch:     args.batch,
		Backoff:   spsc.DefaultSleepCap,
	})
	d := &streamTuner{
		ctrl:       ctrl,
		tel:        args.tel,
		epochTicks: ctrl.EpochTicks(),
		caps:       args.caps,
	}
	curBackoff := spsc.DefaultSleepCap
	d.apply = func(dec tuner.Decision) {
		args.storeBatch(dec.Settings.Batch)
		if dec.Settings.Backoff != curBackoff {
			curBackoff = dec.Settings.Backoff
			args.setSleepCap(curBackoff)
		}
	}
	args.tel.SetObserver(d.observe)
	return d
}

// observe accumulates occupancy and imbalance; at each epoch boundary it
// forms the Signals delta, advances the controller and applies the
// decision. Identical in shape to the batch driver — the signals are
// engine-agnostic.
func (d *streamTuner) observe(s telemetry.Sample) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	for i, depth := range s.Depths {
		if i < len(d.caps) && d.caps[i] > 0 {
			d.occ = append(d.occ, float64(depth)/d.caps[i])
		}
	}
	if len(s.Depths) > 0 {
		d.imb = append(d.imb, s.Imbalance)
	}
	d.ticks++
	if d.ticks < d.epochTicks {
		return
	}
	now := d.tel.CountersNow()
	sig := tuner.Signals{
		OccP90:         streamP90(d.occ),
		QueueImbalance: streamP90(d.imb),
		CombinedPairs:  now.Combined - d.prev.Combined,
		Ticks:          d.ticks,
	}
	if dp := (now.Pushes - d.prev.Pushes) + (now.FailedPush - d.prev.FailedPush); dp > 0 {
		sig.FailedPushRate = float64(now.FailedPush-d.prev.FailedPush) / float64(dp)
	}
	if polls := (now.BatchCalls - d.prev.BatchCalls) + (now.EmptyPolls - d.prev.EmptyPolls) + (now.ShortPolls - d.prev.ShortPolls); polls > 0 {
		sig.ShortPollRate = float64(now.ShortPolls-d.prev.ShortPolls) / float64(polls)
	}
	d.prev = now
	d.ticks = 0
	d.occ = d.occ[:0]
	d.imb = d.imb[:0]
	d.apply(d.ctrl.Advance(sig))
}

// stop fences the driver: no Advance is in flight after it returns.
func (d *streamTuner) stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
}

func (d *streamTuner) report() *tuner.Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctrl.Report()
}

// TunerReport returns the controller's decision log, or nil when the
// session runs untuned.
func (p *Pipeline[S, K, V, R]) TunerReport() *tuner.Report {
	if p.driver == nil {
		return nil
	}
	return p.driver.report()
}

// streamP90 returns the 90th percentile of vs (zero when empty),
// sorting in place.
func streamP90(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	return vs[int(0.9*float64(len(vs)-1))]
}
