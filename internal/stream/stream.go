// Package stream is the resident streaming runtime: the paper's decoupled
// map/combine pipeline (internal/core) turned into a long-lived session
// that absorbs input chunks over time and emits per-window snapshot
// results without ever tearing its workers down.
//
// The batch engine's building blocks are reused wholesale — per-mapper
// SPSC rings with slab emit (internal/spsc), private combiner containers
// (internal/container), the contention-aware pinning plan
// (core.BuildPlanOn) and the locality queue split (core.QueueAssignment),
// live telemetry and the AIMD tuner — but the lifecycle inverts: instead
// of "partition once, run to drain, merge once", mappers block on a task
// channel fed by Append, combiners fold into per-pane containers keyed by
// event time, and a sealer goroutine merges, reduces and publishes each
// window the moment the watermark passes it. In-node combining is what
// makes this cheap: the combiner container already is an incremental
// cache of the window's state, so a seal only merges C small containers,
// never replays input.
//
// Windowing model (see DESIGN.md §14): every chunk carries an event-time
// tick; window n covers ticks [n*Slide, n*Slide+Window); state is sliced
// into Slide-sized panes so sliding windows share panes instead of
// duplicating folds; the watermark is maxTick-Lateness and window n seals
// once n*Slide+Window <= watermark. Sealing is exact, not best-effort: a
// window is merged only after every split routed to its panes has been
// mapped AND every pair those splits pushed has been folded, tracked by
// per-pane conservation counters (splits in/done, pairs pushed/folded).
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ramr/internal/affinity"
	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
)

// TsAuto asks Append to assign the next tick after the highest seen.
const TsAuto int64 = -1

// ErrClosed reports an Append or Close on a session already closed to
// new input.
var ErrClosed = errors.New("stream: session closed to new input")

// BackpressureError rejects an Append that would exceed the pending
// bound. RetryAfter is the suggested client backoff, derived from how
// deep the backlog runs and from the SPSC failed-push rate (mappers
// sleeping on full rings mean the combiners are the bottleneck, so
// draining will take longer).
type BackpressureError struct {
	RetryAfter time.Duration
	Pending    int
	Limit      int
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("stream: backpressure: %d splits pending of %d allowed; retry after %s",
		e.Pending, e.Limit, e.RetryAfter)
}

// LateChunkError rejects a chunk whose tick is already behind the
// watermark: its window may have sealed, and silently folding it would
// break the sealed snapshots' immutability.
type LateChunkError struct {
	Ts        int64
	Watermark int64
}

func (e *LateChunkError) Error() string {
	return fmt.Sprintf("stream: chunk tick %d is behind the watermark %d (increase Lateness to admit older data)", e.Ts, e.Watermark)
}

// Chunk is one batch of input splits appended to a resident pipeline.
type Chunk[S any] struct {
	// Ts is the chunk's event-time tick; TsAuto assigns maxTick+1.
	Ts int64
	// Splits carry the payload, mapped by the resident mapper pool.
	Splits []S
}

// Window is one sealed window's immutable snapshot result.
type Window[K comparable, R any] struct {
	// Index is the window number n; the window covers event-time ticks
	// [Start, End) = [n*Slide, n*Slide+Window).
	Index, Start, End int64
	// Pairs is the reduced, sorted per-key output of the window.
	Pairs []mr.Pair[K, R]
	// Elements counts the intermediate pairs folded into the window —
	// the conservation figure: summed over tumbling windows it equals
	// the total pairs emitted by Map.
	Elements uint64
	// Splits and Chunks count the inputs routed to the window's panes
	// (for sliding windows a chunk lands in every window sharing its
	// pane, so these sum above the session totals).
	Splits int64
	Chunks int64
	// OpenedAt/SealedAt bracket the window's wall-clock life: first
	// append into one of its panes to seal time.
	OpenedAt time.Time
	SealedAt time.Time
}

// task is one split routed to a pane, flowing coordinator → mapper.
type task[S any] struct {
	split S
	pane  int64
}

// streamPair is an intermediate pair tagged with its destination pane,
// flowing mapper → combiner through the SPSC rings.
type streamPair[K comparable, V any] struct {
	pane int64
	kv   container.KV[K, V]
}

// paneState tracks one pane's conservation counters. A window is
// quiescent — safe to merge — once, for every pane it spans,
// splitsDone == splitsIn and folded == pushed. Ordering guarantees the
// check is sound: a mapper flushes its emit slab (making the pairs
// visible to pushed's reader via the ring) and adds to pushed BEFORE
// adding to splitsDone, and splitsIn for a sealable pane is frozen
// because Append rejects ticks behind the watermark.
type paneState struct {
	pane        int64
	splitsIn    atomic.Int64
	splitsDone  atomic.Int64
	pushed      atomic.Uint64
	folded      atomic.Uint64
	chunks      atomic.Int64
	firstAppend time.Time
}

// combinerState is one combiner's private per-pane container map. The
// combiner goroutine is the only writer of the containers; the mutex
// serializes map access (pane creation, and the sealer's merge walk)
// and is taken only when switching panes or sealing, never per pair.
type combinerState[K comparable, V any] struct {
	mu    sync.Mutex
	panes map[int64]container.Container[K, V]
}

// container returns (creating if needed) the combiner's container for a
// pane.
func (cs *combinerState[K, V]) container(pane int64, newC container.Factory[K, V]) container.Container[K, V] {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c, ok := cs.panes[pane]
	if !ok {
		c = newC()
		cs.panes[pane] = c
	}
	return c
}

// Stats is a point-in-time snapshot of a live pipeline.
type Stats struct {
	Chunks        int64  `json:"chunks"`
	Splits        int64  `json:"splits"`
	Elements      uint64 `json:"elements"`
	Pending       int64  `json:"pending"`
	MaxPending    int    `json:"max_pending"`
	MaxTs         int64  `json:"max_ts"`
	Watermark     int64  `json:"watermark"`
	Sealed        int    `json:"windows_sealed"`
	Backpressured uint64 `json:"backpressured"`
	LateRejected  uint64 `json:"late_rejected"`
	// WatermarkLag is the wall-clock age of the oldest unsealed pane
	// holding data — how far result visibility trails ingestion.
	WatermarkLag time.Duration `json:"watermark_lag"`
	Closed       bool          `json:"closed"`
}

// Pipeline is one resident streaming session over a typed job spec. New
// builds it, Start spawns the worker pools, Append feeds it, Close
// drains and seals everything; the mapper and combiner goroutines live
// for the whole session, across every window.
type Pipeline[S any, K comparable, V, R any] struct {
	spec *mr.Spec[S, K, V, R]
	cfg  mr.Config
	win  mr.StreamSpec // resolved

	mappers   int
	combiners int
	plan      core.Plan
	queues    []*spsc.Queue[streamPair[K, V]]
	mirrors   []*telemetry.QueueMirror
	combs     []*combinerState[K, V]
	tel       *telemetry.Telemetry
	ownTel    bool
	batchA    atomic.Int64
	driver    *streamTuner

	// OnSeal, when set before Start, is invoked from the sealer
	// goroutine after each window is published (service wires per-window
	// trace spans and metrics through it).
	OnSeal func(*Window[K, R])

	taskCh  chan task[S]
	pending atomic.Int64
	maxTs   atomic.Int64 // highest tick seen; -1 before the first chunk

	appendMu sync.Mutex
	closed   bool

	paneMu sync.Mutex
	panes  map[int64]*paneState

	winMu    sync.Mutex
	windows  map[int64]*Window[K, R]
	order    []int64
	maxPane  int64 // highest pane that ever held data; -1 initially
	sealWake chan struct{}

	chunks        atomic.Int64
	splits        atomic.Int64
	elements      atomic.Uint64
	backpressured atomic.Uint64
	lateRejected  atomic.Uint64

	firstErr mr.FirstError
	abort    atomic.Bool
	dying    chan struct{} // closed on first failure/cancel
	dieOnce  sync.Once

	flushing   atomic.Bool
	flushCh    chan struct{}
	mapWG      sync.WaitGroup
	combWG     sync.WaitGroup
	sealerDone chan struct{}
	stopped    chan struct{} // closed when every goroutine has exited
	started    bool
	startAt    time.Time

	finalMu    sync.Mutex
	finalQueue mr.QueueStats
}

// New validates the spec and config and builds an unstarted pipeline.
// cfg.Stream must be set; cfg.Splits on the spec is ignored (input
// arrives via Append).
func New[S any, K comparable, V, R any](spec *mr.Spec[S, K, V, R], cfg mr.Config) (*Pipeline[S, K, V, R], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stream == nil {
		return nil, errors.New("stream: Config.Stream is required for a resident pipeline")
	}
	machine := cfg.ResolveMachine()
	for _, cpu := range cfg.CPUGrant {
		if cpu >= machine.NumCPUs() {
			return nil, fmt.Errorf("stream: CPUGrant cpu %d out of range for %s (%d logical CPUs)", cpu, machine.Name, machine.NumCPUs())
		}
	}
	win := cfg.Stream.Resolved()
	mappers := cfg.Mappers
	combiners := cfg.NumCombiners()
	p := &Pipeline[S, K, V, R]{
		spec:       spec,
		cfg:        cfg,
		win:        win,
		mappers:    mappers,
		combiners:  combiners,
		plan:       core.BuildPlanOn(machine, cfg.CPUGrant, mappers, combiners, cfg.Pin),
		tel:        cfg.Telemetry,
		taskCh:     make(chan task[S], win.MaxPending),
		panes:      make(map[int64]*paneState),
		windows:    make(map[int64]*Window[K, R]),
		sealWake:   make(chan struct{}, 1),
		flushCh:    make(chan struct{}),
		dying:      make(chan struct{}),
		sealerDone: make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	p.maxTs.Store(-1)
	p.maxPane = -1
	batch := cfg.BatchSize
	if batch > cfg.QueueCapacity {
		batch = cfg.QueueCapacity
	}
	p.batchA.Store(int64(batch))
	if p.tel == nil && cfg.Tuner != nil {
		// The tuner needs the sampler as its epoch clock even when the
		// caller wants no report.
		p.tel = telemetry.New()
		p.ownTel = true
	}
	for i := 0; i < mappers; i++ {
		q, err := spsc.New[streamPair[K, V]](cfg.QueueCapacity, cfg.Wait)
		if err != nil {
			return nil, err
		}
		p.queues = append(p.queues, q)
	}
	for j := 0; j < combiners; j++ {
		p.combs = append(p.combs, &combinerState[K, V]{panes: make(map[int64]container.Container[K, V])})
	}
	return p, nil
}

// Start spawns the resident mapper and combiner pools and the sealer.
// The workers live until Close or Cancel; no per-window restarts.
func (p *Pipeline[S, K, V, R]) Start() error {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	if p.started {
		return errors.New("stream: pipeline already started")
	}
	p.started = true
	p.startAt = time.Now()
	if p.tel != nil {
		p.tel.BeginRun("stream")
		p.mirrors = make([]*telemetry.QueueMirror, len(p.queues))
		for i, q := range p.queues {
			p.mirrors[i] = p.tel.RegisterQueue("mapper-"+strconv.Itoa(i), q)
		}
	} else {
		p.mirrors = make([]*telemetry.QueueMirror, len(p.queues)) // nil-safe mirrors
	}
	if p.cfg.Tuner != nil {
		p.driver = startStreamTuner(p.streamTunerArgs())
	}
	for i := 0; i < p.mappers; i++ {
		p.mapWG.Add(1)
		go p.runMapper(i)
	}
	assign := core.QueueAssignment(p.mappers, p.combiners)
	for j := 0; j < p.combiners; j++ {
		p.combWG.Add(1)
		go p.runCombiner(j, assign[j])
	}
	go p.sealLoop()
	// The janitor turns "every worker exited" into the stopped signal,
	// for both the orderly Close path and the Cancel/failure path.
	go func() {
		p.mapWG.Wait()
		p.combWG.Wait()
		<-p.sealerDone
		if p.driver != nil {
			p.driver.stop()
		}
		var qs mr.QueueStats
		for _, q := range p.queues {
			qs.Add(q.Snapshot())
		}
		p.finalMu.Lock()
		p.finalQueue = qs
		p.finalMu.Unlock()
		if p.tel != nil {
			p.tel.Stop()
		}
		close(p.stopped)
	}()
	return nil
}

// fail records the session's first error and trips the abort path:
// mappers stop taking tasks, combiners switch to discard-draining (so
// producers blocked on full rings unwedge), the sealer exits.
func (p *Pipeline[S, K, V, R]) fail(err error) {
	p.firstErr.Set(err)
	p.abort.Store(true)
	p.dieOnce.Do(func() { close(p.dying) })
}

// Cancel aborts the session without draining.
func (p *Pipeline[S, K, V, R]) Cancel() { p.fail(context.Canceled) }

// CancelWait is Cancel plus waiting for every worker to exit.
func (p *Pipeline[S, K, V, R]) CancelWait() {
	p.Cancel()
	<-p.stopped
}

// Done is closed once every session goroutine has exited (after Close,
// Cancel, or an internal failure).
func (p *Pipeline[S, K, V, R]) Done() <-chan struct{} { return p.stopped }

// Err returns the session's first error: nil after a clean Close,
// context.Canceled after Cancel, the mr.PanicError after a worker panic.
func (p *Pipeline[S, K, V, R]) Err() error { return p.firstErr.Get() }

// watermark returns maxTs - Lateness (negative before enough ticks).
func (p *Pipeline[S, K, V, R]) watermark() int64 {
	return p.maxTs.Load() - p.win.Lateness
}

// Append admits one chunk: its splits are routed to the pane of its
// tick and queued for the resident mappers. It returns the tick the
// chunk was assigned. Errors: BackpressureError when the pending bound
// is hit, LateChunkError for ticks behind the watermark, ErrClosed
// after Close, or the session's fatal error.
func (p *Pipeline[S, K, V, R]) Append(c Chunk[S]) (int64, error) {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	if err := p.firstErr.Get(); err != nil {
		return 0, err
	}
	if p.closed || !p.started {
		if !p.started {
			return 0, errors.New("stream: pipeline not started")
		}
		return 0, ErrClosed
	}
	ts := c.Ts
	if ts < 0 {
		ts = p.maxTs.Load() + 1
	}
	if wm := p.watermark(); ts < wm {
		p.lateRejected.Add(1)
		return 0, &LateChunkError{Ts: ts, Watermark: wm}
	}
	n := len(c.Splits)
	if pend := int(p.pending.Load()); pend+n > p.win.MaxPending {
		p.backpressured.Add(1)
		return 0, &BackpressureError{
			RetryAfter: p.retryAfter(pend),
			Pending:    pend,
			Limit:      p.win.MaxPending,
		}
	}
	pane := ts / p.win.Slide
	if n > 0 {
		ps := p.paneFor(pane)
		ps.splitsIn.Add(int64(n))
		ps.chunks.Add(1)
		p.splits.Add(int64(n))
		p.pending.Add(int64(n))
	}
	p.chunks.Add(1)
	if ts > p.maxTs.Load() {
		p.maxTs.Store(ts)
	}
	// The channel's capacity is MaxPending and the pending reservation
	// above bounds in-flight tasks by it, so these sends cannot block.
	for _, s := range c.Splits {
		p.taskCh <- task[S]{split: s, pane: pane}
	}
	p.kickSealer()
	return ts, nil
}

// retryAfter derives the backpressure hint: a base term growing with the
// backlog fraction, plus a term for the SPSC failed-push rate (producers
// already sleeping on full rings drain slower), clamped to [50ms, 2s].
func (p *Pipeline[S, K, V, R]) retryAfter(pending int) time.Duration {
	frac := float64(pending) / float64(p.win.MaxPending)
	d := time.Duration(frac * float64(500*time.Millisecond))
	if p.tel != nil {
		c := p.tel.CountersNow()
		if tot := c.Pushes + c.FailedPush; tot > 0 {
			d += time.Duration(float64(c.FailedPush) / float64(tot) * float64(500*time.Millisecond))
		}
	}
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// paneFor returns (creating if needed) the pane's counter state.
func (p *Pipeline[S, K, V, R]) paneFor(pane int64) *paneState {
	p.paneMu.Lock()
	defer p.paneMu.Unlock()
	ps, ok := p.panes[pane]
	if !ok {
		ps = &paneState{pane: pane, firstAppend: time.Now()}
		p.panes[pane] = ps
		if pane > p.maxPane {
			p.maxPane = pane
		}
	}
	return ps
}

// lookupPane returns the pane's state without creating it.
func (p *Pipeline[S, K, V, R]) lookupPane(pane int64) *paneState {
	p.paneMu.Lock()
	defer p.paneMu.Unlock()
	return p.panes[pane]
}

// kickSealer nudges the sealer without blocking (the channel has one
// slot; a pending kick already covers this update).
func (p *Pipeline[S, K, V, R]) kickSealer() {
	select {
	case p.sealWake <- struct{}{}:
	default:
	}
}

// runMapper is one resident map worker: take a task, run Map with slab
// emit into the worker's own SPSC ring (pairs tagged with the task's
// pane), publish the conservation counts, repeat until the task channel
// closes (Close) or the session dies.
func (p *Pipeline[S, K, V, R]) runMapper(i int) {
	defer p.mapWG.Done()
	q := p.queues[i]
	defer q.Close()
	labels := pprof.Labels("engine", "stream", "role", "mapper", "worker", strconv.Itoa(i))
	ctx := pprof.WithLabels(context.Background(), labels)
	pprof.SetGoroutineLabels(ctx)
	defer pprof.SetGoroutineLabels(context.Background())

	var tw *telemetry.Worker
	if p.tel != nil {
		tw = p.tel.RegisterWorker("mapper", i)
	}
	defer tw.SetState(telemetry.StateDone)
	defer func() {
		if r := recover(); r != nil {
			p.fail(&mr.PanicError{Engine: "stream", Worker: fmt.Sprintf("map worker %d", i), Value: r})
		}
	}()
	if cpu := p.plan.MapperCPU[i]; cpu >= 0 && affinity.Supported() {
		unpin, _ := affinity.PinSelf(cpu)
		defer unpin()
	}

	emitBatch := p.cfg.EmitBatch
	if emitBatch <= 0 {
		emitBatch = mr.DefaultEmitBatch
	}
	if emitBatch > q.Cap() {
		emitBatch = q.Cap()
	}
	slab := make([]streamPair[K, V], 0, emitBatch)
	var curPane int64
	var emitted uint64
	flush := func() {
		if len(slab) > 0 {
			q.PushBatch(slab)
			slab = slab[:0]
		}
	}
	emit := func(k K, v V) {
		slab = append(slab, streamPair[K, V]{pane: curPane, kv: container.KV[K, V]{K: k, V: v}})
		emitted++
		if len(slab) == emitBatch {
			flush()
		}
	}
	var mapHook func(int)
	if p.cfg.Hooks != nil {
		mapHook = p.cfg.Hooks.MapTask
	}

	for {
		select {
		case <-p.dying:
			return
		case t, ok := <-p.taskCh:
			if !ok {
				return
			}
			// An aborting session must not run user code on queued
			// tasks; combiners are discarding anyway.
			if p.abort.Load() {
				p.pending.Add(-1)
				continue
			}
			curPane = t.pane
			emitted = 0
			tw.SetState(telemetry.StateWorking)
			if mapHook != nil {
				mapHook(i)
			}
			p.spec.Map(t.split, emit)
			flush()
			// Order matters for the seal quiesce check: pairs become
			// visible (flush, pushed) before the split counts done.
			ps := p.lookupPane(t.pane)
			ps.pushed.Add(emitted)
			ps.splitsDone.Add(1)
			p.elements.Add(emitted)
			p.pending.Add(-1)
			tw.AddEmitted(int(emitted))
			tw.AddTasks(1)
			tw.StoreProducer(q.ProducerStats())
			tw.SetState(telemetry.StateIdle)
			p.kickSealer()
		}
	}
}

// runCombiner is one resident combine worker: consume batches from its
// assigned rings, folding each pane-tagged run into that pane's private
// container. It exits when every assigned ring is closed and drained
// (mappers close their rings on exit); on abort it discard-drains so
// blocked producers unwedge.
func (p *Pipeline[S, K, V, R]) runCombiner(j int, rng [2]int) {
	defer p.combWG.Done()
	labels := pprof.Labels("engine", "stream", "role", "combiner", "worker", strconv.Itoa(j))
	ctx := pprof.WithLabels(context.Background(), labels)
	pprof.SetGoroutineLabels(ctx)
	defer pprof.SetGoroutineLabels(context.Background())

	var tw *telemetry.Worker
	if p.tel != nil {
		tw = p.tel.RegisterWorker("combiner", j)
	}
	defer tw.SetState(telemetry.StateDone)
	defer func() {
		if r := recover(); r != nil {
			p.fail(&mr.PanicError{Engine: "stream", Worker: fmt.Sprintf("combine worker %d", j), Value: r})
			p.discardDrain(rng)
		}
	}()
	if cpu := p.plan.CombinerCPU[j]; cpu >= 0 && affinity.Supported() {
		unpin, _ := affinity.PinSelf(cpu)
		defer unpin()
	}

	cs := p.combs[j]
	mine := p.queues[rng[0]:rng[1]]
	scratch := make([]container.KV[K, V], 0, int(p.batchA.Load()))
	curPane := int64(math.MinInt64)
	var curC container.Container[K, V]
	var curPS *paneState
	var combineHook func(int)
	if p.cfg.Hooks != nil {
		combineHook = p.cfg.Hooks.CombineBatch
	}
	apply := func(seg []streamPair[K, V]) {
		if combineHook != nil {
			combineHook(j)
		}
		for lo := 0; lo < len(seg); {
			pane := seg[lo].pane
			hi := lo + 1
			for hi < len(seg) && seg[hi].pane == pane {
				hi++
			}
			if pane != curPane || curC == nil {
				curC = cs.container(pane, p.spec.NewContainer)
				curPS = p.paneFor(pane)
				curPane = pane
			}
			scratch = scratch[:0]
			for _, e := range seg[lo:hi] {
				scratch = append(scratch, e.kv)
			}
			curC.UpdateBatch(scratch, p.spec.Combine)
			curPS.folded.Add(uint64(hi - lo))
			tw.AddCombined(hi - lo)
			lo = hi
		}
		tw.AddBatches(1)
	}

	idleRounds := 0
	for {
		if p.abort.Load() {
			p.discardDrain(rng)
			return
		}
		consumed, open := 0, 0
		batch := int(p.batchA.Load())
		// An idle previous round forces short consumes: under sustained
		// load combiners wait for full batches (§IV-C), but once input
		// pauses — end of a window's traffic, pre-seal lull — buffered
		// pairs must reach their pane containers so the seal quiesce
		// check can pass.
		force := idleRounds > 0
		for qi, q := range mine {
			if q.Drained() {
				continue
			}
			open++
			n := q.ConsumeBatch(batch, force || q.Closed(), apply)
			consumed += n
			p.mirrors[rng[0]+qi].StoreConsumer(q.ConsumerStats())
		}
		if open == 0 {
			return
		}
		if consumed == 0 {
			idleRounds++
			tw.SetState(telemetry.StateIdle)
			if idleRounds < 4 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
		} else {
			idleRounds = 0
			tw.SetState(telemetry.StateWorking)
			p.kickSealer()
		}
	}
}

// discardDrain empties the worker's rings without running user code so
// producers blocked on full rings can exit, until every ring is closed
// and drained.
func (p *Pipeline[S, K, V, R]) discardDrain(rng [2]int) {
	mine := p.queues[rng[0]:rng[1]]
	for {
		alive := false
		for _, q := range mine {
			if q.Drained() {
				continue
			}
			alive = true
			q.DiscardBatch(int(p.batchA.Load()))
		}
		if !alive {
			return
		}
		runtime.Gosched()
	}
}

// sealable returns the highest window index (exclusive) the current
// watermark allows sealing: every window n with n*Slide+Window <= wm.
func (p *Pipeline[S, K, V, R]) sealableBefore() int64 {
	wm := p.watermark()
	end := (wm - p.win.Window) / p.win.Slide
	if wm-p.win.Window < 0 {
		return 0
	}
	return end + 1
}

// sealLoop is the watermark-driven sealer: woken by appends and combine
// progress, it seals every window the watermark has passed, in order;
// on Close it seals everything that ever held data.
func (p *Pipeline[S, K, V, R]) sealLoop() {
	defer close(p.sealerDone)
	next := int64(0)
	for {
		select {
		case <-p.dying:
			return
		case <-p.sealWake:
		case <-p.flushCh:
		}
		// The flush flag is captured BEFORE the limit: if it flips true
		// after this read, the pending flushCh wake re-enters the loop
		// and the final windows seal then — returning on a flag read
		// after a stale limit would drop them.
		flush := p.flushing.Load()
		limit := p.sealableBefore()
		if flush {
			// Final flush: every pane with data belongs to some window
			// <= maxPane (window n's lowest pane is n). Workers are
			// gone; everything is quiescent by construction.
			p.paneMu.Lock()
			limit = p.maxPane + 1
			p.paneMu.Unlock()
		}
		for ; next < limit; next++ {
			if !p.sealWindow(next) {
				return // session died while waiting for quiescence
			}
		}
		if flush {
			return
		}
	}
}

// windowQuiesced reports whether every pane of window n is fully folded.
func (p *Pipeline[S, K, V, R]) windowQuiesced(n int64) bool {
	k := p.win.PanesPerWindow()
	for pane := n; pane < n+k; pane++ {
		ps := p.lookupPane(pane)
		if ps == nil {
			continue
		}
		if ps.splitsDone.Load() != ps.splitsIn.Load() || ps.folded.Load() != ps.pushed.Load() {
			return false
		}
	}
	return true
}

// sealWindow waits for window n's panes to quiesce, merges the
// combiners' pane containers, reduces, sorts and publishes the
// snapshot. Empty windows (no pane ever held data) are skipped without
// publishing. Returns false if the session died while waiting.
func (p *Pipeline[S, K, V, R]) sealWindow(n int64) bool {
	k := p.win.PanesPerWindow()
	hasData := false
	var opened time.Time
	var splitsN, chunksN int64
	var elements uint64
	for pane := n; pane < n+k; pane++ {
		ps := p.lookupPane(pane)
		if ps == nil || ps.splitsIn.Load() == 0 {
			continue
		}
		hasData = true
		if opened.IsZero() || ps.firstAppend.Before(opened) {
			opened = ps.firstAppend
		}
	}
	if hasData {
		for !p.windowQuiesced(n) {
			select {
			case <-p.dying:
				return false
			case <-time.After(100 * time.Microsecond):
			}
		}
		for pane := n; pane < n+k; pane++ {
			if ps := p.lookupPane(pane); ps != nil {
				splitsN += ps.splitsIn.Load()
				chunksN += ps.chunks.Load()
				elements += ps.folded.Load()
			}
		}
	}

	if hasData {
		// Merge every combiner's containers for the window's panes. The
		// per-combiner lock orders the walk against concurrent pane
		// creation; the containers themselves are quiescent (counters
		// balanced above, and panes below the watermark receive no new
		// input).
		out := p.spec.NewContainer()
		for _, cs := range p.combs {
			cs.mu.Lock()
			for pane := n; pane < n+k; pane++ {
				if src, ok := cs.panes[pane]; ok {
					container.Merge(out, src, p.spec.Combine)
				}
			}
			cs.mu.Unlock()
		}
		pairs, err := mr.ReduceAll(out, p.spec.Reduce, p.mappers)
		if err != nil {
			p.fail(err)
			return false
		}
		mr.SortPairs(pairs, p.spec.Less)
		w := &Window[K, R]{
			Index:    n,
			Start:    n * p.win.Slide,
			End:      n*p.win.Slide + p.win.Window,
			Pairs:    pairs,
			Elements: elements,
			Splits:   splitsN,
			Chunks:   chunksN,
			OpenedAt: opened,
			SealedAt: time.Now(),
		}
		p.winMu.Lock()
		p.windows[n] = w
		p.order = append(p.order, n)
		p.winMu.Unlock()
		if p.OnSeal != nil {
			p.OnSeal(w)
		}
	}
	// Pane n (the window's lowest) can never be read again: window n+1
	// starts at pane n+1. Drop its state and containers.
	p.paneMu.Lock()
	delete(p.panes, n)
	p.paneMu.Unlock()
	for _, cs := range p.combs {
		cs.mu.Lock()
		delete(cs.panes, n)
		cs.mu.Unlock()
	}
	return true
}

// Close seals the session: no more appends, mappers drain the task
// channel and exit, combiners drain the rings and exit, and the sealer
// flushes every remaining window (the final, watermark-incomplete
// windows included). It returns the session's error state; ctx bounds
// the wait — on expiry the session is cancelled and ctx's error
// returned.
func (p *Pipeline[S, K, V, R]) Close(ctx context.Context) error {
	p.appendMu.Lock()
	if !p.started {
		p.appendMu.Unlock()
		return errors.New("stream: pipeline not started")
	}
	alreadyClosed := p.closed
	if !p.closed {
		p.closed = true
		close(p.taskCh)
	}
	p.appendMu.Unlock()
	if !alreadyClosed {
		go func() {
			// The flush signal must wait for the worker pools: the
			// sealer treats flush mode as "everything is quiescent".
			p.mapWG.Wait()
			p.combWG.Wait()
			p.flushing.Store(true)
			close(p.flushCh)
		}()
	}
	select {
	case <-p.stopped:
		return p.Err()
	case <-ctx.Done():
		p.CancelWait()
		if err := p.Err(); err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		return ctx.Err()
	}
}

// Windows returns the sealed windows in seal order.
func (p *Pipeline[S, K, V, R]) Windows() []*Window[K, R] {
	p.winMu.Lock()
	defer p.winMu.Unlock()
	out := make([]*Window[K, R], 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.windows[n])
	}
	return out
}

// Window returns sealed window n, if sealed.
func (p *Pipeline[S, K, V, R]) Window(n int64) (*Window[K, R], bool) {
	p.winMu.Lock()
	defer p.winMu.Unlock()
	w, ok := p.windows[n]
	return w, ok
}

// SealedCount returns how many windows have sealed so far.
func (p *Pipeline[S, K, V, R]) SealedCount() int {
	p.winMu.Lock()
	defer p.winMu.Unlock()
	return len(p.order)
}

// Stats snapshots the session's live counters.
func (p *Pipeline[S, K, V, R]) Stats() Stats {
	p.appendMu.Lock()
	closed := p.closed
	p.appendMu.Unlock()
	st := Stats{
		Chunks:        p.chunks.Load(),
		Splits:        p.splits.Load(),
		Elements:      p.elements.Load(),
		Pending:       p.pending.Load(),
		MaxPending:    p.win.MaxPending,
		MaxTs:         p.maxTs.Load(),
		Watermark:     p.watermark(),
		Sealed:        p.SealedCount(),
		Backpressured: p.backpressured.Load(),
		LateRejected:  p.lateRejected.Load(),
		Closed:        closed,
	}
	p.paneMu.Lock()
	var oldest time.Time
	for _, ps := range p.panes {
		if ps.splitsIn.Load() == 0 {
			continue
		}
		if oldest.IsZero() || ps.firstAppend.Before(oldest) {
			oldest = ps.firstAppend
		}
	}
	p.paneMu.Unlock()
	if !oldest.IsZero() {
		st.WatermarkLag = time.Since(oldest)
	}
	return st
}

// QueueStats returns the aggregated SPSC counters. Exact after the
// session stopped; while live it approximates from telemetry mirrors
// (zero without telemetry).
func (p *Pipeline[S, K, V, R]) QueueStats() mr.QueueStats {
	select {
	case <-p.stopped:
		p.finalMu.Lock()
		defer p.finalMu.Unlock()
		return p.finalQueue
	default:
	}
	var qs mr.QueueStats
	if p.tel != nil {
		c := p.tel.CountersNow()
		qs.Pushes = c.Pushes
		qs.FailedPush = c.FailedPush
		qs.Pops = c.Pops
		qs.EmptyPolls = c.EmptyPolls
		qs.ShortPolls = c.ShortPolls
		qs.BatchCalls = c.BatchCalls
	}
	return qs
}

// Uptime returns how long the session has been running.
func (p *Pipeline[S, K, V, R]) Uptime() time.Duration {
	if p.startAt.IsZero() {
		return 0
	}
	return time.Since(p.startAt)
}
