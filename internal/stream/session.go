package stream

import (
	"context"
	"fmt"
	"time"

	"ramr/internal/mr"
	"ramr/internal/tuner"
)

// RawChunk is the workload-neutral chunk payload the service tier
// accepts over HTTP: a workload adapter's Decode turns it into typed
// splits. Exactly one of Elements/Lines is meaningful per workload
// (SYNTH consumes Elements, text workloads consume Lines).
type RawChunk struct {
	// Ts is the chunk's event-time tick; negative means auto-assign.
	Ts int64
	// Elements asks a synthetic workload for this many generated
	// elements.
	Elements int
	// Lines carries literal input records for text workloads.
	Lines []string
}

// SamplePair is one stringified result pair for window previews.
type SamplePair struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// WindowMeta is a sealed window's type-erased summary: everything the
// service tier serves without knowing the job's key/value types.
type WindowMeta struct {
	Index    int64     `json:"index"`
	Start    int64     `json:"start"`
	End      int64     `json:"end"`
	Pairs    int       `json:"pairs"`
	Elements uint64    `json:"elements"`
	Splits   int64     `json:"splits"`
	Chunks   int64     `json:"chunks"`
	OpenedAt time.Time `json:"opened_at"`
	SealedAt time.Time `json:"sealed_at"`
	// Digest fingerprints the full sorted pair set (workload-defined
	// fold), so window results can be compared without shipping them.
	Digest string `json:"digest,omitempty"`
	// Sample holds the first pairs of the sorted result, stringified.
	Sample []SamplePair `json:"sample,omitempty"`
}

// EraseOpts carries the typed→erased adapters for one workload.
type EraseOpts[S any, K comparable, R any] struct {
	// Decode turns a raw chunk into typed splits. Required.
	Decode func(RawChunk) ([]S, error)
	// Digest fingerprints a sealed window's sorted pairs. Optional.
	Digest func([]mr.Pair[K, R]) string
	// Format stringifies one pair for the window sample. Optional;
	// fmt.Sprint is the fallback.
	Format func(mr.Pair[K, R]) (key, value string)
	// SampleLimit bounds the stringified sample (default 10, 0 keeps
	// the default, negative disables sampling).
	SampleLimit int
}

// Session is a type-erased resident pipeline: the service tier drives
// Start/Append/Close/Cancel and reads windows without the job's type
// parameters. Build one with Erase.
type Session struct {
	start      func() error
	append     func(RawChunk) (int64, error)
	close      func(context.Context) error
	cancel     func()
	cancelWait func()
	done       func() <-chan struct{}
	err        func() error
	stats      func() Stats
	windows    func() []WindowMeta
	window     func(int64) (WindowMeta, bool)
	queueStats func() mr.QueueStats
	tunerRep   func() *tuner.Report
	setOnSeal  func(func(WindowMeta))
	spec       mr.StreamSpec
}

// Erase wraps a typed pipeline in a Session. Call before Start.
func Erase[S any, K comparable, V, R any](p *Pipeline[S, K, V, R], opts EraseOpts[S, K, R]) (*Session, error) {
	if opts.Decode == nil {
		return nil, fmt.Errorf("stream: EraseOpts.Decode is required")
	}
	limit := opts.SampleLimit
	if limit == 0 {
		limit = 10
	}
	meta := func(w *Window[K, R]) WindowMeta {
		m := WindowMeta{
			Index:    w.Index,
			Start:    w.Start,
			End:      w.End,
			Pairs:    len(w.Pairs),
			Elements: w.Elements,
			Splits:   w.Splits,
			Chunks:   w.Chunks,
			OpenedAt: w.OpenedAt,
			SealedAt: w.SealedAt,
		}
		if opts.Digest != nil {
			m.Digest = opts.Digest(w.Pairs)
		}
		if limit > 0 {
			n := len(w.Pairs)
			if n > limit {
				n = limit
			}
			for _, pr := range w.Pairs[:n] {
				var k, v string
				if opts.Format != nil {
					k, v = opts.Format(pr)
				} else {
					k, v = fmt.Sprint(pr.Key), fmt.Sprint(pr.Value)
				}
				m.Sample = append(m.Sample, SamplePair{Key: k, Value: v})
			}
		}
		return m
	}
	return &Session{
		start: p.Start,
		append: func(rc RawChunk) (int64, error) {
			splits, err := opts.Decode(rc)
			if err != nil {
				return 0, err
			}
			return p.Append(Chunk[S]{Ts: rc.Ts, Splits: splits})
		},
		close:      p.Close,
		cancel:     p.Cancel,
		cancelWait: p.CancelWait,
		done:       p.Done,
		err:        p.Err,
		stats:      p.Stats,
		windows: func() []WindowMeta {
			ws := p.Windows()
			out := make([]WindowMeta, len(ws))
			for i, w := range ws {
				out[i] = meta(w)
			}
			return out
		},
		window: func(n int64) (WindowMeta, bool) {
			w, ok := p.Window(n)
			if !ok {
				return WindowMeta{}, false
			}
			return meta(w), true
		},
		queueStats: p.QueueStats,
		tunerRep:   p.TunerReport,
		setOnSeal: func(fn func(WindowMeta)) {
			p.OnSeal = func(w *Window[K, R]) { fn(meta(w)) }
		},
		spec: p.win,
	}, nil
}

// Start spawns the resident workers.
func (s *Session) Start() error { return s.start() }

// Append admits one raw chunk and returns its assigned tick.
func (s *Session) Append(rc RawChunk) (int64, error) { return s.append(rc) }

// Close seals the session and flushes the final windows.
func (s *Session) Close(ctx context.Context) error { return s.close(ctx) }

// Cancel aborts the session without draining.
func (s *Session) Cancel() { s.cancel() }

// CancelWait aborts and waits for every worker to exit.
func (s *Session) CancelWait() { s.cancelWait() }

// Done is closed once every session goroutine has exited.
func (s *Session) Done() <-chan struct{} { return s.done() }

// Err returns the session's first error.
func (s *Session) Err() error { return s.err() }

// Stats snapshots the session's live counters.
func (s *Session) Stats() Stats { return s.stats() }

// Windows returns the sealed windows' summaries in seal order.
func (s *Session) Windows() []WindowMeta { return s.windows() }

// Window returns sealed window n's summary, if sealed.
func (s *Session) Window(n int64) (WindowMeta, bool) { return s.window(n) }

// QueueStats returns the aggregated SPSC counters.
func (s *Session) QueueStats() mr.QueueStats { return s.queueStats() }

// TunerReport returns the AIMD controller's decision log, or nil.
func (s *Session) TunerReport() *tuner.Report { return s.tunerRep() }

// SetOnSeal installs the per-window callback; call before Start.
func (s *Session) SetOnSeal(fn func(WindowMeta)) { s.setOnSeal(fn) }

// Spec returns the resolved window spec the session runs under.
func (s *Session) Spec() mr.StreamSpec { return s.spec }
