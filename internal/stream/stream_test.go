package stream

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/tuner"
)

// countSpec is a counting job: a split is an element count, Map emits
// (e mod keys, 1) per element, so a window's Elements must equal the
// sum of its chunks' split counts and every pair value sums the
// elements per key — exact conservation with no kernel noise.
func countSpec(keys int) *mr.Spec[int, int, uint64, uint64] {
	return &mr.Spec[int, int, uint64, uint64]{
		Name: "count",
		Map: func(n int, emit func(int, uint64)) {
			for e := 0; e < n; e++ {
				emit(e%keys, 1)
			}
		},
		Combine:      func(a, b uint64) uint64 { return a + b },
		Reduce:       mr.IdentityReduce[int, uint64](),
		NewContainer: func() container.Container[int, uint64] { return container.NewFixedArray[uint64](keys) },
		Less:         func(a, b int) bool { return a < b },
	}
}

func testConfig(t *testing.T, spec *mr.StreamSpec) mr.Config {
	t.Helper()
	cfg := mr.DefaultConfig()
	cfg.Mappers = 2
	cfg.Combiners = 1
	cfg.QueueCapacity = 256
	cfg.Stream = spec
	return cfg
}

// chunkOf builds a chunk of splits elements-per-split each.
func chunkOf(ts int64, splits, elems int) Chunk[int] {
	c := Chunk[int]{Ts: ts}
	for i := 0; i < splits; i++ {
		c.Splits = append(c.Splits, elems)
	}
	return c
}

// waitSealed polls until at least n windows sealed or the deadline hits.
func waitSealed[S any, K comparable, V, R any](t *testing.T, p *Pipeline[S, K, V, R], n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.SealedCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d sealed windows, have %d", n, p.SealedCount())
		}
		time.Sleep(time.Millisecond)
	}
}

// checkNoLeak fails the test if the session's goroutines outlive it.
func checkNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTumblingConservation is the acceptance scenario: a resident
// session ingests 3 chunks over time and serves 2 sealed tumbling
// windows with exact element conservation, without restarting workers.
func TestTumblingConservation(t *testing.T) {
	before := runtime.NumGoroutine()
	const keys = 16
	p, err := New(countSpec(keys), testConfig(t, &mr.StreamSpec{Window: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Three chunks at ticks 0, 1, 2 with distinct element totals.
	want := []uint64{4 * 100, 3 * 50, 2 * 25}
	if _, err := p.Append(chunkOf(0, 4, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(chunkOf(1, 3, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(chunkOf(2, 2, 25)); err != nil {
		t.Fatal(err)
	}
	// Watermark = 2, so windows 0 and 1 seal while the session stays
	// open — resident workers, no teardown between windows.
	waitSealed(t, p, 2)
	if got := p.SealedCount(); got != 2 {
		t.Fatalf("sealed windows before close = %d, want 2", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	ws := p.Windows()
	if len(ws) != 3 {
		t.Fatalf("sealed windows after close = %d, want 3", len(ws))
	}
	var total uint64
	for i, w := range ws {
		if w.Index != int64(i) || w.Start != int64(i) || w.End != int64(i)+1 {
			t.Fatalf("window %d bounds = [%d,%d) index %d", i, w.Start, w.End, w.Index)
		}
		if w.Elements != want[i] {
			t.Errorf("window %d elements = %d, want %d (conservation violated)", i, w.Elements, want[i])
		}
		var sum uint64
		for _, pr := range w.Pairs {
			sum += pr.Value
		}
		if sum != want[i] {
			t.Errorf("window %d pair-value sum = %d, want %d", i, sum, want[i])
		}
		total += w.Elements
	}
	if total != want[0]+want[1]+want[2] {
		t.Errorf("total elements across windows = %d, want %d", total, want[0]+want[1]+want[2])
	}
	st := p.Stats()
	if st.Chunks != 3 || st.Splits != 9 {
		t.Errorf("stats chunks=%d splits=%d, want 3/9", st.Chunks, st.Splits)
	}
	checkNoLeak(t, before)
}

// TestSlidingWindows checks pane sharing: W=2,S=1 windows overlap by
// one tick, so each window's elements are the sum of two ticks'.
func TestSlidingWindows(t *testing.T) {
	const keys = 8
	p, err := New(countSpec(keys), testConfig(t, &mr.StreamSpec{Window: 2, Slide: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	perTick := []uint64{100, 200, 300, 400}
	for ts, n := range perTick {
		if _, err := p.Append(chunkOf(int64(ts), 1, int(n))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	ws := p.Windows()
	// Windows 0..3 hold data: [0,2) [1,3) [2,4) [3,5).
	want := []uint64{300, 500, 700, 400}
	if len(ws) != len(want) {
		t.Fatalf("sealed %d windows, want %d", len(ws), len(want))
	}
	for i, w := range ws {
		if w.Elements != want[i] {
			t.Errorf("window %d elements = %d, want %d", w.Index, w.Elements, want[i])
		}
	}
}

// TestAutoTicks checks TsAuto assignment: each auto chunk gets the next
// tick, so N auto chunks under W=1 produce N windows.
func TestAutoTicks(t *testing.T) {
	p, err := New(countSpec(4), testConfig(t, &mr.StreamSpec{Window: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ts, err := p.Append(chunkOf(TsAuto, 1, 10))
		if err != nil {
			t.Fatal(err)
		}
		if ts != int64(i) {
			t.Fatalf("auto tick %d assigned %d", i, ts)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if n := p.SealedCount(); n != 3 {
		t.Fatalf("sealed %d windows, want 3", n)
	}
}

// TestBackpressure checks the admission bound: a chunk that would push
// pending past MaxPending draws a BackpressureError with a usable
// retry hint, and the session recovers once the backlog drains.
func TestBackpressure(t *testing.T) {
	spec := &mr.StreamSpec{Window: 1, MaxPending: 4}
	p, err := New(countSpec(4), testConfig(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// An oversize chunk can never be admitted regardless of backlog.
	_, err = p.Append(chunkOf(0, 5, 1))
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("oversize chunk: got %v, want BackpressureError", err)
	}
	if bp.RetryAfter < 50*time.Millisecond || bp.Limit != 4 {
		t.Errorf("hint = %+v", bp)
	}
	if p.Stats().Backpressured != 1 {
		t.Errorf("backpressured counter = %d, want 1", p.Stats().Backpressured)
	}
	// A conforming chunk is admitted after the rejection.
	if _, err := p.Append(chunkOf(0, 4, 10)); err != nil {
		t.Fatalf("conforming chunk rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLateChunkRejected checks the watermark contract: a tick behind
// the watermark is rejected loudly, not silently folded into a sealed
// window.
func TestLateChunkRejected(t *testing.T) {
	p, err := New(countSpec(4), testConfig(t, &mr.StreamSpec{Window: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(chunkOf(5, 1, 10)); err != nil {
		t.Fatal(err)
	}
	_, err = p.Append(chunkOf(2, 1, 10))
	var late *LateChunkError
	if !errors.As(err, &late) {
		t.Fatalf("late chunk: got %v, want LateChunkError", err)
	}
	if late.Ts != 2 || late.Watermark != 5 {
		t.Errorf("late error = %+v", late)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProducers hammers Append from several goroutines (with
// per-producer retry on backpressure) and checks global conservation
// across the sealed windows under -race.
func TestConcurrentProducers(t *testing.T) {
	before := runtime.NumGoroutine()
	const keys = 32
	cfg := testConfig(t, &mr.StreamSpec{Window: 1, Lateness: 2, MaxPending: 64})
	cfg.Mappers = 4
	cfg.Combiners = 2
	p, err := New(countSpec(keys), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const chunksEach = 20
	const elemsPer = 30
	var wg sync.WaitGroup
	var sent atomic.Int64
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < chunksEach; i++ {
				for {
					_, err := p.Append(chunkOf(TsAuto, 2, elemsPer))
					if err == nil {
						sent.Add(1)
						break
					}
					var bp *BackpressureError
					if errors.As(err, &bp) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	var total uint64
	for _, w := range p.Windows() {
		total += w.Elements
	}
	want := uint64(sent.Load()) * 2 * elemsPer
	if total != want {
		t.Fatalf("elements across windows = %d, want %d (conservation violated)", total, want)
	}
	checkNoLeak(t, before)
}

// TestCancelMidStream checks that cancelling a live session frees every
// worker promptly even with input still queued.
func TestCancelMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	p, err := New(countSpec(8), testConfig(t, &mr.StreamSpec{Window: 1, MaxPending: 512}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := p.Append(chunkOf(int64(i), 8, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	p.CancelWait()
	if err := p.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err after cancel = %v, want context.Canceled", err)
	}
	if _, err := p.Append(chunkOf(100, 1, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("append after cancel = %v, want context.Canceled", err)
	}
	checkNoLeak(t, before)
}

// TestMapperPanicAborts is the faultinject scenario: a mapper panic
// mid-window must abort the whole session cleanly — Err reports the
// panic, appends fail, all workers exit.
func TestMapperPanicAborts(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig(t, &mr.StreamSpec{Window: 1, MaxPending: 512})
	var fired atomic.Bool
	cfg.Hooks = &mr.Hooks{MapTask: func(int) {
		if fired.CompareAndSwap(false, true) {
			panic("injected mapper fault")
		}
	}}
	p, err := New(countSpec(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Append(chunkOf(int64(i), 4, 100)); err != nil {
			break // session may already be dying; that's the point
		}
	}
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("session did not stop after mapper panic")
	}
	var pe *mr.PanicError
	if err := p.Err(); !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	} else if !strings.Contains(pe.Error(), "injected mapper fault") {
		t.Fatalf("panic error lost the cause: %v", pe)
	}
	checkNoLeak(t, before)
}

// TestTunedSession checks the AIMD controller runs across windows on a
// resident pipeline and its report is readable after close.
func TestTunedSession(t *testing.T) {
	cfg := testConfig(t, &mr.StreamSpec{Window: 1, MaxPending: 512})
	cfg.Tuner = &tuner.Config{Seed: 7}
	p, err := New(countSpec(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := p.Append(chunkOf(int64(i), 4, 500)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the sampler tick between windows
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if p.SealedCount() < 5 {
		t.Fatalf("sealed %d windows, want >= 5", p.SealedCount())
	}
	if rep := p.TunerReport(); rep == nil {
		t.Fatal("tuned session returned nil tuner report")
	}
}

// TestStreamConfigRejectedByBatchEngines checks the batch/stream fence:
// a Config with Stream set cannot reach the one-shot engines.
func TestStreamRequiresSpec(t *testing.T) {
	cfg := mr.DefaultConfig()
	cfg.Mappers = 2
	if _, err := New(countSpec(4), cfg); err == nil {
		t.Fatal("New accepted a config without Stream")
	}
	bad := testConfig(t, &mr.StreamSpec{Window: 3, Slide: 2})
	if _, err := New(countSpec(4), bad); err == nil {
		t.Fatal("New accepted Slide that does not divide Window")
	}
}
