package tuner

import (
	"reflect"
	"testing"
	"time"
)

func baseSettings() Settings {
	return Settings{Combiners: 2, Batch: 1000, Backoff: 128 * time.Microsecond}
}

// congested is an epoch that should eventually grow the pool: rings near
// full, producers failing pushes, no short polls.
func congested() Signals {
	return Signals{OccP90: 0.95, FailedPushRate: 0.20, ShortPollRate: 0.0, CombinedPairs: 1000, Ticks: 16}
}

// starved is an epoch that should eventually shrink the pool: rings near
// empty, combiners mostly short-polling.
func starved() Signals {
	return Signals{OccP90: 0.02, FailedPushRate: 0.0, ShortPollRate: 0.9, CombinedPairs: 1000, Ticks: 16}
}

// quiet is an epoch inside the deadband: no rule should fire except the
// backoff decay.
func quiet() Signals {
	return Signals{OccP90: 0.4, FailedPushRate: 0.0, ShortPollRate: 0.1, CombinedPairs: 1000, Ticks: 16}
}

// TestDeterminism: two controllers with the same seed fed the same signal
// series must emit identical decision sequences; a different seed may
// diverge (and with this series does not have to), but the same-seed pair
// is the contract the acceptance criteria names.
func TestDeterminism(t *testing.T) {
	series := []Signals{congested(), congested(), starved(), quiet(), congested(), starved(), starved(), quiet(), congested(), congested()}
	run := func(seed int64) []Decision {
		c := NewController(Config{Seed: seed, MaxCombiners: 8}, baseSettings())
		var out []Decision
		for _, s := range series {
			out = append(out, c.Advance(s))
		}
		return out
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
}

// TestHysteresisPreventsSingleEpochAction: one over-threshold epoch must
// not resize the pool; Hysteresis consecutive ones must.
func TestHysteresisPreventsSingleEpochAction(t *testing.T) {
	c := NewController(Config{Hysteresis: 3, MaxCombiners: 8}, baseSettings())
	d := c.Advance(congested())
	if d.Settings.Combiners != 2 {
		t.Fatalf("pool resized after one epoch: %+v", d)
	}
	c.Advance(congested())
	d = c.Advance(congested())
	if d.Settings.Combiners != 3 || d.Action != "grow" {
		t.Fatalf("pool did not grow after 3 congested epochs: %+v", d)
	}
	// An interleaved quiet epoch must reset the streak.
	c2 := NewController(Config{Hysteresis: 2, MaxCombiners: 8}, baseSettings())
	c2.Advance(congested())
	c2.Advance(quiet())
	d = c2.Advance(congested())
	if d.Settings.Combiners != 2 {
		t.Fatalf("streak survived a quiet epoch: %+v", d)
	}
}

// TestGrowOnImbalance: a skewed epoch — mean occupancy comfortably below
// GrowOccupancy but one hot ring pushing the imbalance ratio past
// GrowImbalance while producers fail pushes — must grow the pool, and
// imbalance alone (no backpressure) must not.
func TestGrowOnImbalance(t *testing.T) {
	skewed := Signals{OccP90: 0.30, QueueImbalance: 3.5, FailedPushRate: 0.10, CombinedPairs: 1000, Ticks: 16}
	c := NewController(Config{Hysteresis: 2, MaxCombiners: 8}, baseSettings())
	c.Advance(skewed)
	d := c.Advance(skewed)
	if d.Settings.Combiners != 3 || d.Action != "grow" {
		t.Fatalf("pool did not grow on sustained imbalance: %+v", d)
	}

	// Imbalance without failed pushes is not backpressure: hold.
	idleSkew := Signals{OccP90: 0.30, QueueImbalance: 3.5, FailedPushRate: 0.0, CombinedPairs: 1000, Ticks: 16}
	c2 := NewController(Config{Hysteresis: 2, MaxCombiners: 8}, baseSettings())
	for i := 0; i < 4; i++ {
		if d := c2.Advance(idleSkew); d.Action == "grow" {
			t.Fatalf("pool grew on imbalance without backpressure: %+v", d)
		}
	}

	// Below the imbalance threshold the old rule governs unchanged.
	mild := Signals{OccP90: 0.30, QueueImbalance: 1.2, FailedPushRate: 0.10, CombinedPairs: 1000, Ticks: 16}
	c3 := NewController(Config{Hysteresis: 2, MaxCombiners: 8}, baseSettings())
	for i := 0; i < 4; i++ {
		if d := c3.Advance(mild); d.Action == "grow" {
			t.Fatalf("pool grew below both high-water marks: %+v", d)
		}
	}
}

// TestShrinkOnStarvation: sustained short-poll dominance with empty rings
// parks a combiner, bounded below by MinCombiners.
func TestShrinkOnStarvation(t *testing.T) {
	c := NewController(Config{Hysteresis: 2, MinCombiners: 1, MaxCombiners: 8}, baseSettings())
	c.Advance(starved())
	d := c.Advance(starved())
	if d.Settings.Combiners != 1 || d.Action != "shrink" {
		t.Fatalf("pool did not shrink: %+v", d)
	}
	// Already at the floor: further starvation holds.
	c.Advance(starved())
	d = c.Advance(starved())
	if d.Settings.Combiners != 1 || d.Action == "shrink" {
		t.Fatalf("pool shrank below MinCombiners: %+v", d)
	}
}

// TestPoolBounds: growth saturates at MaxCombiners.
func TestPoolBounds(t *testing.T) {
	c := NewController(Config{Hysteresis: 1, MaxCombiners: 3}, baseSettings())
	for i := 0; i < 10; i++ {
		c.Advance(congested())
	}
	if got := c.Settings().Combiners; got != 3 {
		t.Fatalf("combiners = %d, want saturation at 3", got)
	}
}

// TestBatchAIMD: short-poll dominance (without the empty-ring condition
// that would shrink the pool) halves the batch; congestion grows it
// additively.
func TestBatchAIMD(t *testing.T) {
	// ShortPollRate high but OccP90 above ShrinkOccupancy: not a shrink
	// signal, so the batch rule fires.
	shortPolls := Signals{OccP90: 0.4, ShortPollRate: 0.9, CombinedPairs: 1000, Ticks: 16}
	c := NewController(Config{Hysteresis: 2, MinBatch: 100}, baseSettings())
	d := c.Advance(shortPolls)
	if d.Settings.Batch != 500 || d.Action != "batch-" {
		t.Fatalf("batch not halved: %+v", d)
	}

	// Congested epochs grow the batch by BatchStep once the pool rule is
	// out of the way (MaxCombiners pins the pool).
	c2 := NewController(Config{Hysteresis: 2, MaxCombiners: 2, BatchStep: 250}, baseSettings())
	var grew bool
	for i := 0; i < 6; i++ {
		if d := c2.Advance(congested()); d.Action == "batch+" {
			grew = true
			if d.Settings.Batch != 1250 {
				t.Fatalf("batch step wrong: %+v", d)
			}
			break
		}
	}
	if !grew {
		t.Fatalf("batch never grew under congestion: %+v", c2.Report())
	}
}

// TestRevertOnRegression: a knob step followed by a big throughput drop
// is undone and a cooldown holds the settings.
func TestRevertOnRegression(t *testing.T) {
	c := NewController(Config{Hysteresis: 2, MaxCombiners: 2, MinBatch: 100}, baseSettings())
	shortPolls := Signals{OccP90: 0.4, ShortPollRate: 0.9, CombinedPairs: 10000, Ticks: 16}
	d := c.Advance(shortPolls)
	if d.Action != "batch-" {
		t.Fatalf("setup step missing: %+v", d)
	}
	crash := Signals{OccP90: 0.4, ShortPollRate: 0.9, CombinedPairs: 1000, Ticks: 16}
	d = c.Advance(crash)
	if d.Action != "revert" || d.Settings.Batch != 1000 {
		t.Fatalf("regression not reverted: %+v", d)
	}
	d = c.Advance(Signals{OccP90: 0.95, FailedPushRate: 0.5, CombinedPairs: 1000, Ticks: 16})
	if d.Action != "hold" {
		t.Fatalf("cooldown not honored after revert: %+v", d)
	}
}

// TestScheduleReplay: scripted mode follows the schedule exactly, clamped
// to bounds, holding the last entry, and never touches the knobs.
func TestScheduleReplay(t *testing.T) {
	c := NewController(Config{Schedule: []int{3, 1, 99}, MaxCombiners: 4}, baseSettings())
	want := []int{3, 1, 4, 4, 4}
	for i, w := range want {
		d := c.Advance(congested())
		if d.Settings.Combiners != w {
			t.Fatalf("epoch %d: combiners = %d, want %d", i, d.Settings.Combiners, w)
		}
		if d.Settings.Batch != 1000 || d.Settings.Backoff != 128*time.Microsecond {
			t.Fatalf("schedule mode touched knobs: %+v", d)
		}
	}
}

// TestReportTrajectory: the report carries the full epoch log, initial
// and final settings, and the settled flag.
func TestReportTrajectory(t *testing.T) {
	c := NewController(Config{Hysteresis: 1, MaxCombiners: 4}, baseSettings())
	for i := 0; i < 3; i++ {
		c.Advance(congested())
	}
	rep := c.Report()
	if len(rep.Epochs) != 3 {
		t.Fatalf("epoch log has %d entries, want 3", len(rep.Epochs))
	}
	if rep.Initial.Combiners != 2 {
		t.Fatalf("initial settings lost: %+v", rep.Initial)
	}
	if rep.Final != rep.Epochs[2].Settings {
		t.Fatalf("final settings mismatch: %+v vs %+v", rep.Final, rep.Epochs[2].Settings)
	}
	quiet := NewController(Config{MaxCombiners: 2}, baseSettings())
	quiet.Advance(Signals{})
	quiet.Advance(Signals{})
	quiet.Advance(Signals{})
	if !quiet.Report().Settled {
		// All-zero signals still decay the backoff until MinBackoff, so
		// give it a few more epochs to reach the floor.
		for i := 0; i < 8; i++ {
			quiet.Advance(Signals{})
		}
		if !quiet.Report().Settled {
			t.Fatalf("quiet controller never settled: %+v", quiet.Report())
		}
	}
}

// TestConfigValidate covers the representative invalid shapes.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{EpochTicks: -1},
		{Hysteresis: -1},
		{MinCombiners: 4, MaxCombiners: 2},
		{MinBatch: 100, MaxBatch: 10},
		{MinBackoff: time.Second, MaxBackoff: time.Millisecond},
		{RevertMargin: 1.5},
		{GrowImbalance: -1},
		{Schedule: []int{2, 0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	good := Config{Seed: 1, EpochTicks: 8, Schedule: []int{1, 2, 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good config: %v", err)
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config must validate: %v", err)
	}
}
