// Package tuner closes the telemetry→control loop of the runtime: it
// turns the live signals PR 3 made observable — sampled queue occupancy,
// failed-push and short-poll rates, per-phase pair throughput — into knob
// adjustments applied while a job is still running.
//
// The paper's headline results all rest on hand-tuned settings chosen per
// workload and per machine by offline sweeps (§IV): the mapper-to-combiner
// ratio, the consume batch size, the queue capacity and the
// sleep-on-failed-push backoff. Lu et al.'s Xeon Phi study shows the
// optimal point shifts drastically across workloads on one chip, and
// OS4M-style operation-level schedulers rebalance MapReduce work online;
// this package is the runtime's equivalent of those results.
//
// Three pieces:
//
//   - Controller: a deterministic feedback controller stepped once per
//     epoch (a fixed number of telemetry sampler ticks). It sizes the
//     elastic combiner pool from backpressure signals (grow on sustained
//     high occupancy + failed pushes, shrink when short polls dominate)
//     and runs an AIMD loop over the consume batch size and the producer
//     sleep backoff, with hysteresis and a revert rule so a step that
//     costs throughput is undone. Given a seed and a fixed Signals
//     series, the decision sequence is reproducible bit for bit.
//
//   - Search: the offline mode — seeded coordinate descent over
//     ratio × queue capacity × batch size with a small evaluation cache
//     and early stopping, the automated version of the paper's manual
//     sweeps.
//
//   - Profile: the JSON artifact a search emits, loadable as a warm
//     start (mr.Config.ApplyProfile).
//
// The package deliberately depends on nothing but the standard library so
// every layer of the runtime (mr, core, commands) can import it without
// cycles; the engine adapts telemetry readings into Signals and applies
// Decisions to its pool and queues.
package tuner

import (
	"fmt"
	"math/rand"
	"time"
)

// Defaults for Config fields left zero. Epochs are measured in sampler
// ticks, not wall time, so one epoch at the default telemetry interval
// (200us) spans ~3.2ms — long enough to see hundreds of batches, short
// enough to converge within small runs.
const (
	DefaultEpochTicks = 16
	DefaultHysteresis = 2

	DefaultGrowOccupancy   = 0.80
	DefaultGrowFailedPush  = 0.02
	DefaultShrinkShortPoll = 0.60
	DefaultShrinkOccupancy = 0.10
	// DefaultGrowImbalance is the queue occupancy-imbalance ratio
	// (max/mean depth, 1.0 = uniform) beyond which a backpressured epoch
	// grows the pool even though mean occupancy looks fine: one hot queue
	// is the straggler signature of a skewed key distribution.
	DefaultGrowImbalance = 2.0

	DefaultMinBatch  = 16
	DefaultMaxBatch  = 8192
	DefaultBatchStep = 64

	DefaultMinBackoff  = 8 * time.Microsecond
	DefaultMaxBackoff  = 1024 * time.Microsecond
	DefaultBackoffStep = 32 * time.Microsecond

	// DefaultRevertMargin is the relative throughput drop that makes the
	// controller undo its previous knob step: hill climbing's "that was
	// downhill" test, with enough slack to ignore sampling noise.
	DefaultRevertMargin = 0.15
)

// Config enables and parameterizes the online tuner. Assign a non-nil
// Config to mr.Config.Tuner; nil keeps today's fully static behaviour
// (the engines then pay only nil checks). The zero value of every field
// selects a documented default, so &tuner.Config{} is a sensible start.
type Config struct {
	// Seed drives the controller's deterministic tie-breaking (which
	// knob family a mixed epoch adjusts first). Two runs over the same
	// telemetry series and seed produce identical decision sequences.
	Seed int64

	// EpochTicks is the controller's epoch length in telemetry sampler
	// ticks; decisions are made only at epoch boundaries. 0 selects
	// DefaultEpochTicks.
	EpochTicks int

	// Hysteresis is how many consecutive epochs a pool signal must stay
	// beyond its threshold before the pool grows or shrinks, preventing
	// oscillation on a noisy boundary. 0 selects DefaultHysteresis.
	Hysteresis int

	// GrowOccupancy and GrowFailedPush are the high-water marks: when the
	// epoch's sampled occupancy p90 exceeds GrowOccupancy AND the
	// failed-push rate exceeds GrowFailedPush for Hysteresis consecutive
	// epochs, one combiner is added. 0 selects the defaults.
	GrowOccupancy  float64
	GrowFailedPush float64

	// GrowImbalance is the queue occupancy-imbalance high-water mark: an
	// epoch whose QueueImbalance exceeds it while producers see failed
	// pushes counts toward the grow streak even when mean occupancy is
	// below GrowOccupancy, so the pool grows toward a single hot queue
	// instead of waiting for every ring to fill. 0 selects
	// DefaultGrowImbalance.
	GrowImbalance float64

	// ShrinkShortPoll and ShrinkOccupancy are the low-water marks: when
	// the short-poll rate exceeds ShrinkShortPoll AND occupancy p90 stays
	// under ShrinkOccupancy for Hysteresis consecutive epochs, one
	// combiner is parked. 0 selects the defaults.
	ShrinkShortPoll float64
	ShrinkOccupancy float64

	// MinCombiners/MaxCombiners bound the elastic pool. 0 lets the
	// engine derive them (min 1, max = the mapper count).
	MinCombiners int
	MaxCombiners int

	// MinBatch/MaxBatch/BatchStep bound and step the consume batch size
	// AIMD loop (additive increase by BatchStep, multiplicative decrease
	// by halving). 0 selects the defaults; the engine additionally clamps
	// the batch to the queue capacity.
	MinBatch  int
	MaxBatch  int
	BatchStep int

	// MinBackoff/MaxBackoff/BackoffStep bound and step the producer
	// sleep-cap AIMD loop. 0 selects the defaults.
	MinBackoff  time.Duration
	MaxBackoff  time.Duration
	BackoffStep time.Duration

	// RevertMargin is the relative throughput regression that undoes the
	// previous knob step. 0 selects DefaultRevertMargin.
	RevertMargin float64

	// Schedule, when non-empty, replaces the signal-driven pool logic
	// with a scripted combiner count per epoch (the last entry holds
	// forever) and disables the knob loops. It exists for deterministic
	// churn testing — the fault-injection sweep drives grow/shrink
	// transitions through it — and for replaying a recorded run.
	Schedule []int
}

// withDefaults returns c with every zero field replaced by its default.
func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	defd := func(v *time.Duration, d time.Duration) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.EpochTicks, DefaultEpochTicks)
	def(&c.Hysteresis, DefaultHysteresis)
	deff(&c.GrowOccupancy, DefaultGrowOccupancy)
	deff(&c.GrowFailedPush, DefaultGrowFailedPush)
	deff(&c.GrowImbalance, DefaultGrowImbalance)
	deff(&c.ShrinkShortPoll, DefaultShrinkShortPoll)
	deff(&c.ShrinkOccupancy, DefaultShrinkOccupancy)
	def(&c.MinBatch, DefaultMinBatch)
	def(&c.MaxBatch, DefaultMaxBatch)
	def(&c.BatchStep, DefaultBatchStep)
	defd(&c.MinBackoff, DefaultMinBackoff)
	defd(&c.MaxBackoff, DefaultMaxBackoff)
	defd(&c.BackoffStep, DefaultBackoffStep)
	deff(&c.RevertMargin, DefaultRevertMargin)
	return c
}

// Validate reports the first problem with the configuration. Zero fields
// are legal (they select defaults); set fields must be coherent.
func (c *Config) Validate() error {
	switch {
	case c == nil:
		return nil
	case c.EpochTicks < 0:
		return fmt.Errorf("tuner: EpochTicks must be >= 0, got %d", c.EpochTicks)
	case c.Hysteresis < 0:
		return fmt.Errorf("tuner: Hysteresis must be >= 0, got %d", c.Hysteresis)
	case c.MinCombiners < 0 || c.MaxCombiners < 0:
		return fmt.Errorf("tuner: combiner bounds must be >= 0, got [%d, %d]", c.MinCombiners, c.MaxCombiners)
	case c.MinCombiners > 0 && c.MaxCombiners > 0 && c.MinCombiners > c.MaxCombiners:
		return fmt.Errorf("tuner: MinCombiners %d > MaxCombiners %d", c.MinCombiners, c.MaxCombiners)
	case c.MinBatch < 0 || c.MaxBatch < 0:
		return fmt.Errorf("tuner: batch bounds must be >= 0, got [%d, %d]", c.MinBatch, c.MaxBatch)
	case c.MinBatch > 0 && c.MaxBatch > 0 && c.MinBatch > c.MaxBatch:
		return fmt.Errorf("tuner: MinBatch %d > MaxBatch %d", c.MinBatch, c.MaxBatch)
	case c.MinBackoff < 0 || c.MaxBackoff < 0:
		return fmt.Errorf("tuner: backoff bounds must be >= 0, got [%v, %v]", c.MinBackoff, c.MaxBackoff)
	case c.MinBackoff > 0 && c.MaxBackoff > 0 && c.MinBackoff > c.MaxBackoff:
		return fmt.Errorf("tuner: MinBackoff %v > MaxBackoff %v", c.MinBackoff, c.MaxBackoff)
	case c.RevertMargin < 0 || c.RevertMargin >= 1:
		return fmt.Errorf("tuner: RevertMargin must be in [0, 1), got %g", c.RevertMargin)
	case c.GrowImbalance < 0:
		return fmt.Errorf("tuner: GrowImbalance must be >= 0, got %g", c.GrowImbalance)
	}
	for i, n := range c.Schedule {
		if n < 1 {
			return fmt.Errorf("tuner: Schedule[%d] must be >= 1, got %d", i, n)
		}
	}
	return nil
}

// Signals is one epoch's observed telemetry deltas, the controller's only
// input. The engine computes them from internal/telemetry between epoch
// boundaries.
type Signals struct {
	// OccP90 is the 90th percentile of sampled queue occupancy
	// (depth/capacity, in [0,1]) across all queues and ticks of the
	// epoch.
	OccP90 float64 `json:"occ_p90"`
	// FailedPushRate is failed pushes over push attempts within the
	// epoch — the producer-side backpressure signal.
	FailedPushRate float64 `json:"failed_push_rate"`
	// ShortPollRate is short polls over all consume polls within the
	// epoch — the consumer-side starvation signal.
	ShortPollRate float64 `json:"short_poll_rate"`
	// QueueImbalance is the p90 of the per-tick occupancy-imbalance
	// ratio (max/mean queue depth) over the epoch: 1.0 means uniformly
	// loaded rings, values toward the queue count mean one hot queue —
	// the operation-level skew signal work stealing and the elastic pool
	// react to.
	QueueImbalance float64 `json:"queue_imbalance"`
	// CombinedPairs is the number of pairs folded by combiners during
	// the epoch; divided by Ticks it is the controller's throughput
	// objective.
	CombinedPairs uint64 `json:"combined_pairs"`
	// Ticks is how many sampler ticks the epoch actually spanned (the
	// final epoch of a run may be short).
	Ticks int `json:"ticks"`
}

// rate is the throughput objective: pairs combined per sampler tick.
func (s Signals) rate() float64 {
	if s.Ticks <= 0 {
		return 0
	}
	return float64(s.CombinedPairs) / float64(s.Ticks)
}

// Settings is one complete assignment of the online-tunable knobs.
type Settings struct {
	// Combiners is the active combiner pool size.
	Combiners int `json:"combiners"`
	// Batch is the consume batch size.
	Batch int `json:"batch"`
	// Backoff is the producer's sleep-on-failed-push cap.
	Backoff time.Duration `json:"backoff_ns"`
}

// Decision is one epoch's controller output: the settings now in force,
// and why.
type Decision struct {
	// Epoch is the 0-based epoch index.
	Epoch int `json:"epoch"`
	// Signals are the observations the decision was based on.
	Signals Signals `json:"signals"`
	// Settings are the knob values in force after the decision.
	Settings Settings `json:"settings"`
	// Action names what changed: "hold", "grow", "shrink",
	// "batch+", "batch-", "backoff+", "backoff-", "revert", or
	// "schedule".
	Action string `json:"action"`
}

// Report is the inspectable record of one tuned run, attached to
// mr.Result.TunerReport.
type Report struct {
	// Seed is the controller seed (decisions replay from it plus the
	// signal series).
	Seed int64 `json:"seed"`
	// EpochTicks is the epoch length in sampler ticks.
	EpochTicks int `json:"epoch_ticks"`
	// Initial and Final bracket the run's knob trajectory.
	Initial Settings `json:"initial"`
	Final   Settings `json:"final"`
	// Epochs is the full decision log.
	Epochs []Decision `json:"epochs"`
	// Settled reports whether the controller held its settings over the
	// final two epochs — the convergence indicator EXPERIMENTS.md plots.
	Settled bool `json:"settled"`
}

// knob identifies a knob family for the AIMD loop's bookkeeping.
type knob int

const (
	knobNone knob = iota
	knobBatch
	knobBackoff
)

// Controller is the deterministic feedback controller. It is not
// goroutine-safe: the engine steps it from a single goroutine (the
// telemetry sampler's).
type Controller struct {
	cfg Config
	rng *rand.Rand

	cur   Settings
	epoch int

	growStreak   int
	shrinkStreak int
	cooldown     int // epochs to hold after a revert

	lastKnob  knob
	lastDelta int // batch delta, or backoff delta in microseconds
	prevRate  float64
	havePrev  bool

	report Report
}

// NewController returns a controller starting from initial settings.
// cfg's zero fields are defaulted; initial.Combiners is clamped to the
// configured pool bounds by the caller (the engine knows the real
// mapper count).
func NewController(cfg Config, initial Settings) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cur: initial,
	}
	c.report = Report{
		Seed:       cfg.Seed,
		EpochTicks: cfg.EpochTicks,
		Initial:    initial,
		Final:      initial,
	}
	return c
}

// EpochTicks returns the effective epoch length in sampler ticks.
func (c *Controller) EpochTicks() int { return c.cfg.EpochTicks }

// Settings returns the knob values currently in force.
func (c *Controller) Settings() Settings { return c.cur }

// Advance consumes one epoch's signals and returns the decision for the
// next epoch. The returned Settings are what the engine must apply.
func (c *Controller) Advance(sig Signals) Decision {
	action := "hold"
	switch {
	case len(c.cfg.Schedule) > 0:
		// Scripted mode: replay the combiner schedule, hold knobs.
		i := c.epoch
		if i >= len(c.cfg.Schedule) {
			i = len(c.cfg.Schedule) - 1
		}
		n := c.clampCombiners(c.cfg.Schedule[i])
		if n != c.cur.Combiners {
			c.cur.Combiners = n
			action = "schedule"
		}
	case c.maybeRevert(sig):
		action = "revert"
	default:
		action = c.step(sig)
	}

	c.prevRate = sig.rate()
	c.havePrev = true

	d := Decision{Epoch: c.epoch, Signals: sig, Settings: c.cur, Action: action}
	c.epoch++
	c.report.Epochs = append(c.report.Epochs, d)
	c.report.Final = c.cur
	n := len(c.report.Epochs)
	c.report.Settled = n >= 2 &&
		c.report.Epochs[n-1].Settings == c.report.Epochs[n-2].Settings
	return d
}

// maybeRevert undoes the previous knob step when the epoch it governed
// lost more than RevertMargin of throughput — the hill-climber's downhill
// test. Pool changes are never auto-reverted (their effect is what the
// hysteresis thresholds measure); only batch/backoff steps are.
func (c *Controller) maybeRevert(sig Signals) bool {
	if c.lastKnob == knobNone || !c.havePrev || c.prevRate <= 0 {
		return false
	}
	if sig.rate() >= c.prevRate*(1-c.cfg.RevertMargin) {
		return false
	}
	switch c.lastKnob {
	case knobBatch:
		c.cur.Batch = c.clampBatch(c.cur.Batch - c.lastDelta)
	case knobBackoff:
		c.cur.Backoff = c.clampBackoff(c.cur.Backoff - time.Duration(c.lastDelta)*time.Microsecond)
	}
	c.lastKnob = knobNone
	c.lastDelta = 0
	c.cooldown = c.cfg.Hysteresis
	return true
}

// step runs the signal-driven logic: pool sizing first (with hysteresis),
// then at most one AIMD knob step per epoch so regressions are
// attributable to a single change.
func (c *Controller) step(sig Signals) string {
	c.lastKnob = knobNone
	c.lastDelta = 0

	if c.cooldown > 0 {
		c.cooldown--
		return "hold"
	}

	// --- Elastic pool: grow on sustained backpressure — uniformly full
	// rings, or one hot ring (skew) while producers still fail pushes —
	// shrink on sustained starvation. Streaks implement the hysteresis.
	pressured := sig.OccP90 >= c.cfg.GrowOccupancy ||
		sig.QueueImbalance >= c.cfg.GrowImbalance
	if pressured && sig.FailedPushRate >= c.cfg.GrowFailedPush {
		c.growStreak++
	} else {
		c.growStreak = 0
	}
	if sig.ShortPollRate >= c.cfg.ShrinkShortPoll && sig.OccP90 <= c.cfg.ShrinkOccupancy {
		c.shrinkStreak++
	} else {
		c.shrinkStreak = 0
	}
	if c.growStreak >= c.cfg.Hysteresis {
		c.growStreak = 0
		if n := c.clampCombiners(c.cur.Combiners + 1); n != c.cur.Combiners {
			c.cur.Combiners = n
			return "grow"
		}
	}
	if c.shrinkStreak >= c.cfg.Hysteresis {
		c.shrinkStreak = 0
		if n := c.clampCombiners(c.cur.Combiners - 1); n != c.cur.Combiners {
			c.cur.Combiners = n
			return "shrink"
		}
	}

	// --- AIMD knob loop: the seeded coin picks which family to try
	// first this epoch; the first applicable rule wins.
	first := knobBatch
	if c.rng.Intn(2) == 1 {
		first = knobBackoff
	}
	for _, k := range [2]knob{first, other(first)} {
		switch k {
		case knobBatch:
			if sig.ShortPollRate >= c.cfg.ShrinkShortPoll {
				// Combiners outpace mappers: a full batch rarely
				// accumulates, so halve toward responsiveness (MD).
				if b := c.clampBatch(c.cur.Batch / 2); b != c.cur.Batch {
					c.lastKnob, c.lastDelta = knobBatch, b-c.cur.Batch
					c.cur.Batch = b
					return "batch-"
				}
			} else if sig.OccP90 >= c.cfg.GrowOccupancy {
				// Rings run full: bigger blocks amortize more per
				// wakeup (AI).
				if b := c.clampBatch(c.cur.Batch + c.cfg.BatchStep); b != c.cur.Batch {
					c.lastKnob, c.lastDelta = knobBatch, b-c.cur.Batch
					c.cur.Batch = b
					return "batch+"
				}
			}
		case knobBackoff:
			if sig.FailedPushRate >= c.cfg.GrowFailedPush {
				// Producers keep finding full rings: sleep longer so
				// the combiner gets the core (AI).
				if d := c.clampBackoff(c.cur.Backoff + c.cfg.BackoffStep); d != c.cur.Backoff {
					c.lastKnob, c.lastDelta = knobBackoff, int((d-c.cur.Backoff)/time.Microsecond)
					c.cur.Backoff = d
					return "backoff+"
				}
			} else if c.cur.Backoff > c.cfg.MinBackoff {
				// Pressure is gone: decay toward responsiveness (MD).
				if d := c.clampBackoff(c.cur.Backoff / 2); d != c.cur.Backoff {
					c.lastKnob, c.lastDelta = knobBackoff, int((d-c.cur.Backoff)/time.Microsecond)
					c.cur.Backoff = d
					return "backoff-"
				}
			}
		}
	}
	return "hold"
}

func other(k knob) knob {
	if k == knobBatch {
		return knobBackoff
	}
	return knobBatch
}

func (c *Controller) clampCombiners(n int) int {
	min, max := c.cfg.MinCombiners, c.cfg.MaxCombiners
	if min < 1 {
		min = 1
	}
	if max > 0 && n > max {
		n = max
	}
	if n < min {
		n = min
	}
	return n
}

func (c *Controller) clampBatch(b int) int {
	if b < c.cfg.MinBatch {
		b = c.cfg.MinBatch
	}
	if b > c.cfg.MaxBatch {
		b = c.cfg.MaxBatch
	}
	return b
}

func (c *Controller) clampBackoff(d time.Duration) time.Duration {
	if d < c.cfg.MinBackoff {
		d = c.cfg.MinBackoff
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	return d
}

// Report returns a copy of the decision log so far. Safe to call after
// the run has completed (the engine does not step the controller
// concurrently with reading the report).
func (c *Controller) Report() *Report {
	rep := c.report
	rep.Epochs = append([]Decision(nil), c.report.Epochs...)
	return &rep
}
