package tuner

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Profile is the reusable artifact an offline search emits: the winning
// static knob settings for one workload on one host, plus enough
// provenance to judge whether it still applies. mr.Config.ApplyProfile
// loads it as a warm start; ramrtune -load round-trips it.
type Profile struct {
	// Workload names what was tuned ("HG", "synth cpu:60/mem:40", ...).
	Workload string `json:"workload"`
	// Engine is the engine the search ran ("ramr").
	Engine string `json:"engine"`
	// Host describes the machine the numbers were measured on.
	Host string `json:"host,omitempty"`
	// Best is the winning point.
	Best Point `json:"best"`
	// Seconds is the winning point's measured cost.
	Seconds float64 `json:"seconds"`
	// Evaluations counts distinct points measured to find Best.
	Evaluations int `json:"evaluations"`
	// Converged records whether the search early-stopped (true) or ran
	// out of passes.
	Converged bool `json:"converged"`
	// Seed is the input-generator seed the measurements used.
	Seed int64 `json:"seed"`
}

// Validate reports the first problem that would make the profile unusable
// as a Config warm start.
func (p *Profile) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("tuner: nil profile")
	case p.Best.Ratio < 1:
		return fmt.Errorf("tuner: profile ratio must be >= 1, got %d", p.Best.Ratio)
	case p.Best.QueueCapacity < 1:
		return fmt.Errorf("tuner: profile queue capacity must be >= 1, got %d", p.Best.QueueCapacity)
	case p.Best.BatchSize < 1:
		return fmt.Errorf("tuner: profile batch size must be >= 1, got %d", p.Best.BatchSize)
	}
	return nil
}

// WriteJSON emits the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteFile writes the profile to path.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadProfile reads and validates a profile written by WriteFile.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("tuner: parsing profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tuner: profile %s: %w", path, err)
	}
	return &p, nil
}
