package tuner

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// convexCost is a deterministic objective with a unique minimum at
// (ratio=2, cap=4096, batch=500): log-distance from the optimum per axis.
func convexCost(p Point) (float64, error) {
	d := func(v, best int) float64 {
		return math.Abs(math.Log(float64(v)) - math.Log(float64(best)))
	}
	return 1 + d(p.Ratio, 2) + d(p.QueueCapacity, 4096) + d(p.BatchSize, 500), nil
}

func testSpace() Space {
	return Space{
		Ratios:     []int{1, 2, 4, 8},
		Capacities: []int{512, 4096, 8192},
		Batches:    []int{100, 500, 2000},
	}
}

// TestCoordinateDescentFindsOptimum: from the worst corner, the search
// must reach the global optimum of a separable objective.
func TestCoordinateDescentFindsOptimum(t *testing.T) {
	start := Point{Ratio: 8, QueueCapacity: 512, BatchSize: 2000}
	res, err := CoordinateDescent(testSpace(), start, convexCost, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := Point{Ratio: 2, QueueCapacity: 4096, BatchSize: 500}
	if res.Best != want {
		t.Fatalf("best = %v, want %v", res.Best, want)
	}
	if !res.Converged {
		t.Fatalf("search did not report convergence: %+v", res)
	}
}

// TestCoordinateDescentCachesEvaluations: the eval function must never be
// called twice for the same point, so later passes over an already-swept
// axis are free.
func TestCoordinateDescentCachesEvaluations(t *testing.T) {
	calls := map[Point]int{}
	eval := func(p Point) (float64, error) {
		calls[p]++
		return convexCost(p)
	}
	start := Point{Ratio: 1, QueueCapacity: 512, BatchSize: 100}
	if _, err := CoordinateDescent(testSpace(), start, eval, SearchOptions{MaxPasses: 4}); err != nil {
		t.Fatal(err)
	}
	for p, n := range calls {
		if n > 1 {
			t.Fatalf("point %v evaluated %d times", p, n)
		}
	}
}

// TestCoordinateDescentEarlyStops: a flat objective must stop after the
// first pass instead of burning MaxPasses.
func TestCoordinateDescentEarlyStops(t *testing.T) {
	flat := func(Point) (float64, error) { return 1.0, nil }
	start := Point{Ratio: 1, QueueCapacity: 512, BatchSize: 100}
	res, err := CoordinateDescent(testSpace(), start, flat, SearchOptions{MaxPasses: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 || !res.Converged {
		t.Fatalf("flat search ran %d passes (converged=%v), want early stop after 1", res.Passes, res.Converged)
	}
}

// TestProfileRoundTrip: WriteFile → LoadProfile must preserve the profile
// exactly (this is the CI smoke job's in-process twin).
func TestProfileRoundTrip(t *testing.T) {
	p := &Profile{
		Workload:    "HG",
		Engine:      "ramr",
		Host:        "test",
		Best:        Point{Ratio: 2, QueueCapacity: 4096, BatchSize: 500},
		Seconds:     0.123,
		Evaluations: 9,
		Converged:   true,
		Seed:        42,
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip changed profile:\n%+v\nvs\n%+v", got, p)
	}
}

// TestLoadProfileRejectsGarbage: malformed JSON and invalid knob values
// must fail with an error, not load.
func TestLoadProfileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(bad); err == nil {
		t.Fatal("malformed JSON loaded")
	}
	zero := filepath.Join(dir, "zero.json")
	if err := (&Profile{}).WriteFile(zero); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(zero); err == nil {
		t.Fatal("zero-knob profile loaded")
	}
}
