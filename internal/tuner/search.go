package tuner

import (
	"fmt"
	"sort"
)

// Point is one candidate static configuration in the offline search
// space: the three knobs the paper sweeps by hand in §IV.
type Point struct {
	// Ratio is the mapper-to-combiner ratio (mr.Config.Ratio).
	Ratio int `json:"ratio"`
	// QueueCapacity is the per-mapper SPSC ring capacity.
	QueueCapacity int `json:"queue_capacity"`
	// BatchSize is the combiner's consume batch size.
	BatchSize int `json:"batch_size"`
}

// String renders the point the way ramrtune logs it.
func (p Point) String() string {
	return fmt.Sprintf("ratio=%d cap=%d batch=%d", p.Ratio, p.QueueCapacity, p.BatchSize)
}

// Space is the candidate grid the search walks, one axis per knob. Axes
// are deduplicated and sorted; an empty axis pins that knob to the start
// point's value.
type Space struct {
	Ratios     []int `json:"ratios"`
	Capacities []int `json:"capacities"`
	Batches    []int `json:"batches"`
}

// normalize sorts and deduplicates each axis.
func (s Space) normalize() Space {
	clean := func(vs []int) []int {
		seen := map[int]bool{}
		var out []int
		for _, v := range vs {
			if v > 0 && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sort.Ints(out)
		return out
	}
	return Space{Ratios: clean(s.Ratios), Capacities: clean(s.Capacities), Batches: clean(s.Batches)}
}

// Eval measures one candidate point and returns its cost (seconds; lower
// is better). The searcher minimizes it.
type Eval func(Point) (float64, error)

// SearchOptions bound the coordinate descent.
type SearchOptions struct {
	// MaxPasses is the maximum number of full coordinate sweeps; 0
	// selects 3. The search also stops early after any pass that fails
	// to improve the best cost by more than Tolerance.
	MaxPasses int
	// Tolerance is the relative improvement below which a pass counts as
	// converged; 0 selects 0.02 (2%).
	Tolerance float64
	// Log, when non-nil, receives one line per evaluation.
	Log func(string)
}

// EvalRecord is one measured candidate, kept for the profile's audit
// trail.
type EvalRecord struct {
	Point   Point   `json:"point"`
	Seconds float64 `json:"seconds"`
}

// SearchResult is the outcome of a coordinate descent.
type SearchResult struct {
	Best        Point        `json:"best"`
	BestSeconds float64      `json:"best_seconds"`
	Passes      int          `json:"passes"`
	Evaluations []EvalRecord `json:"evaluations"`
	// Converged reports whether the search stopped because a full pass
	// brought no meaningful improvement (as opposed to hitting
	// MaxPasses).
	Converged bool `json:"converged"`
}

// CoordinateDescent minimizes eval over the space, one axis at a time,
// starting from start: for each knob in turn it evaluates every candidate
// value with the other knobs held at their current best, adopts the
// winner, and repeats until a full pass improves the best cost by less
// than the tolerance (early stopping) or MaxPasses is reached. Evaluated
// points are cached, so revisiting a point during later passes is free —
// with k values per axis a search costs at most passes * (sum of axis
// lengths) runs instead of the full k^3 grid.
func CoordinateDescent(space Space, start Point, eval Eval, opts SearchOptions) (*SearchResult, error) {
	space = space.normalize()
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 3
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 0.02
	}
	if start.Ratio <= 0 || start.QueueCapacity <= 0 || start.BatchSize <= 0 {
		return nil, fmt.Errorf("tuner: invalid start point %v", start)
	}

	res := &SearchResult{Best: start}
	cache := map[Point]float64{}
	measure := func(p Point) (float64, error) {
		if s, ok := cache[p]; ok {
			return s, nil
		}
		s, err := eval(p)
		if err != nil {
			return 0, fmt.Errorf("tuner: evaluating %v: %w", p, err)
		}
		cache[p] = s
		res.Evaluations = append(res.Evaluations, EvalRecord{Point: p, Seconds: s})
		if opts.Log != nil {
			opts.Log(fmt.Sprintf("%v: %.4fs", p, s))
		}
		return s, nil
	}

	best, err := measure(res.Best)
	if err != nil {
		return nil, err
	}
	res.BestSeconds = best

	axes := []struct {
		values []int
		apply  func(*Point, int)
	}{
		{space.Ratios, func(p *Point, v int) { p.Ratio = v }},
		{space.Capacities, func(p *Point, v int) { p.QueueCapacity = v }},
		{space.Batches, func(p *Point, v int) { p.BatchSize = v }},
	}

	for pass := 0; pass < opts.MaxPasses; pass++ {
		res.Passes = pass + 1
		passStart := res.BestSeconds
		for _, axis := range axes {
			for _, v := range axis.values {
				cand := res.Best
				axis.apply(&cand, v)
				if cand == res.Best {
					continue
				}
				s, err := measure(cand)
				if err != nil {
					return nil, err
				}
				if s < res.BestSeconds {
					res.Best, res.BestSeconds = cand, s
				}
			}
		}
		if passStart > 0 && (passStart-res.BestSeconds)/passStart < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	return res, nil
}
