package spsc

import (
	"runtime"
	"testing"
)

// TestRaceMixedProducerConsumer hammers every producer entry point
// (Push, PushBatch of varying block sizes) against every consumer entry
// point (TryPop, ConsumeBatch of varying batch sizes, forced and unforced)
// on wrap-around-sized rings. Run under -race (CI does) it exercises the
// cached-index paths for data races; in any mode it asserts the
// exactly-once, in-order contract — no element lost, duplicated, or
// reordered. Two of the four consumer modes force-consume partial batches
// so the tiny rings drain steadily; otherwise a blocked producer turns the
// test into a sleep benchmark on single-CPU hosts.
func TestRaceMixedProducerConsumer(t *testing.T) {
	const n = 5_000
	for _, capacity := range []int{2, 4} {
		for _, policy := range []WaitPolicy{WaitSleep, WaitBusy} {
			q := MustNew[int](capacity, policy)
			done := make(chan struct{})
			go func() {
				defer close(done)
				expect := 0
				check := func(b []int) {
					for _, v := range b {
						if v != expect {
							t.Errorf("cap=%d policy=%v: got %d, want %d", capacity, policy, v, expect)
							return
						}
						expect++
					}
				}
				mode := 0
				for !q.Drained() {
					consumed := 0
					switch mode % 4 {
					case 0:
						if v, ok := q.TryPop(); ok {
							check([]int{v})
							consumed = 1
						}
					case 1:
						consumed = q.ConsumeBatch(2, true, check)
					case 2:
						// Unforced: fires only on a full block.
						consumed = q.ConsumeBatch(2, q.Closed(), check)
					case 3:
						consumed = q.ConsumeBatch(3, true, check)
					}
					mode++
					if consumed == 0 {
						runtime.Gosched()
					}
				}
				if expect != n {
					t.Errorf("cap=%d policy=%v: consumed %d of %d elements", capacity, policy, expect, n)
				}
			}()
			// Rotate producer modes: single pushes and batches of 1..5
			// elements, all at least as large as the smallest ring.
			block := make([]int, 0, 5)
			v := 0
			for v < n {
				switch (v / 7) % 3 {
				case 0:
					q.Push(v)
					v++
				default:
					size := 1 + v%5
					if size > n-v {
						size = n - v
					}
					block = block[:0]
					for i := 0; i < size; i++ {
						block = append(block, v+i)
					}
					q.PushBatch(block)
					v += size
				}
			}
			q.Close()
			<-done
			s := q.Snapshot()
			if s.Pushes != n || s.Pops != n {
				t.Fatalf("cap=%d policy=%v: stats pushes=%d pops=%d, want %d", capacity, policy, s.Pushes, s.Pops, n)
			}
		}
	}
}
