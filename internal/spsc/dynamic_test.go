package spsc

import (
	"runtime"
	"sync"
	"testing"
)

func TestDynamicFIFO(t *testing.T) {
	q := NewDynamic[int](4)
	for i := 0; i < 23; i++ { // spans several segments
		q.Push(i)
	}
	if q.Allocs() == 0 {
		t.Fatal("growth expected beyond one segment")
	}
	for i := 0; i < 23; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop on empty dynamic queue succeeded")
	}
}

func TestDynamicConsumeBatchAcrossSegments(t *testing.T) {
	q := NewDynamic[int](8)
	for i := 0; i < 30; i++ {
		q.Push(i)
	}
	var got []int
	n := q.ConsumeBatch(30, true, func(b []int) { got = append(got, b...) })
	if n != 30 {
		t.Fatalf("consumed %d", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestDynamicDrained(t *testing.T) {
	q := NewDynamic[int](4)
	q.Push(1)
	if q.Drained() {
		t.Fatal("drained before close")
	}
	q.Close()
	if q.Drained() {
		t.Fatal("drained with buffered element")
	}
	q.TryPop()
	if !q.Drained() {
		t.Fatal("not drained after full consumption")
	}
}

func TestDynamicDrainedAcrossSegmentBoundary(t *testing.T) {
	q := NewDynamic[int](2)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Close()
	for i := 0; i < 5; i++ {
		if q.Drained() {
			t.Fatalf("drained with %d elements left", 5-i)
		}
		if _, ok := q.TryPop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	if !q.Drained() {
		t.Fatal("not drained at the end")
	}
}

func TestDynamicConcurrent(t *testing.T) {
	q := NewDynamic[int](64)
	const n = 20_000
	var wg sync.WaitGroup
	wg.Add(1)
	fail := make(chan string, 1)
	go func() {
		defer wg.Done()
		expect := 0
		for !q.Drained() {
			c := q.ConsumeBatch(32, true, func(b []int) {
				for _, v := range b {
					if v != expect {
						select {
						case fail <- "order":
						default:
						}
					}
					expect++
				}
			})
			if c == 0 {
				runtime.Gosched()
			}
		}
		if expect != n {
			select {
			case fail <- "loss":
			default:
			}
		}
	}()
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	q.Close()
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

func TestDynamicDefaults(t *testing.T) {
	q := NewDynamic[int](0) // clamps to a sane segment size
	q.Push(5)
	if v, ok := q.TryPop(); !ok || v != 5 {
		t.Fatal("default segment size unusable")
	}
	if n := q.ConsumeBatch(-1, false, func([]int) {}); n != 0 {
		t.Fatal("negative batch should clamp, and queue is empty")
	}
}
