package spsc

import "sync/atomic"

// DynamicQueue is the road not taken: an unbounded SPSC queue built from a
// linked list of fixed segments, growing by allocation whenever the
// producer outruns the consumer. The paper rejects this design for the
// runtime's hot path — "a fixed-size queue has been favored instead of a
// dynamically resizable queue because of the limited scalability and
// performance penalty imposed by dynamic memory allocators" (§III-A,
// citing Hoard) — and the BenchmarkAblationQueueGrowth benchmark lets you
// reproduce that comparison against the fixed ring.
//
// Same contract as Queue: exactly one producer, exactly one consumer.
type DynamicQueue[T any] struct {
	segSize int

	_    pad
	head *dynSegment[T] // consumer side
	hIdx int
	_    pad
	tail *dynSegment[T] // producer side
	tIdx int
	_    pad
	done atomic.Bool

	allocs uint64
}

// dynSegment is one fixed block of the linked queue.
type dynSegment[T any] struct {
	buf  []T
	used atomic.Int64 // producer's publish cursor within the segment
	next atomic.Pointer[dynSegment[T]]
}

// NewDynamic returns an unbounded SPSC queue with the given segment size.
func NewDynamic[T any](segSize int) *DynamicQueue[T] {
	if segSize < 1 {
		segSize = 1024
	}
	seg := &dynSegment[T]{buf: make([]T, segSize)}
	return &DynamicQueue[T]{segSize: segSize, head: seg, tail: seg}
}

// Push appends v, allocating a new segment when the current one fills.
// Producer side; never blocks.
func (q *DynamicQueue[T]) Push(v T) {
	if q.tIdx == q.segSize {
		next := &dynSegment[T]{buf: make([]T, q.segSize)}
		q.allocs++
		q.tail.next.Store(next)
		q.tail = next
		q.tIdx = 0
	}
	q.tail.buf[q.tIdx] = v
	q.tIdx++
	q.tail.used.Store(int64(q.tIdx))
}

// Close marks the end of the stream. Producer side.
func (q *DynamicQueue[T]) Close() { q.done.Store(true) }

// TryPop removes and returns the oldest element. Consumer side.
func (q *DynamicQueue[T]) TryPop() (T, bool) {
	var zero T
	for {
		if int64(q.hIdx) < q.head.used.Load() {
			v := q.head.buf[q.hIdx]
			q.head.buf[q.hIdx] = zero
			q.hIdx++
			return v, true
		}
		if q.hIdx == q.segSize {
			next := q.head.next.Load()
			if next == nil {
				return zero, false
			}
			q.head = next
			q.hIdx = 0
			continue
		}
		return zero, false
	}
}

// ConsumeBatch applies f to up to batch buffered elements; force has no
// effect (the dynamic queue never withholds partial batches) and exists
// for signature symmetry with Queue.
func (q *DynamicQueue[T]) ConsumeBatch(batch int, _ bool, f func([]T)) int {
	if batch <= 0 {
		batch = 1
	}
	consumed := 0
	for consumed < batch {
		avail := int(q.head.used.Load()) - q.hIdx
		if avail == 0 {
			if q.hIdx == q.segSize {
				next := q.head.next.Load()
				if next == nil {
					break
				}
				q.head = next
				q.hIdx = 0
				continue
			}
			break
		}
		take := batch - consumed
		if take > avail {
			take = avail
		}
		seg := q.head.buf[q.hIdx : q.hIdx+take]
		f(seg)
		var zero T
		for i := range seg {
			seg[i] = zero
		}
		q.hIdx += take
		consumed += take
	}
	return consumed
}

// Drained reports whether the producer closed the queue and every element
// has been consumed.
func (q *DynamicQueue[T]) Drained() bool {
	if !q.done.Load() {
		return false
	}
	if int64(q.hIdx) < q.head.used.Load() {
		return false
	}
	// The consumer may still be parked on a finished segment.
	seg := q.head
	for {
		next := seg.next.Load()
		if next == nil {
			return true
		}
		if next.used.Load() > 0 {
			return false
		}
		seg = next
	}
}

// Allocs returns how many extra segments the producer allocated — the
// dynamic-allocator pressure the paper's fixed ring avoids by design.
func (q *DynamicQueue[T]) Allocs() uint64 { return q.allocs }
