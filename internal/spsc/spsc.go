// Package spsc implements the fixed-capacity, lock-free single-producer/
// single-consumer ring buffer RAMR pipelines intermediate key-value pairs
// through (§III-A of the paper).
//
// The design follows Lamport's classic wait-free construction (the same one
// underlying boost::lockfree::spsc_queue, which the paper built on): a
// power-of-two ring with a producer-owned write index and a consumer-owned
// read index, each advanced with release stores and observed with acquire
// loads, with no compare-and-swap anywhere on the fast path. Go's
// sync/atomic provides the required acquire/release semantics.
//
// Three paper-motivated features sit on top of the plain ring:
//
//   - Cached indices: each side keeps a private, non-atomic snapshot of the
//     *other* side's index (the producer caches head, the consumer caches
//     tail) and refreshes it from the atomic only when the snapshot makes
//     the ring look full (producer) or too empty (consumer). Because both
//     indices advance monotonically, a stale snapshot only ever
//     *under-estimates* the free space or buffered elements — the ring can
//     appear fuller or emptier than it is, never the reverse — so
//     correctness is preserved while the steady state runs with almost no
//     cross-core cache-line traffic on the index lines.
//
//   - Sleep on failed push: pushes must always succeed eventually
//     (discarding pairs would corrupt the result), so a producer facing a
//     full ring blocks. Busy-waiting burns the very core its combiner
//     needs; the paper found sleeping after a failed trial faster. Both
//     policies are provided so the ablation benchmark can compare them.
//
//   - Batched transfers in both directions: the consumer pops blocks of
//     contiguous elements and processes them in place (ConsumeBatch), and
//     the producer appends whole blocks with a single index publish per
//     contiguous run (PushBatch), cutting contention on the shared indices
//     and exploiting spatial locality (§IV-C measures up to 11.4x from
//     batching alone).
package spsc

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the queue capacity the paper settled on after tuning:
// "a maximum capacity of five thousand elements achieves near-optimal
// (within 2%) performance across all test-cases" (§III-A).
const DefaultCapacity = 5000

// DefaultSleepCap is the producer's default maximum backoff sleep on a
// full ring; SetSleepCap overrides it at run time.
const DefaultSleepCap = 128 * time.Microsecond

// WaitPolicy selects how a producer waits for space in a full ring.
type WaitPolicy int

const (
	// WaitSleep sleeps with capped exponential backoff after a failed
	// push — the policy RAMR ships with.
	WaitSleep WaitPolicy = iota
	// WaitBusy spins, yielding the processor between attempts — the
	// policy the paper originally used and then abandoned; kept for the
	// ablation study.
	WaitBusy
)

// String names the policy for reports.
func (p WaitPolicy) String() string {
	switch p {
	case WaitSleep:
		return "sleep"
	case WaitBusy:
		return "busy-wait"
	default:
		return fmt.Sprintf("WaitPolicy(%d)", int(p))
	}
}

// pad keeps the producer and consumer indices on distinct cache lines so
// the two sides do not false-share.
type pad [64]byte

// Queue is a bounded single-producer/single-consumer queue of T. Exactly
// one goroutine may call producer methods (TryPush, Push, PushBatch, Close)
// and exactly one may call consumer methods (TryPop, ConsumeBatch,
// Drained); the two may run concurrently. The zero value is not usable;
// call New.
//
// The struct is laid out so that everything the consumer writes (head, its
// tail cache, its counters) and everything the producer writes (tail, its
// head cache, its counters) live on separate cache-line-padded regions.
type Queue[T any] struct {
	buf  []T
	mask uint64

	_         pad
	head      atomic.Uint64 // next slot the consumer will read
	tailCache uint64        // consumer's snapshot of tail; <= tail always
	cons      consumerCounters
	_         pad
	tail      atomic.Uint64 // next slot the producer will write
	headCache uint64        // producer's snapshot of head; <= head always
	prod      producerCounters
	_         pad
	done      atomic.Bool // producer has called Close
	_         pad
	// sleepCap is the producer's maximum backoff sleep in microseconds,
	// adjustable at run time by the online tuner (0 selects the default).
	// It lives off both hot regions: the producer reads it only on the
	// slow path (entering a wait), and writers are rare.
	sleepCap atomic.Int64
	_        pad

	policy WaitPolicy
}

// producerCounters are the stats fields only the producer writes.
type producerCounters struct {
	pushes      uint64
	failedPush  uint64
	spinRounds  uint64
	sleepMicros uint64
}

// consumerCounters are the stats fields only the consumer writes.
type consumerCounters struct {
	pops       uint64
	emptyPolls uint64
	shortPolls uint64
	batchCalls uint64
}

// Stats counts queue events; all fields are maintained by the owning sides
// without synchronization beyond the queue's own, so read them only after
// both sides have finished (or accept approximate values).
type Stats struct {
	Pushes      uint64 // elements successfully pushed
	FailedPush  uint64 // wait rounds in which a producer found the ring full
	SpinRounds  uint64 // busy-wait spin rounds executed (WaitBusy only)
	Pops        uint64 // elements consumed
	EmptyPolls  uint64 // consume attempts that found the ring empty
	ShortPolls  uint64 // unforced consume attempts that found fewer than a full batch
	BatchCalls  uint64 // functor invocations by ConsumeBatch
	SleepMicros uint64 // total microseconds producers slept
}

// New returns a queue with at least the requested capacity (rounded up to
// the next power of two, as the index arithmetic requires). capacity must
// be positive.
func New[T any](capacity int, policy WaitPolicy) (*Queue[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("spsc: capacity must be positive, got %d", capacity)
	}
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Queue[T]{buf: make([]T, n), mask: n - 1, policy: policy}, nil
}

// MustNew is New that panics on invalid capacity; for tests and literals.
func MustNew[T any](capacity int, policy WaitPolicy) *Queue[T] {
	q, err := New[T](capacity, policy)
	if err != nil {
		panic(err)
	}
	return q
}

// Cap returns the usable capacity of the ring.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the number of buffered elements. It is exact only when the
// queue is quiescent; under concurrency it is a point-in-time snapshot,
// safe to call from any goroutine — this is the non-invasive depth probe
// the telemetry sampler uses for its queue-occupancy time-series.
//
// head is loaded before tail: head never passes tail, so a tail read
// *after* the head read is always >= the head value read, keeping the
// difference non-negative (the reverse order could go negative when the
// consumer advances between the two loads). The result is clamped to the
// capacity because the consumer may also advance head after we read it,
// inflating the stale difference.
func (q *Queue[T]) Len() int {
	h := q.head.Load()
	t := q.tail.Load()
	n := t - h
	if n > uint64(len(q.buf)) {
		n = uint64(len(q.buf))
	}
	return int(n)
}

// tryPush is the stat-free single-element fast path: it consults only the
// producer's cached head and refreshes the cache from the atomic index
// exactly when the ring appears full.
func (q *Queue[T]) tryPush(v T) bool {
	t := q.tail.Load()
	if t-q.headCache == uint64(len(q.buf)) {
		q.headCache = q.head.Load()
		if t-q.headCache == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	q.prod.pushes++
	return true
}

// TryPush appends v if space is available, reporting success. Producer side.
func (q *Queue[T]) TryPush(v T) bool {
	if !q.tryPush(v) {
		q.prod.failedPush++
		return false
	}
	return true
}

// Push appends v, waiting for space according to the queue's WaitPolicy.
// Producer side. Push after Close panics: the producer owns Close, so this
// is always a caller bug.
func (q *Queue[T]) Push(v T) {
	if q.done.Load() {
		panic("spsc: Push after Close")
	}
	if q.tryPush(v) {
		return
	}
	q.prod.failedPush++
	q.waitUntil(func() bool { return q.tryPush(v) })
}

// tryPushBatch appends as many elements of vs as fit, publishing tail once,
// and returns how many were copied. The copy runs in at most two contiguous
// segments when the block wraps the ring. Producer side, stat-free on
// failure.
func (q *Queue[T]) tryPushBatch(vs []T) int {
	t := q.tail.Load()
	free := uint64(len(q.buf)) - (t - q.headCache)
	if free < uint64(len(vs)) {
		q.headCache = q.head.Load()
		free = uint64(len(q.buf)) - (t - q.headCache)
	}
	if free == 0 {
		return 0
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	start := t & q.mask
	run := uint64(len(q.buf)) - start
	if run > n {
		run = n
	}
	copy(q.buf[start:start+run], vs[:run])
	copy(q.buf[:n-run], vs[run:n])
	q.tail.Store(t + n)
	q.prod.pushes += n
	return int(n)
}

// PushBatch appends every element of vs in order, waiting for space
// according to the queue's WaitPolicy whenever the ring fills. The tail
// index is published once per contiguous block copied rather than once per
// element, so a block of b elements costs the consumer-visible store (and
// any cross-core traffic it triggers) 1/b times as often as b Push calls.
// Blocks larger than the ring are copied in capacity-sized chunks.
// Producer side; PushBatch after Close panics.
func (q *Queue[T]) PushBatch(vs []T) {
	if q.done.Load() {
		panic("spsc: PushBatch after Close")
	}
	for len(vs) > 0 {
		if n := q.tryPushBatch(vs); n > 0 {
			vs = vs[n:]
			continue
		}
		q.prod.failedPush++
		q.waitUntil(q.hasSpace)
	}
}

// hasSpace refreshes the producer's head cache and reports whether at
// least one slot is free.
func (q *Queue[T]) hasSpace() bool {
	q.headCache = q.head.Load()
	return q.tail.Load()-q.headCache < uint64(len(q.buf))
}

// waitUntil blocks the producer until try succeeds, following the queue's
// WaitPolicy. Stats are kept comparable across policies: one FailedPush per
// wait round that still found the ring full (the caller records the initial
// failure), plus one SpinRounds per busy round regardless of its outcome —
// under the old accounting a busy round charged up to 64 FailedPush where a
// sleep round charged 1, making the ablation numbers incomparable.
func (q *Queue[T]) waitUntil(try func() bool) {
	sleep := time.Microsecond
	maxSleep := DefaultSleepCap
	if us := q.sleepCap.Load(); us > 0 {
		maxSleep = time.Duration(us) * time.Microsecond
	}
	for {
		if q.policy == WaitBusy {
			q.prod.spinRounds++
			for i := 0; i < 64; i++ {
				if try() {
					return
				}
			}
			q.prod.failedPush++
			// Let the consumer run if we share a core: Gosched yields
			// the processor, where time.Sleep(0) returns immediately
			// and leaves a single-CPU consumer waiting for preemption.
			runtime.Gosched()
			continue
		}
		time.Sleep(sleep)
		q.prod.sleepMicros += uint64(sleep / time.Microsecond)
		if try() {
			return
		}
		q.prod.failedPush++
		if sleep < maxSleep {
			sleep *= 2
		}
	}
}

// Close marks the end of the stream. Producer side; idempotent.
func (q *Queue[T]) Close() { q.done.Store(true) }

// Closed reports whether the producer has closed the queue. Elements may
// still be buffered; use Drained to test for full consumption.
func (q *Queue[T]) Closed() bool { return q.done.Load() }

// TryPop removes and returns the oldest element. Consumer side.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tailCache {
		q.tailCache = q.tail.Load()
		if h == q.tailCache {
			q.cons.emptyPolls++
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // drop the reference for GC
	q.head.Store(h + 1)
	q.cons.pops++
	return v, true
}

// ConsumeBatch applies f to up to batch buffered elements and returns how
// many were consumed. Consumer side.
//
// Following §III-A/IV-C, the method only fires when at least batch
// elements are buffered — combiners wait for full blocks while mapping is
// in progress — unless force is set, in which case any remaining elements
// are consumed (the drain path after the map phase ends). The functor
// receives elements in ring slots, so a batch that wraps the ring arrives
// as two calls on the two contiguous runs; f must treat consecutive calls
// as a continuation.
func (q *Queue[T]) ConsumeBatch(batch int, force bool, f func([]T)) int {
	if batch <= 0 {
		batch = 1
	}
	h := q.head.Load()
	avail := q.tailCache - h
	if avail < uint64(batch) {
		q.tailCache = q.tail.Load()
		avail = q.tailCache - h
	}
	if avail == 0 {
		q.cons.emptyPolls++
		return 0
	}
	take := uint64(batch)
	if avail < take {
		if !force {
			q.cons.shortPolls++
			return 0
		}
		take = avail
	}
	consumed := uint64(0)
	for consumed < take {
		start := (h + consumed) & q.mask
		run := take - consumed
		if room := uint64(len(q.buf)) - start; run > room {
			run = room
		}
		seg := q.buf[start : start+run]
		f(seg)
		q.cons.batchCalls++
		var zero T
		for i := range seg {
			seg[i] = zero
		}
		consumed += run
	}
	q.head.Store(h + consumed)
	q.cons.pops += consumed
	return int(consumed)
}

// DiscardBatch removes up to batch buffered elements without invoking any
// functor and returns how many were dropped. It is the abort path's
// drain-and-discard primitive: once a run is doomed, consumers stop
// paying for user code but must keep emptying the ring so a producer
// blocked in waitUntil is released. Dropped slots are zeroed for GC and
// counted as Pops, so the conservation invariant (Pushes == Pops on a
// drained queue) holds even for runs that die mid-pipeline. Consumer side.
func (q *Queue[T]) DiscardBatch(batch int) int {
	if batch <= 0 {
		batch = 1
	}
	h := q.head.Load()
	q.tailCache = q.tail.Load()
	avail := q.tailCache - h
	if avail == 0 {
		q.cons.emptyPolls++
		return 0
	}
	take := uint64(batch)
	if avail < take {
		take = avail
	}
	var zero T
	for i := uint64(0); i < take; i++ {
		q.buf[(h+i)&q.mask] = zero
	}
	q.head.Store(h + take)
	q.cons.pops += take
	return int(take)
}

// Drained reports whether the producer closed the queue and every element
// has been consumed — the combiner exit condition.
func (q *Queue[T]) Drained() bool {
	return q.done.Load() && q.head.Load() == q.tail.Load()
}

// SetSleepCap adjusts the producer's maximum backoff sleep on a full
// ring. Unlike every other queue method it is safe from ANY goroutine —
// the online tuner calls it from the telemetry sampler while both queue
// sides run. d <= 0 restores DefaultSleepCap. A producer already inside a
// wait finishes that wait under the cap it read at entry; the next wait
// observes the new value.
func (q *Queue[T]) SetSleepCap(d time.Duration) {
	q.sleepCap.Store(int64(d / time.Microsecond))
}

// ConsumerStats returns the consumer-owned counter subset: cumulative
// pops, empty polls, unforced short polls and batch functor calls. Like
// ProducerStats this is safe only from the owning (consumer) goroutine
// while the queue is live; it is how the elastic combiners mirror
// consumer-side rates into the telemetry layer mid-run.
func (q *Queue[T]) ConsumerStats() (pops, emptyPolls, shortPolls, batchCalls uint64) {
	return q.cons.pops, q.cons.emptyPolls, q.cons.shortPolls, q.cons.batchCalls
}

// ProducerStats returns the producer-owned counter subset. Unlike
// Snapshot, which reads both sides and therefore requires a quiescent
// queue, this is safe to call from the producer goroutine at any time —
// it is how the engines mirror failed-push and sleep totals into the
// telemetry layer while the consumer is still running.
func (q *Queue[T]) ProducerStats() (pushes, failedPush, sleepMicros uint64) {
	return q.prod.pushes, q.prod.failedPush, q.prod.sleepMicros
}

// Snapshot returns a copy of the event counters.
func (q *Queue[T]) Snapshot() Stats {
	return Stats{
		Pushes:      q.prod.pushes,
		FailedPush:  q.prod.failedPush,
		SpinRounds:  q.prod.spinRounds,
		Pops:        q.cons.pops,
		EmptyPolls:  q.cons.emptyPolls,
		ShortPolls:  q.cons.shortPolls,
		BatchCalls:  q.cons.batchCalls,
		SleepMicros: q.prod.sleepMicros,
	}
}
