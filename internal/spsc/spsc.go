// Package spsc implements the fixed-capacity, lock-free single-producer/
// single-consumer ring buffer RAMR pipelines intermediate key-value pairs
// through (§III-A of the paper).
//
// The design follows Lamport's classic wait-free construction (the same one
// underlying boost::lockfree::spsc_queue, which the paper built on): a
// power-of-two ring with a producer-owned write index and a consumer-owned
// read index, each advanced with release stores and observed with acquire
// loads, with no compare-and-swap anywhere on the fast path. Go's
// sync/atomic provides the required acquire/release semantics.
//
// Two paper-specific features sit on top of the plain ring:
//
//   - Sleep on failed push: pushes must always succeed eventually
//     (discarding pairs would corrupt the result), so a producer facing a
//     full ring blocks. Busy-waiting burns the very core its combiner
//     needs; the paper found sleeping after a failed trial faster. Both
//     policies are provided so the ablation benchmark can compare them.
//
//   - Batched reads: the consumer pops blocks of contiguous elements and
//     processes them in place, cutting contention on the shared indices
//     and exploiting spatial locality (§IV-C measures up to 11.4x from
//     this alone).
package spsc

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the queue capacity the paper settled on after tuning:
// "a maximum capacity of five thousand elements achieves near-optimal
// (within 2%) performance across all test-cases" (§III-A).
const DefaultCapacity = 5000

// WaitPolicy selects how a producer waits for space in a full ring.
type WaitPolicy int

const (
	// WaitSleep sleeps with capped exponential backoff after a failed
	// push — the policy RAMR ships with.
	WaitSleep WaitPolicy = iota
	// WaitBusy spins, yielding the processor between attempts — the
	// policy the paper originally used and then abandoned; kept for the
	// ablation study.
	WaitBusy
)

// String names the policy for reports.
func (p WaitPolicy) String() string {
	switch p {
	case WaitSleep:
		return "sleep"
	case WaitBusy:
		return "busy-wait"
	default:
		return fmt.Sprintf("WaitPolicy(%d)", int(p))
	}
}

// pad keeps the producer and consumer indices on distinct cache lines so
// the two sides do not false-share.
type pad [64]byte

// Queue is a bounded single-producer/single-consumer queue of T. Exactly
// one goroutine may call producer methods (TryPush, Push, Close) and
// exactly one may call consumer methods (TryPop, ConsumeBatch, Drained);
// the two may run concurrently. The zero value is not usable; call New.
type Queue[T any] struct {
	buf  []T
	mask uint64

	_     pad
	head  atomic.Uint64 // next slot the consumer will read
	_     pad
	tail  atomic.Uint64 // next slot the producer will write
	_     pad
	done  atomic.Bool // producer has called Close
	_     pad
	stats Stats

	policy WaitPolicy
}

// Stats counts queue events; all fields are maintained by the owning sides
// without synchronization beyond the queue's own, so read them only after
// both sides have finished (or accept approximate values).
type Stats struct {
	Pushes      uint64 // elements successfully pushed
	FailedPush  uint64 // push attempts that found the ring full
	Pops        uint64 // elements consumed
	EmptyPolls  uint64 // consume attempts that found the ring empty
	BatchCalls  uint64 // functor invocations by ConsumeBatch
	SleepMicros uint64 // total microseconds producers slept
}

// New returns a queue with at least the requested capacity (rounded up to
// the next power of two, as the index arithmetic requires). capacity must
// be positive.
func New[T any](capacity int, policy WaitPolicy) (*Queue[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("spsc: capacity must be positive, got %d", capacity)
	}
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Queue[T]{buf: make([]T, n), mask: n - 1, policy: policy}, nil
}

// MustNew is New that panics on invalid capacity; for tests and literals.
func MustNew[T any](capacity int, policy WaitPolicy) *Queue[T] {
	q, err := New[T](capacity, policy)
	if err != nil {
		panic(err)
	}
	return q
}

// Cap returns the usable capacity of the ring.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the number of buffered elements. It is exact only when the
// queue is quiescent; under concurrency it is a point-in-time snapshot.
func (q *Queue[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// TryPush appends v if space is available, reporting success. Producer side.
func (q *Queue[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() == uint64(len(q.buf)) {
		q.stats.FailedPush++
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	q.stats.Pushes++
	return true
}

// Push appends v, waiting for space according to the queue's WaitPolicy.
// Producer side. Push after Close panics: the producer owns Close, so this
// is always a caller bug.
func (q *Queue[T]) Push(v T) {
	if q.done.Load() {
		panic("spsc: Push after Close")
	}
	if q.TryPush(v) {
		return
	}
	sleep := time.Microsecond
	const maxSleep = 128 * time.Microsecond
	for {
		if q.policy == WaitBusy {
			for i := 0; i < 64; i++ {
				if q.TryPush(v) {
					return
				}
			}
			// Let the consumer run if we share a core.
			time.Sleep(0)
			continue
		}
		time.Sleep(sleep)
		q.stats.SleepMicros += uint64(sleep / time.Microsecond)
		if q.TryPush(v) {
			return
		}
		if sleep < maxSleep {
			sleep *= 2
		}
	}
}

// Close marks the end of the stream. Producer side; idempotent.
func (q *Queue[T]) Close() { q.done.Store(true) }

// Closed reports whether the producer has closed the queue. Elements may
// still be buffered; use Drained to test for full consumption.
func (q *Queue[T]) Closed() bool { return q.done.Load() }

// TryPop removes and returns the oldest element. Consumer side.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tail.Load() {
		q.stats.EmptyPolls++
		return zero, false
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // drop the reference for GC
	q.head.Store(h + 1)
	q.stats.Pops++
	return v, true
}

// ConsumeBatch applies f to up to batch buffered elements and returns how
// many were consumed. Consumer side.
//
// Following §III-A/IV-C, the method only fires when at least batch
// elements are buffered — combiners wait for full blocks while mapping is
// in progress — unless force is set, in which case any remaining elements
// are consumed (the drain path after the map phase ends). The functor
// receives elements in ring slots, so a batch that wraps the ring arrives
// as two calls on the two contiguous runs; f must treat consecutive calls
// as a continuation.
func (q *Queue[T]) ConsumeBatch(batch int, force bool, f func([]T)) int {
	if batch <= 0 {
		batch = 1
	}
	h := q.head.Load()
	avail := q.tail.Load() - h
	if avail == 0 {
		q.stats.EmptyPolls++
		return 0
	}
	take := uint64(batch)
	if avail < take {
		if !force {
			q.stats.EmptyPolls++
			return 0
		}
		take = avail
	}
	consumed := uint64(0)
	for consumed < take {
		start := (h + consumed) & q.mask
		run := take - consumed
		if room := uint64(len(q.buf)) - start; run > room {
			run = room
		}
		seg := q.buf[start : start+run]
		f(seg)
		q.stats.BatchCalls++
		var zero T
		for i := range seg {
			seg[i] = zero
		}
		consumed += run
	}
	q.head.Store(h + consumed)
	q.stats.Pops += consumed
	return int(consumed)
}

// Drained reports whether the producer closed the queue and every element
// has been consumed — the combiner exit condition.
func (q *Queue[T]) Drained() bool {
	return q.done.Load() && q.head.Load() == q.tail.Load()
}

// Snapshot returns a copy of the event counters.
func (q *Queue[T]) Snapshot() Stats { return q.stats }
