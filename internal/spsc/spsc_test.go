package spsc

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0, WaitSleep); err == nil {
		t.Fatal("capacity 0 should be rejected")
	}
	if _, err := New[int](-5, WaitSleep); err == nil {
		t.Fatal("negative capacity should be rejected")
	}
	q, err := New[int](100, WaitSleep)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 128 {
		t.Fatalf("capacity 100 should round to 128, got %d", q.Cap())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) should panic")
		}
	}()
	MustNew[int](0, WaitSleep)
}

func TestFIFOSequential(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push succeeded on full ring")
	}
	if q.Len() != 8 {
		t.Fatalf("Len = %d, want 8", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestWrapAround(t *testing.T) {
	q := MustNew[int](4, WaitSleep)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next + i)
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestCloseAndDrain(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	q.Push(1)
	q.Push(2)
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.Drained() {
		t.Fatal("Drained() true with buffered elements")
	}
	q.TryPop()
	q.TryPop()
	if !q.Drained() {
		t.Fatal("Drained() false after consuming everything")
	}
}

func TestPushAfterClosePanics(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Close should panic")
		}
	}()
	q.Push(1)
}

func TestConsumeBatchWaitsForFullBlocks(t *testing.T) {
	q := MustNew[int](16, WaitSleep)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	// Not forced and fewer than batch elements: nothing consumed.
	if n := q.ConsumeBatch(8, false, func([]int) {}); n != 0 {
		t.Fatalf("consumed %d, want 0 (batch not full)", n)
	}
	// Forced: the remainder drains.
	var got []int
	if n := q.ConsumeBatch(8, true, func(b []int) { got = append(got, b...) }); n != 5 {
		t.Fatalf("forced consume = %d, want 5", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestConsumeBatchWrapsInOrder(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	// Advance the ring so a batch spans the wrap point.
	for i := 0; i < 6; i++ {
		q.Push(i)
		q.TryPop()
	}
	for i := 0; i < 8; i++ {
		q.Push(100 + i)
	}
	var got []int
	n := q.ConsumeBatch(8, false, func(b []int) { got = append(got, b...) })
	if n != 8 {
		t.Fatalf("consumed %d, want 8", n)
	}
	for i, v := range got {
		if v != 100+i {
			t.Fatalf("wrap order broken: got[%d]=%d want %d", i, v, 100+i)
		}
	}
}

func TestConsumeBatchZeroOrNegativeBatch(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	q.Push(7)
	var got []int
	if n := q.ConsumeBatch(0, false, func(b []int) { got = append(got, b...) }); n != 1 {
		t.Fatalf("batch=0 should behave as 1; consumed %d", n)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
}

// TestConcurrentNoLossNoDup is the core SPSC safety property: a concurrent
// producer/consumer pair sees every element exactly once, in order.
func TestConcurrentNoLossNoDup(t *testing.T) {
	for _, policy := range []WaitPolicy{WaitSleep, WaitBusy} {
		for _, batch := range []int{1, 7, 64} {
			q := MustNew[int](64, policy)
			// Modest on purpose: this runs on 1-CPU CI hosts where a
			// blocked producer only progresses on scheduler yields.
			const n = 8_000
			var wg sync.WaitGroup
			wg.Add(1)
			errs := make(chan string, 1)
			go func() {
				defer wg.Done()
				expect := 0
				for !q.Drained() {
					consumed := q.ConsumeBatch(batch, q.Closed(), func(b []int) {
						for _, v := range b {
							if v != expect {
								select {
								case errs <- "out of order":
								default:
								}
							}
							expect++
						}
					})
					if consumed == 0 {
						runtime.Gosched()
					}
				}
				if expect != n {
					select {
					case errs <- "lost elements":
					default:
					}
				}
			}()
			for i := 0; i < n; i++ {
				q.Push(i)
			}
			q.Close()
			wg.Wait()
			select {
			case msg := <-errs:
				t.Fatalf("policy=%v batch=%d: %s", policy, batch, msg)
			default:
			}
			s := q.Snapshot()
			if s.Pushes != n || s.Pops != n {
				t.Fatalf("stats: pushes=%d pops=%d want %d", s.Pushes, s.Pops, n)
			}
		}
	}
}

// TestQuickPushPopRoundTrip drives random push/pop interleavings through
// the ring and checks FIFO semantics against a slice model.
func TestQuickPushPopRoundTrip(t *testing.T) {
	f := func(ops []bool, vals []uint16) bool {
		q := MustNew[uint16](16, WaitSleep)
		var model []uint16
		vi := 0
		for _, push := range ops {
			if push {
				if vi >= len(vals) {
					break
				}
				if q.TryPush(vals[vi]) {
					model = append(model, vals[vi])
				} else if len(model) != q.Cap() {
					return false // push failed but ring not full
				}
				vi++
			} else {
				v, ok := q.TryPop()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false // pop failed but model non-empty
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGCReferencesDropped verifies consumed slots do not retain pointers.
func TestGCReferencesDropped(t *testing.T) {
	q := MustNew[*int](4, WaitSleep)
	v := new(int)
	q.Push(v)
	q.TryPop()
	// The slot should be zeroed; push/pop again and inspect via Len only
	// (the real check is that the buffer slot is nil — peek internally).
	if q.buf[0] != nil {
		t.Fatal("consumed slot still holds a reference")
	}
}

func TestWaitPolicyString(t *testing.T) {
	if WaitSleep.String() != "sleep" || WaitBusy.String() != "busy-wait" {
		t.Fatal("WaitPolicy String broken")
	}
	if WaitPolicy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestBlockingPushUnblocks(t *testing.T) {
	for _, policy := range []WaitPolicy{WaitSleep, WaitBusy} {
		q := MustNew[int](2, policy)
		q.Push(1)
		q.Push(2)
		done := make(chan struct{})
		go func() {
			q.Push(3) // blocks until the consumer frees a slot
			close(done)
		}()
		runtime.Gosched()
		if _, ok := q.TryPop(); !ok {
			t.Fatal("pop failed")
		}
		<-done
		if q.Len() != 2 {
			t.Fatalf("Len = %d, want 2", q.Len())
		}
	}
}

func TestPushBatchSequential(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	q.PushBatch([]int{0, 1, 2})
	q.PushBatch(nil) // empty block is a no-op
	q.PushBatch([]int{3, 4})
	for i := 0; i < 5; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d,%v)", i, v, ok)
		}
	}
	s := q.Snapshot()
	if s.Pushes != 5 || s.Pops != 5 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPushBatchWrapsInOrder(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	// Advance the indices so the next block spans the wrap point and
	// exercises the two-run copy.
	for i := 0; i < 6; i++ {
		q.Push(i)
		q.TryPop()
	}
	block := []int{100, 101, 102, 103, 104, 105, 106, 107}
	q.PushBatch(block)
	var got []int
	if n := q.ConsumeBatch(8, false, func(b []int) { got = append(got, b...) }); n != 8 {
		t.Fatalf("consumed %d, want 8", n)
	}
	for i, v := range got {
		if v != block[i] {
			t.Fatalf("wrap order broken: got[%d]=%d want %d", i, v, block[i])
		}
	}
}

// TestPushBatchLargerThanRing drives a block bigger than the capacity; the
// producer must chunk it while a concurrent consumer makes room.
func TestPushBatchLargerThanRing(t *testing.T) {
	q := MustNew[int](4, WaitSleep)
	block := make([]int, 37)
	for i := range block {
		block[i] = i
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		expect := 0
		for !q.Drained() {
			consumed := q.ConsumeBatch(3, q.Closed(), func(b []int) {
				for _, v := range b {
					if v != expect {
						t.Errorf("got %d, want %d", v, expect)
					}
					expect++
				}
			})
			if consumed == 0 {
				runtime.Gosched()
			}
		}
		if expect != len(block) {
			t.Errorf("consumed %d elements, want %d", expect, len(block))
		}
	}()
	q.PushBatch(block)
	q.Close()
	<-done
}

func TestPushBatchAfterClosePanics(t *testing.T) {
	q := MustNew[int](8, WaitSleep)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("PushBatch after Close should panic")
		}
	}()
	q.PushBatch([]int{1})
}

// TestShortPollsSeparatedFromEmptyPolls pins the satellite fix: a poll of a
// non-empty ring holding less than a full batch counts as short, not empty.
func TestShortPollsSeparatedFromEmptyPolls(t *testing.T) {
	q := MustNew[int](16, WaitSleep)
	if q.ConsumeBatch(4, false, func([]int) {}) != 0 {
		t.Fatal("consumed from empty ring")
	}
	q.Push(1)
	q.Push(2)
	if q.ConsumeBatch(4, false, func([]int) {}) != 0 {
		t.Fatal("unforced consume fired below a full batch")
	}
	s := q.Snapshot()
	if s.EmptyPolls != 1 || s.ShortPolls != 1 {
		t.Fatalf("EmptyPolls=%d ShortPolls=%d, want 1 and 1", s.EmptyPolls, s.ShortPolls)
	}
	// TryPop on empty also counts an empty poll.
	q.ConsumeBatch(2, true, func([]int) {})
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from drained ring")
	}
	if s := q.Snapshot(); s.EmptyPolls != 2 || s.ShortPolls != 1 {
		t.Fatalf("after drain: EmptyPolls=%d ShortPolls=%d, want 2 and 1", s.EmptyPolls, s.ShortPolls)
	}
}

// TestBusyWaitStatsPerRound pins the satellite fix: a blocked busy-wait
// push charges FailedPush once per failed round (not once per spin) and
// counts its rounds in SpinRounds, keeping sleep-vs-busy numbers
// comparable.
func TestBusyWaitStatsPerRound(t *testing.T) {
	q := MustNew[int](2, WaitBusy)
	q.Push(1)
	q.Push(2)
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		q.Push(3) // blocks until the consumer frees a slot
		close(done)
	}()
	<-started
	// Let the blocked producer accumulate spin rounds; stats must not be
	// read while it runs (they are unsynchronized by contract).
	time.Sleep(2 * time.Millisecond)
	if _, ok := q.TryPop(); !ok {
		t.Fatal("pop failed")
	}
	<-done
	s := q.Snapshot()
	if s.SpinRounds == 0 {
		t.Fatal("SpinRounds not counted under WaitBusy")
	}
	// One initial failure plus at most one per completed spin round —
	// the old accounting charged up to 64 per round.
	if s.FailedPush > s.SpinRounds+1 {
		t.Fatalf("FailedPush=%d exceeds rounds+1 (SpinRounds=%d): per-spin accounting is back", s.FailedPush, s.SpinRounds)
	}
}

// TestCachedIndexStaleness forces maximal cache staleness: the producer
// fills the ring completely (so its head cache is refreshed exactly at the
// full boundary) and the consumer drains it completely (tail cache
// refreshed at the empty boundary), repeatedly, checking FIFO order.
func TestCachedIndexStaleness(t *testing.T) {
	q := MustNew[int](4, WaitSleep)
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for q.TryPush(next) {
			next++
		}
		if q.Len() != q.Cap() {
			t.Fatalf("round %d: ring not full after TryPush run", round)
		}
		for {
			v, ok := q.TryPop()
			if !ok {
				break
			}
			if v != expect {
				t.Fatalf("round %d: got %d, want %d", round, v, expect)
			}
			expect++
		}
		if next != expect {
			t.Fatalf("round %d: drained %d of %d", round, expect, next)
		}
	}
}

// TestDiscardBatch pins the abort path's release valve: DiscardBatch frees
// ring slots without a functor, zeroes the vacated slots for GC, and keeps
// element conservation (Pops counts discarded elements like consumed ones).
func TestDiscardBatch(t *testing.T) {
	q := MustNew[*int](8, WaitSleep)
	for i := 0; i < 6; i++ {
		v := i
		q.Push(&v)
	}
	if n := q.DiscardBatch(4); n != 4 {
		t.Fatalf("discarded %d, want 4", n)
	}
	if n := q.DiscardBatch(4); n != 2 {
		t.Fatalf("discarded %d of the tail, want 2", n)
	}
	if n := q.DiscardBatch(4); n != 0 {
		t.Fatalf("discarded %d from empty ring, want 0", n)
	}
	s := q.Snapshot()
	if s.Pushes != 6 || s.Pops != 6 {
		t.Fatalf("conservation broken: %+v", s)
	}
	if s.EmptyPolls == 0 {
		t.Fatal("empty discard not counted as an empty poll")
	}
	// Vacated slots must not pin the discarded values.
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still references a discarded element", i)
		}
	}
	q.Close()
	if !q.Drained() {
		t.Fatal("queue not drained after discarding everything")
	}
}

// TestDiscardBatchUnblocksProducer shows DiscardBatch freeing a producer
// blocked on a full ring — the reason the abort path can discard instead of
// combine without wedging the pipeline.
func TestDiscardBatchUnblocksProducer(t *testing.T) {
	q := MustNew[int](4, WaitSleep)
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	done := make(chan struct{})
	go func() {
		q.Push(99) // blocks until a slot frees
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("push completed on a full ring")
	case <-time.After(10 * time.Millisecond):
	}
	for q.DiscardBatch(2) == 0 {
		runtime.Gosched()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked producer not released by DiscardBatch")
	}
}
