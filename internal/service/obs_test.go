package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ramr/internal/telemetry"
	"ramr/internal/topology"
)

// fetchTrace decodes the Chrome trace-event array served at
// /jobs/{id}/trace.
func fetchTrace(t *testing.T, ts *httptest.Server, id int) (int, []map[string]any) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/trace", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace for job %d is not a JSON array: %v", id, err)
	}
	return resp.StatusCode, events
}

// spanNames collects the names of the "X" (complete) events in a trace.
func spanNames(events []map[string]any) map[string]map[string]any {
	spans := map[string]map[string]any{}
	for _, ev := range events {
		if ev["ph"] == "X" {
			spans[ev["name"].(string)] = ev
		}
	}
	return spans
}

// waitTraceSpan polls the trace endpoint until the named span appears —
// the watcher goroutine finishes the trace slightly after the job's
// terminal state becomes pollable.
func waitTraceSpan(t *testing.T, ts *httptest.Server, id int, name string) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, events := fetchTrace(t, ts, id)
		if code == http.StatusOK {
			if _, ok := spanNames(events)[name]; ok {
				return events
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for job %d never grew a %q span (HTTP %d, %d events)",
				id, name, code, len(events))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobTraceLifecycle asserts the tentpole acceptance: a job submitted
// over HTTP yields a retrievable trace covering receive, build, queue
// wait, grant allocation (with the CPU set as span args) and the engine
// execution with its phases, all under a root span naming the job.
func TestJobTraceLifecycle(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	code, doc := postJob(t, ts, `{"workload":"WC","seed":1,"config":{"pin":"none"}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d (%v)", code, doc)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)
	events := waitTraceSpan(t, ts, id, "queue-wait")

	// Metadata first, then a monotonic timeline.
	inMeta := true
	lastTs := -1.0
	for i, ev := range events {
		if ev["ph"] == "M" {
			if !inMeta {
				t.Fatalf("event %d: metadata after timeline events", i)
			}
			continue
		}
		inMeta = false
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("event %d (%v): ts %v < previous %v", i, ev["name"], ts, lastTs)
		}
		lastTs = ts
	}

	spans := spanNames(events)
	for _, want := range []string{"job", "receive", "build", "queue-wait", "grant-alloc", "execute"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("trace missing span %q; have %v", want, keys(spans))
		}
	}
	root := spans["job"]
	args, _ := root["args"].(map[string]any)
	if args == nil || int(args["job_id"].(float64)) != id || args["workload"] != "WC" {
		t.Fatalf("root span args = %v, want job_id=%d workload=WC", args, id)
	}
	if args["status"] != "done" {
		t.Fatalf("root span status = %v, want done", args["status"])
	}
	ga, _ := spans["grant-alloc"]["args"].(map[string]any)
	if ga == nil {
		t.Fatal("grant-alloc span has no args")
	}
	cpus, _ := ga["cpus"].([]any)
	if len(cpus) == 0 {
		t.Fatalf("grant-alloc args carry no cpus: %v", ga)
	}
	ea, _ := spans["execute"]["args"].(map[string]any)
	if ea == nil || len(ea["cpus"].([]any)) != len(cpus) {
		t.Fatalf("execute span cpus %v != grant %v", ea, cpus)
	}
	// At least one engine phase span must have been stitched in.
	havePhase := false
	for name := range spans {
		if strings.HasPrefix(name, "phase:") {
			havePhase = true
		}
	}
	if !havePhase {
		t.Fatalf("no phase:* span in trace; have %v", keys(spans))
	}
}

func keys(m map[string]map[string]any) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMemoHitTraceShort asserts a memo hit serves a short hit-only
// trace: its own record id, a memo-hit instant naming the executor, a
// root status of "cached", and no execution or queue-wait spans.
func TestMemoHitTraceShort(t *testing.T) {
	_, ts, _ := newMemoService(t, Config{Seed: 5})
	body := `{"workload":"WC","seed":9,"config":{"pin":"none"}}`
	code, doc := postJob(t, ts, body)
	if code != http.StatusCreated {
		t.Fatalf("first POST: HTTP %d", code)
	}
	execID := int(doc["id"].(float64))
	waitDone(t, ts, execID)

	code, hit := postJob(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("repeat POST: HTTP %d (%v)", code, hit)
	}
	hitID := int(hit["id"].(float64))
	code, events := fetchTrace(t, ts, hitID)
	if code != http.StatusOK {
		t.Fatalf("trace for hit record %d: HTTP %d", hitID, code)
	}
	spans := spanNames(events)
	for _, absent := range []string{"execute", "queue-wait", "grant-alloc"} {
		if _, ok := spans[absent]; ok {
			t.Fatalf("memo-hit trace contains %q span; hits must not execute", absent)
		}
	}
	if args, _ := spans["job"]["args"].(map[string]any); args["status"] != "cached" {
		t.Fatalf("hit root status = %v, want cached", args["status"])
	}
	foundInstant := false
	for _, ev := range events {
		if ev["ph"] == "i" && ev["name"] == "memo-hit" {
			foundInstant = true
			args, _ := ev["args"].(map[string]any)
			if got := int(args["executed_by"].(float64)); got != execID {
				t.Fatalf("memo-hit instant names executor %d, want %d", got, execID)
			}
		}
	}
	if !foundInstant {
		t.Fatal("no memo-hit instant in hit trace")
	}
}

// TestReadyzDraining asserts satellite 1: /readyz answers 200 while
// serving and 503 once Shutdown starts draining, while the /healthz
// liveness probe stays 200 throughout.
func TestReadyzDraining(t *testing.T) {
	svc, ts, _ := newTestService(t, 0)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s before drain: HTTP %d", path, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestDebugEventsRing asserts the bounded event log records scheduler
// transitions and memo outcomes, oldest first, with drop accounting.
func TestDebugEventsRing(t *testing.T) {
	_, ts, _ := newMemoService(t, Config{Seed: 7, EventLog: 64})
	body := `{"workload":"WC","seed":2,"config":{"pin":"none"}}`
	code, doc := postJob(t, ts, body)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	waitDone(t, ts, int(doc["id"].(float64)))
	if code, _ := postJob(t, ts, body); code != http.StatusOK {
		t.Fatalf("repeat POST: HTTP %d", code)
	}

	_, events := getJSON(t, ts.URL+"/debug/events")
	if got := int(events["capacity"].(float64)); got != 64 {
		t.Fatalf("capacity = %d, want 64", got)
	}
	list, _ := events["events"].([]any)
	kinds := map[string]bool{}
	lastSeq := -1.0
	for _, raw := range list {
		ev := raw.(map[string]any)
		kinds[ev["kind"].(string)] = true
		seq := ev["seq"].(float64)
		if seq <= lastSeq {
			t.Fatalf("event seq %v not increasing after %v", seq, lastSeq)
		}
		lastSeq = seq
	}
	for _, want := range []string{"sched_queued", "sched_started", "sched_finished", "memo_hit"} {
		if !kinds[want] {
			t.Fatalf("event log missing kind %q; have %v", want, kinds)
		}
	}
}

// TestMetricsStrictAndHistograms asserts satellite 4 plus the tentpole
// histograms: the full /metrics exposition passes the strict checker and
// carries the lifecycle latency families and build info after jobs ran.
func TestMetricsStrictAndHistograms(t *testing.T) {
	_, ts, _ := newMemoService(t, Config{Seed: 13})
	body := `{"workload":"WC","seed":4,"config":{"pin":"none"}}`
	code, doc := postJob(t, ts, body)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)
	if code, _ := postJob(t, ts, body); code != http.StatusOK {
		t.Fatalf("repeat POST: HTTP %d", code)
	}

	// The watcher observes the histograms just after the terminal state;
	// poll until the e2e family carries both the run and the hit.
	deadline := time.Now().Add(10 * time.Second)
	var text string
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text = string(b)
		if strings.Contains(text, `ramr_job_e2e_seconds_count{workload="WC",engine="RAMR",priority="normal"} 2`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("e2e histogram never reached 2 observations:\n%s", text)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := telemetry.CheckExposition([]byte(text)); err != nil {
		t.Fatalf("/metrics fails strict validation: %v", err)
	}
	for _, want := range []string{
		"# TYPE ramr_job_e2e_seconds histogram",
		"# TYPE ramr_job_queue_wait_seconds histogram",
		"# TYPE ramr_job_grant_alloc_seconds histogram",
		"# TYPE ramr_job_phase_seconds histogram",
		`ramr_job_phase_seconds_count{workload="WC",engine="RAMR",priority="normal",phase="map-combine"} 1`,
		"ramr_build_info{version=",
		"ramr_service_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestStatsRuntimeSection asserts satellite 2: /stats carries the
// process-health section with build and heap figures.
func TestStatsRuntimeSection(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	_, doc := getJSON(t, ts.URL+"/stats")
	rt, _ := doc["runtime"].(map[string]any)
	if rt == nil {
		t.Fatalf("/stats has no runtime section: %v", doc)
	}
	if v, _ := rt["go_version"].(string); v == "" {
		t.Fatalf("runtime section missing go_version: %v", rt)
	}
	if g := rt["goroutines"].(float64); g < 1 {
		t.Fatalf("goroutines = %v", g)
	}
	if h := rt["heap_alloc_bytes"].(float64); h <= 0 {
		t.Fatalf("heap_alloc_bytes = %v", h)
	}
	if u := rt["uptime_seconds"].(float64); u < 0 {
		t.Fatalf("uptime_seconds = %v", u)
	}
}

// sharedLogSink multiplexes WithAttrs children into one record list.
type sharedLogSink struct {
	mu      sync.Mutex
	records []map[string]any
}

type sinkHandler struct {
	sink  *sharedLogSink
	attrs []slog.Attr
}

func (h *sinkHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *sinkHandler) Handle(_ context.Context, r slog.Record) error {
	m := map[string]any{"msg": r.Message}
	for _, a := range h.attrs {
		m[a.Key] = a.Value.Any()
	}
	r.Attrs(func(a slog.Attr) bool {
		m[a.Key] = a.Value.Any()
		return true
	})
	h.sink.mu.Lock()
	h.sink.records = append(h.sink.records, m)
	h.sink.mu.Unlock()
	return nil
}

func (h *sinkHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &sinkHandler{sink: h.sink, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h *sinkHandler) WithGroup(string) slog.Handler { return h }

func (s *sharedLogSink) find(msg string) map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.records {
		if r["msg"] == msg {
			return r
		}
	}
	return nil
}

// TestServiceLogCorrelation asserts satellite 3: the service's lifecycle
// log lines carry job_id and content_digest correlation attributes.
func TestServiceLogCorrelation(t *testing.T) {
	sink := &sharedLogSink{}
	svc, err := New(Config{
		Machine: topology.HaswellServer(),
		Seed:    17,
		Logger:  slog.New(&sinkHandler{sink: sink}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	code, doc := postJob(t, ts, `{"workload":"WC","seed":3,"config":{"pin":"none"}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)

	deadline := time.Now().Add(10 * time.Second)
	for sink.find("job finished") == nil {
		if time.Now().After(deadline) {
			t.Fatal("no 'job finished' log line")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, msg := range []string{"job admitted", "job finished"} {
		rec := sink.find(msg)
		if rec == nil {
			t.Fatalf("no %q log line", msg)
		}
		if got, ok := rec["job_id"].(int64); !ok || int(got) != id {
			t.Fatalf("%q line job_id = %v, want %d", msg, rec["job_id"], id)
		}
		if d, _ := rec["content_digest"].(string); d == "" {
			t.Fatalf("%q line has no content_digest: %v", msg, rec)
		}
	}
}
