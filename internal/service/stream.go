// Streaming sessions over the job API: a submission carrying "stream"
// opens a resident pipeline (internal/stream) under a scheduler grant
// instead of a one-shot batch run. Chunks arrive via POST
// /jobs/{id}/chunks (202, or 429 with Retry-After under backpressure),
// sealed windows are served from GET /jobs/{id}/windows[/{n}], POST
// /jobs/{id}/close seals the final window and settles the job, and
// DELETE /jobs/{id} cancels the resident pipeline, freeing its CPU
// grant. Streaming submissions bypass the memo cache and the in-flight
// coalescer entirely: a session's result is a function of chunks that
// have not arrived at submission time, so no digest can stand for it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/obs"
	"ramr/internal/sched"
	"ramr/internal/stream"
	"ramr/internal/synth"
	"ramr/internal/telemetry"
	"ramr/internal/workloads"
)

// streamCloseTimeout bounds the drain POST /jobs/{id}/close waits for.
// The handler deliberately does not use the request context: a client
// hanging up mid-close must not cancel the seal of the final windows.
const streamCloseTimeout = 60 * time.Second

// streamMetrics are the service-level ramr_stream_* Prometheus
// families, written by writeServiceProm after the memo block.
type streamMetrics struct {
	chunks       atomic.Uint64
	sealed       atomic.Uint64
	backpressure atomic.Uint64
	late         atomic.Uint64
	open         atomic.Int64
	// lag is ramr_stream_watermark_lag_seconds{job="..."}: wall-clock
	// age of each live session's oldest unsealed data, refreshed at
	// scrape time and deleted with the job record.
	lag *telemetry.GaugeVec
}

func newStreamMetrics() *streamMetrics {
	return &streamMetrics{
		lag: telemetry.NewGaugeVec("ramr_stream_watermark_lag_seconds",
			"Wall-clock age of the oldest unsealed data per streaming session.",
			[]string{"job"}),
	}
}

// streamState is one streaming session's service-side handle. The
// stream.Session is built inside the scheduler Run closure (its worker
// split depends on the CPU grant), so handlers arriving earlier wait on
// ready — closed by publish, by fail, or by the watch fallback when the
// job settles without ever starting (cancelled while queued).
type streamState struct {
	spec   mr.StreamSpec // resolved
	app    string        // SYNTH or WC: selects the session builder
	kind   container.Kind
	params synth.Params
	seed   int64

	// idReady orders the Run closure after Submit assigned the job id
	// (the closure may fire before sch.Submit returns to the caller).
	idReady chan struct{}
	ready   chan struct{}
	once    sync.Once

	mu       sync.Mutex
	sess     *stream.Session
	startErr error
}

// publish installs the started session and releases waiting handlers.
func (st *streamState) publish(sess *stream.Session) {
	st.mu.Lock()
	st.sess = sess
	st.mu.Unlock()
	st.once.Do(func() { close(st.ready) })
}

// fail records a start failure and releases waiting handlers.
func (st *streamState) fail(err error) {
	st.mu.Lock()
	if st.startErr == nil {
		st.startErr = err
	}
	st.mu.Unlock()
	st.once.Do(func() { close(st.ready) })
}

// session returns the live session, or the reason there is none.
func (st *streamState) session() (*stream.Session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.sess == nil {
		if st.startErr != nil {
			return nil, st.startErr
		}
		return nil, errors.New("streaming session not started")
	}
	return st.sess, nil
}

// peek returns the session without waiting (nil if not started yet).
func (st *streamState) peek() *stream.Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sess
}

// await blocks until the session started or definitively will not.
func (st *streamState) await(ctx context.Context) (*stream.Session, error) {
	select {
	case <-st.ready:
		return st.session()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// submitStream is Submit's streaming branch: the entry goes through the
// same scheduler admission, telemetry registration and retention as a
// batch job, but skips the memo lookup and the in-flight coalescer —
// identical streaming submissions each get their own resident session,
// and no streaming result is ever inserted into the cache (watch guards
// on e.stream).
func (s *Service) submitStream(req *JobRequest, job *workloads.Job, cfg mr.Config, digest string, rec *obs.Recorder) (*resultDoc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, sched.ErrDraining
	}
	st := &streamState{
		spec:    cfg.Stream.Resolved(),
		app:     job.App,
		kind:    job.Container,
		params:  req.synthParams,
		seed:    req.Seed,
		idReady: make(chan struct{}),
		ready:   make(chan struct{}),
	}
	e := &entry{
		workload: job.App,
		engine:   req.engine,
		telem:    telemetry.New(),
		digest:   digest,
		rec:      rec,
		stream:   st,
	}
	cfg.Telemetry = e.telem
	sj, err := s.sch.Submit(sched.JobSpec{
		Name:     job.App,
		Priority: req.priority,
		MinCPUs:  req.MinCPUs,
		MaxCPUs:  req.MaxCPUs,
		Run: func(ctx context.Context, grant []int) error {
			<-st.idReady
			return s.runStream(ctx, grant, e, st, req, cfg)
		},
		Metrics: e.finalMetrics,
	})
	if err != nil {
		return nil, err
	}
	e.id = sj.ID()
	e.job = sj
	close(st.idReady)
	rec.SetJob(e.id, e.workload)
	rec.Instant("stream-session", map[string]any{
		"window": st.spec.Window, "slide": st.spec.Slide,
		"lateness": st.spec.Lateness, "max_pending": st.spec.MaxPending,
	})
	s.entries[e.id] = e
	s.multi.Register(strconv.Itoa(e.id), map[string]string{
		"job": strconv.Itoa(e.id),
		"app": e.workload,
	}, e.telem)
	s.ring.Append("stream_open", e.id, map[string]any{
		"window": st.spec.Window, "slide": st.spec.Slide,
	})
	s.jobLog(e).Info("streaming session admitted", "workload", e.workload,
		"window", st.spec.Window, "slide", st.spec.Slide,
		"priority", req.priority.String())
	go s.watch(e)
	doc := resultDoc{entryStatus: s.statusLocked(e)}
	return &doc, nil
}

// runStream is the streaming job's Run closure: build the session for
// the granted worker split, start the resident pipeline, then hold the
// grant until the session drains (Close), is cancelled (DELETE or
// scheduler drain), or dies. The workers live here across every window;
// nothing restarts between seals.
func (s *Service) runStream(ctx context.Context, grant []int, e *entry, st *streamState, req *JobRequest, cfg mr.Config) error {
	c := cfg
	c.ApplyGrant(grant)
	if req.Config.Mappers > 0 {
		c.Mappers = req.Config.Mappers
	}
	if req.Config.Combiners > 0 {
		c.Combiners = req.Config.Combiners
	}
	start := time.Now()
	var sess *stream.Session
	var err error
	if st.app == "WC" {
		sess, err = workloads.NewWordCountStreamSession(st.kind, c)
	} else {
		sess, err = synth.NewStreamSession(st.params, st.seed, c)
	}
	if err != nil {
		st.fail(err)
		return err
	}
	rec := e.rec
	sess.SetOnSeal(func(w stream.WindowMeta) {
		s.stream.sealed.Add(1)
		rec.SpanAt(fmt.Sprintf("window-%d", w.Index), w.OpenedAt, w.SealedAt, map[string]any{
			"pairs": w.Pairs, "elements": w.Elements, "splits": w.Splits, "chunks": w.Chunks,
		})
		rec.InstantAt("window-sealed", w.SealedAt, map[string]any{
			"window": w.Index, "pairs": w.Pairs, "elements": w.Elements,
		})
		s.ring.Append("window_sealed", e.id, map[string]any{
			"window": w.Index, "pairs": w.Pairs, "elements": w.Elements,
		})
	})
	if err := sess.Start(); err != nil {
		st.fail(err)
		return err
	}
	st.publish(sess)
	s.stream.open.Add(1)
	defer s.stream.open.Add(-1)
	rec.SpanAt("stream-start", start, time.Now(), map[string]any{
		"cpus": append([]int(nil), grant...)})

	select {
	case <-ctx.Done():
		// DELETE /jobs/{id} or scheduler drain: tear the resident
		// pipeline down and free every worker before releasing the
		// grant — the leak check in the tests rides on this wait.
		sess.CancelWait()
	case <-sess.Done():
	}
	err = sess.Err()

	stats := sess.Stats()
	pairs := 0
	for _, w := range sess.Windows() {
		pairs += w.Pairs
	}
	info := &workloads.RunInfo{
		Wall:      time.Since(start),
		Queue:     sess.QueueStats(),
		Pairs:     pairs,
		Telemetry: e.telem.EndRun(nil),
		Tuner:     sess.TunerReport(),
	}
	e.mu.Lock()
	e.info = info
	e.mu.Unlock()
	rec.InstantAt("stream-drained", time.Now(), map[string]any{
		"chunks": stats.Chunks, "windows": stats.Sealed, "elements": stats.Elements,
	})
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// chunkRequest is the POST /jobs/{id}/chunks body. Ts is a pointer so
// an explicit 0 tick and an omitted field (auto-assign) stay distinct.
type chunkRequest struct {
	Ts       *int64   `json:"ts,omitempty"`
	Elements int      `json:"elements,omitempty"`
	Lines    []string `json:"lines,omitempty"`
}

// chunkResponse acknowledges an admitted chunk.
type chunkResponse struct {
	Ts        int64 `json:"ts"`
	Pending   int64 `json:"pending"`
	Watermark int64 `json:"watermark"`
	Sealed    int   `json:"windows_sealed"`
}

// streamEntry resolves {id} to a live streaming entry.
func (s *Service) streamEntry(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, s.log, http.StatusNotFound, err)
		return nil, false
	}
	if e.stream == nil {
		writeErr(w, s.jobLog(e), http.StatusConflict,
			fmt.Errorf("job %d is not a streaming session", e.id))
		return nil, false
	}
	return e, true
}

// handleStreamChunk implements POST /jobs/{id}/chunks: 202 on admission
// with the assigned tick, 429 with Retry-After under backpressure
// (derived from the pending backlog and the SPSC failed-push rate), 409
// for late chunks, closed sessions and dead sessions, 400 for malformed
// payloads.
func (s *Service) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamEntry(w, r)
	if !ok {
		return
	}
	lg := s.jobLog(e)
	var req chunkRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, lg, http.StatusBadRequest, fmt.Errorf("decoding chunk: %w", err))
		return
	}
	sess, err := e.stream.await(r.Context())
	if err != nil {
		writeErr(w, lg, http.StatusConflict, fmt.Errorf("streaming session unavailable: %w", err))
		return
	}
	rc := stream.RawChunk{Ts: stream.TsAuto, Elements: req.Elements, Lines: req.Lines}
	if req.Ts != nil {
		rc.Ts = *req.Ts
	}
	ts, err := sess.Append(rc)
	if err == nil {
		s.stream.chunks.Add(1)
		st := sess.Stats()
		writeJSON(w, lg, http.StatusAccepted, chunkResponse{
			Ts: ts, Pending: st.Pending, Watermark: st.Watermark, Sealed: st.Sealed,
		})
		return
	}
	var bp *stream.BackpressureError
	var late *stream.LateChunkError
	switch {
	case errors.As(err, &bp):
		s.stream.backpressure.Add(1)
		s.ring.Append("stream_backpressure", e.id, map[string]any{
			"pending": bp.Pending, "limit": bp.Limit,
		})
		w.Header().Set("Retry-After",
			strconv.Itoa(int(math.Ceil(bp.RetryAfter.Seconds()))))
		writeJSON(w, lg, http.StatusTooManyRequests, map[string]any{
			"error":          bp.Error(),
			"retry_after_ms": bp.RetryAfter.Milliseconds(),
			"pending":        bp.Pending,
			"limit":          bp.Limit,
		})
	case errors.As(err, &late):
		s.stream.late.Add(1)
		writeJSON(w, lg, http.StatusConflict, map[string]any{
			"error":     late.Error(),
			"ts":        late.Ts,
			"watermark": late.Watermark,
		})
	case errors.Is(err, stream.ErrClosed):
		writeErr(w, lg, http.StatusConflict, err)
	default:
		// Decode errors (bad payload for the workload) are the
		// client's fault; session-fatal errors are conflicts.
		if sess.Err() != nil {
			writeErr(w, lg, http.StatusConflict, err)
		} else {
			writeErr(w, lg, http.StatusBadRequest, err)
		}
	}
}

// windowsDoc is the GET /jobs/{id}/windows body.
type windowsDoc struct {
	Spec    streamSpecDoc       `json:"spec"`
	Stats   stream.Stats        `json:"stats"`
	Windows []stream.WindowMeta `json:"windows"`
}

// streamSpecDoc renders the resolved window spec.
type streamSpecDoc struct {
	Window     int64 `json:"window"`
	Slide      int64 `json:"slide"`
	Lateness   int64 `json:"lateness"`
	MaxPending int   `json:"max_pending"`
}

func specDoc(sp mr.StreamSpec) streamSpecDoc {
	return streamSpecDoc{Window: sp.Window, Slide: sp.Slide, Lateness: sp.Lateness, MaxPending: sp.MaxPending}
}

// handleStreamWindows implements GET /jobs/{id}/windows: every sealed
// window's summary in seal order, with the live session stats. 202
// while the session has not started yet.
func (s *Service) handleStreamWindows(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamEntry(w, r)
	if !ok {
		return
	}
	sess := e.stream.peek()
	if sess == nil {
		writeJSON(w, s.jobLog(e), http.StatusAccepted, map[string]any{
			"state": "starting", "spec": specDoc(e.stream.spec),
		})
		return
	}
	writeJSON(w, s.jobLog(e), http.StatusOK, windowsDoc{
		Spec:    specDoc(e.stream.spec),
		Stats:   sess.Stats(),
		Windows: sess.Windows(),
	})
}

// handleStreamWindow implements GET /jobs/{id}/windows/{n}: 200 with
// the sealed window, 202 while the window may still seal (session
// live), 404 once the session is over without it (empty windows are
// skipped, late indices never existed).
func (s *Service) handleStreamWindow(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamEntry(w, r)
	if !ok {
		return
	}
	lg := s.jobLog(e)
	n, err := strconv.ParseInt(r.PathValue("n"), 10, 64)
	if err != nil {
		writeErr(w, lg, http.StatusBadRequest, fmt.Errorf("invalid window index %q", r.PathValue("n")))
		return
	}
	sess := e.stream.peek()
	if sess == nil {
		writeJSON(w, lg, http.StatusAccepted, map[string]any{"state": "starting"})
		return
	}
	if wm, ok := sess.Window(n); ok {
		writeJSON(w, lg, http.StatusOK, wm)
		return
	}
	select {
	case <-sess.Done():
		writeErr(w, lg, http.StatusNotFound,
			fmt.Errorf("window %d was not sealed by session %d (empty windows are skipped)", n, e.id))
	default:
		writeJSON(w, lg, http.StatusAccepted, map[string]any{
			"state": "open", "windows_sealed": sess.Stats().Sealed,
		})
	}
}

// handleStreamClose implements POST /jobs/{id}/close: stop admitting
// chunks, drain the resident workers, seal every remaining window
// (the final, watermark-incomplete one included) and settle the job.
// Synchronous: the 200 response carries the final window set.
func (s *Service) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamEntry(w, r)
	if !ok {
		return
	}
	lg := s.jobLog(e)
	sess, err := e.stream.await(r.Context())
	if err != nil {
		writeErr(w, lg, http.StatusConflict, fmt.Errorf("streaming session unavailable: %w", err))
		return
	}
	// Deliberately not the request context: a client disconnect must
	// not abort the final seal.
	ctx, cancel := context.WithTimeout(context.Background(), streamCloseTimeout)
	defer cancel()
	lg.Info("streaming session close requested")
	if err := sess.Close(ctx); err != nil {
		writeErr(w, lg, http.StatusConflict, fmt.Errorf("closing session: %w", err))
		return
	}
	writeJSON(w, lg, http.StatusOK, windowsDoc{
		Spec:    specDoc(e.stream.spec),
		Stats:   sess.Stats(),
		Windows: sess.Windows(),
	})
}

// streamStatusDoc is the "stream" section of a streaming job's status.
type streamStatusDoc struct {
	Spec streamSpecDoc `json:"spec"`
	// Started is false until the scheduler granted CPUs and the
	// resident workers spawned.
	Started bool          `json:"started"`
	Stats   *stream.Stats `json:"stats,omitempty"`
}

// streamStatus renders e's stream section (nil for batch jobs).
func (e *entry) streamStatus() *streamStatusDoc {
	if e.stream == nil {
		return nil
	}
	doc := &streamStatusDoc{Spec: specDoc(e.stream.spec)}
	if sess := e.stream.peek(); sess != nil {
		doc.Started = true
		st := sess.Stats()
		doc.Stats = &st
	}
	return doc
}

// writeStreamProm appends the ramr_stream_* families: service-total
// counters plus the per-session watermark-lag gauge, refreshed from the
// live sessions at scrape time.
func (s *Service) writeStreamProm(w io.Writer) error {
	s.mu.Lock()
	for _, e := range s.entries {
		if e.stream == nil {
			continue
		}
		if sess := e.stream.peek(); sess != nil {
			s.stream.lag.Set(sess.Stats().WatermarkLag.Seconds(), strconv.Itoa(e.id))
		}
	}
	s.mu.Unlock()
	if _, err := fmt.Fprintf(w, `# HELP ramr_stream_chunks_total Chunks admitted into streaming sessions.
# TYPE ramr_stream_chunks_total counter
ramr_stream_chunks_total %d
# HELP ramr_stream_windows_sealed_total Windows sealed across streaming sessions.
# TYPE ramr_stream_windows_sealed_total counter
ramr_stream_windows_sealed_total %d
# HELP ramr_stream_backpressure_total Chunk submissions rejected with 429 by the pending bound.
# TYPE ramr_stream_backpressure_total counter
ramr_stream_backpressure_total %d
# HELP ramr_stream_late_chunks_total Chunks rejected for arriving behind the watermark.
# TYPE ramr_stream_late_chunks_total counter
ramr_stream_late_chunks_total %d
# HELP ramr_stream_sessions_open Streaming sessions currently holding a grant.
# TYPE ramr_stream_sessions_open gauge
ramr_stream_sessions_open %d
`,
		s.stream.chunks.Load(), s.stream.sealed.Load(),
		s.stream.backpressure.Load(), s.stream.late.Load(),
		s.stream.open.Load()); err != nil {
		return err
	}
	return s.stream.lag.WritePrometheus(w)
}
