package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ramr/internal/sched"
	"ramr/internal/topology"
)

// newMemoService is newTestService with memo/retention knobs and an
// EventStarted counter, for the dedup tests.
func newMemoService(t *testing.T, cfg Config) (*Service, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var starts atomic.Int64
	inner := cfg.Observer
	cfg.Observer = func(e sched.Event) {
		if e.Kind == sched.EventStarted {
			starts.Add(1)
		}
		if inner != nil {
			inner(e)
		}
	}
	if cfg.Machine == nil {
		cfg.Machine = topology.HaswellServer()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts, &starts
}

func deleteJob(t *testing.T, ts *httptest.Server, id int) (int, map[string]any) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("DELETE /jobs/%d: HTTP %d, undecodable body %q", id, resp.StatusCode, body)
		}
	}
	return resp.StatusCode, doc
}

func memoSection(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	code, doc := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats: HTTP %d", code)
	}
	m, ok := doc["memo"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing memo section: %v", doc)
	}
	return m
}

// TestMemoHitDeterministic submits the same WC job twice per engine: the
// second POST must be a 200 cache hit carrying the original executor's
// result, including a bit-identical output digest; the two engines must
// not share cache lines (their content digests differ).
func TestMemoHitDeterministic(t *testing.T) {
	_, ts, starts := newMemoService(t, Config{Seed: 3})

	digests := map[string]string{}
	for _, engine := range []string{"ramr", "phoenix"} {
		body := fmt.Sprintf(`{"workload":"WC","engine":%q,"seed":42,"config":{"pin":"none"}}`, engine)
		code, doc := postJob(t, ts, body)
		if code != http.StatusCreated {
			t.Fatalf("[%s] first POST: HTTP %d (%v)", engine, code, doc)
		}
		id := int(doc["id"].(float64))
		waitDone(t, ts, id)
		_, res := getJSON(t, fmt.Sprintf("%s/jobs/%d/result", ts.URL, id))
		wantOut, _ := res["digest"].(string)
		if wantOut == "" {
			t.Fatalf("[%s] result has no output digest: %v", engine, res)
		}

		code, hit := postJob(t, ts, body)
		if code != http.StatusOK {
			t.Fatalf("[%s] repeat POST: HTTP %d (%v), want 200", engine, code, hit)
		}
		if hit["cached"] != true {
			t.Fatalf("[%s] repeat POST not marked cached: %v", engine, hit)
		}
		if got := int(hit["executed_by"].(float64)); got != id {
			t.Fatalf("[%s] cache hit names executor %d, executed job was %d", engine, got, id)
		}
		if got := int(hit["id"].(float64)); got == id {
			t.Fatalf("[%s] cache hit reused the executor's id %d; want its own record", engine, got)
		}
		if got, _ := hit["digest"].(string); got != wantOut {
			t.Fatalf("[%s] cached output digest %q != executed %q", engine, got, wantOut)
		}
		if hit["state"] != "done" {
			t.Fatalf("[%s] cached doc state %v", engine, hit["state"])
		}
		cd, _ := hit["content_digest"].(string)
		if cd == "" {
			t.Fatalf("[%s] cache hit missing content_digest", engine)
		}
		digests[engine] = cd
	}
	if digests["ramr"] == digests["phoenix"] {
		t.Fatal("ramr and phoenix share a content digest; engine must be part of the identity")
	}
	if got := starts.Load(); got != 2 {
		t.Fatalf("%d executions for 4 submissions, want 2", got)
	}
	m := memoSection(t, ts)
	if m["hits"].(float64) != 2 || m["misses"].(float64) != 2 {
		t.Fatalf("memo counters hits=%v misses=%v, want 2/2", m["hits"], m["misses"])
	}
}

// TestCoalescingExactlyOnce fires N identical submissions concurrently:
// exactly one scheduler execution may happen; every other caller must be
// answered by coalescing onto the in-flight leader or by the memo cache,
// and all of them converge to the same finished result.
func TestCoalescingExactlyOnce(t *testing.T) {
	_, ts, starts := newMemoService(t, Config{Seed: 5, MaxQueued: 1})

	const n = 8
	body := `{"workload":"SYNTH","seed":9,"config":{"pin":"none"},"synth":{"elements":600000,"map_intensity":200}}`
	type reply struct {
		code int
		doc  map[string]any
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, doc := postJob(t, ts, body)
			replies[i] = reply{code, doc}
		}(i)
	}
	wg.Wait()

	var leaders, followers, hits int
	for _, r := range replies {
		switch {
		case r.code == http.StatusOK && r.doc["cached"] == true:
			hits++
		case r.code == http.StatusCreated && r.doc["coalesced"] == true:
			followers++
		case r.code == http.StatusCreated:
			leaders++
		default:
			t.Fatalf("unexpected reply HTTP %d: %v", r.code, r.doc)
		}
	}
	if leaders != 1 || leaders+followers+hits != n {
		t.Fatalf("leaders=%d followers=%d hits=%d of %d, want exactly 1 leader", leaders, followers, hits, n)
	}

	// Every record (leader and followers) settles to done with a result.
	for _, r := range replies {
		if r.doc["cached"] == true {
			continue
		}
		id := int(r.doc["id"].(float64))
		doc := waitDone(t, ts, id)
		if doc["state"] != "done" {
			t.Fatalf("job %d state %v", id, doc["state"])
		}
		if doc["wall_ms"] == nil {
			t.Fatalf("job %d finished without a result summary: %v", id, doc)
		}
	}
	if got := starts.Load(); got != 1 {
		t.Fatalf("%d executions for %d identical submissions, want 1", got, n)
	}
	m := memoSection(t, ts)
	if got := m["coalesced"].(float64) + m["hits"].(float64); got != n-1 {
		t.Fatalf("coalesced+hits = %v, want %d", got, n-1)
	}
}

// TestFollowerCancelDetaches covers the waiter-aware DELETE semantics: a
// follower's DELETE removes only its own record and the shared execution
// keeps running for the leader; the leader's own DELETE (now the last
// waiter) cancels it for real.
func TestFollowerCancelDetaches(t *testing.T) {
	_, ts, _ := newMemoService(t, Config{Seed: 7})

	body := `{"workload":"SYNTH","config":{"pin":"none"},"synth":{"elements":2000000,"map_intensity":400}}`
	code, doc := postJob(t, ts, body)
	if code != http.StatusCreated {
		t.Fatalf("leader POST: HTTP %d (%v)", code, doc)
	}
	leader := int(doc["id"].(float64))
	code, doc = postJob(t, ts, body)
	if code != http.StatusCreated || doc["coalesced"] != true {
		t.Fatalf("follower POST: HTTP %d coalesced=%v (leader finished too fast?)", code, doc["coalesced"])
	}
	follower := int(doc["id"].(float64))
	if doc["waiters"].(float64) < 2 {
		t.Fatalf("follower doc waiters=%v, want >= 2", doc["waiters"])
	}

	if code, _ := deleteJob(t, ts, follower); code != http.StatusNoContent {
		t.Fatalf("DELETE follower: HTTP %d", code)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, follower)); code != http.StatusNotFound {
		t.Fatalf("detached follower still retained: HTTP %d", code)
	}
	// The leader must not have been cancelled by the follower's exit.
	code, doc = getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, leader))
	if code != http.StatusOK || doc["state"] == "canceled" {
		t.Fatalf("leader after follower DELETE: HTTP %d state %v", code, doc["state"])
	}

	// Last waiter leaving cancels the execution.
	if code, _ := deleteJob(t, ts, leader); code != http.StatusNoContent {
		t.Fatalf("DELETE leader: HTTP %d", code)
	}
	doc = waitDone(t, ts, leader)
	if doc["state"] != "canceled" && doc["state"] != "done" {
		t.Fatalf("leader settled as %v", doc["state"])
	}
}

// TestCancelFinished409 asserts satellite 2: DELETE on a finished job is
// a 409 Conflict naming the terminal state, and it removes the retained
// record (a second DELETE is 404).
func TestCancelFinished409(t *testing.T) {
	_, ts, _ := newMemoService(t, Config{Seed: 11})
	code, doc := postJob(t, ts, `{"workload":"SYNTH","config":{"pin":"none"},"synth":{"elements":1000,"keys":16}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)

	code, doc = deleteJob(t, ts, id)
	if code != http.StatusConflict {
		t.Fatalf("DELETE finished job: HTTP %d (%v), want 409", code, doc)
	}
	if doc["state"] != "done" {
		t.Fatalf("409 body missing terminal state: %v", doc)
	}
	if code, _ = deleteJob(t, ts, id); code != http.StatusNotFound {
		t.Fatalf("second DELETE: HTTP %d, want 404", code)
	}
}

// TestEvictionBoundOverHTTP runs distinct jobs against a tiny cache
// bound and asserts the byte accounting holds end-to-end: evictions are
// counted and the cached footprint never exceeds the bound.
func TestEvictionBoundOverHTTP(t *testing.T) {
	const bound = 8 << 10
	svc, ts, _ := newMemoService(t, Config{Seed: 13, CacheMaxBytes: bound})
	for seed := 0; seed < 6; seed++ {
		body := fmt.Sprintf(`{"workload":"SYNTH","seed":%d,"config":{"pin":"none"},"synth":{"elements":2000,"keys":64}}`, seed)
		code, doc := postJob(t, ts, body)
		if code != http.StatusCreated {
			t.Fatalf("POST seed %d: HTTP %d (%v)", seed, code, doc)
		}
		waitDone(t, ts, int(doc["id"].(float64)))
	}
	// watch() inserts into the cache asynchronously after the job turns
	// done; wait for the inflight map to drain.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Cache().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m := memoSection(t, ts)
	if got := int64(m["cached_bytes"].(float64)); got > bound {
		t.Fatalf("cached_bytes %d exceeds bound %d", got, bound)
	}
	if m["max_bytes"].(float64) != bound {
		t.Fatalf("max_bytes = %v, want %d", m["max_bytes"], bound)
	}
	if m["evictions"].(float64) == 0 && m["cached_entries"].(float64) == 6 {
		t.Fatal("six results fit an 8 KiB bound with no evictions; sizing is broken")
	}
}

// TestDeleteUnregistersMetrics is the leak regression test: once a
// finished job's record is deleted, its labels must disappear from
// /metrics while the service-level memo families remain.
func TestDeleteUnregistersMetrics(t *testing.T) {
	svc, ts, _ := newMemoService(t, Config{Seed: 17})
	code, doc := postJob(t, ts, `{"workload":"SYNTH","config":{"pin":"none"},"synth":{"elements":1000,"keys":16}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	label := fmt.Sprintf("job=%q", fmt.Sprint(id))
	if text := scrape(); !strings.Contains(text, label) {
		t.Fatalf("/metrics missing %s before delete:\n%.400s", label, text)
	}
	if code, _ := deleteJob(t, ts, id); code != http.StatusConflict {
		t.Fatalf("DELETE finished job: HTTP %d", code)
	}
	text := scrape()
	if strings.Contains(text, label) {
		t.Fatalf("deleted job's labels still exposed:\n%.400s", text)
	}
	for _, family := range []string{"ramr_memo_hits_total", "ramr_memo_cached_bytes", "ramr_service_jobs_retained"} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics missing service family %s after delete", family)
		}
	}
	if svc.Multi().Len() != 0 {
		t.Fatalf("%d telemetry registrations leaked", svc.Multi().Len())
	}
}

// TestRetentionBound soaks the registry: many distinct finished jobs
// must not grow the record map or the telemetry aggregator past the
// configured retention bound.
func TestRetentionBound(t *testing.T) {
	const retain = 3
	svc, ts, _ := newMemoService(t, Config{Seed: 19, RetainFinished: retain})
	for seed := 0; seed < 10; seed++ {
		body := fmt.Sprintf(`{"workload":"SYNTH","seed":%d,"config":{"pin":"none"},"synth":{"elements":1000,"keys":16}}`, seed)
		code, doc := postJob(t, ts, body)
		if code != http.StatusCreated {
			t.Fatalf("POST seed %d: HTTP %d (%v)", seed, code, doc)
		}
		waitDone(t, ts, int(doc["id"].(float64)))
	}
	// Retirement runs in watch() after the terminal state is visible;
	// give the last goroutine a beat.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n := svc.Multi().Len(); n <= retain {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, doc := getJSON(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs: HTTP %d", code)
	}
	jobs := doc["jobs"].([]any)
	if len(jobs) > retain {
		t.Fatalf("%d records retained, bound is %d", len(jobs), retain)
	}
	if n := svc.Multi().Len(); n > retain {
		t.Fatalf("%d telemetry registrations retained, bound is %d", n, retain)
	}
	m := memoSection(t, ts)
	if got := int(m["retained_jobs"].(float64)); got > retain {
		t.Fatalf("/stats retained_jobs %d exceeds bound %d", got, retain)
	}
}

// TestWriteJSONEncodeError asserts satellite 3: an unencodable value
// becomes a logged 500 with a well-formed JSON error body, never a 200
// with a truncated body.
func TestWriteJSONEncodeError(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, slog.New(slog.DiscardHandler), http.StatusOK, map[string]any{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500", rec.Code)
	}
	var doc map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("500 body is not JSON: %q", rec.Body.String())
	}
	if doc["error"] == "" {
		t.Fatalf("500 body missing error: %v", doc)
	}
}
