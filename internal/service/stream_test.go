package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ramr/internal/faultinject"
	"ramr/internal/telemetry"
)

// postPath POSTs a JSON body to ts.URL+path and decodes the response.
func postPath(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding POST %s response (HTTP %d): %v", path, resp.StatusCode, err)
	}
	return resp.StatusCode, doc, resp.Header
}

// openStream submits a streaming SYNTH job and waits for the resident
// session to hold its grant (stream.started in the status document).
func openStream(t *testing.T, ts *httptest.Server, streamSpec string) int {
	t.Helper()
	body := fmt.Sprintf(`{"workload":"SYNTH","max_cpus":8,"seed":5,"config":{"pin":"none"},"stream":%s}`, streamSpec)
	code, doc, _ := postPath(t, ts, "/jobs", body)
	if code != http.StatusCreated {
		t.Fatalf("POST /jobs (stream): HTTP %d (%v)", code, doc)
	}
	if doc["cached"] == true {
		t.Fatalf("streaming submission served from cache: %v", doc)
	}
	if doc["stream"] == nil {
		t.Fatalf("streaming submission status missing stream section: %v", doc)
	}
	id := int(doc["id"].(float64))
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, st := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("status for stream job %d: HTTP %d (%v)", id, code, st)
		}
		switch st["state"] {
		case "done", "canceled":
			t.Fatalf("stream job %d terminal before starting: %v", id, st)
		}
		if sec, ok := st["stream"].(map[string]any); ok && sec["started"] == true {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream job %d session not started after 30s: %v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// postChunk appends one synthetic chunk at the given tick.
func postChunk(t *testing.T, ts *httptest.Server, id int, ts64 int64, elements int) (int, map[string]any, http.Header) {
	t.Helper()
	return postPath(t, ts, fmt.Sprintf("/jobs/%d/chunks", id),
		fmt.Sprintf(`{"ts":%d,"elements":%d}`, ts64, elements))
}

// sealedWindows polls GET /jobs/{id}/windows until at least want windows
// sealed, returning the window list.
func sealedWindows(t *testing.T, ts *httptest.Server, id, want int) []any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, doc := getJSON(t, fmt.Sprintf("%s/jobs/%d/windows", ts.URL, id))
		if code == http.StatusOK {
			ws, _ := doc["windows"].([]any)
			if len(ws) >= want {
				return ws
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream job %d: fewer than %d sealed windows after 30s", id, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func checkNoWorkerLeak(t *testing.T) {
	t.Helper()
	if leaked := faultinject.AwaitNoWorkers(5 * time.Second); len(leaked) > 0 {
		t.Fatalf("%d worker goroutines leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// TestStreamingSessionOverHTTP is the streaming acceptance path: one
// resident SYNTH session ingests three chunks arriving over time, serves
// two sealed tumbling windows while still running (no worker restart
// between windows), seals the third on close, and conserves every
// element per window.
func TestStreamingSessionOverHTTP(t *testing.T) {
	svc, ts, tr := newTestService(t, 0)
	id := openStream(t, ts, `{"window":1}`)

	const perChunk = 600
	for tick := int64(0); tick < 3; tick++ {
		code, doc, _ := postChunk(t, ts, id, tick, perChunk)
		if code != http.StatusAccepted {
			t.Fatalf("chunk ts=%d: HTTP %d (%v)", tick, code, doc)
		}
		if int64(doc["ts"].(float64)) != tick {
			t.Fatalf("chunk assigned ts %v, want %d", doc["ts"], tick)
		}
		time.Sleep(10 * time.Millisecond) // splits arrive over time
	}

	// Windows 0 and 1 seal behind the ts=2 watermark while the session
	// keeps running — the resident pipeline serves results mid-stream.
	ws := sealedWindows(t, ts, id, 2)
	code, st := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
	if code != http.StatusOK || st["state"] != "running" {
		t.Fatalf("session not resident after %d sealed windows: state=%v", len(ws), st["state"])
	}

	// A sealed window is individually addressable; an unsealed one is 202.
	code, w0 := getJSON(t, fmt.Sprintf("%s/jobs/%d/windows/0", ts.URL, id))
	if code != http.StatusOK || int(w0["index"].(float64)) != 0 {
		t.Fatalf("GET window 0: HTTP %d (%v)", code, w0)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/jobs/%d/windows/2", ts.URL, id)); code != http.StatusAccepted {
		t.Fatalf("GET unsealed window 2: HTTP %d, want 202", code)
	}

	code, final, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id), `{}`)
	if code != http.StatusOK {
		t.Fatalf("POST close: HTTP %d (%v)", code, final)
	}
	ws, _ = final["windows"].([]any)
	if len(ws) != 3 {
		t.Fatalf("closed session sealed %d windows, want 3", len(ws))
	}
	var total float64
	for i, wAny := range ws {
		w := wAny.(map[string]any)
		if got := w["elements"].(float64); got != perChunk {
			t.Fatalf("window %d conserved %.0f elements, want %d", i, got, perChunk)
		}
		if w["digest"] == nil || w["digest"] == "" {
			t.Fatalf("window %d missing digest: %v", i, w)
		}
		total += w["elements"].(float64)
	}
	if total != 3*perChunk {
		t.Fatalf("conservation across windows: %.0f elements, want %d", total, 3*perChunk)
	}

	doc := waitDone(t, ts, id)
	if doc["state"] != "done" || doc["error"] != nil {
		t.Fatalf("closed stream job settled %v (err %v)", doc["state"], doc["error"])
	}
	code, res := getJSON(t, fmt.Sprintf("%s/jobs/%d/result", ts.URL, id))
	if code != http.StatusOK || res["pairs"] == nil || res["pairs"].(float64) <= 0 {
		t.Fatalf("stream result: HTTP %d (%v)", code, res)
	}

	tr.check(t, svc.Scheduler().Budget())
	checkNoWorkerLeak(t)
}

// TestStreamBackpressure429 drives the admission bound: a chunk whose
// split count exceeds max_pending is rejected with 429 and a
// Retry-After hint, and the session keeps accepting fitting chunks.
func TestStreamBackpressure429(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	id := openStream(t, ts, `{"window":1,"max_pending":2}`)

	// 2048 elements split at 512 apiece = 4 splits > max_pending 2:
	// rejected no matter how drained the pipeline is.
	code, doc, hdr := postChunk(t, ts, id, 0, 2048)
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversize chunk: HTTP %d (%v), want 429", code, doc)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if doc["retry_after_ms"] == nil || doc["retry_after_ms"].(float64) <= 0 {
		t.Fatalf("429 body missing retry_after_ms: %v", doc)
	}
	if doc["limit"].(float64) != 2 {
		t.Fatalf("429 body limit %v, want 2", doc["limit"])
	}

	if code, doc, _ := postChunk(t, ts, id, 0, 512); code != http.StatusAccepted {
		t.Fatalf("fitting chunk after 429: HTTP %d (%v)", code, doc)
	}
	if code, doc, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id), `{}`); code != http.StatusOK {
		t.Fatalf("close after backpressure: HTTP %d (%v)", code, doc)
	}
	waitDone(t, ts, id)
	checkNoWorkerLeak(t)
}

// TestStreamDeleteCancelsResident covers DELETE on an open session: the
// resident pipeline is torn down, the CPU grant returns to the budget
// promptly, and no worker goroutine survives.
func TestStreamDeleteCancelsResident(t *testing.T) {
	svc, ts, _ := newTestService(t, 0)
	id := openStream(t, ts, `{"window":1}`)
	if code, doc, _ := postChunk(t, ts, id, 0, 600); code != http.StatusAccepted {
		t.Fatalf("chunk before cancel: HTTP %d (%v)", code, doc)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE open session: HTTP %d, want 204", resp.StatusCode)
	}

	// A running job cancelled mid-grant drains and settles done with
	// the cancellation error (StateCanceled is reserved for jobs pulled
	// from the queue before starting).
	doc := waitDone(t, ts, id)
	if doc["error"] == nil {
		t.Fatalf("cancelled session reports no error: %v", doc)
	}
	// The grant must come back as soon as the job settles.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Scheduler().Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("CPU grant not freed after cancel: %+v", svc.Scheduler().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The dead session rejects further chunks instead of hanging.
	if code, doc, _ := postChunk(t, ts, id, 1, 600); code != http.StatusConflict {
		t.Fatalf("chunk after cancel: HTTP %d (%v), want 409", code, doc)
	}
	checkNoWorkerLeak(t)
}

// TestStreamBypassesMemo proves streaming submissions are never
// memoized or coalesced: an identical concurrent submission gets its
// own resident session (not a follower), and an identical repeat after
// completion re-executes instead of answering 200 from the cache.
func TestStreamBypassesMemo(t *testing.T) {
	svc, ts, _ := newTestService(t, 0)

	runOnce := func() int {
		id := openStream(t, ts, `{"window":1}`)
		if code, doc, _ := postChunk(t, ts, id, 0, 512); code != http.StatusAccepted {
			t.Fatalf("chunk: HTTP %d (%v)", code, doc)
		}
		return id
	}

	id1 := runOnce()
	// Identical submission while id1 is in flight: a second 201 with its
	// own session, never a coalesced follower.
	id2 := openStream(t, ts, `{"window":1}`)
	if id2 == id1 {
		t.Fatalf("duplicate streaming submission reused job %d", id1)
	}
	_, st2 := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id2))
	if st2["coalesced"] == true {
		t.Fatalf("streaming submission coalesced onto job %d: %v", id1, st2)
	}
	for _, id := range []int{id1, id2} {
		if code, doc, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id), `{}`); code != http.StatusOK {
			t.Fatalf("close %d: HTTP %d (%v)", id, code, doc)
		}
		waitDone(t, ts, id)
	}

	// Identical repeat after both completed: still a fresh execution.
	id3 := runOnce()
	if code, doc, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id3), `{}`); code != http.StatusOK {
		t.Fatalf("close %d: HTTP %d (%v)", id3, code, doc)
	}
	waitDone(t, ts, id3)

	if cs := svc.Cache().Stats(); cs.Hits != 0 || cs.Entries != 0 || cs.Coalesced != 0 {
		t.Fatalf("streaming leaked into the memo path: %+v", cs)
	}
	checkNoWorkerLeak(t)
}

// TestStreamConcurrentProducersOverHTTP hammers one session from
// several producers with auto-assigned ticks and backpressure retries,
// then checks exact element conservation across every sealed window.
func TestStreamConcurrentProducersOverHTTP(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	id := openStream(t, ts, `{"window":2,"max_pending":8}`)

	const producers, perProducer, perChunk = 4, 12, 256
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for {
					resp, err := http.Post(
						fmt.Sprintf("%s/jobs/%d/chunks", ts.URL, id),
						"application/json",
						strings.NewReader(fmt.Sprintf(`{"elements":%d}`, perChunk)))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
					case http.StatusTooManyRequests:
						time.Sleep(2 * time.Millisecond)
						continue
					default:
						errs <- fmt.Errorf("chunk: HTTP %d", resp.StatusCode)
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	code, final, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id), `{}`)
	if code != http.StatusOK {
		t.Fatalf("close: HTTP %d (%v)", code, final)
	}
	var total float64
	ws, _ := final["windows"].([]any)
	for _, wAny := range ws {
		total += wAny.(map[string]any)["elements"].(float64)
	}
	if want := float64(producers * perProducer * perChunk); total != want {
		t.Fatalf("conservation across %d windows: %.0f elements, want %.0f", len(ws), total, want)
	}
	waitDone(t, ts, id)
	checkNoWorkerLeak(t)
}

// TestStreamMetricsExposition scrapes /metrics with a live streaming
// session: the ramr_stream_* families must be present, carry the
// session's traffic, and the whole exposition must satisfy the strict
// format checker. The per-session watermark-lag series disappears with
// the job record.
func TestStreamMetricsExposition(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	id := openStream(t, ts, `{"window":1,"max_pending":2}`)
	for tick := int64(0); tick < 2; tick++ {
		if code, doc, _ := postChunk(t, ts, id, tick, 512); code != http.StatusAccepted {
			t.Fatalf("chunk ts=%d: HTTP %d (%v)", tick, code, doc)
		}
	}
	if code, _, _ := postChunk(t, ts, id, 2, 2048); code != http.StatusTooManyRequests {
		t.Fatalf("oversize chunk: HTTP %d, want 429", code)
	}
	sealedWindows(t, ts, id, 1)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	text := scrape()
	if err := telemetry.CheckExposition([]byte(text)); err != nil {
		t.Fatalf("/metrics fails strict validation with streaming families: %v", err)
	}
	for _, want := range []string{
		"ramr_stream_chunks_total 2",
		"ramr_stream_backpressure_total 1",
		"ramr_stream_sessions_open 1",
		"# TYPE ramr_stream_windows_sealed_total counter",
		fmt.Sprintf(`ramr_stream_watermark_lag_seconds{job="%d"}`, id),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%.1200s", want, text)
		}
	}

	if code, doc, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id), `{}`); code != http.StatusOK {
		t.Fatalf("close: HTTP %d (%v)", code, doc)
	}
	waitDone(t, ts, id)
	// Deleting the settled record drops its lag series from the scrape.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text = scrape()
	if strings.Contains(text, fmt.Sprintf(`ramr_stream_watermark_lag_seconds{job="%d"}`, id)) {
		t.Fatalf("lag series survived record deletion:\n%.1200s", text)
	}
	if err := telemetry.CheckExposition([]byte(text)); err != nil {
		t.Fatalf("/metrics fails validation after session end: %v", err)
	}
	checkNoWorkerLeak(t)
}

// TestWordCountStreamOverHTTP is the WC streaming acceptance path: a
// resident Word Count session ingests real text lines over HTTP (not
// synthetic element counts), seals per-tick windows with exact word
// counts, and rejects element-style chunks with a client error.
func TestWordCountStreamOverHTTP(t *testing.T) {
	svc, ts, tr := newTestService(t, 0)

	code, doc, _ := postPath(t, ts, "/jobs",
		`{"workload":"WC","max_cpus":8,"config":{"pin":"none"},"stream":{"window":1}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST /jobs (WC stream): HTTP %d (%v)", code, doc)
	}
	id := int(doc["id"].(float64))
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, st := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("status for WC stream job %d: HTTP %d (%v)", id, code, st)
		}
		if sec, ok := st["stream"].(map[string]any); ok && sec["started"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("WC stream session not started after 30s: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Tick 0: "to be or not to be" — to:2 be:2 or:1 not:1, six words.
	// Tick 1: one line repeated over two lines of the same chunk.
	chunks := []string{
		`{"ts":0,"lines":["to be or not to be"]}`,
		`{"ts":1,"lines":["ramr ramr runtime","ramr"]}`,
		`{"ts":2,"lines":["drain the watermark"]}`,
	}
	for i, body := range chunks {
		code, doc, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/chunks", id), body)
		if code != http.StatusAccepted {
			t.Fatalf("WC chunk %d: HTTP %d (%v)", i, code, doc)
		}
	}

	// An element-style chunk (the SYNTH shape) is the client's fault.
	if code, doc, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/chunks", id),
		`{"ts":2,"elements":100}`); code != http.StatusBadRequest {
		t.Fatalf("element chunk on a WC stream: HTTP %d, want 400 (%v)", code, doc)
	}

	ws := sealedWindows(t, ts, id, 2)
	w0 := ws[0].(map[string]any)
	if got := w0["elements"].(float64); got != 6 {
		t.Fatalf("window 0 folded %.0f words, want 6", got)
	}
	if got := w0["pairs"].(float64); got != 4 {
		t.Fatalf("window 0 has %.0f distinct words, want 4", got)
	}
	if w0["digest"] == nil || w0["digest"] == "" {
		t.Fatalf("window 0 missing digest: %v", w0)
	}
	counts := map[string]string{}
	for _, sp := range w0["sample"].([]any) {
		p := sp.(map[string]any)
		counts[p["key"].(string)] = p["value"].(string)
	}
	for word, want := range map[string]string{"to": "2", "be": "2", "or": "1", "not": "1"} {
		if counts[word] != want {
			t.Fatalf("window 0 sample: %s=%q, want %q (full: %v)", word, counts[word], want, counts)
		}
	}
	w1 := ws[1].(map[string]any)
	if got := w1["elements"].(float64); got != 4 {
		t.Fatalf("window 1 folded %.0f words, want 4", got)
	}
	if got := w1["splits"].(float64); got != 2 {
		t.Fatalf("window 1 saw %.0f splits (lines), want 2", got)
	}

	code, final, _ := postPath(t, ts, fmt.Sprintf("/jobs/%d/close", id), `{}`)
	if code != http.StatusOK {
		t.Fatalf("close: HTTP %d (%v)", code, final)
	}
	if ws, _ := final["windows"].([]any); len(ws) != 3 {
		t.Fatalf("closed WC session sealed %d windows, want 3", len(ws))
	}
	doc = waitDone(t, ts, id)
	if doc["state"] != "done" || doc["error"] != nil {
		t.Fatalf("closed WC stream settled %v (err %v)", doc["state"], doc["error"])
	}

	tr.check(t, svc.Scheduler().Budget())
	checkNoWorkerLeak(t)
}
