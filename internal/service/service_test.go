package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ramr/internal/faultinject"
	"ramr/internal/sched"
	"ramr/internal/topology"
)

// newTestService builds a Service over a synthetic 56-CPU machine (the
// CI host has one CPU; pinning to absent CPUs is a no-op) and an
// observer asserting the budget invariant on every transition.
func newTestService(t *testing.T, maxQueued int) (*Service, *httptest.Server, *grantTracker) {
	t.Helper()
	tr := &grantTracker{}
	svc, err := New(Config{
		Machine:   topology.HaswellServer(),
		MaxQueued: maxQueued,
		Seed:      11,
		Observer:  tr.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts, tr
}

// grantTracker records scheduler events and checks, on every
// transition, that the granted total never exceeds the budget and that
// concurrently running grants are disjoint.
type grantTracker struct {
	mu        sync.Mutex
	running   map[int][]int
	violation string
	maxInUse  int
}

func (g *grantTracker) observe(e sched.Event) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running == nil {
		g.running = make(map[int][]int)
	}
	if e.InUse > g.maxInUse {
		g.maxInUse = e.InUse
	}
	switch e.Kind {
	case sched.EventStarted:
		for other, grant := range g.running {
			for _, c := range grant {
				for _, nc := range e.Grant {
					if c == nc && g.violation == "" {
						g.violation = fmt.Sprintf("CPU %d granted to jobs %d and %d", c, other, e.JobID)
					}
				}
			}
		}
		g.running[e.JobID] = e.Grant
	case sched.EventFinished:
		delete(g.running, e.JobID)
	}
}

func (g *grantTracker) check(t *testing.T, budget int) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.violation != "" {
		t.Fatalf("grant overlap: %s", g.violation)
	}
	if g.maxInUse > budget {
		t.Fatalf("granted total %d exceeded budget %d", g.maxInUse, budget)
	}
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, doc
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding %s (HTTP %d): %v", url, resp.StatusCode, err)
	}
	return resp.StatusCode, doc
}

func waitDone(t *testing.T, ts *httptest.Server, id int) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, doc := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("status for job %d: HTTP %d (%v)", id, code, doc)
		}
		switch doc["state"] {
		case "done", "canceled":
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d still %v after 30s", id, doc["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentJobsOverHTTP is the e2e acceptance path: three
// mixed-priority jobs submitted over HTTP run on disjoint grants within
// the budget, finish, and serve phase times, queue stats and results.
func TestConcurrentJobsOverHTTP(t *testing.T) {
	svc, ts, tr := newTestService(t, 0)

	reqs := []string{
		`{"workload":"WC","priority":"high","max_cpus":8,"seed":1,"config":{"pin":"none"}}`,
		`{"workload":"HG","priority":"normal","max_cpus":8,"seed":2,"config":{"pin":"none"}}`,
		`{"workload":"LR","priority":"low","max_cpus":8,"seed":3,"engine":"phoenix"}`,
	}
	var ids []int
	for _, r := range reqs {
		code, doc := postJob(t, ts, r)
		if code != http.StatusCreated {
			t.Fatalf("POST /jobs: HTTP %d (%v)", code, doc)
		}
		ids = append(ids, int(doc["id"].(float64)))
	}

	for _, id := range ids {
		doc := waitDone(t, ts, id)
		if doc["state"] != "done" {
			t.Fatalf("job %d state %v", id, doc["state"])
		}
		if doc["error"] != nil {
			t.Fatalf("job %d error: %v", id, doc["error"])
		}
		if doc["phases"] == nil {
			t.Fatalf("job %d status missing phase times: %v", id, doc)
		}
		if doc["wall_ms"] == nil {
			t.Fatalf("job %d status missing wall time", id)
		}
		code, res := getJSON(t, fmt.Sprintf("%s/jobs/%d/result", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("result for job %d: HTTP %d", id, code)
		}
		if res["pairs"] == nil || res["pairs"].(float64) <= 0 {
			t.Fatalf("job %d result has no pairs: %v", id, res)
		}
	}

	// The RAMR jobs carried live telemetry; /metrics aggregates them
	// under per-job labels.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `job="`+fmt.Sprint(ids[0])+`"`) {
		t.Fatalf("/metrics missing per-job labels:\n%.800s", text)
	}
	if strings.Count(text, "# TYPE ramr_workers") > 1 {
		t.Fatal("/metrics repeats metric family headers across jobs")
	}

	tr.check(t, svc.Scheduler().Budget())
	if leaked := faultinject.AwaitNoWorkers(2 * time.Second); len(leaked) > 0 {
		t.Fatalf("%d goroutines leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

func TestAdmissionControl429(t *testing.T) {
	_, ts, _ := newTestService(t, 1)

	// Hold the whole budget with a slow synthetic job, fill the 1-deep
	// queue, then overflow: the third POST must get 429. All three are
	// SYNTH jobs because their input generation is instant — a heavier
	// generator inside POST would give the blocker time to finish. The
	// seeds differ so the requests have distinct content digests — an
	// identical body would coalesce onto the queued job instead of
	// consuming an admission slot.
	slow := `{"workload":"SYNTH","min_cpus":56,"max_cpus":56,"config":{"pin":"none"},"synth":{"elements":400000,"map_intensity":300}}`
	tiny := `{"workload":"SYNTH","seed":1,"min_cpus":56,"config":{"pin":"none"},"synth":{"elements":1000,"keys":16}}`
	tiny2 := `{"workload":"SYNTH","seed":2,"min_cpus":56,"config":{"pin":"none"},"synth":{"elements":1000,"keys":16}}`
	code, doc := postJob(t, ts, slow)
	if code != http.StatusCreated {
		t.Fatalf("first POST: HTTP %d (%v)", code, doc)
	}
	first := int(doc["id"].(float64))
	code, doc = postJob(t, ts, tiny)
	if code != http.StatusCreated {
		t.Fatalf("second POST: HTTP %d (%v)", code, doc)
	}
	second := int(doc["id"].(float64))
	code, doc = postJob(t, ts, tiny2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third POST: HTTP %d (%v), want 429", code, doc)
	}
	for _, id := range []int{first, second} {
		if doc := waitDone(t, ts, id); doc["state"] != "done" {
			t.Fatalf("job %d state %v", id, doc["state"])
		}
	}
}

func TestCancelOverHTTP(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	code, doc := postJob(t, ts, `{"workload":"SYNTH","config":{"pin":"none"},"synth":{"elements":2000000,"map_intensity":400}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	id := int(doc["id"].(float64))
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	doc = waitDone(t, ts, id)
	if doc["error"] == nil {
		t.Fatalf("cancelled job reports no error: %v", doc)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	for _, body := range []string{
		`{`,
		`{"workload":"NOPE"}`,
		`{"workload":"WC","engine":"cuda"}`,
		`{"workload":"WC","priority":"urgent"}`,
		`{"workload":"WC","min_cpus":500}`,
		`{"workload":"WC","unknown_field":1}`,
	} {
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Fatalf("POST %s: HTTP %d, want 400", body, code)
		}
	}
	if code, _ := getJSON(t, ts.URL+"/jobs/999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job: HTTP %d, want 404", code)
	}
}

// TestGracefulShutdown verifies Shutdown's contract: admission stops,
// already-accepted jobs (running and queued) complete, and their
// results stay retrievable.
func TestGracefulShutdown(t *testing.T) {
	svc, ts, _ := newTestService(t, 0)
	code, doc := postJob(t, ts, `{"workload":"WC","min_cpus":56,"config":{"pin":"none"}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	runningID := int(doc["id"].(float64))
	code, doc = postJob(t, ts, `{"workload":"HG","min_cpus":56,"config":{"pin":"none"}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	queuedID := int(doc["id"].(float64))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, _ := postJob(t, ts, `{"workload":"WC"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown POST: HTTP %d, want 503", code)
	}
	for _, id := range []int{runningID, queuedID} {
		code, res := getJSON(t, fmt.Sprintf("%s/jobs/%d/result", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("result for job %d after shutdown: HTTP %d (%v)", id, code, res)
		}
		if res["state"] != "done" || res["pairs"] == nil {
			t.Fatalf("job %d lost in shutdown: %v", id, res)
		}
	}
}

func TestListJobs(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	for i := 0; i < 2; i++ {
		code, _ := postJob(t, ts, `{"workload":"LR","config":{"pin":"none"}}`)
		if code != http.StatusCreated {
			t.Fatalf("POST %d: HTTP %d", i, code)
		}
	}
	code, doc := getJSON(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs: HTTP %d", code)
	}
	jobs := doc["jobs"].([]any)
	if len(jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(jobs))
	}
	for i := 0; i < 2; i++ {
		waitDone(t, ts, int(jobs[i].(map[string]any)["id"].(float64)))
	}
}

// TestStatsExposesJobBalance: /stats carries the scheduler occupancy
// document plus a per-job section with work-stealing counters (and the
// imbalance ratio when telemetry sampled any) once a job finished.
func TestStatsExposesJobBalance(t *testing.T) {
	_, ts, _ := newTestService(t, 0)
	code, doc := postJob(t, ts, `{"workload":"WC","config":{"pin":"none"}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d", code)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)

	code, stats := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats: HTTP %d", code)
	}
	schedDoc, ok := stats["scheduler"].(map[string]any)
	if !ok || schedDoc["Budget"] == nil {
		t.Fatalf("/stats missing scheduler document: %v", stats)
	}
	jobs, ok := stats["jobs"].([]any)
	if !ok || len(jobs) != 1 {
		t.Fatalf("/stats jobs = %v, want one entry", stats["jobs"])
	}
	j := jobs[0].(map[string]any)
	if int(j["id"].(float64)) != id || j["state"] != "done" {
		t.Fatalf("/stats job entry: %v", j)
	}
	if _, ok := j["steal"].(map[string]any); !ok {
		t.Fatalf("/stats job entry missing steal counters: %v", j)
	}

	// The finished job's status document carries the same counters.
	_, st := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
	if _, ok := st["steal"].(map[string]any); !ok {
		t.Fatalf("job status missing steal counters: %v", st)
	}
}

// TestSkewAndStealOverlay: the API accepts a zipf skew for SYNTH inputs
// and a steal-policy overlay; a skewed job under "steal":"off" must
// finish with zero stolen tasks, and malformed values are rejected at
// submit.
func TestSkewAndStealOverlay(t *testing.T) {
	_, ts, _ := newTestService(t, 0)

	for _, bad := range []string{
		`{"workload":"SYNTH","synth":{"skew":0.5},"config":{"pin":"none"}}`,
		`{"workload":"SYNTH","config":{"pin":"none","steal":"sometimes"}}`,
	} {
		if code, _ := postJob(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("POST %s: HTTP %d, want 400", bad, code)
		}
	}

	code, doc := postJob(t, ts,
		`{"workload":"SYNTH","config":{"pin":"none","steal":"off"},"synth":{"elements":20000,"skew":1.5}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST: HTTP %d (%v)", code, doc)
	}
	id := int(doc["id"].(float64))
	waitDone(t, ts, id)

	_, st := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
	steal, ok := st["steal"].(map[string]any)
	if !ok {
		t.Fatalf("job status missing steal counters: %v", st)
	}
	for _, k := range []string{"socket_tasks", "remote_tasks", "remote_executed"} {
		if v := steal[k].(float64); v != 0 {
			t.Fatalf("steal-off job has %s = %v: %v", k, v, steal)
		}
	}
	if steal["local_tasks"].(float64) == 0 {
		t.Fatalf("steal-off job recorded no local takes: %v", steal)
	}
}
