package service

import (
	"net/http"

	"ramr/internal/workloads"
)

// ProtoVersion is the wire-protocol generation of the job API, served on
// every response as the X-RAMR-Proto header and inside the /stats
// capabilities block. A cluster coordinator (internal/cluster) probes it
// before dispatching shards and refuses workers whose generation
// differs, so a mixed-version deployment fails loudly at admission
// instead of corrupting a merge with a partial whose shape it
// misreads. Bump it on any incompatible change to the shard or partial
// wire shapes.
const ProtoVersion = "1"

// ProtoHeader is the response header carrying ProtoVersion.
const ProtoHeader = "X-RAMR-Proto"

// Capabilities describes what this worker can do, served in the /stats
// "capabilities" section. The coordinator reads it (with the header)
// during its compatibility probe.
type Capabilities struct {
	// Proto is ProtoVersion.
	Proto string `json:"proto"`
	// Features names the optional protocol surfaces this build speaks.
	Features []string `json:"features"`
	// ShardApps lists the workloads accepting a shard spec.
	ShardApps []string `json:"shard_apps"`
	// StreamApps lists the workloads accepting a stream spec.
	StreamApps []string `json:"stream_apps"`
}

// capabilitiesDoc builds the worker's capability advertisement.
func capabilitiesDoc() Capabilities {
	return Capabilities{
		Proto:      ProtoVersion,
		Features:   []string{"jobs", "memo", "partial", "shard", "stream"},
		ShardApps:  workloads.ShardableApps(),
		StreamApps: []string{"SYNTH", "WC"},
	}
}

// withProto stamps the protocol version header on every response of the
// wrapped handler.
func withProto(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ProtoHeader, ProtoVersion)
		next.ServeHTTP(w, r)
	})
}
