package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/obs"
	"ramr/internal/sched"
	"ramr/internal/synth"
	"ramr/internal/topology"
	"ramr/internal/tuner"
	"ramr/internal/workloads"
)

// JobRequest is the POST /jobs body. Everything except Workload is
// optional; zero values select the documented defaults.
type JobRequest struct {
	// Workload names the app: one of WC, HG, LR, KM, PCA, MM, SM (Table
	// I names, case-insensitive) or SYNTH for the §III-C synthetic job.
	Workload string `json:"workload"`
	// Platform/Class pick the Table I input column and flavor:
	// "hwl"/"phi" and "small"/"medium"/"large". Defaults: hwl, small.
	Platform string `json:"platform,omitempty"`
	Class    string `json:"class,omitempty"`
	// Container overrides the intermediate container: "fixedarray",
	// "fixedhash", "hash". Default: the app's stress configuration.
	Container string `json:"container,omitempty"`
	// Engine is "ramr" (default) or "phoenix".
	Engine string `json:"engine,omitempty"`
	// Priority is "low", "normal" (default) or "high".
	Priority string `json:"priority,omitempty"`
	// MinCPUs/MaxCPUs bound the CPU grant; 0 means 1 / whole budget.
	MinCPUs int `json:"min_cpus,omitempty"`
	MaxCPUs int `json:"max_cpus,omitempty"`
	// Seed makes the generated input and the tuner deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Tuner enables the adaptive runtime; the decision log is retained
	// and served from GET /jobs/{id}/result.
	Tuner bool `json:"tuner,omitempty"`
	// Config overlays engine knobs on mr.DefaultConfig. Mappers and
	// Combiners, when set, override the grant-derived worker split (the
	// grant still caps pinning and the elastic pool).
	Config ConfigOverlay `json:"config,omitempty"`
	// Synth parameterizes the SYNTH workload; ignored otherwise.
	Synth SynthParams `json:"synth,omitempty"`
	// Stream, when present, opens a resident streaming session instead
	// of a one-shot batch run: input arrives via POST /jobs/{id}/chunks
	// and per-window results are served from GET /jobs/{id}/windows.
	// Streaming is supported for SYNTH and WC on the ramr engine.
	Stream *StreamRequest `json:"stream,omitempty"`
	// Shard, when present, restricts the run to one shard of the
	// deterministically generated input (splits with index % count ==
	// index) and exports the shard's key→value container in the result's
	// "partial" field for a cluster coordinator to merge. Sharding is
	// supported for apps with exact integer arithmetic: WC, HG, SYNTH.
	// Mutually exclusive with Stream.
	Shard *workloads.ShardSpec `json:"shard,omitempty"`

	// Parsed during validation.
	engine   workloads.Engine
	priority sched.Priority
	// rec, when set by the HTTP layer, is the lifecycle recorder the
	// submission's spans land in; Submit creates one when nil.
	rec *obs.Recorder
	// synthParams is the fully-resolved SYNTH parameterization (the
	// streaming path rebuilds the job per grant from it).
	synthParams synth.Params
}

// resolveSynthParams overlays the request's synth parameters onto the
// Fig. 4 defaults, validating kernel kinds and the skew exponent.
func resolveSynthParams(sp SynthParams) (synth.Params, error) {
	p := synth.DefaultParams()
	if sp.Elements > 0 {
		p.Elements = sp.Elements
	}
	if sp.Keys > 0 {
		p.Keys = sp.Keys
	}
	if sp.MapKind != "" || sp.MapIntensity > 0 {
		k, err := parseKernelKind(sp.MapKind)
		if err != nil {
			return p, err
		}
		p.MapKernel.Kind = k
		if sp.MapIntensity > 0 {
			p.MapKernel.Intensity = sp.MapIntensity
		}
	}
	if sp.CombineKind != "" || sp.CombineIntensity > 0 {
		k, err := parseKernelKind(sp.CombineKind)
		if err != nil {
			return p, err
		}
		p.CombineKernel.Kind = k
		if sp.CombineIntensity > 0 {
			p.CombineKernel.Intensity = sp.CombineIntensity
		}
	}
	if sp.Skew != 0 {
		if sp.Skew <= 1 {
			return p, fmt.Errorf("synth.skew must be 0 (uniform) or > 1 (zipf exponent), got %g", sp.Skew)
		}
		p.Skew = sp.Skew
	}
	return p, nil
}

// ConfigOverlay is the subset of mr.Config settable over the API.
type ConfigOverlay struct {
	Mappers       int    `json:"mappers,omitempty"`
	Combiners     int    `json:"combiners,omitempty"`
	Ratio         int    `json:"ratio,omitempty"`
	TaskSize      int    `json:"task_size,omitempty"`
	QueueCapacity int    `json:"queue_capacity,omitempty"`
	BatchSize     int    `json:"batch_size,omitempty"`
	EmitBatch     int    `json:"emit_batch,omitempty"`
	Pin           string `json:"pin,omitempty"`
	Steal         string `json:"steal,omitempty"`
}

// StreamRequest is the POST /jobs "stream" object: the window and
// backpressure spec of a resident streaming session (mr.StreamSpec over
// JSON). Time is logical: chunks carry event-time ticks (or are
// auto-assigned the next tick) and the watermark trails the highest
// tick by Lateness.
type StreamRequest struct {
	// Window is the window width in ticks (required, >= 1).
	Window int64 `json:"window"`
	// Slide is the window stride: 0 selects tumbling windows; a
	// divisor of Window selects sliding windows.
	Slide int64 `json:"slide,omitempty"`
	// Lateness is how many ticks of out-of-order input are admitted
	// before a window seals.
	Lateness int64 `json:"lateness,omitempty"`
	// MaxPending bounds appended-but-unmapped splits; chunks beyond it
	// draw 429 with a Retry-After hint. 0 selects the default (1024).
	MaxPending int `json:"max_pending,omitempty"`
}

// spec converts the request to the runtime's window spec.
func (sr *StreamRequest) spec() *mr.StreamSpec {
	if sr == nil {
		return nil
	}
	return &mr.StreamSpec{
		Window:     sr.Window,
		Slide:      sr.Slide,
		Lateness:   sr.Lateness,
		MaxPending: sr.MaxPending,
	}
}

// SynthParams parameterizes the synthetic workload (§III-C): kernel
// kinds are "cpu" or "memory".
type SynthParams struct {
	Elements         int    `json:"elements,omitempty"`
	Keys             int    `json:"keys,omitempty"`
	MapKind          string `json:"map_kind,omitempty"`
	MapIntensity     int    `json:"map_intensity,omitempty"`
	CombineKind      string `json:"combine_kind,omitempty"`
	CombineIntensity int    `json:"combine_intensity,omitempty"`
	// Skew, when > 1, is the zipf exponent shaping split sizes and the
	// key distribution (0 = uniform). Values in (0, 1] are rejected.
	Skew float64 `json:"skew,omitempty"`
}

func parseContainer(s string) (container.Kind, error) {
	switch strings.ToLower(s) {
	case "fixedarray", "fixed-array", "array":
		return container.KindFixedArray, nil
	case "fixedhash", "fixed-hash":
		return container.KindFixedHash, nil
	case "hash":
		return container.KindHash, nil
	default:
		return 0, fmt.Errorf("unknown container %q (want fixedarray|fixedhash|hash)", s)
	}
}

func parseKernelKind(s string) (synth.Kind, error) {
	switch strings.ToLower(s) {
	case "", "cpu":
		return synth.CPU, nil
	case "memory", "mem":
		return synth.Memory, nil
	default:
		return 0, fmt.Errorf("unknown kernel kind %q (want cpu|memory)", s)
	}
}

func parsePlatform(s string) (workloads.Platform, error) {
	switch strings.ToLower(s) {
	case "", "hwl", "haswell":
		return workloads.HWL, nil
	case "phi", "xeon-phi":
		return workloads.PHI, nil
	default:
		return 0, fmt.Errorf("unknown platform %q (want hwl|phi)", s)
	}
}

func parseClass(s string) (workloads.SizeClass, error) {
	switch strings.ToLower(s) {
	case "", "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	default:
		return 0, fmt.Errorf("unknown size class %q (want small|medium|large)", s)
	}
}

// buildJob validates req, instantiates the named workload, assembles the
// base engine config (before the grant overlay applied at dispatch) and
// renders the request's canonical content digest — the full identity of
// the computation: workload name, the fully-resolved input parameters
// (Table I platform/class and container, or SYNTH params after
// defaulting), engine, seed, tuner flag and the whole config overlay.
// Scheduling hints (priority, CPU bounds) affect placement, not the
// computed result, so they are excluded: two requests with equal digests
// compute the same Result and the memo cache may serve one from the
// other. Defaulting happens before hashing, so an explicit default value
// and an omitted field produce the same digest.
func buildJob(req *JobRequest, m *topology.Machine) (*workloads.Job, mr.Config, string, error) {
	var cfg mr.Config

	switch strings.ToLower(req.Engine) {
	case "", "ramr":
		req.engine = workloads.EngineRAMR
	case "phoenix", "phoenix++":
		req.engine = workloads.EnginePhoenix
	default:
		return nil, cfg, "", fmt.Errorf("unknown engine %q (want ramr|phoenix)", req.Engine)
	}
	prio, err := sched.ParsePriority(strings.ToLower(req.Priority))
	if err != nil {
		return nil, cfg, "", err
	}
	req.priority = prio

	app := strings.ToUpper(strings.TrimSpace(req.Workload))
	var job *workloads.Job
	var inputKey string
	switch app {
	case "":
		return nil, cfg, "", fmt.Errorf("workload is required")
	case "SYNTH":
		p, err := resolveSynthParams(req.Synth)
		if err != nil {
			return nil, cfg, "", err
		}
		req.synthParams = p
		if req.Shard != nil {
			if job, err = synth.NewShardJob(p, req.Seed, *req.Shard); err != nil {
				return nil, cfg, "", err
			}
		} else {
			job = synth.NewJob(p, req.Seed)
		}
		inputKey = fmt.Sprintf("synth=%d,%d,%d,%d,%d,%d,%g",
			p.Elements, p.Keys,
			int(p.MapKernel.Kind), p.MapKernel.Intensity,
			int(p.CombineKernel.Kind), p.CombineKernel.Intensity,
			p.Skew)
	default:
		platform, err := parsePlatform(req.Platform)
		if err != nil {
			return nil, cfg, "", err
		}
		class, err := parseClass(req.Class)
		if err != nil {
			return nil, cfg, "", err
		}
		in, err := workloads.Input(app, platform, class)
		if err != nil {
			return nil, cfg, "", err
		}
		kind := workloads.StressContainer(app)
		if req.Container != "" {
			if kind, err = parseContainer(req.Container); err != nil {
				return nil, cfg, "", err
			}
		}
		if req.Shard != nil {
			if job, err = workloads.NewShardJobParams(app, in.Params, kind, req.Seed, *req.Shard); err != nil {
				return nil, cfg, "", err
			}
		} else if job, err = workloads.NewJobParams(app, in.Params, kind, req.Seed); err != nil {
			return nil, cfg, "", err
		}
		inputKey = fmt.Sprintf("input=%d,%d|container=%d", int(platform), int(class), int(kind))
	}

	cfg = mr.DefaultConfig()
	cfg.Machine = m
	ov := req.Config
	if ov.Ratio > 0 {
		cfg.Ratio = ov.Ratio
	}
	if ov.TaskSize > 0 {
		cfg.TaskSize = ov.TaskSize
	}
	if ov.QueueCapacity > 0 {
		cfg.QueueCapacity = ov.QueueCapacity
	}
	if ov.BatchSize > 0 {
		cfg.BatchSize = ov.BatchSize
	}
	if ov.EmitBatch > 0 {
		cfg.EmitBatch = ov.EmitBatch
	}
	if ov.Pin != "" {
		pin, err := mr.ParsePinPolicy(ov.Pin)
		if err != nil {
			return nil, cfg, "", err
		}
		cfg.Pin = pin
	}
	if ov.Steal != "" {
		st, err := mr.ParseStealPolicy(ov.Steal)
		if err != nil {
			return nil, cfg, "", err
		}
		cfg.Steal = st
	}
	if req.Tuner {
		cfg.Tuner = &tuner.Config{Seed: req.Seed}
	}
	if req.Stream != nil {
		if req.Shard != nil {
			return nil, cfg, "", fmt.Errorf("streaming jobs cannot be sharded")
		}
		if app != "SYNTH" && app != "WC" {
			return nil, cfg, "", fmt.Errorf("streaming is supported for the SYNTH and WC workloads only, not %s", app)
		}
		if req.engine != workloads.EngineRAMR {
			return nil, cfg, "", fmt.Errorf("streaming runs on the ramr engine only")
		}
		spec := req.Stream.spec()
		if err := spec.Validate(); err != nil {
			return nil, cfg, "", err
		}
		cfg.Stream = spec
	}

	h := sha256.New()
	fmt.Fprintf(h, "app=%s|engine=%d|seed=%d|tuner=%t|%s|cfg=%d,%d,%d,%d,%d,%d,%d,%d,%d",
		app, int(req.engine), req.Seed, req.Tuner, inputKey,
		ov.Mappers, ov.Combiners, cfg.Ratio, cfg.TaskSize, cfg.QueueCapacity,
		cfg.BatchSize, cfg.EmitBatch, int(cfg.Pin), int(cfg.Steal))
	if cfg.Stream != nil {
		// The window spec is part of the computation's identity (the
		// same chunks under different windows yield different results).
		// Hash the resolved spec so explicit defaults and omitted
		// fields digest alike — not that it matters for caching:
		// streaming digests exist for identity/logging only, since
		// streaming submissions bypass the memo cache entirely.
		r := cfg.Stream.Resolved()
		fmt.Fprintf(h, "|stream=%d,%d,%d,%d", r.Window, r.Slide, r.Lateness, r.MaxPending)
	}
	if req.Shard != nil {
		// A shard computes a strict subset of the full job's output, so
		// its digest must differ both from the unsharded request's and
		// from every other shard's — otherwise the memo cache would serve
		// one shard's partial for another. Including the spec here is
		// also what gives a re-dispatched shard (retry, reshard onto
		// another worker that already ran it) a shard-level memo hit.
		fmt.Fprintf(h, "|shard=%d/%d", req.Shard.Index, req.Shard.Count)
	}
	return job, cfg, hex.EncodeToString(h.Sum(nil)), nil
}
