// Package service is the multi-job front end over internal/sched: a JSON
// HTTP API through which clients submit named workloads, poll status,
// fetch results and cancel jobs, plus one shared Prometheus endpoint
// aggregating every job's live telemetry under per-job labels. The ramrd
// daemon (cmd/ramrd) is a thin flag-parsing wrapper around this package.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"ramr/internal/memo"
	"ramr/internal/mr"
	"ramr/internal/sched"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/workloads"
)

// DefaultRetainFinished bounds the number of finished job records the
// registry keeps when Config.RetainFinished is 0. Past the bound the
// oldest finished entries (and their telemetry registrations) are
// evicted — the registry shares the memo cache's bounded-retention
// discipline, so a long-lived daemon's memory stays flat.
const DefaultRetainFinished = 128

// Config parameterizes a Service.
type Config struct {
	// Machine is the topology the scheduler carves grants from; nil
	// detects the host.
	Machine *topology.Machine
	// Budget, MaxQueued and Seed are passed to sched.Config.
	Budget    int
	MaxQueued int
	Seed      int64
	// Observer taps scheduler events (tests assert invariants on it).
	Observer func(sched.Event)
	// CacheMaxBytes bounds the content-addressed result memo cache:
	// 0 selects memo.DefaultMaxBytes, negative disables memoization
	// (every submission executes; coalescing still applies).
	CacheMaxBytes int64
	// RetainFinished bounds the finished job records the registry keeps:
	// 0 selects DefaultRetainFinished, negative retains everything (the
	// pre-memo leaky behaviour, for tests only).
	RetainFinished int
}

// Service owns a scheduler, the job registry, the shared telemetry
// aggregator and the content-addressed result memo cache.
type Service struct {
	machine *topology.Machine
	sch     *sched.Scheduler
	multi   *telemetry.Multi
	cache   *memo.Cache
	retain  int

	mu       sync.Mutex
	entries  map[int]*entry
	inflight map[string]*entry // content digest → live leader entry
	closed   bool
}

// entry is one submitted job's retained state. The RunInfo (phase times,
// queue stats, telemetry and tuner reports) is kept until the job is
// deleted or the retention bound evicts it, so results survive the run
// itself. A coalesced duplicate submission gets a follower entry: its
// own id, but the leader's sched.Job (one waiter reference each) and the
// leader's RunInfo — it observes the leader's completion, error and
// cancellation.
type entry struct {
	id       int
	workload string
	engine   workloads.Engine
	job      *sched.Job
	telem    *telemetry.Telemetry // nil for followers
	digest   string               // canonical content digest (hex)
	leader   *entry               // non-nil marks a follower

	mu   sync.Mutex
	info *workloads.RunInfo
}

// runInfo returns the entry's retained result, reading through to the
// leader for followers.
func (e *entry) runInfo() *workloads.RunInfo {
	src := e
	if e.leader != nil {
		src = e.leader
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.info
}

// cachedRun is the memo cache's value: everything needed to answer a
// repeat submission without touching the scheduler.
type cachedRun struct {
	jobID    int // the job that actually executed
	workload string
	engine   string
	finished time.Time
	info     *workloads.RunInfo
}

// finalMetrics flattens the retained RunInfo into the scheduler's metric
// map: work-stealing counters by distance class and the sampled queue
// imbalance. It is the JobSpec.Metrics callback, invoked once when the
// job finishes, and feeds EventFinished observers and JobStatus.
func (e *entry) finalMetrics() map[string]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := e.info
	if info == nil {
		return nil
	}
	m := map[string]float64{
		"steal_local_tasks":     float64(info.Steal.LocalTasks),
		"steal_socket_tasks":    float64(info.Steal.SocketTasks),
		"steal_remote_tasks":    float64(info.Steal.RemoteTasks),
		"steal_remote_executed": float64(info.Steal.RemoteExecuted),
		"steal_rate":            info.Steal.StealRate(),
	}
	if rep := info.Telemetry; rep != nil {
		m["queue_imbalance_p90"] = rep.Imbalance.P90
		m["queue_imbalance_max"] = rep.Imbalance.Max
	}
	return m
}

// New builds a Service.
func New(cfg Config) (*Service, error) {
	m := cfg.Machine
	if m == nil {
		m = topology.Detect()
	}
	retain := cfg.RetainFinished
	if retain == 0 {
		retain = DefaultRetainFinished
	}
	s := &Service{
		machine:  m,
		multi:    telemetry.NewMulti(),
		cache:    memo.NewCache(cfg.CacheMaxBytes),
		retain:   retain,
		entries:  make(map[int]*entry),
		inflight: make(map[string]*entry),
	}
	sc, err := sched.New(sched.Config{
		Machine:   m,
		Budget:    cfg.Budget,
		MaxQueued: cfg.MaxQueued,
		Seed:      cfg.Seed,
		Observer:  cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	s.sch = sc
	s.multi.SetExtra(s.writeServiceProm)
	return s, nil
}

// Scheduler exposes the underlying scheduler (tests and embedders).
func (s *Service) Scheduler() *sched.Scheduler { return s.sch }

// Multi exposes the shared telemetry aggregator backing /metrics.
func (s *Service) Multi() *telemetry.Multi { return s.multi }

// Cache exposes the result memo cache (tests and embedders).
func (s *Service) Cache() *memo.Cache { return s.cache }

// Submit admits one parsed job request. It is the programmatic core of
// POST /jobs; the HTTP handler only decodes JSON around it.
//
// Identical submissions are served without recomputation: the request's
// canonical content digest (workload + input parameters + engine +
// config overlay + seed — scheduling hints excluded) is looked up in the
// memo cache first, and a hit returns the finished result instantly with
// Cached set — no scheduler admission, no CPU grant, so saturated queues
// drain under repeat traffic. A concurrent identical submission
// coalesces onto the in-flight leader instead: the follower gets its own
// job id and record but attaches a waiter to the leader's execution,
// observing its completion, error or cancellation.
func (s *Service) Submit(req *JobRequest) (*resultDoc, error) {
	job, cfg, digest, err := buildJob(req, s.machine)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, sched.ErrDraining
	}
	if v, ok := s.cache.Get(digest); ok {
		doc := cachedDoc(v.(*cachedRun), digest)
		return &doc, nil
	}
	if leader, ok := s.inflight[digest]; ok {
		leader.job.AddWaiter()
		f := &entry{
			id:       s.sch.ReserveID(),
			workload: leader.workload,
			engine:   leader.engine,
			job:      leader.job,
			digest:   digest,
			leader:   leader,
		}
		s.entries[f.id] = f
		s.cache.NoteCoalesced()
		doc := resultDoc{entryStatus: s.statusLocked(f)}
		return &doc, nil
	}

	e := &entry{
		workload: job.App,
		engine:   req.engine,
		telem:    telemetry.New(),
		digest:   digest,
	}
	cfg.Telemetry = e.telem
	sj, err := s.sch.Submit(sched.JobSpec{
		Name:     job.App,
		Priority: req.priority,
		MinCPUs:  req.MinCPUs,
		MaxCPUs:  req.MaxCPUs,
		Run: func(ctx context.Context, grant []int) error {
			c := cfg
			c.ApplyGrant(grant)
			if req.Config.Mappers > 0 {
				c.Mappers = req.Config.Mappers
			}
			if req.Config.Combiners > 0 {
				c.Combiners = req.Config.Combiners
			}
			info, err := job.RunCtx(ctx, req.engine, c)
			e.mu.Lock()
			e.info = info
			e.mu.Unlock()
			return err
		},
		Metrics: e.finalMetrics,
	})
	if err != nil {
		return nil, err
	}
	e.id = sj.ID()
	e.job = sj
	s.entries[e.id] = e
	s.inflight[digest] = e
	s.multi.Register(strconv.Itoa(e.id), map[string]string{
		"job": strconv.Itoa(e.id),
		"app": e.workload,
	}, e.telem)
	go s.watch(e)
	doc := resultDoc{entryStatus: s.statusLocked(e)}
	return &doc, nil
}

// watch settles a leader's memoization once its job reaches a terminal
// state: the in-flight slot is released and — atomically with it, under
// s.mu, so a racing submission either coalesces or hits the cache but
// never re-executes — a successful result is inserted into the memo
// cache, byte-accounted by its JSON-encoded size. Failed and cancelled
// runs are never cached: the next identical submission re-executes.
func (s *Service) watch(e *entry) {
	_ = e.job.Wait(context.Background())
	st := e.job.Status()
	e.mu.Lock()
	info := e.info
	e.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, e.digest)
	if st.Err == nil && info != nil {
		s.cache.Put(e.digest, &cachedRun{
			jobID:    e.id,
			workload: e.workload,
			engine:   e.engine.String(),
			finished: st.Finished,
			info:     info,
		}, resultSize(info))
	}
	s.retireLocked()
}

// resultSize estimates a retained result's memory footprint as its JSON
// encoding (the same shape /jobs/{id}/result serves) plus a fixed
// overhead for the surrounding entry bookkeeping.
func resultSize(info *workloads.RunInfo) int64 {
	const overhead = 256
	b, err := json.Marshal(info)
	if err != nil {
		return 4096
	}
	return int64(len(b)) + overhead
}

// retireLocked enforces the registry retention bound: when more than
// s.retain entries are terminal, the oldest-finished are removed along
// with their telemetry registrations. Live entries are never touched.
func (s *Service) retireLocked() {
	if s.retain < 0 {
		return
	}
	type finished struct {
		e  *entry
		at time.Time
	}
	var done []finished
	for _, e := range s.entries {
		js := e.job.Status()
		if js.State == sched.StateDone || js.State == sched.StateCanceled {
			done = append(done, finished{e, js.Finished})
		}
	}
	if len(done) <= s.retain {
		return
	}
	sort.Slice(done, func(i, j int) bool {
		if !done[i].at.Equal(done[j].at) {
			return done[i].at.Before(done[j].at)
		}
		return done[i].e.id < done[j].e.id
	})
	for _, f := range done[:len(done)-s.retain] {
		s.removeEntryLocked(f.e)
	}
}

// removeEntryLocked deletes one job record and its telemetry
// registration, so the /metrics exposition drops the job's labels.
func (s *Service) removeEntryLocked(e *entry) {
	delete(s.entries, e.id)
	if e.telem != nil {
		s.multi.Unregister(strconv.Itoa(e.id))
	}
}

// cachedDoc renders a memo hit as a finished result document.
func cachedDoc(cv *cachedRun, digest string) resultDoc {
	st := entryStatus{
		ID:            cv.jobID,
		Workload:      cv.workload,
		Engine:        cv.engine,
		State:         sched.StateDone.String(),
		Finished:      fmtTime(cv.finished),
		Cached:        true,
		ContentDigest: digest,
	}
	fillResult(&st, cv.info)
	doc := resultDoc{entryStatus: st}
	doc.fillDetail(cv.info)
	return doc
}

// Shutdown stops admission and drains the scheduler: queued jobs still
// run, running jobs finish, and anything unfinished at ctx's deadline is
// cancelled (but its goroutine is awaited). Results of jobs that did
// finish remain retrievable from the registry afterwards.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.sch.Drain(ctx)
}

// errBadRequest marks client errors (HTTP 400).
var errBadRequest = errors.New("bad request")

// entryStatus is the status document for one job, shared by GET /jobs
// and GET /jobs/{id}.
type entryStatus struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Priority string `json:"priority"`
	State    string `json:"state"`
	Grant    []int  `json:"grant,omitempty"`
	QueuedAt string `json:"queued_at,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result summary, present once the job finished successfully.
	WallMS float64        `json:"wall_ms,omitempty"`
	Phases *mr.PhaseTimes `json:"phases,omitempty"`
	Queue  *mr.QueueStats `json:"queue,omitempty"`
	Steal  *mr.StealStats `json:"steal,omitempty"`
	Pairs  int            `json:"pairs,omitempty"`
	// ImbalanceP90 is the run's sampled queue occupancy-imbalance ratio
	// (p90 of max/mean depth per tick); 0 until the job finished with
	// telemetry.
	ImbalanceP90 float64 `json:"imbalance_p90,omitempty"`
	// ContentDigest is the canonical identity of the computation (the
	// memo cache key); two submissions with equal digests compute the
	// same result.
	ContentDigest string `json:"content_digest,omitempty"`
	// Cached marks a submission answered from the memo cache without a
	// scheduler admission; ID then names the job that originally
	// executed the computation.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a follower record: this submission attached to an
	// identical in-flight execution instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Waiters counts the parties attached to the execution (submitter
	// plus coalesced duplicates); 0 once terminal records settle.
	Waiters int `json:"waiters,omitempty"`
}

// resultDoc is the full result document for GET /jobs/{id}/result, and
// the POST /jobs response body (Digest/Telemetry/Tuner populated only
// for cache hits there).
type resultDoc struct {
	entryStatus
	Digest    string            `json:"digest,omitempty"`
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	Tuner     *tunerSummary     `json:"tuner,omitempty"`
}

// fillResult copies a finished run's summary figures into the status.
func fillResult(st *entryStatus, info *workloads.RunInfo) {
	if info == nil {
		return
	}
	st.WallMS = float64(info.Wall) / float64(time.Millisecond)
	ph, q := info.Phases, info.Queue
	st.Phases, st.Queue = &ph, &q
	steal := info.Steal
	st.Steal = &steal
	st.Pairs = info.Pairs
	if rep := info.Telemetry; rep != nil {
		st.ImbalanceP90 = rep.Imbalance.P90
	}
}

// fillDetail adds the deep result fields (output digest, telemetry and
// tuner reports) to the document.
func (doc *resultDoc) fillDetail(info *workloads.RunInfo) {
	if info == nil {
		return
	}
	if info.Digest != 0 {
		doc.Digest = fmt.Sprintf("%016x", info.Digest)
	}
	doc.Telemetry = info.Telemetry
	if info.Tuner != nil {
		doc.Tuner = &tunerSummary{
			Epochs: len(info.Tuner.Epochs),
			Report: info.Tuner,
		}
	}
}

// tunerSummary is the retained per-job tuner report, flattened for JSON.
type tunerSummary struct {
	Epochs int `json:"epochs"`
	Report any `json:"report"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// statusLocked renders e's status; callers hold s.mu. A follower entry
// reports its own id but the shared execution's state, timings and
// result.
func (s *Service) statusLocked(e *entry) entryStatus {
	js := e.job.Status()
	st := entryStatus{
		ID:            e.id,
		Workload:      e.workload,
		Engine:        e.engine.String(),
		Priority:      js.Priority.String(),
		State:         js.State.String(),
		Grant:         js.Grant,
		QueuedAt:      fmtTime(js.QueuedAt),
		Started:       fmtTime(js.Started),
		Finished:      fmtTime(js.Finished),
		ContentDigest: e.digest,
		Coalesced:     e.leader != nil,
		Waiters:       js.Waiters,
	}
	if js.Err != nil {
		st.Error = js.Err.Error()
	}
	fillResult(&st, e.runInfo())
	return st
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit (429 when saturated, 503 when draining)
//	GET    /jobs             list all retained jobs
//	GET    /jobs/{id}        status: state, grant, phase times, queue stats
//	GET    /jobs/{id}/result full result incl. telemetry and tuner reports
//	DELETE /jobs/{id}        cancel (queued or running)
//	GET    /stats            scheduler occupancy and lifetime counters
//	GET    /metrics          aggregated Prometheus exposition, per-job labels
//	GET    /healthz          liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.multi.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// writeJSON encodes v fully before touching the ResponseWriter: a
// marshal failure becomes a logged 500 instead of a silently truncated
// body half-written after a success header.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("service: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"internal: response encoding failed"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := buf.WriteTo(w); err != nil {
		// The body was fully rendered; a short write here is the
		// client hanging up, which is only worth a log line.
		log.Printf("service: writing response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	doc, err := s.Submit(&req)
	switch {
	case err == nil && doc.Cached:
		// Served from the memo cache: no new job record was created, so
		// 200 with the finished result, not 201 with a Location.
		writeJSON(w, http.StatusOK, doc)
	case err == nil:
		w.Header().Set("Location", "/jobs/"+strconv.Itoa(doc.ID))
		writeJSON(w, http.StatusCreated, doc)
	case errors.Is(err, sched.ErrSaturated):
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, sched.ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// sortByID orders a document slice by job id — stable output for
// clients and tests.
func sortByID[T any](xs []T, id func(T) int) {
	sort.Slice(xs, func(i, j int) bool { return id(xs[i]) < id(xs[j]) })
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]entryStatus, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, s.statusLocked(e))
	}
	s.mu.Unlock()
	sortByID(out, func(e entryStatus) int { return e.ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Service) lookup(r *http.Request) (*entry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("invalid job id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("no job %d", id)
	}
	return e, nil
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(e)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(e)
	s.mu.Unlock()
	if st.State == "queued" || st.State == "running" {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	doc := resultDoc{entryStatus: st}
	doc.fillDetail(e.runInfo())
	writeJSON(w, http.StatusOK, doc)
}

// handleCancel implements DELETE /jobs/{id} with waiter-aware
// semantics:
//
//   - finished (done/canceled) job: nothing to cancel — the retained
//     record and its telemetry registration are removed, and 409
//     Conflict reports the terminal state so the client can tell a real
//     cancellation from this no-op (204 used to lie here).
//   - live job with other waiters attached (coalesced duplicates): this
//     record detaches and is removed; the shared execution keeps running
//     for the remaining waiters. 204.
//   - live job, last waiter: the execution is cancelled (queued jobs
//     never start, running jobs drain); the record is kept so the
//     terminal canceled state stays pollable. 204.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	js := e.job.Status()
	if js.State == sched.StateDone || js.State == sched.StateCanceled {
		s.mu.Lock()
		s.removeEntryLocked(e)
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %d already %s; retained record deleted", e.id, js.State),
			"state": js.State.String(),
		})
		return
	}
	if cancelled := e.job.DropWaiter(); !cancelled {
		// Detached from a still-live coalesced execution (or lost a race
		// with its completion): this record is dead either way.
		s.mu.Lock()
		s.removeEntryLocked(e)
		s.mu.Unlock()
	}
	w.WriteHeader(http.StatusNoContent)
}

// jobStats is one job's balance figures in the /stats document.
type jobStats struct {
	ID           int            `json:"id"`
	Workload     string         `json:"workload"`
	State        string         `json:"state"`
	Steal        *mr.StealStats `json:"steal,omitempty"`
	ImbalanceP90 float64        `json:"imbalance_p90,omitempty"`
}

// memoStats is the /stats memoization-and-retention section.
type memoStats struct {
	memo.Stats
	// RetainedJobs gauges the registry (bounded by the retention
	// discipline shared with the cache's LRU accounting).
	RetainedJobs int `json:"retained_jobs"`
	// RegisteredMetrics gauges live telemetry registrations — one per
	// retained leader; bounded cardinality is the leak regression check.
	RegisteredMetrics int `json:"registered_metrics"`
}

func (s *Service) memoStatsDoc() memoStats {
	s.mu.Lock()
	retained := len(s.entries)
	s.mu.Unlock()
	return memoStats{
		Stats:             s.cache.Stats(),
		RetainedJobs:      retained,
		RegisteredMetrics: s.multi.Len(),
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sch.Stats()
	s.mu.Lock()
	jobs := make([]jobStats, 0, len(s.entries))
	for _, e := range s.entries {
		js := jobStats{ID: e.id, Workload: e.workload, State: e.job.Status().State.String()}
		if info := e.runInfo(); info != nil {
			steal := info.Steal
			js.Steal = &steal
			if rep := info.Telemetry; rep != nil {
				js.ImbalanceP90 = rep.Imbalance.P90
			}
		}
		jobs = append(jobs, js)
	}
	s.mu.Unlock()
	sortByID(jobs, func(j jobStats) int { return j.ID })
	writeJSON(w, http.StatusOK, map[string]any{"scheduler": st, "memo": s.memoStatsDoc(), "jobs": jobs})
}

// writeServiceProm is the telemetry.Multi extra writer: service-level
// families appended after the per-job exposition, so memo and retention
// gauges stay scrapeable even when every job record has been deleted.
func (s *Service) writeServiceProm(w io.Writer) error {
	m := s.memoStatsDoc()
	_, err := fmt.Fprintf(w, `# HELP ramr_memo_hits_total Submissions answered from the result memo cache.
# TYPE ramr_memo_hits_total counter
ramr_memo_hits_total %d
# HELP ramr_memo_misses_total Submissions that found no cached result.
# TYPE ramr_memo_misses_total counter
ramr_memo_misses_total %d
# HELP ramr_memo_coalesced_total Duplicate submissions folded onto an in-flight execution.
# TYPE ramr_memo_coalesced_total counter
ramr_memo_coalesced_total %d
# HELP ramr_memo_evictions_total Cached results evicted to satisfy the byte bound.
# TYPE ramr_memo_evictions_total counter
ramr_memo_evictions_total %d
# HELP ramr_memo_cached_bytes Byte-accounted size of the result memo cache.
# TYPE ramr_memo_cached_bytes gauge
ramr_memo_cached_bytes %d
# HELP ramr_memo_cached_entries Results retained in the memo cache.
# TYPE ramr_memo_cached_entries gauge
ramr_memo_cached_entries %d
# HELP ramr_memo_max_bytes Configured memo cache byte bound.
# TYPE ramr_memo_max_bytes gauge
ramr_memo_max_bytes %d
# HELP ramr_service_jobs_retained Job records retained in the registry.
# TYPE ramr_service_jobs_retained gauge
ramr_service_jobs_retained %d
# HELP ramr_service_metrics_registered Live per-job telemetry registrations.
# TYPE ramr_service_metrics_registered gauge
ramr_service_metrics_registered %d
`,
		m.Hits, m.Misses, m.Coalesced, m.Evictions,
		m.Bytes, m.Entries, m.MaxBytes,
		m.RetainedJobs, m.RegisteredMetrics)
	return err
}
