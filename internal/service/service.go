// Package service is the multi-job front end over internal/sched: a JSON
// HTTP API through which clients submit named workloads, poll status,
// fetch results and cancel jobs, plus one shared Prometheus endpoint
// aggregating every job's live telemetry under per-job labels. The ramrd
// daemon (cmd/ramrd) is a thin flag-parsing wrapper around this package.
//
// Every submission carries a lifecycle trace (internal/obs): receive,
// build/digest, memo outcome, queue wait, grant allocation and the
// engine's phase and worker spans, retrievable as Chrome-trace JSON at
// GET /jobs/{id}/trace. Scheduler transitions and memo outcomes also
// land in a bounded ring (GET /debug/events), and job latencies feed the
// ramr_job_* Prometheus histograms. See DESIGN.md §13.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"ramr/internal/memo"
	"ramr/internal/mr"
	"ramr/internal/obs"
	"ramr/internal/sched"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/trace"
	"ramr/internal/workloads"
)

// DefaultRetainFinished bounds the number of finished job records the
// registry keeps when Config.RetainFinished is 0. Past the bound the
// oldest finished entries (and their telemetry registrations) are
// evicted — the registry shares the memo cache's bounded-retention
// discipline, so a long-lived daemon's memory stays flat.
const DefaultRetainFinished = 128

// DefaultEventLog bounds the /debug/events ring when Config.EventLog
// is 0.
const DefaultEventLog = 512

// Config parameterizes a Service.
type Config struct {
	// Machine is the topology the scheduler carves grants from; nil
	// detects the host.
	Machine *topology.Machine
	// Budget, MaxQueued and Seed are passed to sched.Config.
	Budget    int
	MaxQueued int
	Seed      int64
	// Observer taps scheduler events (tests assert invariants on it).
	Observer func(sched.Event)
	// CacheMaxBytes bounds the content-addressed result memo cache:
	// 0 selects memo.DefaultMaxBytes, negative disables memoization
	// (every submission executes; coalescing still applies).
	CacheMaxBytes int64
	// RetainFinished bounds the finished job records the registry keeps:
	// 0 selects DefaultRetainFinished, negative retains everything (the
	// pre-memo leaky behaviour, for tests only).
	RetainFinished int
	// Logger receives the service's structured log lines, each tagged
	// with job_id/content_digest correlation attributes where a job is
	// in scope. nil disables logging (a discard handler) — embedders
	// like cmd/ramrd pass their own.
	Logger *slog.Logger
	// EventLog bounds the /debug/events ring buffer: 0 selects
	// DefaultEventLog, negative disables the event log.
	EventLog int
}

// lifecycleHists are the service-lifetime latency histograms exposed on
// /metrics. They record per-job lifecycle observations — a handful per
// job, labelled workload/engine/priority — and are never unregistered,
// so latency distributions survive job retention and deletion.
type lifecycleHists struct {
	e2e       *telemetry.HistogramVec
	queueWait *telemetry.HistogramVec
	alloc     *telemetry.HistogramVec
	phase     *telemetry.HistogramVec
}

func newLifecycleHists() *lifecycleHists {
	labels := []string{"workload", "engine", "priority"}
	return &lifecycleHists{
		e2e: telemetry.NewHistogramVec("ramr_job_e2e_seconds",
			"End-to-end job latency from HTTP receive to terminal state (memo hits included).",
			labels, nil),
		queueWait: telemetry.NewHistogramVec("ramr_job_queue_wait_seconds",
			"Time a job spent admitted but not yet granted CPUs.", labels, nil),
		alloc: telemetry.NewHistogramVec("ramr_job_grant_alloc_seconds",
			"Time the scheduler spent carving the job's CPU grant.", labels, nil),
		phase: telemetry.NewHistogramVec("ramr_job_phase_seconds",
			"Engine phase durations of finished jobs.",
			[]string{"workload", "engine", "priority", "phase"}, nil),
	}
}

// Service owns a scheduler, the job registry, the shared telemetry
// aggregator and the content-addressed result memo cache.
type Service struct {
	machine *topology.Machine
	sch     *sched.Scheduler
	multi   *telemetry.Multi
	cache   *memo.Cache
	retain  int
	log     *slog.Logger
	ring    *obs.Ring
	hist    *lifecycleHists
	stream  *streamMetrics
	start   time.Time

	mu       sync.Mutex
	entries  map[int]*entry
	inflight map[string]*entry // content digest → live leader entry
	closed   bool
}

// entry is one submitted job's retained state. The RunInfo (phase times,
// queue stats, telemetry and tuner reports) is kept until the job is
// deleted or the retention bound evicts it, so results survive the run
// itself. A coalesced duplicate submission gets a follower entry: its
// own id, but the leader's sched.Job (one waiter reference each) and the
// leader's RunInfo — it observes the leader's completion, error and
// cancellation. A memo hit gets a jobless record (job == nil): its own
// id, a short hit-only trace, and execBy naming the executor.
type entry struct {
	id       int
	workload string
	engine   workloads.Engine
	job      *sched.Job // nil for memo-hit records
	telem    *telemetry.Telemetry // nil for followers and hits
	digest   string               // canonical content digest (hex)
	leader   *entry               // non-nil marks a follower
	rec      *obs.Recorder        // lifecycle trace, set on every entry
	execBy   int                  // memo hits: id of the executing job
	hitAt    time.Time            // memo hits: terminal timestamp
	stream   *streamState         // non-nil marks a streaming session

	mu   sync.Mutex
	info *workloads.RunInfo
}

// jobStatus snapshots the entry's scheduler state; memo-hit records have
// no sched.Job and synthesize a settled terminal status.
func (e *entry) jobStatus() sched.JobStatus {
	if e.job != nil {
		return e.job.Status()
	}
	return sched.JobStatus{ID: e.id, State: sched.StateDone, Finished: e.hitAt}
}

// runInfo returns the entry's retained result, reading through to the
// leader for followers.
func (e *entry) runInfo() *workloads.RunInfo {
	src := e
	if e.leader != nil {
		src = e.leader
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.info
}

// cachedRun is the memo cache's value: everything needed to answer a
// repeat submission without touching the scheduler.
type cachedRun struct {
	jobID    int // the job that actually executed
	workload string
	engine   string
	finished time.Time
	info     *workloads.RunInfo
}

// finalMetrics flattens the retained RunInfo into the scheduler's metric
// map: work-stealing counters by distance class and the sampled queue
// imbalance. It is the JobSpec.Metrics callback, invoked once when the
// job finishes, and feeds EventFinished observers and JobStatus.
func (e *entry) finalMetrics() map[string]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := e.info
	if info == nil {
		return nil
	}
	m := map[string]float64{
		"steal_local_tasks":     float64(info.Steal.LocalTasks),
		"steal_socket_tasks":    float64(info.Steal.SocketTasks),
		"steal_remote_tasks":    float64(info.Steal.RemoteTasks),
		"steal_remote_executed": float64(info.Steal.RemoteExecuted),
		"steal_rate":            info.Steal.StealRate(),
	}
	if rep := info.Telemetry; rep != nil {
		m["queue_imbalance_p90"] = rep.Imbalance.P90
		m["queue_imbalance_max"] = rep.Imbalance.Max
	}
	return m
}

// New builds a Service.
func New(cfg Config) (*Service, error) {
	m := cfg.Machine
	if m == nil {
		m = topology.Detect()
	}
	retain := cfg.RetainFinished
	if retain == 0 {
		retain = DefaultRetainFinished
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	evCap := cfg.EventLog
	if evCap == 0 {
		evCap = DefaultEventLog
	}
	s := &Service{
		machine:  m,
		multi:    telemetry.NewMulti(),
		cache:    memo.NewCache(cfg.CacheMaxBytes),
		retain:   retain,
		log:      logger,
		ring:     obs.NewRing(evCap),
		hist:     newLifecycleHists(),
		stream:   newStreamMetrics(),
		start:    time.Now(),
		entries:  make(map[int]*entry),
		inflight: make(map[string]*entry),
	}
	sc, err := sched.New(sched.Config{
		Machine:   m,
		Budget:    cfg.Budget,
		MaxQueued: cfg.MaxQueued,
		Seed:      cfg.Seed,
		Logger:    cfg.Logger,
		// Scheduler transitions feed the bounded event log before the
		// embedder's observer; the ring has its own lock and never calls
		// back, so appending under the scheduler lock is safe.
		Observer: func(ev sched.Event) {
			s.ring.Append("sched_"+ev.Kind.String(), ev.JobID,
				map[string]any{"in_use": ev.InUse, "queued": ev.Queued})
			if cfg.Observer != nil {
				cfg.Observer(ev)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.sch = sc
	s.multi.SetExtra(s.writeServiceProm)
	return s, nil
}

// Scheduler exposes the underlying scheduler (tests and embedders).
func (s *Service) Scheduler() *sched.Scheduler { return s.sch }

// Multi exposes the shared telemetry aggregator backing /metrics.
func (s *Service) Multi() *telemetry.Multi { return s.multi }

// Cache exposes the result memo cache (tests and embedders).
func (s *Service) Cache() *memo.Cache { return s.cache }

// jobLog returns the service logger with the entry's correlation
// attributes attached.
func (s *Service) jobLog(e *entry) *slog.Logger {
	return s.log.With("job_id", e.id, "content_digest", e.digest)
}

// Submit admits one parsed job request. It is the programmatic core of
// POST /jobs; the HTTP handler only decodes JSON around it.
//
// Identical submissions are served without recomputation: the request's
// canonical content digest (workload + input parameters + engine +
// config overlay + seed — scheduling hints excluded) is looked up in the
// memo cache first, and a hit mints a jobless terminal record instantly
// with Cached set and ExecutedBy naming the original executor — no
// scheduler admission, no CPU grant, so saturated queues drain under
// repeat traffic. A concurrent identical submission coalesces onto the
// in-flight leader instead: the follower gets its own job id and record
// but attaches a waiter to the leader's execution, observing its
// completion, error or cancellation.
func (s *Service) Submit(req *JobRequest) (*resultDoc, error) {
	rec := req.rec
	if rec == nil {
		rec = obs.New("job")
	}
	endBuild := rec.Span("build", nil)
	job, cfg, digest, err := buildJob(req, s.machine)
	endBuild()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if cfg.Stream != nil {
		// Streaming sessions skip memoization and coalescing entirely:
		// their result depends on chunks that arrive after admission,
		// so no content digest can stand in for the computation.
		return s.submitStream(req, job, cfg, digest, rec)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, sched.ErrDraining
	}
	if v, ok := s.cache.Get(digest); ok {
		return s.memoHitLocked(req, v.(*cachedRun), digest, rec), nil
	}
	if leader, ok := s.inflight[digest]; ok {
		leader.job.AddWaiter()
		f := &entry{
			id:       s.sch.ReserveID(),
			workload: leader.workload,
			engine:   leader.engine,
			job:      leader.job,
			digest:   digest,
			leader:   leader,
			rec:      rec,
		}
		rec.SetJob(f.id, f.workload)
		rec.Instant("coalesced", map[string]any{"leader": leader.id})
		s.entries[f.id] = f
		s.cache.NoteCoalesced()
		s.ring.Append("coalesced", f.id, map[string]any{"leader": leader.id})
		s.jobLog(f).Info("job coalesced onto in-flight leader", "leader_id", leader.id)
		go s.watchFollower(f, req.priority.String())
		doc := resultDoc{entryStatus: s.statusLocked(f)}
		return &doc, nil
	}

	e := &entry{
		workload: job.App,
		engine:   req.engine,
		telem:    telemetry.New(),
		digest:   digest,
		rec:      rec,
	}
	cfg.Telemetry = e.telem
	sj, err := s.sch.Submit(sched.JobSpec{
		Name:     job.App,
		Priority: req.priority,
		MinCPUs:  req.MinCPUs,
		MaxCPUs:  req.MaxCPUs,
		Run: func(ctx context.Context, grant []int) error {
			c := cfg
			c.ApplyGrant(grant)
			if req.Config.Mappers > 0 {
				c.Mappers = req.Config.Mappers
			}
			if req.Config.Combiners > 0 {
				c.Combiners = req.Config.Combiners
			}
			// Worker-lane tracing for this run, stitched under the
			// lifecycle root at export time.
			col := trace.New()
			c.Trace = col
			rec.AttachEngine(col)
			execStart := time.Now()
			info, err := job.RunCtx(ctx, req.engine, c)
			execEnd := time.Now()
			rec.SpanAt("execute", execStart, execEnd,
				map[string]any{"cpus": append([]int(nil), grant...)})
			if info != nil {
				recordRunDetail(rec, execStart, execEnd, info)
			}
			e.mu.Lock()
			e.info = info
			e.mu.Unlock()
			return err
		},
		Metrics: e.finalMetrics,
	})
	if err != nil {
		return nil, err
	}
	e.id = sj.ID()
	e.job = sj
	rec.SetJob(e.id, e.workload)
	s.entries[e.id] = e
	s.inflight[digest] = e
	s.multi.Register(strconv.Itoa(e.id), map[string]string{
		"job": strconv.Itoa(e.id),
		"app": e.workload,
	}, e.telem)
	s.jobLog(e).Info("job admitted", "workload", e.workload,
		"priority", req.priority.String(), "engine", e.engine.String())
	go s.watch(e)
	doc := resultDoc{entryStatus: s.statusLocked(e)}
	return &doc, nil
}

// memoHitLocked answers a submission from the memo cache: a jobless
// terminal record with its own id (so its short hit-only trace stays
// retrievable at /jobs/{id}/trace) whose ExecutedBy names the job that
// actually computed the result. Callers hold s.mu.
func (s *Service) memoHitLocked(req *JobRequest, cv *cachedRun, digest string, rec *obs.Recorder) *resultDoc {
	e := &entry{
		id:       s.sch.ReserveID(),
		workload: cv.workload,
		engine:   req.engine,
		digest:   digest,
		rec:      rec,
		execBy:   cv.jobID,
		hitAt:    time.Now(),
		info:     cv.info,
	}
	rec.SetJob(e.id, e.workload)
	rec.Instant("memo-hit", map[string]any{"executed_by": cv.jobID})
	rec.Finish("cached")
	s.entries[e.id] = e
	s.ring.Append("memo_hit", e.id, map[string]any{"executed_by": cv.jobID})
	s.jobLog(e).Info("job served from memo cache", "executed_by", cv.jobID)
	s.hist.e2e.Observe(time.Since(rec.Epoch()).Seconds(),
		e.workload, e.engine.String(), req.priority.String())
	s.retireLocked()
	doc := resultDoc{entryStatus: s.statusLocked(e)}
	doc.fillDetail(cv.info)
	return &doc
}

// recordRunDetail turns the finished run's measurements into trace
// events: the sequential engine phases laid end-to-end from the
// execution start, plus tuner and steal summaries as instants.
func recordRunDetail(rec *obs.Recorder, start, end time.Time, info *workloads.RunInfo) {
	t := start
	for _, p := range []struct {
		name string
		d    time.Duration
	}{
		{"phase:init", info.Phases.Init},
		{"phase:partition", info.Phases.Partition},
		{"phase:map-combine", info.Phases.MapCombine},
		{"phase:reduce", info.Phases.Reduce},
		{"phase:merge", info.Phases.Merge},
	} {
		if p.d <= 0 {
			continue
		}
		rec.SpanAt(p.name, t, t.Add(p.d), nil)
		t = t.Add(p.d)
	}
	if info.Tuner != nil {
		rec.InstantAt("tuner-decisions", end, map[string]any{"epochs": len(info.Tuner.Epochs)})
	}
	if st := info.Steal; st.LocalTasks+st.SocketTasks+st.RemoteTasks > 0 {
		rec.InstantAt("steal-summary", end, map[string]any{
			"local":           st.LocalTasks,
			"socket":          st.SocketTasks,
			"remote":          st.RemoteTasks,
			"remote_executed": st.RemoteExecuted,
		})
	}
}

// terminalStatus maps a settled job to the trace's root-span status.
func terminalStatus(st sched.JobStatus) string {
	switch {
	case st.State == sched.StateCanceled:
		return "canceled"
	case st.Err != nil:
		return "error"
	default:
		return "done"
	}
}

// finishTrace derives the scheduler-side spans from the job's settled
// timestamps — queue wait between admission and start, grant allocation
// just before the start with the CPU set and its locality groups as
// args — and closes the root span. Recording at completion rather than
// from the scheduler observer keeps the observer reentrancy-free and
// covers each interval exactly.
func (s *Service) finishTrace(e *entry, st sched.JobStatus) string {
	if !st.Started.IsZero() {
		e.rec.SpanAt("queue-wait", st.QueuedAt, st.Started, nil)
		e.rec.SpanAt("grant-alloc", st.Started.Add(-st.AllocDur), st.Started, map[string]any{
			"cpus":   st.Grant,
			"groups": localityGroups(s.machine, st.Grant),
		})
	}
	status := terminalStatus(st)
	e.rec.Finish(status)
	return status
}

// localityGroups returns the distinct topology groups a CPU set spans.
func localityGroups(m *topology.Machine, cpus []int) []int {
	seen := map[int]bool{}
	var groups []int
	for _, id := range cpus {
		g, ok := m.GroupOf(id)
		if !ok {
			g = 0
		}
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	sort.Ints(groups)
	return groups
}

// observeLifecycle feeds the latency histograms from a settled job.
func (s *Service) observeLifecycle(e *entry, st sched.JobStatus, info *workloads.RunInfo, priority string) {
	labels := []string{e.workload, e.engine.String(), priority}
	s.hist.e2e.Observe(st.Finished.Sub(e.rec.Epoch()).Seconds(), labels...)
	if !st.Started.IsZero() {
		s.hist.queueWait.Observe(st.Started.Sub(st.QueuedAt).Seconds(), labels...)
		s.hist.alloc.Observe(st.AllocDur.Seconds(), labels...)
	}
	if info != nil {
		for phase, secs := range info.Phases.SecondsByPhase() {
			s.hist.phase.Observe(secs, e.workload, e.engine.String(), priority, phase)
		}
	}
}

// watch settles a leader once its job reaches a terminal state: the
// trace is finished, histograms observe the settled timings, and the
// in-flight slot is released while — atomically with it, under s.mu, so
// a racing submission either coalesces or hits the cache but never
// re-executes — a successful result is inserted into the memo cache,
// byte-accounted by its JSON-encoded size. Failed and cancelled runs are
// never cached: the next identical submission re-executes.
func (s *Service) watch(e *entry) {
	_ = e.job.Wait(context.Background())
	st := e.job.Status()
	if e.stream != nil {
		// Release chunk/close handlers waiting on a session that will
		// never start (job cancelled while queued, Run never invoked).
		// A no-op when the session was published.
		e.stream.fail(fmt.Errorf("streaming session over: job %s", st.State))
	}
	e.mu.Lock()
	info := e.info
	e.mu.Unlock()

	status := s.finishTrace(e, st)
	s.observeLifecycle(e, st, info, st.Priority.String())
	lg := s.jobLog(e).With("state", status)
	if !st.Started.IsZero() {
		lg = lg.With("wall", st.Finished.Sub(st.Started), "queue_wait", st.Started.Sub(st.QueuedAt))
	}
	if st.Err != nil {
		lg.Warn("job finished with error", "err", st.Err)
	} else {
		lg.Info("job finished")
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, e.digest)
	// Streaming results are never cached: the digest identifies the
	// session's shape, not the chunk sequence it ingested.
	if st.Err == nil && info != nil && e.stream == nil {
		s.cache.Put(e.digest, &cachedRun{
			jobID:    e.id,
			workload: e.workload,
			engine:   e.engine.String(),
			finished: st.Finished,
			info:     info,
		}, resultSize(info))
	}
	s.retireLocked()
}

// watchFollower settles a coalesced follower's trace and end-to-end
// latency once the shared execution completes. Queue-wait, grant and
// phase spans belong to the leader's trace; the follower's short trace
// records the coalesce decision and the terminal outcome.
func (s *Service) watchFollower(f *entry, priority string) {
	_ = f.job.Wait(context.Background())
	st := f.job.Status()
	status := terminalStatus(st)
	f.rec.Finish(status)
	s.hist.e2e.Observe(st.Finished.Sub(f.rec.Epoch()).Seconds(),
		f.workload, f.engine.String(), priority)
	s.jobLog(f).Info("coalesced job settled", "state", status, "leader_id", f.leader.id)
}

// resultSize estimates a retained result's memory footprint as its JSON
// encoding (the same shape /jobs/{id}/result serves) plus a fixed
// overhead for the surrounding entry bookkeeping.
func resultSize(info *workloads.RunInfo) int64 {
	const overhead = 256
	b, err := json.Marshal(info)
	if err != nil {
		return 4096
	}
	return int64(len(b)) + overhead
}

// retireLocked enforces the registry retention bound: when more than
// s.retain entries are terminal, the oldest-finished are removed along
// with their telemetry registrations. Live entries are never touched.
func (s *Service) retireLocked() {
	if s.retain < 0 {
		return
	}
	type finished struct {
		e  *entry
		at time.Time
	}
	var done []finished
	for _, e := range s.entries {
		js := e.jobStatus()
		if js.State == sched.StateDone || js.State == sched.StateCanceled {
			done = append(done, finished{e, js.Finished})
		}
	}
	if len(done) <= s.retain {
		return
	}
	sort.Slice(done, func(i, j int) bool {
		if !done[i].at.Equal(done[j].at) {
			return done[i].at.Before(done[j].at)
		}
		return done[i].e.id < done[j].e.id
	})
	for _, f := range done[:len(done)-s.retain] {
		s.removeEntryLocked(f.e)
	}
}

// removeEntryLocked deletes one job record and its telemetry
// registration, so the /metrics exposition drops the job's labels.
func (s *Service) removeEntryLocked(e *entry) {
	delete(s.entries, e.id)
	if e.telem != nil {
		s.multi.Unregister(strconv.Itoa(e.id))
	}
	if e.stream != nil {
		s.stream.lag.Delete(strconv.Itoa(e.id))
	}
}

// Shutdown stops admission and drains the scheduler: queued jobs still
// run, running jobs finish, and anything unfinished at ctx's deadline is
// cancelled (but its goroutine is awaited). Results of jobs that did
// finish remain retrievable from the registry afterwards. /readyz
// reports 503 from the moment Shutdown is called.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.log.Info("service draining")
	return s.sch.Drain(ctx)
}

// errBadRequest marks client errors (HTTP 400).
var errBadRequest = errors.New("bad request")

// entryStatus is the status document for one job, shared by GET /jobs
// and GET /jobs/{id}.
type entryStatus struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Priority string `json:"priority"`
	State    string `json:"state"`
	Grant    []int  `json:"grant,omitempty"`
	QueuedAt string `json:"queued_at,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result summary, present once the job finished successfully.
	WallMS float64        `json:"wall_ms,omitempty"`
	Phases *mr.PhaseTimes `json:"phases,omitempty"`
	Queue  *mr.QueueStats `json:"queue,omitempty"`
	Steal  *mr.StealStats `json:"steal,omitempty"`
	Pairs  int            `json:"pairs,omitempty"`
	// ImbalanceP90 is the run's sampled queue occupancy-imbalance ratio
	// (p90 of max/mean depth per tick); 0 until the job finished with
	// telemetry.
	ImbalanceP90 float64 `json:"imbalance_p90,omitempty"`
	// ContentDigest is the canonical identity of the computation (the
	// memo cache key); two submissions with equal digests compute the
	// same result.
	ContentDigest string `json:"content_digest,omitempty"`
	// Cached marks a submission answered from the memo cache without a
	// scheduler admission. The record keeps its own ID (its hit-only
	// trace lives at /jobs/{id}/trace); ExecutedBy names the job that
	// originally executed the computation.
	Cached bool `json:"cached,omitempty"`
	// ExecutedBy is set on cached records: the id of the executing job.
	ExecutedBy int `json:"executed_by,omitempty"`
	// Coalesced marks a follower record: this submission attached to an
	// identical in-flight execution instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Waiters counts the parties attached to the execution (submitter
	// plus coalesced duplicates); 0 once terminal records settle.
	Waiters int `json:"waiters,omitempty"`
	// Stream is present on streaming sessions: the resolved window spec
	// and, once the grant landed, the live ingestion counters.
	Stream *streamStatusDoc `json:"stream,omitempty"`
}

// resultDoc is the full result document for GET /jobs/{id}/result, and
// the POST /jobs response body (Digest/Telemetry/Tuner populated only
// for cache hits there).
type resultDoc struct {
	entryStatus
	Digest    string            `json:"digest,omitempty"`
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	Tuner     *tunerSummary     `json:"tuner,omitempty"`
	// Partial is a shard job's exported key→value container (the cluster
	// coordinator's merge input); absent for unsharded runs.
	Partial *workloads.Partial `json:"partial,omitempty"`
}

// fillResult copies a finished run's summary figures into the status.
func fillResult(st *entryStatus, info *workloads.RunInfo) {
	if info == nil {
		return
	}
	st.WallMS = float64(info.Wall) / float64(time.Millisecond)
	ph, q := info.Phases, info.Queue
	st.Phases, st.Queue = &ph, &q
	steal := info.Steal
	st.Steal = &steal
	st.Pairs = info.Pairs
	if rep := info.Telemetry; rep != nil {
		st.ImbalanceP90 = rep.Imbalance.P90
	}
}

// fillDetail adds the deep result fields (output digest, telemetry and
// tuner reports) to the document.
func (doc *resultDoc) fillDetail(info *workloads.RunInfo) {
	if info == nil {
		return
	}
	if info.Digest != 0 {
		doc.Digest = fmt.Sprintf("%016x", info.Digest)
	}
	doc.Telemetry = info.Telemetry
	doc.Partial = info.Partial
	if info.Tuner != nil {
		doc.Tuner = &tunerSummary{
			Epochs: len(info.Tuner.Epochs),
			Report: info.Tuner,
		}
	}
}

// tunerSummary is the retained per-job tuner report, flattened for JSON.
type tunerSummary struct {
	Epochs int `json:"epochs"`
	Report any `json:"report"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// statusLocked renders e's status; callers hold s.mu. A follower entry
// reports its own id but the shared execution's state, timings and
// result; a memo-hit record reports a settled terminal state.
func (s *Service) statusLocked(e *entry) entryStatus {
	js := e.jobStatus()
	st := entryStatus{
		ID:            e.id,
		Workload:      e.workload,
		Engine:        e.engine.String(),
		State:         js.State.String(),
		Grant:         js.Grant,
		QueuedAt:      fmtTime(js.QueuedAt),
		Started:       fmtTime(js.Started),
		Finished:      fmtTime(js.Finished),
		ContentDigest: e.digest,
		Cached:        e.job == nil,
		ExecutedBy:    e.execBy,
		Coalesced:     e.leader != nil,
		Waiters:       js.Waiters,
	}
	if e.job != nil {
		st.Priority = js.Priority.String()
	}
	if js.Err != nil {
		st.Error = js.Err.Error()
	}
	st.Stream = e.streamStatus()
	fillResult(&st, e.runInfo())
	return st
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit (429 when saturated, 503 when draining)
//	GET    /jobs             list all retained jobs
//	GET    /jobs/{id}        status: state, grant, phase times, queue stats
//	GET    /jobs/{id}/result full result incl. telemetry and tuner reports
//	GET    /jobs/{id}/trace  lifecycle + worker-lane Chrome-trace JSON
//	DELETE /jobs/{id}        cancel (queued, running or streaming)
//	POST   /jobs/{id}/chunks     streaming: append a chunk (202/429/409)
//	GET    /jobs/{id}/windows    streaming: sealed window summaries
//	GET    /jobs/{id}/windows/{n} streaming: one sealed window (202 open)
//	POST   /jobs/{id}/close      streaming: seal final window and settle
//	GET    /stats            scheduler occupancy, memo, runtime sections
//	GET    /metrics          aggregated Prometheus exposition, per-job labels
//	GET    /debug/events     bounded ring of scheduler/memo events
//	GET    /healthz          liveness
//	GET    /readyz           readiness (503 while draining)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/chunks", s.handleStreamChunk)
	mux.HandleFunc("GET /jobs/{id}/windows", s.handleStreamWindows)
	mux.HandleFunc("GET /jobs/{id}/windows/{n}", s.handleStreamWindow)
	mux.HandleFunc("POST /jobs/{id}/close", s.handleStreamClose)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.multi.Handler())
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return withProto(mux)
}

// handleReady is the readiness probe: 503 from the moment Shutdown
// starts draining, so load balancers stop routing before the listener
// closes (the liveness probe /healthz keeps answering 200 throughout).
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// writeJSON encodes v fully before touching the ResponseWriter: a
// marshal failure becomes a logged 500 instead of a silently truncated
// body half-written after a success header. lg carries the caller's
// correlation attributes (job_id, content_digest) so the error lines
// stay attributable.
func writeJSON(w http.ResponseWriter, lg *slog.Logger, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		lg.Error("service: encoding response", "type", fmt.Sprintf("%T", v), "err", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"internal: response encoding failed"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := buf.WriteTo(w); err != nil {
		// The body was fully rendered; a short write here is the
		// client hanging up, which is only worth a log line.
		lg.Warn("service: writing response", "err", err)
	}
}

func writeErr(w http.ResponseWriter, lg *slog.Logger, code int, err error) {
	writeJSON(w, lg, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The recorder's epoch is the HTTP receive; the decode rides in the
	// root span's opening "receive" segment.
	rec := obs.New("job")
	endReceive := rec.Span("receive", nil)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	endReceive()
	if err != nil {
		writeErr(w, s.log, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	req.rec = rec
	doc, err := s.Submit(&req)
	switch {
	case err == nil && doc.Cached:
		// Served from the memo cache: no execution was started, so 200
		// with the finished result, not 201 with a Location.
		writeJSON(w, s.log.With("job_id", doc.ID), http.StatusOK, doc)
	case err == nil:
		w.Header().Set("Location", "/jobs/"+strconv.Itoa(doc.ID))
		writeJSON(w, s.log.With("job_id", doc.ID), http.StatusCreated, doc)
	case errors.Is(err, sched.ErrSaturated):
		s.log.Warn("job rejected: queue saturated", "workload", req.Workload)
		writeErr(w, s.log, http.StatusTooManyRequests, err)
	case errors.Is(err, sched.ErrDraining):
		writeErr(w, s.log, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, s.log, http.StatusBadRequest, err)
	}
}

// sortByID orders a document slice by job id — stable output for
// clients and tests.
func sortByID[T any](xs []T, id func(T) int) {
	sort.Slice(xs, func(i, j int) bool { return id(xs[i]) < id(xs[j]) })
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]entryStatus, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, s.statusLocked(e))
	}
	s.mu.Unlock()
	sortByID(out, func(e entryStatus) int { return e.ID })
	writeJSON(w, s.log, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Service) lookup(r *http.Request) (*entry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("invalid job id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("no job %d", id)
	}
	return e, nil
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, s.log, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(e)
	s.mu.Unlock()
	writeJSON(w, s.jobLog(e), http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, s.log, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(e)
	s.mu.Unlock()
	if st.State == "queued" || st.State == "running" {
		writeJSON(w, s.jobLog(e), http.StatusAccepted, st)
		return
	}
	doc := resultDoc{entryStatus: st}
	doc.fillDetail(e.runInfo())
	writeJSON(w, s.jobLog(e), http.StatusOK, doc)
}

// handleTrace serves the job's lifecycle trace as Chrome trace-event
// JSON (load at ui.perfetto.dev): root span, service-tier spans, and the
// run's worker lanes stitched below. Live jobs serve the spans recorded
// so far; terminal jobs serve the full tree.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, s.log, http.StatusNotFound, err)
		return
	}
	if e.rec == nil {
		writeErr(w, s.jobLog(e), http.StatusNotFound, fmt.Errorf("no trace recorded for job %d", e.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := e.rec.WriteChromeTrace(w); err != nil {
		s.jobLog(e).Warn("service: writing trace", "err", err)
	}
}

// handleEvents serves the bounded event log: scheduler transitions, memo
// hits and coalesces, oldest first. dropped counts events overwritten by
// the ring bound.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, total := s.ring.Snapshot()
	writeJSON(w, s.log, http.StatusOK, map[string]any{
		"capacity": s.ring.Cap(),
		"total":    total,
		"dropped":  total - uint64(len(events)),
		"events":   events,
	})
}

// handleCancel implements DELETE /jobs/{id} with waiter-aware
// semantics:
//
//   - finished (done/canceled) job or memo-hit record: nothing to cancel
//     — the retained record and its telemetry registration are removed,
//     and 409 Conflict reports the terminal state so the client can tell
//     a real cancellation from this no-op (204 used to lie here).
//   - live job with other waiters attached (coalesced duplicates): this
//     record detaches and is removed; the shared execution keeps running
//     for the remaining waiters. 204.
//   - live job, last waiter: the execution is cancelled (queued jobs
//     never start, running jobs drain); the record is kept so the
//     terminal canceled state stays pollable. 204.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, s.log, http.StatusNotFound, err)
		return
	}
	js := e.jobStatus()
	if js.State == sched.StateDone || js.State == sched.StateCanceled {
		s.mu.Lock()
		s.removeEntryLocked(e)
		s.mu.Unlock()
		s.jobLog(e).Info("retained record deleted", "state", js.State.String())
		writeJSON(w, s.jobLog(e), http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %d already %s; retained record deleted", e.id, js.State),
			"state": js.State.String(),
		})
		return
	}
	if cancelled := e.job.DropWaiter(); !cancelled {
		// Detached from a still-live coalesced execution (or lost a race
		// with its completion): this record is dead either way.
		s.mu.Lock()
		s.removeEntryLocked(e)
		s.mu.Unlock()
	}
	s.jobLog(e).Info("job cancel requested")
	w.WriteHeader(http.StatusNoContent)
}

// jobStats is one job's balance figures in the /stats document.
type jobStats struct {
	ID           int            `json:"id"`
	Workload     string         `json:"workload"`
	State        string         `json:"state"`
	Steal        *mr.StealStats `json:"steal,omitempty"`
	ImbalanceP90 float64        `json:"imbalance_p90,omitempty"`
}

// memoStats is the /stats memoization-and-retention section.
type memoStats struct {
	memo.Stats
	// RetainedJobs gauges the registry (bounded by the retention
	// discipline shared with the cache's LRU accounting).
	RetainedJobs int `json:"retained_jobs"`
	// RegisteredMetrics gauges live telemetry registrations — one per
	// retained leader; bounded cardinality is the leak regression check.
	RegisteredMetrics int `json:"registered_metrics"`
}

func (s *Service) memoStatsDoc() memoStats {
	s.mu.Lock()
	retained := len(s.entries)
	s.mu.Unlock()
	return memoStats{
		Stats:             s.cache.Stats(),
		RetainedJobs:      retained,
		RegisteredMetrics: s.multi.Len(),
	}
}

// runtimeStats is the /stats process-health section.
type runtimeStats struct {
	Version        string  `json:"version"`
	GoVersion      string  `json:"go_version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	GCCycles       uint32  `json:"gc_cycles"`
}

// buildInfo reads the binary's module version and Go toolchain once.
var buildInfo = sync.OnceValues(func() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" {
			version = v
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return version, goVersion
})

func (s *Service) runtimeStatsDoc() runtimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	v, gv := buildInfo()
	return runtimeStats{
		Version:        v,
		GoVersion:      gv,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCCycles:       ms.NumGC,
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sch.Stats()
	s.mu.Lock()
	jobs := make([]jobStats, 0, len(s.entries))
	for _, e := range s.entries {
		js := jobStats{ID: e.id, Workload: e.workload, State: e.jobStatus().State.String()}
		if info := e.runInfo(); info != nil {
			steal := info.Steal
			js.Steal = &steal
			if rep := info.Telemetry; rep != nil {
				js.ImbalanceP90 = rep.Imbalance.P90
			}
		}
		jobs = append(jobs, js)
	}
	s.mu.Unlock()
	sortByID(jobs, func(j jobStats) int { return j.ID })
	writeJSON(w, s.log, http.StatusOK, map[string]any{
		"scheduler":    st,
		"memo":         s.memoStatsDoc(),
		"runtime":      s.runtimeStatsDoc(),
		"capabilities": capabilitiesDoc(),
		"jobs":         jobs,
	})
}

// writeServiceProm is the telemetry.Multi extra writer: service-level
// families appended after the per-job exposition, so memo, retention and
// lifecycle-latency series stay scrapeable even when every job record
// has been deleted.
func (s *Service) writeServiceProm(w io.Writer) error {
	m := s.memoStatsDoc()
	v, gv := buildInfo()
	if _, err := fmt.Fprintf(w, `# HELP ramr_memo_hits_total Submissions answered from the result memo cache.
# TYPE ramr_memo_hits_total counter
ramr_memo_hits_total %d
# HELP ramr_memo_misses_total Submissions that found no cached result.
# TYPE ramr_memo_misses_total counter
ramr_memo_misses_total %d
# HELP ramr_memo_coalesced_total Duplicate submissions folded onto an in-flight execution.
# TYPE ramr_memo_coalesced_total counter
ramr_memo_coalesced_total %d
# HELP ramr_memo_evictions_total Cached results evicted to satisfy the byte bound.
# TYPE ramr_memo_evictions_total counter
ramr_memo_evictions_total %d
# HELP ramr_memo_cached_bytes Byte-accounted size of the result memo cache.
# TYPE ramr_memo_cached_bytes gauge
ramr_memo_cached_bytes %d
# HELP ramr_memo_cached_entries Results retained in the memo cache.
# TYPE ramr_memo_cached_entries gauge
ramr_memo_cached_entries %d
# HELP ramr_memo_max_bytes Configured memo cache byte bound.
# TYPE ramr_memo_max_bytes gauge
ramr_memo_max_bytes %d
# HELP ramr_service_jobs_retained Job records retained in the registry.
# TYPE ramr_service_jobs_retained gauge
ramr_service_jobs_retained %d
# HELP ramr_service_metrics_registered Live per-job telemetry registrations.
# TYPE ramr_service_metrics_registered gauge
ramr_service_metrics_registered %d
# HELP ramr_build_info Build metadata; value is always 1.
# TYPE ramr_build_info gauge
ramr_build_info{version=%q,go_version=%q} 1
# HELP ramr_service_uptime_seconds Seconds since the service started.
# TYPE ramr_service_uptime_seconds gauge
ramr_service_uptime_seconds %g
`,
		m.Hits, m.Misses, m.Coalesced, m.Evictions,
		m.Bytes, m.Entries, m.MaxBytes,
		m.RetainedJobs, m.RegisteredMetrics,
		v, gv, time.Since(s.start).Seconds()); err != nil {
		return err
	}
	for _, h := range []*telemetry.HistogramVec{
		s.hist.e2e, s.hist.queueWait, s.hist.alloc, s.hist.phase,
	} {
		if err := h.WritePrometheus(w); err != nil {
			return err
		}
	}
	return s.writeStreamProm(w)
}
