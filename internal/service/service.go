// Package service is the multi-job front end over internal/sched: a JSON
// HTTP API through which clients submit named workloads, poll status,
// fetch results and cancel jobs, plus one shared Prometheus endpoint
// aggregating every job's live telemetry under per-job labels. The ramrd
// daemon (cmd/ramrd) is a thin flag-parsing wrapper around this package.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ramr/internal/mr"
	"ramr/internal/sched"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/workloads"
)

// Config parameterizes a Service.
type Config struct {
	// Machine is the topology the scheduler carves grants from; nil
	// detects the host.
	Machine *topology.Machine
	// Budget, MaxQueued and Seed are passed to sched.Config.
	Budget    int
	MaxQueued int
	Seed      int64
	// Observer taps scheduler events (tests assert invariants on it).
	Observer func(sched.Event)
}

// Service owns a scheduler, the job registry and the shared telemetry
// aggregator.
type Service struct {
	machine *topology.Machine
	sch     *sched.Scheduler
	multi   *telemetry.Multi

	mu      sync.Mutex
	entries map[int]*entry
	closed  bool
}

// entry is one submitted job's retained state. The RunInfo (phase times,
// queue stats, telemetry and tuner reports) is kept until the job is
// deleted, so results survive the run itself.
type entry struct {
	id       int
	workload string
	engine   workloads.Engine
	job      *sched.Job
	telem    *telemetry.Telemetry

	mu   sync.Mutex
	info *workloads.RunInfo
}

// finalMetrics flattens the retained RunInfo into the scheduler's metric
// map: work-stealing counters by distance class and the sampled queue
// imbalance. It is the JobSpec.Metrics callback, invoked once when the
// job finishes, and feeds EventFinished observers and JobStatus.
func (e *entry) finalMetrics() map[string]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := e.info
	if info == nil {
		return nil
	}
	m := map[string]float64{
		"steal_local_tasks":     float64(info.Steal.LocalTasks),
		"steal_socket_tasks":    float64(info.Steal.SocketTasks),
		"steal_remote_tasks":    float64(info.Steal.RemoteTasks),
		"steal_remote_executed": float64(info.Steal.RemoteExecuted),
		"steal_rate":            info.Steal.StealRate(),
	}
	if rep := info.Telemetry; rep != nil {
		m["queue_imbalance_p90"] = rep.Imbalance.P90
		m["queue_imbalance_max"] = rep.Imbalance.Max
	}
	return m
}

// New builds a Service.
func New(cfg Config) (*Service, error) {
	m := cfg.Machine
	if m == nil {
		m = topology.Detect()
	}
	s := &Service{
		machine: m,
		multi:   telemetry.NewMulti(),
		entries: make(map[int]*entry),
	}
	sc, err := sched.New(sched.Config{
		Machine:   m,
		Budget:    cfg.Budget,
		MaxQueued: cfg.MaxQueued,
		Seed:      cfg.Seed,
		Observer:  cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	s.sch = sc
	return s, nil
}

// Scheduler exposes the underlying scheduler (tests and embedders).
func (s *Service) Scheduler() *sched.Scheduler { return s.sch }

// Multi exposes the shared telemetry aggregator backing /metrics.
func (s *Service) Multi() *telemetry.Multi { return s.multi }

// Submit admits one parsed job request. It is the programmatic core of
// POST /jobs; the HTTP handler only decodes JSON around it.
func (s *Service) Submit(req *JobRequest) (*entryStatus, error) {
	job, cfg, err := buildJob(req, s.machine)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	e := &entry{
		workload: job.App,
		engine:   req.engine,
		telem:    telemetry.New(),
	}
	cfg.Telemetry = e.telem

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, sched.ErrDraining
	}
	sj, err := s.sch.Submit(sched.JobSpec{
		Name:     job.App,
		Priority: req.priority,
		MinCPUs:  req.MinCPUs,
		MaxCPUs:  req.MaxCPUs,
		Run: func(ctx context.Context, grant []int) error {
			c := cfg
			c.ApplyGrant(grant)
			if req.Config.Mappers > 0 {
				c.Mappers = req.Config.Mappers
			}
			if req.Config.Combiners > 0 {
				c.Combiners = req.Config.Combiners
			}
			info, err := job.RunCtx(ctx, req.engine, c)
			e.mu.Lock()
			e.info = info
			e.mu.Unlock()
			return err
		},
		Metrics: e.finalMetrics,
	})
	if err != nil {
		return nil, err
	}
	e.id = sj.ID()
	e.job = sj
	s.entries[e.id] = e
	s.multi.Register(strconv.Itoa(e.id), map[string]string{
		"job": strconv.Itoa(e.id),
		"app": e.workload,
	}, e.telem)
	st := s.statusLocked(e)
	return &st, nil
}

// Shutdown stops admission and drains the scheduler: queued jobs still
// run, running jobs finish, and anything unfinished at ctx's deadline is
// cancelled (but its goroutine is awaited). Results of jobs that did
// finish remain retrievable from the registry afterwards.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.sch.Drain(ctx)
}

// errBadRequest marks client errors (HTTP 400).
var errBadRequest = errors.New("bad request")

// entryStatus is the status document for one job, shared by GET /jobs
// and GET /jobs/{id}.
type entryStatus struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Priority string `json:"priority"`
	State    string `json:"state"`
	Grant    []int  `json:"grant,omitempty"`
	QueuedAt string `json:"queued_at,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result summary, present once the job finished successfully.
	WallMS float64        `json:"wall_ms,omitempty"`
	Phases *mr.PhaseTimes `json:"phases,omitempty"`
	Queue  *mr.QueueStats `json:"queue,omitempty"`
	Steal  *mr.StealStats `json:"steal,omitempty"`
	Pairs  int            `json:"pairs,omitempty"`
	// ImbalanceP90 is the run's sampled queue occupancy-imbalance ratio
	// (p90 of max/mean depth per tick); 0 until the job finished with
	// telemetry.
	ImbalanceP90 float64 `json:"imbalance_p90,omitempty"`
}

// resultDoc is the full result document for GET /jobs/{id}/result.
type resultDoc struct {
	entryStatus
	Digest    string            `json:"digest,omitempty"`
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	Tuner     *tunerSummary     `json:"tuner,omitempty"`
}

// tunerSummary is the retained per-job tuner report, flattened for JSON.
type tunerSummary struct {
	Epochs int `json:"epochs"`
	Report any `json:"report"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// statusLocked renders e's status; callers hold s.mu.
func (s *Service) statusLocked(e *entry) entryStatus {
	js := e.job.Status()
	st := entryStatus{
		ID:       js.ID,
		Workload: e.workload,
		Engine:   e.engine.String(),
		Priority: js.Priority.String(),
		State:    js.State.String(),
		Grant:    js.Grant,
		QueuedAt: fmtTime(js.QueuedAt),
		Started:  fmtTime(js.Started),
		Finished: fmtTime(js.Finished),
	}
	if js.Err != nil {
		st.Error = js.Err.Error()
	}
	e.mu.Lock()
	if info := e.info; info != nil {
		st.WallMS = float64(info.Wall) / float64(time.Millisecond)
		ph, q := info.Phases, info.Queue
		st.Phases, st.Queue = &ph, &q
		steal := info.Steal
		st.Steal = &steal
		st.Pairs = info.Pairs
		if rep := info.Telemetry; rep != nil {
			st.ImbalanceP90 = rep.Imbalance.P90
		}
	}
	e.mu.Unlock()
	return st
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit (429 when saturated, 503 when draining)
//	GET    /jobs             list all retained jobs
//	GET    /jobs/{id}        status: state, grant, phase times, queue stats
//	GET    /jobs/{id}/result full result incl. telemetry and tuner reports
//	DELETE /jobs/{id}        cancel (queued or running)
//	GET    /stats            scheduler occupancy and lifetime counters
//	GET    /metrics          aggregated Prometheus exposition, per-job labels
//	GET    /healthz          liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.multi.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	st, err := s.Submit(&req)
	switch {
	case err == nil:
		w.Header().Set("Location", "/jobs/"+strconv.Itoa(st.ID))
		writeJSON(w, http.StatusCreated, st)
	case errors.Is(err, sched.ErrSaturated):
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, sched.ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]entryStatus, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, s.statusLocked(e))
	}
	s.mu.Unlock()
	// Stable order for clients and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Service) lookup(r *http.Request) (*entry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("invalid job id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("no job %d", id)
	}
	return e, nil
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(e)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(e)
	s.mu.Unlock()
	if st.State == "queued" || st.State == "running" {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	doc := resultDoc{entryStatus: st}
	e.mu.Lock()
	if info := e.info; info != nil {
		if info.Digest != 0 {
			doc.Digest = fmt.Sprintf("%016x", info.Digest)
		}
		doc.Telemetry = info.Telemetry
		if info.Tuner != nil {
			doc.Tuner = &tunerSummary{
				Epochs: len(info.Tuner.Epochs),
				Report: info.Tuner,
			}
		}
	}
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	e.job.Cancel()
	w.WriteHeader(http.StatusNoContent)
}

// jobStats is one job's balance figures in the /stats document.
type jobStats struct {
	ID           int            `json:"id"`
	Workload     string         `json:"workload"`
	State        string         `json:"state"`
	Steal        *mr.StealStats `json:"steal,omitempty"`
	ImbalanceP90 float64        `json:"imbalance_p90,omitempty"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sch.Stats()
	s.mu.Lock()
	jobs := make([]jobStats, 0, len(s.entries))
	for _, e := range s.entries {
		js := jobStats{ID: e.id, Workload: e.workload, State: e.job.Status().State.String()}
		e.mu.Lock()
		if info := e.info; info != nil {
			steal := info.Steal
			js.Steal = &steal
			if rep := info.Telemetry; rep != nil {
				js.ImbalanceP90 = rep.Imbalance.P90
			}
		}
		e.mu.Unlock()
		jobs = append(jobs, js)
	}
	s.mu.Unlock()
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j-1].ID > jobs[j].ID; j-- {
			jobs[j-1], jobs[j] = jobs[j], jobs[j-1]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"scheduler": st, "jobs": jobs})
}
