package topology

// HaswellServer returns the paper's multi-core evaluation platform: a
// dual-socket Intel Haswell server with 14 cores per socket, 2-way
// hyper-threading and 35 MB of L3 per socket (§IV-A). Each socket is one
// NUMA node; logical CPUs are numbered in the usual Linux SMT-last order,
// so cpus 0-27 are the 28 physical cores and 28-55 their siblings.
func HaswellServer() *Machine {
	return &Machine{
		Name:           "haswell-server",
		Sockets:        2,
		CoresPerSocket: 14,
		ThreadsPerCore: 2,
		Enum:           EnumSMTLast,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 4},
			{Level: 2, SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 12},
			{Level: 3, SizeBytes: 35 << 20, LineBytes: 64, Assoc: 20, Scope: ScopePerSocket, LatencyCycles: 40},
		},
		MemLatencyCycles:         220,
		CrossSocketPenaltyCycles: 110,
	}
}

// XeonPhi returns the paper's many-core evaluation platform: a Xeon Phi
// (Knights Corner) co-processor with 57 in-order cores at 1.1 GHz, 4-way
// SMT and 28.5 MB of aggregate L2 (§IV-A). A bidirectional ring makes the
// per-core L2 slices behave as one universally shared L2, which is why the
// paper measures only 1-3% gain from pinning there: every core is roughly
// equidistant. We model that as a ScopeGlobal L2.
func XeonPhi() *Machine {
	return &Machine{
		Name:           "xeon-phi",
		Sockets:        1,
		CoresPerSocket: 57,
		ThreadsPerCore: 4,
		Enum:           EnumCompact,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 3},
			// 512 KB per-core slices, globally coherent over the ring.
			{Level: 2, SizeBytes: 28<<20 + 512<<10, LineBytes: 64, Assoc: 8, Scope: ScopeGlobal, LatencyCycles: 24},
		},
		MemLatencyCycles:         300,
		CrossSocketPenaltyCycles: 0,
	}
}

// Fig3Example returns the didactic machine of the paper's Fig. 3: two NUMA
// nodes, four cores per node, 2-way hyper-threading, SMT-last numbering.
// With a 1:1 mapper/combiner ratio the remapped pairs (2i, 2i+1) must share
// a physical core; the unit tests pin that property to the figure.
func Fig3Example() *Machine {
	return &Machine{
		Name:           "fig3-example",
		Sockets:        2,
		CoresPerSocket: 4,
		ThreadsPerCore: 2,
		Enum:           EnumSMTLast,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 4},
			{Level: 2, SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 12},
			{Level: 3, SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16, Scope: ScopePerSocket, LatencyCycles: 40},
		},
		MemLatencyCycles:         200,
		CrossSocketPenaltyCycles: 100,
	}
}

// Flat returns a degenerate single-socket machine with n independent cores
// and no SMT — the safe fallback when host detection fails and a reasonable
// model for small containerized CI hosts.
func Flat(n int) *Machine {
	if n < 1 {
		n = 1
	}
	return &Machine{
		Name:           "flat",
		Sockets:        1,
		CoresPerSocket: n,
		ThreadsPerCore: 1,
		Enum:           EnumCompact,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 4},
			{Level: 2, SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16, Scope: ScopePerCore, LatencyCycles: 14},
			{Level: 3, SizeBytes: 16 << 20, LineBytes: 64, Assoc: 16, Scope: ScopePerSocket, LatencyCycles: 42},
		},
		MemLatencyCycles:         200,
		CrossSocketPenaltyCycles: 0,
	}
}

// Presets lists every built-in machine by name for CLI lookup.
func Presets() map[string]func() *Machine {
	return map[string]func() *Machine{
		"haswell-server": HaswellServer,
		"xeon-phi":       XeonPhi,
		"fig3-example":   Fig3Example,
	}
}
