package topology

import "testing"

// fourSocket returns a synthetic 4-node machine with uniform cross-socket
// cost, so victim ordering must fall back to the ring tie-break.
func fourSocket() *Machine {
	return &Machine{
		Name:           "four-socket",
		Sockets:        4,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		Enum:           EnumCompact,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 4},
			{Level: 3, SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16, Scope: ScopePerSocket, LatencyCycles: 40},
		},
		MemLatencyCycles:         200,
		CrossSocketPenaltyCycles: 100,
	}
}

// globalLLC returns a dual-node machine whose last-level cache spans both
// nodes (Phi-style ring), so cross-group steals stay cache-resident.
func globalLLC() *Machine {
	return &Machine{
		Name:           "global-llc",
		Sockets:        2,
		CoresPerSocket: 4,
		ThreadsPerCore: 1,
		Enum:           EnumCompact,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 4},
			{Level: 2, SizeBytes: 16 << 20, LineBytes: 64, Assoc: 16, Scope: ScopeGlobal, LatencyCycles: 24},
		},
		MemLatencyCycles:         300,
		CrossSocketPenaltyCycles: 0,
	}
}

// TestStealClassString pins the metric labels.
func TestStealClassString(t *testing.T) {
	want := map[StealClass]string{StealLocal: "local", StealSocket: "socket", StealRemote: "remote"}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

// TestGroupStealClassHaswell: Haswell sockets share no cache, so every
// cross-group steal is remote; own-group takes are local.
func TestGroupStealClassHaswell(t *testing.T) {
	m := HaswellServer()
	if got := m.GroupStealClass(0, 0); got != StealLocal {
		t.Fatalf("GroupStealClass(0,0) = %v, want local", got)
	}
	if got := m.GroupStealClass(0, 1); got != StealRemote {
		t.Fatalf("GroupStealClass(0,1) = %v, want remote", got)
	}
	if got := m.GroupStealClass(1, 0); got != StealRemote {
		t.Fatalf("GroupStealClass(1,0) = %v, want remote", got)
	}
}

// TestGroupStealClassGlobalLLC: a machine-wide LLC keeps cross-group
// steals in the socket class.
func TestGroupStealClassGlobalLLC(t *testing.T) {
	m := globalLLC()
	if got := m.GroupStealClass(0, 1); got != StealSocket {
		t.Fatalf("GroupStealClass(0,1) = %v, want socket", got)
	}
}

// TestVictimOrderHaswell: two groups each list only the other.
func TestVictimOrderHaswell(t *testing.T) {
	order := HaswellServer().VictimOrder()
	if len(order) != 2 {
		t.Fatalf("%d orders, want 2", len(order))
	}
	if len(order[0]) != 1 || order[0][0] != 1 {
		t.Fatalf("group 0 victims = %v, want [1]", order[0])
	}
	if len(order[1]) != 1 || order[1][0] != 0 {
		t.Fatalf("group 1 victims = %v, want [0]", order[1])
	}
}

// TestVictimOrderPhi: a single-group machine has an empty victim list —
// stealing degenerates to pure local dispatch.
func TestVictimOrderPhi(t *testing.T) {
	order := XeonPhi().VictimOrder()
	if len(order) != 1 || len(order[0]) != 0 {
		t.Fatalf("Phi victim order = %v, want [[]]", order)
	}
}

// TestVictimOrderRingTieBreak: with uniform cross-socket cost, victims
// follow ring order from the thief's group, so concurrent thieves from
// different groups probe different victims first.
func TestVictimOrderRingTieBreak(t *testing.T) {
	order := fourSocket().VictimOrder()
	want := [][]int{{1, 2, 3}, {2, 3, 0}, {3, 0, 1}, {0, 1, 2}}
	for g := range want {
		if len(order[g]) != len(want[g]) {
			t.Fatalf("group %d victims = %v, want %v", g, order[g], want[g])
		}
		for i := range want[g] {
			if order[g][i] != want[g][i] {
				t.Fatalf("group %d victims = %v, want %v", g, order[g], want[g])
			}
		}
	}
}

// TestVictimOrderNonDenseSockets: victim orders index dense groups even
// when socket labels have gaps.
func TestVictimOrderNonDenseSockets(t *testing.T) {
	m := nonDense()
	order := m.VictimOrder()
	if len(order) != 2 {
		t.Fatalf("%d orders, want 2", len(order))
	}
	if order[0][0] != 1 || order[1][0] != 0 {
		t.Fatalf("non-dense victim order = %v, want [[1] [0]]", order)
	}
	for g, victims := range order {
		for _, v := range victims {
			if v < 0 || v >= len(order) || v == g {
				t.Fatalf("group %d has invalid victim %d", g, v)
			}
		}
	}
}
