package topology

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeFixture builds a fake sysfs cpu tree.
func writeFixture(t *testing.T, dir string, cpus []phys) {
	t.Helper()
	for id, p := range cpus {
		base := filepath.Join(dir, fmt.Sprintf("cpu%d", id), "topology")
		if err := os.MkdirAll(base, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(base, "physical_package_id"),
			[]byte(fmt.Sprintf("%d\n", p.socket)), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(base, "core_id"),
			[]byte(fmt.Sprintf("%d\n", p.core)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Distractor entries detection must skip.
	if err := os.MkdirAll(filepath.Join(dir, "cpufreq"), 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestDetectSysfsSMTLast(t *testing.T) {
	dir := t.TempDir()
	// 1 socket, 2 cores, 2 threads, SMT-last: cpu0/1 = cores 0/1,
	// cpu2/3 = their siblings.
	writeFixture(t, dir, []phys{{0, 0}, {0, 1}, {0, 0}, {0, 1}})
	m, err := detectSysfs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sockets != 1 || m.CoresPerSocket != 2 || m.ThreadsPerCore != 2 {
		t.Fatalf("detected %s", m)
	}
	if m.Enum != EnumSMTLast {
		t.Fatalf("enumeration = %v, want SMT-last", m.Enum)
	}
}

func TestDetectSysfsCompact(t *testing.T) {
	dir := t.TempDir()
	// Compact: cpu0/1 share core 0.
	writeFixture(t, dir, []phys{{0, 0}, {0, 0}, {0, 1}, {0, 1}})
	m, err := detectSysfs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Enum != EnumCompact {
		t.Fatalf("enumeration = %v, want compact", m.Enum)
	}
}

func TestDetectSysfsIrregularRejected(t *testing.T) {
	dir := t.TempDir()
	// Socket 0 has two cores, socket 1 only one.
	writeFixture(t, dir, []phys{{0, 0}, {0, 1}, {1, 0}})
	if _, err := detectSysfs(dir); err == nil {
		t.Fatal("irregular topology should be rejected")
	}
}

func TestDetectSysfsMissingDir(t *testing.T) {
	if _, err := detectSysfs(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory should error")
	}
}

func TestDetectNeverFails(t *testing.T) {
	m := Detect()
	if err := m.Validate(); err != nil {
		t.Fatalf("Detect returned invalid machine: %v", err)
	}
	if m.NumCPUs() < 1 {
		t.Fatal("no cpus detected")
	}
}
