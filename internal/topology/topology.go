// Package topology models the processor topology that the RAMR runtime is
// resource-aware of: logical CPUs, SMT siblings, physical cores, sockets /
// NUMA nodes and the cache-sharing domains between them.
//
// The paper (§III-B, Fig. 3) derives its contention-aware pinning policy
// purely from this information: given the mapper-to-combiner ratio, threads
// are renumbered so that co-operating threads land on logical CPUs that
// share the closest possible cache level. Everything in this package is a
// pure function of the machine description, so the same policy code runs
// unchanged against the paper's Haswell and Xeon Phi presets, against the
// detected host, or against a synthetic machine inside the discrete-event
// simulator.
package topology

import (
	"fmt"
	"sort"
)

// Scope identifies the sharing domain of a cache level.
type Scope int

const (
	// ScopePerThread marks a resource private to one hardware thread.
	ScopePerThread Scope = iota
	// ScopePerCore marks a cache shared by the SMT siblings of one core
	// (L1/L2 on Haswell, L1 on Xeon Phi).
	ScopePerCore
	// ScopePerSocket marks a cache shared by all cores of one socket
	// (L3 on Haswell).
	ScopePerSocket
	// ScopeGlobal marks a cache shared machine-wide (the Xeon Phi ring
	// of L2 slices behaves as a universally shared last-level cache).
	ScopeGlobal
)

// String returns the conventional name of the scope.
func (s Scope) String() string {
	switch s {
	case ScopePerThread:
		return "per-thread"
	case ScopePerCore:
		return "per-core"
	case ScopePerSocket:
		return "per-socket"
	case ScopeGlobal:
		return "global"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	// Level is the conventional cache level number (1, 2, 3).
	Level int
	// SizeBytes is the capacity of one instance of this cache.
	SizeBytes int
	// LineBytes is the cache line size (64 on both evaluation platforms).
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// Scope is the sharing domain of one instance.
	Scope Scope
	// LatencyCycles is the approximate load-to-use latency, used by the
	// cache simulator and the discrete-event cost model.
	LatencyCycles int
}

// Enumeration selects how the operating system numbers logical CPUs.
type Enumeration int

const (
	// EnumSMTLast numbers all first hardware threads of every core
	// before any sibling threads (the common Linux numbering on Intel
	// servers: cpu 0..N-1 are distinct cores, cpu N.. are their
	// hyper-thread siblings). This is the "original mapping" on the
	// left of the paper's Fig. 3.
	EnumSMTLast Enumeration = iota
	// EnumCompact numbers the SMT siblings of a core consecutively
	// (cpu 4c..4c+3 are the four threads of core c on Xeon Phi).
	EnumCompact
)

// CPU is one logical processor.
type CPU struct {
	// ID is the OS logical CPU number.
	ID int
	// Socket is the socket (== NUMA node on both evaluation platforms).
	// It is the OS-assigned *label* of the socket, not a dense index:
	// firmware with offline nodes or sub-NUMA clustering leaves gaps in
	// the numbering, so code needing a dense index must go through
	// Machine.GroupOf / LocalityGroups rather than using Socket directly.
	Socket int
	// Core is the machine-global physical core index.
	Core int
	// SMT is the hardware-thread index within the core.
	SMT int
}

// Machine is a full processor description.
type Machine struct {
	// Name labels the machine in reports ("haswell-server", ...).
	Name string
	// Sockets is the number of sockets; each socket is one NUMA node.
	Sockets int
	// CoresPerSocket is the number of physical cores per socket.
	CoresPerSocket int
	// ThreadsPerCore is the SMT width.
	ThreadsPerCore int
	// Caches lists the hierarchy from L1 outward.
	Caches []CacheLevel
	// Enum is the logical CPU numbering scheme.
	Enum Enumeration
	// MemLatencyCycles is the approximate DRAM access latency used by
	// the simulator when every cache level misses.
	MemLatencyCycles int
	// CrossSocketPenaltyCycles is the extra latency of a remote-socket
	// access (QPI hop on Haswell; zero on the single-die Xeon Phi).
	CrossSocketPenaltyCycles int
	// SocketIDs optionally carries the OS-assigned id of each socket
	// (physical_package_id), in ascending order. Real firmware does not
	// promise dense numbering, so when set these become the CPU.Socket
	// labels; nil means the dense default 0..Sockets-1.
	SocketIDs []int

	cpus    []CPU       // lazily built, indexed by logical id
	byCore  map[int]int // first logical id per global core, for tests
	groupOf map[int]int // socket label -> LocalityGroups index
}

// NumCPUs returns the number of logical CPUs.
func (m *Machine) NumCPUs() int {
	return m.Sockets * m.CoresPerSocket * m.ThreadsPerCore
}

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int {
	return m.Sockets * m.CoresPerSocket
}

// CPUs returns all logical CPUs indexed by logical id.
func (m *Machine) CPUs() []CPU {
	if m.cpus == nil {
		m.build()
	}
	return m.cpus
}

// CPUByID returns the logical CPU with the given OS id.
func (m *Machine) CPUByID(id int) (CPU, error) {
	cpus := m.CPUs()
	if id < 0 || id >= len(cpus) {
		return CPU{}, fmt.Errorf("topology: cpu id %d out of range [0,%d)", id, len(cpus))
	}
	return cpus[id], nil
}

func (m *Machine) build() {
	n := m.NumCPUs()
	m.cpus = make([]CPU, n)
	m.byCore = make(map[int]int)
	m.groupOf = make(map[int]int)
	for s := 0; s < m.Sockets; s++ {
		m.groupOf[m.socketID(s)] = s
	}
	id := 0
	switch m.Enum {
	case EnumSMTLast:
		for smt := 0; smt < m.ThreadsPerCore; smt++ {
			for s := 0; s < m.Sockets; s++ {
				for c := 0; c < m.CoresPerSocket; c++ {
					core := s*m.CoresPerSocket + c
					m.cpus[id] = CPU{ID: id, Socket: m.socketID(s), Core: core, SMT: smt}
					if smt == 0 {
						m.byCore[core] = id
					}
					id++
				}
			}
		}
	case EnumCompact:
		for s := 0; s < m.Sockets; s++ {
			for c := 0; c < m.CoresPerSocket; c++ {
				core := s*m.CoresPerSocket + c
				for smt := 0; smt < m.ThreadsPerCore; smt++ {
					m.cpus[id] = CPU{ID: id, Socket: m.socketID(s), Core: core, SMT: smt}
					if smt == 0 {
						m.byCore[core] = id
					}
					id++
				}
			}
		}
	default:
		panic(fmt.Sprintf("topology: unknown enumeration %d", m.Enum))
	}
}

// socketID maps a dense socket position to its OS label.
func (m *Machine) socketID(s int) int {
	if m.SocketIDs != nil {
		return m.SocketIDs[s]
	}
	return s
}

// Distance quantifies communication cost between two logical CPUs:
//
//	0 — same logical CPU
//	1 — SMT siblings (shared L1/L2 on Haswell, shared L1 on Phi)
//	2 — same socket, different core (shared L3 / L2 ring)
//	3 — different socket (cross-NUMA)
func (m *Machine) Distance(a, b int) int {
	cpus := m.CPUs()
	ca, cb := cpus[a], cpus[b]
	switch {
	case ca.ID == cb.ID:
		return 0
	case ca.Core == cb.Core:
		return 1
	case ca.Socket == cb.Socket:
		return 2
	default:
		return 3
	}
}

// SharedCacheLevel returns the innermost cache level shared by the two
// logical CPUs, or 0 when they share no cache (cross-socket with no global
// level; communication then goes through memory).
func (m *Machine) SharedCacheLevel(a, b int) int {
	d := m.Distance(a, b)
	for _, c := range m.Caches {
		switch c.Scope {
		case ScopePerCore:
			if d <= 1 {
				return c.Level
			}
		case ScopePerSocket:
			if d <= 2 {
				return c.Level
			}
		case ScopeGlobal:
			return c.Level
		}
	}
	return 0
}

// TransferLatency estimates the cycles for one cache line to move from
// producer CPU a to consumer CPU b, used by the discrete-event model. The
// shape matters more than the absolute value: sibling threads talk through
// L1/L2, same-socket cores through L3, remote cores through memory plus the
// interconnect penalty.
func (m *Machine) TransferLatency(a, b int) int {
	lvl := m.SharedCacheLevel(a, b)
	if lvl == 0 {
		return m.MemLatencyCycles + m.CrossSocketPenaltyCycles
	}
	for _, c := range m.Caches {
		if c.Level == lvl {
			lat := c.LatencyCycles
			if m.Distance(a, b) == 3 {
				lat += m.CrossSocketPenaltyCycles
			}
			return lat
		}
	}
	return m.MemLatencyCycles
}

// Cache returns the descriptor of the given level and true, or a zero value
// and false when the machine has no such level.
func (m *Machine) Cache(level int) (CacheLevel, bool) {
	for _, c := range m.Caches {
		if c.Level == level {
			return c, true
		}
	}
	return CacheLevel{}, false
}

// LocalityGroups partitions the logical CPUs by NUMA node, returning one
// slice of logical ids per node, in ascending socket-label order. RAMR
// keeps one task queue per locality group so mappers dequeue NUMA-local
// splits. Group positions are dense even when socket labels are not; use
// GroupOf to translate a CPU into its group index.
func (m *Machine) LocalityGroups() [][]int {
	groups := make([][]int, m.Sockets)
	for _, c := range m.CPUs() {
		g := m.groupOf[c.Socket]
		groups[g] = append(groups[g], c.ID)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

// GroupOf returns the locality-group index (the CPU's position in
// LocalityGroups) of the given logical CPU. The second result is false
// when the id is out of range. The group index — not the raw CPU.Socket
// label — is what task-queue steering must use: on machines with
// non-dense socket numbering the label can exceed the group count.
func (m *Machine) GroupOf(cpuID int) (int, bool) {
	cpus := m.CPUs()
	if cpuID < 0 || cpuID >= len(cpus) {
		return 0, false
	}
	g, ok := m.groupOf[cpus[cpuID].Socket]
	return g, ok
}

// StealClass buckets a work-steal by the communication distance between
// the thief's locality group and the victim's, mirroring Distance but at
// group granularity. Telemetry counts steals per class so skew reports can
// separate cheap cache-local rebalancing from expensive cross-NUMA moves.
type StealClass int

const (
	// StealLocal is a take from the thief's own group deque (not a steal
	// in the strict sense; counted so local/remote ratios are computable).
	StealLocal StealClass = iota
	// StealSocket is a steal between groups that still share a cache
	// level (the Xeon Phi ring of L2 slices spans all groups), so the
	// stolen splits stay LLC-resident.
	StealSocket
	// StealRemote is a steal between groups with no shared cache: the
	// splits cross the interconnect and fault into the thief's node.
	StealRemote
	// NumStealClasses sizes per-class counter arrays.
	NumStealClasses = 3
)

// String returns the class label used in metrics ("local", "socket",
// "remote").
func (c StealClass) String() string {
	switch c {
	case StealLocal:
		return "local"
	case StealSocket:
		return "socket"
	case StealRemote:
		return "remote"
	default:
		return fmt.Sprintf("StealClass(%d)", int(c))
	}
}

// groupRep returns the representative logical CPU (lowest id) of locality
// group g, for group-to-group distance queries.
func (m *Machine) groupRep(g int) int {
	return m.LocalityGroups()[g][0]
}

// GroupStealClass classifies a steal from group `from` (the thief) out of
// group `victim`. Locality groups are NUMA nodes, so any cross-group pair
// is Distance 3; what actually differentiates the cost is whether a cache
// level still spans both groups (ScopeGlobal LLC) or the line must travel
// through memory.
func (m *Machine) GroupStealClass(from, victim int) StealClass {
	if from == victim {
		return StealLocal
	}
	if m.SharedCacheLevel(m.groupRep(from), m.groupRep(victim)) > 0 {
		return StealSocket
	}
	return StealRemote
}

// VictimOrder precomputes, for every locality group, the other groups
// sorted by ascending transfer cost from that group's CPUs — the order in
// which an idle mapper should probe for work to steal. Cost is the
// TransferLatency between group representatives (which folds in shared
// cache levels and the cross-socket penalty); ties break by ring distance
// (victim-from mod n) so equal-cost victims are spread deterministically
// instead of all thieves converging on group 0.
func (m *Machine) VictimOrder() [][]int {
	n := len(m.LocalityGroups())
	order := make([][]int, n)
	for g := 0; g < n; g++ {
		victims := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != g {
				victims = append(victims, v)
			}
		}
		rep := m.groupRep(g)
		sort.Slice(victims, func(i, j int) bool {
			a, b := victims[i], victims[j]
			la := m.TransferLatency(rep, m.groupRep(a))
			lb := m.TransferLatency(rep, m.groupRep(b))
			if la != lb {
				return la < lb
			}
			return (a-g+n)%n < (b-g+n)%n
		})
		order[g] = victims
	}
	return order
}

// CompactOrder returns logical CPU ids reordered so that consecutive
// positions are physically adjacent: the SMT siblings of a core first, then
// the next core of the same socket, then the next socket. This is the
// thridtocpu() remapping of the paper's Fig. 3: pinning thread t to
// CompactOrder()[t] makes the pairs (2i, 2i+1) share a physical core on a
// 2-way SMT machine.
func (m *Machine) CompactOrder() []int {
	cpus := append([]CPU(nil), m.CPUs()...)
	sort.Slice(cpus, func(i, j int) bool {
		a, b := cpus[i], cpus[j]
		if a.Socket != b.Socket {
			return a.Socket < b.Socket
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return a.SMT < b.SMT
	})
	out := make([]int, len(cpus))
	for i, c := range cpus {
		out[i] = c.ID
	}
	return out
}

// ScatterOrder returns logical CPU ids in a round-robin order across
// sockets and cores (first thread of core 0 of socket 0, then core 0 of
// socket 1, ...). It is the "RR" baseline pinning of §IV-B.
func (m *Machine) ScatterOrder() []int {
	cpus := append([]CPU(nil), m.CPUs()...)
	sort.Slice(cpus, func(i, j int) bool {
		a, b := cpus[i], cpus[j]
		if a.SMT != b.SMT {
			return a.SMT < b.SMT
		}
		coreInSocketA := a.Core % m.CoresPerSocket
		coreInSocketB := b.Core % m.CoresPerSocket
		if coreInSocketA != coreInSocketB {
			return coreInSocketA < coreInSocketB
		}
		if a.Socket != b.Socket {
			return a.Socket < b.Socket
		}
		return a.ID < b.ID
	})
	out := make([]int, len(cpus))
	for i, c := range cpus {
		out[i] = c.ID
	}
	return out
}

// Validate checks internal consistency of the description.
func (m *Machine) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 || m.ThreadsPerCore <= 0 {
		return fmt.Errorf("topology: %s: non-positive dimensions %d/%d/%d",
			m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore)
	}
	if len(m.Caches) == 0 {
		return fmt.Errorf("topology: %s: no cache levels", m.Name)
	}
	if m.SocketIDs != nil {
		if len(m.SocketIDs) != m.Sockets {
			return fmt.Errorf("topology: %s: %d socket ids for %d sockets", m.Name, len(m.SocketIDs), m.Sockets)
		}
		for i := 1; i < len(m.SocketIDs); i++ {
			if m.SocketIDs[i] <= m.SocketIDs[i-1] {
				return fmt.Errorf("topology: %s: socket ids must strictly ascend, got %v", m.Name, m.SocketIDs)
			}
		}
	}
	prev := 0
	for _, c := range m.Caches {
		if c.Level <= prev {
			return fmt.Errorf("topology: %s: cache levels must ascend, got L%d after L%d", m.Name, c.Level, prev)
		}
		if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
			return fmt.Errorf("topology: %s: invalid L%d geometry", m.Name, c.Level)
		}
		prev = c.Level
	}
	return nil
}

// String summarizes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d socket(s) x %d core(s) x %d thread(s) = %d logical CPUs",
		m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.NumCPUs())
}
