package topology

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for name, f := range Presets() {
		m := f()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := Flat(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHaswellDimensions(t *testing.T) {
	m := HaswellServer()
	if m.NumCPUs() != 56 || m.NumCores() != 28 {
		t.Fatalf("Haswell: %d cpus / %d cores, want 56/28", m.NumCPUs(), m.NumCores())
	}
	// SMT-last numbering: cpu 0 and cpu 28 share a physical core.
	if m.Distance(0, 28) != 1 {
		t.Fatalf("cpu 0 and 28 should be SMT siblings, distance %d", m.Distance(0, 28))
	}
	// cpu 0 and cpu 1 are different cores on socket 0.
	if m.Distance(0, 1) != 2 {
		t.Fatalf("cpu 0 and 1 distance = %d, want 2", m.Distance(0, 1))
	}
	// cpu 0 (socket 0) and cpu 14 (socket 1) are cross-socket.
	if m.Distance(0, 14) != 3 {
		t.Fatalf("cpu 0 and 14 distance = %d, want 3", m.Distance(0, 14))
	}
	if m.Distance(5, 5) != 0 {
		t.Fatal("distance to self should be 0")
	}
}

func TestXeonPhiDimensions(t *testing.T) {
	m := XeonPhi()
	if m.NumCPUs() != 228 || m.NumCores() != 57 {
		t.Fatalf("Phi: %d cpus / %d cores, want 228/57", m.NumCPUs(), m.NumCores())
	}
	// Compact numbering: cpus 0..3 are the four threads of core 0.
	for i := 1; i < 4; i++ {
		if m.Distance(0, i) != 1 {
			t.Fatalf("cpu 0 and %d should share core 0", i)
		}
	}
	if m.Distance(0, 4) != 2 {
		t.Fatalf("cpu 0 and 4 should be different cores, same die")
	}
	// The global L2 is shared by any pair.
	if m.SharedCacheLevel(0, 227) != 2 {
		t.Fatalf("ring L2 should be shared machine-wide, got L%d", m.SharedCacheLevel(0, 227))
	}
}

func TestSharedCacheLevelHaswell(t *testing.T) {
	m := HaswellServer()
	if lvl := m.SharedCacheLevel(0, 28); lvl != 1 {
		t.Fatalf("SMT siblings should share L1, got L%d", lvl)
	}
	if lvl := m.SharedCacheLevel(0, 1); lvl != 3 {
		t.Fatalf("same-socket cores should share L3, got L%d", lvl)
	}
	if lvl := m.SharedCacheLevel(0, 14); lvl != 0 {
		t.Fatalf("cross-socket pair should share nothing, got L%d", lvl)
	}
}

func TestTransferLatencyMonotone(t *testing.T) {
	m := HaswellServer()
	sib := m.TransferLatency(0, 28)
	sock := m.TransferLatency(0, 1)
	cross := m.TransferLatency(0, 14)
	if !(sib < sock && sock < cross) {
		t.Fatalf("latency not monotone in distance: %d, %d, %d", sib, sock, cross)
	}
}

// TestCompactOrderAdjacency is the Fig. 3 property: consecutive compact
// positions share a physical core (for every even index on 2-way SMT).
func TestCompactOrderAdjacency(t *testing.T) {
	for _, m := range []*Machine{HaswellServer(), Fig3Example()} {
		order := m.CompactOrder()
		if len(order) != m.NumCPUs() {
			t.Fatalf("%s: compact order covers %d of %d cpus", m.Name, len(order), m.NumCPUs())
		}
		for i := 0; i+1 < len(order); i += 2 {
			if m.Distance(order[i], order[i+1]) != 1 {
				t.Fatalf("%s: compact[%d]=%d and compact[%d]=%d do not share a core",
					m.Name, i, order[i], i+1, order[i+1])
			}
		}
	}
}

// TestFig3Remap pins the example of the paper's Fig. 3: two nodes, four
// cores each, 2-way SMT with SMT-last ids. The remapped pairs (2i, 2i+1)
// must land on one physical core, and the first node's eight compact slots
// must stay on node 0.
func TestFig3Remap(t *testing.T) {
	m := Fig3Example()
	order := m.CompactOrder()
	cpus := m.CPUs()
	for i := 0; i < 8; i++ {
		if cpus[order[i]].Socket != 0 {
			t.Fatalf("compact[%d]=%d should be on node 0", i, order[i])
		}
	}
	for i := 8; i < 16; i++ {
		if cpus[order[i]].Socket != 1 {
			t.Fatalf("compact[%d]=%d should be on node 1", i, order[i])
		}
	}
	// SMT-last: cpu k and cpu k+8 are siblings, so the remap interleaves
	// them: 0,8,1,9,2,10,...
	want := []int{0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15}
	for i, cpu := range order {
		if cpu != want[i] {
			t.Fatalf("compact order[%d] = %d, want %d (full: %v)", i, cpu, want[i], order)
		}
	}
}

func TestScatterOrderSpreadsSockets(t *testing.T) {
	m := HaswellServer()
	order := m.ScatterOrder()
	cpus := m.CPUs()
	// The first two scatter positions must hit both sockets.
	if cpus[order[0]].Socket == cpus[order[1]].Socket {
		t.Fatalf("scatter order does not alternate sockets: %v", order[:4])
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, c := range order {
		if seen[c] {
			t.Fatalf("duplicate cpu %d in scatter order", c)
		}
		seen[c] = true
	}
}

func TestLocalityGroups(t *testing.T) {
	m := HaswellServer()
	groups := m.LocalityGroups()
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	total := 0
	for s, g := range groups {
		total += len(g)
		for _, cpu := range g {
			c, err := m.CPUByID(cpu)
			if err != nil {
				t.Fatal(err)
			}
			if c.Socket != s {
				t.Fatalf("cpu %d in group %d but on socket %d", cpu, s, c.Socket)
			}
		}
	}
	if total != m.NumCPUs() {
		t.Fatalf("groups cover %d cpus, want %d", total, m.NumCPUs())
	}
}

func TestCPUByIDBounds(t *testing.T) {
	m := Fig3Example()
	if _, err := m.CPUByID(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := m.CPUByID(16); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	c, err := m.CPUByID(0)
	if err != nil || c.ID != 0 {
		t.Fatalf("CPUByID(0) = %+v, %v", c, err)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	for name, m := range map[string]*Machine{
		"no-caches":   {Name: "x", Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		"zero-cores":  {Name: "x", Sockets: 1, CoresPerSocket: 0, ThreadsPerCore: 1, Caches: HaswellServer().Caches},
		"level-order": {Name: "x", Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1, Caches: []CacheLevel{{Level: 2, SizeBytes: 1, LineBytes: 1, Assoc: 1}, {Level: 1, SizeBytes: 1, LineBytes: 1, Assoc: 1}}},
		"bad-geometry": {Name: "x", Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1,
			Caches: []CacheLevel{{Level: 1, SizeBytes: 0, LineBytes: 64, Assoc: 8}}},
	} {
		if err := m.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a broken machine", name)
		}
	}
}

// TestQuickDistanceSymmetry: distance is symmetric and bounded for random
// machine shapes.
func TestQuickDistanceSymmetry(t *testing.T) {
	f := func(sock, cores, smt uint8, a, b uint16) bool {
		m := &Machine{
			Name:           "q",
			Sockets:        int(sock%3) + 1,
			CoresPerSocket: int(cores%8) + 1,
			ThreadsPerCore: int(smt%4) + 1,
			Enum:           Enumeration(int(sock) % 2),
			Caches:         Flat(1).Caches,
		}
		n := m.NumCPUs()
		x, y := int(a)%n, int(b)%n
		d1, d2 := m.Distance(x, y), m.Distance(y, x)
		if d1 != d2 || d1 < 0 || d1 > 3 {
			return false
		}
		return (x == y) == (d1 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScopeString(t *testing.T) {
	for s, want := range map[Scope]string{
		ScopePerThread: "per-thread",
		ScopePerCore:   "per-core",
		ScopePerSocket: "per-socket",
		ScopeGlobal:    "global",
	} {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	if Scope(9).String() == "" {
		t.Fatal("unknown scope should render")
	}
}

func TestMachineString(t *testing.T) {
	if s := HaswellServer().String(); s == "" {
		t.Fatal("empty String()")
	}
}

// nonDense builds a two-socket machine whose firmware numbers its packages
// 0 and 2 — the gap real hosts get from offline NUMA nodes or sub-NUMA
// clustering.
func nonDense() *Machine {
	m := HaswellServer()
	m.Name = "haswell-non-dense"
	m.SocketIDs = []int{0, 2}
	return m
}

// TestLocalityGroupsNonDenseSockets pins that group positions stay dense
// (0..Sockets-1) even when socket labels are not: the old label-as-index
// scheme would have indexed groups[2] out of a 2-element slice.
func TestLocalityGroupsNonDenseSockets(t *testing.T) {
	m := nonDense()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := m.LocalityGroups()
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	total := 0
	wantLabel := []int{0, 2}
	for g, cpus := range groups {
		total += len(cpus)
		for _, id := range cpus {
			c, err := m.CPUByID(id)
			if err != nil {
				t.Fatal(err)
			}
			if c.Socket != wantLabel[g] {
				t.Fatalf("cpu %d in group %d carries socket label %d, want %d", id, g, c.Socket, wantLabel[g])
			}
		}
	}
	if total != m.NumCPUs() {
		t.Fatalf("groups cover %d cpus, want %d", total, m.NumCPUs())
	}
}

// TestGroupOfNonDenseSockets: GroupOf translates every CPU to a dense group
// index consistent with its position in LocalityGroups.
func TestGroupOfNonDenseSockets(t *testing.T) {
	m := nonDense()
	groups := m.LocalityGroups()
	for g, cpus := range groups {
		for _, id := range cpus {
			got, ok := m.GroupOf(id)
			if !ok || got != g {
				t.Fatalf("GroupOf(%d) = %d,%v, want %d,true", id, got, ok, g)
			}
		}
	}
	if _, ok := m.GroupOf(-1); ok {
		t.Fatal("GroupOf accepted a negative id")
	}
	if _, ok := m.GroupOf(m.NumCPUs()); ok {
		t.Fatal("GroupOf accepted an out-of-range id")
	}
}

// TestValidateSocketIDs: the label list must match the socket count and
// strictly ascend.
func TestValidateSocketIDs(t *testing.T) {
	short := HaswellServer()
	short.SocketIDs = []int{0}
	if err := short.Validate(); err == nil {
		t.Fatal("short SocketIDs accepted")
	}
	dup := HaswellServer()
	dup.SocketIDs = []int{1, 1}
	if err := dup.Validate(); err == nil {
		t.Fatal("non-ascending SocketIDs accepted")
	}
}
