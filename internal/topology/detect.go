package topology

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// phys identifies a physical core by (socket, core-id) pair as sysfs
// reports it.
type phys struct{ socket, core int }

// Detect builds a Machine description of the current host from Linux sysfs
// (/sys/devices/system/cpu). Detection is best-effort: on non-Linux hosts,
// inside restricted containers, or on irregular topologies (heterogeneous
// core counts per socket) it falls back to Flat(runtime.NumCPU()).
//
// The fallback is deliberate rather than an error — the runtime degrades to
// topology-oblivious pinning instead of refusing to run, mirroring how the
// paper's library behaves when setaffinity is unavailable.
func Detect() *Machine {
	m, err := detectSysfs("/sys/devices/system/cpu")
	if err != nil {
		return Flat(runtime.NumCPU())
	}
	return m
}

// detectSysfs parses the topology directory rooted at base. Split out from
// Detect so tests can point it at a fixture tree.
func detectSysfs(base string) (*Machine, error) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, fmt.Errorf("topology: read %s: %w", base, err)
	}
	cpuPhys := map[int]phys{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		id, err := strconv.Atoi(name[3:])
		if err != nil {
			continue // cpufreq, cpuidle, ...
		}
		sock, err := readIntFile(base + "/" + name + "/topology/physical_package_id")
		if err != nil {
			return nil, err
		}
		core, err := readIntFile(base + "/" + name + "/topology/core_id")
		if err != nil {
			return nil, err
		}
		cpuPhys[id] = phys{sock, core}
	}
	if len(cpuPhys) == 0 {
		return nil, fmt.Errorf("topology: no cpus under %s", base)
	}

	sockets := map[int]bool{}
	coreThreads := map[phys]int{}
	coresPerSocket := map[int]map[int]bool{}
	for _, p := range cpuPhys {
		sockets[p.socket] = true
		coreThreads[p]++
		if coresPerSocket[p.socket] == nil {
			coresPerSocket[p.socket] = map[int]bool{}
		}
		coresPerSocket[p.socket][p.core] = true
	}

	// Require a regular machine: equal cores per socket and equal
	// threads per core, or the rectangular Machine model cannot
	// represent it.
	var cps, tpc int
	for _, cores := range coresPerSocket {
		if cps == 0 {
			cps = len(cores)
		} else if cps != len(cores) {
			return nil, fmt.Errorf("topology: irregular cores-per-socket")
		}
	}
	for _, t := range coreThreads {
		if tpc == 0 {
			tpc = t
		} else if tpc != t {
			return nil, fmt.Errorf("topology: irregular threads-per-core")
		}
	}

	enum, err := classifyEnumeration(cpuPhys, tpc)
	if err != nil {
		return nil, err
	}

	// Preserve the real package ids: firmware may number sockets with
	// gaps (offline nodes, sub-NUMA clustering), and the locality-group
	// machinery distinguishes socket labels from dense group indices.
	socketIDs := make([]int, 0, len(sockets))
	for id := range sockets {
		socketIDs = append(socketIDs, id)
	}
	sort.Ints(socketIDs)

	m := &Machine{
		Name:           "detected-host",
		Sockets:        len(sockets),
		CoresPerSocket: cps,
		ThreadsPerCore: tpc,
		Enum:           enum,
		SocketIDs:      socketIDs,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 4},
			{Level: 2, SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8, Scope: ScopePerCore, LatencyCycles: 12},
			{Level: 3, SizeBytes: 16 << 20, LineBytes: 64, Assoc: 16, Scope: ScopePerSocket, LatencyCycles: 40},
		},
		MemLatencyCycles:         220,
		CrossSocketPenaltyCycles: 100,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// classifyEnumeration decides whether the host numbers SMT siblings
// consecutively (EnumCompact) or lists all first threads before any sibling
// (EnumSMTLast) by checking whether cpu0 and cpu1 share a physical core.
func classifyEnumeration(cpuPhys map[int]phys, tpc int) (Enumeration, error) {
	if tpc == 1 {
		return EnumCompact, nil
	}
	ids := make([]int, 0, len(cpuPhys))
	for id := range cpuPhys {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) < 2 {
		return EnumCompact, nil
	}
	a, b := cpuPhys[ids[0]], cpuPhys[ids[1]]
	if a == b {
		return EnumCompact, nil
	}
	return EnumSMTLast, nil
}

func readIntFile(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("topology: %w", err)
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, fmt.Errorf("topology: parse %s: %w", path, err)
	}
	return v, nil
}
