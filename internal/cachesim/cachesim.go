// Package cachesim is a trace-driven, multi-level, set-associative cache
// simulator with LRU replacement and a simple stream prefetcher. It is the
// substrate under the performance-counter model (internal/perfmodel): the
// paper reads IPB/MSPI/RSPI from hardware PMCs, which are unavailable
// here, so an architectural model supplies the same counters from the
// applications' access streams (see DESIGN.md, substitution table).
package cachesim

import (
	"fmt"

	"ramr/internal/topology"
)

// LevelStats counts events at one cache level.
type LevelStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Prefetched uint64 // hits served early by the stream prefetcher
}

// level is one set-associative cache.
type level struct {
	sets     int
	ways     int
	lineBits uint
	latency  int
	tags     [][]uint64 // [set][way] line address; 0 means empty
	lru      [][]uint64 // [set][way] last-use tick
	stats    LevelStats
}

func newLevel(c topology.CacheLevel) *level {
	lines := c.SizeBytes / c.LineBytes
	ways := c.Assoc
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	lb := uint(0)
	for 1<<lb < c.LineBytes {
		lb++
	}
	l := &level{sets: sets, ways: ways, lineBits: lb, latency: c.LatencyCycles}
	l.tags = make([][]uint64, sets)
	l.lru = make([][]uint64, sets)
	for s := range l.tags {
		l.tags[s] = make([]uint64, ways)
		l.lru[s] = make([]uint64, ways)
	}
	return l
}

// lookup probes the level; on hit it refreshes LRU state.
func (l *level) lookup(line, tick uint64) bool {
	set := line % uint64(l.sets)
	for w, t := range l.tags[set] {
		if t == line+1 { // +1 so a zero tag means empty
			l.lru[set][w] = tick
			l.stats.Hits++
			return true
		}
	}
	l.stats.Misses++
	return false
}

// install fills the line, evicting the LRU way.
func (l *level) install(line, tick uint64) {
	set := line % uint64(l.sets)
	victim, oldest := 0, ^uint64(0)
	for w, t := range l.tags[set] {
		if t == 0 {
			victim = w
			oldest = 0
			break
		}
		if l.lru[set][w] < oldest {
			victim, oldest = w, l.lru[set][w]
		}
	}
	if l.tags[set][victim] != 0 {
		l.stats.Evictions++
	}
	l.tags[set][victim] = line + 1
	l.lru[set][victim] = tick
}

// streamEntry is one detected sequential stream for the prefetcher.
type streamEntry struct {
	nextLine uint64
	hits     int
}

// Hierarchy is one hardware thread's view of the cache hierarchy.
type Hierarchy struct {
	levels     []*level
	memLatency int
	tick       uint64
	streams    [8]streamEntry
	nextStream int
}

// New builds a hierarchy from a machine's cache levels. Shared levels are
// modeled at full capacity; contention between threads is accounted for by
// the higher layers (perfmodel divides effective capacity by the number of
// resident threads where relevant).
func New(m *topology.Machine) (*Hierarchy, error) {
	if len(m.Caches) == 0 {
		return nil, fmt.Errorf("cachesim: machine %s has no cache levels", m.Name)
	}
	h := &Hierarchy{memLatency: m.MemLatencyCycles}
	for _, c := range m.Caches {
		h.levels = append(h.levels, newLevel(c))
	}
	return h, nil
}

// NewScaled builds a hierarchy whose every level capacity is divided by
// div — the per-thread effective share when div threads co-reside on the
// cache. div < 1 is treated as 1.
func NewScaled(m *topology.Machine, div int) (*Hierarchy, error) {
	if div < 1 {
		div = 1
	}
	scaled := *m
	scaled.Caches = append([]topology.CacheLevel(nil), m.Caches...)
	for i := range scaled.Caches {
		scaled.Caches[i].SizeBytes = clampLevel(scaled.Caches[i], div)
	}
	return New(&scaled)
}

// NewPerThread builds one hardware thread's *fair-share* view of the
// hierarchy under full machine occupancy: each level's capacity is divided
// by the number of threads that share it (SMT siblings for per-core
// levels, the whole socket for per-socket levels, every thread for global
// levels). This is what makes the per-thread cache budget of a 228-thread
// Xeon Phi so much smaller than a Haswell thread's — the effect behind the
// paper's Fig. 7 batch-size findings.
func NewPerThread(m *topology.Machine) (*Hierarchy, error) {
	scaled := *m
	scaled.Caches = append([]topology.CacheLevel(nil), m.Caches...)
	for i := range scaled.Caches {
		div := 1
		switch scaled.Caches[i].Scope {
		case topology.ScopePerCore:
			div = m.ThreadsPerCore
		case topology.ScopePerSocket:
			div = m.ThreadsPerCore * m.CoresPerSocket
		case topology.ScopeGlobal:
			div = m.NumCPUs()
		}
		scaled.Caches[i].SizeBytes = clampLevel(scaled.Caches[i], div)
	}
	return New(&scaled)
}

// clampLevel divides a level's size by div without dropping below one
// full set row.
func clampLevel(c topology.CacheLevel, div int) int {
	sz := c.SizeBytes / div
	if min := c.LineBytes * c.Assoc; sz < min {
		sz = min
	}
	return sz
}

// L1Latency returns the first-level hit latency.
func (h *Hierarchy) L1Latency() int { return h.levels[0].latency }

// MemLatency returns the DRAM latency.
func (h *Hierarchy) MemLatency() int { return h.memLatency }

// Access simulates one access to addr and returns its latency in cycles.
// Sequential streams detected by the prefetcher are served at L1 latency
// regardless of residency, modeling a hardware stride prefetcher hiding
// streaming misses — without this, Histogram's sequential byte scan would
// look memory-bound, which contradicts both common sense and the paper's
// Fig. 10 (HG shows *few* stalls with the default container).
func (h *Hierarchy) Access(addr uint64) int {
	h.tick++
	line := addr >> h.levels[0].lineBits

	// Stream prefetcher: match against tracked streams.
	for i := range h.streams {
		s := &h.streams[i]
		if s.hits > 0 && line >= s.nextLine && line <= s.nextLine+2 {
			s.nextLine = line + 1
			s.hits++
			// Warm the caches as the prefetcher would.
			for _, l := range h.levels {
				if !l.lookup(line, h.tick) {
					l.install(line, h.tick)
				} else {
					break
				}
			}
			if s.hits > 2 {
				h.levels[0].stats.Prefetched++
				return h.levels[0].latency
			}
			break
		}
	}

	lat := 0
	for _, l := range h.levels {
		lat = l.latency
		if l.lookup(line, h.tick) {
			h.fill(line)
			h.noteStream(line)
			return lat
		}
	}
	h.fill(line)
	h.noteStream(line)
	return h.memLatency
}

// fill installs the line in every level that missed it (inclusive caches).
func (h *Hierarchy) fill(line uint64) {
	for _, l := range h.levels {
		set := line % uint64(l.sets)
		found := false
		for _, t := range l.tags[set] {
			if t == line+1 {
				found = true
				break
			}
		}
		if !found {
			l.install(line, h.tick)
		}
	}
}

// noteStream trains the prefetcher on the access.
func (h *Hierarchy) noteStream(line uint64) {
	for i := range h.streams {
		s := &h.streams[i]
		if s.hits > 0 && (line == s.nextLine || line+1 == s.nextLine) {
			s.nextLine = line + 1
			s.hits++
			return
		}
	}
	h.streams[h.nextStream] = streamEntry{nextLine: line + 1, hits: 1}
	h.nextStream = (h.nextStream + 1) % len(h.streams)
}

// Stats returns per-level statistics, innermost first.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.stats
	}
	return out
}

// Reset clears contents and statistics.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		for s := range l.tags {
			for w := range l.tags[s] {
				l.tags[s][w] = 0
				l.lru[s][w] = 0
			}
		}
		l.stats = LevelStats{}
	}
	h.tick = 0
	h.streams = [8]streamEntry{}
}
