package cachesim

import (
	"testing"

	"ramr/internal/topology"
)

// tiny builds a machine with a small, analyzable hierarchy: L1 = 4 sets x
// 2 ways x 64B = 512B, L2 = 4KiB.
func tiny() *topology.Machine {
	return &topology.Machine{
		Name: "tiny", Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1,
		Enum: topology.EnumCompact,
		Caches: []topology.CacheLevel{
			{Level: 1, SizeBytes: 512, LineBytes: 64, Assoc: 2, Scope: topology.ScopePerCore, LatencyCycles: 4},
			{Level: 2, SizeBytes: 4096, LineBytes: 64, Assoc: 4, Scope: topology.ScopePerCore, LatencyCycles: 12},
		},
		MemLatencyCycles: 200,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h, err := New(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if lat := h.Access(0x10000); lat != 200 {
		t.Fatalf("cold access latency = %d, want memory 200", lat)
	}
	if lat := h.Access(0x10000); lat != 4 {
		t.Fatalf("second access latency = %d, want L1 4", lat)
	}
	st := h.Stats()
	if st[0].Hits != 1 || st[0].Misses != 1 {
		t.Fatalf("L1 stats: %+v", st[0])
	}
}

func TestSameLineSharesResidency(t *testing.T) {
	h, _ := New(tiny())
	h.Access(0x20000)
	if lat := h.Access(0x20001); lat != 4 {
		t.Fatalf("same-line access missed: %d", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	h, _ := New(tiny())
	// Three lines mapping to the same L1 set (set count 4, so stride
	// 4*64 = 256B). Use a large stride so the prefetcher sees no stream.
	a, b, c := uint64(0x0), uint64(0x10100), uint64(0x20200)
	// Align all three to set 0: line index multiples of 4.
	a, b, c = 0, 4*64*100, 4*64*200
	h.Access(a)
	h.Access(b)
	h.Access(c) // evicts a (LRU) from L1
	if lat := h.Access(b); lat != 4 {
		t.Fatalf("b should be L1 resident, got %d", lat)
	}
	if lat := h.Access(a); lat == 4 {
		t.Fatal("a should have been evicted from L1")
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	h, _ := New(tiny())
	a := uint64(0)
	h.Access(a)
	// Evict a from L1 set 0 (lines = multiples of 4 with L1's 4 sets)
	// while leaving L2 set 0 untouched (skip multiples of 16, L2's set
	// count): lines 4, 8, 12, 20, 24, 28 all land in L1 set 0 but L2
	// sets 4/8/12.
	for _, line := range []uint64{4, 8, 12, 20, 24, 28} {
		h.Access(line * 64)
	}
	if lat := h.Access(a); lat != 12 {
		t.Fatalf("a should hit L2 (12), got %d", lat)
	}
}

func TestPrefetcherHidesStreams(t *testing.T) {
	h, _ := New(tiny())
	misses := 0
	for i := 0; i < 4096; i++ {
		if h.Access(uint64(0x100000+i)) > 4 {
			misses++
		}
	}
	// A sequential byte scan of 64 lines should cost at most a handful of
	// demand misses before the stream is detected.
	if misses > 6 {
		t.Fatalf("stream scan took %d slow accesses", misses)
	}
	if h.Stats()[0].Prefetched == 0 {
		t.Fatal("prefetcher never engaged")
	}
}

func TestScatterDefeatsPrefetcher(t *testing.T) {
	h, _ := New(tiny())
	slow := 0
	x := uint64(12345)
	for i := 0; i < 512; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if h.Access(x%(1<<28)) > 12 {
			slow++
		}
	}
	if slow < 256 {
		t.Fatalf("scattered accesses over 256MB should mostly miss, got %d slow", slow)
	}
}

func TestReset(t *testing.T) {
	h, _ := New(tiny())
	h.Access(0x30000)
	h.Reset()
	if lat := h.Access(0x30000); lat != 200 {
		t.Fatalf("after Reset the access should be cold, got %d", lat)
	}
	if st := h.Stats(); st[0].Misses != 1 || st[0].Hits != 0 {
		t.Fatalf("stats not reset: %+v", st[0])
	}
}

func TestNewValidation(t *testing.T) {
	m := tiny()
	m.Caches = nil
	if _, err := New(m); err == nil {
		t.Fatal("machine without caches accepted")
	}
}

func TestNewScaledShrinks(t *testing.T) {
	h1, _ := New(tiny())
	h2, err := NewScaled(tiny(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill 6 scattered lines: fits full L1 (8 lines), overflows the
	// quarter-capacity L1 (2 lines min... clamped to assoc row = 2 lines).
	probe := func(h *Hierarchy) int {
		slow := 0
		addrs := []uint64{0, 1 << 12, 2 << 12, 3 << 12, 4 << 12, 5 << 12}
		for _, a := range addrs {
			h.Access(a)
		}
		for _, a := range addrs {
			if h.Access(a) > 4 {
				slow++
			}
		}
		return slow
	}
	if probe(h1) > probe(h2) {
		t.Fatal("scaled-down hierarchy should miss at least as much")
	}
	if _, err := NewScaled(tiny(), 0); err != nil {
		t.Fatal("div<1 should clamp, not fail")
	}
}

func TestNewPerThreadScopeAware(t *testing.T) {
	m := topology.XeonPhi()
	h, err := NewPerThread(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.L1Latency() != 3 {
		t.Fatalf("L1 latency %d", h.L1Latency())
	}
	if h.MemLatency() != 300 {
		t.Fatalf("mem latency %d", h.MemLatency())
	}
	// The global L2's fair share on a 228-thread Phi is ~128 KiB; a 1 MiB
	// scattered working set must therefore miss heavily.
	var x uint64 = 99
	slow := 0
	for pass := 0; pass < 2; pass++ {
		x = 99
		for i := 0; i < 2048; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			if h.Access(x%(1<<20)) > 24 {
				slow++
			}
		}
	}
	if slow < 512 {
		t.Fatalf("1MiB scatter should overflow the per-thread share, got %d slow", slow)
	}
}
