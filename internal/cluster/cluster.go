// Package cluster is the multi-node tier above the single-machine
// runtime: a coordinator that splits a submitted job into data shards,
// places each shard on a ramrd worker ranked by a link-cost model (the
// topology.VictimOrder idea lifted one level, from cache distance to
// network distance), dispatches the shards over the workers' existing
// HTTP job API, and runs a final reduce merging the per-worker partial
// containers into one result whose output digest is byte-identical to
// the single-node run's.
//
// The design follows the in-node-combining argument (Lee et al.): each
// worker runs the full map+combine pipeline over its shard and only the
// combined key→value container — not raw emissions — crosses the
// network. Shards are identified in the workers' content digests
// (|shard=i/n), so a re-dispatched shard (retry after a transient
// failure, reshard after a worker death) is answered from the worker's
// memo cache when it already ran there.
//
// Failure model: a worker answering 429 (admission queue saturated) is
// skipped for that attempt and the shard re-places onto the next
// candidate in link-cost order; a worker that stops answering is marked
// down and its shards reshard onto the remaining workers; a shard job
// that *fails on the worker* (as opposed to the worker failing) aborts
// the cluster job, because every worker would fail it the same way.
package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ramr/internal/service"
	"ramr/internal/workloads"
)

// Defaults for Config's zero values.
const (
	DefaultRetries        = 3
	DefaultBackoff        = 100 * time.Millisecond
	DefaultPollInterval   = 25 * time.Millisecond
	DefaultRequestTimeout = 10 * time.Second
	DefaultShardTimeout   = 5 * time.Minute
)

// WorkerSpec names one ramrd worker and its link cost.
type WorkerSpec struct {
	// URL is the worker's base URL (e.g. http://127.0.0.1:8080).
	URL string `json:"url"`
	// Cost is the link cost from the coordinator to the worker, in
	// arbitrary units (hops): workers sharing a switch share a cost.
	// Placement ranks candidates by cost distance, so equal-cost workers
	// are interchangeable and farther tiers are spill targets — the
	// network-level mirror of the cache-distance victim order.
	Cost int `json:"cost"`
}

// Config parameterizes a Coordinator.
type Config struct {
	// Workers is the worker set; at least one entry.
	Workers []WorkerSpec
	// Shards is the number of data shards per job; 0 selects one shard
	// per worker.
	Shards int
	// Retries bounds the full passes over a shard's candidate list
	// before the shard (and the job) fails; 0 selects DefaultRetries.
	Retries int
	// Backoff is the base delay between dispatch attempts, doubled per
	// pass; 0 selects DefaultBackoff.
	Backoff time.Duration
	// PollInterval paces result polling on a dispatched shard; 0
	// selects DefaultPollInterval.
	PollInterval time.Duration
	// RequestTimeout bounds each HTTP exchange; 0 selects
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// ShardTimeout bounds one shard's dispatch+execution+poll; 0
	// selects DefaultShardTimeout.
	ShardTimeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one with
	// RequestTimeout.
	Client *http.Client
	// Logger receives the coordinator's structured log lines; nil
	// disables logging.
	Logger *slog.Logger
}

// worker is one worker's live state.
type worker struct {
	spec WorkerSpec

	mu   sync.Mutex
	down bool
}

func (w *worker) isDown() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down
}

func (w *worker) setDown(v bool) {
	w.mu.Lock()
	w.down = v
	w.mu.Unlock()
}

// Coordinator shards jobs across ramrd workers and merges their partial
// results. Safe for concurrent use; worker health is shared across jobs
// (a worker marked down stays skipped until a probe revives it).
type Coordinator struct {
	cfg     Config
	workers []*worker
	client  *http.Client
	log     *slog.Logger
	met     *metrics
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	seen := map[string]bool{}
	for i, w := range cfg.Workers {
		u := strings.TrimRight(strings.TrimSpace(w.URL), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: worker %d has an empty URL", i)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("cluster: worker URL %q must start with http:// or https://", w.URL)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %q", u)
		}
		seen[u] = true
		if w.Cost < 0 {
			return nil, fmt.Errorf("cluster: worker %q has negative link cost %d", u, w.Cost)
		}
		cfg.Workers[i].URL = u
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(cfg.Workers)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Retries < 1 {
		return nil, fmt.Errorf("cluster: retries must be >= 1, got %d", cfg.Retries)
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = DefaultShardTimeout
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		log:    cfg.Logger,
		met:    newMetrics(),
	}
	if c.log == nil {
		c.log = slog.New(slog.DiscardHandler)
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	for _, w := range cfg.Workers {
		c.workers = append(c.workers, &worker{spec: w})
	}
	return c, nil
}

// Workers snapshots the worker set with health flags (the /stats doc).
func (c *Coordinator) Workers() []WorkerStatus {
	out := make([]WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerStatus{URL: w.spec.URL, Cost: w.spec.Cost, Down: w.isDown()}
	}
	return out
}

// Shards returns the resolved shard count per job.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// WorkerStatus is one worker's row in the coordinator's /stats document.
type WorkerStatus struct {
	URL  string `json:"url"`
	Cost int    `json:"cost"`
	Down bool   `json:"down,omitempty"`
}

// placement returns the candidate worker order for one shard —
// topology.VictimOrder lifted to the network level. The home worker is
// shard mod W (spreading a job's shards round-robin); the remaining
// candidates are ranked by ascending link-cost distance from home
// (equal-cost workers — same switch — first, farther tiers as spill
// targets), with cost ties broken by ring order from home so distinct
// shards sharing a home still fan out deterministically but not
// identically.
func (c *Coordinator) placement(shard int) []int {
	w := len(c.workers)
	home := shard % w
	order := make([]int, 0, w)
	for i := 0; i < w; i++ {
		order = append(order, i)
	}
	dist := func(i int) int {
		d := c.workers[i].spec.Cost - c.workers[home].spec.Cost
		if d < 0 {
			d = -d
		}
		return d
	}
	ring := func(i int) int { return (i - home + w) % w }
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if da, db := dist(ia), dist(ib); da != db {
			return da < db
		}
		return ring(ia) < ring(ib)
	})
	return order
}

// shardSpecs enumerates the job's shard coordinates.
func (c *Coordinator) shardSpecs() []workloads.ShardSpec {
	out := make([]workloads.ShardSpec, c.cfg.Shards)
	for i := range out {
		out[i] = workloads.ShardSpec{Index: i, Count: c.cfg.Shards}
	}
	return out
}

// validateRequest checks a client submission for cluster dispatch.
func validateRequest(req *service.JobRequest) error {
	app := strings.ToUpper(strings.TrimSpace(req.Workload))
	if app == "" {
		return fmt.Errorf("workload is required")
	}
	if !workloads.Shardable(app) {
		return fmt.Errorf("workload %s is not shardable (cluster dispatch supports %v: exact integer arithmetic with an associative, commutative merge)",
			app, workloads.ShardableApps())
	}
	if req.Stream != nil {
		return fmt.Errorf("streaming jobs cannot be dispatched across a cluster")
	}
	if req.Shard != nil {
		return fmt.Errorf("shard is coordinator-assigned; clients submit whole jobs")
	}
	return nil
}
