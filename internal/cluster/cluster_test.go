package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ramr/internal/obs"
	"ramr/internal/service"
	"ramr/internal/topology"
	"ramr/internal/workloads"
)

// newWorker boots one in-process ramrd-equivalent: a real service tier
// over a synthetic machine, served from an httptest listener.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{Machine: topology.HaswellServer(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator builds a Coordinator over the given worker URLs with
// test-speed retry knobs.
func newCoordinator(t *testing.T, shards int, urls ...string) *Coordinator {
	t.Helper()
	var specs []WorkerSpec
	for _, u := range urls {
		specs = append(specs, WorkerSpec{URL: u})
	}
	co, err := New(Config{
		Workers:      specs,
		Shards:       shards,
		Retries:      3,
		Backoff:      5 * time.Millisecond,
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// singleNodeDigest runs req unsharded on the worker and returns the
// reference output digest and pair count.
func singleNodeDigest(t *testing.T, workerURL string, req *service.JobRequest) (string, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(workerURL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     int    `json:"id"`
		State  string `json:"state"`
		Error  string `json:"error"`
		Digest string `json:"digest"`
		Pairs  int    `json:"pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/jobs/%d/result", workerURL, doc.ID))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if doc.State != "done" {
				t.Fatalf("reference job settled %q: %s", doc.State, doc.Error)
			}
			return doc.Digest, doc.Pairs
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("reference job did not finish in 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMergedDigestMatchesSingleNode is the acceptance path: a job
// sharded across two workers produces a merged result with the same
// output digest and pair count as the single-node run — for word count
// and histogram, over real Table I inputs.
func TestMergedDigestMatchesSingleNode(t *testing.T) {
	wa, wb := newWorker(t), newWorker(t)
	for _, tc := range []struct {
		app    string
		shards int
	}{
		{"WC", 2},
		{"WC", 5}, // more shards than workers: round-robin stacking
		{"HG", 2},
	} {
		req := &service.JobRequest{Workload: tc.app, Seed: 7, MaxCPUs: 8}
		wantDigest, wantPairs := singleNodeDigest(t, wa.URL, req)
		co := newCoordinator(t, tc.shards, wa.URL, wb.URL)
		res, err := co.Run(context.Background(), req, nil)
		if err != nil {
			t.Fatalf("%s x%d: %v", tc.app, tc.shards, err)
		}
		if res.Digest != wantDigest || res.Pairs != wantPairs {
			t.Fatalf("%s x%d: merged (%d pairs, %s) != single-node (%d pairs, %s)",
				tc.app, tc.shards, res.Pairs, res.Digest, wantPairs, wantDigest)
		}
		if len(res.PerShard) != tc.shards {
			t.Fatalf("%s: %d shard records, want %d", tc.app, len(res.PerShard), tc.shards)
		}
		seen := map[string]bool{}
		for _, sr := range res.PerShard {
			if sr.Worker == "" || sr.JobID == 0 {
				t.Fatalf("%s: shard %s has no dispatch record: %+v", tc.app, sr.Shard, sr)
			}
			seen[sr.Worker] = true
		}
		if tc.shards >= 2 && len(seen) < 2 {
			t.Fatalf("%s x%d: all shards landed on one worker: %v", tc.app, tc.shards, seen)
		}
	}
}

// TestShardMemoHits pins memo reuse across cluster jobs: re-running the
// same request answers every shard from the workers' caches.
func TestShardMemoHits(t *testing.T) {
	wa, wb := newWorker(t), newWorker(t)
	co := newCoordinator(t, 2, wa.URL, wb.URL)
	req := &service.JobRequest{Workload: "SYNTH", Seed: 3, MaxCPUs: 8,
		Synth: service.SynthParams{Elements: 20_000, Keys: 64}}
	first, err := co.Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := co.Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != first.Digest {
		t.Fatalf("repeat run digest %s != %s", again.Digest, first.Digest)
	}
	for _, sr := range again.PerShard {
		if !sr.Cached {
			t.Errorf("shard %s re-ran instead of hitting the worker memo: %+v", sr.Shard, sr)
		}
	}
	if hits := co.met.memoHits.Load(); hits < 2 {
		t.Errorf("memo hit counter %d, want >= 2", hits)
	}
}

// flakyWorker wraps a real worker and simulates a mid-shard death: the
// first shard submission is admitted and forwarded, then every result
// poll (and everything else) fails at the transport level — exactly what
// a killed process looks like to the coordinator.
type flakyWorker struct {
	backend *httptest.Server
	died    atomic.Bool
	posts   atomic.Int64
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.died.Load() {
		// A dead process: sever the connection mid-response.
		hj, ok := w.(http.Hijacker)
		if ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic("flakyWorker: cannot hijack")
	}
	if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
		// Admit the shard for real, then die before it can be polled.
		f.posts.Add(1)
		f.died.Store(true)
	}
	f.proxy(w, r)
}

func (f *flakyWorker) proxy(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequest(r.Method, f.backend.URL+r.URL.Path, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	var buf [32 << 10]byte
	for {
		n, err := resp.Body.Read(buf[:])
		if n > 0 {
			w.Write(buf[:n])
		}
		if err != nil {
			return
		}
	}
}

// TestWorkerKilledMidShardReshards is the failure-path acceptance: a
// worker dies after admitting its shard; the coordinator marks it down,
// reshards onto the survivor, and the merged digest still equals the
// single-node run's.
func TestWorkerKilledMidShardReshards(t *testing.T) {
	healthy := newWorker(t)
	backend := newWorker(t)
	flaky := &flakyWorker{backend: backend}
	fts := httptest.NewServer(flaky)
	t.Cleanup(fts.Close)

	req := &service.JobRequest{Workload: "WC", Seed: 7, MaxCPUs: 8}
	wantDigest, wantPairs := singleNodeDigest(t, healthy.URL, req)

	co := newCoordinator(t, 2, healthy.URL, fts.URL)
	rec := obs.New("WC")
	res, err := co.Run(context.Background(), req, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != wantDigest || res.Pairs != wantPairs {
		t.Fatalf("after reshard: merged (%d pairs, %s) != single-node (%d pairs, %s)",
			res.Pairs, res.Digest, wantPairs, wantDigest)
	}
	if flaky.posts.Load() == 0 {
		t.Fatal("the flaky worker never admitted a shard; the test exercised nothing")
	}
	resharded := false
	for _, sr := range res.PerShard {
		if sr.Resharded {
			resharded = true
			if sr.Worker != healthy.URL {
				t.Errorf("resharded shard %s completed on %s, want the survivor %s",
					sr.Shard, sr.Worker, healthy.URL)
			}
		}
	}
	if !resharded {
		t.Fatalf("no shard recorded a reshard: %+v", res.PerShard)
	}
	var downs int
	for _, ws := range co.Workers() {
		if ws.Down {
			downs++
		}
	}
	if downs != 1 {
		t.Errorf("%d workers marked down, want exactly the killed one", downs)
	}
	if co.met.reshards.Load() == 0 {
		t.Error("reshard counter not incremented")
	}
}

// saturatedWorker answers every admission with 429 but probes honestly.
type saturatedWorker struct{ backend *httptest.Server }

func (s *saturatedWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"admission queue full"}`)
		return
	}
	(&flakyWorker{backend: s.backend}).proxy(w, r)
}

// TestSaturatedWorkerReplacement pins the 429 path: a saturated worker
// is skipped for the attempt (not marked down) and its shards re-place
// onto the next candidate in link-cost order.
func TestSaturatedWorkerReplacement(t *testing.T) {
	healthy := newWorker(t)
	backend := newWorker(t)
	sts := httptest.NewServer(&saturatedWorker{backend: backend})
	t.Cleanup(sts.Close)

	req := &service.JobRequest{Workload: "SYNTH", Seed: 5, MaxCPUs: 8,
		Synth: service.SynthParams{Elements: 10_000, Keys: 32}}
	co := newCoordinator(t, 2, sts.URL, healthy.URL)
	res, err := co.Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	replaced := 0
	for _, sr := range res.PerShard {
		replaced += sr.Replaced
		if sr.Worker != healthy.URL {
			t.Errorf("shard %s completed on the saturated worker", sr.Shard)
		}
	}
	if replaced == 0 {
		t.Fatalf("no shard recorded a 429 re-placement: %+v", res.PerShard)
	}
	for _, ws := range co.Workers() {
		if ws.Down {
			t.Errorf("saturated worker %s marked down; 429 is healthy backpressure", ws.URL)
		}
	}
}

// TestProbeRejectsMismatchedWorker pins the compatibility gate: a worker
// speaking another protocol generation fails the job with a hard error
// naming the worker, before any shard is dispatched.
func TestProbeRejectsMismatchedWorker(t *testing.T) {
	healthy := newWorker(t)
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// An old worker: no X-RAMR-Proto header, no capabilities block.
		fmt.Fprint(w, `{"role":"worker"}`)
	}))
	t.Cleanup(old.Close)

	co := newCoordinator(t, 2, healthy.URL, old.URL)
	_, err := co.Run(context.Background(), &service.JobRequest{Workload: "WC"}, nil)
	if err == nil {
		t.Fatal("dispatch through a protocol-mismatched worker should fail")
	}
	if !strings.Contains(err.Error(), old.URL) || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("mismatch error should name the worker and the protocol: %v", err)
	}
}

// TestProbeSurvivesUnreachableWorker: a worker that is down (vs
// incompatible) is skipped, and the job completes on the rest.
func TestProbeSurvivesUnreachableWorker(t *testing.T) {
	healthy := newWorker(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	req := &service.JobRequest{Workload: "SYNTH", Seed: 2, MaxCPUs: 8,
		Synth: service.SynthParams{Elements: 5_000, Keys: 16}}
	co := newCoordinator(t, 2, healthy.URL, deadURL)
	res, err := co.Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.PerShard {
		if sr.Worker != healthy.URL {
			t.Errorf("shard %s placed on the dead worker", sr.Shard)
		}
	}
}

// TestValidateRequest pins the submission gate.
func TestValidateRequest(t *testing.T) {
	co := newCoordinator(t, 2, "http://127.0.0.1:1")
	for _, tc := range []struct {
		name string
		req  service.JobRequest
		want string
	}{
		{"empty", service.JobRequest{}, "required"},
		{"not shardable", service.JobRequest{Workload: "KM"}, "not shardable"},
		{"stream", service.JobRequest{Workload: "WC",
			Stream: &service.StreamRequest{}}, "streaming"},
		{"client shard", service.JobRequest{Workload: "WC",
			Shard: &workloads.ShardSpec{Index: 0, Count: 2}}, "coordinator-assigned"},
	} {
		_, err := co.Run(context.Background(), &tc.req, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestPlacementOrder pins the link-cost victim order: home first, then
// same-cost workers in ring order, then farther tiers.
func TestPlacementOrder(t *testing.T) {
	co, err := New(Config{Workers: []WorkerSpec{
		{URL: "http://a", Cost: 0},
		{URL: "http://b", Cost: 0},
		{URL: "http://c", Cost: 2},
		{URL: "http://d", Cost: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for shard, want := range map[int][]int{
		0: {0, 1, 2, 3}, // home 0: peer 1 (same switch) before tier-2
		1: {1, 0, 2, 3},
		2: {2, 3, 0, 1}, // home 2: peer 3, then the tier-0 switch
		3: {3, 2, 0, 1},
		4: {0, 1, 2, 3}, // wraps round-robin
	} {
		got := co.placement(shard)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("placement(%d) = %v, want %v", shard, got, want)
		}
	}
	// Determinism: identical calls agree.
	if a, b := co.placement(2), co.placement(2); fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("placement not deterministic: %v vs %v", a, b)
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no workers", Config{}},
		{"bad scheme", Config{Workers: []WorkerSpec{{URL: "ftp://x"}}}},
		{"duplicate", Config{Workers: []WorkerSpec{
			{URL: "http://a"}, {URL: "http://a/"}}}},
		{"negative cost", Config{Workers: []WorkerSpec{{URL: "http://a", Cost: -1}}}},
		{"negative shards", Config{Workers: []WorkerSpec{{URL: "http://a"}}, Shards: -1}},
	} {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
