package cluster

import (
	"context"
	"sync"
)

// group is a minimal errgroup: concurrent tasks sharing a context that
// is cancelled on the first failure, with the first error returned from
// Wait. Local because the module deliberately has no dependencies.
type group struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

func errgroupWithContext(ctx context.Context) (*group, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &group{cancel: cancel}, ctx
}

// Go runs f concurrently; its first non-nil error cancels the group.
func (g *group) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
				g.cancel()
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks for every task and returns the first error.
func (g *group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
