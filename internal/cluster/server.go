package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ramr/internal/obs"
	"ramr/internal/service"
)

// retainJobs bounds the finished cluster-job records the server keeps.
const retainJobs = 128

// Server fronts a Coordinator with the same POST /jobs surface a single
// ramrd serves, so clients point at the coordinator without changing:
// submit returns 201 with a job id, status and results poll the same
// paths, DELETE cancels. The difference is under the hood — the job runs
// as shards across the cluster — and in the result document, which
// carries the merged digest plus the per-shard dispatch history.
type Server struct {
	co    *Coordinator
	log   *slog.Logger
	start time.Time

	mu     sync.Mutex
	jobs   map[int]*clusterJob
	nextID int
	closed bool
}

// clusterJob is one dispatched job's record.
type clusterJob struct {
	id       int
	workload string
	queuedAt time.Time
	rec      *obs.Recorder
	cancel   context.CancelFunc
	done     chan struct{}

	mu       sync.Mutex
	state    string // running | done | error | canceled
	finished time.Time
	res      *Result
	err      error
}

func (j *clusterJob) snapshot() (state string, finished time.Time, res *Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.finished, j.res, j.err
}

// NewServer builds the HTTP front end over a Coordinator.
func NewServer(co *Coordinator, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Server{
		co:    co,
		log:   logger,
		start: time.Now(),
		jobs:  make(map[int]*clusterJob),
	}
}

// Handler returns the coordinator API:
//
//	POST   /jobs             submit; dispatched as shards across the cluster
//	GET    /jobs             list retained cluster jobs
//	GET    /jobs/{id}        status
//	GET    /jobs/{id}/result merged result incl. per-shard dispatch records
//	GET    /jobs/{id}/trace  probe/dispatch/merge spans as Chrome-trace JSON
//	DELETE /jobs/{id}        cancel a running dispatch
//	GET    /stats            worker set with health, job counts, capabilities
//	GET    /metrics          ramr_cluster_* Prometheus families
//	GET    /healthz          liveness
//	GET    /readyz           readiness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return s.withProto(mux)
}

// withProto stamps the same protocol header the workers serve: the
// coordinator speaks the surface it dispatches to.
func (s *Server) withProto(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(service.ProtoHeader, service.ProtoVersion)
		next.ServeHTTP(w, r)
	})
}

// Shutdown stops admission and waits for running dispatches (cancelled
// at ctx's deadline).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	var running []*clusterJob
	for _, j := range s.jobs {
		if st, _, _, _ := j.snapshot(); st == "running" {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	s.log.Info("coordinator draining", "running", len(running))
	for _, j := range running {
		select {
		case <-j.done:
		case <-ctx.Done():
			j.cancel()
			<-j.done
		}
	}
	return ctx.Err()
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("cluster: encoding response", "type", fmt.Sprintf("%T", v), "err", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"internal: response encoding failed"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf.WriteTo(w)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// jobDoc is a cluster job's status/result document.
type jobDoc struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	State    string `json:"state"`
	Shards   int    `json:"shards"`
	QueuedAt string `json:"queued_at,omitempty"`
	Finished string `json:"finished,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result fields, present once done.
	Digest   string        `json:"digest,omitempty"`
	Pairs    int           `json:"pairs,omitempty"`
	WallMS   float64       `json:"wall_ms,omitempty"`
	MergeMS  float64       `json:"merge_ms,omitempty"`
	PerShard []ShardResult `json:"per_shard,omitempty"`
}

func (s *Server) doc(j *clusterJob, detail bool) jobDoc {
	state, finished, res, err := j.snapshot()
	d := jobDoc{
		ID:       j.id,
		Workload: j.workload,
		State:    state,
		Shards:   s.co.cfg.Shards,
		QueuedAt: j.queuedAt.UTC().Format(time.RFC3339Nano),
	}
	if !finished.IsZero() {
		d.Finished = finished.UTC().Format(time.RFC3339Nano)
	}
	if err != nil {
		d.Error = err.Error()
	}
	if res != nil {
		d.Digest = res.Digest
		d.Pairs = res.Pairs
		d.WallMS = res.WallMS
		d.MergeMS = res.MergeMS
		if detail {
			d.PerShard = res.PerShard
		}
	}
	return d
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rec := obs.New("cluster-job")
	var req service.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := validateRequest(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		s.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("coordinator draining"))
		return
	}
	s.nextID++
	j := &clusterJob{
		id:       s.nextID,
		workload: strings.ToUpper(strings.TrimSpace(req.Workload)),
		queuedAt: time.Now(),
		state:    "running",
		rec:      rec,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.retireLocked()
	s.mu.Unlock()
	rec.SetJob(j.id, j.workload)
	s.log.Info("cluster job admitted", "job_id", j.id, "workload", j.workload)

	go func() {
		defer close(j.done)
		defer cancel()
		res, err := s.co.Run(ctx, &req, rec)
		j.mu.Lock()
		j.finished = time.Now()
		switch {
		case err == nil:
			j.state, j.res = "done", res
		case ctx.Err() != nil:
			j.state, j.err = "canceled", ctx.Err()
		default:
			j.state, j.err = "error", err
		}
		state, jerr := j.state, j.err
		j.mu.Unlock()
		rec.Finish(state)
		if jerr != nil {
			s.log.Warn("cluster job failed", "job_id", j.id, "state", state, "err", jerr)
		} else {
			s.log.Info("cluster job done", "job_id", j.id, "digest", res.Digest,
				"pairs", res.Pairs, "wall_ms", res.WallMS)
		}
	}()

	w.Header().Set("Location", "/jobs/"+strconv.Itoa(j.id))
	s.writeJSON(w, http.StatusCreated, s.doc(j, false))
}

// retireLocked drops the oldest finished records past the retention
// bound; callers hold s.mu.
func (s *Server) retireLocked() {
	type fin struct {
		j  *clusterJob
		at time.Time
	}
	var done []fin
	for _, j := range s.jobs {
		if st, at, _, _ := j.snapshot(); st != "running" {
			done = append(done, fin{j, at})
		}
	}
	if len(done) <= retainJobs {
		return
	}
	sort.Slice(done, func(i, k int) bool { return done[i].at.Before(done[k].at) })
	for _, f := range done[:len(done)-retainJobs] {
		delete(s.jobs, f.j.id)
	}
}

func (s *Server) lookup(r *http.Request) (*clusterJob, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("invalid job id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("no cluster job %d", id)
	}
	return j, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobDoc, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.doc(j, false))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.doc(j, false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	if state, _, _, _ := j.snapshot(); state == "running" {
		s.writeJSON(w, http.StatusAccepted, s.doc(j, false))
		return
	}
	s.writeJSON(w, http.StatusOK, s.doc(j, true))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.rec.WriteChromeTrace(w); err != nil {
		s.log.Warn("cluster: writing trace", "job_id", j.id, "err", err)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	if state, _, _, _ := j.snapshot(); state != "running" {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("cluster job %d already %s; retained record deleted", j.id, state),
			"state": state,
		})
		return
	}
	j.cancel()
	s.log.Info("cluster job cancel requested", "job_id", j.id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	total := len(s.jobs)
	running := 0
	for _, j := range s.jobs {
		if st, _, _, _ := j.snapshot(); st == "running" {
			running++
		}
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"role":    "coordinator",
		"proto":   service.ProtoVersion,
		"shards":  s.co.cfg.Shards,
		"workers": s.co.Workers(),
		"jobs": map[string]int{
			"retained": total,
			"running":  running,
		},
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.co.WritePrometheus(w); err != nil {
		s.log.Warn("cluster: writing metrics", "err", err)
	}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
