package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ramr/internal/service"
)

// newClusterServer fronts a Coordinator over the given workers with the
// ramrc HTTP surface.
func newClusterServer(t *testing.T, shards int, urls ...string) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(newCoordinator(t, shards, urls...), nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getDoc(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding GET %s (HTTP %d): %v", url, resp.StatusCode, err)
	}
	return resp.StatusCode, doc
}

// TestServerEndToEnd drives the ramrc surface the way the CI smoke and
// the quickstart do: submit, poll the merged result, compare its digest
// to the single-node run, then check /stats and /metrics.
func TestServerEndToEnd(t *testing.T) {
	wa, wb := newWorker(t), newWorker(t)
	req := &service.JobRequest{Workload: "HG", Seed: 9, MaxCPUs: 8}
	wantDigest, wantPairs := singleNodeDigest(t, wb.URL, req)

	_, ts := newClusterServer(t, 2, wa.URL, wb.URL)
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(service.ProtoHeader); got != service.ProtoVersion {
		t.Errorf("coordinator response proto header %q, want %q", got, service.ProtoVersion)
	}
	var sub map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs: HTTP %d (%v)", resp.StatusCode, sub)
	}
	id := int(sub["id"].(float64))

	var res map[string]any
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, doc := getDoc(t, fmt.Sprintf("%s/jobs/%d/result", ts.URL, id))
		if code == http.StatusOK {
			res = doc
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("GET result: HTTP %d (%v)", code, doc)
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster job did not finish in 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res["state"] != "done" {
		t.Fatalf("cluster job settled %v: %v", res["state"], res["error"])
	}
	if res["digest"] != wantDigest || int(res["pairs"].(float64)) != wantPairs {
		t.Fatalf("merged (%v pairs, %v) != single-node (%d pairs, %s)",
			res["pairs"], res["digest"], wantPairs, wantDigest)
	}
	if ps, _ := res["per_shard"].([]any); len(ps) != 2 {
		t.Fatalf("result carries %d shard records, want 2", len(ps))
	}

	code, stats := getDoc(t, ts.URL+"/stats")
	if code != http.StatusOK || stats["role"] != "coordinator" {
		t.Fatalf("GET /stats: HTTP %d (%v)", code, stats)
	}
	if ws, _ := stats["workers"].([]any); len(ws) != 2 {
		t.Fatalf("/stats lists %v workers, want 2", stats["workers"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"ramr_cluster_jobs_total 1",
		"ramr_cluster_shards_dispatched_total 2",
		"ramr_cluster_merges_total 1",
		"ramr_cluster_workers 2",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A trace of the run has probe/shard/merge spans.
	tresp, err := http.Get(fmt.Sprintf("%s/jobs/%d/trace", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	for _, want := range []string{"probe", "shard-0/2", "merge"} {
		if !strings.Contains(string(tb), want) {
			t.Errorf("trace missing %q span", want)
		}
	}
}

// TestServerRejectsBadSubmissions pins the admission gate on the HTTP
// surface.
func TestServerRejectsBadSubmissions(t *testing.T) {
	_, ts := newClusterServer(t, 2, "http://127.0.0.1:1")
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed", `{`},
		{"unknown field", `{"workload":"WC","bogus":1}`},
		{"not shardable", `{"workload":"KM"}`},
		{"client shard", `{"workload":"WC","shard":{"index":0,"count":2}}`},
		{"stream", `{"workload":"WC","stream":{"window":1}}`},
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if code, _ := getDoc(t, ts.URL+"/jobs/99"); code != http.StatusNotFound {
		t.Errorf("GET unknown job: HTTP %d, want 404", code)
	}
}

// TestServerCancelAndDrain pins DELETE on a running dispatch and the
// drain path: cancel settles the job as canceled, and Shutdown refuses
// new admissions.
func TestServerCancelAndDrain(t *testing.T) {
	// A worker that admits the shard and then never finishes it: the
	// poll loop spins until the coordinator's context is cancelled.
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(service.ProtoHeader, service.ProtoVersion)
		switch {
		case r.URL.Path == "/stats":
			json.NewEncoder(w).Encode(map[string]any{
				"capabilities": service.Capabilities{
					Proto:     service.ProtoVersion,
					ShardApps: []string{"HG", "SYNTH", "WC"},
				},
			})
		case r.Method == http.MethodPost && r.URL.Path == "/jobs":
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, `{"id":1,"state":"queued"}`)
		default:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"state":"running"}`)
		}
	}))
	t.Cleanup(stuck.Close)

	srv, ts := newClusterServer(t, 1, stuck.URL)
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"workload":"WC"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	id := int(sub["id"].(float64))

	dreq, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, id), nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE running job: HTTP %d, want 204", dresp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, doc := getDoc(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if code == http.StatusOK && doc["state"] == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not settle canceled: %v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"workload":"WC"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	if r, err := http.Get(ts.URL + "/readyz"); err == nil {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz while draining: HTTP %d, want 503", r.StatusCode)
		}
	}
}
