package cluster

import (
	"fmt"
	"io"
	"sync/atomic"

	"ramr/internal/telemetry"
)

// metrics are the coordinator's ramr_cluster_* Prometheus families,
// served from the ramrc daemon's /metrics.
type metrics struct {
	jobs         atomic.Uint64
	jobErrors    atomic.Uint64
	shards       atomic.Uint64
	memoHits     atomic.Uint64
	retries      atomic.Uint64
	replacements atomic.Uint64
	reshards     atomic.Uint64
	merges       atomic.Uint64
	mergeSeconds *telemetry.HistogramVec
}

func newMetrics() *metrics {
	return &metrics{
		mergeSeconds: telemetry.NewHistogramVec("ramr_cluster_merge_seconds",
			"Final-reduce duration merging shard partials into one result.",
			[]string{"app"}, nil),
	}
}

// WritePrometheus renders the coordinator families, with the live
// worker-health gauges taken from the coordinator's worker set.
func (c *Coordinator) WritePrometheus(w io.Writer) error {
	m := c.met
	down := 0
	for _, ws := range c.workers {
		if ws.isDown() {
			down++
		}
	}
	if _, err := fmt.Fprintf(w, `# HELP ramr_cluster_jobs_total Cluster jobs accepted for dispatch.
# TYPE ramr_cluster_jobs_total counter
ramr_cluster_jobs_total %d
# HELP ramr_cluster_job_errors_total Cluster jobs that failed (validation, probe, dispatch or merge).
# TYPE ramr_cluster_job_errors_total counter
ramr_cluster_job_errors_total %d
# HELP ramr_cluster_shards_dispatched_total Shards completed on a worker.
# TYPE ramr_cluster_shards_dispatched_total counter
ramr_cluster_shards_dispatched_total %d
# HELP ramr_cluster_shard_memo_hits_total Shards answered from a worker's memo cache.
# TYPE ramr_cluster_shard_memo_hits_total counter
ramr_cluster_shard_memo_hits_total %d
# HELP ramr_cluster_retries_total Backoff passes over a shard's candidate list.
# TYPE ramr_cluster_retries_total counter
ramr_cluster_retries_total %d
# HELP ramr_cluster_replacements_total Shards re-placed off a saturated (429) worker.
# TYPE ramr_cluster_replacements_total counter
ramr_cluster_replacements_total %d
# HELP ramr_cluster_reshards_total Shards re-dispatched after their worker died mid-shard.
# TYPE ramr_cluster_reshards_total counter
ramr_cluster_reshards_total %d
# HELP ramr_cluster_merges_total Final reduces completed.
# TYPE ramr_cluster_merges_total counter
ramr_cluster_merges_total %d
# HELP ramr_cluster_workers Configured workers.
# TYPE ramr_cluster_workers gauge
ramr_cluster_workers %d
# HELP ramr_cluster_workers_down Workers currently marked unreachable.
# TYPE ramr_cluster_workers_down gauge
ramr_cluster_workers_down %d
`,
		m.jobs.Load(), m.jobErrors.Load(), m.shards.Load(), m.memoHits.Load(),
		m.retries.Load(), m.replacements.Load(), m.reshards.Load(), m.merges.Load(),
		len(c.workers), down); err != nil {
		return err
	}
	return m.mergeSeconds.WritePrometheus(w)
}
