package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ramr/internal/obs"
	"ramr/internal/service"
	"ramr/internal/workloads"
)

// Result is one cluster job's merged outcome.
type Result struct {
	// App is the workload's short name.
	App string `json:"app"`
	// Shards is the number of data shards the job was split into.
	Shards int `json:"shards"`
	// Digest is the merged output digest (hex) — byte-identical to the
	// digest a single-node run of the same request reports, because the
	// merge re-applies the app's exact per-pair fold over the key-summed
	// union of the shard containers.
	Digest string `json:"digest"`
	// Pairs is the number of distinct output keys after the merge.
	Pairs int `json:"pairs"`
	// WallMS is the end-to-end coordinator wall time.
	WallMS float64 `json:"wall_ms"`
	// MergeMS is the final-reduce portion.
	MergeMS float64 `json:"merge_ms"`
	// PerShard reports each shard's dispatch history, by shard index.
	PerShard []ShardResult `json:"per_shard"`
	// Merged is the merged key→value container.
	Merged *workloads.Partial `json:"merged,omitempty"`
}

// ShardResult is one shard's dispatch record.
type ShardResult struct {
	Shard  string `json:"shard"` // "index/count"
	Worker string `json:"worker"`
	// JobID is the worker-side job id that produced the partial.
	JobID int `json:"job_id"`
	// Cached marks a shard-level memo hit on the worker.
	Cached bool    `json:"cached,omitempty"`
	WallMS float64 `json:"wall_ms"`
	Pairs  int     `json:"pairs"`
	// Attempts counts dispatch attempts (1 = first try succeeded).
	Attempts int `json:"attempts"`
	// Replaced counts 429-driven re-placements onto farther candidates.
	Replaced int `json:"replaced,omitempty"`
	// Resharded marks a shard re-dispatched after its worker died.
	Resharded bool `json:"resharded,omitempty"`
}

// workerDoc is the subset of the worker's job documents the coordinator
// reads back (service.resultDoc over the wire).
type workerDoc struct {
	ID      int                `json:"id"`
	State   string             `json:"state"`
	Error   string             `json:"error"`
	Cached  bool               `json:"cached"`
	WallMS  float64            `json:"wall_ms"`
	Pairs   int                `json:"pairs"`
	Partial *workloads.Partial `json:"partial"`
}

// statsDoc is the subset of the worker's GET /stats the probe reads.
type statsDoc struct {
	Capabilities service.Capabilities `json:"capabilities"`
}

// errWorkerDown marks a worker that stopped answering; the dispatch loop
// reshards past it instead of giving up.
var errWorkerDown = errors.New("worker unreachable")

// errSaturated marks a 429; the dispatch loop re-places immediately.
var errSaturated = errors.New("worker saturated")

// fatalShardError wraps a worker-side job failure: the shard itself is
// bad (every worker would fail it identically), so the cluster job
// aborts instead of retrying.
type fatalShardError struct{ err error }

func (e *fatalShardError) Error() string { return e.err.Error() }

// Probe checks every worker's protocol compatibility for the named app:
// the X-RAMR-Proto response header and the /stats capabilities block
// must advertise the coordinator's protocol generation and list the app
// as shardable. A version or capability mismatch is a hard error (a
// deliberate misconfiguration must fail loudly); an unreachable worker
// is marked down and skipped, so a cluster missing one machine still
// serves. Returns the number of live workers.
func (c *Coordinator) Probe(ctx context.Context, app string) (int, error) {
	var mu sync.Mutex
	var mismatches []string
	live := 0
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			err := c.probeWorker(ctx, w, app)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				w.setDown(false)
				live++
			case errors.Is(err, errWorkerDown):
				w.setDown(true)
				c.log.Warn("cluster: worker unreachable at probe", "worker", w.spec.URL)
			default:
				mismatches = append(mismatches, err.Error())
			}
		}(w)
	}
	wg.Wait()
	if len(mismatches) > 0 {
		return 0, fmt.Errorf("cluster: incompatible workers: %s", strings.Join(mismatches, "; "))
	}
	if live == 0 {
		return 0, fmt.Errorf("cluster: no reachable workers (all %d down)", len(c.workers))
	}
	return live, nil
}

// probeWorker checks one worker. errWorkerDown for unreachable; any
// other error is a compatibility mismatch.
func (c *Coordinator) probeWorker(ctx context.Context, w *worker, app string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.spec.URL+"/stats", nil)
	if err != nil {
		return fmt.Errorf("worker %s: %v", w.spec.URL, err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", errWorkerDown, w.spec.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s: GET /stats returned %d", errWorkerDown, w.spec.URL, resp.StatusCode)
	}
	proto := resp.Header.Get(service.ProtoHeader)
	if proto != service.ProtoVersion {
		return fmt.Errorf("worker %s speaks protocol %q, coordinator requires %q (upgrade the worker or the coordinator so generations match)",
			w.spec.URL, proto, service.ProtoVersion)
	}
	var doc statsDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return fmt.Errorf("worker %s: decoding /stats: %v", w.spec.URL, err)
	}
	if doc.Capabilities.Proto != service.ProtoVersion {
		return fmt.Errorf("worker %s advertises capabilities.proto %q, coordinator requires %q",
			w.spec.URL, doc.Capabilities.Proto, service.ProtoVersion)
	}
	for _, a := range doc.Capabilities.ShardApps {
		if a == app {
			return nil
		}
	}
	return fmt.Errorf("worker %s does not accept %s shards (shard_apps=%v)",
		w.spec.URL, app, doc.Capabilities.ShardApps)
}

// Run dispatches req across the cluster: probe, shard, place, dispatch
// with retry/re-placement/reshard, and the final merge. rec, when
// non-nil, receives the job's dispatch and merge spans.
func (c *Coordinator) Run(ctx context.Context, req *service.JobRequest, rec *obs.Recorder) (*Result, error) {
	start := time.Now()
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	app := strings.ToUpper(strings.TrimSpace(req.Workload))
	c.met.jobs.Add(1)
	res, err := c.run(ctx, req, app, rec, start)
	if err != nil {
		c.met.jobErrors.Add(1)
		return nil, err
	}
	return res, nil
}

func (c *Coordinator) run(ctx context.Context, req *service.JobRequest, app string, rec *obs.Recorder, start time.Time) (*Result, error) {
	endProbe := rec.Span("probe", nil)
	live, err := c.Probe(ctx, app)
	endProbe()
	if err != nil {
		return nil, err
	}
	c.log.Info("cluster: dispatching job", "app", app,
		"shards", c.cfg.Shards, "workers", len(c.workers), "live", live)

	shards := c.shardSpecs()
	results := make([]ShardResult, len(shards))
	partials := make([]*workloads.Partial, len(shards))
	grp, gctx := errgroupWithContext(ctx)
	for i, sh := range shards {
		i, sh := i, sh
		grp.Go(func() error {
			sr, part, err := c.dispatchShard(gctx, req, app, sh, rec)
			if err != nil {
				return fmt.Errorf("shard %s: %w", sh, err)
			}
			results[i] = sr
			partials[i] = part
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}

	mergeStart := time.Now()
	merged, err := workloads.MergePartials(partials)
	if err != nil {
		return nil, fmt.Errorf("merging partials: %v", err)
	}
	pairs, digest, err := merged.Summary()
	if err != nil {
		return nil, fmt.Errorf("summarizing merge: %v", err)
	}
	mergeEnd := time.Now()
	rec.SpanAt("merge", mergeStart, mergeEnd, map[string]any{
		"shards": len(partials), "pairs": pairs,
	})
	c.met.merges.Add(1)
	c.met.mergeSeconds.Observe(mergeEnd.Sub(mergeStart).Seconds(), app)

	res := &Result{
		App:      app,
		Shards:   len(shards),
		Digest:   fmt.Sprintf("%016x", digest),
		Pairs:    pairs,
		WallMS:   float64(time.Since(start)) / float64(time.Millisecond),
		MergeMS:  float64(mergeEnd.Sub(mergeStart)) / float64(time.Millisecond),
		PerShard: results,
		Merged:   merged,
	}
	c.log.Info("cluster: job merged", "app", app, "shards", len(shards),
		"pairs", pairs, "digest", res.Digest, "wall_ms", res.WallMS)
	return res, nil
}

// dispatchShard runs one shard to completion somewhere on the cluster:
// walk the shard's placement order, skipping down workers, re-placing on
// saturation, marking workers down (and resharding) when they stop
// answering, with an exponential backoff between full passes.
func (c *Coordinator) dispatchShard(ctx context.Context, req *service.JobRequest, app string, sh workloads.ShardSpec, rec *obs.Recorder) (ShardResult, *workloads.Partial, error) {
	body, err := shardBody(req, sh)
	if err != nil {
		return ShardResult{}, nil, err
	}
	order := c.placement(sh.Index)
	sr := ShardResult{Shard: sh.String()}
	admittedOnce := false // a worker admitted the shard job once → a later worker loss is a reshard
	for pass := 0; pass < c.cfg.Retries; pass++ {
		if pass > 0 {
			backoff := c.cfg.Backoff << (pass - 1)
			c.met.retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return sr, nil, ctx.Err()
			}
		}
		for _, wi := range order {
			w := c.workers[wi]
			if w.isDown() {
				continue
			}
			if err := ctx.Err(); err != nil {
				return sr, nil, err
			}
			sr.Attempts++
			dispatchStart := time.Now()
			doc, admitted, err := c.runShardOn(ctx, w, body)
			if admitted {
				admittedOnce = true
			}
			switch {
			case err == nil:
				sr.Worker = w.spec.URL
				sr.JobID = doc.ID
				sr.Cached = doc.Cached
				sr.WallMS = doc.WallMS
				sr.Pairs = doc.Partial.Len()
				c.met.shards.Add(1)
				if doc.Cached {
					c.met.memoHits.Add(1)
				}
				rec.SpanAt("shard-"+sh.String(), dispatchStart, time.Now(), map[string]any{
					"worker": w.spec.URL, "job_id": doc.ID, "cached": doc.Cached,
					"attempts": sr.Attempts, "pairs": sr.Pairs,
				})
				return sr, doc.Partial, nil
			case errors.Is(err, errSaturated):
				// The worker is healthy but full: spill to the next
				// candidate in link-cost order, like a steal attempt
				// walking outward past a busy group.
				sr.Replaced++
				c.met.replacements.Add(1)
				rec.Instant("replaced", map[string]any{
					"shard": sh.String(), "worker": w.spec.URL,
				})
				c.log.Info("cluster: shard re-placed off saturated worker",
					"shard", sh.String(), "worker", w.spec.URL)
			case errors.Is(err, errWorkerDown):
				w.setDown(true)
				if admittedOnce {
					sr.Resharded = true
					c.met.reshards.Add(1)
					rec.Instant("resharded", map[string]any{
						"shard": sh.String(), "worker": w.spec.URL,
					})
				}
				c.log.Warn("cluster: worker marked down, resharding",
					"shard", sh.String(), "worker", w.spec.URL, "err", err)
			default:
				var fatal *fatalShardError
				if errors.As(err, &fatal) {
					return sr, nil, fatal.err
				}
				if ctx.Err() != nil {
					return sr, nil, ctx.Err()
				}
				c.log.Warn("cluster: shard attempt failed",
					"shard", sh.String(), "worker", w.spec.URL, "err", err)
			}
		}
	}
	return sr, nil, fmt.Errorf("no worker completed the shard after %d passes over %d candidates",
		c.cfg.Retries, len(order))
}

// shardBody renders the worker-facing submission: the client's request
// with the coordinator's shard coordinates injected. Scheduling hints
// and config overlays pass through untouched, so a cluster job tunes its
// workers exactly like a direct submission would.
func shardBody(req *service.JobRequest, sh workloads.ShardSpec) ([]byte, error) {
	r := *req
	r.Shard = &sh
	body, err := json.Marshal(&r)
	if err != nil {
		return nil, fmt.Errorf("encoding shard request: %v", err)
	}
	return body, nil
}

// runShardOn submits the shard to one worker and polls it to a terminal
// state. The admitted flag reports whether the worker accepted the shard
// job — a worker lost after admission is a mid-shard death (a reshard),
// before admission just a placement miss. Error classes: errSaturated
// (429 at admission), errWorkerDown (transport failure or 5xx — the
// worker, not the shard), fatalShardError (the worker ran the shard and
// failed it), or a plain error.
func (c *Coordinator) runShardOn(ctx context.Context, w *worker, body []byte) (doc *workerDoc, admitted bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	doc, err = c.postJob(ctx, w, body)
	if err != nil {
		return nil, false, err
	}
	if doc.Cached {
		if doc.Partial == nil {
			return nil, true, &fatalShardError{fmt.Errorf("worker %s served a cached shard without a partial (memo entry from an unsharded run?)", w.spec.URL)}
		}
		return doc, true, nil
	}
	id := doc.ID
	for {
		select {
		case <-time.After(c.cfg.PollInterval):
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
		doc, err = c.getResult(ctx, w, id)
		if err != nil {
			return nil, true, err
		}
		if doc == nil {
			continue // still running
		}
		switch doc.State {
		case "done":
			if doc.Partial == nil {
				return nil, true, &fatalShardError{fmt.Errorf("worker %s finished the shard without a partial", w.spec.URL)}
			}
			return doc, true, nil
		case "canceled":
			return nil, true, fmt.Errorf("%w: %s: shard job canceled on worker", errWorkerDown, w.spec.URL)
		default:
			return nil, true, &fatalShardError{fmt.Errorf("shard failed on worker %s: %s", w.spec.URL, doc.Error)}
		}
	}
}

// postJob submits the shard body to the worker's POST /jobs.
func (c *Coordinator) postJob(ctx context.Context, w *worker, body []byte) (*workerDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.spec.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", errWorkerDown, w.spec.URL, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, errSaturated
	case resp.StatusCode == http.StatusBadRequest:
		return nil, &fatalShardError{fmt.Errorf("worker %s rejected the shard: %s", w.spec.URL, readErr(resp.Body))}
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated:
		return nil, fmt.Errorf("%w: %s: POST /jobs returned %d: %s", errWorkerDown, w.spec.URL, resp.StatusCode, readErr(resp.Body))
	}
	var doc workerDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %s: decoding submit response: %v", errWorkerDown, w.spec.URL, err)
	}
	return &doc, nil
}

// getResult polls the worker's GET /jobs/{id}/result: (nil, nil) while
// the job is still queued or running (202).
func (c *Coordinator) getResult(ctx context.Context, w *worker, id int) (*workerDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/jobs/%d/result", w.spec.URL, id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", errWorkerDown, w.spec.URL, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		return nil, nil
	case http.StatusOK:
		var doc workerDoc
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&doc); err != nil {
			return nil, fmt.Errorf("%w: %s: decoding result: %v", errWorkerDown, w.spec.URL, err)
		}
		return &doc, nil
	default:
		return nil, fmt.Errorf("%w: %s: GET result returned %d: %s", errWorkerDown, w.spec.URL, resp.StatusCode, readErr(resp.Body))
	}
}

// readErr extracts the {"error": ...} body of a failed worker response.
func readErr(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &doc) == nil && doc.Error != "" {
		return doc.Error
	}
	return strings.TrimSpace(string(b))
}
