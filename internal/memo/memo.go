// Package memo is the content-addressed result cache behind ramrd's
// admission dedup: a byte-accounted, bounded LRU mapping a job's
// canonical content digest (workload + input parameters + engine config
// + seed — the full identity of the computation) to its finished result,
// so a repeat submission is served instantly without a scheduler
// admission or a CPU grant. The cache also carries the dedup telemetry —
// hit/miss/coalesce/eviction counters and cached-byte gauges — so every
// surface (/stats, Prometheus, status documents) reads one source.
//
// The cache stores opaque values: callers supply a size estimate per
// entry (the job service uses the JSON-encoded result length), and the
// sum of retained sizes never exceeds the configured bound — the
// least-recently-used entries are evicted first, which is exactly the
// bounded-retention discipline the job registry shares.
//
// All methods are safe for concurrent use.
package memo

import (
	"container/list"
	"sync"
)

// DefaultMaxBytes bounds the cache when NewCache is given 0.
const DefaultMaxBytes = 32 << 20

// Stats is a point-in-time snapshot of the cache's effectiveness
// counters and occupancy gauges, JSON-shaped for the /stats document.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Coalesced counts duplicate submissions folded onto an in-flight
	// execution (recorded by the admission layer via NoteCoalesced).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries removed to satisfy the byte bound,
	// including oversize entries dropped at insert.
	Evictions uint64 `json:"evictions"`
	// Bytes and Entries gauge current occupancy; MaxBytes is the bound.
	Bytes    int64 `json:"cached_bytes"`
	Entries  int   `json:"cached_entries"`
	MaxBytes int64 `json:"max_bytes"`
}

// Cache is a byte-accounted LRU keyed by digest strings.
type Cache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, coalesced, evictions uint64
}

// item is one retained entry; list elements hold *item.
type item struct {
	key   string
	value any
	size  int64
}

// NewCache returns a Cache bounded to maxBytes: 0 selects
// DefaultMaxBytes, a negative bound disables caching entirely (Get
// always misses, Put drops) while the coalesce counter keeps working.
func NewCache(maxBytes int64) *Cache {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Enabled reports whether the cache can retain anything.
func (c *Cache) Enabled() bool { return c.max > 0 }

// MaxBytes returns the configured byte bound.
func (c *Cache) MaxBytes() int64 { return c.max }

// Get returns the value cached under key and refreshes its recency,
// counting a hit; a missing key counts a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*item).value, true
}

// Put inserts (or replaces) the value under key, charging size bytes
// against the bound and evicting least-recently-used entries until the
// total fits. A value larger than the whole bound is dropped without
// insertion and counted as an eviction; a disabled cache drops
// everything.
func (c *Cache) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 || size > c.max {
		c.evictions++
		return
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*item)
		c.bytes += size - it.size
		it.value, it.size = value, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&item{key: key, value: value, size: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

// Remove deletes key from the cache, reporting whether it was present.
// Removal is an invalidation, not an eviction, so the eviction counter
// is untouched.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		c.removeLocked(el)
	}
	return ok
}

func (c *Cache) removeLocked(el *list.Element) {
	it := el.Value.(*item)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.size
}

// NoteCoalesced counts one duplicate submission folded onto an in-flight
// execution. The cache carries the counter so all dedup telemetry reads
// from one place.
func (c *Cache) NoteCoalesced() {
	c.mu.Lock()
	c.coalesced++
	c.mu.Unlock()
}

// Len returns the number of retained entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the current byte occupancy.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats snapshots the counters and gauges.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.ll.Len(),
		MaxBytes:  c.max,
	}
}
