package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutLRUOrder(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put("c", 3, 40)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing right after insert")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("occupancy = %d bytes / %d entries, want 80 / 2", st.Bytes, st.Entries)
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 30)
	c.Put("a", 2, 70)
	if got := c.Bytes(); got != 70 {
		t.Fatalf("bytes after replace = %d, want 70", got)
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("replaced value = %v, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestOversizeDropped(t *testing.T) {
	c := NewCache(64)
	c.Put("big", 1, 65)
	if c.Len() != 0 {
		t.Fatal("oversize entry was inserted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("oversize drop not counted: %+v", st)
	}
}

func TestDisabledCache(t *testing.T) {
	c := NewCache(-1)
	if c.Enabled() {
		t.Fatal("negative bound reports enabled")
	}
	c.Put("a", 1, 8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	c.NoteCoalesced()
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != 1 || st.Entries != 0 {
		t.Fatalf("disabled stats: %+v", st)
	}
}

func TestRemove(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 10)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false for present key")
	}
	if c.Remove("a") {
		t.Fatal("Remove(a) = true for absent key")
	}
	st := c.Stats()
	if st.Bytes != 0 || st.Entries != 0 || st.Evictions != 0 {
		t.Fatalf("post-remove stats: %+v", st)
	}
}

func TestDefaultBound(t *testing.T) {
	if got := NewCache(0).MaxBytes(); got != DefaultMaxBytes {
		t.Fatalf("MaxBytes() = %d, want DefaultMaxBytes", got)
	}
}

// TestConcurrentAccess exercises the lock discipline under -race and
// checks the byte gauge never exceeds the bound.
func TestConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				c.Put(key, i, 64)
				c.Get(key)
				if i%17 == 0 {
					c.Remove(key)
				}
				c.NoteCoalesced()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}
	if st.Coalesced != 8*200 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, 8*200)
	}
	if int64(st.Entries)*64 != st.Bytes {
		t.Fatalf("entries %d inconsistent with bytes %d", st.Entries, st.Bytes)
	}
}
