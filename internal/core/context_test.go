package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextCancellation(t *testing.T) {
	// A slow job: many tasks, each burning a little time.
	spec := countSpec(400, 50, 7)
	slowMap := spec.Map
	spec.Map = func(s int, emit func(int, int)) {
		time.Sleep(200 * time.Microsecond)
		slowMap(s, emit)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	cfg := testConfig()
	rec := recordQueues(&cfg)
	start := time.Now()
	_, err := RunContext(ctx, spec, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Full run would take >= 400 tasks * 200us / 3 mappers ~ 27ms+;
	// cancellation must cut that well short (generous bound for CI).
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
	assertClean(t, rec)
}

func TestRunContextDeadline(t *testing.T) {
	spec := countSpec(200, 100, 5)
	slowMap := spec.Map
	spec.Map = func(s int, emit func(int, int)) {
		time.Sleep(100 * time.Microsecond)
		slowMap(s, emit)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	cfg := testConfig()
	rec := recordQueues(&cfg)
	_, err := RunContext(ctx, spec, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	assertClean(t, rec)
}

func TestRunContextBackground(t *testing.T) {
	res, err := RunContext(context.Background(), countSpec(20, 20, 5), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 5 {
		t.Fatalf("%d keys", len(res.Pairs))
	}
}
