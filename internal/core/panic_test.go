package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/faultinject"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/topology"
)

// recordQueues attaches a queue-report recorder to cfg so tests can
// assert the drain and conservation invariants after failed runs.
func recordQueues(cfg *mr.Config) *faultinject.Recorder {
	rec := &faultinject.Recorder{}
	if cfg.Hooks == nil {
		cfg.Hooks = &mr.Hooks{}
	}
	cfg.Hooks.QueueObserver = rec.Observer()
	return rec
}

// assertClean asserts the post-run lifecycle invariants: every queue
// drained and element-conserving, and no worker goroutine left behind.
func assertClean(t *testing.T, rec *faultinject.Recorder) {
	t.Helper()
	if err := faultinject.CheckQueues(rec.Reports()); err != nil {
		t.Fatal(err)
	}
	if leaked := faultinject.AwaitNoWorkers(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("%d leaked worker goroutines:\n%s", len(leaked), leaked[0])
	}
}

// panicSpec builds a job whose Map panics on one split.
func panicSpec(splits int, panicAt int) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "panic",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			if s == panicAt {
				panic("map exploded")
			}
			for e := 0; e < 100; e++ {
				emit(e%7, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](7) },
	}
}

// runWithTimeout guards against the pre-recovery failure mode: a panicking
// worker deadlocking the pipeline.
func runWithTimeout(t *testing.T, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked")
		return nil
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCapacity = 16 // small ring: other mappers are likely blocked mid-push
	rec := recordQueues(&cfg)
	err := runWithTimeout(t, func() error {
		_, err := Run(panicSpec(200, 57), cfg)
		return err
	})
	if err == nil {
		t.Fatal("map panic not reported")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unexpected error: %v", err)
	}
	var pe *mr.PanicError
	if !errors.As(err, &pe) || pe.Engine != "ramr" {
		t.Fatalf("err = %#v, want *mr.PanicError from ramr", err)
	}
	assertClean(t, rec)
}

func TestCombinePanicBecomesError(t *testing.T) {
	spec := panicSpec(200, -1) // map never panics
	calls := 0
	spec.Combine = func(a, b int) int {
		calls++
		if calls == 500 {
			panic("combine exploded")
		}
		return a + b
	}
	cfg := testConfig()
	cfg.Mappers = 2
	cfg.Combiners = 1 // the single combiner owns all queues; its recovery must drain them
	cfg.QueueCapacity = 16
	rec := recordQueues(&cfg)
	err := runWithTimeout(t, func() error {
		_, err := Run(spec, cfg)
		return err
	})
	if err == nil {
		t.Fatal("combine panic not reported")
	}
	assertClean(t, rec)
}

func TestReducePanicBecomesError(t *testing.T) {
	spec := panicSpec(50, -1)
	spec.Reduce = func(k, v int) int { panic("reduce exploded") }
	cfg := testConfig()
	rec := recordQueues(&cfg)
	err := runWithTimeout(t, func() error {
		_, err := Run(spec, cfg)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "reduce") {
		t.Fatalf("reduce panic not reported: %v", err)
	}
	assertClean(t, rec)
}

func TestPanicWithPinnedWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Pin = mr.PinRAMR
	cfg.Machine = topology.HaswellServer()
	rec := recordQueues(&cfg)
	err := runWithTimeout(t, func() error {
		_, err := Run(panicSpec(100, 3), cfg)
		return err
	})
	if err == nil {
		t.Fatal("panic not reported under pinning")
	}
	assertClean(t, rec)
}

// TestMapPanicDiscardsStagedSlab is the half-built-slab regression: a Map
// that panics mid-task leaves pairs staged in the producer-local emit slab,
// and the mapper's exit path must NOT publish them — the run is doomed and
// those pairs must never reach user Combine. With one split emitting fewer
// pairs than the slab size, nothing legitimately flushes, so any push at
// all is the bug.
func TestMapPanicDiscardsStagedSlab(t *testing.T) {
	spec := &mr.Spec[int, int, int, int]{
		Name:   "slab-panic",
		Splits: []int{0},
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < 5; e++ {
				emit(e, 1)
			}
			panic("map exploded after staging")
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](8) },
	}
	cfg := testConfig()
	cfg.Mappers = 1
	cfg.Combiners = 1
	cfg.EmitBatch = 64 // slab far larger than the 5 staged pairs
	rec := recordQueues(&cfg)
	err := runWithTimeout(t, func() error {
		_, err := Run(spec, cfg)
		return err
	})
	var pe *mr.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *mr.PanicError", err)
	}
	reports := rec.Reports()
	if len(reports) != 1 {
		t.Fatalf("%d queue reports, want 1", len(reports))
	}
	if got := reports[0].Stats.Pushes; got != 0 {
		t.Fatalf("panicked mapper published %d staged pairs; the half-built slab must be discarded", got)
	}
	assertClean(t, rec)
}

// TestAbortStopsHealthyCombiners is the doomed-run combine regression:
// after one combiner panics, the surviving combiner must stop feeding user
// Combine and switch to drain-and-discard. Combiner 1 is held in its batch
// hook until the abort flag is raised, so before the fix it then combined
// its producer's entire remaining stream (~60k calls); after the fix it
// finishes only the in-flight batch.
func TestAbortStopsHealthyCombiners(t *testing.T) {
	const emits = 60_000
	var combineCalls atomic.Int64
	spec := &mr.Spec[int, int, int, int]{
		Name:   "abort-combine",
		Splits: []int{0, 1},
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < emits; e++ {
				emit(e%7, 1)
			}
		},
		Combine: func(a, b int) int {
			combineCalls.Add(1)
			return a + b
		},
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](7) },
	}
	cfg := testConfig()
	cfg.Mappers = 2
	cfg.Combiners = 2 // combiner j owns queue j
	cfg.TaskSize = 1
	cfg.QueueCapacity = 128
	cfg.BatchSize = 64
	// Two locality groups: with PinNone, mapper i draws from group i, and
	// task t lands in group t%2 — each mapper deterministically feeds its
	// own combiner.
	cfg.Machine = topology.Fig3Example()
	rec := recordQueues(&cfg)
	aborted := make(chan struct{})
	cfg.Hooks.OnAbort = func() { close(aborted) }
	cfg.Hooks.CombineBatch = func(w int) {
		switch w {
		case 0:
			panic("combiner 0 exploded") // trips abort on its first batch
		case 1:
			// Hold combiner 1 until the run is doomed, so every user
			// Combine call it makes afterwards is on dead data.
			select {
			case <-aborted:
			case <-time.After(25 * time.Second):
			}
		}
	}
	err := runWithTimeout(t, func() error {
		_, err := Run(spec, cfg)
		return err
	})
	var pe *mr.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *mr.PanicError", err)
	}
	// After the fix combiner 1 applies at most its one in-flight batch;
	// before it, it combined the bulk of its mapper's 60k pairs.
	if calls := combineCalls.Load(); calls >= 5000 {
		t.Fatalf("healthy combiner made %d user Combine calls on a doomed run", calls)
	}
	assertClean(t, rec)
}

// TestCancelReleasesBlockedProducer proves the WaitSleep liveness contract
// under cancellation: the hook cancels the context while the mapper is
// blocked on a full ring (and, under WaitSleep, parked in waitUntil's
// backoff). A cancelled run must still drain the ring and release the
// producer — mappers observe cancellation only at task boundaries, so the
// combiner is what frees them.
func TestCancelReleasesBlockedProducer(t *testing.T) {
	const emits = 50_000
	spec := &mr.Spec[int, int, int, int]{
		Name:   "cancel-full-ring",
		Splits: []int{0},
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < emits; e++ {
				emit(e%7, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](7) },
	}
	cfg := testConfig()
	cfg.Mappers = 1
	cfg.Combiners = 1
	cfg.QueueCapacity = 16
	cfg.Wait = spsc.WaitSleep
	rec := recordQueues(&cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg.Hooks.CombineBatch = func(int) {
		once.Do(func() {
			cancel()
			// Keep the ring full (ConsumeBatch frees slots only after
			// this hook's batch applies) long enough for the producer to
			// exhaust its spin budget and sleep in waitUntil.
			time.Sleep(5 * time.Millisecond)
		})
	}
	err := runWithTimeout(t, func() error {
		_, err := RunContext(ctx, spec, cfg)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	reports := rec.Reports()
	if len(reports) != 1 {
		t.Fatalf("%d queue reports, want 1", len(reports))
	}
	if reports[0].Stats.SleepMicros == 0 {
		t.Fatal("producer never slept: the test did not exercise the blocked-in-waitUntil path")
	}
	assertClean(t, rec)
}
