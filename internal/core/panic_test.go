package core

import (
	"strings"
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/topology"
)

// panicSpec builds a job whose Map panics on one split.
func panicSpec(splits int, panicAt int) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "panic",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			if s == panicAt {
				panic("map exploded")
			}
			for e := 0; e < 100; e++ {
				emit(e%7, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](7) },
	}
}

// runWithTimeout guards against the pre-recovery failure mode: a panicking
// worker deadlocking the pipeline.
func runWithTimeout(t *testing.T, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked")
		return nil
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCapacity = 16 // small ring: other mappers are likely blocked mid-push
	err := runWithTimeout(t, func() error {
		_, err := Run(panicSpec(200, 57), cfg)
		return err
	})
	if err == nil {
		t.Fatal("map panic not reported")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCombinePanicBecomesError(t *testing.T) {
	spec := panicSpec(200, -1) // map never panics
	calls := 0
	spec.Combine = func(a, b int) int {
		calls++
		if calls == 500 {
			panic("combine exploded")
		}
		return a + b
	}
	cfg := testConfig()
	cfg.Mappers = 2
	cfg.Combiners = 1 // the single combiner owns all queues; its recovery must drain them
	cfg.QueueCapacity = 16
	err := runWithTimeout(t, func() error {
		_, err := Run(spec, cfg)
		return err
	})
	if err == nil {
		t.Fatal("combine panic not reported")
	}
}

func TestReducePanicBecomesError(t *testing.T) {
	spec := panicSpec(50, -1)
	spec.Reduce = func(k, v int) int { panic("reduce exploded") }
	err := runWithTimeout(t, func() error {
		_, err := Run(spec, testConfig())
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "reduce") {
		t.Fatalf("reduce panic not reported: %v", err)
	}
}

func TestPanicWithPinnedWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Pin = mr.PinRAMR
	cfg.Machine = topology.HaswellServer()
	err := runWithTimeout(t, func() error {
		_, err := Run(panicSpec(100, 3), cfg)
		return err
	})
	if err == nil {
		t.Fatal("panic not reported under pinning")
	}
}
