package core

import (
	"testing"
	"testing/quick"

	"ramr/internal/mr"
	"ramr/internal/topology"
)

func TestQueueAssignmentCoversAll(t *testing.T) {
	for _, tc := range []struct{ m, c int }{
		{8, 8}, {8, 4}, {8, 3}, {7, 2}, {1, 1}, {56, 5}, {3, 3},
	} {
		asg := QueueAssignment(tc.m, tc.c)
		if len(asg) != tc.c {
			t.Fatalf("m=%d c=%d: %d assignments", tc.m, tc.c, len(asg))
		}
		next := 0
		for j, rng := range asg {
			if rng[0] != next {
				t.Fatalf("m=%d c=%d: gap before combiner %d", tc.m, tc.c, j)
			}
			next = rng[1]
		}
		if next != tc.m {
			t.Fatalf("m=%d c=%d: coverage ends at %d", tc.m, tc.c, next)
		}
	}
}

// TestQuickQueueAssignmentBalance: assignment is a partition with sizes
// differing by at most one.
func TestQuickQueueAssignmentBalance(t *testing.T) {
	f := func(m8, c8 uint8) bool {
		m := int(m8%64) + 1
		c := int(c8%16) + 1
		if c > m {
			c = m
		}
		asg := QueueAssignment(m, c)
		minSz, maxSz := m, 0
		next := 0
		for _, rng := range asg {
			if rng[0] != next {
				return false
			}
			sz := rng[1] - rng[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = rng[1]
		}
		return next == m && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRAMRPlanAdjacency is the §III-B property: under the RAMR policy,
// every combiner shares its physical core (or at worst its socket, when a
// group outgrows one core) with its first assigned mapper.
func TestRAMRPlanAdjacency(t *testing.T) {
	for _, m := range []*topology.Machine{topology.HaswellServer(), topology.XeonPhi(), topology.Fig3Example()} {
		half := m.NumCPUs() / 2
		plan := BuildPlan(m, half, half, mr.PinRAMR)
		for j, rng := range QueueAssignment(half, half) {
			d := m.Distance(plan.CombinerCPU[j], plan.MapperCPU[rng[0]])
			if d > 1 {
				t.Fatalf("%s: combiner %d at distance %d from its mapper", m.Name, j, d)
			}
		}
		if got := plan.MaxDistance(m); got > 1 {
			t.Fatalf("%s: 1:1 plan max distance = %d", m.Name, got)
		}
	}
}

func TestRAMRPlanRatio3GroupsContiguous(t *testing.T) {
	m := topology.HaswellServer()
	// 42 mappers, 14 combiners (ratio 3): groups of 4 threads span at
	// most two physical cores, so worst distance is within one socket.
	plan := BuildPlan(m, 42, 14, mr.PinRAMR)
	if d := plan.MaxDistance(m); d > 2 {
		t.Fatalf("ratio-3 plan max distance = %d, want <= 2", d)
	}
}

func TestRoundRobinScattersPairs(t *testing.T) {
	m := topology.HaswellServer()
	half := 28
	plan := BuildPlan(m, half, half, mr.PinRoundRobin)
	// The role-oblivious numeric placement must put at least one
	// combiner far (distance >= 2) from its mapper — that's the
	// deficiency Fig. 5 measures.
	far := 0
	for j, rng := range QueueAssignment(half, half) {
		if m.Distance(plan.CombinerCPU[j], plan.MapperCPU[rng[0]]) >= 2 {
			far++
		}
	}
	if far == 0 {
		t.Fatal("round-robin placed every pair adjacently; it should not")
	}
}

func TestPinNonePlan(t *testing.T) {
	m := topology.HaswellServer()
	plan := BuildPlan(m, 4, 2, mr.PinNone)
	for _, cpu := range append(plan.MapperCPU, plan.CombinerCPU...) {
		if cpu != -1 {
			t.Fatalf("unpinned plan contains cpu %d", cpu)
		}
	}
	if plan.MaxDistance(m) != -1 {
		t.Fatal("unpinned plan should report unknown distance")
	}
}

func TestPlanWrapsWhenOversubscribed(t *testing.T) {
	m := topology.Fig3Example() // 16 logical cpus
	plan := BuildPlan(m, 20, 20, mr.PinRAMR)
	for _, cpu := range append(plan.MapperCPU, plan.CombinerCPU...) {
		if cpu < 0 || cpu >= 16 {
			t.Fatalf("cpu %d out of range", cpu)
		}
	}
}

func TestPlanString(t *testing.T) {
	m := topology.Fig3Example()
	plan := BuildPlan(m, 4, 2, mr.PinRAMR)
	if plan.String() == "" {
		t.Fatal("empty plan string")
	}
}
