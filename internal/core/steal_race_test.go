package core

import (
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/topology"
)

// skewedSpec is a map-heavy job whose first `heavy` splits each sleep,
// modelling a skewed input: with TaskSize 1 those splits are exactly the
// tasks seeded to locality group 0, so group 1's mappers drain their
// light share and must steal across the group boundary to finish.
func skewedSpec(splits, heavy int, d time.Duration) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "skewed",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			if s < heavy {
				time.Sleep(d)
			}
			emit(s%16, 1)
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](16) },
		Less:         func(a, b int) bool { return a < b },
	}
}

func stealCfg(m *topology.Machine) mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Mappers = 4
	cfg.Combiners = 2
	cfg.QueueCapacity = 256
	cfg.BatchSize = 16
	cfg.TaskSize = 1
	cfg.Machine = m
	cfg.Pin = mr.PinNone // mapper i lands in group i % groups
	return cfg
}

// runSkewed executes the skewed job and checks the conservation
// invariants every successful run must satisfy: no element lost or
// duplicated, and steal counters balanced exactly (tasks stolen ==
// tasks executed remotely).
func runSkewed(t *testing.T, m *topology.Machine) mr.StealStats {
	t.Helper()
	const splits, heavy = 120, 30
	res, err := Run(skewedSpec(splits, heavy, 500*time.Microsecond), stealCfg(m))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != splits {
		t.Fatalf("conservation: %d elements out, want %d", total, splits)
	}
	if !res.Steal.Balanced() {
		t.Fatalf("steal counters unbalanced: %s", res.Steal.String())
	}
	if got := res.Steal.TotalTasks(); got != splits {
		t.Fatalf("take accounting covers %d tasks, want %d", got, splits)
	}
	return res.Steal
}

// TestStealConservationSkewed: under the race detector, chunked stealing
// on a two-group machine moves work without losing or duplicating a
// task, and the skewed input actually provokes steals (a run where
// nothing was stolen would make the balance assertion vacuous).
func TestStealConservationSkewed(t *testing.T) {
	st := runSkewed(t, topology.Fig3Example())
	if st.StolenTasks() == 0 {
		t.Fatalf("skewed input provoked no steals: %s", st.String())
	}
	// Fig3Example has per-socket LLCs, so every cross-group steal is
	// remote-class.
	if st.SocketTasks != 0 {
		t.Fatalf("per-socket-LLC machine produced socket-class steals: %s", st.String())
	}
}

// TestStealClassByTopology: the distance class of every steal follows
// the machine's cache hierarchy — remote across the Haswell server's
// per-socket L3s, socket-class on a Phi-style machine whose last-level
// cache is globally shared, and no steals at all on the single-group
// Xeon Phi preset (its one locality group has no victims).
func TestStealClassByTopology(t *testing.T) {
	t.Run("haswell", func(t *testing.T) {
		st := runSkewed(t, topology.HaswellServer())
		if st.StolenTasks() == 0 {
			t.Fatalf("no steals on the Haswell server: %s", st.String())
		}
		if st.SocketTasks != 0 {
			t.Fatalf("cross-socket steals misclassified as socket-class: %s", st.String())
		}
	})
	t.Run("phi-style-global-llc", func(t *testing.T) {
		// Two packages sharing a global LLC, like the Phi's ring of L2s:
		// stealing across them stays socket-class.
		m := &topology.Machine{
			Name:           "phi-style",
			Sockets:        2,
			CoresPerSocket: 4,
			ThreadsPerCore: 1,
			Enum:           topology.EnumCompact,
			Caches: []topology.CacheLevel{
				{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: topology.ScopePerCore, LatencyCycles: 4},
				{Level: 2, SizeBytes: 28 << 20, LineBytes: 64, Assoc: 8, Scope: topology.ScopeGlobal, LatencyCycles: 24},
			},
			MemLatencyCycles: 300,
		}
		st := runSkewed(t, m)
		if st.StolenTasks() == 0 {
			t.Fatalf("no steals on the global-LLC machine: %s", st.String())
		}
		if st.RemoteTasks != 0 {
			t.Fatalf("global-LLC steals misclassified as remote: %s", st.String())
		}
	})
	t.Run("xeon-phi", func(t *testing.T) {
		// One package, one locality group: everything is a local take.
		st := runSkewed(t, topology.XeonPhi())
		if st.StolenTasks() != 0 || st.RemoteExecuted != 0 {
			t.Fatalf("single-group machine stole: %s", st.String())
		}
	})
}

// TestStealOffStaysStatic: with the steal policy off, the same skewed
// input finishes with zero steals — the static steering baseline the
// BenchmarkSkewSteal sweep compares against.
func TestStealOffStaysStatic(t *testing.T) {
	const splits, heavy = 120, 30
	cfg := stealCfg(topology.Fig3Example())
	cfg.Steal = mr.StealOff
	res, err := Run(skewedSpec(splits, heavy, 100*time.Microsecond), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != splits {
		t.Fatalf("conservation: %d elements out, want %d", total, splits)
	}
	if res.Steal.StolenTasks() != 0 || res.Steal.RemoteExecuted != 0 {
		t.Fatalf("StealOff run stole: %s", res.Steal.String())
	}
	if res.Steal.LocalTasks != splits {
		t.Fatalf("StealOff local takes cover %d tasks, want %d", res.Steal.LocalTasks, splits)
	}
}
