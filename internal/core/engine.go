// Package core implements RAMR, the paper's contribution: a resource-aware
// MapReduce runtime that decouples the map and combine phases onto two
// separate thread pools and overlaps their execution in a pipeline
// (§III, Fig. 2).
//
// Mappers dequeue tasks from per-locality-group task queues and emit
// intermediate key-value pairs into a private fixed-size SPSC ring buffer
// instead of combining in place. Combiners run concurrently, pop *batches*
// of pairs from their assigned set of mapper queues, apply the combine
// function and accumulate into a private container. When the map phase
// ends, combiners drain any remainder and exit; reduce and merge then
// proceed exactly as in the Phoenix++ baseline.
//
// The decoupling raises the parallelism degree and lets a memory-intensive
// combine overlap a compute-intensive map; the contention-aware pinning
// plan (pinning.go) keeps each combiner on a logical CPU adjacent to its
// mappers so the queue traffic stays in the closest shared cache.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ramr/internal/affinity"
	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/trace"
	"ramr/internal/tuner"
)

// pair is one intermediate key-value element flowing through the queues.
// It is the container package's KV so a consumed queue batch can be handed
// to Container.UpdateBatch without repacking.
type pair[K comparable, V any] = container.KV[K, V]

// combinerIdle is how long a combiner sleeps when one full polling round
// over its assigned queues consumed nothing; long enough to free the SMT
// sibling for its mapper, short enough not to add visible latency.
const combinerIdle = 20 * time.Microsecond

// Run executes the job with the RAMR strategy under cfg. The thread
// budget is cfg.Mappers map workers plus cfg.NumCombiners() combine
// workers; reduce and merge reuse the general-purpose (mapper) pool as in
// Fig. 2.
func Run[S any, K comparable, V, R any](spec *mr.Spec[S, K, V, R], cfg mr.Config) (*mr.Result[K, R], error) {
	return RunContext(context.Background(), spec, cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled, mappers stop
// taking tasks after their current one, the pipeline drains, and the
// context's error is returned. Cancellation latency is bounded by one map
// task plus the drain, never a hung queue.
func RunContext[S any, K comparable, V, R any](ctx context.Context, spec *mr.Spec[S, K, V, R], cfg mr.Config) (*mr.Result[K, R], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stream != nil {
		return nil, fmt.Errorf("core: Config.Stream is set; streaming runs go through internal/stream, not the batch engine")
	}
	// A context that is already dead must fail fast: no queue, worker or
	// sampler is ever created for a run that cannot make progress.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mappers := cfg.Mappers
	combiners := cfg.NumCombiners()
	machine := cfg.ResolveMachine()
	if err := validateGrant(machine, cfg.CPUGrant); err != nil {
		return nil, err
	}

	// With the tuner enabled the combiner pool is elastic: the plan and
	// container set are sized for the pool's ceiling so combiners added
	// mid-run have a pinned CPU and a private container waiting. With it
	// nil everything below collapses to the static sizes.
	tcfg := cfg.Tuner
	maxCombiners := combiners
	var tunerCfg tuner.Config
	if tcfg != nil {
		tunerCfg = resolveTuner(*tcfg, mappers, cfg.QueueCapacity)
		// A CPU grant is a hard worker budget: the elastic pool may
		// never grow past what the grant can host alongside the mappers,
		// or a tuned job would spill onto CPUs granted to someone else.
		if g := len(cfg.CPUGrant); g > 0 {
			ceil := g - mappers
			if ceil < 1 {
				ceil = 1
			}
			if tunerCfg.MaxCombiners > ceil {
				tunerCfg.MaxCombiners = ceil
			}
			if tunerCfg.MinCombiners > tunerCfg.MaxCombiners {
				tunerCfg.MinCombiners = tunerCfg.MaxCombiners
			}
		}
		maxCombiners = tunerCfg.MaxCombiners
		if combiners > tunerCfg.MaxCombiners {
			combiners = tunerCfg.MaxCombiners
		}
		if combiners < tunerCfg.MinCombiners {
			combiners = tunerCfg.MinCombiners
		}
	}

	res := &mr.Result[K, R]{}

	// The telemetry layer is captured into a local once (like Hooks) so
	// the nil check never sits on a hot path; Stop is deferred so error
	// returns can never leak the sampler goroutine. The tuner needs the
	// sampler as its epoch clock and signal source, so it brings a
	// private telemetry when the user configured none (no report is
	// attached then).
	tel := cfg.Telemetry
	if tel == nil && tcfg != nil {
		tel = telemetry.New()
	}
	if tel != nil {
		tel.BeginRun("ramr")
		defer tel.Stop()
	}

	// --- Init: pools, queues, containers, pinning plan (Fig. 2 top). ---
	t0 := time.Now()
	queues := make([]*spsc.Queue[pair[K, V]], mappers)
	var mirrors []*telemetry.QueueMirror
	if tel != nil {
		mirrors = make([]*telemetry.QueueMirror, mappers)
	}
	for i := range queues {
		q, err := spsc.New[pair[K, V]](cfg.QueueCapacity, cfg.Wait)
		if err != nil {
			return nil, err
		}
		queues[i] = q
		if tel != nil {
			mirrors[i] = tel.RegisterQueue(fmt.Sprintf("mapper-%d", i), q)
		}
	}
	containers := make([]container.Container[K, V], maxCombiners)
	for j := range containers {
		containers[j] = spec.NewContainer()
	}
	// A batch larger than the ring could never fill while a producer is
	// blocked on a full queue, deadlocking the pipeline; clamp it.
	batch := cfg.BatchSize
	if c := queues[0].Cap(); batch > c {
		batch = c
	}
	// The emit slab gets the same clamp: PushBatch copies oversized
	// blocks in chunks anyway, but a slab beyond the ring capacity only
	// adds latency before the combiner sees anything.
	emitBatch := cfg.EmitBatch
	if emitBatch <= 0 {
		emitBatch = mr.DefaultEmitBatch
	}
	if c := queues[0].Cap(); emitBatch > c {
		emitBatch = c
	}
	plan := BuildPlanOn(machine, cfg.CPUGrant, mappers, maxCombiners, cfg.Pin)
	res.Phases.Init = time.Since(t0)

	// --- Partition: tasks into per-locality-group deques. The mapper →
	// group assignment is computed first because the deques are seeded
	// proportionally to the mappers each group actually holds. ---
	t0 = time.Now()
	tasks := mr.Tasks(len(spec.Splits), cfg.TaskSize)
	groups := machine.LocalityGroups()
	mapperGroup := mapperGroups(machine, plan, mappers, len(groups))
	mappersIn := make([]int, len(groups))
	for _, g := range mapperGroup {
		mappersIn[g]++
	}
	tq := newTaskQueues(tasks, machine, mappersIn, cfg.Steal)
	res.Phases.Partition = time.Since(t0)

	// Per-mapper steal stats fold into the shared aggregate at worker
	// exit (under stealMu), so the hot path only touches mapper-locals.
	var stealMu sync.Mutex
	var stealAgg mr.StealStats

	// --- Map-combine: the decoupled, overlapped phase (Fig. 2). ---
	// User code (Map, Combine) may panic; workers convert the first
	// panic into an error and shut the pipeline down cleanly: a failed
	// mapper still closes its queue, a failed combiner keeps draining
	// its queues (discarding) so blocked producers can finish, and the
	// abort flag stops further task dispatch.
	t0 = time.Now()
	var mapWG, combWG sync.WaitGroup
	var firstErr mr.FirstError
	var abort atomic.Bool
	// trip raises the abort flag; the OnAbort hook fires only for the
	// first worker to trip it.
	trip := func() {
		if abort.CompareAndSwap(false, true) {
			cfg.Hooks.FireOnAbort()
		}
	}

	for i := 0; i < mappers; i++ {
		mapWG.Add(1)
		// pprof.Do labels the goroutine (engine/role/worker) so CPU
		// profiles segment mapper time from combiner time; the worker
		// body runs inside the labeled closure so its defers — recover
		// included — stay in the panicking frame chain.
		go func(i int) {
			defer mapWG.Done()
			labels := pprof.Labels("engine", "ramr", "role", "mapper", "worker", strconv.Itoa(i))
			pprof.Do(ctx, labels, func(context.Context) {
				q := queues[i]
				var tw *telemetry.Worker
				if tel != nil {
					tw = tel.RegisterWorker("mapper", i)
				}
				// Emitted pairs are staged in a producer-local slab and
				// published as blocks, so the shared tail index (and the
				// cross-core traffic on its cache line) is touched once
				// per slab instead of once per pair. The slab flushes on
				// fill, at every task boundary, and before the queue
				// closes; EmitBatch == 1 bypasses the slab entirely and
				// emits with single-element Push (the ablation baseline).
				slab := make([]pair[K, V], 0, emitBatch)
				failed := false
				var st mr.StealStats
				defer func() {
					stealMu.Lock()
					stealAgg.Add(st)
					stealMu.Unlock()
				}()
				flush := func() {
					if len(slab) > 0 {
						q.PushBatch(slab)
						slab = slab[:0]
					}
				}
				// Deferred LIFO: recover first, then flush, then Close —
				// the combiner must always be notified, and Push after
				// Close panics. A panicked Map leaves a half-built slab
				// whose pairs must never reach Combine (the run is
				// doomed), so the exit flush is skipped on failure while
				// Close still runs to release the combiner.
				defer q.Close()
				defer func() {
					if !failed {
						flush()
					}
					if tw != nil {
						pu, fp, sl := q.ProducerStats()
						tw.StoreProducer(pu, fp, sl)
						tw.SetState(telemetry.StateDone)
					}
				}()
				defer func() {
					if r := recover(); r != nil {
						failed = true
						firstErr.Set(&mr.PanicError{Engine: "ramr", Worker: fmt.Sprintf("map worker %d", i), Value: r})
						trip()
					}
				}()
				if cpu := plan.MapperCPU[i]; cpu >= 0 && affinity.Supported() {
					unpin, _ := affinity.PinSelf(cpu)
					defer unpin()
				}
				var shard *trace.Shard
				if cfg.Trace != nil {
					shard = cfg.Trace.Shard(fmt.Sprintf("mapper-%d", i))
				}
				emit := func(k K, v V) {
					slab = append(slab, pair[K, V]{K: k, V: v})
					if len(slab) == cap(slab) {
						flush()
					}
				}
				if emitBatch <= 1 {
					emit = func(k K, v V) { q.Push(pair[K, V]{K: k, V: v}) }
				}
				// The emit counter is a plain local flushed into the
				// worker's atomic at task boundaries, so per-pair cost
				// with telemetry on is one non-atomic increment.
				emitted := 0
				if tw != nil {
					inner := emit
					emit = func(k K, v V) {
						emitted++
						inner(k, v)
					}
				}
				var taskHook func(int)
				if hk := cfg.Hooks; hk != nil {
					taskHook = hk.MapTask
					if hk.MapEmit != nil {
						inner := emit
						emit = func(k K, v V) {
							hk.MapEmit(i)
							inner(k, v)
						}
					}
				}
				tw.SetState(telemetry.StateWorking)
			takeLoop:
				for !abort.Load() && ctx.Err() == nil {
					t0, t1, cls, ok := tq.take(mapperGroup[i])
					if !ok {
						break
					}
					st.AddClass(cls, uint64(t1-t0))
					tw.AddSteal(int(cls), t1-t0)
					stolen := cls != topology.StealLocal
					var endSteal func()
					if shard != nil && stolen {
						endSteal = shard.Span("steal", map[string]any{
							"tasks": t1 - t0, "class": cls.String(),
						})
					}
					for t := t0; t < t1; t++ {
						if abort.Load() || ctx.Err() != nil {
							if endSteal != nil {
								endSteal()
							}
							break takeLoop
						}
						lo, hi := tq.tasks[t][0], tq.tasks[t][1]
						if taskHook != nil {
							taskHook(i)
						}
						var end func()
						if shard != nil {
							end = shard.Span("task", map[string]any{"splits": hi - lo})
						}
						for s := lo; s < hi; s++ {
							spec.Map(spec.Splits[s], emit)
						}
						flush()
						if end != nil {
							end()
						}
						if stolen {
							st.RemoteExecuted++
							tw.AddRemoteExecuted(1)
						}
						if tw != nil {
							tw.AddTasks(1)
							tw.AddEmitted(emitted)
							emitted = 0
							pu, fp, sl := q.ProducerStats()
							tw.StoreProducer(pu, fp, sl)
						}
					}
					if endSteal != nil {
						endSteal()
					}
				}
			})
		}(i)
	}

	// Combiner pool: the static path when the tuner is off (identical to
	// every prior release), the elastic pool + controller driver when on.
	var driver *tunerDriver
	if tcfg != nil {
		driver = startElastic(&elasticArgs[K, V]{
			ctx:        ctx,
			cfg:        cfg,
			tcfg:       tunerCfg,
			queues:     queues,
			mirrors:    mirrors,
			containers: containers,
			combine:    spec.Combine,
			plan:       plan,
			order:      localityOrder(mapperGroup),
			initial:    combiners,
			batch:      batch,
			tel:        tel,
			abort:      &abort,
			trip:       trip,
			firstErr:   &firstErr,
			wg:         &combWG,
		})
	}
	assign := QueueAssignment(mappers, combiners)
	for j := 0; tcfg == nil && j < combiners; j++ {
		combWG.Add(1)
		go func(j int) {
			defer combWG.Done()
			labels := pprof.Labels("engine", "ramr", "role", "combiner", "worker", strconv.Itoa(j))
			pprof.Do(ctx, labels, func(context.Context) {
				mine := queues[assign[j][0]:assign[j][1]]
				var tw *telemetry.Worker
				if tel != nil {
					tw = tel.RegisterWorker("combiner", j)
				}
				defer tw.SetState(telemetry.StateDone)
				defer func() {
					if r := recover(); r == nil {
						return
					} else {
						firstErr.Set(&mr.PanicError{Engine: "ramr", Worker: fmt.Sprintf("combine worker %d", j), Value: r})
						trip()
					}
					// Keep draining (and discarding) so producers blocked
					// on full rings can run to completion.
					drainDiscard(mine, batch)
				}()
				if cpu := plan.CombinerCPU[j]; cpu >= 0 && affinity.Supported() {
					unpin, _ := affinity.PinSelf(cpu)
					defer unpin()
				}
				var shard *trace.Shard
				if cfg.Trace != nil {
					shard = cfg.Trace.Shard(fmt.Sprintf("combiner-%d", j))
				}
				c := containers[j]
				apply := func(batch []pair[K, V]) {
					c.UpdateBatch(batch, spec.Combine)
				}
				if tw != nil {
					inner := apply
					apply = func(batch []pair[K, V]) {
						tw.AddCombined(len(batch))
						tw.AddBatches(1)
						inner(batch)
					}
				}
				var drainHook func(int)
				if hk := cfg.Hooks; hk != nil {
					drainHook = hk.CombineDrain
					if hk.CombineBatch != nil {
						inner := apply
						apply = func(batch []pair[K, V]) {
							hk.CombineBatch(j)
							inner(batch)
						}
					}
				}
				// state stores only on transitions so a polling round
				// costs no atomic traffic while the state is stable.
				curState := telemetry.StateIdle
				setState := func(s telemetry.State) {
					if s != curState {
						curState = s
						tw.SetState(s)
					}
				}
				draining := false
				idleRounds := 0
				for {
					// Once another worker tripped abort the run is
					// doomed: stop feeding user Combine and switch to
					// drain-and-discard so producers blocked on full
					// rings unwedge without burning user-code cycles.
					if abort.Load() {
						drainDiscard(mine, batch)
						return
					}
					var end func()
					if shard != nil {
						end = shard.Span("consume", nil)
					}
					consumed, alive := 0, false
					for _, q := range mine {
						if q.Drained() {
							continue
						}
						alive = true
						// While the producer is live, wait for full
						// blocks; once it closed, force-drain the tail.
						closed := q.Closed()
						if closed && !draining {
							draining = true
							if drainHook != nil {
								drainHook(j)
							}
						}
						consumed += q.ConsumeBatch(batch, closed, apply)
					}
					if end != nil {
						if consumed > 0 {
							end()
						}
					}
					if !alive {
						return
					}
					if consumed == 0 {
						idleRounds++
						setState(telemetry.StateIdle)
						if idleRounds < 4 {
							runtime.Gosched()
						} else {
							time.Sleep(combinerIdle)
						}
					} else {
						idleRounds = 0
						if draining {
							setState(telemetry.StateDraining)
						} else {
							setState(telemetry.StateWorking)
						}
					}
				}
			})
		}(j)
	}

	mapWG.Wait()
	combWG.Wait()
	res.Phases.MapCombine = time.Since(t0)
	// Every mapper's fold happened-before mapWG.Wait returned, so the
	// aggregate is stable here without further synchronization.
	stealMu.Lock()
	res.Steal = stealAgg
	stealMu.Unlock()
	if driver != nil {
		// Fence the driver before reading its report (and before any
		// error return): no controller step can be in flight after stop.
		driver.stop()
		res.TunerReport = driver.report()
	}
	// The invariant observer and the pre-reduce hook run before the
	// error checks: a failed run must still report per-queue drain state,
	// and a cancellation injected at the pre-reduce point must still be
	// honored by the ctx check below.
	if hk := cfg.Hooks; hk != nil && hk.QueueObserver != nil {
		for i, q := range queues {
			hk.QueueObserver(i, q.Drained(), q.Snapshot())
		}
	}
	cfg.Hooks.FirePreReduce()
	if err := firstErr.Get(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for _, q := range queues {
		res.QueueStats.Add(q.Snapshot())
	}

	// --- Reduce: identical to the baseline from here on. ---
	t0 = time.Now()
	merged, err := mr.MergeContainers(containers, spec.Combine)
	if err != nil {
		return nil, err
	}
	pairs, err := mr.ReduceAll(merged, spec.Reduce, mappers+combiners)
	if err != nil {
		return nil, err
	}
	res.Phases.Reduce = time.Since(t0)

	// --- Merge: parallel sort over the general-purpose pool. ---
	t0 = time.Now()
	mr.SortPairsParallel(pairs, spec.Less, mappers+combiners)
	res.Phases.Merge = time.Since(t0)

	res.Pairs = pairs
	if tel != nil {
		rep := tel.EndRun(res.Phases.SecondsByPhase())
		// A tuner-private telemetry is a clock, not a report the user
		// asked for; attach only when the user configured one.
		if cfg.Telemetry != nil {
			res.Telemetry = rep
		}
	}
	return res, nil
}

// validateGrant checks a CPU grant against the resolved machine: every id
// must name an existing logical CPU. Uniqueness and sign were already
// enforced by Config.Validate; this is the machine-dependent half, checked
// once per run before any resource is allocated.
func validateGrant(machine *topology.Machine, grant []int) error {
	n := machine.NumCPUs()
	for _, cpu := range grant {
		if cpu >= n {
			return fmt.Errorf("core: CPUGrant cpu %d out of range for %s (%d logical CPUs)", cpu, machine.Name, n)
		}
	}
	return nil
}

// drainDiscard empties every queue in qs without touching user code,
// looping until all are drained. This is the abort path's release valve:
// a producer blocked on a full ring is freed only by its consumer, so a
// doomed combiner must keep popping — and discarding — until every one of
// its producers has finished its in-flight task and closed.
func drainDiscard[K comparable, V any](qs []*spsc.Queue[pair[K, V]], batch int) {
	for {
		done := true
		for _, q := range qs {
			if q.Drained() {
				continue
			}
			done = false
			q.DiscardBatch(batch)
		}
		if done {
			return
		}
		runtime.Gosched()
	}
}

// mapperGroups assigns each mapper the locality-group index it draws
// tasks from: the group containing its pinned CPU, or round-robin for
// unpinned mappers. Steering goes through Machine.GroupOf because a CPU's
// Socket field is an OS label that need not be dense — using it directly
// as a group index would silently alias through the modulo in
// taskQueues.next and send mappers to remote groups' task queues.
func mapperGroups(machine *topology.Machine, plan Plan, mappers, groups int) []int {
	mg := make([]int, mappers)
	for i := range mg {
		mg[i] = i % groups
		if cpu := plan.MapperCPU[i]; cpu >= 0 {
			if g, ok := machine.GroupOf(cpu); ok {
				mg[i] = g
			}
		}
	}
	return mg
}

// groupDeque is one locality group's task store: a contiguous window
// [head, tail) of task ids, seeded once and only ever shrunk. The owning
// group's mappers take chunks from the head; thieves take halves from the
// tail, so the two ends contend only when the window is nearly empty.
type groupDeque struct {
	mu         sync.Mutex
	head, tail int
}

// taskQueues implements the map phase's task steering: one chunked deque
// per locality group plus the machine's precomputed distance-ranked victim
// order. Mappers drain their own deque in guided-self-scheduling chunks
// (amortizing the lock the way the old design amortized its atomic, but
// over whole batches); when the local deque empties and stealing is on,
// they steal half the remaining window from the nearest non-empty victim.
// Stolen batches are executed privately by the thief and never
// re-enqueued, which is what makes the conservation invariant exact:
// tasks stolen == tasks executed remotely. Only input-split task ids ever
// move between groups — SPSC queue ownership never does.
type taskQueues struct {
	deques    []groupDeque
	victims   [][]int                 // probe order per thief group
	class     [][]topology.StealClass // steal class per (thief, victim)
	tasks     [][2]int
	mappersIn []int // mappers drawing from each group, for chunk sizing
	steal     bool
}

// newTaskQueues seeds one deque per locality group with a contiguous block
// of tasks proportional to the mappers actually drawing from that group
// (largest-remainder rounding), not round-robin: under an asymmetric CPU
// grant a group holding one mapper gets one mapper's share of tasks, and a
// group holding none gets nothing — so the StealOff baseline terminates
// and the stealing path starts balanced instead of relying on steals to
// undo a skewed seed.
func newTaskQueues(tasks [][2]int, machine *topology.Machine, mappersIn []int, policy mr.StealPolicy) *taskQueues {
	groups := len(mappersIn)
	tq := &taskQueues{
		deques:    make([]groupDeque, groups),
		victims:   machine.VictimOrder(),
		class:     make([][]topology.StealClass, groups),
		tasks:     tasks,
		mappersIn: mappersIn,
		steal:     policy != mr.StealOff,
	}
	for g := 0; g < groups; g++ {
		tq.class[g] = make([]topology.StealClass, groups)
		for v := 0; v < groups; v++ {
			tq.class[g][v] = machine.GroupStealClass(g, v)
		}
	}
	shares := seedShares(len(tasks), mappersIn)
	off := 0
	for g := range tq.deques {
		tq.deques[g].head = off
		off += shares[g]
		tq.deques[g].tail = off
	}
	return tq
}

// seedShares splits total tasks across groups proportionally to weights
// using largest-remainder rounding (ties to the lower group index), so the
// shares always sum to total and a zero-weight group gets zero.
func seedShares(total int, weights []int) []int {
	shares := make([]int, len(weights))
	sumW := 0
	for _, w := range weights {
		sumW += w
	}
	if sumW == 0 {
		// No mapper draws from any group (impossible for a validated
		// config, which has >= 1 mapper); park everything in group 0.
		if len(shares) > 0 {
			shares[0] = total
		}
		return shares
	}
	assigned := 0
	rems := make([]int, len(weights))
	for g, w := range weights {
		shares[g] = total * w / sumW
		rems[g] = total * w % sumW
		assigned += shares[g]
	}
	for assigned < total {
		best := -1
		for g := range rems {
			if rems[g] > 0 && (best < 0 || rems[g] > rems[best]) {
				best = g
			}
		}
		if best < 0 {
			best = 0
		}
		shares[best]++
		rems[best] = 0
		assigned++
	}
	return shares
}

// chunkFor is the guided-self-scheduling chunk: half the remaining window
// divided evenly over the group's mappers, never below 1. Early takes move
// big batches (one lock acquisition for many tasks); the tail shrinks to
// single tasks so the last chunks still balance.
func chunkFor(rem, mappers int) int {
	if mappers < 1 {
		mappers = 1
	}
	n := rem / (2 * mappers)
	if n < 1 {
		n = 1
	}
	return n
}

// take returns the next batch of task ids [lo, hi) for a mapper in group
// g, plus the steal class of the source deque. ok is false only at global
// exhaustion (or local exhaustion under StealOff). Deques never refill, so
// a single pass over the victim order is a sound termination check: a
// deque observed empty stays empty.
func (tq *taskQueues) take(g int) (lo, hi int, class topology.StealClass, ok bool) {
	d := &tq.deques[g]
	d.mu.Lock()
	if rem := d.tail - d.head; rem > 0 {
		n := chunkFor(rem, tq.mappersIn[g])
		lo, hi = d.head, d.head+n
		d.head += n
		d.mu.Unlock()
		return lo, hi, topology.StealLocal, true
	}
	d.mu.Unlock()
	if !tq.steal {
		return 0, 0, topology.StealLocal, false
	}
	for _, v := range tq.victims[g] {
		dv := &tq.deques[v]
		dv.mu.Lock()
		if rem := dv.tail - dv.head; rem > 0 {
			n := (rem + 1) / 2
			lo, hi = dv.tail-n, dv.tail
			dv.tail -= n
			dv.mu.Unlock()
			return lo, hi, tq.class[g][v], true
		}
		dv.mu.Unlock()
	}
	return 0, 0, topology.StealLocal, false
}

// remaining returns the live task count across all deques (tests only).
func (tq *taskQueues) remaining() int {
	n := 0
	for g := range tq.deques {
		d := &tq.deques[g]
		d.mu.Lock()
		n += d.tail - d.head
		d.mu.Unlock()
	}
	return n
}
