package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/topology"
)

// countSpec builds a job whose splits each emit `emits` pairs over a key
// range; the serial reference is trivially computable.
func countSpec(splits, emits, keys int) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "count",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < emits; e++ {
				emit((s*emits+e)%keys, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](keys) },
		Less:         func(a, b int) bool { return a < b },
	}
}

func testConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Mappers = 3
	cfg.Combiners = 2
	cfg.QueueCapacity = 128
	cfg.BatchSize = 16
	cfg.Machine = topology.Flat(4)
	cfg.Pin = mr.PinNone
	return cfg
}

func TestRunCorrectness(t *testing.T) {
	spec := countSpec(40, 25, 17)
	res, err := Run(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 17 {
		t.Fatalf("%d keys, want 17", len(res.Pairs))
	}
	total := 0
	for i, p := range res.Pairs {
		if p.Key != i {
			t.Fatalf("keys not sorted: %v", res.Pairs)
		}
		total += p.Value
	}
	if total != 40*25 {
		t.Fatalf("total = %d, want %d", total, 40*25)
	}
	if res.QueueStats.Pushes != uint64(40*25) || res.QueueStats.Pushes != res.QueueStats.Pops {
		t.Fatalf("queue stats: %+v", res.QueueStats)
	}
	if res.Phases.Total() <= 0 {
		t.Fatal("phases not recorded")
	}
}

func TestRunValidation(t *testing.T) {
	spec := countSpec(4, 4, 4)
	bad := testConfig()
	bad.Mappers = 0
	if _, err := Run(spec, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	broken := *spec
	broken.Map = nil
	if _, err := Run(&broken, testConfig()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestBatchLargerThanQueue is the deadlock regression: a consume batch
// exceeding the ring capacity must be clamped, or a blocked producer and a
// batch-starved consumer wait on each other forever.
func TestBatchLargerThanQueue(t *testing.T) {
	spec := countSpec(20, 200, 7)
	cfg := testConfig()
	cfg.QueueCapacity = 32
	cfg.BatchSize = 100_000
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 20*200 {
		t.Fatalf("total = %d", total)
	}
}

func TestEmptyInput(t *testing.T) {
	spec := countSpec(0, 5, 5)
	res, err := Run(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("expected empty output, got %d pairs", len(res.Pairs))
	}
}

func TestSingleMapperSingleCombiner(t *testing.T) {
	spec := countSpec(10, 10, 3)
	cfg := testConfig()
	cfg.Mappers = 1
	cfg.Combiners = 1
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("%d keys", len(res.Pairs))
	}
}

func TestMoreCombinersThanMappersClamped(t *testing.T) {
	spec := countSpec(10, 10, 3)
	cfg := testConfig()
	cfg.Mappers = 2
	cfg.Combiners = 8 // NumCombiners clamps to Mappers
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
}

func TestAllPinPoliciesProduceSameResult(t *testing.T) {
	spec := countSpec(30, 40, 11)
	var want []mr.Pair[int, int]
	for _, pin := range []mr.PinPolicy{mr.PinRAMR, mr.PinRoundRobin, mr.PinNone} {
		cfg := testConfig()
		cfg.Pin = pin
		cfg.Machine = topology.HaswellServer() // plans target cpus the host lacks: must degrade gracefully
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("%v: %v", pin, err)
		}
		if want == nil {
			want = res.Pairs
			continue
		}
		if len(res.Pairs) != len(want) {
			t.Fatalf("%v: output size differs", pin)
		}
		for i := range want {
			if res.Pairs[i] != want[i] {
				t.Fatalf("%v: pair %d differs", pin, i)
			}
		}
	}
}

func TestWaitPolicies(t *testing.T) {
	for _, wait := range []spsc.WaitPolicy{spsc.WaitSleep, spsc.WaitBusy} {
		spec := countSpec(10, 100, 5)
		cfg := testConfig()
		cfg.Wait = wait
		cfg.QueueCapacity = 16 // force blocked pushes
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("%v: %v", wait, err)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if total != 1000 {
			t.Fatalf("%v: total = %d", wait, total)
		}
	}
}

func TestRatioDerivedCombiners(t *testing.T) {
	spec := countSpec(12, 10, 5)
	cfg := testConfig()
	cfg.Combiners = 0
	cfg.Ratio = 3
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 5 {
		t.Fatalf("%d keys", len(res.Pairs))
	}
}

func TestTaskQueuesStealAcrossGroups(t *testing.T) {
	tasks := mr.Tasks(10, 1)
	tq := newTaskQueues(tasks, 3)
	seen := map[int]bool{}
	// A single "mapper" in group 2 must still drain every task.
	for {
		lo, _, ok := tq.next(2)
		if !ok {
			break
		}
		if seen[lo] {
			t.Fatalf("task %d dispensed twice", lo)
		}
		seen[lo] = true
	}
	if len(seen) != 10 {
		t.Fatalf("drained %d tasks, want 10", len(seen))
	}
}

func TestTaskQueuesConcurrentExactlyOnce(t *testing.T) {
	tasks := mr.Tasks(500, 1)
	tq := newTaskQueues(tasks, 4)
	var claimed [500]atomic.Int32
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for {
				lo, _, ok := tq.next(g % 4)
				if !ok {
					return
				}
				claimed[lo].Add(1)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	for i := range claimed {
		if n := claimed[i].Load(); n != 1 {
			t.Fatalf("task %d claimed %d times", i, n)
		}
	}
}

// nonDenseMachine models firmware that numbers its two packages 0 and 2,
// as sub-NUMA clustering and offline nodes do on real hosts.
func nonDenseMachine() *topology.Machine {
	return &topology.Machine{
		Name:           "non-dense",
		Sockets:        2,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		Enum:           topology.EnumCompact,
		SocketIDs:      []int{0, 2},
		Caches: []topology.CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: topology.ScopePerCore, LatencyCycles: 4},
		},
		MemLatencyCycles: 200,
	}
}

// TestMapperGroupsNonDenseSockets is the task-steering regression: a mapper
// pinned to a CPU on socket *label* 2 of a two-socket machine must draw
// from locality group 1, not "group 2" — the raw label aliases through the
// modulo in taskQueues.next and lands the mapper on the wrong NUMA node's
// task queue.
func TestMapperGroupsNonDenseSockets(t *testing.T) {
	machine := nonDenseMachine()
	groups := machine.LocalityGroups()
	if len(groups) != 2 {
		t.Fatalf("%d locality groups, want 2", len(groups))
	}
	// CPU 2 is the first core of the second socket (label 2) under
	// EnumCompact.
	cpu, err := machine.CPUByID(2)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Socket != 2 {
		t.Fatalf("cpu 2 on socket label %d, want 2", cpu.Socket)
	}
	plan := Plan{MapperCPU: []int{-1, 2}, CombinerCPU: []int{-1}}
	mg := mapperGroups(machine, plan, 2, len(groups))
	for i, g := range mg {
		if g < 0 || g >= len(groups) {
			t.Fatalf("mapper %d steered to group %d, outside [0,%d)", i, g, len(groups))
		}
	}
	if mg[1] != 1 {
		t.Fatalf("mapper pinned to socket label 2 steered to group %d, want 1", mg[1])
	}
	if mg[0] != 0 {
		t.Fatalf("unpinned mapper steered to group %d, want 0", mg[0])
	}
}

// TestRunOnNonDenseSockets runs the full pipeline pinned on the non-dense
// machine; the host may lack those CPUs (pinning degrades gracefully) but
// the task steering must stay in range and the result exact.
func TestRunOnNonDenseSockets(t *testing.T) {
	spec := countSpec(16, 50, 11)
	cfg := testConfig()
	cfg.Mappers = 4
	cfg.Combiners = 2
	cfg.Machine = nonDenseMachine()
	cfg.Pin = mr.PinRAMR
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 16*50 {
		t.Fatalf("total = %d, want %d", total, 16*50)
	}
}

// TestHeavyContention pushes many more elements than queue capacity
// through a 1:1 pipeline to exercise wraparound, blocking and drain.
func TestHeavyContention(t *testing.T) {
	spec := countSpec(64, 500, 97)
	cfg := testConfig()
	cfg.Mappers = 4
	cfg.Combiners = 4
	cfg.QueueCapacity = 64
	cfg.BatchSize = 32
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if want := 64 * 500; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestResultDeterministicAcrossRuns(t *testing.T) {
	spec := countSpec(25, 30, 13)
	cfg := testConfig()
	var first string
	for run := 0; run < 3; run++ {
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := fmt.Sprint(res.Pairs)
		if first == "" {
			first = s
		} else if s != first {
			t.Fatalf("run %d output differs", run)
		}
	}
}

// TestEmitBatchSweep pins that every emit-slab size — including 1 (the
// single-Push ablation path), an oversize value clamped to the ring, and
// the derived default — yields the identical result and element-exact
// queue accounting.
func TestEmitBatchSweep(t *testing.T) {
	spec := countSpec(40, 25, 17)
	for _, eb := range []int{0, 1, 3, 64, 100_000} {
		cfg := testConfig()
		cfg.EmitBatch = eb
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("EmitBatch=%d: %v", eb, err)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if total != 40*25 {
			t.Fatalf("EmitBatch=%d: total = %d, want %d", eb, total, 40*25)
		}
		if res.QueueStats.Pushes != uint64(40*25) || res.QueueStats.Pushes != res.QueueStats.Pops {
			t.Fatalf("EmitBatch=%d: queue stats: %+v", eb, res.QueueStats)
		}
	}
}
