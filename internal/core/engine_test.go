package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/topology"
)

// countSpec builds a job whose splits each emit `emits` pairs over a key
// range; the serial reference is trivially computable.
func countSpec(splits, emits, keys int) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "count",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < emits; e++ {
				emit((s*emits+e)%keys, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](keys) },
		Less:         func(a, b int) bool { return a < b },
	}
}

func testConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Mappers = 3
	cfg.Combiners = 2
	cfg.QueueCapacity = 128
	cfg.BatchSize = 16
	cfg.Machine = topology.Flat(4)
	cfg.Pin = mr.PinNone
	return cfg
}

func TestRunCorrectness(t *testing.T) {
	spec := countSpec(40, 25, 17)
	res, err := Run(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 17 {
		t.Fatalf("%d keys, want 17", len(res.Pairs))
	}
	total := 0
	for i, p := range res.Pairs {
		if p.Key != i {
			t.Fatalf("keys not sorted: %v", res.Pairs)
		}
		total += p.Value
	}
	if total != 40*25 {
		t.Fatalf("total = %d, want %d", total, 40*25)
	}
	if res.QueueStats.Pushes != uint64(40*25) || res.QueueStats.Pushes != res.QueueStats.Pops {
		t.Fatalf("queue stats: %+v", res.QueueStats)
	}
	if res.Phases.Total() <= 0 {
		t.Fatal("phases not recorded")
	}
}

func TestRunValidation(t *testing.T) {
	spec := countSpec(4, 4, 4)
	bad := testConfig()
	bad.Mappers = 0
	if _, err := Run(spec, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	broken := *spec
	broken.Map = nil
	if _, err := Run(&broken, testConfig()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestBatchLargerThanQueue is the deadlock regression: a consume batch
// exceeding the ring capacity must be clamped, or a blocked producer and a
// batch-starved consumer wait on each other forever.
func TestBatchLargerThanQueue(t *testing.T) {
	spec := countSpec(20, 200, 7)
	cfg := testConfig()
	cfg.QueueCapacity = 32
	cfg.BatchSize = 100_000
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 20*200 {
		t.Fatalf("total = %d", total)
	}
}

func TestEmptyInput(t *testing.T) {
	spec := countSpec(0, 5, 5)
	res, err := Run(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("expected empty output, got %d pairs", len(res.Pairs))
	}
}

func TestSingleMapperSingleCombiner(t *testing.T) {
	spec := countSpec(10, 10, 3)
	cfg := testConfig()
	cfg.Mappers = 1
	cfg.Combiners = 1
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("%d keys", len(res.Pairs))
	}
}

func TestMoreCombinersThanMappersClamped(t *testing.T) {
	spec := countSpec(10, 10, 3)
	cfg := testConfig()
	cfg.Mappers = 2
	cfg.Combiners = 8 // NumCombiners clamps to Mappers
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
}

func TestAllPinPoliciesProduceSameResult(t *testing.T) {
	spec := countSpec(30, 40, 11)
	var want []mr.Pair[int, int]
	for _, pin := range []mr.PinPolicy{mr.PinRAMR, mr.PinRoundRobin, mr.PinNone} {
		cfg := testConfig()
		cfg.Pin = pin
		cfg.Machine = topology.HaswellServer() // plans target cpus the host lacks: must degrade gracefully
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("%v: %v", pin, err)
		}
		if want == nil {
			want = res.Pairs
			continue
		}
		if len(res.Pairs) != len(want) {
			t.Fatalf("%v: output size differs", pin)
		}
		for i := range want {
			if res.Pairs[i] != want[i] {
				t.Fatalf("%v: pair %d differs", pin, i)
			}
		}
	}
}

func TestWaitPolicies(t *testing.T) {
	for _, wait := range []spsc.WaitPolicy{spsc.WaitSleep, spsc.WaitBusy} {
		spec := countSpec(10, 100, 5)
		cfg := testConfig()
		cfg.Wait = wait
		cfg.QueueCapacity = 16 // force blocked pushes
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("%v: %v", wait, err)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if total != 1000 {
			t.Fatalf("%v: total = %d", wait, total)
		}
	}
}

func TestRatioDerivedCombiners(t *testing.T) {
	spec := countSpec(12, 10, 5)
	cfg := testConfig()
	cfg.Combiners = 0
	cfg.Ratio = 3
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 5 {
		t.Fatalf("%d keys", len(res.Pairs))
	}
}

// multiSocket builds a synthetic n-node machine (2 cores per node, no
// SMT, per-node LLC) for deque steering tests.
func multiSocket(n int) *topology.Machine {
	return &topology.Machine{
		Name:           "multi-socket",
		Sockets:        n,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		Enum:           topology.EnumCompact,
		Caches: []topology.CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: topology.ScopePerCore, LatencyCycles: 4},
			{Level: 3, SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16, Scope: topology.ScopePerSocket, LatencyCycles: 40},
		},
		MemLatencyCycles:         200,
		CrossSocketPenaltyCycles: 100,
	}
}

func TestTaskQueuesStealAcrossGroups(t *testing.T) {
	tasks := mr.Tasks(10, 1)
	// One mapper per group seeds every group tasks, but only group 2's
	// mapper runs: it must drain the whole set, stealing the other
	// groups' shares, and classify those takes as remote.
	tq := newTaskQueues(tasks, multiSocket(3), []int{1, 1, 1}, mr.StealChunked)
	seen := map[int]bool{}
	stolen := 0
	for {
		lo, hi, cls, ok := tq.take(2)
		if !ok {
			break
		}
		if cls != topology.StealLocal {
			stolen += hi - lo
			if cls != topology.StealRemote {
				t.Fatalf("cross-socket steal classified %v, want remote", cls)
			}
		}
		for task := lo; task < hi; task++ {
			if seen[task] {
				t.Fatalf("task %d dispensed twice", task)
			}
			seen[task] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("drained %d tasks, want 10", len(seen))
	}
	if stolen == 0 {
		t.Fatal("lone mapper drained three seeded groups without a single steal")
	}
	if tq.remaining() != 0 {
		t.Fatalf("%d tasks still queued after exhaustion", tq.remaining())
	}
}

// TestTaskQueuesStealOffStaysLocal: under StealOff a mapper sees only its
// own group's seed, and the other groups' mappers can still drain theirs.
func TestTaskQueuesStealOffStaysLocal(t *testing.T) {
	tasks := mr.Tasks(12, 1)
	tq := newTaskQueues(tasks, multiSocket(3), []int{1, 1, 1}, mr.StealOff)
	counts := make([]int, 3)
	for g := 0; g < 3; g++ {
		for {
			lo, hi, cls, ok := tq.take(g)
			if !ok {
				break
			}
			if cls != topology.StealLocal {
				t.Fatalf("StealOff produced a %v take", cls)
			}
			counts[g] += hi - lo
		}
	}
	for g, n := range counts {
		if n != 4 {
			t.Fatalf("group %d drained %d tasks, want its seeded 4", g, n)
		}
	}
}

func TestTaskQueuesConcurrentExactlyOnce(t *testing.T) {
	tasks := mr.Tasks(500, 1)
	machine := multiSocket(4)
	// 8 workers, 2 per group, matching the mappersIn weights.
	tq := newTaskQueues(tasks, machine, []int{2, 2, 2, 2}, mr.StealChunked)
	var claimed [500]atomic.Int32
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for {
				lo, hi, _, ok := tq.take(g)
				if !ok {
					return
				}
				for task := lo; task < hi; task++ {
					claimed[task].Add(1)
				}
			}
		}(w % 4)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	for i := range claimed {
		if n := claimed[i].Load(); n != 1 {
			t.Fatalf("task %d claimed %d times", i, n)
		}
	}
	if tq.remaining() != 0 {
		t.Fatalf("%d tasks left after global exhaustion", tq.remaining())
	}
}

// TestSeedSharesProportional is the partitioning bugfix regression: shares
// follow mapper weights (largest remainder), zero-weight groups get
// nothing, and the shares always sum to the total.
func TestSeedSharesProportional(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
		want    []int
	}{
		{10, []int{1, 1}, []int{5, 5}},
		{10, []int{3, 1}, []int{8, 2}}, // 7.5/2.5: equal fractions, tie to the lower group
		{10, []int{1, 0}, []int{10, 0}},
		{7, []int{1, 1, 1}, []int{3, 2, 2}},
		{0, []int{2, 1}, []int{0, 0}},
		{5, []int{0, 0}, []int{5, 0}}, // degenerate: park in group 0
	}
	for _, c := range cases {
		got := seedShares(c.total, c.weights)
		sum := 0
		for g := range got {
			sum += got[g]
			if got[g] != c.want[g] {
				t.Fatalf("seedShares(%d, %v) = %v, want %v", c.total, c.weights, got, c.want)
			}
		}
		if sum != c.total {
			t.Fatalf("seedShares(%d, %v) sums to %d", c.total, c.weights, sum)
		}
	}
}

// TestSeedSharesGrantFiltered seeds deques from a grant-filtered plan: a
// CPU grant confined to socket 0 must put every mapper — and therefore
// every task — in group 0, leaving group 1 empty so the StealOff baseline
// cannot strand work in a mapper-less group.
func TestSeedSharesGrantFiltered(t *testing.T) {
	machine := topology.Fig3Example()
	grant := []int{0, 1, 2, 3} // socket 0 cores only
	mappers := 3
	plan := BuildPlanOn(machine, grant, mappers, 1, mr.PinRAMR)
	groups := machine.LocalityGroups()
	mg := mapperGroups(machine, plan, mappers, len(groups))
	mappersIn := make([]int, len(groups))
	for _, g := range mg {
		mappersIn[g]++
	}
	if mappersIn[0] != mappers || mappersIn[1] != 0 {
		t.Fatalf("grant-filtered mappers per group = %v, want [%d 0]", mappersIn, mappers)
	}
	tasks := mr.Tasks(40, 1)
	tq := newTaskQueues(tasks, machine, mappersIn, mr.StealOff)
	if got := tq.deques[0].tail - tq.deques[0].head; got != 40 {
		t.Fatalf("group 0 seeded %d tasks, want all 40", got)
	}
	if got := tq.deques[1].tail - tq.deques[1].head; got != 0 {
		t.Fatalf("mapper-less group 1 seeded %d tasks, want 0", got)
	}
}

// TestTaskQueuesVictimOrderPreferred: on a 4-node ring with uniform
// cross-node cost, a thief in group 1 must steal from group 2 first (ring
// order), not group 0.
func TestTaskQueuesVictimOrderPreferred(t *testing.T) {
	tasks := mr.Tasks(40, 1)
	tq := newTaskQueues(tasks, multiSocket(4), []int{1, 1, 1, 1}, mr.StealChunked)
	// Group 1's own seed is [10, 20); once it drains, the first steal
	// must come from group 2's seed [20, 30) — the ring-order victim.
	for {
		lo, hi, cls, ok := tq.take(1)
		if !ok {
			t.Fatal("queues exhausted before any steal")
		}
		if cls == topology.StealLocal {
			continue
		}
		if lo < 20 || hi > 30 {
			t.Fatalf("first steal took [%d,%d), want within group 2's seed [20,30)", lo, hi)
		}
		break
	}
}

// nonDenseMachine models firmware that numbers its two packages 0 and 2,
// as sub-NUMA clustering and offline nodes do on real hosts.
func nonDenseMachine() *topology.Machine {
	return &topology.Machine{
		Name:           "non-dense",
		Sockets:        2,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		Enum:           topology.EnumCompact,
		SocketIDs:      []int{0, 2},
		Caches: []topology.CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: topology.ScopePerCore, LatencyCycles: 4},
		},
		MemLatencyCycles: 200,
	}
}

// TestMapperGroupsNonDenseSockets is the task-steering regression: a mapper
// pinned to a CPU on socket *label* 2 of a two-socket machine must draw
// from locality group 1, not "group 2" — the raw label aliases through the
// modulo in taskQueues.next and lands the mapper on the wrong NUMA node's
// task queue.
func TestMapperGroupsNonDenseSockets(t *testing.T) {
	machine := nonDenseMachine()
	groups := machine.LocalityGroups()
	if len(groups) != 2 {
		t.Fatalf("%d locality groups, want 2", len(groups))
	}
	// CPU 2 is the first core of the second socket (label 2) under
	// EnumCompact.
	cpu, err := machine.CPUByID(2)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Socket != 2 {
		t.Fatalf("cpu 2 on socket label %d, want 2", cpu.Socket)
	}
	plan := Plan{MapperCPU: []int{-1, 2}, CombinerCPU: []int{-1}}
	mg := mapperGroups(machine, plan, 2, len(groups))
	for i, g := range mg {
		if g < 0 || g >= len(groups) {
			t.Fatalf("mapper %d steered to group %d, outside [0,%d)", i, g, len(groups))
		}
	}
	if mg[1] != 1 {
		t.Fatalf("mapper pinned to socket label 2 steered to group %d, want 1", mg[1])
	}
	if mg[0] != 0 {
		t.Fatalf("unpinned mapper steered to group %d, want 0", mg[0])
	}
}

// TestRunOnNonDenseSockets runs the full pipeline pinned on the non-dense
// machine; the host may lack those CPUs (pinning degrades gracefully) but
// the task steering must stay in range and the result exact.
func TestRunOnNonDenseSockets(t *testing.T) {
	spec := countSpec(16, 50, 11)
	cfg := testConfig()
	cfg.Mappers = 4
	cfg.Combiners = 2
	cfg.Machine = nonDenseMachine()
	cfg.Pin = mr.PinRAMR
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 16*50 {
		t.Fatalf("total = %d, want %d", total, 16*50)
	}
}

// TestHeavyContention pushes many more elements than queue capacity
// through a 1:1 pipeline to exercise wraparound, blocking and drain.
func TestHeavyContention(t *testing.T) {
	spec := countSpec(64, 500, 97)
	cfg := testConfig()
	cfg.Mappers = 4
	cfg.Combiners = 4
	cfg.QueueCapacity = 64
	cfg.BatchSize = 32
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if want := 64 * 500; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestResultDeterministicAcrossRuns(t *testing.T) {
	spec := countSpec(25, 30, 13)
	cfg := testConfig()
	var first string
	for run := 0; run < 3; run++ {
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := fmt.Sprint(res.Pairs)
		if first == "" {
			first = s
		} else if s != first {
			t.Fatalf("run %d output differs", run)
		}
	}
}

// TestEmitBatchSweep pins that every emit-slab size — including 1 (the
// single-Push ablation path), an oversize value clamped to the ring, and
// the derived default — yields the identical result and element-exact
// queue accounting.
func TestEmitBatchSweep(t *testing.T) {
	spec := countSpec(40, 25, 17)
	for _, eb := range []int{0, 1, 3, 64, 100_000} {
		cfg := testConfig()
		cfg.EmitBatch = eb
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("EmitBatch=%d: %v", eb, err)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if total != 40*25 {
			t.Fatalf("EmitBatch=%d: total = %d, want %d", eb, total, 40*25)
		}
		if res.QueueStats.Pushes != uint64(40*25) || res.QueueStats.Pushes != res.QueueStats.Pops {
			t.Fatalf("EmitBatch=%d: queue stats: %+v", eb, res.QueueStats)
		}
	}
}
