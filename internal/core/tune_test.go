package core

import (
	"testing"

	"ramr/internal/container"
	"ramr/internal/mr"
)

// burn consumes CPU proportional to n in a way the compiler keeps.
func burn(n int) int {
	s := 1
	for i := 0; i < n; i++ {
		s = s*31 + i
	}
	return s
}

func tuneSpec(mapWork, combineWork int) *mr.Spec[int, int, int, int] {
	in := make([]int, 512)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "tune",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < 200; e++ {
				emit(e%13, 1+burn(mapWork)&1)
			}
		},
		Combine: func(a, b int) int {
			return a + b + burn(combineWork)&1
		},
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](13) },
	}
}

func TestTuneRatioHeavyMap(t *testing.T) {
	// Map does ~100x the per-element work of combine: the ratio must be
	// clearly above 1.
	r, err := TuneRatio(tuneSpec(2000, 5), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r < 4 {
		t.Fatalf("heavy map should yield a high ratio, got %d", r)
	}
}

func TestTuneRatioHeavyCombine(t *testing.T) {
	// Combine dominates: equal pools (ratio 1).
	r, err := TuneRatio(tuneSpec(1, 3000), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("heavy combine should yield ratio 1, got %d", r)
	}
}

func TestTuneRatioBounds(t *testing.T) {
	r, err := TuneRatio(tuneSpec(20_000, 0), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r > maxTunedRatio {
		t.Fatalf("ratio %d exceeds bound", r)
	}
}

func TestTuneRatioEmptyInput(t *testing.T) {
	s := tuneSpec(1, 1)
	s.Splits = nil
	r, err := TuneRatio(s, testConfig())
	if err != nil || r != 1 {
		t.Fatalf("empty input: got %d, %v", r, err)
	}
}

func TestTuneRatioInvalidSpec(t *testing.T) {
	s := tuneSpec(1, 1)
	s.Map = nil
	if _, err := TuneRatio(s, testConfig()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestTuneRatioEndToEnd: feed the tuned ratio back into a real run.
func TestTuneRatioEndToEnd(t *testing.T) {
	spec := tuneSpec(500, 5)
	cfg := testConfig()
	r, err := TuneRatio(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Combiners = 0
	cfg.Ratio = r
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 13 {
		t.Fatalf("%d keys", len(res.Pairs))
	}
}
