package core

import (
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
)

// maxTunedRatio bounds TuneRatio's recommendation; beyond this the
// combiner pool degenerates to a single worker on any realistic machine.
const maxTunedRatio = 32

// tuneSampleTarget is roughly how many intermediate pairs the calibration
// tries to observe; enough to amortize timer resolution, small enough to
// stay a negligible fraction of a real job.
const tuneSampleTarget = 50_000

// TuneRatio estimates the mapper-to-combiner ratio for a job by measuring
// the throughput of its map and combine functions on a sample of the
// input, implementing §III-B: "this ratio is application dependent and is
// driven by the throughput (in processed elements/second) of the map and
// combine functions. For instance, a workload with equivalent map and
// combine processing rate requires equal number of mapper and combiner
// threads to operate steadily."
//
// The calibration maps sample splits into a buffer (timing the map
// function), then folds the buffered pairs into a fresh container (timing
// the combine path), and returns round(mapTime/combineTime) clamped to
// [1, 32]. A compute-heavy map with a trivial combine yields a high ratio
// (one combiner serves many mappers); comparable phase costs yield 1.
//
// The sample runs single-threaded, so the measured ratio reflects
// per-element costs, not contention; it is a starting point, exactly like
// the paper's tuning, not a guarantee of optimality.
func TuneRatio[S any, K comparable, V, R any](spec *mr.Spec[S, K, V, R], cfg mr.Config) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if len(spec.Splits) == 0 {
		return 1, nil
	}

	buf := make([]container.KV[K, V], 0, 4096)

	// Map phase sample: process splits until enough pairs accumulate.
	mapStart := time.Now()
	splits := 0
	for _, s := range spec.Splits {
		spec.Map(s, func(k K, v V) { buf = append(buf, container.KV[K, V]{K: k, V: v}) })
		splits++
		if len(buf) >= tuneSampleTarget {
			break
		}
	}
	mapTime := time.Since(mapStart)
	if len(buf) == 0 {
		return 1, nil
	}

	// Combine phase sample: fold the same pairs into a fresh container
	// in consume-batch-sized blocks — the exact bulk-update work a
	// combiner performs per ConsumeBatch.
	batch := cfg.BatchSize
	if batch < 1 {
		batch = mr.DefaultBatchSize
	}
	c := spec.NewContainer()
	combStart := time.Now()
	for lo := 0; lo < len(buf); lo += batch {
		hi := lo + batch
		if hi > len(buf) {
			hi = len(buf)
		}
		c.UpdateBatch(buf[lo:hi], spec.Combine)
	}
	combTime := time.Since(combStart)

	if combTime <= 0 {
		return maxTunedRatio, nil
	}
	ratio := int(float64(mapTime)/float64(combTime) + 0.5)
	if ratio < 1 {
		ratio = 1
	}
	if ratio > maxTunedRatio {
		ratio = maxTunedRatio
	}
	return ratio, nil
}
