package core

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/tuner"
)

// skewedHistogramSpec builds the tuner-convergence workload: a histogram
// whose keys follow a squared-uniform distribution, so a few hot buckets
// absorb most of the mass — the shape where combiner provisioning matters
// (hot keys make combine cheap per pair, so a statically oversized pool
// mostly starves).
func skewedHistogramSpec(splits, perSplit, keys int) *mr.Spec[int64, int, int, int] {
	seeds := make([]int64, splits)
	for i := range seeds {
		seeds[i] = int64(i) + 1
	}
	return &mr.Spec[int64, int, int, int]{
		Name:   "skewhist",
		Splits: seeds,
		Map: func(seed int64, emit func(int, int)) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perSplit; i++ {
				u := rng.Float64()
				// A few flops of "pixel preprocessing" per element keep
				// map compute-bound relative to the trivial combine, the
				// regime where combiner over-provisioning actually hurts.
				x := u
				for w := 0; w < 4; w++ {
					x = math.Sqrt(x*x + u)
				}
				if x < 0 {
					panic("unreachable")
				}
				emit(int(u*u*float64(keys)), 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](keys) },
	}
}

// medianRun executes the spec five times and returns the median wall time.
func medianRun(t *testing.T, spec *mr.Spec[int64, int, int, int], cfg mr.Config) (time.Duration, *mr.Result[int, int]) {
	t.Helper()
	var last *mr.Result[int, int]
	times := make([]time.Duration, 5)
	for i := range times {
		start := time.Now()
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = time.Since(start)
		last = res
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[2], last
}

// TestTunerConvergence is the EXPERIMENTS.md "tuner convergence" recipe:
// it sweeps the static combiner count on a skewed histogram, then runs the
// online tuner from the worst static configuration and reports how close
// the tuned run lands to the best static one, with the full epoch log.
// Gated behind an env var because it is a measurement, not a correctness
// check:
//
//	RAMR_CONVERGENCE=1 go test -run TestTunerConvergence -v ./internal/core/
func TestTunerConvergence(t *testing.T) {
	if os.Getenv("RAMR_CONVERGENCE") == "" {
		t.Skip("set RAMR_CONVERGENCE=1 to run the tuner-convergence measurement")
	}
	spec := skewedHistogramSpec(64, 60_000, 256)
	base := mr.DefaultConfig()
	base.Mappers = 4
	base.QueueCapacity = 1024
	base.BatchSize = 100
	base.Machine = topology.Flat(4)
	base.Pin = mr.PinNone

	type point struct {
		combiners int
		wall      time.Duration
	}
	var best, worst point
	for c := 1; c <= base.Mappers; c++ {
		cfg := base
		cfg.Combiners = c
		wall, _ := medianRun(t, spec, cfg)
		fmt.Printf("static combiners=%d: %v\n", c, wall)
		if best.wall == 0 || wall < best.wall {
			best = point{c, wall}
		}
		if wall > worst.wall {
			worst = point{c, wall}
		}
	}

	cfg := base
	cfg.Combiners = worst.combiners
	// A 500µs sampling interval keeps the controller clock cheap on small
	// hosts (the default 200µs steals noticeable time on one core);
	// EpochTicks 8 keeps the epoch length at the default ~4ms.
	cfg.Telemetry = telemetry.New()
	cfg.Telemetry.Interval = 500 * time.Microsecond
	cfg.Tuner = &tuner.Config{Seed: 42, EpochTicks: 8}

	// Final comparison: re-measure the winning static point and the tuned
	// run strictly interleaved, so slow drift on a shared host hits both
	// sides equally instead of whichever phase ran later.
	bestCfg := base
	bestCfg.Combiners = best.combiners
	staticTimes := make([]time.Duration, 5)
	tunedTimes := make([]time.Duration, 5)
	var res *mr.Result[int, int]
	for i := range staticTimes {
		start := time.Now()
		if _, err := Run(spec, bestCfg); err != nil {
			t.Fatal(err)
		}
		staticTimes[i] = time.Since(start)
		start = time.Now()
		r, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tunedTimes[i] = time.Since(start)
		res = r
	}
	sort.Slice(staticTimes, func(i, j int) bool { return staticTimes[i] < staticTimes[j] })
	sort.Slice(tunedTimes, func(i, j int) bool { return tunedTimes[i] < tunedTimes[j] })
	wall, bestWall := tunedTimes[2], staticTimes[2]
	fmt.Printf("tuned (start combiners=%d, seed 42): %v  (best static %v with combiners=%d, ratio %.2f)\n",
		worst.combiners, wall, bestWall, best.combiners, float64(wall)/float64(bestWall))
	if res.TunerReport == nil {
		t.Fatal("tuned run attached no TunerReport")
	}
	for _, d := range res.TunerReport.Epochs {
		fmt.Printf("  epoch %2d %-8s combiners=%d batch=%-5d backoff=%-8v occ_p90=%.2f failed_push=%.3f short_poll=%.2f rate=%.0f pairs/tick\n",
			d.Epoch, d.Action, d.Settings.Combiners, d.Settings.Batch, d.Settings.Backoff,
			d.Signals.OccP90, d.Signals.FailedPushRate, d.Signals.ShortPollRate,
			float64(d.Signals.CombinedPairs)/float64(max(d.Signals.Ticks, 1)))
	}
}
