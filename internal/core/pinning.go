package core

import (
	"fmt"
	"sort"
	"strings"

	"ramr/internal/mr"
	"ramr/internal/topology"
)

// Plan is a complete thread-to-CPU placement for one RAMR invocation: one
// logical CPU per mapper and per combiner, or -1 for "leave it to the OS".
type Plan struct {
	// MapperCPU[i] is the logical CPU of mapper i (-1 = unpinned).
	MapperCPU []int
	// CombinerCPU[j] is the logical CPU of combiner j (-1 = unpinned).
	CombinerCPU []int
	// Policy records which policy produced the plan.
	Policy mr.PinPolicy
}

// QueueAssignment returns, for each combiner, the half-open range of
// mapper indices whose queues it consumes: combiner j owns mappers
// [lo, hi). Mappers are spread as evenly as possible, so with M mappers
// and C combiners each combiner gets M/C or M/C+1 queues — the
// mapper-to-combiner ratio of §III-B.
func QueueAssignment(mappers, combiners int) [][2]int {
	out := make([][2]int, combiners)
	for j := 0; j < combiners; j++ {
		lo := j * mappers / combiners
		hi := (j + 1) * mappers / combiners
		out[j] = [2]int{lo, hi}
	}
	return out
}

// BuildPlan places mappers and combiners on the machine under the given
// policy.
//
// PinRAMR implements the communication-aware policy of §III-B / Fig. 3:
// the machine's logical CPUs are renumbered into compact (thridtocpu)
// order — SMT siblings adjacent, then cores of the same socket, then the
// next socket — and each combiner is laid out *immediately before its
// assigned mappers* in that order. With a 1:1 ratio on a 2-way SMT
// machine this yields the paper's (2i, 2i+1) combiner/mapper pairs
// sharing one physical core, so their queue traffic flows through the
// shared L1/L2 and the complementary phases share core resources.
//
// PinRoundRobin scatters threads across sockets in role-oblivious order,
// and PinNone produces an all-unpinned plan.
func BuildPlan(m *topology.Machine, mappers, combiners int, policy mr.PinPolicy) Plan {
	return BuildPlanOn(m, nil, mappers, combiners, policy)
}

// BuildPlanOn is BuildPlan restricted to a CPU grant: when grant is
// non-empty the plan only ever places threads on those logical CPUs, so a
// scheduler handing disjoint grants to concurrent jobs gets disjoint
// pinning plans. The contention-aware layout is preserved *inside* the
// grant — PinRAMR walks the machine's compact order filtered to granted
// CPUs, so SMT siblings and same-socket cores that are both granted stay
// adjacent. A nil or empty grant means the whole machine (BuildPlan).
func BuildPlanOn(m *topology.Machine, grant []int, mappers, combiners int, policy mr.PinPolicy) Plan {
	p := Plan{
		MapperCPU:   make([]int, mappers),
		CombinerCPU: make([]int, combiners),
		Policy:      policy,
	}
	inGrant := func(int) bool { return true }
	if len(grant) > 0 {
		set := make(map[int]bool, len(grant))
		any := false
		for _, cpu := range grant {
			set[cpu] = true
			if cpu >= 0 && cpu < m.NumCPUs() {
				any = true
			}
		}
		inGrant = func(cpu int) bool { return set[cpu] }
		// A grant with no CPU on this machine cannot be pinned to;
		// degrade to an unpinned plan rather than divide by zero (the
		// engine validates grants against the resolved machine up front,
		// so this is reachable only through direct BuildPlanOn calls).
		if !any {
			policy = mr.PinNone
		}
	}
	switch policy {
	case mr.PinNone:
		for i := range p.MapperCPU {
			p.MapperCPU[i] = -1
		}
		for j := range p.CombinerCPU {
			p.CombinerCPU[j] = -1
		}
	case mr.PinRoundRobin:
		// Role-oblivious round-robin: threads are pinned in creation
		// order (each combiner followed by its mappers, as the pools
		// spawn) onto *numeric* OS cpu ids. On an SMT-last machine
		// like the Haswell server, consecutive numeric ids are
		// different physical cores — and straddle the socket boundary
		// — so co-operating threads end up communicating through L3
		// or across sockets, which is exactly the deficiency Fig. 5
		// quantifies. On a compact-enumerated machine (Xeon Phi) the
		// numeric order nearly coincides with the topology-aware
		// order, and the paper indeed measures only 1-3% there.
		ids := make([]int, 0, m.NumCPUs())
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			if inGrant(cpu) {
				ids = append(ids, cpu)
			}
		}
		sort.Ints(ids)
		slot := 0
		take := func() int {
			cpu := ids[slot%len(ids)]
			slot++
			return cpu
		}
		for j, rng := range QueueAssignment(mappers, combiners) {
			p.CombinerCPU[j] = take()
			for i := rng[0]; i < rng[1]; i++ {
				p.MapperCPU[i] = take()
			}
		}
	case mr.PinRAMR:
		order := make([]int, 0, m.NumCPUs())
		for _, cpu := range m.CompactOrder() {
			if inGrant(cpu) {
				order = append(order, cpu)
			}
		}
		slot := 0
		take := func() int {
			cpu := order[slot%len(order)]
			slot++
			return cpu
		}
		for j, rng := range QueueAssignment(mappers, combiners) {
			p.CombinerCPU[j] = take()
			for i := rng[0]; i < rng[1]; i++ {
				p.MapperCPU[i] = take()
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown pin policy %v", policy))
	}
	return p
}

// MaxDistance returns the worst topology distance between any combiner and
// any of its assigned mappers, a direct measure of how much queue traffic
// leaves the closest shared cache. Unpinned plans return -1 (unknown).
func (p Plan) MaxDistance(m *topology.Machine) int {
	worst := -1
	for j, rng := range QueueAssignment(len(p.MapperCPU), len(p.CombinerCPU)) {
		if p.CombinerCPU[j] < 0 {
			return -1
		}
		for i := rng[0]; i < rng[1]; i++ {
			if p.MapperCPU[i] < 0 {
				return -1
			}
			if d := m.Distance(p.CombinerCPU[j], p.MapperCPU[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// String renders the plan for ramrtopo and debugging.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pin policy %s\n", p.Policy)
	for j, rng := range QueueAssignment(len(p.MapperCPU), len(p.CombinerCPU)) {
		fmt.Fprintf(&b, "  combiner %d -> cpu %d; mappers", j, p.CombinerCPU[j])
		for i := rng[0]; i < rng[1]; i++ {
			fmt.Fprintf(&b, " %d->cpu %d", i, p.MapperCPU[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
