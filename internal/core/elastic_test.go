package core

import (
	"testing"
	"time"

	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/tuner"
)

// closedQueues builds n tiny drained-on-close queues for pool unit tests.
func closedQueues(n int) []*spsc.Queue[pair[int, int]] {
	qs := make([]*spsc.Queue[pair[int, int]], n)
	for i := range qs {
		q, err := spsc.New[pair[int, int]](8, spsc.WaitSleep)
		if err != nil {
			panic(err)
		}
		qs[i] = q
	}
	return qs
}

func ident(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// checkPartition asserts every live queue is owned by exactly one slot
// and no slot beyond active owns anything.
func checkPartition[K comparable, V any](t *testing.T, p *elasticPool[K, V]) {
	t.Helper()
	p.mu.RLock()
	defer p.mu.RUnlock()
	seen := map[int]int{}
	for j, s := range p.slots {
		if j >= p.active && len(s) > 0 {
			t.Fatalf("parked slot %d owns queues %v (active=%d)", j, s, p.active)
		}
		for _, qi := range s {
			if prev, dup := seen[qi]; dup {
				t.Fatalf("queue %d owned by slots %d and %d", qi, prev, j)
			}
			seen[qi] = j
		}
	}
	if len(seen) != len(p.live) {
		t.Fatalf("%d queues assigned, %d live", len(seen), len(p.live))
	}
	for _, qi := range p.live {
		if _, ok := seen[qi]; !ok {
			t.Fatalf("live queue %d unowned", qi)
		}
	}
}

// TestElasticPoolPartition: the split, every resize, and every retire
// must preserve the exactly-one-owner-per-live-queue invariant, and the
// done gate must close only when the last queue retires.
func TestElasticPoolPartition(t *testing.T) {
	qs := closedQueues(7)
	p := newElasticPool(qs, ident(7), 4, 2, false, nil)
	checkPartition(t, p)

	for _, n := range []int{4, 1, 3, 4, 2} {
		p.Resize(n)
		if p.active != n {
			t.Fatalf("active = %d after Resize(%d)", p.active, n)
		}
		checkPartition(t, p)
	}

	// Out-of-range resizes are ignored.
	p.Resize(0)
	p.Resize(99)
	if p.active != 2 {
		t.Fatalf("bad resize changed active to %d", p.active)
	}

	// Retire requires Drained: close each queue (empty → drained), then
	// retire one by one; done must close exactly at the last.
	for i, q := range qs {
		q.Close()
		p.retire(i)
		checkPartition(t, p)
		select {
		case <-p.done:
			if i != len(qs)-1 {
				t.Fatalf("done closed after %d/%d retires", i+1, len(qs))
			}
		default:
			if i == len(qs)-1 {
				t.Fatal("done not closed after the last retire")
			}
		}
	}
	// Retire is idempotent.
	p.retire(0)
}

// TestElasticPoolRetireRequiresDrained: an undrained queue must survive a
// retire attempt.
func TestElasticPoolRetireRequiresDrained(t *testing.T) {
	qs := closedQueues(2)
	qs[0].Push(pair[int, int]{K: 1, V: 1})
	qs[0].Close() // closed but non-empty: not drained
	p := newElasticPool(qs, ident(2), 2, 2, false, nil)
	p.retire(0)
	if p.retired[0] {
		t.Fatal("undrained queue retired")
	}
	checkPartition(t, p)
}

// TestElasticPoolGuards: the single-consumer CAS guard fires the
// violation callback on overlapping acquire and stays silent on a clean
// acquire/release sequence.
func TestElasticPoolGuards(t *testing.T) {
	qs := closedQueues(1)
	var got [3]int
	fired := 0
	p := newElasticPool(qs, ident(1), 2, 1, true, func(q, h, c int) {
		got = [3]int{q, h, c}
		fired++
	})
	if !p.acquire(0, 0) {
		t.Fatal("clean acquire failed")
	}
	if p.acquire(0, 1) {
		t.Fatal("overlapping acquire succeeded")
	}
	if fired != 1 || got != [3]int{0, 0, 1} {
		t.Fatalf("violation report = %v (fired %d)", got, fired)
	}
	p.release(0)
	if !p.acquire(0, 1) {
		t.Fatal("acquire after release failed")
	}
	p.release(0)
}

// TestLocalityOrder: queues sort by locality group, stable within one.
func TestLocalityOrder(t *testing.T) {
	got := localityOrder([]int{1, 0, 1, 0, 2, 0})
	want := []int{1, 3, 5, 0, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("localityOrder = %v, want %v", got, want)
		}
	}
}

// TestElasticRunCorrectness: a tuned run (controller active, private
// telemetry) must produce exactly the static result, attach a
// TunerReport, and not attach a telemetry report the user never asked
// for.
func TestElasticRunCorrectness(t *testing.T) {
	spec := countSpec(60, 50, 23)
	cfg := testConfig()
	cfg.Tuner = &tuner.Config{Seed: 1}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 60*50 {
		t.Fatalf("total = %d, want %d", total, 60*50)
	}
	if res.QueueStats.Pushes != uint64(60*50) || res.QueueStats.Pushes != res.QueueStats.Pops {
		t.Fatalf("queue stats: %+v", res.QueueStats)
	}
	if res.TunerReport == nil {
		t.Fatal("tuned run attached no TunerReport")
	}
	if res.Telemetry != nil {
		t.Fatal("private tuner telemetry leaked into Result.Telemetry")
	}
}

// TestElasticScheduleChurn: a scripted grow/shrink schedule with fast
// epochs churns ownership mid-run; the result must stay exact, the
// single-consumer guards silent (Hooks enables them), and the decision
// log must record the scripted resizes.
func TestElasticScheduleChurn(t *testing.T) {
	spec := countSpec(48, 200, 31)
	cfg := testConfig()
	cfg.Mappers = 4
	cfg.Combiners = 1
	cfg.TaskSize = 1
	cfg.Telemetry = telemetry.New()
	cfg.Telemetry.Interval = 40 * time.Microsecond
	cfg.Tuner = &tuner.Config{
		EpochTicks:   1,
		MaxCombiners: 4,
		Schedule:     []int{2, 4, 1, 3, 1, 4, 2},
	}
	// Hooks non-nil turns the consumer guards on; a sleepy task hook
	// stretches the map phase across many epochs so resizes land mid-run.
	cfg.Hooks = &mr.Hooks{MapTask: func(int) { time.Sleep(150 * time.Microsecond) }}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 48*200 {
		t.Fatalf("total = %d, want %d", total, 48*200)
	}
	rep := res.TunerReport
	if rep == nil || len(rep.Epochs) == 0 {
		t.Fatalf("no tuner epochs fired: %+v", rep)
	}
	for _, d := range rep.Epochs {
		if d.Settings.Combiners < 1 || d.Settings.Combiners > 4 {
			t.Fatalf("pool size out of bounds: %+v", d)
		}
	}
	if res.Telemetry == nil {
		t.Fatal("user-provided telemetry lost its report")
	}
}

// TestNilTunerSurface: with Tuner nil nothing tuner-related appears on
// the result — the static path contract.
func TestNilTunerSurface(t *testing.T) {
	res, err := Run(countSpec(10, 20, 7), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TunerReport != nil {
		t.Fatal("static run attached a TunerReport")
	}
	if res.Telemetry != nil {
		t.Fatal("static run attached telemetry unasked")
	}
}
