package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"ramr/internal/trace"
)

// TestEngineTracing runs a traced job and validates the recorded timeline:
// mapper task spans and combiner consume spans overlap in time — the
// paper's Fig. 2 pipeline made observable.
func TestEngineTracing(t *testing.T) {
	spec := countSpec(64, 100, 13)
	cfg := testConfig()
	collector := trace.New()
	cfg.Trace = collector
	if _, err := Run(spec, cfg); err != nil {
		t.Fatal(err)
	}
	events := collector.Events()
	var tasks, consumes int
	var mapperSeen, combinerSeen bool
	for _, e := range events {
		switch e.Name {
		case "task":
			tasks++
			mapperSeen = true
		case "consume":
			consumes++
			combinerSeen = true
		}
	}
	if !mapperSeen || !combinerSeen {
		t.Fatalf("missing lanes: tasks=%d consumes=%d", tasks, consumes)
	}
	// The decoupled pipeline must actually overlap: at least one consume
	// span starts before the last task span ends.
	var lastTaskEnd, firstConsume int64
	firstConsume = 1 << 62
	for _, e := range events {
		switch e.Name {
		case "task":
			if end := int64(e.Start + e.Dur); end > lastTaskEnd {
				lastTaskEnd = end
			}
		case "consume":
			if s := int64(e.Start); s < firstConsume {
				firstConsume = s
			}
		}
	}
	if firstConsume >= lastTaskEnd {
		t.Fatal("no map/combine overlap recorded — pipeline not pipelining")
	}
	// And the export is valid Chrome-trace JSON.
	var buf bytes.Buffer
	if err := collector.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) < tasks+consumes {
		t.Fatalf("chrome trace lost events: %d < %d", len(parsed), tasks+consumes)
	}
}
