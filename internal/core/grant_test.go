package core

import (
	"testing"

	"ramr/internal/mr"
	"ramr/internal/topology"
	"ramr/internal/tuner"
)

// TestBuildPlanOnStaysInGrant: under every pinning policy, a granted plan
// never places a thread outside the grant — the property the multi-job
// scheduler relies on for isolation between concurrent jobs.
func TestBuildPlanOnStaysInGrant(t *testing.T) {
	m := topology.HaswellServer()
	grant := []int{0, 28, 1, 29, 2, 30} // three cores with SMT siblings
	set := map[int]bool{}
	for _, cpu := range grant {
		set[cpu] = true
	}
	for _, policy := range []mr.PinPolicy{mr.PinRAMR, mr.PinRoundRobin} {
		plan := BuildPlanOn(m, grant, 4, 2, policy)
		for _, cpu := range append(append([]int{}, plan.MapperCPU...), plan.CombinerCPU...) {
			if !set[cpu] {
				t.Fatalf("%s: plan placed a thread on cpu %d outside grant %v", policy, cpu, grant)
			}
		}
	}
}

// TestBuildPlanOnKeepsLocalityInsideGrant: the contention-aware layout
// survives the grant filter — with a grant of whole physical cores, each
// combiner still shares a core (distance <= 1) with its first mapper.
func TestBuildPlanOnKeepsLocalityInsideGrant(t *testing.T) {
	m := topology.HaswellServer()
	// Four physical cores of socket 0, both SMT threads each.
	grant := []int{0, 28, 1, 29, 2, 30, 3, 31}
	plan := BuildPlanOn(m, grant, 4, 4, mr.PinRAMR)
	for j, rng := range QueueAssignment(4, 4) {
		if d := m.Distance(plan.CombinerCPU[j], plan.MapperCPU[rng[0]]); d > 1 {
			t.Fatalf("combiner %d at distance %d from its mapper inside grant", j, d)
		}
	}
}

// TestBuildPlanOnForeignGrantUnpinned: a grant naming no CPU of this
// machine degrades to an unpinned plan instead of wrapping modulo zero.
func TestBuildPlanOnForeignGrantUnpinned(t *testing.T) {
	m := topology.Flat(4)
	plan := BuildPlanOn(m, []int{100, 101}, 2, 1, mr.PinRAMR)
	for _, cpu := range append(append([]int{}, plan.MapperCPU...), plan.CombinerCPU...) {
		if cpu != -1 {
			t.Fatalf("foreign grant produced pinned cpu %d", cpu)
		}
	}
}

// TestGrantCapsElasticCeiling: a CPU grant is a hard worker budget — the
// tuner's elastic combiner pool may never grow past grant size minus the
// mappers, even when a scripted schedule asks for more. The cap must be
// visible in the decision log the run attaches.
func TestGrantCapsElasticCeiling(t *testing.T) {
	spec := countSpec(48, 100, 17)
	cfg := testConfig() // Mappers 3, Flat(4) machine
	cfg.CPUGrant = []int{0, 1, 2, 3}
	cfg.Tuner = &tuner.Config{
		Seed:       1,
		EpochTicks: 1,
		// The schedule keeps asking for 3 combiners; the grant leaves
		// room for exactly len(grant) - mappers = 1.
		Schedule: []int{3, 3, 3, 3},
	}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 48*100 {
		t.Fatalf("total = %d, want %d", total, 48*100)
	}
	if res.TunerReport == nil {
		t.Fatal("tuned run attached no TunerReport")
	}
	ceil := len(cfg.CPUGrant) - cfg.Mappers
	if got := res.TunerReport.Final.Combiners; got > ceil {
		t.Fatalf("final combiners = %d, exceeds grant ceiling %d", got, ceil)
	}
	for _, d := range res.TunerReport.Epochs {
		if d.Settings.Combiners > ceil {
			t.Fatalf("epoch %d ran %d combiners, exceeds grant ceiling %d",
				d.Epoch, d.Settings.Combiners, ceil)
		}
	}
}
