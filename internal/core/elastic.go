// Elastic combiner pool + online tuner driver: the adaptive runtime the
// paper's hand-tuned knobs imply but never build. With mr.Config.Tuner
// set, the combiner pool can grow and shrink while the map phase runs,
// and a deterministic controller (internal/tuner) re-tunes the consume
// batch size and the producer sleep backoff from live telemetry deltas.
//
// Correctness rests on one lock discipline: the SPSC queues tolerate
// exactly one consumer at a time, and the consumer side caches the head
// index, so handing a queue from combiner A to combiner B needs both
// exclusivity and a happens-before edge from A's last pop to B's first.
// The pool provides both with a single RWMutex: a combiner holds the read
// lock for one whole polling round over its assigned queues, and every
// reassignment (grow, shrink, retire) takes the write lock — so no round
// can straddle an ownership change, and the lock ordering publishes A's
// consumer-side cache to B. Reassignment is rare (once per controller
// epoch at most), so the RLock is effectively uncontended.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ramr/internal/affinity"
	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/trace"
	"ramr/internal/tuner"
)

// elasticPool owns the queue→combiner-slot assignment of a tuned run.
// Slots 0..active-1 share the live queues (contiguous runs of the
// locality-dense order, like the static QueueAssignment); slots beyond
// active are parked with no queues. Drained queues retire out of the
// assignment; when the last one retires, done closes and every slot
// exits.
type elasticPool[K comparable, V any] struct {
	queues []*spsc.Queue[pair[K, V]]

	mu      sync.RWMutex
	live    []int   // unretired queue indices, locality-dense order
	slots   [][]int // per slot: owned queue indices
	active  int
	frozen  bool          // abort: assignment pinned for the drain
	change  chan struct{} // closed and replaced on every reassignment
	done    chan struct{} // closed when every queue has retired
	retired []bool

	// guards are optional per-queue single-consumer tokens, enabled only
	// for instrumented runs (cfg.Hooks != nil): each consume round CASes
	// the token of every queue it touches, so any violation of the
	// one-consumer-per-ring invariant is detected, not silently raced.
	guards      []atomic.Int32
	guarded     bool
	onViolation func(queue, holder, claimant int)
}

func newElasticPool[K comparable, V any](queues []*spsc.Queue[pair[K, V]], order []int, slots, active int, guarded bool, onViolation func(queue, holder, claimant int)) *elasticPool[K, V] {
	p := &elasticPool[K, V]{
		queues:      queues,
		live:        append([]int(nil), order...),
		slots:       make([][]int, slots),
		active:      active,
		change:      make(chan struct{}),
		done:        make(chan struct{}),
		retired:     make([]bool, len(queues)),
		guarded:     guarded,
		onViolation: onViolation,
	}
	if guarded {
		p.guards = make([]atomic.Int32, len(queues))
	}
	p.splitLocked()
	return p
}

// splitLocked deals the live queues contiguously over the active slots
// (so each combiner's set stays a dense locality run) and clears the
// rest. Callers hold the write lock.
func (p *elasticPool[K, V]) splitLocked() {
	for j := range p.slots {
		p.slots[j] = nil
	}
	n := p.active
	if n > len(p.slots) {
		n = len(p.slots)
	}
	if n < 1 {
		n = 1
	}
	base, rem := len(p.live)/n, len(p.live)%n
	lo := 0
	for j := 0; j < n; j++ {
		sz := base
		if j < rem {
			sz++
		}
		p.slots[j] = append([]int(nil), p.live[lo:lo+sz]...)
		lo += sz
	}
}

// broadcastLocked wakes every parked slot so it re-reads its assignment.
func (p *elasticPool[K, V]) broadcastLocked() {
	close(p.change)
	p.change = make(chan struct{})
}

// Resize sets the active slot count and redistributes the live queues.
// No-op once frozen (abort) or when n is unchanged or out of range.
func (p *elasticPool[K, V]) Resize(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen || n == p.active || n < 1 || n > len(p.slots) {
		return
	}
	p.active = n
	p.splitLocked()
	p.broadcastLocked()
}

// retire removes a drained queue from the assignment. Only the slot that
// observed Drained calls it, after releasing its read lock. Drained is
// terminal, so the re-check under the write lock can only confirm it.
func (p *elasticPool[K, V]) retire(qi int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.retired[qi] || !p.queues[qi].Drained() {
		return
	}
	p.retired[qi] = true
	for j := range p.slots {
		p.slots[j] = removeIndex(p.slots[j], qi)
	}
	p.live = removeIndex(p.live, qi)
	if len(p.live) == 0 {
		select {
		case <-p.done:
		default:
			close(p.done)
		}
	}
}

// freeze pins the assignment for the abort drain and returns slot j's
// queues. The first caller flips the flag and wakes parked slots so they
// observe the abort; after freeze no Resize can move a queue, so each
// live queue has exactly one slot responsible for discard-draining it.
func (p *elasticPool[K, V]) freeze(j int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.frozen {
		p.frozen = true
		p.broadcastLocked()
	}
	return append([]int(nil), p.slots[j]...)
}

// drainAbort is the elastic twin of the static path's abort handling:
// freeze the assignment, discard-drain this slot's queues so producers
// blocked on full rings can finish, then retire them.
func (p *elasticPool[K, V]) drainAbort(j, batch int) {
	mine := p.freeze(j)
	qs := make([]*spsc.Queue[pair[K, V]], len(mine))
	for i, qi := range mine {
		qs[i] = p.queues[qi]
	}
	drainDiscard(qs, batch)
	for _, qi := range mine {
		p.retire(qi)
	}
}

// acquire/release are the single-consumer guard. With guards off they
// cost nothing; with guards on a failed CAS means two combiners touched
// one ring concurrently — the invariant the pool lock must make
// impossible.
func (p *elasticPool[K, V]) acquire(qi, j int) bool {
	if !p.guarded {
		return true
	}
	if !p.guards[qi].CompareAndSwap(0, int32(j)+1) {
		if p.onViolation != nil {
			p.onViolation(qi, int(p.guards[qi].Load())-1, j)
		}
		return false
	}
	return true
}

func (p *elasticPool[K, V]) release(qi int) {
	if p.guarded {
		p.guards[qi].Store(0)
	}
}

func removeIndex(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// localityOrder returns the queue (= mapper) indices sorted by locality
// group, stable within a group, so a contiguous split hands each combiner
// a dense group run.
func localityOrder(mapperGroup []int) []int {
	order := make([]int, len(mapperGroup))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return mapperGroup[order[x]] < mapperGroup[order[y]]
	})
	return order
}

// elasticArgs bundles what the elastic pool and tuner driver need from
// RunContext.
type elasticArgs[K comparable, V any] struct {
	ctx        context.Context
	cfg        mr.Config
	tcfg       tuner.Config // bounds already resolved by resolveTuner
	queues     []*spsc.Queue[pair[K, V]]
	mirrors    []*telemetry.QueueMirror
	containers []container.Container[K, V]
	combine    container.Combine[V]
	plan       Plan
	order      []int // queue indices, locality-dense
	initial    int   // starting pool size
	batch      int   // starting consume batch (pre-clamped to capacity)
	tel        *telemetry.Telemetry
	abort      *atomic.Bool
	trip       func()
	firstErr   *mr.FirstError
	wg         *sync.WaitGroup
}

// resolveTuner fills the machine-dependent bounds of a user tuner config:
// the pool is bounded by the mapper count (a ring has at most one
// consumer, so extra combiners could never own a queue) and the batch by
// the ring capacity (the same deadlock clamp the static path applies).
func resolveTuner(tcfg tuner.Config, mappers, queueCap int) tuner.Config {
	if tcfg.MaxCombiners <= 0 || tcfg.MaxCombiners > mappers {
		tcfg.MaxCombiners = mappers
	}
	if tcfg.MinCombiners <= 0 {
		tcfg.MinCombiners = 1
	}
	if tcfg.MinCombiners > tcfg.MaxCombiners {
		tcfg.MinCombiners = tcfg.MaxCombiners
	}
	maxB := tcfg.MaxBatch
	if maxB <= 0 {
		maxB = tuner.DefaultMaxBatch
	}
	if maxB > queueCap {
		maxB = queueCap
	}
	tcfg.MaxBatch = maxB
	minB := tcfg.MinBatch
	if minB <= 0 {
		minB = tuner.DefaultMinBatch
	}
	if minB > maxB {
		minB = maxB
	}
	tcfg.MinBatch = minB
	return tcfg
}

// tunerDriver adapts telemetry into the controller's Signals and applies
// its Decisions. It runs on the sampler goroutine via the telemetry
// observer; stop() fences it so the report can be read race-free.
type tunerDriver struct {
	mu      sync.Mutex
	stopped bool

	ctrl  *tuner.Controller
	tel   *telemetry.Telemetry
	apply func(tuner.Decision)

	epochTicks int
	ticks      int
	occ        []float64 // sampled occupancies within the current epoch
	imb        []float64 // per-tick imbalance ratios within the current epoch
	caps       []float64 // per-queue capacity, indexed like Sample.Depths
	prev       telemetry.Counters
}

// observe is the telemetry observer: accumulate occupancy, and at each
// epoch boundary form the Signals delta, advance the controller and apply
// its decision.
func (d *tunerDriver) observe(s telemetry.Sample) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	for i, depth := range s.Depths {
		if i < len(d.caps) && d.caps[i] > 0 {
			d.occ = append(d.occ, float64(depth)/d.caps[i])
		}
	}
	if len(s.Depths) > 0 {
		d.imb = append(d.imb, s.Imbalance)
	}
	d.ticks++
	if d.ticks < d.epochTicks {
		return
	}
	now := d.tel.CountersNow()
	sig := tuner.Signals{
		OccP90:         p90(d.occ),
		QueueImbalance: p90(d.imb),
		CombinedPairs:  now.Combined - d.prev.Combined,
		Ticks:          d.ticks,
	}
	if dp := (now.Pushes - d.prev.Pushes) + (now.FailedPush - d.prev.FailedPush); dp > 0 {
		sig.FailedPushRate = float64(now.FailedPush-d.prev.FailedPush) / float64(dp)
	}
	if polls := (now.BatchCalls - d.prev.BatchCalls) + (now.EmptyPolls - d.prev.EmptyPolls) + (now.ShortPolls - d.prev.ShortPolls); polls > 0 {
		sig.ShortPollRate = float64(now.ShortPolls-d.prev.ShortPolls) / float64(polls)
	}
	d.prev = now
	d.ticks = 0
	d.occ = d.occ[:0]
	d.imb = d.imb[:0]
	d.apply(d.ctrl.Advance(sig))
}

// stop fences the driver: no Advance can be in flight after it returns,
// so report() is safe from any goroutine.
func (d *tunerDriver) stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
}

func (d *tunerDriver) report() *tuner.Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctrl.Report()
}

// p90 returns the 90th percentile of vs (zero when empty). vs is reused
// by the caller; sorting in place is fine.
func p90(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	return vs[int(0.9*float64(len(vs)-1))]
}

// startElastic spawns the full complement of combiner slots (active ones
// consuming, the rest parked on the resume gate), wires the tuner driver
// into the telemetry sampler, and returns the driver for the end-of-run
// report. Combiners are accounted on a.wg like the static pool.
func startElastic[K comparable, V any](a *elasticArgs[K, V]) *tunerDriver {
	slots := a.tcfg.MaxCombiners
	capQ := a.queues[0].Cap()

	var pool *elasticPool[K, V]
	guarded := a.cfg.Hooks != nil
	onViolation := func(queue, holder, claimant int) {
		a.firstErr.Set(fmt.Errorf("core: single-consumer invariant violated: queue %d consumed by combiner %d while owned by %d", queue, claimant, holder))
		a.trip()
	}
	pool = newElasticPool(a.queues, a.order, slots, a.initial, guarded, onViolation)

	// The consume batch is the one knob read on the combiner hot loop, so
	// it travels through an atomic the driver stores and each round loads.
	var batchA atomic.Int64
	batchA.Store(int64(a.batch))
	batchNow := func() int {
		b := int(batchA.Load())
		if b < 1 {
			b = 1
		}
		if b > capQ {
			b = capQ
		}
		return b
	}

	ctrl := tuner.NewController(a.tcfg, tuner.Settings{
		Combiners: a.initial,
		Batch:     a.batch,
		Backoff:   spsc.DefaultSleepCap,
	})

	var tunerShard *trace.Shard
	if a.cfg.Trace != nil {
		tunerShard = a.cfg.Trace.Shard("tuner")
	}
	curCombiners, curBackoff := a.initial, spsc.DefaultSleepCap
	driver := &tunerDriver{
		ctrl:       ctrl,
		tel:        a.tel,
		epochTicks: ctrl.EpochTicks(),
		caps:       make([]float64, len(a.queues)),
	}
	for i, q := range a.queues {
		driver.caps[i] = float64(q.Cap())
	}
	driver.apply = func(d tuner.Decision) {
		if d.Settings.Combiners != curCombiners {
			curCombiners = d.Settings.Combiners
			pool.Resize(curCombiners)
		}
		batchA.Store(int64(d.Settings.Batch))
		if d.Settings.Backoff != curBackoff {
			curBackoff = d.Settings.Backoff
			for _, q := range a.queues {
				q.SetSleepCap(curBackoff)
			}
		}
		if tunerShard != nil {
			tunerShard.Span("epoch", map[string]any{
				"action":    d.Action,
				"combiners": d.Settings.Combiners,
				"batch":     d.Settings.Batch,
				"backoff":   d.Settings.Backoff.String(),
			})()
		}
	}
	a.tel.SetObserver(driver.observe)

	for j := 0; j < slots; j++ {
		a.wg.Add(1)
		go func(j int) {
			defer a.wg.Done()
			labels := pprof.Labels("engine", "ramr", "role", "combiner", "worker", strconv.Itoa(j))
			pprof.Do(a.ctx, labels, func(context.Context) {
				runElasticCombiner(a, pool, j, batchNow)
			})
		}(j)
	}
	return driver
}

// runElasticCombiner is one combiner slot's life: consume rounds over the
// currently assigned queues under the pool's read lock, park on the
// resume gate when the assignment is empty, retire drained queues, and
// discard-drain on abort — the elastic twin of the static combiner loop.
func runElasticCombiner[K comparable, V any](a *elasticArgs[K, V], pool *elasticPool[K, V], j int, batchNow func() int) {
	var tw *telemetry.Worker
	if a.tel != nil {
		tw = a.tel.RegisterWorker("combiner", j)
	}
	defer tw.SetState(telemetry.StateDone)
	defer func() {
		if r := recover(); r == nil {
			return
		} else {
			a.firstErr.Set(&mr.PanicError{Engine: "ramr", Worker: fmt.Sprintf("combine worker %d", j), Value: r})
			a.trip()
		}
		pool.drainAbort(j, batchNow())
	}()
	if cpu := a.plan.CombinerCPU[j]; cpu >= 0 && affinity.Supported() {
		unpin, _ := affinity.PinSelf(cpu)
		defer unpin()
	}
	var shard *trace.Shard
	if a.cfg.Trace != nil {
		shard = a.cfg.Trace.Shard(fmt.Sprintf("combiner-%d", j))
	}
	c := a.containers[j]
	apply := func(batch []pair[K, V]) {
		c.UpdateBatch(batch, a.combine)
	}
	if tw != nil {
		inner := apply
		apply = func(batch []pair[K, V]) {
			tw.AddCombined(len(batch))
			tw.AddBatches(1)
			inner(batch)
		}
	}
	var drainHook func(int)
	if hk := a.cfg.Hooks; hk != nil {
		drainHook = hk.CombineDrain
		if hk.CombineBatch != nil {
			inner := apply
			apply = func(batch []pair[K, V]) {
				hk.CombineBatch(j)
				inner(batch)
			}
		}
	}
	curState := telemetry.StateIdle
	setState := func(s telemetry.State) {
		if s != curState {
			curState = s
			tw.SetState(s)
		}
	}
	draining := false

	// round runs one polling pass over the slot's assignment while
	// holding the read lock (the ownership critical section). The
	// deferred unlock keeps a user-code panic from wedging the pool:
	// the recover path above takes the write lock to freeze.
	round := func() (consumed int, toRetire []int, parked bool, change, done chan struct{}) {
		pool.mu.RLock()
		defer pool.mu.RUnlock()
		mine := pool.slots[j]
		if len(mine) == 0 {
			return 0, nil, true, pool.change, pool.done
		}
		b := batchNow()
		var end func()
		if shard != nil {
			end = shard.Span("consume", nil)
		}
		for _, qi := range mine {
			q := a.queues[qi]
			if !pool.acquire(qi, j) {
				continue
			}
			closed := q.Closed()
			if closed && !draining {
				draining = true
				if drainHook != nil {
					drainHook(j)
				}
			}
			consumed += q.ConsumeBatch(b, closed, apply)
			if q.Drained() {
				toRetire = append(toRetire, qi)
			}
			a.mirrors[qi].StoreConsumer(q.ConsumerStats())
			pool.release(qi)
		}
		if end != nil && consumed > 0 {
			end()
		}
		return consumed, toRetire, false, nil, nil
	}

	idleRounds := 0
	for {
		// Same abort contract as the static path: once any worker
		// tripped the flag, stop feeding user Combine and discard-drain
		// so producers blocked on full rings unwedge.
		if a.abort.Load() {
			pool.drainAbort(j, batchNow())
			return
		}
		consumed, toRetire, parked, change, done := round()
		if parked {
			setState(telemetry.StateIdle)
			select {
			case <-change:
			case <-done:
				return
			}
			continue
		}
		for _, qi := range toRetire {
			pool.retire(qi)
		}
		if consumed == 0 {
			idleRounds++
			setState(telemetry.StateIdle)
			if idleRounds < 4 {
				runtime.Gosched()
			} else {
				time.Sleep(combinerIdle)
			}
		} else {
			idleRounds = 0
			if draining {
				setState(telemetry.StateDraining)
			} else {
				setState(telemetry.StateWorking)
			}
		}
	}
}
