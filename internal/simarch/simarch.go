// Package simarch estimates the run time of the RAMR and Phoenix++
// execution strategies on a modeled machine — the substitute for the
// paper's two physical testbeds (see DESIGN.md's substitution table).
//
// The native engines in internal/core and internal/phoenix really run, but
// only on whatever host executes the tests; the paper's platform-dependent
// results (a 56-thread NUMA Haswell, a 228-thread Xeon Phi) cannot be
// measured here. This package therefore models the map-combine phase as a
// pipeline throughput problem on the exact topologies of §IV-A:
//
//   - each phase has a per-element cycle cost and a memory-stall fraction,
//     measured by the perfmodel trace model;
//   - SMT siblings sharing a physical core contend: two compute-bound
//     threads steal issue slots from each other, a compute-bound and a
//     memory-bound thread overlap — the complementarity the paper's
//     pinning exploits;
//   - every queue element crosses from its mapper's CPU to its combiner's
//     CPU at the latency of their closest shared cache level (from the
//     pinning plan), control-variable synchronization amortized over the
//     consume batch;
//   - batches that outgrow the shared cache level spill outward, which is
//     what bends the Fig. 7 curves back up.
//
// All outputs are deterministic functions of (workload, machine, config):
// the same inputs always reproduce the same figure.
package simarch

import (
	"fmt"
	"math"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/perfmodel"
	"ramr/internal/topology"
)

// Workload is the per-element cost profile of one job's map-combine phase.
// It carries both execution disciplines' costs (see perfmodel.JobCosts):
// the fused costs price a Phoenix++ worker, the split costs a decoupled
// RAMR mapper or combiner whose caches hold only its own phase's working
// set.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Elements is the number of intermediate pairs flowing through the
	// pipeline.
	Elements int
	// ElemBytes is the size of one queued pair.
	ElemBytes int
	// Map and Combine are the decoupled (RAMR) per-element phase costs.
	Map, Combine perfmodel.PhaseCost
	// FusedMap and FusedCombine are the fused (Phoenix++) costs; when
	// zero they default to Map/Combine.
	FusedMap, FusedCombine perfmodel.PhaseCost
}

// fused returns the Phoenix++ cost pair, defaulting to the split costs.
func (w Workload) fused() (perfmodel.PhaseCost, perfmodel.PhaseCost) {
	fm, fc := w.FusedMap, w.FusedCombine
	if fm.CyclesPerElem == 0 {
		fm = w.Map
	}
	if fc.CyclesPerElem == 0 {
		fc = w.Combine
	}
	return fm, fc
}

// Config selects the runtime configuration to model.
type Config struct {
	// Mappers and Combiners size the two pools (Phoenix++ fuses both
	// into Mappers+Combiners general workers).
	Mappers, Combiners int
	// Pin is the placement policy.
	Pin mr.PinPolicy
	// BatchSize is the combiner's consume block.
	BatchSize int
	// QueueCap is the SPSC ring capacity.
	QueueCap int
}

// Estimate is a modeled map-combine phase execution time.
type Estimate struct {
	// Cycles is the modeled duration of the map-combine phase.
	Cycles float64
	// MapBound reports whether the pipeline was limited by the mappers
	// (true) or the combiners (false).
	MapBound bool
	// TransferCycles is the average per-element queue transfer cost
	// (diagnostic).
	TransferCycles float64
}

// thread is one modeled worker: its phase costs and placement.
type thread struct {
	cpu      int // logical CPU, -1 = unpinned
	compFrac float64
	memFrac  float64
}

// migratePenalty inflates every cost under the OS scheduler, modeling
// thread migrations and cold caches after each move.
const migratePenalty = 1.08

// controlSyncLines is how many cache-line transfers one batch handoff
// costs for the head/tail control variables.
const controlSyncLines = 2.0

// queueOverheads are the placement-independent bookkeeping costs of the
// SPSC queue. The per-consume-call cost (function call, empty checks,
// atomic index loads) is paid once per ConsumeBatch and amortized over the
// batch — the dominant term the paper's "batched reads" optimization
// removes, and far more expensive on the in-order, narrow Xeon Phi core
// (which cannot hide the branches and atomic loads behind other work):
// that asymmetry is why Fig. 6's batching speedups reach 11.4x on the Phi
// against 3.1x on Haswell.
type queueOverheads struct {
	push    float64 // per element, producer side
	pop     float64 // per element, consumer side
	popCall float64 // per consume call, amortized over the batch
}

func overheadsFor(m *topology.Machine) queueOverheads {
	if m.Name == "xeon-phi" {
		return queueOverheads{push: 5, pop: 4, popCall: 120}
	}
	return queueOverheads{push: 5, pop: 4, popCall: 20}
}

// mlpParams describes how much memory-level parallelism each execution
// discipline extracts on a machine. perfmodel reports *serialized* stall
// costs; how much of a stall actually overlaps with other work depends on
// who executes it:
//
//   - a dedicated mapper's input misses overlap across independent
//     elements up to the out-of-order window (none on the in-order Phi
//     beyond the prefetcher, which perfmodel already credits);
//   - a *batched* combiner walks a block of independent container
//     updates, so its misses pipeline up to the hardware limit — but only
//     when the batch provides that many independent accesses. This is the
//     microarchitectural content of the paper's "batched reads"
//     optimization and the reason Fig. 6's gains are so much larger on
//     the in-order Phi (11.4x) than on Haswell (3.1x);
//   - a fused Phoenix++ worker interleaves one container update with one
//     map element, so each combine miss can only overlap the OOO window's
//     worth of map work — and nothing at all on an in-order core.
type mlpParams struct {
	mapMLP          float64 // dedicated mapper
	fusedMapMLP     float64 // fused worker's map portion (shared OOO window)
	fusedCombineMLP float64 // fused worker's combine portion
	combinerMaxMLP  float64 // batched combiner ceiling
}

func mlpFor(m *topology.Machine) mlpParams {
	if m.Name == "xeon-phi" {
		return mlpParams{mapMLP: 1.2, fusedMapMLP: 1, fusedCombineMLP: 1, combinerMaxMLP: 6}
	}
	return mlpParams{mapMLP: 4, fusedMapMLP: 2, fusedCombineMLP: 2, combinerMaxMLP: 8}
}

// combinerMLP is the batched combiner's effective MLP: one independent
// access per batched element, up to the machine ceiling.
func (p mlpParams) combinerMLP(batch int) float64 {
	eff := float64(batch)
	if eff < 1 {
		eff = 1
	}
	if eff > p.combinerMaxMLP {
		eff = p.combinerMaxMLP
	}
	return eff
}

// effCost divides the stalled share of a phase cost by the achievable
// MLP, leaving the compute share untouched.
func effCost(c perfmodel.PhaseCost, mlp float64) float64 {
	if mlp < 1 {
		mlp = 1
	}
	stall := c.CyclesPerElem * c.MemFrac
	return c.CyclesPerElem - stall + stall/mlp
}

// smtSpeeds returns the per-thread speed factors for threads co-resident
// on one physical core. The pairwise contention model:
//
//	contention(i,j) = 0.75*min(comp_i, comp_j) + 0.35*min(mem_i, mem_j)
//	speed_i = scale / (1 + sum_j contention(i,j))
//
// Two compute-bound siblings each run at ~0.57 (combined 1.14 — the usual
// modest SMT gain); a compute-bound thread next to a memory-bound one
// keeps ~0.79 (combined ~1.6 — the complementary-phases win of §III-B).
// On the in-order Xeon Phi a single thread can only issue every other
// cycle, so one resident runs at 0.5 and multithreading is required to
// fill the core, as the paper's platform description notes.
func smtSpeeds(m *topology.Machine, residents []thread) []float64 {
	out := make([]float64, len(residents))
	phi := m.Name == "xeon-phi"
	for i, ti := range residents {
		denom := 1.0
		for j, tj := range residents {
			if i == j {
				continue
			}
			denom += 0.75*math.Min(ti.compFrac, tj.compFrac) + 0.35*math.Min(ti.memFrac, tj.memFrac)
		}
		s := 1.0 / denom
		if phi && len(residents) == 1 {
			s = 0.5 // in-order KNC: one context cannot issue back-to-back
		}
		out[i] = s
	}
	return out
}

// batchTransferLatency returns the per-cache-line producer-to-consumer
// latency given the pinning distance and the batch footprint: while the
// batch fits in half of the threads' closest shared cache, lines move at
// that cache's latency; beyond it they spill to the next outer level.
func batchTransferLatency(m *topology.Machine, mapperCPU, combinerCPU, batch, elemBytes int) float64 {
	lvl := 0
	if mapperCPU >= 0 && combinerCPU >= 0 {
		lvl = m.SharedCacheLevel(mapperCPU, combinerCPU)
	} else {
		// Unpinned: on average threads land on distinct cores of the
		// same socket, communicating through the outermost level.
		lvl = outermostLevel(m)
	}
	footprint := batch * elemBytes
	for {
		c, ok := m.Cache(lvl)
		if !ok {
			break
		}
		share := perThreadShare(m, c)
		if footprint <= share/2 {
			lat := float64(c.LatencyCycles)
			if mapperCPU >= 0 && combinerCPU >= 0 && m.Distance(mapperCPU, combinerCPU) == 3 {
				lat += float64(m.CrossSocketPenaltyCycles)
			}
			return lat
		}
		lvl = nextOuterLevel(m, lvl)
		if lvl == 0 {
			break
		}
	}
	lat := float64(m.MemLatencyCycles)
	if mapperCPU >= 0 && combinerCPU >= 0 && m.Distance(mapperCPU, combinerCPU) == 3 {
		lat += float64(m.CrossSocketPenaltyCycles)
	}
	return lat
}

// perThreadShare is a cache level's capacity divided by its sharers.
func perThreadShare(m *topology.Machine, c topology.CacheLevel) int {
	switch c.Scope {
	case topology.ScopePerCore:
		return c.SizeBytes / m.ThreadsPerCore
	case topology.ScopePerSocket:
		return c.SizeBytes / (m.ThreadsPerCore * m.CoresPerSocket)
	case topology.ScopeGlobal:
		return c.SizeBytes / m.NumCPUs()
	default:
		return c.SizeBytes
	}
}

func outermostLevel(m *topology.Machine) int {
	lvl := 0
	for _, c := range m.Caches {
		if c.Level > lvl {
			lvl = c.Level
		}
	}
	return lvl
}

func nextOuterLevel(m *topology.Machine, lvl int) int {
	best := 0
	for _, c := range m.Caches {
		if c.Level > lvl && (best == 0 || c.Level < best) {
			best = c.Level
		}
	}
	return best
}

// SimulateRAMR models the decoupled pipeline's map-combine phase.
func SimulateRAMR(m *topology.Machine, w Workload, cfg Config) (Estimate, error) {
	if err := validate(m, w, cfg); err != nil {
		return Estimate{}, err
	}
	mappers, combiners := cfg.Mappers, cfg.Combiners
	plan := core.BuildPlan(m, mappers, combiners, cfg.Pin)
	assign := core.QueueAssignment(mappers, combiners)
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	if cfg.QueueCap > 0 && batch > cfg.QueueCap {
		batch = cfg.QueueCap
	}

	// Build the thread population and per-core residency.
	threads := make([]thread, 0, mappers+combiners)
	for i := 0; i < mappers; i++ {
		threads = append(threads, thread{
			cpu:      plan.MapperCPU[i],
			compFrac: 1 - w.Map.MemFrac,
			memFrac:  w.Map.MemFrac,
		})
	}
	for j := 0; j < combiners; j++ {
		threads = append(threads, thread{
			cpu:      plan.CombinerCPU[j],
			compFrac: 1 - w.Combine.MemFrac,
			memFrac:  w.Combine.MemFrac,
		})
	}
	speeds := placementSpeeds(m, threads)

	penalty := 1.0
	if cfg.Pin == mr.PinNone {
		penalty = migratePenalty
	}

	linesPerElem := float64(w.ElemBytes) / 64.0
	var totalThroughput, transferSum float64
	for j, rng := range assign {
		ccpu := plan.CombinerCPU[j]
		var mapRate float64
		var groupTransfer float64
		nq := rng[1] - rng[0]
		if nq == 0 {
			continue
		}
		mlp := mlpFor(m)
		ovh := overheadsFor(m)
		mapEff := effCost(w.Map, mlp.mapMLP)
		combEff := effCost(w.Combine, mlp.combinerMLP(batch))
		for i := rng[0]; i < rng[1]; i++ {
			mcpu := plan.MapperCPU[i]
			lat := batchTransferLatency(m, mcpu, ccpu, batch, w.ElemBytes)
			groupTransfer += lat
			// Producer cost: map work + push bookkeeping; the ring
			// write lands in the producer's own cache.
			pushCost := (mapEff + ovh.push) * penalty
			mapRate += speeds[i] / pushCost
		}
		avgLat := groupTransfer / float64(nq)
		// Consumer cost per element: combine work, pop bookkeeping
		// (per-call cost amortized over the batch), the data lines
		// crossing the shared cache (pipelined like the batch's other
		// independent accesses), and the control variables
		// synchronized once per batch.
		xfer := avgLat*linesPerElem/mlp.combinerMLP(batch) + avgLat*controlSyncLines/float64(batch)
		popCost := (combEff + ovh.pop + ovh.popCall/float64(batch) + xfer) * penalty
		combRate := speeds[mappers+j] / popCost
		transferSum += xfer

		totalThroughput += math.Min(mapRate, combRate)
	}
	if totalThroughput <= 0 {
		return Estimate{}, fmt.Errorf("simarch: zero pipeline throughput")
	}

	cycles := float64(w.Elements) / totalThroughput
	// Combiners idle until their queues hold one full batch, and drain
	// the final partial batch after the mappers finish.
	perMapper := float64(w.Elements) / float64(mappers)
	fill := math.Min(float64(batch), perMapper) * (effCost(w.Map, mlpFor(m).mapMLP) + overheadsFor(m).push)
	cycles += fill

	// Determine the binding side for diagnostics.
	var mapSide, combSide float64
	mlp := mlpFor(m)
	ovh := overheadsFor(m)
	for j, rng := range assign {
		for i := rng[0]; i < rng[1]; i++ {
			mapSide += speeds[i] / (effCost(w.Map, mlp.mapMLP) + ovh.push)
		}
		combSide += speeds[mappers+j] / (effCost(w.Combine, mlp.combinerMLP(batch)) + ovh.pop)
	}
	return Estimate{
		Cycles:         cycles,
		MapBound:       mapSide <= combSide,
		TransferCycles: transferSum / float64(len(assign)),
	}, nil
}

// SimulatePhoenix models the fused baseline: Mappers+Combiners identical
// general-purpose workers, each paying map+combine per element with no
// queue costs, placed compactly (Phoenix++ also pins its worker pool).
func SimulatePhoenix(m *topology.Machine, w Workload, cfg Config) (Estimate, error) {
	if err := validate(m, w, cfg); err != nil {
		return Estimate{}, err
	}
	workers := cfg.Mappers + cfg.Combiners
	order := m.CompactOrder()
	fm, fc := w.fused()
	mlp := mlpFor(m)
	perElem := effCost(fm, mlp.fusedMapMLP) + effCost(fc, mlp.fusedCombineMLP)
	blendMem := (fm.CyclesPerElem*fm.MemFrac + fc.CyclesPerElem*fc.MemFrac) /
		(fm.CyclesPerElem + fc.CyclesPerElem)

	threads := make([]thread, workers)
	for i := range threads {
		threads[i] = thread{
			cpu:      order[i%len(order)],
			compFrac: 1 - blendMem,
			memFrac:  blendMem,
		}
	}
	speeds := placementSpeeds(m, threads)
	var rate float64
	for i := range threads {
		rate += speeds[i] / perElem
	}
	if rate <= 0 {
		return Estimate{}, fmt.Errorf("simarch: zero worker throughput")
	}
	return Estimate{Cycles: float64(w.Elements) / rate, MapBound: true}, nil
}

// placementSpeeds groups threads by physical core and applies the SMT
// contention model. Unpinned threads are assumed spread one per core until
// cores are exhausted, then stacked round-robin.
func placementSpeeds(m *topology.Machine, threads []thread) []float64 {
	cpus := m.CPUs()
	byCore := make(map[int][]int) // core -> thread indices
	unpinned := []int{}
	for idx, t := range threads {
		if t.cpu >= 0 && t.cpu < len(cpus) {
			core := cpus[t.cpu].Core
			byCore[core] = append(byCore[core], idx)
		} else {
			unpinned = append(unpinned, idx)
		}
	}
	// Spread unpinned threads over cores round-robin (the OS balancer's
	// steady state).
	ncores := m.NumCores()
	for k, idx := range unpinned {
		core := k % ncores
		byCore[core] = append(byCore[core], idx)
	}
	out := make([]float64, len(threads))
	for _, idxs := range byCore {
		residents := make([]thread, len(idxs))
		for i, idx := range idxs {
			residents[i] = threads[idx]
		}
		sp := smtSpeeds(m, residents)
		for i, idx := range idxs {
			out[idx] = sp[i]
		}
	}
	return out
}

func validate(m *topology.Machine, w Workload, cfg Config) error {
	if m == nil {
		return fmt.Errorf("simarch: nil machine")
	}
	if w.Elements <= 0 || w.ElemBytes <= 0 {
		return fmt.Errorf("simarch: workload %q has no elements", w.Name)
	}
	if w.Map.CyclesPerElem <= 0 || w.Combine.CyclesPerElem <= 0 {
		return fmt.Errorf("simarch: workload %q has non-positive phase costs", w.Name)
	}
	if cfg.Mappers < 1 || cfg.Combiners < 1 {
		return fmt.Errorf("simarch: need at least one mapper and one combiner")
	}
	return nil
}

// WorkloadFor derives a Workload from the perfmodel traces of one app and
// container configuration on machine m, including both the fused and the
// decoupled cost measurements.
func WorkloadFor(m *topology.Machine, app string, kind container.Kind) (Workload, error) {
	jc, err := perfmodel.JobCostsFor(m, app, kind)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name: fmt.Sprintf("%s/%s", app, kind),
		// The trace models a sample of the Table I input; the simulated
		// run processes the full input, so the steady-state pipeline
		// dwarfs the fill/drain transient exactly as it does on the
		// real platforms.
		Elements:     jc.Trace.Elements * 64,
		ElemBytes:    jc.Trace.ElemBytes,
		Map:          jc.SplitMap,
		Combine:      jc.SplitCombine,
		FusedMap:     jc.FusedMap,
		FusedCombine: jc.FusedCombine,
	}, nil
}
