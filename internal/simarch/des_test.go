package simarch

import (
	"testing"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/perfmodel"
	"ramr/internal/topology"
)

func desConfig(threads, ratio, batch int) Config {
	c := threads / (ratio + 1)
	if c < 1 {
		c = 1
	}
	return Config{Mappers: threads - c, Combiners: c, Pin: mr.PinRAMR, BatchSize: batch, QueueCap: 5000}
}

// TestDESValidatesAnalyticModel: on every benchmark workload the DES and
// the closed-form model must agree within a modest factor — they encode
// the same cost physics through different mechanisms.
func TestDESValidatesAnalyticModel(t *testing.T) {
	m := topology.HaswellServer()
	for _, app := range []string{"HG", "KM", "LR", "MM", "PCA", "WC"} {
		w, err := WorkloadFor(m, app, defaultKind(app))
		if err != nil {
			t.Fatal(err)
		}
		for _, ratio := range []int{1, 4} {
			cfg := desConfig(56, ratio, 1000)
			an, err := SimulateRAMR(m, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			des, err := SimulateRAMRDES(m, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := des.Cycles / an.Cycles
			if r < 0.5 || r > 2.0 {
				t.Errorf("%s ratio=%d: DES/analytic = %.2f (des %.3g, analytic %.3g)",
					app, ratio, r, des.Cycles, an.Cycles)
			}
		}
	}
}

// TestDESQueueCapacityMatters: shrinking the ring below the batch size
// throttles the pipeline — the blocking dynamic only the DES captures.
func TestDESQueueCapacityMatters(t *testing.T) {
	m := topology.HaswellServer()
	w, err := WorkloadFor(m, "WC", container.KindHash)
	if err != nil {
		t.Fatal(err)
	}
	big := desConfig(56, 1, 1000)
	small := big
	small.QueueCap = 8 // far below the batch: producers stall constantly
	bigEst, err := SimulateRAMRDES(m, w, big)
	if err != nil {
		t.Fatal(err)
	}
	smallEst, err := SimulateRAMRDES(m, w, small)
	if err != nil {
		t.Fatal(err)
	}
	if smallEst.Cycles <= bigEst.Cycles {
		t.Fatalf("tiny queue should throttle: cap8 %.3g vs cap5000 %.3g", smallEst.Cycles, bigEst.Cycles)
	}
}

func TestDESDeterministic(t *testing.T) {
	m := topology.XeonPhi()
	w, err := WorkloadFor(m, "KM", container.KindFixedArray)
	if err != nil {
		t.Fatal(err)
	}
	cfg := desConfig(228, 4, 200)
	a, err := SimulateRAMRDES(m, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRAMRDES(m, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("DES not deterministic: %v vs %v", a, b)
	}
}

func TestDESValidation(t *testing.T) {
	m := topology.HaswellServer()
	if _, err := SimulateRAMRDES(m, Workload{}, desConfig(8, 1, 10)); err == nil {
		t.Fatal("empty workload accepted")
	}
	w := Workload{Name: "w", Elements: 1000, ElemBytes: 16,
		Map:     perfmodel.PhaseCost{CyclesPerElem: 10},
		Combine: perfmodel.PhaseCost{CyclesPerElem: 5}}
	if _, err := SimulateRAMRDES(m, w, Config{Mappers: 0, Combiners: 1}); err == nil {
		t.Fatal("zero mappers accepted")
	}
}

// TestDESSmallerThanWorkers: fewer elements than workers must still
// terminate and drain cleanly.
func TestDESSmallerThanWorkers(t *testing.T) {
	m := topology.HaswellServer()
	w := Workload{Name: "tiny", Elements: 7, ElemBytes: 16,
		Map:     perfmodel.PhaseCost{CyclesPerElem: 10},
		Combine: perfmodel.PhaseCost{CyclesPerElem: 5}}
	est, err := SimulateRAMRDES(m, w, desConfig(56, 1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles <= 0 {
		t.Fatal("no time elapsed")
	}
}

// TestDESBatchOne: the smallest granule exercises the block/wake protocol
// hardest.
func TestDESBatchOne(t *testing.T) {
	m := topology.HaswellServer()
	w, err := WorkloadFor(m, "HG", container.KindFixedArray)
	if err != nil {
		t.Fatal(err)
	}
	w.Elements = 50_000 // keep the event count in check at granule 1
	one, err := SimulateRAMRDES(m, w, desConfig(56, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := SimulateRAMRDES(m, w, desConfig(56, 1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if one.Cycles <= batched.Cycles {
		t.Fatalf("batch=1 should be slower in the DES too: %.3g vs %.3g", one.Cycles, batched.Cycles)
	}
}
