package simarch

import (
	"container/heap"
	"fmt"

	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/topology"
)

// This file implements a discrete-event simulation (DES) of the RAMR
// map-combine pipeline, complementing the closed-form throughput model in
// simarch.go. The analytic model computes steady-state rates; the DES
// executes the actual protocol — bounded queues that block producers,
// combiners that wait for full batches, the end-of-map drain — event by
// event, so transients (pipeline fill, stragglers, drain tails) and
// head-of-line blocking emerge instead of being approximated. The package
// tests cross-validate the two: on the benchmark workloads their estimates
// agree within a modest factor, which is evidence that the closed form
// isn't hiding a protocol error.
//
// Granularity: mappers produce and combiners consume in blocks of
// min(batch, desGranule) elements. This keeps the event count tractable
// (millions of elements become thousands of events) while preserving the
// queue-capacity and batch-boundary dynamics.

// desGranule caps the block size used for event scheduling.
const desGranule = 256

// desEvent is one scheduled completion.
type desEvent struct {
	at   float64
	kind int // 0 = mapper block complete, 1 = combiner batch complete
	who  int // worker index within its pool
	seq  int // tie-breaker for determinism
}

type desHeap []desEvent

func (h desHeap) Len() int { return len(h) }
func (h desHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h desHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *desHeap) Push(x any)   { *h = append(*h, x.(desEvent)) }
func (h *desHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// desQueue is the simulated bounded SPSC ring.
type desQueue struct {
	fill     int
	cap      int
	closed   bool
	producer int // mapper index
}

// desMapper tracks one producer's state.
type desMapper struct {
	remaining int  // elements still to produce
	blocked   bool // waiting for queue space
	busyUntil float64
	perElem   float64 // cycles per element including push overhead
}

// desCombiner tracks one consumer's state.
type desCombiner struct {
	queues    []int // indices of assigned queues
	next      int   // round-robin scan start (fairness across queues)
	busy      bool
	busyUntil float64
	perElem   float64 // cycles per element including pop+transfer share
	perBatch  float64 // per-consume-call cycles
}

// SimulateRAMRDES runs the discrete-event simulation of the decoupled
// pipeline and returns the modeled map-combine duration. It shares every
// cost parameter (SMT speeds, MLP, queue overheads, transfer latencies)
// with SimulateRAMR; only the execution mechanism differs.
func SimulateRAMRDES(m *topology.Machine, w Workload, cfg Config) (Estimate, error) {
	if err := validate(m, w, cfg); err != nil {
		return Estimate{}, err
	}
	mappers, combiners := cfg.Mappers, cfg.Combiners
	plan := core.BuildPlan(m, mappers, combiners, cfg.Pin)
	assign := core.QueueAssignment(mappers, combiners)
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	qcap := cfg.QueueCap
	if qcap < 1 {
		qcap = 5000
	}
	if batch > qcap {
		batch = qcap
	}
	granule := batch
	if granule > desGranule {
		granule = desGranule
	}

	// Per-thread speeds from the shared placement/SMT model.
	threads := make([]thread, 0, mappers+combiners)
	for i := 0; i < mappers; i++ {
		threads = append(threads, thread{cpu: plan.MapperCPU[i], compFrac: 1 - w.Map.MemFrac, memFrac: w.Map.MemFrac})
	}
	for j := 0; j < combiners; j++ {
		threads = append(threads, thread{cpu: plan.CombinerCPU[j], compFrac: 1 - w.Combine.MemFrac, memFrac: w.Combine.MemFrac})
	}
	speeds := placementSpeeds(m, threads)
	mlp := mlpFor(m)
	ovh := overheadsFor(m)
	penalty := 1.0
	if cfg.Pin == mr.PinNone {
		penalty = migratePenalty
	}
	linesPerElem := float64(w.ElemBytes) / 64.0

	// Build state.
	per := w.Elements / mappers
	qs := make([]desQueue, mappers)
	ms := make([]desMapper, mappers)
	for i := range ms {
		rem := per
		if i < w.Elements%mappers {
			rem++
		}
		ms[i] = desMapper{
			remaining: rem,
			perElem:   (effCost(w.Map, mlp.mapMLP) + ovh.push) * penalty / speeds[i],
		}
		qs[i] = desQueue{cap: qcap, producer: i}
	}
	cs := make([]desCombiner, combiners)
	for j := range cs {
		var idxs []int
		var lat float64
		for i := assign[j][0]; i < assign[j][1]; i++ {
			idxs = append(idxs, i)
			lat += batchTransferLatency(m, plan.MapperCPU[i], plan.CombinerCPU[j], batch, w.ElemBytes)
		}
		if len(idxs) == 0 {
			continue
		}
		avgLat := lat / float64(len(idxs))
		xferPerElem := avgLat * linesPerElem / mlp.combinerMLP(batch)
		cs[j] = desCombiner{
			queues:   idxs,
			perElem:  (effCost(w.Combine, mlp.combinerMLP(batch)) + ovh.pop + xferPerElem) * penalty / speeds[mappers+j],
			perBatch: (ovh.popCall + avgLat*controlSyncLines) * penalty / speeds[mappers+j],
		}
	}
	combinerOf := make([]int, mappers)
	for j, rng := range assign {
		for i := rng[0]; i < rng[1]; i++ {
			combinerOf[i] = j
		}
	}

	// Event loop.
	var h desHeap
	seq := 0
	schedule := func(at float64, kind, who int) {
		heap.Push(&h, desEvent{at: at, kind: kind, who: who, seq: seq})
		seq++
	}
	// tryConsume starts a batch on combiner j if one is ready.
	now := 0.0
	var tryConsume func(j int)
	tryConsume = func(j int) {
		c := &cs[j]
		if c.busy || len(c.queues) == 0 {
			return
		}
		for k := 0; k < len(c.queues); k++ {
			qi := c.queues[(c.next+k)%len(c.queues)]
			q := &qs[qi]
			want := granule
			if q.fill >= want || (q.closed && q.fill > 0) {
				c.next = (c.next + k + 1) % len(c.queues)
				take := want
				if take > q.fill {
					take = q.fill
				}
				q.fill -= take
				c.busy = true
				// The per-call cost amortizes over the full batch; the
				// granule carries its share.
				share := c.perBatch * float64(take) / float64(batch)
				c.busyUntil = now + float64(take)*c.perElem + share
				schedule(c.busyUntil, 1, j)
				// Wake the producer if its next block now fits.
				mi := q.producer
				if ms[mi].blocked && q.cap-q.fill >= nextBlock(&ms[mi], granule) {
					ms[mi].blocked = false
					startProduce(mi, &h, &seq, now, ms, qs, granule)
				}
				return
			}
		}
	}

	// Kick off all mappers.
	for i := range ms {
		startProduce(i, &h, &seq, 0, ms, qs, granule)
	}

	guard := 0
	for h.Len() > 0 {
		guard++
		if guard > 50_000_000 {
			return Estimate{}, fmt.Errorf("simarch: DES exceeded event budget (protocol bug?)")
		}
		ev := heap.Pop(&h).(desEvent)
		now = ev.at
		switch ev.kind {
		case 0: // mapper finished producing a block
			i := ev.who
			q := &qs[i]
			blockSz := granule
			if ms[i].remaining < blockSz {
				blockSz = ms[i].remaining
			}
			ms[i].remaining -= blockSz
			q.fill += blockSz
			if ms[i].remaining == 0 {
				q.closed = true
			} else if q.cap-q.fill >= nextBlock(&ms[i], granule) {
				startProduce(i, &h, &seq, now, ms, qs, granule)
			} else {
				ms[i].blocked = true
			}
			tryConsume(combinerOf[i])
		case 1: // combiner finished a batch
			j := ev.who
			cs[j].busy = false
			tryConsume(j)
		}
	}

	// Validate full consumption (protocol check).
	for i := range qs {
		if qs[i].fill != 0 || ms[i].remaining != 0 {
			return Estimate{}, fmt.Errorf("simarch: DES left work behind (queue %d: fill=%d rem=%d)", i, qs[i].fill, ms[i].remaining)
		}
	}
	return Estimate{Cycles: now}, nil
}

// nextBlock is the size of mapper m's next production block.
func nextBlock(m *desMapper, granule int) int {
	if m.remaining < granule {
		return m.remaining
	}
	return granule
}

// startProduce schedules mapper i's next block completion.
func startProduce(i int, h *desHeap, seq *int, now float64, ms []desMapper, qs []desQueue, granule int) {
	if ms[i].remaining <= 0 {
		return
	}
	blockSz := granule
	if ms[i].remaining < blockSz {
		blockSz = ms[i].remaining
	}
	ms[i].busyUntil = now + float64(blockSz)*ms[i].perElem
	heap.Push(h, desEvent{at: ms[i].busyUntil, kind: 0, who: i, seq: *seq})
	*seq++
}
