package simarch

import (
	"fmt"

	"ramr/internal/topology"
)

// This file is the cluster tier of the simulator: the Node/Switch/Link
// cost layer sitting above the cache-distance model, mirroring what
// internal/cluster does at run time. A machine's caches rank victim
// cores by transfer distance; a cluster's switches rank worker nodes by
// link cost. SimulateCluster composes the two: per-shard compute comes
// from SimulateRAMR (or the DES) on each node's own machine model, and
// the network layer adds dispatch latency and partial-container upload
// time over that node's link path, so shard-scaling shapes can be
// predicted the same way socket-scaling ones are.

// Link is one network hop's cost model, in the same cycle units the
// machine model uses (cycles of the coordinator's reference clock).
type Link struct {
	// LatencyCycles is the one-way message latency across the hop.
	LatencyCycles float64
	// BytesPerCycle is the hop's payload bandwidth.
	BytesPerCycle float64
}

func (l Link) validate(what string) error {
	if l.LatencyCycles < 0 {
		return fmt.Errorf("simarch: %s link latency must be >= 0, got %g", what, l.LatencyCycles)
	}
	if l.BytesPerCycle <= 0 {
		return fmt.Errorf("simarch: %s link bandwidth must be > 0 bytes/cycle, got %g", what, l.BytesPerCycle)
	}
	return nil
}

// Node is one worker in the simulated cluster: a machine model, the
// pipeline configuration it runs shards with, and the link from the
// node to its switch.
type Node struct {
	Machine *topology.Machine
	Config  Config
	Link    Link
}

// Switch groups nodes behind a shared uplink to the coordinator —
// the simulated form of cluster.WorkerSpec's cost tiers, where workers
// sharing a cost share a switch. A shard's network path is its node's
// link plus its switch's uplink: latencies add, bandwidth is the
// narrower of the two.
type Switch struct {
	Uplink Link
	Nodes  []Node
}

// ClusterConfig parameterizes SimulateCluster.
type ClusterConfig struct {
	// Switches is the cluster fabric; at least one switch with at
	// least one node.
	Switches []Switch
	// Shards is the number of data shards the workload is split into;
	// 0 selects one shard per node, matching the coordinator default.
	Shards int
	// PartialBytes is the size of one shard's combined partial
	// container crossing the network back to the coordinator; 0
	// selects DefaultPartialBytes.
	PartialBytes int
	// MergeCyclesPerByte prices the coordinator's final reduce folding
	// one partial byte into the merged container; 0 selects
	// DefaultMergeCyclesPerByte.
	MergeCyclesPerByte float64
	// DES selects the discrete-event per-node simulator
	// (SimulateRAMRDES) instead of the analytic one.
	DES bool
}

// Defaults for ClusterConfig's zero values.
const (
	DefaultPartialBytes       = 1 << 20
	DefaultMergeCyclesPerByte = 0.5
)

// ClusterEstimate is a simulated cluster run.
type ClusterEstimate struct {
	// Cycles is the end-to-end job time: the slowest node's
	// dispatch+compute+upload total plus the merge tail.
	Cycles float64
	// NodeCycles is each node's total, in flattened switch order.
	NodeCycles []float64
	// MergeCycles is the coordinator's final-reduce tail. It scales
	// with the shard count, not the node count, so adding workers
	// never grows it.
	MergeCycles float64
	// BoundNode is the index (into NodeCycles) of the critical node.
	BoundNode int
}

// clusterNode is a flattened node with its composed coordinator path.
type clusterNode struct {
	node Node
	// path is the node link and switch uplink composed serially.
	path Link
}

func flatten(cfg ClusterConfig) ([]clusterNode, error) {
	if len(cfg.Switches) == 0 {
		return nil, fmt.Errorf("simarch: cluster has no switches")
	}
	var nodes []clusterNode
	for si, sw := range cfg.Switches {
		if err := sw.Uplink.validate(fmt.Sprintf("switch %d uplink", si)); err != nil {
			return nil, err
		}
		if len(sw.Nodes) == 0 {
			return nil, fmt.Errorf("simarch: switch %d has no nodes", si)
		}
		for ni, n := range sw.Nodes {
			if n.Machine == nil {
				return nil, fmt.Errorf("simarch: switch %d node %d has a nil machine", si, ni)
			}
			if err := n.Link.validate(fmt.Sprintf("switch %d node %d", si, ni)); err != nil {
				return nil, err
			}
			bw := n.Link.BytesPerCycle
			if sw.Uplink.BytesPerCycle < bw {
				bw = sw.Uplink.BytesPerCycle
			}
			nodes = append(nodes, clusterNode{
				node: n,
				path: Link{
					LatencyCycles: n.Link.LatencyCycles + sw.Uplink.LatencyCycles,
					BytesPerCycle: bw,
				},
			})
		}
	}
	return nodes, nil
}

// shardElements distributes w.Elements over cnt shards the way
// workloads.ShardSplits does (every cnt-th split from index): near-equal
// counts with the remainder landing on the low indices.
func shardElements(total, index, cnt int) int {
	per := total / cnt
	if index < total%cnt {
		per++
	}
	return per
}

// SimulateCluster models one job sharded across the cluster. Placement
// matches the coordinator's healthy-path round-robin: shard i runs on
// node i mod N over the flattened switch order. Each node executes its
// shards back to back (a worker admits one pipeline at a time), paying
// per shard the dispatch round trip, the shard's map+combine compute on
// its own machine model, and the partial-container upload over its
// path; the cluster finishes when the slowest node does, plus the
// coordinator's merge tail.
func SimulateCluster(w Workload, cfg ClusterConfig) (ClusterEstimate, error) {
	nodes, err := flatten(cfg)
	if err != nil {
		return ClusterEstimate{}, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(nodes)
	}
	if cfg.Shards < 1 {
		return ClusterEstimate{}, fmt.Errorf("simarch: shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.PartialBytes == 0 {
		cfg.PartialBytes = DefaultPartialBytes
	}
	if cfg.PartialBytes < 0 {
		return ClusterEstimate{}, fmt.Errorf("simarch: partial bytes must be >= 0, got %d", cfg.PartialBytes)
	}
	if cfg.MergeCyclesPerByte == 0 {
		cfg.MergeCyclesPerByte = DefaultMergeCyclesPerByte
	}
	if cfg.MergeCyclesPerByte < 0 {
		return ClusterEstimate{}, fmt.Errorf("simarch: merge cost must be >= 0 cycles/byte, got %g", cfg.MergeCyclesPerByte)
	}
	if w.Elements < cfg.Shards {
		return ClusterEstimate{}, fmt.Errorf("simarch: workload %q has %d elements, fewer than %d shards",
			w.Name, w.Elements, cfg.Shards)
	}
	sim := SimulateRAMR
	if cfg.DES {
		sim = SimulateRAMRDES
	}

	// Per-node compute depends only on (node, shard element count);
	// near-equal shards make the cache save most of the sim calls.
	type computeKey struct {
		node  int
		elems int
	}
	computed := map[computeKey]float64{}
	compute := func(node, elems int) (float64, error) {
		key := computeKey{node, elems}
		if c, ok := computed[key]; ok {
			return c, nil
		}
		sw := w
		sw.Elements = elems
		est, err := sim(nodes[node].node.Machine, sw, nodes[node].node.Config)
		if err != nil {
			return 0, fmt.Errorf("simarch: node %d: %v", node, err)
		}
		computed[key] = est.Cycles
		return est.Cycles, nil
	}

	totals := make([]float64, len(nodes))
	for shard := 0; shard < cfg.Shards; shard++ {
		ni := shard % len(nodes)
		elems := shardElements(w.Elements, shard, cfg.Shards)
		c, err := compute(ni, elems)
		if err != nil {
			return ClusterEstimate{}, err
		}
		path := nodes[ni].path
		// Dispatch round trip, compute, then the partial crossing back:
		// one more latency plus the container over the narrower hop.
		totals[ni] += 2*path.LatencyCycles + c +
			path.LatencyCycles + float64(cfg.PartialBytes)/path.BytesPerCycle
	}

	bound := 0
	for i, t := range totals {
		if t > totals[bound] {
			bound = i
		}
	}
	// The merge tail folds every shard's partial into the merged
	// container; it scales with the shard count and stays constant in
	// the worker count, so adding nodes never inflates the estimate.
	merge := cfg.MergeCyclesPerByte * float64(cfg.PartialBytes) * float64(cfg.Shards)
	return ClusterEstimate{
		Cycles:      totals[bound] + merge,
		NodeCycles:  totals,
		MergeCycles: merge,
		BoundNode:   bound,
	}, nil
}

// FlatCluster builds a homogeneous single-switch cluster of n identical
// nodes — the shape of the CI smoke setup (several ramrd processes on
// one host) and the baseline for shard-scaling sweeps.
func FlatCluster(n int, m *topology.Machine, cfg Config, node, uplink Link) ClusterConfig {
	sw := Switch{Uplink: uplink}
	for i := 0; i < n; i++ {
		sw.Nodes = append(sw.Nodes, Node{Machine: m, Config: cfg, Link: node})
	}
	return ClusterConfig{Switches: []Switch{sw}}
}
