package simarch

import (
	"testing"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/perfmodel"
	"ramr/internal/topology"
)

func defaultKind(app string) container.Kind {
	if app == "WC" {
		return container.KindHash
	}
	return container.KindFixedArray
}

func stressKind(app string) container.Kind {
	if app == "MM" || app == "PCA" {
		return container.KindHash
	}
	return container.KindFixedHash
}

var ratios = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

func bestRAMR(t *testing.T, m *topology.Machine, w Workload, threads, batch int, pin mr.PinPolicy) Estimate {
	t.Helper()
	var best Estimate
	for i, r := range ratios {
		c := threads / (r + 1)
		if c < 1 {
			c = 1
		}
		est, err := SimulateRAMR(m, w, Config{Mappers: threads - c, Combiners: c, Pin: pin, BatchSize: batch, QueueCap: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || est.Cycles < best.Cycles {
			best = est
		}
	}
	return best
}

func speedup(t *testing.T, m *topology.Machine, app string, kind container.Kind, threads, batch int) float64 {
	t.Helper()
	w, err := WorkloadFor(m, app, kind)
	if err != nil {
		t.Fatal(err)
	}
	ra := bestRAMR(t, m, w, threads, batch, mr.PinRAMR)
	half := threads / 2
	ph, err := SimulatePhoenix(m, w, Config{Mappers: half, Combiners: threads - half})
	if err != nil {
		t.Fatal(err)
	}
	return ph.Cycles / ra.Cycles
}

// TestFig8aShape pins the Haswell default-container outcome: KM and MM
// profit, PCA performs similarly, HG and LR are strongly outperformed
// (paper: 3x and 3.8x slowdowns), in agreement with the §IV-E analysis.
func TestFig8aShape(t *testing.T) {
	m := topology.HaswellServer()
	s := map[string]float64{}
	for _, app := range []string{"HG", "KM", "LR", "MM", "PCA", "WC"} {
		s[app] = speedup(t, m, app, defaultKind(app), 56, 1000)
	}
	if s["KM"] <= 1.0 {
		t.Errorf("KM should profit from RAMR, speedup %.2f", s["KM"])
	}
	if s["MM"] <= 1.0 {
		t.Errorf("MM should profit from RAMR, speedup %.2f", s["MM"])
	}
	if s["PCA"] < 0.7 || s["PCA"] > 1.2 {
		t.Errorf("PCA should perform similarly to Phoenix++, speedup %.2f", s["PCA"])
	}
	if s["HG"] > 0.6 {
		t.Errorf("HG (light) should lose clearly, speedup %.2f", s["HG"])
	}
	if s["LR"] > 0.6 {
		t.Errorf("LR (light) should lose clearly, speedup %.2f", s["LR"])
	}
	// The light apps lose harder than everything else.
	for _, app := range []string{"KM", "MM", "PCA", "WC"} {
		if s["LR"] >= s[app] {
			t.Errorf("LR should be the worst case, but %.2f >= %s %.2f", s["LR"], app, s[app])
		}
	}
}

// TestFig9bShape pins the Xeon Phi memory-intensive outcome: RAMR is
// faster in 5 of 6 applications with a pronounced maximum speedup (paper:
// 5.34x max, 2.6x average).
func TestFig9bShape(t *testing.T) {
	m := topology.XeonPhi()
	wins, max := 0, 0.0
	for _, app := range []string{"HG", "KM", "LR", "MM", "PCA", "WC"} {
		sp := speedup(t, m, app, stressKind(app), 228, 200)
		if sp > 1 {
			wins++
		}
		if sp > max {
			max = sp
		}
	}
	if wins < 5 {
		t.Errorf("RAMR should win at least 5/6 on Phi with hash containers, won %d", wins)
	}
	if max < 2 {
		t.Errorf("max speedup should be pronounced, got %.2f", max)
	}
}

// TestFig8bImproves: switching to memory-intensive containers improves
// RAMR's relative standing for the fixed-hash apps on Haswell (paper 8a
// vs 8b).
func TestFig8bImproves(t *testing.T) {
	m := topology.HaswellServer()
	for _, app := range []string{"HG", "LR", "MM"} {
		def := speedup(t, m, app, defaultKind(app), 56, 1000)
		str := speedup(t, m, app, stressKind(app), 56, 1000)
		if str <= def {
			t.Errorf("%s: stress containers should improve RAMR's standing (%.2f -> %.2f)", app, def, str)
		}
	}
}

// TestFig5Shape: the RAMR pinning policy beats both baselines on the
// Haswell model for every app.
func TestFig5Shape(t *testing.T) {
	m := topology.HaswellServer()
	for _, app := range []string{"HG", "KM", "LR", "MM", "PCA", "WC"} {
		w, err := WorkloadFor(m, app, defaultKind(app))
		if err != nil {
			t.Fatal(err)
		}
		times := map[mr.PinPolicy]float64{}
		for _, pin := range []mr.PinPolicy{mr.PinRAMR, mr.PinRoundRobin, mr.PinNone} {
			est, err := SimulateRAMR(m, w, Config{Mappers: 28, Combiners: 28, Pin: pin, BatchSize: 1000, QueueCap: 5000})
			if err != nil {
				t.Fatal(err)
			}
			times[pin] = est.Cycles
		}
		if times[mr.PinRAMR] >= times[mr.PinRoundRobin] {
			t.Errorf("%s: RAMR pinning not faster than RR", app)
		}
		if times[mr.PinRAMR] >= times[mr.PinNone] {
			t.Errorf("%s: RAMR pinning not faster than the OS scheduler", app)
		}
	}
}

// TestFig5PhiSmall: on the ring-interconnected Phi, pinning gains are
// marginal (paper: 1-3%).
func TestFig5PhiSmall(t *testing.T) {
	m := topology.XeonPhi()
	w, err := WorkloadFor(m, "HG", container.KindFixedArray)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pin mr.PinPolicy) float64 {
		est, err := SimulateRAMR(m, w, Config{Mappers: 114, Combiners: 114, Pin: pin, BatchSize: 200, QueueCap: 5000})
		if err != nil {
			t.Fatal(err)
		}
		return est.Cycles
	}
	gain := run(mr.PinRoundRobin) / run(mr.PinRAMR)
	if gain < 1.0 || gain > 1.15 {
		t.Errorf("Phi pinning gain should be small but positive, got %.3f", gain)
	}
}

// TestFig6Shape: batching beats single-element consume for the
// combine-bound apps, with larger gains on the in-order Phi.
func TestFig6Shape(t *testing.T) {
	gain := func(m *topology.Machine, threads, batch int) float64 {
		w, err := WorkloadFor(m, "WC", container.KindHash)
		if err != nil {
			t.Fatal(err)
		}
		half := threads / 2
		one, err := SimulateRAMR(m, w, Config{Mappers: half, Combiners: half, Pin: mr.PinRAMR, BatchSize: 1, QueueCap: 5000})
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := SimulateRAMR(m, w, Config{Mappers: half, Combiners: half, Pin: mr.PinRAMR, BatchSize: batch, QueueCap: 5000})
		if err != nil {
			t.Fatal(err)
		}
		return one.Cycles / tuned.Cycles
	}
	hwl := gain(topology.HaswellServer(), 56, 1000)
	phi := gain(topology.XeonPhi(), 228, 200)
	if hwl <= 1.2 {
		t.Errorf("Haswell batching gain too small: %.2f", hwl)
	}
	if phi <= hwl {
		t.Errorf("Phi should gain more from batching: phi %.2f vs hwl %.2f", phi, hwl)
	}
}

// TestFig7UShape: the batch-size curve has an interior optimum — both
// batch=1 and batch=5000 are worse than the best setting.
func TestFig7UShape(t *testing.T) {
	for _, tc := range []struct {
		m       *topology.Machine
		threads int
	}{{topology.HaswellServer(), 56}, {topology.XeonPhi(), 228}} {
		w, err := WorkloadFor(tc.m, "WC", container.KindHash)
		if err != nil {
			t.Fatal(err)
		}
		half := tc.threads / 2
		cost := func(batch int) float64 {
			est, err := SimulateRAMR(tc.m, w, Config{Mappers: half, Combiners: half, Pin: mr.PinRAMR, BatchSize: batch, QueueCap: 5000})
			if err != nil {
				t.Fatal(err)
			}
			return est.Cycles
		}
		best := cost(1)
		for _, b := range []int{20, 100, 500, 1000, 2000} {
			if c := cost(b); c < best {
				best = c
			}
		}
		if cost(1) <= best*1.05 {
			t.Errorf("%s: batch=1 should be clearly worse than the optimum", tc.m.Name)
		}
		if cost(5000) <= best {
			t.Errorf("%s: batch=5000 should not be optimal (cache spill)", tc.m.Name)
		}
	}
}

func TestValidation(t *testing.T) {
	m := topology.HaswellServer()
	w := Workload{Name: "w", Elements: 100, ElemBytes: 16,
		Map:     perfmodel.PhaseCost{CyclesPerElem: 10},
		Combine: perfmodel.PhaseCost{CyclesPerElem: 5}}
	ok := Config{Mappers: 2, Combiners: 2, BatchSize: 10, QueueCap: 100}
	if _, err := SimulateRAMR(m, w, ok); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		w Workload
		c Config
	}{
		{Workload{}, ok},
		{w, Config{Mappers: 0, Combiners: 1}},
		{w, Config{Mappers: 1, Combiners: 0}},
		{Workload{Name: "x", Elements: 10, ElemBytes: 16}, ok}, // zero costs
	}
	for i, tc := range bad {
		if _, err := SimulateRAMR(m, tc.w, tc.c); err == nil {
			t.Errorf("bad case %d accepted by SimulateRAMR", i)
		}
		if _, err := SimulatePhoenix(m, tc.w, tc.c); err == nil {
			t.Errorf("bad case %d accepted by SimulatePhoenix", i)
		}
	}
	if _, err := SimulateRAMR(nil, w, ok); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestDeterministic(t *testing.T) {
	m := topology.HaswellServer()
	w, err := WorkloadFor(m, "KM", container.KindFixedArray)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mappers: 28, Combiners: 28, Pin: mr.PinRAMR, BatchSize: 1000, QueueCap: 5000}
	a, _ := SimulateRAMR(m, w, cfg)
	b, _ := SimulateRAMR(m, w, cfg)
	if a != b {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
}

// TestSMTComplementarity: a compute-bound thread loses less speed next to
// a memory-bound sibling than next to another compute-bound one.
func TestSMTComplementarity(t *testing.T) {
	m := topology.HaswellServer()
	compute := thread{compFrac: 0.95, memFrac: 0.05}
	memory := thread{compFrac: 0.1, memFrac: 0.9}
	both := smtSpeeds(m, []thread{compute, compute})
	mixed := smtSpeeds(m, []thread{compute, memory})
	if mixed[0] <= both[0] {
		t.Fatalf("complementary sibling should cost less: %.3f vs %.3f", mixed[0], both[0])
	}
	solo := smtSpeeds(m, []thread{compute})
	if solo[0] != 1 {
		t.Fatalf("solo Haswell thread speed = %.3f, want 1", solo[0])
	}
	phiSolo := smtSpeeds(topology.XeonPhi(), []thread{compute})
	if phiSolo[0] != 0.5 {
		t.Fatalf("solo Phi thread speed = %.3f, want 0.5 (in-order)", phiSolo[0])
	}
}

// TestBatchTransferSpill: growing the batch past the shared-cache share
// raises the transfer latency level.
func TestBatchTransferSpill(t *testing.T) {
	m := topology.HaswellServer()
	// cpus 0 and 28 share L1/L2 (32K/256K); 16-byte elements.
	small := batchTransferLatency(m, 0, 28, 100, 16)    // 1.6KB, fits L1 share
	large := batchTransferLatency(m, 0, 28, 100000, 16) // 1.6MB, beyond L2 share
	if small >= large {
		t.Fatalf("spill not modeled: small %.0f, large %.0f", small, large)
	}
}

func TestWorkloadForUnknownApp(t *testing.T) {
	if _, err := WorkloadFor(topology.HaswellServer(), "XX", container.KindHash); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestEstimateDiagnostics: map-bound vs combine-bound classification
// follows the workload's cost balance.
func TestEstimateDiagnostics(t *testing.T) {
	m := topology.HaswellServer()
	mapHeavy := Workload{Name: "m", Elements: 100_000, ElemBytes: 16,
		Map:     perfmodel.PhaseCost{CyclesPerElem: 500},
		Combine: perfmodel.PhaseCost{CyclesPerElem: 2}}
	combHeavy := Workload{Name: "c", Elements: 100_000, ElemBytes: 16,
		Map:     perfmodel.PhaseCost{CyclesPerElem: 2},
		Combine: perfmodel.PhaseCost{CyclesPerElem: 500}}
	cfg := Config{Mappers: 28, Combiners: 28, Pin: mr.PinRAMR, BatchSize: 1000, QueueCap: 5000}
	a, err := SimulateRAMR(m, mapHeavy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRAMR(m, combHeavy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MapBound {
		t.Fatal("map-heavy workload should be map-bound")
	}
	if b.MapBound {
		t.Fatal("combine-heavy workload should be combine-bound")
	}
}
