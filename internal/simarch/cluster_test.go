package simarch

import (
	"math"
	"reflect"
	"testing"

	"ramr/internal/perfmodel"
	"ramr/internal/topology"
)

// clusterWorkload is a fixed synthetic workload whose element count
// divides evenly into the shard counts the tests sweep, so node loads
// are exact and monotonicity assertions need no slack.
func clusterWorkload() Workload {
	return Workload{
		Name:      "cluster-test",
		Elements:  48 * 1024,
		ElemBytes: 64,
		Map:       perfmodel.PhaseCost{CyclesPerElem: 120, MemFrac: 0.3},
		Combine:   perfmodel.PhaseCost{CyclesPerElem: 60, MemFrac: 0.5},
	}
}

func nodeConfig() Config {
	return Config{Mappers: 3, Combiners: 1, BatchSize: 256, QueueCap: 1024}
}

func flatClusterCfg(n, shards int, link Link) ClusterConfig {
	cfg := FlatCluster(n, topology.Flat(4), nodeConfig(), link, Link{LatencyCycles: 0, BytesPerCycle: 64})
	cfg.Shards = shards
	return cfg
}

var testLink = Link{LatencyCycles: 5000, BytesPerCycle: 8}

// TestClusterDeterministic pins that the estimate is a pure function of
// its inputs: two runs with identical inputs agree bit for bit, for
// both the analytic and the DES per-node simulators.
func TestClusterDeterministic(t *testing.T) {
	w := clusterWorkload()
	for _, des := range []bool{false, true} {
		cfg := flatClusterCfg(3, 12, testLink)
		cfg.DES = des
		a, err := SimulateCluster(w, cfg)
		if err != nil {
			t.Fatalf("des=%v: %v", des, err)
		}
		b, err := SimulateCluster(w, cfg)
		if err != nil {
			t.Fatalf("des=%v: %v", des, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("des=%v: estimate not deterministic:\n  %+v\n  %+v", des, a, b)
		}
		if a.Cycles <= 0 || math.IsNaN(a.Cycles) {
			t.Errorf("des=%v: nonsense cycles %g", des, a.Cycles)
		}
	}
}

// TestClusterMoreNodesNeverSlower pins the scaling direction: with the
// shard count held fixed, adding identical worker nodes never increases
// the estimate — the merge tail is priced per shard, not per node, and
// the critical node's load can only shrink as shards spread out.
func TestClusterMoreNodesNeverSlower(t *testing.T) {
	w := clusterWorkload()
	const shards = 12
	prev := math.Inf(1)
	for n := 1; n <= 6; n++ {
		est, err := SimulateCluster(w, flatClusterCfg(n, shards, testLink))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if est.Cycles > prev {
			t.Errorf("n=%d nodes is slower than n=%d: %.0f > %.0f cycles", n, n-1, est.Cycles, prev)
		}
		prev = est.Cycles
	}
}

// TestClusterFasterLinksNeverSlower pins the link-cost direction: lower
// latency or higher bandwidth never increases the estimate.
func TestClusterFasterLinksNeverSlower(t *testing.T) {
	w := clusterWorkload()
	base, err := SimulateCluster(w, flatClusterCfg(3, 12, testLink))
	if err != nil {
		t.Fatal(err)
	}
	for _, faster := range []Link{
		{LatencyCycles: testLink.LatencyCycles / 2, BytesPerCycle: testLink.BytesPerCycle},
		{LatencyCycles: testLink.LatencyCycles, BytesPerCycle: testLink.BytesPerCycle * 4},
		{LatencyCycles: 0, BytesPerCycle: testLink.BytesPerCycle * 16},
	} {
		est, err := SimulateCluster(w, flatClusterCfg(3, 12, faster))
		if err != nil {
			t.Fatal(err)
		}
		if est.Cycles > base.Cycles {
			t.Errorf("faster link %+v is slower: %.0f > %.0f cycles", faster, est.Cycles, base.Cycles)
		}
	}
}

// TestClusterMergeTailConstantInNodes pins the monotonicity mechanism
// itself: the merge tail depends on the shard count alone.
func TestClusterMergeTailConstantInNodes(t *testing.T) {
	w := clusterWorkload()
	var merge float64
	for n := 1; n <= 4; n++ {
		est, err := SimulateCluster(w, flatClusterCfg(n, 8, testLink))
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			merge = est.MergeCycles
			continue
		}
		if est.MergeCycles != merge {
			t.Errorf("n=%d: merge tail %.0f differs from n=1's %.0f", n, est.MergeCycles, merge)
		}
	}
}

// TestClusterShardScalingShape pins the end-to-end shape the cluster
// tier exists to predict: a two-node run of a fixed workload beats a
// one-node run, but short of 2x — the dispatch and upload overheads
// plus the merge tail eat part of the ideal speedup, exactly the shape
// the EXPERIMENTS.md recipe measures against real ramrd workers.
func TestClusterShardScalingShape(t *testing.T) {
	w := clusterWorkload()
	one, err := SimulateCluster(w, flatClusterCfg(1, 4, testLink))
	if err != nil {
		t.Fatal(err)
	}
	two, err := SimulateCluster(w, flatClusterCfg(2, 4, testLink))
	if err != nil {
		t.Fatal(err)
	}
	sp := one.Cycles / two.Cycles
	if sp <= 1.0 {
		t.Errorf("two nodes should beat one, speedup %.3f", sp)
	}
	if sp >= 2.0 {
		t.Errorf("speedup %.3f exceeds the ideal 2x despite network and merge overheads", sp)
	}
}

// TestClusterSwitchTiers pins the path composition: a node behind a
// slower uplink finishes later, and the cluster is bound by it.
func TestClusterSwitchTiers(t *testing.T) {
	w := clusterWorkload()
	m := topology.Flat(4)
	near := Switch{
		Uplink: Link{LatencyCycles: 0, BytesPerCycle: 64},
		Nodes:  []Node{{Machine: m, Config: nodeConfig(), Link: testLink}},
	}
	far := Switch{
		Uplink: Link{LatencyCycles: 2e6, BytesPerCycle: 1},
		Nodes:  []Node{{Machine: m, Config: nodeConfig(), Link: testLink}},
	}
	est, err := SimulateCluster(w, ClusterConfig{Switches: []Switch{near, far}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if est.BoundNode != 1 {
		t.Errorf("the node behind the slow uplink should bind the run, got node %d (totals %v)",
			est.BoundNode, est.NodeCycles)
	}
	if est.NodeCycles[1] <= est.NodeCycles[0] {
		t.Errorf("slow-uplink node should be slower: %v", est.NodeCycles)
	}
}

// TestClusterValidation pins the error paths.
func TestClusterValidation(t *testing.T) {
	w := clusterWorkload()
	m := topology.Flat(4)
	ok := Link{LatencyCycles: 10, BytesPerCycle: 8}
	cases := []struct {
		name string
		cfg  ClusterConfig
	}{
		{"no switches", ClusterConfig{}},
		{"empty switch", ClusterConfig{Switches: []Switch{{Uplink: ok}}}},
		{"nil machine", ClusterConfig{Switches: []Switch{{Uplink: ok, Nodes: []Node{{Link: ok}}}}}},
		{"zero bandwidth", ClusterConfig{Switches: []Switch{{Uplink: ok,
			Nodes: []Node{{Machine: m, Config: nodeConfig(), Link: Link{LatencyCycles: 1}}}}}}},
		{"negative latency", ClusterConfig{Switches: []Switch{{Uplink: Link{LatencyCycles: -1, BytesPerCycle: 1},
			Nodes: []Node{{Machine: m, Config: nodeConfig(), Link: ok}}}}}},
		{"negative shards", func() ClusterConfig {
			c := flatClusterCfg(2, 0, ok)
			c.Shards = -1
			return c
		}()},
		{"more shards than elements", func() ClusterConfig {
			c := flatClusterCfg(2, 1<<30, ok)
			return c
		}()},
	}
	for _, tc := range cases {
		if _, err := SimulateCluster(w, tc.cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
