// Package stats provides the small statistical helpers used by the RAMR
// benchmark harness: means, standard deviations, speedups and geometric
// means, plus a deterministic splittable RNG so every experiment is
// reproducible run-to-run.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
// It returns 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Speedup returns baseline/alternative: values above 1 mean the alternative
// is faster. A zero alternative yields +Inf, matching the usual convention.
func Speedup(baseline, alternative float64) float64 {
	if alternative == 0 {
		return math.Inf(1)
	}
	return baseline / alternative
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// rejected with a panic because they indicate a harness bug (negative or
// zero run times), never a legitimate measurement.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// NormalizeTo divides every element of xs by base, returning a new slice.
// It is used by the sensitivity plots that normalize curves to their first
// data point.
func NormalizeTo(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Rng returns a deterministic *rand.Rand derived from a root seed and a
// stream label, so independent experiment stages draw from independent but
// reproducible streams.
func Rng(seed int64, stream string) *rand.Rand {
	var h int64 = 1469598103934665603
	for i := 0; i < len(stream); i++ {
		h ^= int64(stream[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}
