package stats

import "math/rand"

// Zipf draws indices in [0, n) with a Zipfian frequency distribution,
// used by the synthetic corpus generators (word frequencies in natural
// text are famously Zipf-distributed).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (> 1).
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Next draws the next index.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }
