package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev single")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.13808993529939) {
		t.Fatalf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMedianMinMax(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("Median(nil)")
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Fatal("even median")
	}
	if Min([]float64{3, -1, 2}) != -1 || Max([]float64{3, -1, 2}) != 3 {
		t.Fatal("min/max")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max")
	}
}

func TestSpeedup(t *testing.T) {
	if !almost(Speedup(10, 5), 2) {
		t.Fatal("speedup")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero alternative")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty")
	}
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Fatal("geomean")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestNormalizeTo(t *testing.T) {
	out := NormalizeTo([]float64{2, 4, 6}, 2)
	if !almost(out[0], 1) || !almost(out[1], 2) || !almost(out[2], 3) {
		t.Fatalf("%v", out)
	}
}

func TestRngDeterministicAndSplit(t *testing.T) {
	a1 := Rng(7, "stream-a").Int63()
	a2 := Rng(7, "stream-a").Int63()
	b := Rng(7, "stream-b").Int63()
	c := Rng(8, "stream-a").Int63()
	if a1 != a2 {
		t.Fatal("same seed+stream must reproduce")
	}
	if a1 == b || a1 == c {
		t.Fatal("different streams/seeds should differ")
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	z := NewZipf(Rng(1, "z"), 1.3, 100)
	counts := make([]int, 100)
	const n = 20000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50]*2 {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Degenerate n.
	z0 := NewZipf(Rng(1, "z0"), 1.3, 0)
	if z0.Next() != 0 {
		t.Fatal("n=0 zipf should emit 0")
	}
}

// TestQuickMeanBounds: the mean of any sample lies within [min, max].
func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip pathological magnitudes whose *sum* overflows —
			// that is an IEEE limitation, not a Mean bug.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
